module github.com/bamboo-bft/bamboo

go 1.22

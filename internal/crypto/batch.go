package crypto

import (
	"crypto/ed25519"
	"errors"
	"fmt"

	"github.com/bamboo-bft/bamboo/internal/types"
)

// ErrBatchFailed reports that at least one signature in a batch failed
// verification; the per-item validity slice identifies which.
var ErrBatchFailed = errors.New("crypto: batch verification failed")

// BatchItem is one (signer, digest, signature) triple queued for batch
// verification.
type BatchItem struct {
	Signer types.NodeID
	Digest []byte
	Sig    []byte
}

// BatchScheme is implemented by schemes that can check a whole batch
// of signatures in one call, returning nil only when every item is
// valid. The stock implementations verify sequentially in a single
// pass — the Go standard library exposes no multi-scalar Ed25519 batch
// equation — so the speedup comes from amortizing per-message
// dispatch and from running batches off the consensus event loop; a
// deployment with an aggregated-signature library can slot a true
// batch equation in behind this interface without touching callers.
type BatchScheme interface {
	VerifyBatch(items []BatchItem) error
}

// BatchVerifier accumulates signatures and verifies them together,
// with per-signature fallback when the batch fails so one forged
// signature cannot poison honest items. It is not safe for concurrent
// use; each verification worker owns one.
type BatchVerifier struct {
	s     Scheme
	items []BatchItem
}

// NewBatchVerifier creates a verifier over the scheme.
func NewBatchVerifier(s Scheme) *BatchVerifier {
	return &BatchVerifier{s: s}
}

// Add queues one signature.
func (v *BatchVerifier) Add(signer types.NodeID, digest, sig []byte) {
	v.items = append(v.items, BatchItem{Signer: signer, Digest: digest, Sig: sig})
}

// Len returns the number of queued signatures.
func (v *BatchVerifier) Len() int { return len(v.items) }

// Verify checks every queued signature and resets the batch. ok[i]
// reports item i's validity. err is nil iff all items are valid; on a
// whole-batch failure the verifier falls back to individual
// verification to separate forged signatures from honest ones.
func (v *BatchVerifier) Verify() (ok []bool, err error) {
	items := v.items
	v.items = nil
	ok = make([]bool, len(items))
	if len(items) == 0 {
		return ok, nil
	}
	if bs, can := v.s.(BatchScheme); can {
		if bs.VerifyBatch(items) == nil {
			for i := range ok {
				ok[i] = true
			}
			return ok, nil
		}
		// Fall through: identify the bad items individually.
	}
	allValid := true
	for i := range items {
		if v.s.Verify(items[i].Signer, items[i].Digest, items[i].Sig) == nil {
			ok[i] = true
		} else {
			allValid = false
		}
	}
	if !allValid {
		return ok, ErrBatchFailed
	}
	return ok, nil
}

// VerifyBatch implements BatchScheme for Ed25519: one sequential pass
// over the stdlib verifier with early exit on the first failure.
func (e *Ed25519) VerifyBatch(items []BatchItem) error {
	for i := range items {
		pub, ok := e.pubs[items[i].Signer]
		if !ok {
			return fmt.Errorf("%w: %s", ErrUnknownSigner, items[i].Signer)
		}
		if !ed25519.Verify(pub, items[i].Digest, items[i].Sig) {
			return fmt.Errorf("%w: %s", ErrBadSignature, items[i].Signer)
		}
	}
	return nil
}

// VerifyBatch implements BatchScheme for HMAC.
func (h *HMAC) VerifyBatch(items []BatchItem) error {
	for i := range items {
		if err := h.Verify(items[i].Signer, items[i].Digest, items[i].Sig); err != nil {
			return err
		}
	}
	return nil
}

// VerifyBatch implements BatchScheme for Noop.
func (Noop) VerifyBatch([]BatchItem) error { return nil }

// VerifyQCBatch checks a quorum certificate using batch verification.
// Structural checks (arity, duplicate signers) match VerifyQC; the
// signature check differs under attack: when the batch fails, valid
// signatures are separated from forged ones, and the certificate is
// accepted as long as the valid distinct signers still reach the
// quorum — a Byzantine aggregator cannot void honest votes by mixing
// in garbage.
func VerifyQCBatch(s Scheme, qc *types.QC, quorum int) error {
	if qc == nil {
		return errors.New("crypto: nil QC")
	}
	if qc.IsGenesis() {
		return nil
	}
	return verifyCertBatch(s, qc.Signers, qc.Sigs, types.SigningDigest(qc.View, qc.BlockID), quorum)
}

// VerifyTCBatch checks a timeout certificate the way VerifyQCBatch
// checks a quorum certificate.
func VerifyTCBatch(s Scheme, tc *types.TC, quorum int) error {
	if tc == nil {
		return errors.New("crypto: nil TC")
	}
	return verifyCertBatch(s, tc.Signers, tc.Sigs, types.TimeoutDigest(tc.View), quorum)
}

// verifyCertBatch is the shared certificate check: structural
// validation, one batch verification over the common digest, and the
// tolerant quorum-of-valid fallback.
func verifyCertBatch(s Scheme, signers []types.NodeID, sigs [][]byte, digest []byte, quorum int) error {
	if len(signers) != len(sigs) {
		return ErrArityMismatch
	}
	if len(signers) < quorum {
		return fmt.Errorf("%w: %d < %d", ErrQuorumTooSmall, len(signers), quorum)
	}
	seen := make(map[types.NodeID]struct{}, len(signers))
	bv := NewBatchVerifier(s)
	for i, id := range signers {
		if _, dup := seen[id]; dup {
			return fmt.Errorf("%w: %s", ErrDuplicateSigner, id)
		}
		seen[id] = struct{}{}
		bv.Add(id, digest, sigs[i])
	}
	ok, err := bv.Verify()
	if err == nil {
		return nil
	}
	valid := 0
	for _, v := range ok {
		if v {
			valid++
		}
	}
	if valid >= quorum {
		return nil
	}
	return fmt.Errorf("%w: %d valid of %d below quorum %d", ErrBatchFailed, valid, len(ok), quorum)
}

package crypto

import (
	"crypto/ed25519"
	"crypto/sha256"
	"encoding/binary"
	"fmt"

	"github.com/bamboo-bft/bamboo/internal/types"
)

// Ed25519 is a Scheme backed by per-node Ed25519 key pairs. Keys are
// derived deterministically from a seed so that every process in a
// deployment can reconstruct the shared public keyring; a production
// deployment would distribute real keys, but deterministic derivation
// keeps single-machine experiments reproducible.
type Ed25519 struct {
	pubs  map[types.NodeID]ed25519.PublicKey
	privs map[types.NodeID]ed25519.PrivateKey
}

// NewEd25519 derives key pairs for nodes 1..n from seed.
func NewEd25519(n int, seed int64) *Ed25519 {
	e := &Ed25519{
		pubs:  make(map[types.NodeID]ed25519.PublicKey, n),
		privs: make(map[types.NodeID]ed25519.PrivateKey, n),
	}
	for i := 1; i <= n; i++ {
		id := types.NodeID(i)
		var material [32]byte
		binary.BigEndian.PutUint64(material[:8], uint64(seed))
		binary.BigEndian.PutUint64(material[8:16], uint64(i))
		copy(material[16:], "bamboo-ed25519ks")
		ks := sha256.Sum256(material[:])
		priv := ed25519.NewKeyFromSeed(ks[:])
		e.privs[id] = priv
		pub, ok := priv.Public().(ed25519.PublicKey)
		if !ok {
			// ed25519.PrivateKey.Public is documented to return
			// ed25519.PublicKey; this cannot happen.
			continue
		}
		e.pubs[id] = pub
	}
	return e
}

// Restrict returns a copy of the scheme holding only id's private key
// (all public keys are retained). Multi-process deployments use this
// so a replica cannot sign for its peers.
func (e *Ed25519) Restrict(id types.NodeID) *Ed25519 {
	r := &Ed25519{
		pubs:  e.pubs,
		privs: make(map[types.NodeID]ed25519.PrivateKey, 1),
	}
	if priv, ok := e.privs[id]; ok {
		r.privs[id] = priv
	}
	return r
}

// Name implements Scheme.
func (e *Ed25519) Name() string { return "ed25519" }

// Sign implements Scheme.
func (e *Ed25519) Sign(signer types.NodeID, digest []byte) ([]byte, error) {
	priv, ok := e.privs[signer]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrMissingKey, signer)
	}
	return ed25519.Sign(priv, digest), nil
}

// Verify implements Scheme.
func (e *Ed25519) Verify(signer types.NodeID, digest, sig []byte) error {
	pub, ok := e.pubs[signer]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownSigner, signer)
	}
	if !ed25519.Verify(pub, digest, sig) {
		return fmt.Errorf("%w: %s", ErrBadSignature, signer)
	}
	return nil
}

package crypto

import "github.com/bamboo-bft/bamboo/internal/types"

// Noop is a Scheme that performs no cryptography. Signatures are a
// fixed 4-byte tag and verification always succeeds. It isolates pure
// protocol-logic cost in ablation benchmarks; never use it outside a
// benchmark.
type Noop struct{}

var noopTag = []byte{0xba, 0x3b, 0x00, 0x00}

// Name implements Scheme.
func (Noop) Name() string { return "noop" }

// Sign implements Scheme.
func (Noop) Sign(types.NodeID, []byte) ([]byte, error) { return noopTag, nil }

// Verify implements Scheme.
func (Noop) Verify(types.NodeID, []byte, []byte) error { return nil }

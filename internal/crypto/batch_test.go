package crypto

import (
	"errors"
	"testing"

	"github.com/bamboo-bft/bamboo/internal/types"
)

// batchFixture signs n digests with distinct signers under the scheme.
func batchFixture(t *testing.T, s Scheme, n int) ([]types.NodeID, [][]byte, [][]byte) {
	t.Helper()
	signers := make([]types.NodeID, n)
	digests := make([][]byte, n)
	sigs := make([][]byte, n)
	for i := 0; i < n; i++ {
		signers[i] = types.NodeID(i + 1)
		digests[i] = types.SigningDigest(types.View(i+1), types.Hash{byte(i)})
		sig, err := s.Sign(signers[i], digests[i])
		if err != nil {
			t.Fatal(err)
		}
		sigs[i] = sig
	}
	return signers, digests, sigs
}

func TestBatchVerifierAllValid(t *testing.T) {
	for _, name := range []string{"ed25519", "hmac", "noop"} {
		t.Run(name, func(t *testing.T) {
			s, err := NewScheme(name, 8, 1)
			if err != nil {
				t.Fatal(err)
			}
			signers, digests, sigs := batchFixture(t, s, 8)
			bv := NewBatchVerifier(s)
			for i := range signers {
				bv.Add(signers[i], digests[i], sigs[i])
			}
			if bv.Len() != 8 {
				t.Fatalf("Len = %d", bv.Len())
			}
			ok, err := bv.Verify()
			if err != nil {
				t.Fatalf("valid batch rejected: %v", err)
			}
			for i, v := range ok {
				if !v {
					t.Fatalf("item %d marked invalid", i)
				}
			}
			if bv.Len() != 0 {
				t.Fatal("Verify must reset the batch")
			}
		})
	}
}

// TestBatchVerifierForgedFallsBack: one forged signature fails the
// batch, and the per-signature fallback pinpoints exactly it.
func TestBatchVerifierForgedFallsBack(t *testing.T) {
	for _, name := range []string{"ed25519", "hmac"} {
		t.Run(name, func(t *testing.T) {
			s, err := NewScheme(name, 8, 1)
			if err != nil {
				t.Fatal(err)
			}
			signers, digests, sigs := batchFixture(t, s, 8)
			const forged = 3
			sigs[forged] = []byte("definitely not a signature")
			bv := NewBatchVerifier(s)
			for i := range signers {
				bv.Add(signers[i], digests[i], sigs[i])
			}
			ok, err := bv.Verify()
			if !errors.Is(err, ErrBatchFailed) {
				t.Fatalf("err = %v, want ErrBatchFailed", err)
			}
			for i, v := range ok {
				if i == forged && v {
					t.Fatal("forged signature marked valid")
				}
				if i != forged && !v {
					t.Fatalf("honest signature %d dropped with the forged one", i)
				}
			}
		})
	}
}

func TestBatchVerifierEmpty(t *testing.T) {
	s, _ := NewScheme("ed25519", 4, 1)
	bv := NewBatchVerifier(s)
	ok, err := bv.Verify()
	if err != nil || len(ok) != 0 {
		t.Fatalf("empty batch: ok=%v err=%v", ok, err)
	}
}

// TestQCBatchByzantineSignature is the adversarial case: a Byzantine
// voter smuggles a garbage signature into an otherwise valid quorum
// certificate. Batch verification must fall back, reject the bad
// signature, and still accept the certificate on the strength of the
// honest votes — the attacker cannot void a quorum it is part of.
func TestQCBatchByzantineSignature(t *testing.T) {
	const n, quorum = 7, 5
	s, err := NewScheme("ed25519", n, 1)
	if err != nil {
		t.Fatal(err)
	}
	blockID := types.Hash{0xab}
	digest := types.SigningDigest(3, blockID)
	qc := &types.QC{View: 3, BlockID: blockID}
	for i := 1; i <= quorum+1; i++ {
		sig, err := s.Sign(types.NodeID(i), digest)
		if err != nil {
			t.Fatal(err)
		}
		qc.Signers = append(qc.Signers, types.NodeID(i))
		qc.Sigs = append(qc.Sigs, sig)
	}
	// Voter 2 is Byzantine: its signature is garbage, but five honest
	// signatures remain — still a quorum.
	qc.Sigs[1] = []byte("byzantine garbage")
	if err := VerifyQCBatch(s, qc, quorum); err != nil {
		t.Fatalf("QC with %d honest signatures rejected: %v", quorum, err)
	}
	// Strip one more honest vote: now only quorum-1 valid — reject.
	qc.Sigs[2] = []byte("more garbage")
	if err := VerifyQCBatch(s, qc, quorum); err == nil {
		t.Fatal("QC below quorum of valid signatures accepted")
	}
	// The synchronous verifier stays strict: any bad signature fails.
	if err := VerifyQC(s, qc, quorum); err == nil {
		t.Fatal("strict VerifyQC accepted a garbage signature")
	}
}

// TestQCBatchStructuralChecks: duplicates and arity mismatches are
// rejected before any signature work.
func TestQCBatchStructuralChecks(t *testing.T) {
	s, _ := NewScheme("hmac", 4, 1)
	blockID := types.Hash{0x01}
	digest := types.SigningDigest(1, blockID)
	sig, _ := s.Sign(1, digest)
	dup := &types.QC{View: 1, BlockID: blockID,
		Signers: []types.NodeID{1, 1, 2}, Sigs: [][]byte{sig, sig, sig}}
	if err := VerifyQCBatch(s, dup, 3); !errors.Is(err, ErrDuplicateSigner) {
		t.Fatalf("duplicate signers: %v", err)
	}
	arity := &types.QC{View: 1, BlockID: blockID,
		Signers: []types.NodeID{1, 2, 3}, Sigs: [][]byte{sig}}
	if err := VerifyQCBatch(s, arity, 3); !errors.Is(err, ErrArityMismatch) {
		t.Fatalf("arity mismatch: %v", err)
	}
	small := &types.QC{View: 1, BlockID: blockID,
		Signers: []types.NodeID{1}, Sigs: [][]byte{sig}}
	if err := VerifyQCBatch(s, small, 3); !errors.Is(err, ErrQuorumTooSmall) {
		t.Fatalf("below quorum: %v", err)
	}
	if err := VerifyQCBatch(s, &types.QC{View: 0}, 3); err != nil {
		t.Fatalf("genesis QC rejected: %v", err)
	}
}

// TestTCBatchMirrorsQC: timeout certificates get the same tolerant
// batch semantics.
func TestTCBatchMirrorsQC(t *testing.T) {
	const n, quorum = 4, 3
	s, err := NewScheme("ed25519", n, 1)
	if err != nil {
		t.Fatal(err)
	}
	digest := types.TimeoutDigest(9)
	tc := &types.TC{View: 9}
	for i := 1; i <= n; i++ {
		sig, err := s.Sign(types.NodeID(i), digest)
		if err != nil {
			t.Fatal(err)
		}
		tc.Signers = append(tc.Signers, types.NodeID(i))
		tc.Sigs = append(tc.Sigs, sig)
	}
	tc.Sigs[0] = []byte("bad")
	if err := VerifyTCBatch(s, tc, quorum); err != nil {
		t.Fatalf("TC with %d honest signatures rejected: %v", n-1, err)
	}
	tc.Sigs[1] = []byte("bad too")
	if err := VerifyTCBatch(s, tc, quorum); err == nil {
		t.Fatal("TC below quorum of valid signatures accepted")
	}
}

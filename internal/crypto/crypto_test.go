package crypto

import (
	"errors"
	"testing"
	"testing/quick"

	"github.com/bamboo-bft/bamboo/internal/types"
)

func schemes(t *testing.T) map[string]Scheme {
	t.Helper()
	return map[string]Scheme{
		"ed25519": NewEd25519(4, 1),
		"hmac":    NewHMAC(1),
		"noop":    Noop{},
	}
}

func TestSignVerifyRoundTrip(t *testing.T) {
	digest := types.SigningDigest(3, types.Hash{7})
	for name, s := range schemes(t) {
		t.Run(name, func(t *testing.T) {
			sig, err := s.Sign(1, digest)
			if err != nil {
				t.Fatalf("sign: %v", err)
			}
			if err := s.Verify(1, digest, sig); err != nil {
				t.Fatalf("verify: %v", err)
			}
		})
	}
}

func TestVerifyRejectsTamper(t *testing.T) {
	digest := types.SigningDigest(3, types.Hash{7})
	other := types.SigningDigest(4, types.Hash{7})
	for name, s := range schemes(t) {
		if name == "noop" {
			continue // noop accepts everything by design
		}
		t.Run(name, func(t *testing.T) {
			sig, err := s.Sign(1, digest)
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Verify(1, other, sig); err == nil {
				t.Fatal("verification succeeded for wrong digest")
			}
			if err := s.Verify(2, digest, sig); err == nil {
				t.Fatal("verification succeeded for wrong signer")
			}
			mut := append([]byte(nil), sig...)
			mut[0] ^= 0xff
			if err := s.Verify(1, digest, mut); err == nil {
				t.Fatal("verification succeeded for corrupted signature")
			}
		})
	}
}

func TestEd25519Deterministic(t *testing.T) {
	a, b := NewEd25519(4, 42), NewEd25519(4, 42)
	d := types.SigningDigest(1, types.Hash{1})
	sa, _ := a.Sign(2, d)
	if err := b.Verify(2, d, sa); err != nil {
		t.Fatalf("same-seed keyrings disagree: %v", err)
	}
	c := NewEd25519(4, 43)
	if err := c.Verify(2, d, sa); err == nil {
		t.Fatal("different-seed keyring accepted signature")
	}
}

func TestEd25519Restrict(t *testing.T) {
	full := NewEd25519(4, 1)
	r := full.Restrict(2)
	d := types.SigningDigest(1, types.Hash{1})
	if _, err := r.Sign(2, d); err != nil {
		t.Fatalf("restricted scheme cannot sign own id: %v", err)
	}
	if _, err := r.Sign(3, d); !errors.Is(err, ErrMissingKey) {
		t.Fatalf("restricted scheme signed for peer: %v", err)
	}
	sig, _ := full.Sign(3, d)
	if err := r.Verify(3, d, sig); err != nil {
		t.Fatalf("restricted scheme cannot verify peer: %v", err)
	}
}

func TestEd25519UnknownSigner(t *testing.T) {
	s := NewEd25519(4, 1)
	d := types.SigningDigest(1, types.Hash{1})
	if _, err := s.Sign(99, d); !errors.Is(err, ErrMissingKey) {
		t.Fatalf("want ErrMissingKey, got %v", err)
	}
	if err := s.Verify(99, d, []byte{1}); !errors.Is(err, ErrUnknownSigner) {
		t.Fatalf("want ErrUnknownSigner, got %v", err)
	}
}

func TestNewSchemeFactory(t *testing.T) {
	for _, name := range []string{"", "ed25519", "hmac", "noop"} {
		if _, err := NewScheme(name, 4, 1); err != nil {
			t.Fatalf("NewScheme(%q): %v", name, err)
		}
	}
	if _, err := NewScheme("rsa", 4, 1); err == nil {
		t.Fatal("unknown scheme accepted")
	}
}

func buildQC(t *testing.T, s Scheme, view types.View, block types.Hash, signers []types.NodeID) *types.QC {
	t.Helper()
	qc := &types.QC{View: view, BlockID: block}
	digest := types.SigningDigest(view, block)
	for _, id := range signers {
		sig, err := s.Sign(id, digest)
		if err != nil {
			t.Fatal(err)
		}
		qc.Signers = append(qc.Signers, id)
		qc.Sigs = append(qc.Sigs, sig)
	}
	return qc
}

func TestVerifyQC(t *testing.T) {
	s := NewEd25519(4, 1)
	qc := buildQC(t, s, 5, types.Hash{5}, []types.NodeID{1, 2, 3})
	if err := VerifyQC(s, qc, 3); err != nil {
		t.Fatalf("valid QC rejected: %v", err)
	}
	if err := VerifyQC(s, qc, 4); !errors.Is(err, ErrQuorumTooSmall) {
		t.Fatalf("undersized QC accepted: %v", err)
	}

	dup := buildQC(t, s, 5, types.Hash{5}, []types.NodeID{1, 2, 2})
	if err := VerifyQC(s, dup, 3); !errors.Is(err, ErrDuplicateSigner) {
		t.Fatalf("duplicate signers accepted: %v", err)
	}

	bad := buildQC(t, s, 5, types.Hash{5}, []types.NodeID{1, 2, 3})
	bad.Sigs[1][0] ^= 0xff
	if err := VerifyQC(s, bad, 3); err == nil {
		t.Fatal("corrupted QC accepted")
	}

	mismatch := buildQC(t, s, 5, types.Hash{5}, []types.NodeID{1, 2, 3})
	mismatch.Sigs = mismatch.Sigs[:2]
	if err := VerifyQC(s, mismatch, 3); !errors.Is(err, ErrArityMismatch) {
		t.Fatalf("arity mismatch accepted: %v", err)
	}

	if err := VerifyQC(s, types.GenesisQC(), 3); err != nil {
		t.Fatalf("genesis QC rejected: %v", err)
	}
	if err := VerifyQC(s, nil, 3); err == nil {
		t.Fatal("nil QC accepted")
	}
}

func TestVerifyTC(t *testing.T) {
	s := NewEd25519(4, 1)
	tc := &types.TC{View: 9}
	digest := types.TimeoutDigest(9)
	for _, id := range []types.NodeID{1, 2, 3} {
		sig, err := s.Sign(id, digest)
		if err != nil {
			t.Fatal(err)
		}
		tc.Signers = append(tc.Signers, id)
		tc.Sigs = append(tc.Sigs, sig)
	}
	if err := VerifyTC(s, tc, 3); err != nil {
		t.Fatalf("valid TC rejected: %v", err)
	}
	if err := VerifyTC(s, tc, 4); !errors.Is(err, ErrQuorumTooSmall) {
		t.Fatalf("undersized TC accepted: %v", err)
	}
	tc.Sigs[0][0] ^= 0xff
	if err := VerifyTC(s, tc, 3); err == nil {
		t.Fatal("corrupted TC accepted")
	}
	if err := VerifyTC(s, nil, 3); err == nil {
		t.Fatal("nil TC accepted")
	}
}

// Property: for the HMAC scheme, a tag never verifies under a
// different signer or digest.
func TestHMACNoCrossAttributionQuick(t *testing.T) {
	s := NewHMAC(7)
	f := func(a, b uint32, d1, d2 [8]byte) bool {
		sig, err := s.Sign(types.NodeID(a), d1[:])
		if err != nil {
			return false
		}
		if a != b {
			if s.Verify(types.NodeID(b), d1[:], sig) == nil {
				return false
			}
		}
		if d1 != d2 {
			if s.Verify(types.NodeID(a), d2[:], sig) == nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSign(b *testing.B) {
	digest := types.SigningDigest(3, types.Hash{7})
	for name, s := range map[string]Scheme{
		"ed25519": NewEd25519(4, 1), "hmac": NewHMAC(1), "noop": Noop{},
	} {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := s.Sign(1, digest); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkVerify(b *testing.B) {
	digest := types.SigningDigest(3, types.Hash{7})
	for name, s := range map[string]Scheme{
		"ed25519": NewEd25519(4, 1), "hmac": NewHMAC(1), "noop": Noop{},
	} {
		sig, err := s.Sign(1, digest)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := s.Verify(1, digest, sig); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

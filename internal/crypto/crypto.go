// Package crypto provides the signature schemes used to authenticate
// votes, blocks, and timeouts, plus helpers to verify quorum and
// timeout certificates.
//
// Three schemes are available:
//
//   - Ed25519: real asymmetric signatures (the default; the paper uses
//     secp256k1, which is not in the Go standard library — Ed25519 has
//     the same constant-cost sign/verify profile, which is all the
//     performance model observes through its t_CPU parameter).
//   - HMAC: shared-key MACs. Cheap; used by large-scale single-process
//     benchmarks where per-replica asymmetric verification would
//     measure the host CPU rather than the protocols. Not
//     Byzantine-authentic (insiders share the key) — benchmarking only.
//   - Noop: no authentication; isolates pure protocol-logic cost.
//
// All replicas in a run share one scheme, so protocol comparisons stay
// apples-to-apples regardless of the choice.
package crypto

import (
	"errors"
	"fmt"

	"github.com/bamboo-bft/bamboo/internal/types"
)

// Common verification errors.
var (
	ErrUnknownSigner   = errors.New("crypto: unknown signer")
	ErrBadSignature    = errors.New("crypto: signature verification failed")
	ErrMissingKey      = errors.New("crypto: no private key for signer")
	ErrQuorumTooSmall  = errors.New("crypto: certificate below quorum size")
	ErrDuplicateSigner = errors.New("crypto: duplicate signer in certificate")
	ErrArityMismatch   = errors.New("crypto: signer/signature count mismatch")
)

// Scheme signs and verifies digests on behalf of node identities.
// Implementations must be safe for concurrent use.
type Scheme interface {
	// Name identifies the scheme ("ed25519", "hmac", "noop") for
	// configuration and bench reporting.
	Name() string
	// Sign produces signer's signature over digest. It fails if
	// this Scheme instance does not hold signer's private key.
	Sign(signer types.NodeID, digest []byte) ([]byte, error)
	// Verify checks that sig is signer's signature over digest.
	Verify(signer types.NodeID, digest, sig []byte) error
}

// NewScheme constructs the named scheme for n replicas with a
// deterministic seed (keys are derived from the seed so every process
// in a test cluster can derive the same keyring).
func NewScheme(name string, n int, seed int64) (Scheme, error) {
	switch name {
	case "", "ed25519":
		return NewEd25519(n, seed), nil
	case "hmac":
		return NewHMAC(seed), nil
	case "noop":
		return Noop{}, nil
	default:
		return nil, fmt.Errorf("crypto: unknown scheme %q", name)
	}
}

// VerifyQC checks a quorum certificate: at least quorum distinct
// signers, each with a valid signature over the certificate's
// (view, block) digest. Genesis QCs (view 0) are valid by construction.
func VerifyQC(s Scheme, qc *types.QC, quorum int) error {
	if qc == nil {
		return errors.New("crypto: nil QC")
	}
	if qc.IsGenesis() {
		return nil
	}
	if len(qc.Signers) != len(qc.Sigs) {
		return ErrArityMismatch
	}
	if len(qc.Signers) < quorum {
		return fmt.Errorf("%w: %d < %d", ErrQuorumTooSmall, len(qc.Signers), quorum)
	}
	digest := types.SigningDigest(qc.View, qc.BlockID)
	seen := make(map[types.NodeID]struct{}, len(qc.Signers))
	for i, id := range qc.Signers {
		if _, dup := seen[id]; dup {
			return fmt.Errorf("%w: %s", ErrDuplicateSigner, id)
		}
		seen[id] = struct{}{}
		if err := s.Verify(id, digest, qc.Sigs[i]); err != nil {
			return fmt.Errorf("qc signer %s: %w", id, err)
		}
	}
	return nil
}

// VerifyTC checks a timeout certificate the same way VerifyQC checks a
// quorum certificate, over the timeout digest of the TC's view.
func VerifyTC(s Scheme, tc *types.TC, quorum int) error {
	if tc == nil {
		return errors.New("crypto: nil TC")
	}
	if len(tc.Signers) != len(tc.Sigs) {
		return ErrArityMismatch
	}
	if len(tc.Signers) < quorum {
		return fmt.Errorf("%w: %d < %d", ErrQuorumTooSmall, len(tc.Signers), quorum)
	}
	digest := types.TimeoutDigest(tc.View)
	seen := make(map[types.NodeID]struct{}, len(tc.Signers))
	for i, id := range tc.Signers {
		if _, dup := seen[id]; dup {
			return fmt.Errorf("%w: %s", ErrDuplicateSigner, id)
		}
		seen[id] = struct{}{}
		if err := s.Verify(id, digest, tc.Sigs[i]); err != nil {
			return fmt.Errorf("tc signer %s: %w", id, err)
		}
	}
	return nil
}

package crypto

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"fmt"

	"github.com/bamboo-bft/bamboo/internal/types"
)

// HMAC is a Scheme using HMAC-SHA256 with a single shared secret.
// Every holder of the secret can produce a tag for any identity, so
// this is NOT Byzantine-authentic; it exists so that single-process
// benchmarks at n=32/64 measure protocol behaviour rather than the
// host's ability to run thousands of Ed25519 verifications per second
// on two cores. The tag is keyed by signer identity so accidental
// cross-attribution still fails verification.
type HMAC struct {
	key [32]byte
}

// NewHMAC derives the shared secret from seed.
func NewHMAC(seed int64) *HMAC {
	var material [16]byte
	binary.BigEndian.PutUint64(material[:8], uint64(seed))
	copy(material[8:], "bamboohm")
	h := &HMAC{}
	h.key = sha256.Sum256(material[:])
	return h
}

// Name implements Scheme.
func (h *HMAC) Name() string { return "hmac" }

func (h *HMAC) tag(signer types.NodeID, digest []byte) []byte {
	mac := hmac.New(sha256.New, h.key[:])
	var idb [4]byte
	binary.BigEndian.PutUint32(idb[:], uint32(signer))
	mac.Write(idb[:])
	mac.Write(digest)
	return mac.Sum(nil)
}

// Sign implements Scheme.
func (h *HMAC) Sign(signer types.NodeID, digest []byte) ([]byte, error) {
	return h.tag(signer, digest), nil
}

// Verify implements Scheme.
func (h *HMAC) Verify(signer types.NodeID, digest, sig []byte) error {
	if !hmac.Equal(h.tag(signer, digest), sig) {
		return fmt.Errorf("%w: %s", ErrBadSignature, signer)
	}
	return nil
}

// Package pacemaker implements the view-synchronization module of
// Section III-B, following the LibraBFT realization the paper adopts:
// whenever a replica's timer for its current view v expires it
// broadcasts ⟨TIMEOUT, v⟩ and advances to v+1 as soon as a quorum of
// matching timeouts — a timeout certificate (TC) — is collected. The
// TC is forwarded to the leader of v+1, which uses it to propose
// immediately (optimistic responsiveness) or after waiting the maximum
// network delay (the non-responsive variants).
//
// The pacemaker is passive: the replica's event loop drives it and
// reacts to the local-timeout channel. Internal state is mutex-guarded
// because the view timer fires on a runtime goroutine.
package pacemaker

import (
	"sync"
	"sync/atomic"
	"time"

	"github.com/bamboo-bft/bamboo/internal/quorum"
	"github.com/bamboo-bft/bamboo/internal/types"
)

// Pacemaker tracks the current view, runs the view timer, and
// aggregates timeout messages into TCs.
type Pacemaker struct {
	mu       sync.Mutex
	view     types.View
	timeout  time.Duration
	timer    *time.Timer
	stopped  bool
	timeouts *quorum.Timeouts

	// timeoutCh surfaces local timer expirations to the event loop;
	// the payload is the view that timed out.
	timeoutCh chan types.View

	// fired counts timer expirations surfaced over the pacemaker's
	// lifetime (re-firings while stuck included) — the telemetry
	// plane's view-synchronization health counter.
	fired atomic.Uint64
}

// New creates a pacemaker starting at view 1 with the given view timer
// duration and timeout-certificate quorum. The timer does not run
// until Start is called — view bookkeeping (AdvanceTo) works before
// then, which is how restart bootstrap fast-forwards a replayed
// replica to its pre-crash view without timers firing mid-replay.
func New(timeout time.Duration, quorumSize int) *Pacemaker {
	return &Pacemaker{
		view:      1,
		timeout:   timeout,
		stopped:   true,
		timeouts:  quorum.NewTimeouts(quorumSize),
		timeoutCh: make(chan types.View, 8),
	}
}

// Start arms the view timer for the current view.
func (p *Pacemaker) Start() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stopped = false
	p.resetTimerLocked()
}

// Stop disarms the timer; no further timeout events fire.
func (p *Pacemaker) Stop() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stopped = true
	if p.timer != nil {
		p.timer.Stop()
	}
}

// CurView returns the replica's current view.
func (p *Pacemaker) CurView() types.View {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.view
}

// TimeoutChan streams local view-timer expirations. If the replica
// stays stuck in a view the timer re-fires every timeout period so the
// replica keeps re-broadcasting its timeout (message loss tolerance).
func (p *Pacemaker) TimeoutChan() <-chan types.View { return p.timeoutCh }

// resetTimerLocked (re)arms the timer for the current view.
func (p *Pacemaker) resetTimerLocked() {
	if p.timer != nil {
		p.timer.Stop()
	}
	if p.stopped || p.timeout <= 0 {
		return
	}
	view := p.view
	p.timer = time.AfterFunc(p.timeout, func() { p.fire(view) })
}

// fire surfaces a timer expiration if the view is still current, then
// re-arms for the same view so timeouts keep re-broadcasting while the
// replica is stuck.
func (p *Pacemaker) fire(view types.View) {
	p.mu.Lock()
	if p.stopped || view != p.view {
		p.mu.Unlock()
		return
	}
	p.timer = time.AfterFunc(p.timeout, func() { p.fire(view) })
	p.mu.Unlock()
	p.fired.Add(1)
	select {
	case p.timeoutCh <- view:
	default:
		// The event loop is behind; it will see the next firing.
	}
}

// AdvanceTo moves the replica to the given view if it is ahead of the
// current one, re-arming the timer. It returns true if the view
// changed. Happy-path view synchronization calls this with qc.View+1;
// timeout-path synchronization with tc.View+1.
func (p *Pacemaker) AdvanceTo(v types.View) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if v <= p.view {
		return false
	}
	p.view = v
	p.timeouts.Prune(v)
	p.resetTimerLocked()
	return true
}

// OnTimeoutMsg aggregates a remote (or the local) timeout message.
// When the quorum-th distinct timeout for a view arrives it returns
// the freshly formed TC, exactly once per view.
func (p *Pacemaker) OnTimeoutMsg(t *types.Timeout) (*types.TC, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if t.View < p.view {
		return nil, false // stale
	}
	return p.timeouts.Add(t)
}

// TimeoutCount returns how many distinct replicas have been seen
// timing out of the view — the engine's f+1 "join" amplification rule
// reads it to keep staggered replicas synchronized.
func (p *Pacemaker) TimeoutCount(view types.View) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.timeouts.Count(view)
}

// TimeoutsFired returns how many view-timer expirations the pacemaker
// has surfaced over its lifetime, readable from any goroutine (the
// /metrics exposition's bamboo_pacemaker_timeouts_fired_total).
func (p *Pacemaker) TimeoutsFired() uint64 { return p.fired.Load() }

// PendingTimeoutSets reports live timeout aggregation sets (leak
// detection in long-running tests).
func (p *Pacemaker) PendingTimeoutSets() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.timeouts.Size()
}

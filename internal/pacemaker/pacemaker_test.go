package pacemaker

import (
	"testing"
	"time"

	"github.com/bamboo-bft/bamboo/internal/types"
)

func TestStartsAtViewOne(t *testing.T) {
	p := New(time.Hour, 3)
	if p.CurView() != 1 {
		t.Fatalf("view = %d, want 1", p.CurView())
	}
}

func TestTimerFires(t *testing.T) {
	p := New(20*time.Millisecond, 3)
	p.Start()
	defer p.Stop()
	select {
	case v := <-p.TimeoutChan():
		if v != 1 {
			t.Fatalf("timeout for view %d, want 1", v)
		}
	case <-time.After(time.Second):
		t.Fatal("timer never fired")
	}
}

func TestTimerRefiresWhileStuck(t *testing.T) {
	p := New(15*time.Millisecond, 3)
	p.Start()
	defer p.Stop()
	for i := 0; i < 3; i++ {
		select {
		case v := <-p.TimeoutChan():
			if v != 1 {
				t.Fatalf("timeout for view %d, want 1 (stuck)", v)
			}
		case <-time.After(time.Second):
			t.Fatalf("timer did not re-fire (iteration %d)", i)
		}
	}
}

func TestAdvanceResetsTimer(t *testing.T) {
	p := New(40*time.Millisecond, 3)
	p.Start()
	defer p.Stop()
	// Keep advancing before the timer can fire.
	for v := types.View(2); v <= 5; v++ {
		time.Sleep(10 * time.Millisecond)
		if !p.AdvanceTo(v) {
			t.Fatalf("advance to %d failed", v)
		}
	}
	select {
	case v := <-p.TimeoutChan():
		t.Fatalf("timer fired for view %d despite steady progress", v)
	default:
	}
	if p.CurView() != 5 {
		t.Fatalf("view = %d, want 5", p.CurView())
	}
}

func TestAdvanceRejectsStale(t *testing.T) {
	p := New(time.Hour, 3)
	if !p.AdvanceTo(5) {
		t.Fatal("advance failed")
	}
	if p.AdvanceTo(5) || p.AdvanceTo(3) {
		t.Fatal("stale advance accepted")
	}
	if p.CurView() != 5 {
		t.Fatalf("view = %d", p.CurView())
	}
}

func TestStaleTimerEventSuppressed(t *testing.T) {
	p := New(25*time.Millisecond, 3)
	p.Start()
	defer p.Stop()
	// Advance immediately; the view-1 timer must not surface.
	p.AdvanceTo(2)
	select {
	case v := <-p.TimeoutChan():
		if v == 1 {
			t.Fatal("stale view-1 timeout surfaced after advance")
		}
	case <-time.After(60 * time.Millisecond):
		// View 2's timer fired or not; either way no stale event.
	}
}

func TestTCFormation(t *testing.T) {
	p := New(time.Hour, 3)
	mk := func(voter types.NodeID, qcView types.View) *types.Timeout {
		return &types.Timeout{
			View:   1,
			Voter:  voter,
			HighQC: &types.QC{View: qcView},
			Sig:    []byte{byte(voter)},
		}
	}
	if _, ok := p.OnTimeoutMsg(mk(1, 0)); ok {
		t.Fatal("TC before quorum")
	}
	if _, ok := p.OnTimeoutMsg(mk(2, 5)); ok {
		t.Fatal("TC before quorum")
	}
	tc, ok := p.OnTimeoutMsg(mk(3, 2))
	if !ok {
		t.Fatal("no TC at quorum")
	}
	if tc.View != 1 || len(tc.Signers) != 3 {
		t.Fatalf("TC = %+v", tc)
	}
	if tc.HighQC == nil || tc.HighQC.View != 5 {
		t.Fatalf("TC HighQC = %+v, want view 5", tc.HighQC)
	}
	// Advancing prunes the old sets.
	p.AdvanceTo(2)
	if p.PendingTimeoutSets() != 0 {
		t.Fatalf("timeout sets leaked: %d", p.PendingTimeoutSets())
	}
}

func TestStaleTimeoutMsgIgnored(t *testing.T) {
	p := New(time.Hour, 2)
	p.AdvanceTo(10)
	if _, ok := p.OnTimeoutMsg(&types.Timeout{View: 3, Voter: 1}); ok {
		t.Fatal("stale timeout formed TC")
	}
	if p.PendingTimeoutSets() != 0 {
		t.Fatal("stale timeout buffered")
	}
}

func TestStopPreventsFiring(t *testing.T) {
	p := New(15*time.Millisecond, 3)
	p.Start()
	p.Stop()
	select {
	case <-p.TimeoutChan():
		t.Fatal("timer fired after Stop")
	case <-time.After(60 * time.Millisecond):
	}
}

func TestZeroTimeoutNeverFires(t *testing.T) {
	p := New(0, 3)
	p.Start()
	defer p.Stop()
	select {
	case <-p.TimeoutChan():
		t.Fatal("zero-timeout pacemaker fired")
	case <-time.After(50 * time.Millisecond):
	}
}

// Package snapshot makes catch-up and restart cost proportional to
// state instead of history. A Snapshot captures one replica's state
// machine at a committed height: the canonical state serialization,
// its digest, and the certified block header anchoring it to the
// chain. Replicas persist snapshots periodically alongside the ledger
// (which then compacts the covered prefix), serve them to peers whose
// gap outruns every retained ledger prefix, and replay their own
// snapshot + ledger suffix on restart instead of re-fetching the whole
// chain through state sync.
//
// Trust model: a snapshot's payload is self-authenticating against its
// digest, but the digest itself is only as good as its source. A
// requester therefore cross-checks the {height, block, digest} triple
// against f+1 peers before streaming any chunk — at least one of f+1
// agreeing replicas is honest — and additionally verifies the quorum
// certificate carried by the manifest, which binds the snapshot height
// to a certified block of the real chain.
package snapshot

import (
	"bytes"
	"crypto/sha256"
	"encoding/gob"
	"errors"
	"fmt"
	"os"
	"sync"

	"github.com/bamboo-bft/bamboo/internal/types"
)

// ChunkSize is the transfer granularity snapshots are served at: big
// enough to amortize a round trip, comfortably below the codec's
// frame cap so a chunk message always fits one frame.
const ChunkSize = 256 << 10

// MaxChunkSize bounds the chunk size a requester accepts from a
// peer's manifest (a hostile manifest must not make the requester
// agree to frames the codec will reject anyway).
const MaxChunkSize = 4 << 20

// MaxStateSize bounds the total snapshot payload a requester will
// stream — a hostile manifest cannot commit it to gigabytes.
const MaxStateSize = 1 << 30

// State is the contract a state machine implements to be snapshotted:
// a deterministic serialization (equal committed prefixes must yield
// byte-identical output across replicas) and its inverse. The kvstore
// implements it.
type State interface {
	// SnapshotState serializes the full state canonically.
	SnapshotState() []byte
	// RestoreState replaces the state with a serialization produced
	// by SnapshotState.
	RestoreState(data []byte) error
}

// Snapshot is one captured state: everything a peer needs to install
// the state machine at Height and fast-forward from there.
type Snapshot struct {
	// Height is the committed height the state reflects.
	Height uint64
	// Block is the committed block header at Height (payload
	// stripped; the identity covers the payload through its digest).
	Block *types.Block
	// QC is a quorum certificate for Block — proof the snapshot
	// anchors to a certified block of the real chain.
	QC *types.QC
	// StateDigest is Digest(Payload), the state commitment peers
	// cross-check before trusting the snapshot.
	StateDigest types.Hash
	// Payload is the canonical state serialization.
	Payload []byte
}

// Digest is the state commitment: a SHA-256 over the canonical
// serialization.
func Digest(payload []byte) types.Hash {
	return sha256.Sum256(payload)
}

// ChunkCount returns how many ChunkSize-sized pieces a payload of the
// given total splits into (zero for an empty payload).
func ChunkCount(total uint64, chunkSize uint32) int {
	if chunkSize == 0 {
		return 0
	}
	return int((total + uint64(chunkSize) - 1) / uint64(chunkSize))
}

// ChunkDigests hashes every chunk of the payload, so a requester can
// verify each chunk the moment it arrives instead of discovering a
// tampered byte only after streaming the whole state.
func ChunkDigests(payload []byte, chunkSize uint32) []types.Hash {
	n := ChunkCount(uint64(len(payload)), chunkSize)
	out := make([]types.Hash, n)
	for i := 0; i < n; i++ {
		out[i] = sha256.Sum256(Chunk(payload, chunkSize, uint32(i)))
	}
	return out
}

// Chunk slices chunk i of the payload (nil when out of range).
func Chunk(payload []byte, chunkSize uint32, i uint32) []byte {
	start := uint64(i) * uint64(chunkSize)
	if start >= uint64(len(payload)) {
		return nil
	}
	end := start + uint64(chunkSize)
	if end > uint64(len(payload)) {
		end = uint64(len(payload))
	}
	return payload[start:end]
}

// Validate checks the snapshot's internal consistency: anchored block
// and certificate present and matching, payload hashing to the
// recorded digest. It does not verify certificate signatures — that
// is the consumer's job, with its own quorum size.
func (s *Snapshot) Validate() error {
	if s == nil || s.Block == nil || s.QC == nil {
		return errors.New("snapshot: missing block or certificate")
	}
	if s.Height == 0 {
		return errors.New("snapshot: zero height")
	}
	if s.QC.BlockID != s.Block.ID() {
		return errors.New("snapshot: certificate does not name the snapshot block")
	}
	if Digest(s.Payload) != s.StateDigest {
		return errors.New("snapshot: payload does not hash to the recorded digest")
	}
	return nil
}

// Store persists a replica's latest snapshot in one file, atomically
// replaced on every save (write-then-rename), and keeps it cached in
// memory for serving. Chunk digests are computed lazily on the first
// serve and cached — captures run on the commit path, and hashing the
// whole state a second time there would double the stall for a
// by-product only catch-up requesters need. Only the latest snapshot
// is retained: an older one is strictly dominated once the ledger
// holds the suffix between them.
type Store struct {
	mu      sync.Mutex
	path    string
	latest  *Snapshot
	digests []types.Hash
}

// OpenStore opens (or creates) the snapshot store at path, loading
// and validating any previously saved snapshot. A file that fails to
// decode or validate is ignored — the replica simply has no usable
// snapshot, the same as a fresh deployment.
func OpenStore(path string) (*Store, error) {
	st := &Store{path: path}
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return st, nil
	}
	if err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	var snap Snapshot
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&snap); err != nil {
		return st, nil
	}
	if snap.Validate() != nil {
		return st, nil
	}
	st.latest = &snap
	return st, nil
}

// Save validates and persists the snapshot as the new latest,
// atomically and durably: the bytes are synced to disk BEFORE the
// rename, because the caller's very next step is compacting the
// ledger prefix this snapshot replaces — a crash must never find the
// prefix gone and the snapshot still in the page cache.
func (st *Store) Save(s *Snapshot) error {
	if err := s.Validate(); err != nil {
		return err
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(s); err != nil {
		return fmt.Errorf("snapshot: encode: %w", err)
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	tmp := st.path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	if _, err := f.Write(buf.Bytes()); err != nil {
		_ = f.Close()
		return fmt.Errorf("snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return fmt.Errorf("snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	if err := os.Rename(tmp, st.path); err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	st.latest = s
	st.digests = nil // recomputed lazily on the first serve
	return nil
}

// Latest returns the cached latest snapshot and its per-chunk digests
// (at ChunkSize granularity), computing the digests on first use. The
// snapshot is shared, not copied — callers must treat it as immutable.
func (st *Store) Latest() (*Snapshot, []types.Hash, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.latest == nil {
		return nil, nil, false
	}
	if st.digests == nil && len(st.latest.Payload) > 0 {
		st.digests = ChunkDigests(st.latest.Payload, ChunkSize)
	}
	return st.latest, st.digests, true
}

package snapshot

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/bamboo-bft/bamboo/internal/types"
)

// testSnapshot builds a structurally valid snapshot over the given
// payload: a block header whose certificate names it.
func testSnapshot(t *testing.T, height uint64, payload []byte) *Snapshot {
	t.Helper()
	b := &types.Block{View: types.View(height), Proposer: 1, Parent: types.Hash{1}}
	return &Snapshot{
		Height:      height,
		Block:       b,
		QC:          &types.QC{View: types.View(height), BlockID: b.ID()},
		StateDigest: Digest(payload),
		Payload:     payload,
	}
}

func TestStoreSaveAndReload(t *testing.T) {
	path := filepath.Join(t.TempDir(), "replica.snap")
	st, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := st.Latest(); ok {
		t.Fatal("fresh store reports a snapshot")
	}
	payload := make([]byte, int(ChunkSize)+1234) // forces two chunks
	for i := range payload {
		payload[i] = byte(i)
	}
	snap := testSnapshot(t, 16, payload)
	if err := st.Save(snap); err != nil {
		t.Fatal(err)
	}
	got, digests, ok := st.Latest()
	if !ok || got.Height != 16 {
		t.Fatalf("latest = %v, %v", got, ok)
	}
	if len(digests) != 2 {
		t.Fatalf("chunk digests = %d, want 2", len(digests))
	}

	// A reopened store must load, validate, and re-chunk the file.
	st2, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	got2, digests2, ok := st2.Latest()
	if !ok || got2.Height != 16 || got2.StateDigest != snap.StateDigest {
		t.Fatalf("reloaded snapshot wrong: %+v ok=%v", got2, ok)
	}
	if len(digests2) != 2 || digests2[0] != digests[0] || digests2[1] != digests[1] {
		t.Fatal("reloaded chunk digests differ")
	}
	// Chunk slicing matches the digests.
	for i, d := range digests2 {
		if Digest(Chunk(got2.Payload, ChunkSize, uint32(i))) != d {
			t.Fatalf("chunk %d does not hash to its digest", i)
		}
	}
}

// TestStoreIgnoresCorruptFile: a damaged snapshot file must read as
// "no snapshot", never as a trusted state.
func TestStoreIgnoresCorruptFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "replica.snap")
	st, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Save(testSnapshot(t, 8, []byte("state"))); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff // flip a payload byte: digest mismatch
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	st2, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := st2.Latest(); ok {
		t.Fatal("corrupt snapshot file loaded as valid")
	}
}

// TestSaveRejectsInvalid: structurally broken snapshots never hit
// disk.
func TestSaveRejectsInvalid(t *testing.T) {
	st, err := OpenStore(filepath.Join(t.TempDir(), "replica.snap"))
	if err != nil {
		t.Fatal(err)
	}
	good := testSnapshot(t, 8, []byte("state"))

	bad := *good
	bad.StateDigest = types.Hash{0xbe, 0xef}
	if err := st.Save(&bad); err == nil {
		t.Fatal("digest mismatch saved")
	}
	bad = *good
	bad.QC = &types.QC{View: 8, BlockID: types.Hash{9}}
	if err := st.Save(&bad); err == nil {
		t.Fatal("certificate naming another block saved")
	}
	bad = *good
	bad.Height = 0
	if err := st.Save(&bad); err == nil {
		t.Fatal("zero-height snapshot saved")
	}
	if _, _, ok := st.Latest(); ok {
		t.Fatal("rejected snapshot became latest")
	}
}

func TestChunkMath(t *testing.T) {
	if ChunkCount(0, ChunkSize) != 0 {
		t.Fatal("empty payload has chunks")
	}
	if ChunkCount(1, ChunkSize) != 1 || ChunkCount(ChunkSize, ChunkSize) != 1 {
		t.Fatal("single-chunk boundary wrong")
	}
	if ChunkCount(ChunkSize+1, ChunkSize) != 2 {
		t.Fatal("chunk rounding wrong")
	}
	payload := []byte{1, 2, 3, 4, 5}
	if got := Chunk(payload, 2, 2); len(got) != 1 || got[0] != 5 {
		t.Fatalf("tail chunk = %v", got)
	}
	if Chunk(payload, 2, 3) != nil {
		t.Fatal("out-of-range chunk not nil")
	}
}

package cluster

import (
	"testing"
	"time"

	"github.com/bamboo-bft/bamboo/internal/config"
)

// TestStopIsIdempotent: the harness's defer-based teardown and
// explicit shutdown paths may both call Stop; the second and later
// calls must be no-ops instead of re-closing the switch and ledgers.
func TestStopIsIdempotent(t *testing.T) {
	cfg := testConfig(config.ProtocolHotStuff)
	c, err := New(cfg, Options{LedgerDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	drive(t, c, 4, 300*time.Millisecond)
	c.Stop()
	c.Stop() // must not panic or double-close
	c.Stop()
	if err := c.ConsistencyCheck(); err != nil {
		t.Fatal(err)
	}
}

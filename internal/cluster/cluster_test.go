package cluster

import (
	"sync"
	"testing"
	"time"

	"github.com/bamboo-bft/bamboo/internal/config"
	"github.com/bamboo-bft/bamboo/internal/protocol"
	"github.com/bamboo-bft/bamboo/internal/types"
)

// testConfig returns a fast 4-node configuration for integration
// tests: HMAC auth for speed, short timeouts.
func testConfig(proto string) config.Config {
	cfg := config.Default()
	cfg.Protocol = proto
	cfg.ApplyProtocolDefaults()
	cfg.BlockSize = 20
	cfg.MemSize = 10000
	cfg.Timeout = 150 * time.Millisecond
	cfg.MaxNetworkDelay = 10 * time.Millisecond
	cfg.CryptoScheme = "hmac"
	return cfg
}

// startCluster builds, starts, and tears down a cluster around fn.
func startCluster(t *testing.T, cfg config.Config, opts Options) *Cluster {
	t.Helper()
	var violated sync.Once
	if opts.OnViolation == nil {
		opts.OnViolation = func(err error) {
			violated.Do(func() { t.Errorf("safety violation: %v", err) })
		}
	}
	c, err := New(cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	t.Cleanup(c.Stop)
	return c
}

// drive pushes load through one closed-loop client for the duration.
func drive(t *testing.T, c *Cluster, concurrency int, d time.Duration) {
	t.Helper()
	cl, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	cl.RunClosedLoop(concurrency, 2*time.Second)
	time.Sleep(d)
	cl.Stop()
}

// TestHappyPathAllProtocols: every protocol commits client
// transactions on 4 honest nodes and all replicas agree on the chain.
func TestHappyPathAllProtocols(t *testing.T) {
	for _, proto := range protocol.Names() {
		proto := proto
		t.Run(proto, func(t *testing.T) {
			c := startCluster(t, testConfig(proto), Options{})
			cl, err := c.NewClient()
			if err != nil {
				t.Fatal(err)
			}
			cl.RunClosedLoop(8, 2*time.Second)
			deadline := time.Now().Add(10 * time.Second)
			for cl.Committed() < 200 && time.Now().Before(deadline) {
				time.Sleep(5 * time.Millisecond)
			}
			cl.Stop()
			if got := cl.Committed(); got < 200 {
				t.Fatalf("only %d transactions committed", got)
			}
			if err := c.ConsistencyCheck(); err != nil {
				t.Fatal(err)
			}
			if v := c.Violations(); v != 0 {
				t.Fatalf("%d safety violations", v)
			}
			if cl.Latency().Snapshot().Count == 0 {
				t.Fatal("no latency samples recorded")
			}
		})
	}
}

// TestExecutionLayerConsistency: committed commands reach every
// replica's kvstore identically.
func TestExecutionLayerConsistency(t *testing.T) {
	cfg := testConfig(config.ProtocolHotStuff)
	c := startCluster(t, cfg, Options{WithStores: true})
	cl, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if !cl.SubmitAndWait(5 * time.Second) {
			t.Fatalf("transaction %d did not commit", i)
		}
	}
	cl.Stop()
	// All stores converge on the same applied count (noop commands
	// mutate no keys, so compare applied counters). The slowest
	// replica may trail the replying one by a block; give it a
	// moment to drain.
	deadline := time.Now().Add(3 * time.Second)
	for {
		minApplied := uint64(1 << 62)
		for i := 1; i <= cfg.N; i++ {
			if a := c.Store(types.NodeID(i)).Applied(); a < minApplied {
				minApplied = a
			}
		}
		if minApplied >= 100 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("slowest store applied %d, want ≥ 100", minApplied)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestLeaderCrashLiveness: the pacemaker routes around a crashed
// leader; the cluster keeps committing. HotStuff runs with n=5: its
// three-consecutive-view commit rule needs four consecutive live
// leader slots (three proposers plus the final vote collector), which
// n=4 round-robin with one crashed replica can never provide — see
// TestHotStuffCrashAtFourNodesCannotCommit. Fast-HotStuff's two-chain
// rule needs only three consecutive slots, so n=4 suffices.
func TestLeaderCrashLiveness(t *testing.T) {
	for _, proto := range []string{config.ProtocolHotStuff, config.ProtocolFastHotStuff} {
		proto := proto
		t.Run(proto, func(t *testing.T) {
			cfg := testConfig(proto)
			if proto == config.ProtocolHotStuff {
				cfg.N = 5
			}
			c := startCluster(t, cfg, Options{})
			drive(t, c, 4, 300*time.Millisecond)
			before := c.Node(c.Observer()).Status().CommittedHeight
			if before == 0 {
				t.Fatal("no progress before crash")
			}
			c.Conditions().Crash(2)
			drive(t, c, 4, 1500*time.Millisecond)
			after := c.Node(c.Observer()).Status().CommittedHeight
			if after <= before+3 {
				t.Fatalf("no progress past crashed leader: %d -> %d", before, after)
			}
			if err := c.ConsistencyCheck(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestHotStuffCrashAtFourNodesCannotCommit pins a real and under-
// appreciated property of chained HotStuff that the Bamboo framework
// makes observable: with n=4 rotating leaders and one replica fully
// crashed (not merely proposal-silent), the three-consecutive-view
// commit rule can never fire again, because every fourth view loses
// either its proposal or its quorum certificate. The chain keeps
// growing; commitment plateaus. (Deployments avoid this with leader
// reputation; the paper's Figure 15 "crash" is the silence strategy,
// whose attacker still votes and aggregates, so commits flow there.)
func TestHotStuffCrashAtFourNodesCannotCommit(t *testing.T) {
	cfg := testConfig(config.ProtocolHotStuff)
	cfg.Timeout = 50 * time.Millisecond
	c := startCluster(t, cfg, Options{})
	drive(t, c, 4, 300*time.Millisecond)
	c.Conditions().Crash(2)
	time.Sleep(300 * time.Millisecond) // let pre-crash commits drain
	plateau := c.Node(c.Observer()).Status().CommittedHeight
	drive(t, c, 4, 1200*time.Millisecond)
	after := c.Node(c.Observer()).Status().CommittedHeight
	if after > plateau+2 {
		t.Fatalf("commits advanced %d -> %d; the three-chain rule should starve at n=4 with a crashed replica",
			plateau, after)
	}
	// Safety must still hold, and the chain itself may still grow.
	if err := c.ConsistencyCheck(); err != nil {
		t.Fatal(err)
	}
}

// TestNonResponsiveLeaderCrashLiveness: 2CHS and Streamlet also
// survive a crash, via the Δ-wait view change.
func TestNonResponsiveLeaderCrashLiveness(t *testing.T) {
	for _, proto := range []string{config.ProtocolTwoChainHS, config.ProtocolStreamlet} {
		proto := proto
		t.Run(proto, func(t *testing.T) {
			cfg := testConfig(proto)
			c := startCluster(t, cfg, Options{})
			drive(t, c, 4, 300*time.Millisecond)
			before := c.Node(c.Observer()).Status().CommittedHeight
			if before == 0 {
				t.Fatal("no progress before crash")
			}
			c.Conditions().Crash(2)
			drive(t, c, 4, 2*time.Second)
			after := c.Node(c.Observer()).Status().CommittedHeight
			if after <= before+3 {
				t.Fatalf("no progress past crashed leader: %d -> %d", before, after)
			}
			if err := c.ConsistencyCheck(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestForkingAttack: a forking attacker (node 1) overwrites
// uncommitted blocks in the HotStuff family — CGR drops below 1 —
// while Streamlet is immune (CGR stays 1). Safety always holds.
func TestForkingAttack(t *testing.T) {
	cases := []struct {
		proto      string
		vulnerable bool
	}{
		{config.ProtocolHotStuff, true},
		{config.ProtocolTwoChainHS, true},
		{config.ProtocolStreamlet, false},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.proto, func(t *testing.T) {
			cfg := testConfig(tc.proto)
			cfg.ByzNo = 1
			cfg.Strategy = config.StrategyForking
			c := startCluster(t, cfg, Options{})
			drive(t, c, 8, 2*time.Second)
			// Let in-flight blocks certify before sampling: blocks
			// accepted right at the measurement edge depress CGR
			// spuriously (more so under the race detector's slowdown).
			time.Sleep(300 * time.Millisecond)
			stats := c.AggregateChain()
			if stats.BlocksCommitted == 0 {
				t.Fatal("attack halted the chain entirely")
			}
			if tc.vulnerable && stats.CGR >= 0.999 {
				t.Fatalf("CGR = %.3f; forking attack had no effect on %s", stats.CGR, tc.proto)
			}
			if !tc.vulnerable && stats.CGR < 0.97 {
				t.Fatalf("CGR = %.3f; Streamlet should be immune to forking", stats.CGR)
			}
			if err := c.ConsistencyCheck(); err != nil {
				t.Fatal(err)
			}
			if v := c.Violations(); v != 0 {
				t.Fatalf("%d safety violations under forking attack", v)
			}
		})
	}
}

// TestSilenceAttack: a silent leader forces timeouts; progress
// continues, commitment is delayed (BI grows), and in the HotStuff
// family the block preceding the silent view is overwritten.
func TestSilenceAttack(t *testing.T) {
	for _, proto := range []string{config.ProtocolHotStuff, config.ProtocolTwoChainHS, config.ProtocolStreamlet} {
		proto := proto
		t.Run(proto, func(t *testing.T) {
			cfg := testConfig(proto)
			cfg.ByzNo = 1
			cfg.Strategy = config.StrategySilence
			cfg.Timeout = 60 * time.Millisecond
			c := startCluster(t, cfg, Options{})
			drive(t, c, 8, 2500*time.Millisecond)
			stats := c.AggregateChain()
			if stats.BlocksCommitted < 5 {
				t.Fatalf("only %d blocks committed under silence attack", stats.BlocksCommitted)
			}
			// Streamlet never forks: every block an honest replica
			// votes for eventually commits. A sliver of slack
			// covers blocks accepted right at the measurement edge
			// whose certification was still in flight at Stop.
			if proto == config.ProtocolStreamlet && stats.CGR < 0.97 {
				t.Fatalf("Streamlet CGR = %.3f under silence; forks should be impossible", stats.CGR)
			}
			if err := c.ConsistencyCheck(); err != nil {
				t.Fatal(err)
			}
			if v := c.Violations(); v != 0 {
				t.Fatalf("%d safety violations under silence attack", v)
			}
		})
	}
}

// TestEquivocationSafety: an equivocating leader cannot split the
// chain — quorum intersection starves one twin — and safety holds.
func TestEquivocationSafety(t *testing.T) {
	cfg := testConfig(config.ProtocolHotStuff)
	cfg.ByzNo = 1
	cfg.Strategy = config.StrategyEquivocate
	cfg.Timeout = 60 * time.Millisecond
	c := startCluster(t, cfg, Options{})
	drive(t, c, 8, 2*time.Second)
	if c.AggregateChain().BlocksCommitted == 0 {
		t.Fatal("no progress under equivocation")
	}
	if err := c.ConsistencyCheck(); err != nil {
		t.Fatal(err)
	}
	if v := c.Violations(); v != 0 {
		t.Fatalf("%d safety violations under equivocation", v)
	}
}

// TestPartitionHeal: a minority partition stalls nothing; after heal,
// the isolated replica catches up through fetch and commits match.
// HotStuff runs with n=5 for the same reason as TestLeaderCrashLiveness:
// its three-consecutive-view commit rule needs four consecutive live
// leader slots, which n=4 round-robin with one isolated replica can
// never provide — at n=4 the majority only advances on sub-millisecond
// in-flight races, which is a coin flip, not liveness.
func TestPartitionHeal(t *testing.T) {
	cfg := testConfig(config.ProtocolHotStuff)
	cfg.N = 5
	c := startCluster(t, cfg, Options{})
	drive(t, c, 4, 300*time.Millisecond)
	// Isolate node 5 (the observer); 1-4 keep the quorum.
	c.Conditions().Partition(map[types.NodeID]int{5: 1})
	drive(t, c, 4, 600*time.Millisecond)
	majorityHeight := c.Node(1).Status().CommittedHeight
	isolatedHeight := c.Node(5).Status().CommittedHeight
	if majorityHeight <= isolatedHeight {
		t.Fatalf("majority made no progress during partition: %d vs %d", majorityHeight, isolatedHeight)
	}
	c.Conditions().Heal()
	drive(t, c, 4, 1500*time.Millisecond)
	caughtUp := c.Node(5).Status().CommittedHeight
	if caughtUp <= majorityHeight {
		t.Fatalf("isolated replica did not catch up: %d vs %d", caughtUp, majorityHeight)
	}
	if err := c.ConsistencyCheck(); err != nil {
		t.Fatal(err)
	}
}

// TestChaosRandomDelaysAndLoss: randomized latency and 2% message
// loss across every protocol; liveness may degrade, safety must not.
func TestChaosRandomDelaysAndLoss(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test skipped in -short")
	}
	for _, proto := range protocol.Names() {
		proto := proto
		t.Run(proto, func(t *testing.T) {
			cfg := testConfig(proto)
			cfg.Delay = 2 * time.Millisecond
			cfg.DelayStd = 2 * time.Millisecond
			cfg.Timeout = 100 * time.Millisecond
			c := startCluster(t, cfg, Options{})
			c.Conditions().SetDropRate(0.02)
			drive(t, c, 8, 2500*time.Millisecond)
			if err := c.ConsistencyCheck(); err != nil {
				t.Fatal(err)
			}
			if v := c.Violations(); v != 0 {
				t.Fatalf("%d safety violations under chaos", v)
			}
			if c.AggregateChain().BlocksCommitted == 0 {
				t.Fatalf("%s: no blocks survived chaos", proto)
			}
		})
	}
}

// TestBlockIntervalBaselines: in a clean run the happy-path block
// interval reflects each commit rule: ≈3 views for HotStuff (three-
// chain), ≈2 for 2CHS and Streamlet... measured in commit distance:
// HotStuff commits the grandparent (BI ≈ 2 headroom above the
// two-chain protocols' parent commits, BI ≈ 1), plus view-advance lag.
func TestBlockIntervalBaselines(t *testing.T) {
	bi := func(proto string) float64 {
		cfg := testConfig(proto)
		c := startCluster(t, cfg, Options{})
		drive(t, c, 8, 1200*time.Millisecond)
		return c.AggregateChain().BI
	}
	hs := bi(config.ProtocolHotStuff)
	tchs := bi(config.ProtocolTwoChainHS)
	if hs <= tchs {
		t.Fatalf("HotStuff BI (%.2f) must exceed 2CHS BI (%.2f): three-chain vs two-chain", hs, tchs)
	}
}

// TestScalesTo16Nodes: a smoke check that larger clusters work.
func TestScalesTo16Nodes(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test skipped in -short")
	}
	cfg := testConfig(config.ProtocolHotStuff)
	cfg.N = 16
	c := startCluster(t, cfg, Options{})
	drive(t, c, 8, 1500*time.Millisecond)
	if c.Node(c.Observer()).Status().CommittedHeight < 5 {
		t.Fatal("16-node cluster made no progress")
	}
	if err := c.ConsistencyCheck(); err != nil {
		t.Fatal(err)
	}
}

// TestStaticLeader: Table I's master parameter pins one proposer.
func TestStaticLeader(t *testing.T) {
	cfg := testConfig(config.ProtocolHotStuff)
	cfg.Master = 2
	c := startCluster(t, cfg, Options{})
	drive(t, c, 4, 500*time.Millisecond)
	if c.Node(c.Observer()).Status().CommittedHeight == 0 {
		t.Fatal("static-leader cluster made no progress")
	}
	if err := c.ConsistencyCheck(); err != nil {
		t.Fatal(err)
	}
}

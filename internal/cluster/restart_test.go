package cluster

import (
	"testing"
	"time"

	"github.com/bamboo-bft/bamboo/internal/config"
	"github.com/bamboo-bft/bamboo/internal/types"
)

// waitUntil polls cond until it holds or the deadline passes.
func waitUntil(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestRestartReplayResumesChain: a whole cluster stopped and rebuilt
// over the same LedgerDir resumes from disk — every replica restores
// its own snapshot, replays only the ledger suffix above it (O(gap),
// not O(chain)), republishes its pre-stop committed height, and the
// cluster commits new blocks on top.
func TestRestartReplayResumesChain(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(config.ProtocolHotStuff)
	cfg.ForestKeep = 8
	cfg.SnapshotInterval = 8

	c1, err := New(cfg, Options{LedgerDir: dir, WithStores: true})
	if err != nil {
		t.Fatal(err)
	}
	c1.Start()
	cl, err := c1.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	cl.RunClosedLoop(8, 2*time.Second)
	if err := c1.WaitForHeight(30, 30*time.Second); err != nil {
		t.Fatal(err)
	}
	before := make([]uint64, cfg.N)
	for i := 1; i <= cfg.N; i++ {
		before[i-1] = c1.Node(types.NodeID(i)).Status().CommittedHeight
	}
	c1.Stop()

	c2, err := New(cfg, Options{LedgerDir: dir, WithStores: true})
	if err != nil {
		t.Fatal(err)
	}
	c2.Start()
	t.Cleanup(c2.Stop)
	var maxBefore uint64
	for i := 1; i <= cfg.N; i++ {
		id := types.NodeID(i)
		st := c2.Node(id).Status()
		p := c2.Node(id).Pipeline().Snapshot()
		// Exact-height recovery: the safety WAL retired the replay
		// holdback, so every height the replica reported committed
		// before the stop is committed again after it — no slack.
		if st.CommittedHeight < before[i-1] {
			t.Fatalf("replica %d rejoined at height %d, was at %d before the restart",
				i, st.CommittedHeight, before[i-1])
		}
		if st.SnapshotHeight == 0 {
			t.Fatalf("replica %d restored no snapshot", i)
		}
		// O(gap): the replay covered only the stretch between the
		// last snapshot and the head — never the whole chain.
		if p.ReplayedBlocks > uint64(cfg.SnapshotInterval) {
			t.Fatalf("replica %d replayed %d blocks, snapshot interval is %d",
				i, p.ReplayedBlocks, cfg.SnapshotInterval)
		}
		if st.CommittedHeight > maxBefore {
			maxBefore = st.CommittedHeight
		}
	}

	// The restarted cluster is alive: it commits past the replayed
	// head under fresh load, and stays consistent.
	cl2, err := c2.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	cl2.RunClosedLoop(8, 2*time.Second)
	if err := c2.WaitForHeight(maxBefore+10, 30*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := c2.ConsistencyCheck(); err != nil {
		t.Fatal(err)
	}
	if v := c2.Violations(); v != 0 {
		t.Fatalf("%d violations after restart", v)
	}
}

// TestRestartedReplicaSyncsOnlyMissedTail is the acceptance shape for
// restart replay: one replica crashes mid-run, the rest keep
// committing well past the keep window, and the whole deployment is
// then stopped and rebuilt over its ledgers. The once-crashed replica
// must replay its own ledger up to the height it went down at
// (ReplayedBlocks > 0, no network involved) and fetch only the tail
// it missed while down through ranged state sync — sync traffic
// bounded by the tail, not the chain.
func TestRestartedReplicaSyncsOnlyMissedTail(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(config.ProtocolHotStuff)
	cfg.N = 5
	cfg.ForestKeep = 8

	c1, err := New(cfg, Options{LedgerDir: dir, WithStores: true})
	if err != nil {
		t.Fatal(err)
	}
	c1.Start()
	cl, err := c1.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	cl.RunClosedLoop(8, 2*time.Second)
	if err := c1.WaitForHeight(12, 30*time.Second); err != nil {
		t.Fatal(err)
	}
	c1.Crash(2)
	// The survivors must outrun the crashed replica by well over a
	// keep window, so its post-restart tail needs deep sync.
	h2 := c1.Node(2).Status().CommittedHeight
	waitUntil(t, 30*time.Second, "survivors to outrun the crashed replica", func() bool {
		return c1.Node(5).Status().CommittedHeight > h2+25
	})
	h2 = c1.Node(2).Status().CommittedHeight // settle on the frozen height
	c1.Stop()

	c2, err := New(cfg, Options{LedgerDir: dir, WithStores: true})
	if err != nil {
		t.Fatal(err)
	}
	c2.Start()
	t.Cleanup(c2.Stop)
	st2 := c2.Node(2).Status()
	p2 := c2.Node(2).Pipeline().Snapshot()
	if p2.ReplayedBlocks == 0 {
		t.Fatal("restarted replica replayed nothing from its own ledger")
	}
	// Exact-height recovery: the full ledger is re-committed — the
	// crashed replica rejoins at the height it went down at, not a
	// holdback below it.
	if st2.CommittedHeight < h2 {
		t.Fatalf("restarted replica at height %d, its ledger reached %d", st2.CommittedHeight, h2)
	}
	replayBase := st2.CommittedHeight

	// Fresh load; the restarted replica closes its tail through sync.
	cl2, err := c2.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	cl2.RunClosedLoop(8, 2*time.Second)
	waitUntil(t, 45*time.Second, "restarted replica to close its tail", func() bool {
		lead := c2.Node(5).Status().CommittedHeight
		return lead > 0 && c2.Node(2).Status().CommittedHeight+uint64(cfg.ForestKeep) >= lead
	})
	p2 = c2.Node(2).Pipeline().Snapshot()
	final := c2.Node(2).Status().CommittedHeight
	if p2.SyncBlocksApplied == 0 {
		t.Fatal("tail deeper than the keep window closed without state sync")
	}
	// "At most the tail": everything synced lies above the replayed
	// base — the replay, not the network, covered the pre-crash
	// history.
	if p2.SyncBlocksApplied > final-replayBase {
		t.Fatalf("synced %d blocks, tail above the replayed base is only %d",
			p2.SyncBlocksApplied, final-replayBase)
	}
	if err := c2.ConsistencyCheck(); err != nil {
		t.Fatal(err)
	}
}

package cluster

import (
	"runtime"
	"strings"
	"testing"
	"time"

	"github.com/bamboo-bft/bamboo/internal/config"
	"github.com/bamboo-bft/bamboo/internal/types"
)

// assertNoTransportGoroutines is the goleak-style accounting behind
// the TCP teardown guarantees: after Stop, no listener, reader,
// writer, or condition-pump goroutine may survive and no dial retry
// may keep spinning. It polls because socket teardown is asynchronous.
func assertNoTransportGoroutines(t *testing.T) {
	t.Helper()
	markers := []string{
		"network.(*TCP).acceptLoop",
		"network.(*TCP).readLoop",
		"network.(*TCP).writeLoop",
		"network.(*Conditioned).pump",
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		var leaked []string
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		for _, stack := range strings.Split(string(buf[:n]), "\n\n") {
			for _, m := range markers {
				if strings.Contains(stack, m) {
					leaked = append(leaked, stack)
					break
				}
			}
		}
		if len(leaked) == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d transport goroutines leaked after Stop; first:\n%s", len(leaked), leaked[0])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestTCPBackendCommitsAndAgrees: the same cluster API, deployed over
// real loopback sockets, commits client transactions and keeps every
// replica on one chain.
func TestTCPBackendCommitsAndAgrees(t *testing.T) {
	cfg := testConfig(config.ProtocolHotStuff)
	c := startCluster(t, cfg, Options{Backend: BackendTCP})
	drive(t, c, 8, 800*time.Millisecond)
	if err := c.WaitForHeight(3, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := c.ConsistencyCheck(); err != nil {
		t.Fatal(err)
	}
	if v := c.Violations(); v != 0 {
		t.Fatalf("%d safety violations", v)
	}
	msgs, bytes, _ := c.NetworkStats()
	if msgs == 0 || bytes == 0 {
		t.Fatalf("transport counters empty: msgs=%d bytes=%d", msgs, bytes)
	}
	ts := c.TransportStats()
	if ts.Dials == 0 || ts.Accepted == 0 {
		t.Fatalf("expected real connections, stats %+v", ts)
	}
}

// TestTCPBackendCrashTeardownAndRecovery: Crash must sever the
// victim's sockets (visible as redials after Restart) while the rest
// keep committing, and the victim rejoins the chain afterwards.
func TestTCPBackendCrashTeardownAndRecovery(t *testing.T) {
	cfg := testConfig(config.ProtocolHotStuff)
	cfg.N = 5 // quorum survives one dark replica under rotation
	c := startCluster(t, cfg, Options{Backend: BackendTCP})
	cl, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	cl.RunClosedLoop(8, time.Second)
	defer cl.Stop()

	if err := c.WaitForHeight(2, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	c.Crash(2)
	before := c.Node(types.NodeID(2)).Status().CommittedHeight
	// The survivors must keep committing while 2 is dark.
	target := c.Node(c.Observer()).Status().CommittedHeight + 3
	deadline := time.Now().Add(5 * time.Second)
	for c.Node(c.Observer()).Status().CommittedHeight < target {
		if time.Now().After(deadline) {
			t.Fatal("survivors stalled during crash")
		}
		time.Sleep(5 * time.Millisecond)
	}
	c.Restart(2)
	// The restarted replica catches back up over fresh connections.
	deadline = time.Now().Add(5 * time.Second)
	for c.Node(types.NodeID(2)).Status().CommittedHeight <= before {
		if time.Now().After(deadline) {
			t.Fatal("crashed replica never rejoined")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := c.ConsistencyCheck(); err != nil {
		t.Fatal(err)
	}
	if ts := c.TransportStats(); ts.Redials == 0 {
		t.Fatalf("crash teardown must show up as redials, stats %+v", ts)
	}
}

// TestTCPBackendStopLeaksNothing: Stop on a TCP deployment — even one
// stopped mid-crash, with connections half torn down — must account
// for every transport goroutine.
func TestTCPBackendStopLeaksNothing(t *testing.T) {
	cfg := testConfig(config.ProtocolHotStuff)
	c, err := New(cfg, Options{Backend: BackendTCP})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	cl, err := c.NewClient()
	if err != nil {
		c.Stop()
		t.Fatal(err)
	}
	cl.RunClosedLoop(4, time.Second)
	time.Sleep(300 * time.Millisecond)
	// Stop in the middle of a crash teardown: the nastiest moment.
	c.Crash(3)
	c.Stop()
	c.Stop() // idempotent
	assertNoTransportGoroutines(t)
}

// TestUnknownBackendRejected: a typo'd backend must fail cluster
// assembly, not silently fall back to the switch.
func TestUnknownBackendRejected(t *testing.T) {
	cfg := testConfig(config.ProtocolHotStuff)
	if _, err := New(cfg, Options{Backend: "udp"}); err == nil {
		t.Fatal("unknown backend accepted")
	}
}

package cluster

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/bamboo-bft/bamboo/internal/config"
	"github.com/bamboo-bft/bamboo/internal/ledger"
	"github.com/bamboo-bft/bamboo/internal/types"
)

// diskHeight reads how many committed heights have actually reached
// the ledger file, without disturbing the writer: scan a byte-for-byte
// copy, so a partial tail record mid-append is tolerated the same way
// a real crash recovery would tolerate it.
func diskHeight(t *testing.T, path string) uint64 {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return 0
		}
		t.Fatal(err)
	}
	cp := filepath.Join(t.TempDir(), "copy.ledger")
	if err := os.WriteFile(cp, data, 0o644); err != nil {
		t.Fatal(err)
	}
	led, err := ledger.Open(cp)
	if err != nil {
		t.Fatal(err)
	}
	defer led.Close()
	return led.Height()
}

// TestLedgerDurabilityModes pins the difference Options.UnbufferedLedger
// selects. Buffered (the default): committed records sit in the
// writer's buffer, so the on-disk file lags the replica's committed
// height until Stop flushes — the tail a hard process kill would lose.
// Unbuffered (what bamboo-server runs): every committed height reaches
// the file as it commits, while the process is still alive.
func TestLedgerDurabilityModes(t *testing.T) {
	cfg := testConfig(config.ProtocolHotStuff)

	// Buffered default: disk lags memory until the flush on Stop.
	dirB := t.TempDir()
	cb := startCluster(t, cfg, Options{LedgerDir: dirB, WithStores: true})
	clB, err := cb.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	clB.RunClosedLoop(8, 2*time.Second)
	if err := cb.WaitForHeight(12, 30*time.Second); err != nil {
		t.Fatal(err)
	}
	pathB := filepath.Join(dirB, "replica-1.ledger")
	onDisk := diskHeight(t, pathB)
	committed := cb.Node(types.NodeID(1)).Status().CommittedHeight
	if onDisk >= committed {
		t.Fatalf("buffered ledger has %d of %d committed heights on disk before Stop — no buffering to speak of",
			onDisk, committed)
	}
	cb.Stop()
	if flushed := diskHeight(t, pathB); flushed < committed {
		t.Fatalf("buffered ledger flushed only %d of %d heights on Stop", flushed, committed)
	}

	// Unbuffered: the file keeps pace with the commit path while the
	// cluster is still running.
	dirU := t.TempDir()
	cu := startCluster(t, cfg, Options{LedgerDir: dirU, WithStores: true, UnbufferedLedger: true})
	clU, err := cu.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	clU.RunClosedLoop(8, 2*time.Second)
	if err := cu.WaitForHeight(12, 30*time.Second); err != nil {
		t.Fatal(err)
	}
	// The append trails the in-memory commit only by the apply stage's
	// queue, never by a buffer waiting on Stop.
	pathU := filepath.Join(dirU, "replica-1.ledger")
	waitUntil(t, 10*time.Second, "unbuffered appends to reach the file", func() bool {
		return diskHeight(t, pathU) >= 12
	})
	cu.Stop()
}

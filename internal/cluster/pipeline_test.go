package cluster

import (
	"testing"
	"time"

	"github.com/bamboo-bft/bamboo/internal/config"
	"github.com/bamboo-bft/bamboo/internal/protocol"
	"github.com/bamboo-bft/bamboo/internal/types"
)

// pipelineConfig returns testConfig with all three pipeline stages
// enabled: digest proposals, off-loop batch verification, and staged
// commit.
func pipelineConfig(proto string) config.Config {
	cfg := testConfig(proto)
	cfg.DigestProposals = true
	cfg.AsyncVerify = true
	cfg.AsyncCommit = true
	return cfg
}

// TestPipelinedHappyPathAllProtocols mirrors the happy path for every
// protocol with the full pipeline on: commits flow, replicas agree,
// and the digest data plane actually resolves proposals.
func TestPipelinedHappyPathAllProtocols(t *testing.T) {
	for _, proto := range protocol.Names() {
		proto := proto
		t.Run(proto, func(t *testing.T) {
			c := startCluster(t, pipelineConfig(proto), Options{})
			cl, err := c.NewClient()
			if err != nil {
				t.Fatal(err)
			}
			cl.RunClosedLoop(8, 2*time.Second)
			deadline := time.Now().Add(10 * time.Second)
			for cl.Committed() < 200 && time.Now().Before(deadline) {
				time.Sleep(5 * time.Millisecond)
			}
			cl.Stop()
			if got := cl.Committed(); got < 200 {
				t.Fatalf("only %d transactions committed", got)
			}
			if err := c.ConsistencyCheck(); err != nil {
				t.Fatal(err)
			}
			if v := c.Violations(); v != 0 {
				t.Fatalf("%d safety violations", v)
			}
			p := c.AggregatePipeline()
			if p.SigsVerified == 0 {
				t.Fatal("verification pool never ran")
			}
			// OHS keeps full proposals (lightweight client path);
			// every other protocol must resolve digests locally.
			if proto != config.ProtocolOHS && p.DigestResolved == 0 {
				t.Fatal("no digest proposal resolved from the mempool")
			}
		})
	}
}

// TestPipelinedForkingAttack re-runs the forking adversary with the
// pipeline on: the attack still degrades CGR (the pipeline must not
// mask protocol behaviour) and safety still holds.
func TestPipelinedForkingAttack(t *testing.T) {
	cfg := pipelineConfig(config.ProtocolHotStuff)
	cfg.ByzNo = 1
	cfg.Strategy = config.StrategyForking
	c := startCluster(t, cfg, Options{})
	drive(t, c, 8, 2*time.Second)
	stats := c.AggregateChain()
	if stats.BlocksCommitted == 0 {
		t.Fatal("attack halted the chain entirely")
	}
	if stats.CGR >= 0.999 {
		t.Fatalf("CGR = %.3f; forking attack had no effect under the pipeline", stats.CGR)
	}
	if err := c.ConsistencyCheck(); err != nil {
		t.Fatal(err)
	}
	if v := c.Violations(); v != 0 {
		t.Fatalf("%d safety violations under forking attack", v)
	}
}

// TestPipelinedSilenceAttack re-runs the silence adversary with the
// pipeline on.
func TestPipelinedSilenceAttack(t *testing.T) {
	cfg := pipelineConfig(config.ProtocolHotStuff)
	cfg.ByzNo = 1
	cfg.Strategy = config.StrategySilence
	cfg.Timeout = 60 * time.Millisecond
	c := startCluster(t, cfg, Options{})
	drive(t, c, 8, 2500*time.Millisecond)
	stats := c.AggregateChain()
	if stats.BlocksCommitted < 5 {
		t.Fatalf("only %d blocks committed under silence attack", stats.BlocksCommitted)
	}
	if err := c.ConsistencyCheck(); err != nil {
		t.Fatal(err)
	}
	if v := c.Violations(); v != 0 {
		t.Fatalf("%d safety violations under silence attack", v)
	}
}

// TestPipelinedEquivocationSafety re-runs the equivocating leader with
// the pipeline on: quorum intersection still starves one twin.
func TestPipelinedEquivocationSafety(t *testing.T) {
	cfg := pipelineConfig(config.ProtocolHotStuff)
	cfg.ByzNo = 1
	cfg.Strategy = config.StrategyEquivocate
	c := startCluster(t, cfg, Options{})
	drive(t, c, 8, 2*time.Second)
	if err := c.ConsistencyCheck(); err != nil {
		t.Fatal(err)
	}
	if v := c.Violations(); v != 0 {
		t.Fatalf("%d safety violations under equivocation", v)
	}
}

// TestStagedCommitDrainsOnStop: with the commit-apply stage on, every
// block committed before Stop finishes executing before Stop returns,
// and each replica's kvstore matches its own committed transaction
// count exactly.
func TestStagedCommitDrainsOnStop(t *testing.T) {
	cfg := pipelineConfig(config.ProtocolHotStuff)
	c := startCluster(t, cfg, Options{WithStores: true})
	cl, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if !cl.SubmitAndWait(5 * time.Second) {
			t.Fatalf("transaction %d did not commit", i)
		}
	}
	cl.Stop()
	c.Stop() // drains the apply queues (idempotent with the cleanup)
	for i := 1; i <= cfg.N; i++ {
		id := types.NodeID(i)
		committed := c.Node(id).Tracker().Snapshot().TxCommitted
		applied := c.Store(id).Applied()
		if applied != committed {
			t.Fatalf("replica %s: applied %d of %d committed transactions after Stop",
				id, applied, committed)
		}
	}
	if p := c.AggregatePipeline(); p.BlocksApplied == 0 {
		t.Fatal("commit-apply stage never ran")
	}
}

// TestPipelinedTinyApplyQueueBackpressure: with a tiny apply queue the
// commit stage exerts backpressure rather than growing a backlog;
// consensus keeps committing and the backlog still drains at Stop.
func TestPipelinedTinyApplyQueueBackpressure(t *testing.T) {
	cfg := pipelineConfig(config.ProtocolHotStuff)
	cfg.ApplyQueue = 2
	c := startCluster(t, cfg, Options{WithStores: true})
	cl, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	cl.RunClosedLoop(16, 2*time.Second)
	time.Sleep(1500 * time.Millisecond)
	cl.Stop()
	if h := c.Node(c.Observer()).Status().CommittedHeight; h < 5 {
		t.Fatalf("consensus stalled: height %d", h)
	}
	c.Stop()
	for i := 1; i <= cfg.N; i++ {
		id := types.NodeID(i)
		if got, want := c.Store(id).Applied(), c.Node(id).Tracker().Snapshot().TxCommitted; got != want {
			t.Fatalf("replica %s: applied %d, committed %d", id, got, want)
		}
	}
}

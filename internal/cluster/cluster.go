// Package cluster orchestrates an in-process Bamboo deployment: N
// replicas over the channel switch or over real loopback TCP sockets
// (Options.Backend), a shared signature scheme, fault injection
// through the network condition model, benchmark clients, and
// cross-replica consistency checking. Integration tests and every
// figure's bench runner build on it.
package cluster

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"github.com/bamboo-bft/bamboo/internal/client"
	"github.com/bamboo-bft/bamboo/internal/config"
	"github.com/bamboo-bft/bamboo/internal/core"
	"github.com/bamboo-bft/bamboo/internal/crypto"
	"github.com/bamboo-bft/bamboo/internal/election"
	"github.com/bamboo-bft/bamboo/internal/kvstore"
	"github.com/bamboo-bft/bamboo/internal/ledger"
	"github.com/bamboo-bft/bamboo/internal/metrics"
	"github.com/bamboo-bft/bamboo/internal/network"
	"github.com/bamboo-bft/bamboo/internal/protocol"
	"github.com/bamboo-bft/bamboo/internal/snapshot"
	"github.com/bamboo-bft/bamboo/internal/types"
	"github.com/bamboo-bft/bamboo/internal/wal"
)

// clientIDBase offsets client endpoint IDs above any replica ID.
const clientIDBase = 1 << 16

// Backend names accepted by Options.Backend.
const (
	// BackendSwitch deploys over the in-process channel switch — the
	// simulation substrate with scheduler-driven delay modelling.
	BackendSwitch = "switch"
	// BackendTCP deploys one real TCP listener per replica on
	// loopback, with the condition model applied by a per-endpoint
	// shim — declared scenarios over real sockets.
	BackendTCP = "tcp"
)

// Options tunes cluster assembly.
type Options struct {
	// Backend selects the transport: "" or BackendSwitch for the
	// in-process switch, BackendTCP for loopback TCP listeners.
	// Fault semantics (partition/crash/delay/drop) are equivalent on
	// both; crashes on TCP additionally tear down the node's live
	// sockets so reconnect paths run.
	Backend string
	// WithStores attaches a kvstore to every replica.
	WithStores bool
	// CommitSeries, if non-nil, receives the observer replica's
	// committed transaction counts over time (Figure 15).
	CommitSeries *metrics.TimeSeries
	// OnViolation is invoked on any replica's safety violation.
	OnViolation func(error)
	// Elector overrides leader election for every replica (e.g.
	// hash-based election, the Section V-E design choice); nil uses
	// the configuration's default (round-robin, or static master).
	Elector election.Elector
	// LedgerDir, when set, gives every replica a persistent ledger
	// file (<dir>/replica-<id>.ledger) of its committed chain. When
	// empty, a temporary directory is created and removed on Stop:
	// the ledger doubles as the serving store for deep state sync
	// (catch-up past the forest keep window), so replicas get one by
	// default.
	LedgerDir string
	// DisableLedger turns persistence off entirely; replicas then
	// serve catch-up only from the in-memory forest keep window, a
	// replica isolated past it cannot recover, and no safety WAL is
	// kept (in-process restarts keep the node's memory anyway).
	DisableLedger bool
	// UnbufferedLedger opens each replica's ledger with plain Open
	// instead of OpenBuffered: every append reaches the file before
	// the commit path moves on, the same durability bamboo-server
	// runs with. The buffered default is faster but holds a tail of
	// committed records in memory — exactly the tail a CrashAt loses
	// on the fleet backend; set this when a switch/tcp scenario must
	// model the on-disk footprint a real process crash leaves.
	UnbufferedLedger bool
}

// Cluster is a running in-process deployment over either backend.
type Cluster struct {
	cfg  config.Config
	cond *network.Conditions
	// sw is the in-process switch (nil on the TCP backend).
	sw *network.Switch
	// tcps holds each replica's raw TCP transport and shims the
	// condition wrappers handed to the nodes (both nil on the switch
	// backend). cliShims collects client endpoints for stats; their
	// lifecycle belongs to client.Stop.
	tcps     map[types.NodeID]*network.TCP
	shims    map[types.NodeID]*network.Conditioned
	cliShims []*network.Conditioned
	scheme   crypto.Scheme
	nodes    map[types.NodeID]*core.Node
	stores   map[types.NodeID]*kvstore.Store
	ledgers  []*ledger.Ledger
	wals     []*wal.WAL
	clients  []*client.Client
	nextCli  uint64
	// tmpLedgerDir is the auto-created ledger directory, removed on
	// Stop; empty when the caller supplied LedgerDir (or disabled
	// persistence).
	tmpLedgerDir string

	stopOnce sync.Once
}

// New assembles a cluster from the run configuration. Replicas are
// constructed but not started.
func New(cfg config.Config, opts Options) (*Cluster, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	factory, err := protocol.Factory(cfg.Protocol)
	if err != nil {
		return nil, err
	}
	scheme, err := crypto.NewScheme(cfg.CryptoScheme, cfg.N, cfg.Seed)
	if err != nil {
		return nil, err
	}
	cond := network.NewConditions(cfg.Seed)
	cond.SetBaseDelay(cfg.Delay, cfg.DelayStd)
	if cfg.Bandwidth > 0 {
		cond.SetBandwidth(cfg.Bandwidth)
	}

	c := &Cluster{
		cfg:    cfg,
		cond:   cond,
		scheme: scheme,
		nodes:  make(map[types.NodeID]*core.Node, cfg.N),
		stores: make(map[types.NodeID]*kvstore.Store),
	}
	switch opts.Backend {
	case "", BackendSwitch:
		c.sw = network.NewSwitch(cond)
	case BackendTCP:
		if err := c.buildTCP(); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("cluster: unknown backend %q", opts.Backend)
	}
	withStores := opts.WithStores
	if cfg.SnapshotInterval > 0 {
		// Snapshots serialize the kvstore and compact the ledger the
		// snapshot covers: both halves must exist for the interval to
		// mean anything.
		if opts.DisableLedger {
			return nil, errors.New("cluster: snapshot interval needs the ledger enabled")
		}
		withStores = true
	}
	ledgerDir := opts.LedgerDir
	if ledgerDir == "" && !opts.DisableLedger {
		// Ledger-backed state sync is on by default: without a
		// persistent chain, a replica isolated past the forest keep
		// window can never recover (the exact liveness hole deep
		// catch-up closes).
		dir, err := os.MkdirTemp("", "bamboo-ledger-")
		if err != nil {
			return nil, fmt.Errorf("cluster: ledger dir: %w", err)
		}
		c.tmpLedgerDir = dir
		ledgerDir = dir
	}
	fail := func(err error) (*Cluster, error) {
		for _, led := range c.ledgers {
			_ = led.Close()
		}
		for _, w := range c.wals {
			_ = w.Close()
		}
		if c.sw != nil {
			c.sw.Close()
		}
		for _, sh := range c.shims {
			_ = sh.Close()
		}
		if c.tmpLedgerDir != "" {
			_ = os.RemoveAll(c.tmpLedgerDir)
		}
		return nil, err
	}
	observer := c.Observer()
	for i := 1; i <= cfg.N; i++ {
		id := types.NodeID(i)
		var ep network.Transport
		if c.sw != nil {
			e, err := c.sw.Join(id)
			if err != nil {
				return fail(err)
			}
			ep = e
		} else {
			ep = c.shims[id]
		}
		nodeOpts := core.Options{OnViolation: opts.OnViolation, Elector: opts.Elector}
		if withStores {
			store := kvstore.New()
			c.stores[id] = store
			nodeOpts.Execute = store.Apply
			// The kvstore doubles as the snapshottable state machine:
			// with it wired, the replica can install peer snapshots
			// during deep catch-up (and capture its own when the
			// interval and a snapshot store are configured).
			nodeOpts.State = store
		}
		if opts.CommitSeries != nil && id == observer {
			nodeOpts.CommitSeries = opts.CommitSeries
		}
		if ledgerDir != "" {
			openLedger := ledger.OpenBuffered
			if opts.UnbufferedLedger {
				openLedger = ledger.Open
			}
			led, err := openLedger(
				filepath.Join(ledgerDir, fmt.Sprintf("replica-%d.ledger", i)))
			if err != nil {
				return fail(err)
			}
			nodeOpts.Ledger = led
			c.ledgers = append(c.ledgers, led)
			// The safety WAL rides alongside the ledger: votes and
			// locks survive a restart over a reused LedgerDir, so
			// bootstrap can re-commit the full ledger with no
			// holdback. In-process "crashes" never take the page
			// cache with them, so the no-sync mode suffices.
			w, err := wal.OpenNoSync(
				filepath.Join(ledgerDir, fmt.Sprintf("replica-%d.wal", i)))
			if err != nil {
				return fail(err)
			}
			nodeOpts.WAL = w
			c.wals = append(c.wals, w)
			if withStores {
				snaps, err := snapshot.OpenStore(
					filepath.Join(ledgerDir, fmt.Sprintf("replica-%d.snap", i)))
				if err != nil {
					return fail(err)
				}
				nodeOpts.Snapshots = snaps
			}
			// Restart replay is on whenever persistence is: a fresh
			// ledger makes it a no-op, a reused LedgerDir makes the
			// replica rejoin at the height it went down at.
			nodeOpts.Bootstrap = true
		}
		c.nodes[id] = core.NewNode(id, cfg, factory, ep, scheme, nodeOpts)
	}
	return c, nil
}

// buildTCP stands up one real TCP listener per replica on loopback
// (ephemeral ports), cross-wires the dial addresses once every
// transport has bound, and wraps each endpoint in the shared condition
// model so the declared fault schedule applies identically to both
// backends.
func (c *Cluster) buildTCP() error {
	ids := make([]types.NodeID, 0, c.cfg.N)
	for i := 1; i <= c.cfg.N; i++ {
		ids = append(ids, types.NodeID(i))
	}
	c.tcps = make(map[types.NodeID]*network.TCP, c.cfg.N)
	c.shims = make(map[types.NodeID]*network.Conditioned, c.cfg.N)
	for _, id := range ids {
		// Peers start with empty addresses: only known after every
		// listener has bound, then filled in below.
		addrs := make(map[types.NodeID]string, c.cfg.N)
		for _, peer := range ids {
			addrs[peer] = ""
		}
		addrs[id] = "127.0.0.1:0"
		tr, err := network.NewTCP(id, addrs)
		if err != nil {
			for _, sh := range c.shims {
				_ = sh.Close()
			}
			return fmt.Errorf("cluster: tcp backend: %w", err)
		}
		c.tcps[id] = tr
		c.shims[id] = network.Condition(tr, c.cond, ids)
	}
	for _, id := range ids {
		for _, peer := range ids {
			if peer != id {
				c.tcps[id].SetPeerAddr(peer, c.tcps[peer].Addr())
			}
		}
	}
	return nil
}

// Observer returns the replica whose metrics represent the run: the
// highest-ID node, which is always honest (Byzantine nodes take the
// lowest IDs).
func (c *Cluster) Observer() types.NodeID { return types.NodeID(c.cfg.N) }

// Start launches every replica.
func (c *Cluster) Start() {
	for _, n := range c.nodes {
		n.Start()
	}
}

// Stop halts clients first (closing their endpoints), then replicas,
// then the transport substrate — the switch scheduler, or every TCP
// listener and connection — then flushes and closes any ledgers. On
// the TCP backend this leaves no listener or writer goroutine behind
// and no dial retry spinning (the tests assert it by goroutine
// accounting). Stop is idempotent: the harness's defer-based teardown
// and explicit shutdown paths may both call it; only the first call
// acts.
func (c *Cluster) Stop() {
	c.stopOnce.Do(func() {
		for _, cl := range c.clients {
			cl.Stop()
		}
		c.clients = nil
		for _, n := range c.nodes {
			n.Stop()
		}
		if c.sw != nil {
			c.sw.Close()
		}
		for _, sh := range c.shims {
			_ = sh.Close()
		}
		for _, led := range c.ledgers {
			_ = led.Close()
		}
		c.ledgers = nil
		for _, w := range c.wals {
			_ = w.Close()
		}
		c.wals = nil
		if c.tmpLedgerDir != "" {
			_ = os.RemoveAll(c.tmpLedgerDir)
			c.tmpLedgerDir = ""
		}
	})
}

// Node returns a replica by ID.
func (c *Cluster) Node(id types.NodeID) *core.Node { return c.nodes[id] }

// Store returns a replica's kvstore (nil without WithStores).
func (c *Cluster) Store(id types.NodeID) *kvstore.Store { return c.stores[id] }

// Conditions exposes the network fault-injection surface: one shared
// condition model, whichever backend carries the messages.
func (c *Cluster) Conditions() *network.Conditions { return c.cond }

// ApplyConditions compiles a declarative condition change onto the
// shared model — the harness fault scheduler's surface, identical in
// meaning to the admin endpoint a fleet deployment exposes per server.
func (c *Cluster) ApplyConditions(spec network.ConditionsSpec) {
	spec.Apply(c.cond, time.Now())
}

// Crash silences a replica in the condition model; on the TCP backend
// it additionally tears down the node's live sockets, so peers observe
// real connection resets and their reconnect paths run. The harness
// compiles CrashAt events onto this.
func (c *Cluster) Crash(id types.NodeID) {
	c.cond.Crash(id)
	if t, ok := c.tcps[id]; ok {
		t.ResetPeerConns()
	}
}

// Restart lifts a crash; torn-down TCP connections re-dial lazily on
// the next send in either direction.
func (c *Cluster) Restart(id types.NodeID) { c.cond.Restart(id) }

// NetworkStats reports deployment-wide message counters: the switch's
// own on the switch backend, the sum over every endpoint (replicas and
// clients) on TCP.
func (c *Cluster) NetworkStats() (msgs, bytes, dropped uint64) {
	if c.sw != nil {
		return c.sw.Stats()
	}
	s := c.TransportStats()
	return s.Msgs, s.Bytes, s.Dropped
}

// TransportStats sums the per-endpoint transport counters of a TCP
// deployment, including connection churn (dials, redials, accepts).
// Zero-valued on the switch backend, whose switch-wide counters
// NetworkStats reports.
func (c *Cluster) TransportStats() network.TransportStats {
	var agg network.TransportStats
	for _, sh := range c.shims {
		agg.Add(sh.Stats())
	}
	for _, sh := range c.cliShims {
		agg.Add(sh.Stats())
	}
	return agg
}

// Config returns the cluster's configuration.
func (c *Cluster) Config() config.Config { return c.cfg }

// NewClient attaches a benchmark client to the deployment: a switch
// endpoint, or — on TCP — its own loopback listener, with every
// replica taught the client's reply address. Either way the endpoint
// goes through the condition model, so partitions and crashes govern
// client traffic exactly as they do replica traffic.
func (c *Cluster) NewClient() (*client.Client, error) {
	c.nextCli++
	id := types.NodeID(clientIDBase + c.nextCli)
	var ep network.Transport
	if c.sw != nil {
		e, err := c.sw.JoinClient(id)
		if err != nil {
			return nil, err
		}
		ep = e
	} else {
		addrs := make(map[types.NodeID]string, c.cfg.N+1)
		addrs[id] = "127.0.0.1:0"
		for rid, tr := range c.tcps {
			addrs[rid] = tr.Addr()
		}
		tr, err := network.NewTCP(id, addrs)
		if err != nil {
			return nil, fmt.Errorf("cluster: client endpoint: %w", err)
		}
		// Replicas reply over the client's own listener; clients are
		// learned via SetPeerAddr, so they stay out of the replicas'
		// broadcast domain.
		for _, rt := range c.tcps {
			rt.SetPeerAddr(id, tr.Addr())
		}
		sh := network.Condition(tr, c.cond, nil)
		c.cliShims = append(c.cliShims, sh)
		ep = sh
	}
	cl := client.New(ep, c.cfg.N, c.cfg.PayloadSize, c.cfg.Seed+int64(c.nextCli))
	c.clients = append(c.clients, cl)
	return cl, nil
}

// HonestNodes lists the non-Byzantine replicas.
func (c *Cluster) HonestNodes() []*core.Node {
	out := make([]*core.Node, 0, c.cfg.N)
	for i := 1; i <= c.cfg.N; i++ {
		id := types.NodeID(i)
		if !c.cfg.IsByzantine(id) {
			out = append(out, c.nodes[id])
		}
	}
	return out
}

// Violations sums safety violations across all replicas; correct runs
// return zero.
func (c *Cluster) Violations() uint64 {
	var total uint64
	for _, n := range c.nodes {
		total += n.Violations()
	}
	return total
}

// ConsistencyCheck verifies that every pair of honest replicas agrees
// on the committed block hash at their common committed height — the
// paper's cross-node consistency check on the main chain.
func (c *Cluster) ConsistencyCheck() error {
	honest := c.HonestNodes()
	if len(honest) < 2 {
		return nil
	}
	min := honest[0].Status().CommittedHeight
	for _, n := range honest[1:] {
		if h := n.Status().CommittedHeight; h < min {
			min = h
		}
	}
	if min == 0 {
		return nil
	}
	// Compare at several heights, not just the tip, to catch
	// divergence that later commits could mask.
	for _, h := range []uint64{min, min / 2, 1} {
		var want types.Hash
		var wantFrom types.NodeID
		for _, n := range honest {
			got, ok := n.HashAt(h)
			if !ok {
				continue // compacted beyond window on this replica
			}
			if want.IsZero() {
				want, wantFrom = got, n.ID()
				continue
			}
			if got != want {
				return fmt.Errorf("cluster: replicas %s and %s disagree at height %d: %s vs %s",
					wantFrom, n.ID(), h, want, got)
			}
		}
	}
	return nil
}

// WaitForHeight blocks until every honest replica's committed height
// reaches the target, or the deadline passes.
func (c *Cluster) WaitForHeight(target uint64, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		ok := true
		for _, n := range c.HonestNodes() {
			if n.Status().CommittedHeight < target {
				ok = false
				break
			}
		}
		if ok {
			return nil
		}
		if time.Now().After(deadline) {
			return errors.New("cluster: timed out waiting for committed height")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// PipelineStats reports the observer replica's per-stage pipeline
// instrumentation (verify-queue wait, apply lag, digest fast-path
// counters) — the replica-side view of where hot-path time goes.
func (c *Cluster) PipelineStats() metrics.PipelineStats {
	return c.nodes[c.Observer()].Pipeline().Snapshot()
}

// AggregatePipeline sums the pipeline stage counters over the honest
// replicas (latency summaries are per-replica; the observer's are in
// PipelineStats).
func (c *Cluster) AggregatePipeline() metrics.PipelineStats {
	var agg metrics.PipelineStats
	for _, n := range c.HonestNodes() {
		agg.AddCounters(n.Pipeline().Snapshot())
	}
	return agg
}

// AggregateChain averages the chain micro-metrics (CGR, BI) over the
// honest replicas, the way the paper reports them "from a replica's
// view".
func (c *Cluster) AggregateChain() metrics.ChainStats {
	honest := c.HonestNodes()
	var agg metrics.ChainStats
	for _, n := range honest {
		agg.Accumulate(n.Tracker().Snapshot())
	}
	agg.AverageRatios(len(honest))
	return agg
}

package cluster

import (
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"github.com/bamboo-bft/bamboo/internal/config"
	"github.com/bamboo-bft/bamboo/internal/ledger"
	"github.com/bamboo-bft/bamboo/internal/types"
)

// TestLedgerPersistsCommittedChain: with LedgerDir set, every replica
// writes its committed chain to disk; after the run each file replays
// cleanly (contiguous heights, linked parents) and matches the
// replica's committed height, and all replicas persisted identical
// transaction sequences.
func TestLedgerPersistsCommittedChain(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(config.ProtocolHotStuff)
	c := startCluster(t, cfg, Options{LedgerDir: dir})
	cl, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if !cl.SubmitAndWait(5 * time.Second) {
			t.Fatalf("tx %d did not commit", i)
		}
	}
	heights := make(map[types.NodeID]uint64, cfg.N)
	for i := 1; i <= cfg.N; i++ {
		heights[types.NodeID(i)] = c.Node(types.NodeID(i)).Status().CommittedHeight
	}
	c.Stop() // flushes and closes the ledgers

	var firstTxSeq []types.TxID
	for i := 1; i <= cfg.N; i++ {
		path := filepath.Join(dir, fmt.Sprintf("replica-%d.ledger", i))
		var count uint64
		var txSeq []types.TxID
		err := ledger.Replay(path, func(b *types.Block, h uint64) error {
			count = h
			for j := range b.Payload {
				txSeq = append(txSeq, b.Payload[j].ID)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("replica %d replay: %v", i, err)
		}
		if count == 0 {
			t.Fatalf("replica %d persisted nothing", i)
		}
		// Commits continue between the snapshot and Stop (empty
		// views keep the chain moving), so the ledger may be ahead
		// of the snapshot — never behind it.
		if count < heights[types.NodeID(i)] {
			t.Fatalf("replica %d persisted %d heights, committed %d",
				i, count, heights[types.NodeID(i)])
		}
		// Every replica's persisted transaction order must agree on
		// the common prefix — the ledger is the durable main chain.
		if firstTxSeq == nil {
			firstTxSeq = txSeq
			continue
		}
		n := len(txSeq)
		if len(firstTxSeq) < n {
			n = len(firstTxSeq)
		}
		for j := 0; j < n; j++ {
			if txSeq[j] != firstTxSeq[j] {
				t.Fatalf("replica %d diverges from replica 1 at tx %d", i, j)
			}
		}
	}
}

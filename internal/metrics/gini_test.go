package metrics

import (
	"math"
	"testing"
	"time"

	"github.com/bamboo-bft/bamboo/internal/types"
)

func TestGiniUniform(t *testing.T) {
	for _, n := range []int{1, 4, 7} {
		counts := make([]uint64, n)
		for i := range counts {
			counts[i] = 25
		}
		if g := Gini(counts); math.Abs(g) > 1e-12 {
			t.Fatalf("Gini(uniform n=%d) = %g, want 0", n, g)
		}
	}
}

func TestGiniSingleProposer(t *testing.T) {
	for _, n := range []int{2, 4, 10} {
		counts := make([]uint64, n)
		counts[0] = 100
		want := float64(n-1) / float64(n)
		if g := Gini(counts); math.Abs(g-want) > 1e-12 {
			t.Fatalf("Gini(single, n=%d) = %g, want %g", n, g, want)
		}
	}
}

func TestGiniMixed(t *testing.T) {
	// Hand computation for [1,2,3,4] (already sorted):
	// G = 2*(1*1+2*2+3*3+4*4)/(4*10) - 5/4 = 60/40 - 1.25 = 0.25.
	if g := Gini([]uint64{1, 2, 3, 4}); math.Abs(g-0.25) > 1e-12 {
		t.Fatalf("Gini([1 2 3 4]) = %g, want 0.25", g)
	}
	// Order must not matter.
	if g := Gini([]uint64{4, 1, 3, 2}); math.Abs(g-0.25) > 1e-12 {
		t.Fatalf("Gini unsorted = %g, want 0.25", g)
	}
}

func TestGiniDegenerate(t *testing.T) {
	if g := Gini(nil); g != 0 {
		t.Fatalf("Gini(nil) = %g", g)
	}
	if g := Gini([]uint64{0, 0, 0}); g != 0 {
		t.Fatalf("Gini(zeros) = %g", g)
	}
}

func TestHistDataExportMerge(t *testing.T) {
	var a, b Latency
	for i := 0; i < 10; i++ {
		a.Record(2 * time.Millisecond)
		b.Record(40 * time.Millisecond)
	}
	ha, hb := a.Export(), b.Export()
	if ha.Count != 10 || hb.Count != 10 {
		t.Fatalf("export counts: %d %d", ha.Count, hb.Count)
	}
	ha.Merge(hb)
	if ha.Count != 20 {
		t.Fatalf("merged count = %d", ha.Count)
	}
	if ha.Max != int64(40*time.Millisecond) {
		t.Fatalf("merged max = %d", ha.Max)
	}
	sum := a.Snapshot().Mean*10 + b.Snapshot().Mean*10
	if got := time.Duration(ha.Sum); got != sum {
		t.Fatalf("merged sum = %v, want %v", got, sum)
	}
	// Round-trip through a live histogram digests sanely: the median
	// of 10×2ms + 10×40ms lands in the 2ms bucket's neighborhood.
	s := ha.Summary()
	if s.Count != 20 || s.P50 < time.Millisecond || s.P50 > 4*time.Millisecond {
		t.Fatalf("summary after merge: %+v", s)
	}
	if s.P99 < 30*time.Millisecond {
		t.Fatalf("P99 lost the slow mode: %+v", s)
	}
}

func TestHistBucketUpperMatchesLatency(t *testing.T) {
	var l Latency
	d := 5 * time.Millisecond
	l.Record(d)
	h := l.Export()
	idx := len(h.Buckets) - 1
	if h.Buckets[idx] != 1 {
		t.Fatalf("last bucket count = %d", h.Buckets[idx])
	}
	if upper := HistBucketUpper(idx); upper < d {
		t.Fatalf("bucket upper %v < recorded %v", upper, d)
	}
}

func TestChainTrackerProposerSharesAndGini(t *testing.T) {
	var ct ChainTracker
	ct.SetCohort(4)
	// Proposer 1 lands 6 blocks, proposer 2 lands 2, proposers 3 and 4
	// none: counts [6 2 0 0].
	for i := 0; i < 6; i++ {
		ct.OnBlockCommitted(1, types.View(i+1), types.View(i+4), 10)
	}
	for i := 0; i < 2; i++ {
		ct.OnBlockCommitted(2, types.View(i+10), types.View(i+13), 10)
	}
	s := ct.Snapshot()
	if s.Cohort != 4 || s.ProposerCommits[1] != 6 || s.ProposerCommits[2] != 2 {
		t.Fatalf("proposer commits: %+v", s)
	}
	shares := s.Shares()
	if len(shares) != 4 {
		t.Fatalf("shares = %v, want dense over cohort 4", shares)
	}
	if math.Abs(shares[0]-0.75) > 1e-12 || math.Abs(shares[1]-0.25) > 1e-12 || shares[2] != 0 || shares[3] != 0 {
		t.Fatalf("shares = %v", shares)
	}
	// Gini([6 2 0 0]) = 2*(1*0+2*0+3*2+4*6)/(4*8) - 5/4 = 60/32 - 1.25 = 0.625.
	if math.Abs(s.Gini-0.625) > 1e-12 {
		t.Fatalf("Gini = %g, want 0.625", s.Gini)
	}
}

func TestChainStatsAccumulateStages(t *testing.T) {
	var t1, t2 ChainTracker
	t1.SetCohort(3)
	t2.SetCohort(3)
	t1.OnStage(StageVerify, 1*time.Millisecond)
	t1.OnStage(StageCommit, 8*time.Millisecond)
	t2.OnStage(StageVerify, 2*time.Millisecond)
	t1.OnBlockCommitted(1, 1, 4, 5)
	t2.OnBlockCommitted(2, 2, 5, 5)
	t2.OnBlockCommitted(2, 3, 6, 5)

	var agg ChainStats
	agg.Accumulate(t1.Snapshot())
	agg.Accumulate(t2.Snapshot())
	agg.AverageRatios(2)

	if agg.Stages["verify"].Count != 2 {
		t.Fatalf("merged verify count = %d", agg.Stages["verify"].Count)
	}
	if agg.Stages["commit"].Count != 1 {
		t.Fatalf("merged commit count = %d", agg.Stages["commit"].Count)
	}
	if agg.ProposerCommits[1] != 1 || agg.ProposerCommits[2] != 2 {
		t.Fatalf("merged proposer commits: %+v", agg.ProposerCommits)
	}
	// Gini over [1 2 0]: 2*(1*0+2*1+3*2)/(3*3) - 4/3 = 16/9 - 12/9 = 4/9.
	if math.Abs(agg.Gini-4.0/9.0) > 1e-12 {
		t.Fatalf("merged Gini = %g, want %g", agg.Gini, 4.0/9.0)
	}
	sums := agg.StageSummaries()
	if sums["verify"].Count != 2 {
		t.Fatalf("stage summaries: %+v", sums)
	}
}

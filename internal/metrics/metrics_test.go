package metrics

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"github.com/bamboo-bft/bamboo/internal/types"
)

func TestLatencyEmpty(t *testing.T) {
	var l Latency
	s := l.Snapshot()
	if s.Count != 0 || s.Mean != 0 || s.P99 != 0 || s.Max != 0 {
		t.Fatalf("empty snapshot not zero: %+v", s)
	}
}

func TestLatencyMeanMax(t *testing.T) {
	var l Latency
	for _, d := range []time.Duration{
		1 * time.Millisecond, 2 * time.Millisecond, 3 * time.Millisecond,
	} {
		l.Record(d)
	}
	s := l.Snapshot()
	if s.Count != 3 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.Mean != 2*time.Millisecond {
		t.Fatalf("mean = %v, want 2ms", s.Mean)
	}
	if s.Max != 3*time.Millisecond {
		t.Fatalf("max = %v, want 3ms", s.Max)
	}
}

func TestLatencyQuantileAccuracy(t *testing.T) {
	var l Latency
	// 1000 samples uniform 1..1000 ms: P50 ≈ 500ms, P99 ≈ 990ms.
	for i := 1; i <= 1000; i++ {
		l.Record(time.Duration(i) * time.Millisecond)
	}
	s := l.Snapshot()
	within := func(got, want time.Duration, tol float64) bool {
		return math.Abs(float64(got)-float64(want)) <= tol*float64(want)
	}
	if !within(s.P50, 500*time.Millisecond, 0.15) {
		t.Errorf("P50 = %v, want ≈500ms", s.P50)
	}
	if !within(s.P99, 990*time.Millisecond, 0.15) {
		t.Errorf("P99 = %v, want ≈990ms", s.P99)
	}
	if s.P50 > s.P95 || s.P95 > s.P99 {
		t.Errorf("quantiles not monotone: %v %v %v", s.P50, s.P95, s.P99)
	}
}

func TestLatencyReset(t *testing.T) {
	var l Latency
	l.Record(time.Second)
	l.Reset()
	if s := l.Snapshot(); s.Count != 0 || s.Max != 0 {
		t.Fatalf("reset did not clear: %+v", s)
	}
}

func TestLatencyConcurrent(t *testing.T) {
	var l Latency
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				l.Record(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if s := l.Snapshot(); s.Count != 8000 {
		t.Fatalf("lost records under concurrency: %d", s.Count)
	}
}

func TestLatencyExtremes(t *testing.T) {
	var l Latency
	l.Record(-time.Second) // negative clamps to first bucket
	l.Record(time.Nanosecond)
	l.Record(24 * time.Hour) // beyond last bucket clamps
	if s := l.Snapshot(); s.Count != 3 {
		t.Fatalf("extreme values dropped: %+v", s)
	}
}

// Property: bucketIndex is monotone non-decreasing in duration.
func TestBucketIndexMonotoneQuick(t *testing.T) {
	f := func(a, b uint32) bool {
		da, db := time.Duration(a)*time.Microsecond, time.Duration(b)*time.Microsecond
		if da > db {
			da, db = db, da
		}
		return bucketIndex(da) <= bucketIndex(db)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Add(2)
			}
		}()
	}
	wg.Wait()
	if c.Load() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Load())
	}
}

func TestChainTrackerCGRAndBI(t *testing.T) {
	var ct ChainTracker
	// 10 blocks added; 8 commit; each commits 3 views after proposal
	// (HotStuff's happy-path three-chain) carrying 400 txs.
	for i := 0; i < 10; i++ {
		ct.OnBlockAdded()
	}
	for v := 1; v <= 8; v++ {
		ct.OnBlockCommitted(1, types.View(v), types.View(v+3), 400)
	}
	s := ct.Snapshot()
	if s.BlocksAdded != 10 || s.BlocksCommitted != 8 {
		t.Fatalf("counts wrong: %+v", s)
	}
	if math.Abs(s.CGR-0.8) > 1e-9 {
		t.Fatalf("CGR = %f, want 0.8", s.CGR)
	}
	if math.Abs(s.BI-3.0) > 1e-9 {
		t.Fatalf("BI = %f, want 3.0", s.BI)
	}
	if s.TxCommitted != 8*400 {
		t.Fatalf("txs = %d", s.TxCommitted)
	}
}

func TestChainTrackerEmpty(t *testing.T) {
	var ct ChainTracker
	s := ct.Snapshot()
	if s.CGR != 0 || s.BI != 0 {
		t.Fatalf("empty tracker must report zeros: %+v", s)
	}
}

func TestChainTrackerNonMonotoneCommitView(t *testing.T) {
	var ct ChainTracker
	ct.OnBlockAdded()
	// commitView < proposeView must not underflow the BI sum.
	ct.OnBlockCommitted(1, 9, 5, 1)
	if s := ct.Snapshot(); s.BI != 0 {
		t.Fatalf("BI = %f, want 0 for clamped negative interval", s.BI)
	}
}

func TestTimeSeries(t *testing.T) {
	start := time.Unix(1000, 0)
	ts := NewTimeSeries(start, time.Second)
	ts.Add(start.Add(100*time.Millisecond), 5)
	ts.Add(start.Add(900*time.Millisecond), 5)
	ts.Add(start.Add(2500*time.Millisecond), 7)
	ts.Add(start.Add(-time.Second), 99) // before start: dropped
	got := ts.Buckets()
	want := []uint64{10, 0, 7}
	if len(got) != len(want) {
		t.Fatalf("buckets = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("buckets = %v, want %v", got, want)
		}
	}
	rates := ts.Rates()
	if rates[0] != 10 || rates[2] != 7 {
		t.Fatalf("rates = %v", rates)
	}
	if ts.Interval() != time.Second {
		t.Fatal("interval accessor wrong")
	}
}

// TestLatencyMergeMatchesExactQuantiles drives two histograms with a
// log-uniform sample spread (the shape commit latencies take under
// load), merges them, and checks every reported quantile against the
// exact sorted-sample quantile. The geometric buckets grow by ×1.25,
// so a reported value may sit up to one growth factor above the exact
// one — and never below it, since quantiles report bucket upper bounds
// (clamped to the observed max).
func TestLatencyMergeMatchesExactQuantiles(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a, b := &Latency{}, &Latency{}
	const n = 20000
	all := make([]time.Duration, 0, n)
	for i := 0; i < n; i++ {
		// Log-uniform over 10µs .. 1s: five decades, like a latency
		// distribution with a long tail.
		d := time.Duration(float64(10*time.Microsecond) * math.Pow(1e5, rng.Float64()))
		all = append(all, d)
		if i%2 == 0 {
			a.Record(d)
		} else {
			b.Record(d)
		}
	}
	merged := &Latency{}
	merged.Merge(a)
	merged.Merge(b)
	s := merged.Snapshot()
	if s.Count != n {
		t.Fatalf("merged count = %d, want %d", s.Count, n)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	exact := func(q float64) time.Duration {
		return all[int(q*float64(n-1))]
	}
	for _, c := range []struct {
		name string
		got  time.Duration
		q    float64
	}{
		{"p50", s.P50, 0.50}, {"p95", s.P95, 0.95},
		{"p99", s.P99, 0.99}, {"p999", s.P999, 0.999},
	} {
		want := exact(c.q)
		ratio := float64(c.got) / float64(want)
		if ratio < 1.0/1.25 || ratio > 1.25 {
			t.Errorf("%s = %v, exact %v (ratio %.3f outside one bucket growth factor)",
				c.name, c.got, want, ratio)
		}
	}
	if s.P50 > s.P95 || s.P95 > s.P99 || s.P99 > s.P999 || s.P999 > s.Max {
		t.Errorf("merged quantiles not monotone: %v %v %v %v max %v",
			s.P50, s.P95, s.P99, s.P999, s.Max)
	}
}

package metrics

import "time"

// HistData is the raw, serializable form of a Latency histogram: the
// per-bucket counts (trimmed at the last non-zero bucket) plus the
// count/sum/max the summary statistics need. Unlike LatencySummary it
// merges losslessly — two HistData over the shared bucket geometry sum
// bucket-by-bucket — which is what lets the fleet harness combine
// per-replica stage histograms scraped over HTTP into one
// deployment-wide distribution before digesting quantiles.
type HistData struct {
	// Buckets holds the geometric bucket counts, trimmed after the
	// last non-zero bucket (bucket i spans up to HistBucketUpper(i)).
	Buckets []uint64 `json:"buckets,omitempty"`
	Count   uint64   `json:"count"`
	// Sum and Max are nanoseconds.
	Sum int64 `json:"sum"`
	Max int64 `json:"max"`
}

// HistBucketUpper returns the upper bound of histogram bucket i — the
// "le" edge a Prometheus exposition of the histogram reports.
func HistBucketUpper(i int) time.Duration { return bucketUpper(i) }

// Export snapshots the histogram into its raw mergeable form.
func (l *Latency) Export() HistData {
	l.mu.Lock()
	defer l.mu.Unlock()
	h := HistData{Count: l.count, Sum: int64(l.sum), Max: int64(l.max)}
	last := -1
	for i, c := range l.buckets {
		if c != 0 {
			last = i
		}
	}
	if last >= 0 {
		h.Buckets = make([]uint64, last+1)
		copy(h.Buckets, l.buckets[:last+1])
	}
	return h
}

// Merge folds other into h, bucket by bucket.
func (h *HistData) Merge(other HistData) {
	if len(other.Buckets) > len(h.Buckets) {
		grown := make([]uint64, len(other.Buckets))
		copy(grown, h.Buckets)
		h.Buckets = grown
	}
	for i, c := range other.Buckets {
		h.Buckets[i] += c
	}
	h.Count += other.Count
	h.Sum += other.Sum
	if other.Max > h.Max {
		h.Max = other.Max
	}
}

// Latency reconstructs a live histogram from the raw form.
func (h HistData) Latency() *Latency {
	l := &Latency{count: h.Count, sum: time.Duration(h.Sum), max: time.Duration(h.Max)}
	n := len(h.Buckets)
	if n > bucketCount {
		n = bucketCount
	}
	copy(l.buckets[:], h.Buckets[:n])
	return l
}

// Summary digests the raw histogram the same way Latency.Snapshot
// digests a live one.
func (h HistData) Summary() LatencySummary { return h.Latency().Snapshot() }

// Gini computes the Gini coefficient of the given counts — 0 for a
// perfectly uniform distribution, (n-1)/n when a single index holds
// everything. The chain-quality reading ("Leader Rotation Is Not
// Enough"): counts[i] is proposer i+1's committed-block count, zeros
// included for proposers that never landed a block, and a high
// coefficient means the committed chain is owned by few leaders even
// if rotation nominally spreads the proposer role.
func Gini(counts []uint64) float64 {
	n := len(counts)
	if n == 0 {
		return 0
	}
	sorted := make([]uint64, n)
	copy(sorted, counts)
	// Insertion sort: cohorts are replica counts (tens), not data sets.
	for i := 1; i < n; i++ {
		for j := i; j > 0 && sorted[j-1] > sorted[j]; j-- {
			sorted[j-1], sorted[j] = sorted[j], sorted[j-1]
		}
	}
	var total, weighted float64
	for i, c := range sorted {
		total += float64(c)
		weighted += float64(i+1) * float64(c)
	}
	if total == 0 {
		return 0
	}
	return 2*weighted/(float64(n)*total) - float64(n+1)/float64(n)
}

package metrics

import "time"

// PipelineStats digests the per-stage instrumentation of the replica
// hot-path pipeline: how long messages wait for the verification pool,
// how far block execution lags behind commitment, and how each stage's
// fast paths and fallbacks are doing.
type PipelineStats struct {
	// VerifyQueueWait is the latency distribution between a message
	// entering the verification queue and a worker picking it up.
	VerifyQueueWait LatencySummary
	// ApplyLag is the latency distribution between a block
	// committing on the event loop and its payload finishing
	// execution on the commit-apply stage.
	ApplyLag LatencySummary
	// SigsVerified counts signatures checked by the pool.
	SigsVerified uint64
	// BatchesVerified counts batch verification calls.
	BatchesVerified uint64
	// BatchFallbacks counts batches that failed and fell back to
	// per-signature verification.
	BatchFallbacks uint64
	// VerifyRejected counts messages dropped for bad signatures.
	VerifyRejected uint64
	// InlineVerifies counts messages verified on the event loop
	// because the verification queue was full (backpressure).
	InlineVerifies uint64
	// DigestResolved counts digest proposals rebuilt from the local
	// mempool (including batch-cache hits).
	DigestResolved uint64
	// DigestFetched counts digest proposals that missed the mempool
	// and fell back to fetching the full block.
	DigestFetched uint64
	// BlocksApplied counts blocks executed by the commit-apply stage.
	BlocksApplied uint64
	// SyncRequestsSent counts ranged catch-up requests this replica
	// issued while in deep state sync.
	SyncRequestsSent uint64
	// SyncBatchesServed counts ranged batches this replica served to
	// lagging peers from its ledger and forest.
	SyncBatchesServed uint64
	// SyncBlocksApplied counts committed blocks fast-forwarded through
	// verified state-sync responses.
	SyncBlocksApplied uint64
	// SyncRejected counts sync responses dropped for being
	// unsolicited, mis-ranged, or failing certificate verification —
	// including snapshot manifests and chunks that failed their
	// digest or certificate checks.
	SyncRejected uint64
	// SnapshotInstalls counts state snapshots this replica fetched
	// from peers, verified against f+1 manifests, and installed.
	SnapshotInstalls uint64
	// SnapshotsServed counts snapshot manifests this replica served
	// to catch-up requesters whose gap outran its ledger prefix.
	SnapshotsServed uint64
	// ReplayedBlocks counts committed blocks a restarted replica
	// replayed from its own ledger into forest and state machine
	// before joining — restart cost O(gap), not O(chain).
	ReplayedBlocks uint64
	// WALSyncs counts durable safety-state syncs (one fsync'd append
	// before every vote or timeout leaves the node).
	WALSyncs uint64
	// WALSyncWait is the latency distribution of those appends — the
	// per-vote durability tax the safety WAL charges the event loop.
	WALSyncWait LatencySummary
}

// AddCounters accumulates s's event counters into p — the shared
// result-assembly step of every deployment backend: the in-process
// cluster sums per-replica trackers directly, the fleet harness sums
// per-server slices collected over HTTP. Latency summaries are
// per-replica distributions and do not aggregate; they stay zero in
// the receiver.
func (p *PipelineStats) AddCounters(s PipelineStats) {
	p.SigsVerified += s.SigsVerified
	p.BatchesVerified += s.BatchesVerified
	p.BatchFallbacks += s.BatchFallbacks
	p.VerifyRejected += s.VerifyRejected
	p.InlineVerifies += s.InlineVerifies
	p.DigestResolved += s.DigestResolved
	p.DigestFetched += s.DigestFetched
	p.BlocksApplied += s.BlocksApplied
	p.SyncRequestsSent += s.SyncRequestsSent
	p.SyncBatchesServed += s.SyncBatchesServed
	p.SyncBlocksApplied += s.SyncBlocksApplied
	p.SyncRejected += s.SyncRejected
	p.SnapshotInstalls += s.SnapshotInstalls
	p.SnapshotsServed += s.SnapshotsServed
	p.ReplayedBlocks += s.ReplayedBlocks
	p.WALSyncs += s.WALSyncs
}

// PipelineTracker accumulates PipelineStats. The zero value is ready
// to use; all methods are safe for concurrent use.
type PipelineTracker struct {
	verifyWait Latency
	applyLag   Latency

	sigs      Counter
	batches   Counter
	fallbacks Counter
	rejected  Counter
	inline    Counter
	resolved  Counter
	fetched   Counter
	applied   Counter

	syncRequests Counter
	syncServed   Counter
	syncApplied  Counter
	syncRejected Counter

	snapInstalls Counter
	snapServed   Counter
	replayed     Counter

	walSyncs Counter
	walSync  Latency
}

// OnVerifyBatch records one verification pool batch: the queue wait of
// its oldest message, the number of signatures checked, and whether
// the batch fell back to per-signature verification.
func (p *PipelineTracker) OnVerifyBatch(wait time.Duration, sigs int, fellBack bool) {
	p.verifyWait.Record(wait)
	p.sigs.Add(uint64(sigs))
	p.batches.Add(1)
	if fellBack {
		p.fallbacks.Add(1)
	}
}

// OnVerifyRejected records a message dropped for failing verification.
func (p *PipelineTracker) OnVerifyRejected() { p.rejected.Add(1) }

// OnInlineVerify records a message verified on the event loop because
// the pool's queue was full.
func (p *PipelineTracker) OnInlineVerify() { p.inline.Add(1) }

// OnDigestResolved records a digest proposal rebuilt from the mempool.
func (p *PipelineTracker) OnDigestResolved() { p.resolved.Add(1) }

// OnDigestFetched records a digest proposal that fell back to a fetch.
func (p *PipelineTracker) OnDigestFetched() { p.fetched.Add(1) }

// OnBlockApplied records a block finishing execution lag behind its
// commit.
func (p *PipelineTracker) OnBlockApplied(lag time.Duration) {
	p.applyLag.Record(lag)
	p.applied.Add(1)
}

// OnSyncRequested records one ranged catch-up request sent.
func (p *PipelineTracker) OnSyncRequested() { p.syncRequests.Add(1) }

// OnSyncServed records one ranged batch served to a lagging peer.
func (p *PipelineTracker) OnSyncServed() { p.syncServed.Add(1) }

// OnSyncApplied records n blocks fast-forwarded through state sync.
func (p *PipelineTracker) OnSyncApplied(n uint64) { p.syncApplied.Add(n) }

// OnSyncRejected records a sync response dropped by verification.
func (p *PipelineTracker) OnSyncRejected() { p.syncRejected.Add(1) }

// OnSnapshotInstalled records a peer snapshot verified and installed.
func (p *PipelineTracker) OnSnapshotInstalled() { p.snapInstalls.Add(1) }

// OnSnapshotServed records a snapshot manifest served to a requester.
func (p *PipelineTracker) OnSnapshotServed() { p.snapServed.Add(1) }

// OnBlocksReplayed records n blocks replayed from the replica's own
// ledger during restart bootstrap.
func (p *PipelineTracker) OnBlocksReplayed(n uint64) { p.replayed.Add(n) }

// OnWALSync records one durable safety-state append and how long the
// event loop waited for it.
func (p *PipelineTracker) OnWALSync(d time.Duration) {
	p.walSyncs.Add(1)
	p.walSync.Record(d)
}

// SyncApplied returns the running count of sync-applied blocks (the
// replica status surface reads it without a full snapshot).
func (p *PipelineTracker) SyncApplied() uint64 { return p.syncApplied.Load() }

// Hists exports the tracker's latency histograms in raw mergeable
// form, keyed for a Prometheus exposition (seconds histograms named
// bamboo_<key>_seconds).
func (p *PipelineTracker) Hists() map[string]HistData {
	return map[string]HistData{
		"verify_queue_wait": p.verifyWait.Export(),
		"apply_lag":         p.applyLag.Export(),
		"wal_sync":          p.walSync.Export(),
	}
}

// Snapshot digests the tracker.
func (p *PipelineTracker) Snapshot() PipelineStats {
	return PipelineStats{
		VerifyQueueWait: p.verifyWait.Snapshot(),
		ApplyLag:        p.applyLag.Snapshot(),
		SigsVerified:    p.sigs.Load(),
		BatchesVerified: p.batches.Load(),
		BatchFallbacks:  p.fallbacks.Load(),
		VerifyRejected:  p.rejected.Load(),
		InlineVerifies:  p.inline.Load(),
		DigestResolved:  p.resolved.Load(),
		DigestFetched:   p.fetched.Load(),
		BlocksApplied:   p.applied.Load(),

		SyncRequestsSent:  p.syncRequests.Load(),
		SyncBatchesServed: p.syncServed.Load(),
		SyncBlocksApplied: p.syncApplied.Load(),
		SyncRejected:      p.syncRejected.Load(),

		SnapshotInstalls: p.snapInstalls.Load(),
		SnapshotsServed:  p.snapServed.Load(),
		ReplayedBlocks:   p.replayed.Load(),

		WALSyncs:    p.walSyncs.Load(),
		WALSyncWait: p.walSync.Snapshot(),
	}
}

// Package metrics implements the measurement facilities of the
// benchmarker: client-side latency histograms, throughput counters,
// the paper's two micro-metrics — chain growth rate (CGR) and block
// interval (BI) — and a time-series sampler for the responsiveness
// timeline (Figure 15).
package metrics

import (
	"math"
	"sync"
	"sync/atomic"
	"time"

	"github.com/bamboo-bft/bamboo/internal/types"
)

// latency histogram geometry: geometric buckets from 1µs up, growth
// ×1.25, which keeps quantile error under ~12% across six decades.
const (
	bucketBase   = float64(time.Microsecond)
	bucketGrowth = 1.25
	bucketCount  = 96
)

// LatencySummary is a point-in-time digest of a latency distribution.
// Quantiles come from the log-bucketed histogram: each is the upper
// bound of the bucket holding the target rank (clamped to the observed
// maximum), so a reported quantile is within one bucket-growth factor
// of the exact order statistic.
type LatencySummary struct {
	Count uint64
	Mean  time.Duration
	P50   time.Duration
	P95   time.Duration
	P99   time.Duration
	P999  time.Duration
	Max   time.Duration
}

// Latency is a concurrency-safe latency histogram.
// The zero value is ready to use.
type Latency struct {
	mu      sync.Mutex
	buckets [bucketCount]uint64
	count   uint64
	sum     time.Duration
	max     time.Duration
}

func bucketIndex(d time.Duration) int {
	if d <= 0 {
		return 0
	}
	idx := int(math.Log(float64(d)/bucketBase) / math.Log(bucketGrowth))
	if idx < 0 {
		return 0
	}
	if idx >= bucketCount {
		return bucketCount - 1
	}
	return idx
}

func bucketUpper(i int) time.Duration {
	return time.Duration(bucketBase * math.Pow(bucketGrowth, float64(i+1)))
}

// Record adds one observation.
func (l *Latency) Record(d time.Duration) {
	l.mu.Lock()
	l.buckets[bucketIndex(d)]++
	l.count++
	l.sum += d
	if d > l.max {
		l.max = d
	}
	l.mu.Unlock()
}

// Snapshot digests the current distribution.
func (l *Latency) Snapshot() LatencySummary {
	l.mu.Lock()
	defer l.mu.Unlock()
	s := LatencySummary{Count: l.count, Max: l.max}
	if l.count == 0 {
		return s
	}
	s.Mean = l.sum / time.Duration(l.count)
	quantile := func(q float64) time.Duration {
		target := uint64(q * float64(l.count))
		if target == 0 {
			target = 1
		}
		var cum uint64
		for i, c := range l.buckets {
			cum += c
			if cum >= target {
				// A bucket's upper bound can overshoot the largest
				// sample it holds; the observed maximum is a tighter
				// truth for the top buckets.
				if u := bucketUpper(i); u < l.max || l.max == 0 {
					return u
				}
				return l.max
			}
		}
		return l.max
	}
	s.P50, s.P95, s.P99, s.P999 = quantile(0.50), quantile(0.95), quantile(0.99), quantile(0.999)
	return s
}

// Merge folds other's observations into l — the per-client histograms
// of a multi-client load plan merge into one distribution this way, a
// sum of bucket counts with no loss beyond the shared bucket geometry
// (quantiles of the merge are as accurate as of any single histogram).
func (l *Latency) Merge(other *Latency) {
	if other == nil {
		return
	}
	other.mu.Lock()
	buckets := other.buckets
	count, sum, max := other.count, other.sum, other.max
	other.mu.Unlock()
	l.mu.Lock()
	for i, c := range buckets {
		l.buckets[i] += c
	}
	l.count += count
	l.sum += sum
	if max > l.max {
		l.max = max
	}
	l.mu.Unlock()
}

// Reset clears the histogram.
func (l *Latency) Reset() {
	l.mu.Lock()
	l.buckets = [bucketCount]uint64{}
	l.count, l.sum, l.max = 0, 0, 0
	l.mu.Unlock()
}

// Counter is an atomic event counter (committed transactions, sent
// messages, …). The zero value is ready to use.
type Counter struct {
	n atomic.Uint64
}

// Add increments the counter by delta.
func (c *Counter) Add(delta uint64) { c.n.Add(delta) }

// Load returns the current count.
func (c *Counter) Load() uint64 { return c.n.Load() }

// Stage names one leg of a committed block's lifecycle, as observed
// by a single replica's clock (cross-replica stamps would need clock
// agreement the harness does not assume): verify is proposal receipt
// to signature acceptance, vote is acceptance to the vote leaving,
// qc is the vote to the block's certificate arriving (vote collection
// plus dissemination), commit is the certificate to the commit rule
// firing (the chained-pipelining depth), execute is commit to the
// state machine finishing the payload.
type Stage int

// The block-lifecycle stages, in pipeline order.
const (
	StageVerify Stage = iota
	StageVote
	StageQC
	StageCommit
	StageExecute
	numStages
)

// StageNames lists the stage labels in pipeline order — the key set of
// ChainStats.Stages and the label values of the Prometheus
// bamboo_stage_seconds histogram.
var StageNames = [numStages]string{"verify", "vote", "qc", "commit", "execute"}

func (s Stage) String() string {
	if s < 0 || s >= numStages {
		return "unknown"
	}
	return StageNames[s]
}

// ChainStats digests a ChainTracker.
type ChainStats struct {
	// BlocksAdded counts blocks this replica accepted onto its
	// chain (voted for).
	BlocksAdded uint64
	// BlocksCommitted counts blocks that reached commitment.
	BlocksCommitted uint64
	// ViewsEntered counts views this replica entered.
	ViewsEntered uint64
	// CGR is the chain growth rate: committed blocks over blocks
	// appended onto the blockchain (Section IV-B). 1.0 means every
	// appended block eventually commits (no fork ever wastes an
	// accepted block); forking/silence attacks push it below 1 in
	// the HotStuff family. Commit/acceptance timing races at a
	// measurement edge are clamped so the ratio never exceeds 1.
	CGR float64
	// BI is the block interval: mean number of views from a
	// block's proposal view to the view in which it committed.
	BI float64
	// TxCommitted counts committed transactions.
	TxCommitted uint64
	// ProposerCommits counts committed blocks per proposer (keyed by
	// replica ID) — the raw material of the chain-quality reading.
	ProposerCommits map[uint32]uint64 `json:",omitempty"`
	// Cohort is the number of replicas the proposer shares are
	// measured over; proposers absent from ProposerCommits hold a
	// zero share.
	Cohort int `json:",omitempty"`
	// Gini is the Gini coefficient over the per-proposer committed
	// shares: 0 when every replica lands an equal share of the
	// committed chain, approaching (Cohort-1)/Cohort when one leader
	// owns it.
	Gini float64
	// Stages holds the per-stage latency histograms of the block
	// lifecycle (see StageNames), in raw mergeable form.
	Stages map[string]HistData `json:",omitempty"`
}

// Shares expands ProposerCommits into dense per-replica fractions of
// the committed chain (index = replica ID - 1, length = Cohort).
func (c *ChainStats) Shares() []float64 {
	if c.Cohort == 0 {
		return nil
	}
	shares := make([]float64, c.Cohort)
	var total float64
	for _, n := range c.ProposerCommits {
		total += float64(n)
	}
	if total == 0 {
		return shares
	}
	for id, n := range c.ProposerCommits {
		if id >= 1 && int(id) <= c.Cohort {
			shares[id-1] = float64(n) / total
		}
	}
	return shares
}

// StageSummaries digests the raw per-stage histograms.
func (c *ChainStats) StageSummaries() map[string]LatencySummary {
	if len(c.Stages) == 0 {
		return nil
	}
	out := make(map[string]LatencySummary, len(c.Stages))
	for name, h := range c.Stages {
		out[name] = h.Summary()
	}
	return out
}

// giniFromCommits recomputes the coefficient from the (possibly
// merged) proposer counts over the cohort, zeros included.
func (c *ChainStats) giniFromCommits() float64 {
	if c.Cohort == 0 {
		return 0
	}
	counts := make([]uint64, c.Cohort)
	for id, n := range c.ProposerCommits {
		if id >= 1 && int(id) <= c.Cohort {
			counts[id-1] += n
		}
	}
	return Gini(counts)
}

// Accumulate sums s into c, ratio metrics included — pair with
// AverageRatios(n) once every replica's stats are in, the way the
// paper reports CGR and BI "from a replica's view". Shared by the
// in-process cluster aggregation and the fleet's HTTP result merge.
func (c *ChainStats) Accumulate(s ChainStats) {
	c.BlocksAdded += s.BlocksAdded
	c.BlocksCommitted += s.BlocksCommitted
	c.ViewsEntered += s.ViewsEntered
	c.TxCommitted += s.TxCommitted
	c.CGR += s.CGR
	c.BI += s.BI
	if len(s.ProposerCommits) > 0 {
		if c.ProposerCommits == nil {
			c.ProposerCommits = make(map[uint32]uint64, len(s.ProposerCommits))
		}
		for id, n := range s.ProposerCommits {
			c.ProposerCommits[id] += n
		}
	}
	if s.Cohort > c.Cohort {
		c.Cohort = s.Cohort
	}
	if len(s.Stages) > 0 {
		if c.Stages == nil {
			c.Stages = make(map[string]HistData, len(s.Stages))
		}
		for name, h := range s.Stages {
			merged := c.Stages[name]
			merged.Merge(h)
			c.Stages[name] = merged
		}
	}
}

// AverageRatios divides the accumulated ratio metrics (CGR, BI) by the
// number of replicas summed; counters stay totals. The Gini
// coefficient is not averaged but recomputed from the merged proposer
// counts — every honest replica observes (nearly) the same committed
// chain, so summing their counts preserves the shares and one
// coefficient over the merge is the meaningful deployment-wide figure.
func (c *ChainStats) AverageRatios(n int) {
	if n > 0 {
		c.CGR /= float64(n)
		c.BI /= float64(n)
	}
	c.Gini = c.giniFromCommits()
}

// ChainTracker accumulates the micro-metrics of Section IV-B, plus
// the chain-quality metrics (per-proposer committed shares, Gini) and
// the per-stage block-lifecycle latency histograms the trace layer
// derives. The zero value is ready to use.
type ChainTracker struct {
	mu          sync.Mutex
	added       uint64
	committed   uint64
	views       uint64
	biSum       uint64
	txCommitted uint64
	cohort      int
	proposers   map[uint32]uint64

	// stages are per-stage Latency histograms (own locks; recorded
	// off the tracker mutex — the execute stage reports from the
	// commit-apply goroutine).
	stages [numStages]Latency
}

// SetCohort declares the replica-count the proposer shares are
// measured over (replicas that never commit a block still count as
// zero-share proposers in the Gini coefficient). Call before Start.
func (c *ChainTracker) SetCohort(n int) {
	c.mu.Lock()
	c.cohort = n
	c.mu.Unlock()
}

// OnStage records one block-lifecycle stage duration.
func (c *ChainTracker) OnStage(s Stage, d time.Duration) {
	if s < 0 || s >= numStages {
		return
	}
	c.stages[s].Record(d)
}

// OnBlockAdded records a block appended to the block tree.
func (c *ChainTracker) OnBlockAdded() {
	c.mu.Lock()
	c.added++
	c.mu.Unlock()
}

// OnViewEntered records the replica entering a new view.
func (c *ChainTracker) OnViewEntered() {
	c.mu.Lock()
	c.views++
	c.mu.Unlock()
}

// OnBlockCommitted records a commit of a block proposed by proposer in
// proposeView that committed while the replica was in commitView,
// carrying txs transactions.
func (c *ChainTracker) OnBlockCommitted(proposer types.NodeID, proposeView, commitView types.View, txs int) {
	c.mu.Lock()
	c.committed++
	if commitView >= proposeView {
		c.biSum += uint64(commitView - proposeView)
	}
	c.txCommitted += uint64(txs)
	if c.proposers == nil {
		c.proposers = make(map[uint32]uint64)
	}
	c.proposers[uint32(proposer)]++
	c.mu.Unlock()
}

// Snapshot digests the tracker.
func (c *ChainTracker) Snapshot() ChainStats {
	c.mu.Lock()
	s := ChainStats{
		BlocksAdded:     c.added,
		BlocksCommitted: c.committed,
		ViewsEntered:    c.views,
		TxCommitted:     c.txCommitted,
		Cohort:          c.cohort,
	}
	if c.added > 0 {
		s.CGR = float64(c.committed) / float64(c.added)
		if s.CGR > 1 {
			s.CGR = 1
		}
	}
	if c.committed > 0 {
		s.BI = float64(c.biSum) / float64(c.committed)
	}
	if len(c.proposers) > 0 {
		s.ProposerCommits = make(map[uint32]uint64, len(c.proposers))
		for id, n := range c.proposers {
			s.ProposerCommits[id] = n
		}
	}
	c.mu.Unlock()
	s.Gini = s.giniFromCommits()
	s.Stages = make(map[string]HistData, numStages)
	for i := range c.stages {
		s.Stages[StageNames[i]] = c.stages[i].Export()
	}
	return s
}

// TimeSeries counts events into fixed-width time buckets; the
// responsiveness experiment renders throughput over time from it.
type TimeSeries struct {
	mu       sync.Mutex
	start    time.Time
	interval time.Duration
	buckets  []uint64
}

// NewTimeSeries creates a series anchored at start with the given
// bucket width.
func NewTimeSeries(start time.Time, interval time.Duration) *TimeSeries {
	return &TimeSeries{start: start, interval: interval}
}

// Add records n events at time now.
func (ts *TimeSeries) Add(now time.Time, n uint64) {
	if now.Before(ts.start) {
		return
	}
	idx := int(now.Sub(ts.start) / ts.interval)
	ts.mu.Lock()
	for len(ts.buckets) <= idx {
		ts.buckets = append(ts.buckets, 0)
	}
	ts.buckets[idx] += n
	ts.mu.Unlock()
}

// Buckets returns a copy of the per-bucket counts.
func (ts *TimeSeries) Buckets() []uint64 {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	out := make([]uint64, len(ts.buckets))
	copy(out, ts.buckets)
	return out
}

// Rates converts bucket counts to events/second.
func (ts *TimeSeries) Rates() []float64 {
	counts := ts.Buckets()
	sec := ts.interval.Seconds()
	out := make([]float64, len(counts))
	for i, c := range counts {
		out[i] = float64(c) / sec
	}
	return out
}

// Interval returns the bucket width.
func (ts *TimeSeries) Interval() time.Duration { return ts.interval }

package model

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
	"time"
)

func testParams() Params {
	return Params{
		N:          4,
		BlockSize:  400,
		Mu:         400 * time.Microsecond,
		Sigma:      100 * time.Microsecond,
		TCPU:       30 * time.Microsecond,
		BlockBytes: 400 * 24,
		Bandwidth:  1 << 30,
	}
}

func TestNormalQuantileKnownValues(t *testing.T) {
	cases := []struct{ p, want float64 }{
		{0.5, 0},
		{0.8413447, 1.0},  // Φ(1) ≈ 0.8413
		{0.9772499, 2.0},  // Φ(2)
		{0.1586553, -1.0}, // Φ(-1)
		{0.975, 1.959964},
		{0.99, 2.326348},
		{0.01, -2.326348},
	}
	for _, c := range cases {
		got := normalQuantile(c.p)
		if math.Abs(got-c.want) > 1e-4 {
			t.Errorf("Φ⁻¹(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if !math.IsInf(normalQuantile(0), -1) || !math.IsInf(normalQuantile(1), 1) {
		t.Error("quantile endpoints must be ±Inf")
	}
}

// Property: Φ⁻¹ is monotone increasing and antisymmetric about 0.5.
func TestNormalQuantilePropertiesQuick(t *testing.T) {
	mono := func(a, b float64) bool {
		pa, pb := math.Abs(math.Mod(a, 1)), math.Abs(math.Mod(b, 1))
		if pa == 0 || pb == 0 || pa == pb {
			return true
		}
		if pa > pb {
			pa, pb = pb, pa
		}
		return normalQuantile(pa) <= normalQuantile(pb)
	}
	if err := quick.Check(mono, nil); err != nil {
		t.Fatal(err)
	}
	for _, p := range []float64{0.01, 0.1, 0.25, 0.4} {
		if d := normalQuantile(p) + normalQuantile(1-p); math.Abs(d) > 1e-6 {
			t.Errorf("antisymmetry violated at %v: %v", p, d)
		}
	}
}

// TestOrderStatBlomVsMonteCarlo cross-validates the two t_Q routes.
func TestOrderStatBlomVsMonteCarlo(t *testing.T) {
	for _, n := range []int{4, 8, 16, 32} {
		p := testParams()
		p.N = n
		blom := p.QuorumWait()
		mc := p.QuorumWaitMC(20000, 42)
		diff := math.Abs(float64(blom - mc))
		if diff > 0.05*float64(mc) {
			t.Errorf("n=%d: Blom %v vs MC %v differ by more than 5%%", n, blom, mc)
		}
	}
}

func TestQuorumWaitGrowsWithN(t *testing.T) {
	prev := time.Duration(0)
	for _, n := range []int{4, 8, 16, 32, 64} {
		p := testParams()
		p.N = n
		tq := p.QuorumWait()
		if tq <= 0 {
			t.Fatalf("n=%d: non-positive t_Q %v", n, tq)
		}
		if tq < prev {
			t.Fatalf("t_Q not monotone in N: n=%d gives %v < %v", n, tq, prev)
		}
		prev = tq
	}
}

func TestTNIC(t *testing.T) {
	p := testParams()
	p.BlockBytes = 1 << 20 // 1 MiB
	p.Bandwidth = 1 << 20  // 1 MiB/s
	if got := p.TNIC(); got != 2*time.Second {
		t.Fatalf("tNIC = %v, want 2s (2m/b)", got)
	}
	p.Bandwidth = 0
	if p.TNIC() != 0 {
		t.Fatal("tNIC must be 0 without bandwidth modelling")
	}
}

func TestServiceTimeComposition(t *testing.T) {
	p := testParams()
	want := 3*p.TCPU + 2*p.TNIC() + p.QuorumWait()
	if got := p.ServiceTime(); got != want {
		t.Fatalf("t_s = %v, want %v", got, want)
	}
}

// TestCommitWaitOrdering pins the Section V-D results: HotStuff waits
// two service times (three-chain), the others one.
func TestCommitWaitOrdering(t *testing.T) {
	p := testParams()
	ts := p.ServiceTime()
	if p.CommitWait(HotStuff) != 2*ts {
		t.Fatal("HotStuff t_commit must be 2·t_s")
	}
	if p.CommitWait(TwoChainHotStuff) != ts {
		t.Fatal("2CHS t_commit must be t_s")
	}
	if p.CommitWait(Streamlet) != ts {
		t.Fatal("Streamlet t_commit must be t_s")
	}
}

// TestLatencyOrdering: at equal load the model must reproduce the
// paper's latency ranking — 2CHS below HotStuff (one fewer round).
func TestLatencyOrdering(t *testing.T) {
	p := testParams()
	lambda := 0.5 * p.SaturationRate()
	lhs, err := p.Latency(HotStuff, lambda)
	if err != nil {
		t.Fatal(err)
	}
	l2c, err := p.Latency(TwoChainHotStuff, lambda)
	if err != nil {
		t.Fatal(err)
	}
	if l2c >= lhs {
		t.Fatalf("2CHS latency %v must beat HotStuff %v", l2c, lhs)
	}
}

// TestQueueWaitMonotoneAndDiverging: w_Q grows with λ and explodes
// toward saturation — the L-shape of every throughput/latency plot.
func TestQueueWaitMonotoneAndDiverging(t *testing.T) {
	p := testParams()
	sat := p.SaturationRate()
	prev := time.Duration(-1)
	for _, frac := range []float64{0.1, 0.3, 0.5, 0.7, 0.9, 0.99} {
		w, err := p.QueueWait(frac * sat)
		if err != nil {
			t.Fatalf("ρ=%v: %v", frac, err)
		}
		if w <= prev {
			t.Fatalf("w_Q not strictly increasing at ρ=%v", frac)
		}
		prev = w
	}
	if _, err := p.QueueWait(sat); !errors.Is(err, ErrSaturated) {
		t.Fatal("ρ=1 must report saturation")
	}
	if _, err := p.Latency(HotStuff, 2*sat); !errors.Is(err, ErrSaturated) {
		t.Fatal("latency beyond saturation must report ErrSaturated")
	}
	// The knee: w_Q at 99% load dwarfs w_Q at 10% load.
	w10, _ := p.QueueWait(0.1 * sat)
	w99, _ := p.QueueWait(0.99 * sat)
	if w99 < 20*w10 {
		t.Fatalf("no L-shape: w(0.99)=%v vs w(0.10)=%v", w99, w10)
	}
}

func TestZeroLoadQueueWait(t *testing.T) {
	p := testParams()
	w, err := p.QueueWait(0)
	if err != nil || w != 0 {
		t.Fatalf("zero load must have zero wait: %v %v", w, err)
	}
}

// TestBiggerBlocksRaiseSaturation: increasing the block size amortizes
// consensus cost over more transactions — the Figure 9 effect.
func TestBiggerBlocksRaiseSaturation(t *testing.T) {
	small, big := testParams(), testParams()
	small.BlockSize = 100
	big.BlockSize = 800
	// Keep per-tx wire cost equal.
	small.BlockBytes = 100 * 24
	big.BlockBytes = 800 * 24
	if big.SaturationRate() <= small.SaturationRate() {
		t.Fatalf("b800 saturation %v must exceed b100 %v",
			big.SaturationRate(), small.SaturationRate())
	}
}

// TestDelaysDominateLatency: adding network delay raises latency for
// every protocol and narrows relative gaps — the Figure 11 effect.
func TestDelaysDominateLatency(t *testing.T) {
	base := testParams()
	slow := testParams()
	slow.Mu = 10 * time.Millisecond
	slow.Sigma = 2 * time.Millisecond
	lb, err := base.Latency(HotStuff, 0)
	if err != nil {
		t.Fatal(err)
	}
	ls, err := slow.Latency(HotStuff, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ls < 10*lb {
		t.Fatalf("10ms links should dominate: %v vs %v", ls, lb)
	}
	// Relative HS/2CHS gap shrinks as µ dominates... in absolute
	// terms the gap is one t_s in both, so check the ratio.
	gb := ratioGap(t, base)
	gs := ratioGap(t, slow)
	if gs >= gb {
		t.Fatalf("relative HS/2CHS gap must narrow with delay: %v vs %v", gs, gb)
	}
}

func ratioGap(t *testing.T, p Params) float64 {
	t.Helper()
	lh, err := p.Latency(HotStuff, 0)
	if err != nil {
		t.Fatal(err)
	}
	l2, err := p.Latency(TwoChainHotStuff, 0)
	if err != nil {
		t.Fatal(err)
	}
	return float64(lh-l2) / float64(l2)
}

func TestCurveShape(t *testing.T) {
	p := testParams()
	curve := p.Curve(HotStuff, 10, 0.95)
	if len(curve) != 10 {
		t.Fatalf("curve has %d points, want 10", len(curve))
	}
	for i := 1; i < len(curve); i++ {
		if curve[i].Rate <= curve[i-1].Rate {
			t.Fatal("curve rates must increase")
		}
		if curve[i].Latency < curve[i-1].Latency {
			t.Fatal("curve latency must be non-decreasing in load")
		}
	}
	// Degenerate parameters fall back sanely.
	if got := p.Curve(HotStuff, 1, 2.0); len(got) < 2 {
		t.Fatal("curve must clamp bad arguments")
	}
}

func TestProtocolString(t *testing.T) {
	for p, want := range map[Protocol]string{
		HotStuff: "hotstuff", TwoChainHotStuff: "2chainhs",
		Streamlet: "streamlet", Protocol(99): "unknown",
	} {
		if p.String() != want {
			t.Errorf("String() = %q, want %q", p.String(), want)
		}
	}
}

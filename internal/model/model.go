// Package model implements the Section V queuing-theory performance
// model for chained-BFT protocols. It estimates transaction latency as
//
//	latency = t_L + t_s + t_commit + w_Q                      (Eq. 3)
//
// where t_L is the client↔replica RTT (mean µ), t_s the block service
// time
//
//	t_s = 3·t_CPU + 2·t_NIC + t_Q                             (Eq. 4)
//
// t_NIC = 2m/b the NIC serialization of a block of m bytes over
// bandwidth b, t_Q the expected (2N/3 − 1)-th order statistic of N−1
// i.i.d. Normal(µ, σ) link delays (the quorum-collection wait),
// t_commit the commit-rule tail (2·t_s for HotStuff's three-chain,
// t_s for 2CHS and Streamlet), and w_Q the M/D/1 waiting time
//
//	w_Q = ρ / (2u(1−ρ)),  u = 1/(N·t_s),  ρ = γ/u,  γ = λ/(nN) (Eq. 5)
//
// for Poisson transaction arrivals at rate λ batched n per block.
//
// The order statistic is computed two ways — Monte Carlo simulation
// (as the paper suggests, following Paxi) and Blom's closed-form
// approximation via the inverse normal CDF — and the tests cross-check
// them.
package model

import (
	"errors"
	"math"
	"math/rand"
	"sort"
	"time"
)

// Protocol selects the commit-rule tail of the analyzed protocol.
type Protocol int

// Analyzed protocols.
const (
	HotStuff Protocol = iota + 1
	TwoChainHotStuff
	Streamlet
)

// String implements fmt.Stringer.
func (p Protocol) String() string {
	switch p {
	case HotStuff:
		return "hotstuff"
	case TwoChainHotStuff:
		return "2chainhs"
	case Streamlet:
		return "streamlet"
	default:
		return "unknown"
	}
}

// Params are the measured system parameters of Section V-A.
type Params struct {
	// N is the number of replicas.
	N int
	// BlockSize is the number of transactions per block (n).
	BlockSize int
	// Mu and Sigma describe the Normal(µ, σ) link RTT.
	Mu    time.Duration
	Sigma time.Duration
	// TCPU is the constant per-operation CPU cost (signing,
	// verification), measured on the target machine.
	TCPU time.Duration
	// BlockBytes is the wire size m of a block.
	BlockBytes float64
	// Bandwidth is the per-NIC bandwidth b in bytes/second; zero
	// disables the NIC term.
	Bandwidth float64
}

// ErrSaturated is returned when the arrival rate meets or exceeds the
// service capacity (ρ ≥ 1), where the M/D/1 queue diverges.
var ErrSaturated = errors.New("model: arrival rate saturates the service capacity")

// TNIC returns the NIC serialization delay 2m/b.
func (p Params) TNIC() time.Duration {
	if p.Bandwidth <= 0 || p.BlockBytes <= 0 {
		return 0
	}
	return time.Duration(2 * p.BlockBytes / p.Bandwidth * float64(time.Second))
}

// QuorumWait returns t_Q: the expected value of the (2N/3 − 1)-th
// order statistic of N−1 i.i.d. Normal(µ, σ) samples, via Blom's
// approximation. The −1 accounts for the leader's own vote.
func (p Params) QuorumWait() time.Duration {
	k := 2*p.N/3 - 1
	n := p.N - 1
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	return expectedOrderStatBlom(k, n, p.Mu, p.Sigma)
}

// QuorumWaitMC returns t_Q via Monte Carlo with the given sample count
// and seed — the estimation route the paper borrows from Paxi.
func (p Params) QuorumWaitMC(samples int, seed int64) time.Duration {
	k := 2*p.N/3 - 1
	n := p.N - 1
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	return expectedOrderStatMC(k, n, p.Mu, p.Sigma, samples, seed)
}

// ServiceTime returns t_s = 3·t_CPU + 2·t_NIC + t_Q (Eq. 4).
func (p Params) ServiceTime() time.Duration {
	return 3*p.TCPU + 2*p.TNIC() + p.QuorumWait()
}

// CommitWait returns t_commit for the protocol: 2·t_s for HotStuff's
// three-chain; t_s for 2CHS (two-chain) and Streamlet (one more
// notarized block). Section V-D.
func (p Params) CommitWait(proto Protocol) time.Duration {
	ts := p.ServiceTime()
	if proto == HotStuff {
		return 2 * ts
	}
	return ts
}

// QueueWait returns w_Q for Poisson arrivals at rate lambda
// (transactions/second) under the M/D/1 approximation of Section V-C4.
func (p Params) QueueWait(lambda float64) (time.Duration, error) {
	if lambda <= 0 {
		return 0, nil
	}
	ts := p.ServiceTime().Seconds()
	// Effective service time of a replica's "virtual block" is N·t_s:
	// the replica leads once every N views on average.
	u := 1 / (float64(p.N) * ts)
	gamma := lambda / (float64(p.BlockSize) * float64(p.N))
	rho := gamma / u
	if rho >= 1 {
		return 0, ErrSaturated
	}
	w := rho / (2 * u * (1 - rho))
	return time.Duration(w * float64(time.Second)), nil
}

// Latency returns the end-to-end transaction latency estimate (Eq. 3)
// at arrival rate lambda.
func (p Params) Latency(proto Protocol, lambda float64) (time.Duration, error) {
	wq, err := p.QueueWait(lambda)
	if err != nil {
		return 0, err
	}
	return p.Mu + p.ServiceTime() + p.CommitWait(proto) + wq, nil
}

// SaturationRate returns the largest Poisson arrival rate (tx/s) the
// model sustains (ρ < 1) — the knee of the L-shaped latency curve.
func (p Params) SaturationRate() float64 {
	ts := p.ServiceTime().Seconds()
	if ts <= 0 {
		return math.Inf(1)
	}
	// ρ = λ·t_s/blockSize < 1  (the N factors cancel).
	return float64(p.BlockSize) / ts
}

// Curve samples (throughput, latency) pairs for plotting a model line
// up to the given fraction of saturation.
func (p Params) Curve(proto Protocol, points int, maxUtilization float64) []CurvePoint {
	if points < 2 {
		points = 2
	}
	if maxUtilization <= 0 || maxUtilization >= 1 {
		maxUtilization = 0.95
	}
	sat := p.SaturationRate()
	out := make([]CurvePoint, 0, points)
	for i := 1; i <= points; i++ {
		lambda := sat * maxUtilization * float64(i) / float64(points)
		lat, err := p.Latency(proto, lambda)
		if err != nil {
			break
		}
		out = append(out, CurvePoint{Rate: lambda, Latency: lat})
	}
	return out
}

// CurvePoint is one sampled point of a model latency curve.
type CurvePoint struct {
	// Rate is the transaction arrival rate ≈ throughput (Table II
	// verifies the two coincide below saturation).
	Rate float64
	// Latency is the end-to-end estimate at that rate.
	Latency time.Duration
}

// expectedOrderStatBlom approximates E[X_(k:n)] for Normal(µ, σ) with
// Blom's formula: µ + σ·Φ⁻¹((k − α)/(n − 2α + 1)), α = 0.375.
func expectedOrderStatBlom(k, n int, mu, sigma time.Duration) time.Duration {
	const alpha = 0.375
	q := (float64(k) - alpha) / (float64(n) - 2*alpha + 1)
	z := normalQuantile(q)
	return mu + time.Duration(z*float64(sigma))
}

// expectedOrderStatMC estimates E[X_(k:n)] by simulation.
func expectedOrderStatMC(k, n int, mu, sigma time.Duration, samples int, seed int64) time.Duration {
	if samples < 1 {
		samples = 1
	}
	rng := rand.New(rand.NewSource(seed))
	draws := make([]float64, n)
	var sum float64
	for s := 0; s < samples; s++ {
		for i := range draws {
			draws[i] = rng.NormFloat64()*float64(sigma) + float64(mu)
		}
		sort.Float64s(draws)
		sum += draws[k-1]
	}
	return time.Duration(sum / float64(samples))
}

// normalQuantile is the inverse standard normal CDF Φ⁻¹, using the
// Beasley-Springer-Moro rational approximation (absolute error below
// 3e-9 across (0,1)).
func normalQuantile(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	a := [6]float64{
		-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00,
	}
	b := [5]float64{
		-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01,
	}
	c := [6]float64{
		-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00,
	}
	d := [4]float64{
		7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00,
	}
	const plow, phigh = 0.02425, 1 - 0.02425
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p > phigh:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	default:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	}
}

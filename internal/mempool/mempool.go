// Package mempool implements the memory pool of Section III-E: a
// bidirectional queue in which new transactions are inserted at the
// back while transactions recovered from forked blocks are re-inserted
// at the front. Membership is tracked so each node avoids duplicate
// queuing without a global duplication check.
//
// The pool is safe for concurrent use: client-facing goroutines add
// transactions while the replica's event loop batches them.
package mempool

import (
	"errors"
	"sync"

	"github.com/bamboo-bft/bamboo/internal/types"
)

// Errors reported by Add.
var (
	ErrFull      = errors.New("mempool: full")
	ErrDuplicate = errors.New("mempool: duplicate transaction")
)

// Pool is a capacity-bounded transaction deque.
type Pool struct {
	mu      sync.Mutex
	q       deque
	members map[types.TxID]struct{}
	cap     int
}

// New creates a pool holding at most capacity transactions (Table I
// "memsize").
func New(capacity int) *Pool {
	if capacity < 1 {
		capacity = 1
	}
	return &Pool{
		members: make(map[types.TxID]struct{}, capacity),
		cap:     capacity,
	}
}

// Add appends a new client transaction at the back of the queue.
func (p *Pool) Add(tx types.Transaction) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, dup := p.members[tx.ID]; dup {
		return ErrDuplicate
	}
	if p.q.len() >= p.cap {
		return ErrFull
	}
	p.members[tx.ID] = struct{}{}
	p.q.pushBack(tx)
	return nil
}

// Requeue re-inserts transactions recovered from forked blocks at the
// front of the queue, preserving their relative order. Duplicates are
// skipped. Requeued transactions were already admitted once, so they
// may transiently push the pool past its capacity rather than being
// dropped. It returns the number of transactions accepted.
func (p *Pool) Requeue(txs []types.Transaction) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	accepted := 0
	// Walk in reverse so that pushFront preserves original order.
	for i := len(txs) - 1; i >= 0; i-- {
		tx := txs[i]
		if _, dup := p.members[tx.ID]; dup {
			continue
		}
		p.members[tx.ID] = struct{}{}
		p.q.pushFront(tx)
		accepted++
	}
	return accepted
}

// Batch removes and returns up to max transactions from the front —
// the paper's simple batching strategy: the proposer takes everything
// available when the pool holds fewer than the target block size.
func (p *Pool) Batch(max int) []types.Transaction {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := p.q.len()
	if n > max {
		n = max
	}
	if n == 0 {
		return nil
	}
	out := make([]types.Transaction, 0, n)
	for i := 0; i < n; i++ {
		tx, _ := p.q.popFront()
		delete(p.members, tx.ID)
		out = append(out, tx)
	}
	return out
}

// Remove drops the given transactions if still queued — used when a
// block commits carrying transactions this node also holds (e.g. after
// a fork recycled them into a competing proposal). It returns the
// number of transactions removed.
func (p *Pool) Remove(ids []types.TxID) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	removed := 0
	for _, id := range ids {
		if _, ok := p.members[id]; !ok {
			continue
		}
		delete(p.members, id)
		removed++
	}
	if removed > 0 {
		p.q.filter(func(tx types.Transaction) bool {
			_, keep := p.members[tx.ID]
			return keep
		})
	}
	return removed
}

// Contains reports whether the transaction is queued.
func (p *Pool) Contains(id types.TxID) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	_, ok := p.members[id]
	return ok
}

// Len returns the number of queued transactions.
func (p *Pool) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.q.len()
}

// Cap returns the configured capacity.
func (p *Pool) Cap() int { return p.cap }

// deque is a growable ring buffer of transactions.
type deque struct {
	buf   []types.Transaction
	head  int
	count int
}

func (d *deque) len() int { return d.count }

func (d *deque) grow() {
	newCap := len(d.buf) * 2
	if newCap == 0 {
		newCap = 16
	}
	buf := make([]types.Transaction, newCap)
	for i := 0; i < d.count; i++ {
		buf[i] = d.buf[(d.head+i)%len(d.buf)]
	}
	d.buf = buf
	d.head = 0
}

func (d *deque) pushBack(tx types.Transaction) {
	if d.count == len(d.buf) {
		d.grow()
	}
	d.buf[(d.head+d.count)%len(d.buf)] = tx
	d.count++
}

func (d *deque) pushFront(tx types.Transaction) {
	if d.count == len(d.buf) {
		d.grow()
	}
	d.head = (d.head - 1 + len(d.buf)) % len(d.buf)
	d.buf[d.head] = tx
	d.count++
}

func (d *deque) popFront() (types.Transaction, bool) {
	if d.count == 0 {
		return types.Transaction{}, false
	}
	tx := d.buf[d.head]
	d.buf[d.head] = types.Transaction{} // release payload memory
	d.head = (d.head + 1) % len(d.buf)
	d.count--
	return tx, true
}

// filter keeps only transactions satisfying keep, preserving order.
func (d *deque) filter(keep func(types.Transaction) bool) {
	kept := make([]types.Transaction, 0, d.count)
	for i := 0; i < d.count; i++ {
		tx := d.buf[(d.head+i)%len(d.buf)]
		if keep(tx) {
			kept = append(kept, tx)
		}
	}
	d.buf = kept
	d.head = 0
	d.count = len(kept)
	if cap(d.buf) == 0 {
		d.buf = make([]types.Transaction, 0, 16)
	}
}

// Package mempool implements the memory pool of Section III-E: a
// bidirectional queue in which new transactions are inserted at the
// back while transactions recovered from forked blocks are re-inserted
// at the front. Membership is tracked so each node avoids duplicate
// queuing without a global duplication check.
//
// The pool is safe for concurrent use: client-facing goroutines add
// transactions while the replica's event loop batches them.
package mempool

import (
	"errors"
	"sync"

	"github.com/bamboo-bft/bamboo/internal/types"
)

// Errors reported by Add.
var (
	ErrFull      = errors.New("mempool: full")
	ErrDuplicate = errors.New("mempool: duplicate transaction")
)

// Admission policies selecting what a full pool does with the next
// transaction (config "memPolicy").
const (
	// PolicyReject turns transactions away once the pool holds its
	// capacity — the client sees a typed rejection (HTTP 429 on the
	// API) and decides whether to back off and retry.
	PolicyReject = "reject"
	// PolicyQueue admits past capacity into a bounded overflow band:
	// the client sees no rejection, just the added queueing delay,
	// until the overflow band is exhausted too.
	PolicyQueue = "queue"
)

// Stats counts the pool's admission decisions over its lifetime.
type Stats struct {
	// Admitted counts transactions accepted by Add (Requeue re-entries
	// are not admissions; they were counted when first accepted).
	Admitted uint64
	// Rejected counts transactions turned away with ErrFull — the
	// overload signal the admission-control experiments measure.
	Rejected uint64
	// Queued counts admissions that landed past the soft capacity in
	// the overflow band (always zero under PolicyReject).
	Queued uint64
}

// batchCacheLimit bounds the digest→payload batch cache.
const batchCacheLimit = 256

// Pool is a capacity-bounded transaction deque, indexed by transaction
// ID so digest-only proposals can be resolved without refetching the
// payload from the leader.
type Pool struct {
	mu      sync.Mutex
	q       deque
	members map[types.TxID]types.Transaction
	cap     int
	// overflow is the extra admission band of PolicyQueue: Add keeps
	// accepting up to cap+overflow members, counting the excess as
	// queued instead of rejecting. Zero means PolicyReject.
	overflow int
	stats    Stats
	// batches caches resolved payload batches by payload digest so
	// duplicate digest proposals (echoes, retransmissions) resolve
	// with one map hit; batchOrder drives FIFO eviction.
	batches    map[types.Hash][]types.Transaction
	batchOrder []types.Hash
}

// New creates a pool holding at most capacity transactions (Table I
// "memsize"), rejecting admissions past it (PolicyReject).
func New(capacity int) *Pool {
	if capacity < 1 {
		capacity = 1
	}
	return &Pool{
		members: make(map[types.TxID]types.Transaction, capacity),
		cap:     capacity,
		batches: make(map[types.Hash][]types.Transaction),
	}
}

// EnableOverflow switches the pool to PolicyQueue with the given
// overflow band: admissions past the soft capacity are accepted — and
// counted as queued — until capacity+overflow members are held, and
// only then rejected. Call before the pool takes traffic.
func (p *Pool) EnableOverflow(overflow int) {
	if overflow < 0 {
		overflow = 0
	}
	p.mu.Lock()
	p.overflow = overflow
	p.mu.Unlock()
}

// Add appends a new client transaction at the back of the queue. A
// full pool reports ErrFull — past the soft capacity under
// PolicyReject, past capacity plus the overflow band under
// PolicyQueue — and the rejection is counted in Stats.
func (p *Pool) Add(tx types.Transaction) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, dup := p.members[tx.ID]; dup {
		return ErrDuplicate
	}
	if len(p.members) >= p.cap+p.overflow {
		p.stats.Rejected++
		return ErrFull
	}
	if len(p.members) >= p.cap {
		p.stats.Queued++
	}
	p.stats.Admitted++
	p.members[tx.ID] = tx
	p.q.pushBack(tx)
	return nil
}

// Requeue re-inserts transactions recovered from forked blocks at the
// front of the queue, preserving their relative order. Duplicates are
// skipped. Requeued transactions were already admitted once, so they
// may transiently push the pool past its capacity rather than being
// dropped. It returns the number of transactions accepted.
func (p *Pool) Requeue(txs []types.Transaction) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	accepted := 0
	// Walk in reverse so that pushFront preserves original order.
	for i := len(txs) - 1; i >= 0; i-- {
		tx := txs[i]
		if _, dup := p.members[tx.ID]; dup {
			continue
		}
		p.members[tx.ID] = tx
		p.q.pushFront(tx)
		accepted++
	}
	return accepted
}

// Batch removes and returns up to max transactions from the front —
// the paper's simple batching strategy: the proposer takes everything
// available when the pool holds fewer than the target block size.
// Entries removed lazily by Remove are skipped and reclaimed here.
func (p *Pool) Batch(max int) []types.Transaction {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := len(p.members)
	if n > max {
		n = max
	}
	if n == 0 {
		return nil
	}
	out := make([]types.Transaction, 0, n)
	for len(out) < max {
		tx, ok := p.q.popFront()
		if !ok {
			break
		}
		if _, live := p.members[tx.ID]; !live {
			continue // ghost: removed while queued
		}
		delete(p.members, tx.ID)
		out = append(out, tx)
	}
	return out
}

// removeCompactFloor is the minimum ghost count before Remove compacts
// the deque eagerly.
const removeCompactFloor = 1024

// Remove drops the given transactions if still queued — used when a
// block commits carrying transactions this node also holds (e.g. a
// synced or fanned-out payload, or a fork recycled into a competing
// proposal). It returns the number of transactions removed.
//
// Deletion is lazy — the membership index is the source of truth and
// deque entries linger as ghosts that Batch skips — so the hot path
// costs O(ids) instead of O(pool). The deque compacts only when
// ghosts clearly outnumber live entries.
func (p *Pool) Remove(ids []types.TxID) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	removed := 0
	for _, id := range ids {
		if _, ok := p.members[id]; !ok {
			continue
		}
		delete(p.members, id)
		removed++
	}
	if removed == 0 {
		return 0
	}
	if ghosts := p.q.len() - len(p.members); ghosts > removeCompactFloor && ghosts > len(p.members) {
		p.q.filter(func(tx types.Transaction) bool {
			_, keep := p.members[tx.ID]
			return keep
		})
	}
	return removed
}

// Contains reports whether the transaction is queued.
func (p *Pool) Contains(id types.TxID) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	_, ok := p.members[id]
	return ok
}

// Get returns the queued transaction with the given ID without
// removing it — the point lookup behind digest-proposal resolution.
func (p *Pool) Get(id types.TxID) (types.Transaction, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	tx, ok := p.members[id]
	return tx, ok
}

// Resolve looks up every ID in order, returning the assembled payload
// and the IDs that are not queued. Transactions stay in the pool:
// the engine scrubs them only after the resolved block attaches, so a
// proposal that fails later checks costs nothing.
func (p *Pool) Resolve(ids []types.TxID) (payload []types.Transaction, missing []types.TxID) {
	p.mu.Lock()
	defer p.mu.Unlock()
	payload = make([]types.Transaction, 0, len(ids))
	for _, id := range ids {
		tx, ok := p.members[id]
		if !ok {
			missing = append(missing, id)
			continue
		}
		payload = append(payload, tx)
	}
	return payload, missing
}

// CacheBatch remembers a fully resolved payload batch under its
// digest. The cache is bounded; the oldest batch is evicted first.
func (p *Pool) CacheBatch(digest types.Hash, payload []types.Transaction) {
	if digest.IsZero() || len(payload) == 0 {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.batches[digest]; ok {
		return
	}
	if len(p.batchOrder) >= batchCacheLimit {
		oldest := p.batchOrder[0]
		p.batchOrder = p.batchOrder[1:]
		delete(p.batches, oldest)
	}
	p.batches[digest] = payload
	p.batchOrder = append(p.batchOrder, digest)
}

// BatchByDigest returns a previously cached payload batch — the
// lookup-by-digest fast path for duplicate digest proposals.
func (p *Pool) BatchByDigest(digest types.Hash) ([]types.Transaction, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	payload, ok := p.batches[digest]
	return payload, ok
}

// Len returns the number of queued (live) transactions.
func (p *Pool) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.members)
}

// Cap returns the configured capacity.
func (p *Pool) Cap() int { return p.cap }

// Stats returns the pool's admission counters.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// Occupancy reports the live member count and, of it, how many sit
// past the soft capacity in the overflow band (zero under
// PolicyReject, where the band does not exist).
func (p *Pool) Occupancy() (live, queued int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	live = len(p.members)
	if over := live - p.cap; over > 0 {
		queued = over
	}
	return live, queued
}

// deque is a growable ring buffer of transactions.
type deque struct {
	buf   []types.Transaction
	head  int
	count int
}

func (d *deque) len() int { return d.count }

func (d *deque) grow() {
	newCap := len(d.buf) * 2
	if newCap == 0 {
		newCap = 16
	}
	buf := make([]types.Transaction, newCap)
	for i := 0; i < d.count; i++ {
		buf[i] = d.buf[(d.head+i)%len(d.buf)]
	}
	d.buf = buf
	d.head = 0
}

func (d *deque) pushBack(tx types.Transaction) {
	if d.count == len(d.buf) {
		d.grow()
	}
	d.buf[(d.head+d.count)%len(d.buf)] = tx
	d.count++
}

func (d *deque) pushFront(tx types.Transaction) {
	if d.count == len(d.buf) {
		d.grow()
	}
	d.head = (d.head - 1 + len(d.buf)) % len(d.buf)
	d.buf[d.head] = tx
	d.count++
}

func (d *deque) popFront() (types.Transaction, bool) {
	if d.count == 0 {
		return types.Transaction{}, false
	}
	tx := d.buf[d.head]
	d.buf[d.head] = types.Transaction{} // release payload memory
	d.head = (d.head + 1) % len(d.buf)
	d.count--
	return tx, true
}

// filter keeps only transactions satisfying keep, preserving order.
func (d *deque) filter(keep func(types.Transaction) bool) {
	kept := make([]types.Transaction, 0, len(d.buf))
	for i := 0; i < d.count; i++ {
		tx := d.buf[(d.head+i)%len(d.buf)]
		if keep(tx) {
			kept = append(kept, tx)
		}
	}
	d.count = len(kept)
	d.head = 0
	// Ring indexing assumes len(buf) == cap(buf); a single re-slice
	// to full capacity restores that after the compaction.
	d.buf = kept[:cap(kept)]
}

package mempool

import (
	"testing"

	"github.com/bamboo-bft/bamboo/internal/types"
)

func mtx(client, seq uint64) types.Transaction {
	return types.Transaction{ID: types.TxID{Client: client, Seq: seq}}
}

func txIDs(txs []types.Transaction) []types.TxID {
	out := make([]types.TxID, len(txs))
	for i := range txs {
		out[i] = txs[i].ID
	}
	return out
}

// TestInterleavedRemoveRequeue is the regression test for the deque
// filter/re-slice bug: interleaving Remove (lazy ghosts, occasional
// compaction) with Requeue (pushFront) and Batch must never corrupt
// order, duplicate transactions, or lose live entries.
func TestInterleavedRemoveRequeue(t *testing.T) {
	p := New(1 << 12)
	for i := 1; i <= 100; i++ {
		if err := p.Add(mtx(1, uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	// Remove a scattered third, leaving ghosts in the deque.
	var removed []types.TxID
	for i := 3; i <= 100; i += 3 {
		removed = append(removed, types.TxID{Client: 1, Seq: uint64(i)})
	}
	if got := p.Remove(removed); got != len(removed) {
		t.Fatalf("Remove = %d, want %d", got, len(removed))
	}
	if p.Len() != 100-len(removed) {
		t.Fatalf("Len = %d after removal", p.Len())
	}
	// Requeue two of the removed ones at the front.
	re := []types.Transaction{mtx(1, 3), mtx(1, 6)}
	if got := p.Requeue(re); got != 2 {
		t.Fatalf("Requeue = %d", got)
	}
	// Batch must see the requeued pair first, then survivors in order,
	// never a removed-but-not-requeued ID, never a duplicate.
	out := p.Batch(1 << 12)
	if len(out) != 100-len(removed)+2 {
		t.Fatalf("Batch returned %d", len(out))
	}
	if out[0].ID.Seq != 3 || out[1].ID.Seq != 6 {
		t.Fatalf("requeued order wrong: %v %v", out[0].ID, out[1].ID)
	}
	seen := map[types.TxID]bool{}
	lastSeq := uint64(0)
	for i, got := range out {
		if seen[got.ID] {
			t.Fatalf("duplicate %v", got.ID)
		}
		seen[got.ID] = true
		if i >= 2 {
			if got.ID.Seq%3 == 0 && got.ID.Seq != 3 && got.ID.Seq != 6 {
				t.Fatalf("removed transaction %v resurfaced", got.ID)
			}
			if got.ID.Seq <= lastSeq {
				t.Fatalf("order violated: %d after %d", got.ID.Seq, lastSeq)
			}
			lastSeq = got.ID.Seq
		}
	}
	if p.Len() != 0 {
		t.Fatalf("pool not drained: %d", p.Len())
	}
	// The emptied pool accepts fresh work (the old zero-cap edge).
	if err := p.Add(mtx(2, 1)); err != nil {
		t.Fatal(err)
	}
	if got := p.Batch(4); len(got) != 1 || got[0].ID != (types.TxID{Client: 2, Seq: 1}) {
		t.Fatalf("post-drain batch: %v", got)
	}
}

// TestRemoveEverythingThenPushFront exercises the old zero-capacity
// re-slice path: filter down to empty, then pushFront must work.
func TestRemoveEverythingThenPushFront(t *testing.T) {
	p := New(64)
	var all []types.Transaction
	for i := 1; i <= removeCompactFloor+100; i++ {
		tr := mtx(1, uint64(i))
		all = append(all, tr)
		_ = p.Requeue([]types.Transaction{tr}) // requeue bypasses cap
	}
	p.Remove(txIDs(all)) // large enough to trigger eager compaction
	if p.Len() != 0 {
		t.Fatalf("Len = %d", p.Len())
	}
	if got := p.Requeue([]types.Transaction{mtx(9, 9)}); got != 1 {
		t.Fatalf("Requeue after full drain = %d", got)
	}
	out := p.Batch(10)
	if len(out) != 1 || out[0].ID != (types.TxID{Client: 9, Seq: 9}) {
		t.Fatalf("batch after drain: %v", out)
	}
}

// TestResolveAndGet covers the digest-resolution index.
func TestResolveAndGet(t *testing.T) {
	p := New(64)
	batch := []types.Transaction{mtx(1, 1), mtx(1, 2), mtx(1, 3)}
	for _, tr := range batch {
		if err := p.Add(tr); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := p.Get(types.TxID{Client: 1, Seq: 2}); !ok {
		t.Fatal("Get missed a queued transaction")
	}
	payload, missing := p.Resolve(txIDs(batch))
	if len(missing) != 0 || len(payload) != 3 {
		t.Fatalf("Resolve: payload=%d missing=%d", len(payload), len(missing))
	}
	for i := range batch {
		if payload[i].ID != batch[i].ID {
			t.Fatalf("Resolve order: %v at %d", payload[i].ID, i)
		}
	}
	// Resolution must not consume the pool.
	if p.Len() != 3 {
		t.Fatalf("Resolve consumed the pool: Len = %d", p.Len())
	}
	_, missing = p.Resolve([]types.TxID{{Client: 1, Seq: 1}, {Client: 8, Seq: 8}})
	if len(missing) != 1 || missing[0] != (types.TxID{Client: 8, Seq: 8}) {
		t.Fatalf("missing = %v", missing)
	}
}

// TestBatchCache covers lookup-by-digest with FIFO eviction.
func TestBatchCache(t *testing.T) {
	p := New(64)
	batch := []types.Transaction{mtx(1, 1), mtx(1, 2)}
	digest := types.DigestPayload(batch)
	if _, ok := p.BatchByDigest(digest); ok {
		t.Fatal("hit before caching")
	}
	p.CacheBatch(digest, batch)
	got, ok := p.BatchByDigest(digest)
	if !ok || len(got) != 2 {
		t.Fatalf("cache miss after CacheBatch: %v %v", got, ok)
	}
	p.CacheBatch(digest, batch) // idempotent
	// Evict by overflowing the bounded cache.
	for i := 0; i < batchCacheLimit; i++ {
		b := []types.Transaction{mtx(2, uint64(i+1))}
		p.CacheBatch(types.DigestPayload(b), b)
	}
	if _, ok := p.BatchByDigest(digest); ok {
		t.Fatal("oldest batch survived eviction")
	}
	// Zero digests and empty batches are never cached.
	p.CacheBatch(types.Hash{}, batch)
	if _, ok := p.BatchByDigest(types.Hash{}); ok {
		t.Fatal("zero digest cached")
	}
}

package mempool

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"

	"github.com/bamboo-bft/bamboo/internal/types"
)

func tx(seq uint64) types.Transaction {
	return types.Transaction{ID: types.TxID{Client: 1, Seq: seq}}
}

func ids(txs []types.Transaction) []uint64 {
	out := make([]uint64, len(txs))
	for i, t := range txs {
		out[i] = t.ID.Seq
	}
	return out
}

func TestAddAndBatchFIFO(t *testing.T) {
	p := New(100)
	for i := uint64(1); i <= 10; i++ {
		if err := p.Add(tx(i)); err != nil {
			t.Fatal(err)
		}
	}
	if p.Len() != 10 {
		t.Fatalf("len = %d", p.Len())
	}
	got := ids(p.Batch(4))
	want := []uint64{1, 2, 3, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("batch order %v, want %v", got, want)
		}
	}
	if p.Len() != 6 {
		t.Fatalf("len after batch = %d", p.Len())
	}
}

func TestBatchTakesEverythingWhenUnderTarget(t *testing.T) {
	// The paper's simple batching: if fewer than bsize transactions
	// are queued, the proposer takes them all.
	p := New(100)
	for i := uint64(1); i <= 3; i++ {
		if err := p.Add(tx(i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := p.Batch(400); len(got) != 3 {
		t.Fatalf("batch = %d, want all 3", len(got))
	}
	if got := p.Batch(400); got != nil {
		t.Fatalf("batch on empty pool = %v, want nil", got)
	}
}

func TestAddDuplicate(t *testing.T) {
	p := New(10)
	if err := p.Add(tx(1)); err != nil {
		t.Fatal(err)
	}
	if err := p.Add(tx(1)); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("want ErrDuplicate, got %v", err)
	}
	// After the tx leaves the pool it may be re-added (new attempt).
	p.Batch(1)
	if err := p.Add(tx(1)); err != nil {
		t.Fatalf("re-add after batch: %v", err)
	}
}

func TestAddFull(t *testing.T) {
	p := New(2)
	if err := p.Add(tx(1)); err != nil {
		t.Fatal(err)
	}
	if err := p.Add(tx(2)); err != nil {
		t.Fatal(err)
	}
	if err := p.Add(tx(3)); !errors.Is(err, ErrFull) {
		t.Fatalf("want ErrFull, got %v", err)
	}
	if p.Cap() != 2 {
		t.Fatalf("cap = %d", p.Cap())
	}
}

func TestRequeueFrontOrder(t *testing.T) {
	p := New(100)
	for i := uint64(10); i <= 12; i++ {
		if err := p.Add(tx(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Forked block carried txs 1,2,3: they must come back out first,
	// in their original order.
	n := p.Requeue([]types.Transaction{tx(1), tx(2), tx(3)})
	if n != 3 {
		t.Fatalf("requeued %d, want 3", n)
	}
	got := ids(p.Batch(6))
	want := []uint64{1, 2, 3, 10, 11, 12}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v, want %v", got, want)
		}
	}
}

func TestRequeueSkipsDuplicates(t *testing.T) {
	p := New(100)
	if err := p.Add(tx(1)); err != nil {
		t.Fatal(err)
	}
	if n := p.Requeue([]types.Transaction{tx(1), tx(2)}); n != 1 {
		t.Fatalf("requeued %d, want 1", n)
	}
	if p.Len() != 2 {
		t.Fatalf("len = %d", p.Len())
	}
}

func TestRequeueMayExceedCapacity(t *testing.T) {
	p := New(2)
	if err := p.Add(tx(1)); err != nil {
		t.Fatal(err)
	}
	if err := p.Add(tx(2)); err != nil {
		t.Fatal(err)
	}
	// Fork recycling must not drop transactions even at capacity.
	if n := p.Requeue([]types.Transaction{tx(3), tx(4)}); n != 2 {
		t.Fatalf("requeued %d, want 2", n)
	}
	if p.Len() != 4 {
		t.Fatalf("len = %d, want 4", p.Len())
	}
}

func TestRemove(t *testing.T) {
	p := New(100)
	for i := uint64(1); i <= 5; i++ {
		if err := p.Add(tx(i)); err != nil {
			t.Fatal(err)
		}
	}
	removed := p.Remove([]types.TxID{{Client: 1, Seq: 2}, {Client: 1, Seq: 4}, {Client: 9, Seq: 9}})
	if removed != 2 {
		t.Fatalf("removed %d, want 2", removed)
	}
	got := ids(p.Batch(10))
	want := []uint64{1, 3, 5}
	if len(got) != len(want) {
		t.Fatalf("after remove %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("after remove %v, want %v", got, want)
		}
	}
}

func TestContains(t *testing.T) {
	p := New(10)
	if err := p.Add(tx(1)); err != nil {
		t.Fatal(err)
	}
	if !p.Contains(types.TxID{Client: 1, Seq: 1}) {
		t.Fatal("contains false for queued tx")
	}
	if p.Contains(types.TxID{Client: 1, Seq: 2}) {
		t.Fatal("contains true for absent tx")
	}
}

func TestConcurrentAddBatch(t *testing.T) {
	p := New(100000)
	var wg sync.WaitGroup
	const producers, perProducer = 4, 1000
	for g := 0; g < producers; g++ {
		wg.Add(1)
		go func(client uint64) {
			defer wg.Done()
			for i := uint64(0); i < perProducer; i++ {
				_ = p.Add(types.Transaction{ID: types.TxID{Client: client, Seq: i}})
			}
		}(uint64(g))
	}
	var consumed int
	var mu sync.Mutex
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 2000; i++ {
			got := p.Batch(10)
			mu.Lock()
			consumed += len(got)
			mu.Unlock()
		}
	}()
	wg.Wait()
	consumed += len(p.Batch(1 << 20))
	if consumed != producers*perProducer {
		t.Fatalf("consumed %d, want %d", consumed, producers*perProducer)
	}
}

// Property: any interleaving of adds and batches preserves FIFO order
// per client and never returns a transaction twice.
func TestNoDuplicateDeliveryQuick(t *testing.T) {
	f := func(ops []uint8) bool {
		p := New(1 << 16)
		seen := make(map[types.TxID]bool)
		var next uint64
		lastSeq := uint64(0)
		first := true
		for _, op := range ops {
			if op%3 == 0 {
				next++
				_ = p.Add(tx(next))
				continue
			}
			for _, got := range p.Batch(int(op%5) + 1) {
				if seen[got.ID] {
					return false // duplicate delivery
				}
				seen[got.ID] = true
				if !first && got.ID.Seq <= lastSeq {
					return false // FIFO violated (single client)
				}
				lastSeq, first = got.ID.Seq, false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAddBatch(b *testing.B) {
	p := New(1 << 20)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = p.Add(types.Transaction{ID: types.TxID{Client: 1, Seq: uint64(i)}})
		if i%400 == 399 {
			p.Batch(400)
		}
	}
}

// TestOverflowQueuePolicy: with an overflow band (PolicyQueue), the
// pool admits past the soft capacity — counting those admissions as
// queued — and only rejects once the band is exhausted too. Occupancy
// splits the live count across the bands, and Stats accounts for every
// admission decision.
func TestOverflowQueuePolicy(t *testing.T) {
	p := New(4)
	p.EnableOverflow(2)
	for i := 1; i <= 6; i++ {
		if err := p.Add(tx(uint64(i))); err != nil {
			t.Fatalf("add %d: %v", i, err)
		}
	}
	if err := p.Add(tx(7)); err != ErrFull {
		t.Fatalf("add past overflow band = %v, want ErrFull", err)
	}
	live, queued := p.Occupancy()
	if live != 6 || queued != 2 {
		t.Fatalf("occupancy = (%d, %d), want (6, 2)", live, queued)
	}
	st := p.Stats()
	if st.Admitted != 6 || st.Queued != 2 || st.Rejected != 1 {
		t.Fatalf("stats = %+v, want admitted 6, queued 2, rejected 1", st)
	}
	// Draining below the soft capacity reopens normal admission.
	if got := len(p.Batch(3)); got != 3 {
		t.Fatalf("batch = %d txs, want 3", got)
	}
	if err := p.Add(tx(8)); err != nil {
		t.Fatalf("add after drain: %v", err)
	}
	if live, queued = p.Occupancy(); live != 4 || queued != 0 {
		t.Fatalf("occupancy after drain = (%d, %d), want (4, 0)", live, queued)
	}
}

// TestRejectPolicyDefault: without an overflow band the pool rejects
// exactly at capacity and never counts queued admissions.
func TestRejectPolicyDefault(t *testing.T) {
	p := New(2)
	if err := p.Add(tx(1)); err != nil {
		t.Fatal(err)
	}
	if err := p.Add(tx(2)); err != nil {
		t.Fatal(err)
	}
	if err := p.Add(tx(3)); err != ErrFull {
		t.Fatalf("add at capacity = %v, want ErrFull", err)
	}
	st := p.Stats()
	if st.Admitted != 2 || st.Queued != 0 || st.Rejected != 1 {
		t.Fatalf("stats = %+v, want admitted 2, queued 0, rejected 1", st)
	}
}

// Package trace is the replica's always-on block-lifecycle tracer:
// every block the replica touches gets a span record stamped at each
// stage of its life (proposed, received, verified, voted, QC formed,
// committed, executed, replied), interleaved with per-view events
// (view entered, leader elected, timeout fired, WAL sync, sync
// episode boundaries). Spans and events live in bounded lock-free
// rings — fixed memory, oldest evicted first — so the tracer can stay
// on in production and under benchmark load without skewing the
// numbers it exists to explain: a stage stamp is one index lookup and
// one atomic compare-and-swap, and nothing on the hot path allocates
// after the span is created.
//
// The ring contents export two ways: a JSON snapshot (GET
// /debug/trace) for programmatic consumers, and the Chrome
// trace-event format (GET /debug/trace?format=chrome) that
// chrome://tracing and Perfetto load directly, rendering a committed
// block's life as stacked stage slices on a per-stage lane timeline.
package trace

import (
	"sync"
	"sync/atomic"
	"time"

	"github.com/bamboo-bft/bamboo/internal/types"
)

// Default ring capacities: enough for several measurement windows of
// history at benchmark commit rates, small enough (~1 MB of spans)
// that an always-on tracer is free.
const (
	DefaultSpanCapacity  = 4096
	DefaultEventCapacity = 16384
)

// span is the internal, concurrently stamped record. Identity fields
// are written once before the span is published (publication through
// the sync.Map and the ring's atomic pointer orders them); stage
// stamps are write-once unix-nano CAS cells, so whichever path
// reaches a stage first owns the timestamp and replays cannot move
// it.
type span struct {
	block    types.Hash
	view     types.View
	proposer types.NodeID
	seq      uint64 // ring sequence, for oldest-first export

	height atomic.Uint64
	txs    atomic.Int64

	proposed  atomic.Int64
	received  atomic.Int64
	verified  atomic.Int64
	voted     atomic.Int64
	qcFormed  atomic.Int64
	committed atomic.Int64
	executed  atomic.Int64
	replied   atomic.Int64
}

// stamp records t into cell once; the first writer wins.
func stamp(cell *atomic.Int64, t int64) { cell.CompareAndSwap(0, t) }

// Span is the exported form of one block's lifecycle: identity plus
// the stage timestamps in unix nanoseconds (0 = the block never
// reached that stage on this replica).
type Span struct {
	Block    string       `json:"block"`
	View     types.View   `json:"view"`
	Proposer types.NodeID `json:"proposer"`
	Height   uint64       `json:"height,omitempty"`
	Txs      int64        `json:"txs"`

	Proposed  int64 `json:"proposed,omitempty"`
	Received  int64 `json:"received,omitempty"`
	Verified  int64 `json:"verified,omitempty"`
	Voted     int64 `json:"voted,omitempty"`
	QCFormed  int64 `json:"qcFormed,omitempty"`
	Committed int64 `json:"committed,omitempty"`
	Executed  int64 `json:"executed,omitempty"`
	Replied   int64 `json:"replied,omitempty"`
}

func (s *span) export() Span {
	return Span{
		Block:    s.block.String(),
		View:     s.view,
		Proposer: s.proposer,
		Height:   s.height.Load(),
		Txs:      s.txs.Load(),

		Proposed:  s.proposed.Load(),
		Received:  s.received.Load(),
		Verified:  s.verified.Load(),
		Voted:     s.voted.Load(),
		QCFormed:  s.qcFormed.Load(),
		Committed: s.committed.Load(),
		Executed:  s.executed.Load(),
		Replied:   s.replied.Load(),
	}
}

// Event kinds.
const (
	EventViewEntered   = "view-entered"
	EventLeaderElected = "leader-elected"
	EventTimeout       = "timeout-fired"
	EventWALSync       = "wal-sync"
	EventSyncStart     = "sync-start"
	EventSyncEnd       = "sync-end"
)

// Event is one per-view occurrence interleaved with the spans.
type Event struct {
	Time int64      `json:"time"` // unix nanoseconds
	Kind string     `json:"kind"`
	View types.View `json:"view,omitempty"`
	// Node names the event's subject where one exists: the elected
	// leader of a view-entered event, the sync target of a sync-start.
	Node types.NodeID `json:"node,omitempty"`
	// Dur carries a duration where the event has one (the fsync wait
	// of a WAL sync), in nanoseconds.
	Dur int64 `json:"dur,omitempty"`
}

// Tracer holds the two rings. All methods are safe for concurrent
// use; the zero value is NOT ready — use New.
type Tracer struct {
	id types.NodeID

	spans   []atomic.Pointer[span]
	spanSeq atomic.Uint64
	// index finds the live span for a block hash. Entries die with
	// their ring slot (evicted oldest-first), so the index is bounded
	// by the ring.
	index sync.Map // types.Hash -> *span

	events   []atomic.Pointer[Event]
	eventSeq atomic.Uint64
}

// New creates a tracer for one replica with the given ring
// capacities (<= 0 selects the defaults).
func New(id types.NodeID, spanCap, eventCap int) *Tracer {
	if spanCap <= 0 {
		spanCap = DefaultSpanCapacity
	}
	if eventCap <= 0 {
		eventCap = DefaultEventCapacity
	}
	return &Tracer{
		id:     id,
		spans:  make([]atomic.Pointer[span], spanCap),
		events: make([]atomic.Pointer[Event], eventCap),
	}
}

// ensure returns the block's live span, creating and ring-inserting
// one on first touch. Creation is LoadOrStore-guarded, so concurrent
// first touches converge on one span.
func (t *Tracer) ensure(h types.Hash, view types.View, proposer types.NodeID) *span {
	if v, ok := t.index.Load(h); ok {
		return v.(*span)
	}
	sp := &span{block: h, view: view, proposer: proposer}
	if v, loaded := t.index.LoadOrStore(h, sp); loaded {
		return v.(*span)
	}
	// Claim a ring slot; the evicted occupant leaves the index with
	// it (CompareAndDelete: a hash-reuse race must not unlink a newer
	// span).
	sp.seq = t.spanSeq.Add(1) - 1
	if old := t.spans[sp.seq%uint64(len(t.spans))].Swap(sp); old != nil {
		t.index.CompareAndDelete(old.block, old)
	}
	return sp
}

// lookup returns the live span, or nil — later-stage stamps never
// resurrect an evicted or never-seen block.
func (t *Tracer) lookup(h types.Hash) *span {
	if v, ok := t.index.Load(h); ok {
		return v.(*span)
	}
	return nil
}

func now() int64 { return time.Now().UnixNano() }

// OnProposed stamps block creation on the proposing replica.
func (t *Tracer) OnProposed(h types.Hash, view types.View, proposer types.NodeID, txs int) {
	sp := t.ensure(h, view, proposer)
	ts := now()
	sp.txs.Store(int64(txs))
	stamp(&sp.proposed, ts)
	// The proposer's own copy needs no dissemination or verification.
	stamp(&sp.received, ts)
	stamp(&sp.verified, ts)
}

// OnReceived stamps proposal arrival (span creation on followers).
func (t *Tracer) OnReceived(h types.Hash, view types.View, proposer types.NodeID, txs int) {
	sp := t.ensure(h, view, proposer)
	if txs > 0 {
		sp.txs.Store(int64(txs))
	}
	stamp(&sp.received, now())
}

// OnVerified stamps the proposal's signatures checking out.
func (t *Tracer) OnVerified(h types.Hash) {
	if sp := t.lookup(h); sp != nil {
		stamp(&sp.verified, now())
	}
}

// OnVoted stamps this replica's vote leaving.
func (t *Tracer) OnVoted(h types.Hash) {
	if sp := t.lookup(h); sp != nil {
		stamp(&sp.voted, now())
	}
}

// OnQCFormed stamps the block's certificate being seen (formed
// locally or carried by a later proposal).
func (t *Tracer) OnQCFormed(h types.Hash) {
	if sp := t.lookup(h); sp != nil {
		stamp(&sp.qcFormed, now())
	}
}

// OnCommitted stamps the commit rule finalizing the block.
func (t *Tracer) OnCommitted(h types.Hash, height uint64, txs int) {
	if sp := t.lookup(h); sp != nil {
		sp.height.Store(height)
		if txs > 0 {
			sp.txs.Store(int64(txs))
		}
		stamp(&sp.committed, now())
	}
}

// OnExecuted stamps the state machine finishing the block's payload
// and returns the span (complete through execution) for per-stage
// histogram derivation; ok is false for blocks outside the ring.
func (t *Tracer) OnExecuted(h types.Hash) (Span, bool) {
	sp := t.lookup(h)
	if sp == nil {
		return Span{}, false
	}
	stamp(&sp.executed, now())
	return sp.export(), true
}

// OnReplied stamps the commit replies to owned clients going out.
func (t *Tracer) OnReplied(h types.Hash) {
	if sp := t.lookup(h); sp != nil {
		stamp(&sp.replied, now())
	}
}

// event appends to the event ring.
func (t *Tracer) event(e Event) {
	e.Time = now()
	seq := t.eventSeq.Add(1) - 1
	t.events[seq%uint64(len(t.events))].Store(&e)
}

// OnViewEntered records the replica entering a view under the given
// leader — and, when this replica is that leader, its election.
func (t *Tracer) OnViewEntered(view types.View, leader types.NodeID) {
	t.event(Event{Kind: EventViewEntered, View: view, Node: leader})
	if leader == t.id {
		t.event(Event{Kind: EventLeaderElected, View: view, Node: leader})
	}
}

// OnTimeout records a view timeout firing (a signed timeout share
// leaving the node).
func (t *Tracer) OnTimeout(view types.View) {
	t.event(Event{Kind: EventTimeout, View: view})
}

// OnWALSync records one durable safety sync and its fsync wait.
func (t *Tracer) OnWALSync(view types.View, d time.Duration) {
	t.event(Event{Kind: EventWALSync, View: view, Dur: int64(d)})
}

// OnSyncStart records a deep catch-up episode beginning against the
// given peer.
func (t *Tracer) OnSyncStart(target types.NodeID) {
	t.event(Event{Kind: EventSyncStart, Node: target})
}

// OnSyncEnd records the catch-up episode ending.
func (t *Tracer) OnSyncEnd() {
	t.event(Event{Kind: EventSyncEnd})
}

// Export is the JSON shape of GET /debug/trace: the ring contents,
// oldest first, plus how much history the rings have evicted.
type Export struct {
	Node types.NodeID `json:"node"`
	// SpanCapacity/EventCapacity are the ring bounds; Spans/Events
	// hold at most that many records. Dropped counts records evicted
	// to admit newer ones (lifetime, not since last export).
	SpanCapacity  int     `json:"spanCapacity"`
	EventCapacity int     `json:"eventCapacity"`
	SpansDropped  uint64  `json:"spansDropped"`
	EventsDropped uint64  `json:"eventsDropped"`
	Spans         []Span  `json:"spans"`
	Events        []Event `json:"events"`
}

// Snapshot exports the ring contents oldest-first. Concurrent
// stamping keeps running; the snapshot is per-field atomic, not a
// consistent cut — exactly what a debugging export needs to be.
func (t *Tracer) Snapshot() Export {
	ex := Export{
		Node:          t.id,
		SpanCapacity:  len(t.spans),
		EventCapacity: len(t.events),
	}
	spanSeq := t.spanSeq.Load()
	if over := spanSeq; over > uint64(len(t.spans)) {
		ex.SpansDropped = over - uint64(len(t.spans))
	}
	start := uint64(0)
	if spanSeq > uint64(len(t.spans)) {
		start = spanSeq - uint64(len(t.spans))
	}
	for seq := start; seq < spanSeq; seq++ {
		sp := t.spans[seq%uint64(len(t.spans))].Load()
		if sp == nil || sp.seq < seq {
			continue
		}
		ex.Spans = append(ex.Spans, sp.export())
	}
	eventSeq := t.eventSeq.Load()
	if eventSeq > uint64(len(t.events)) {
		ex.EventsDropped = eventSeq - uint64(len(t.events))
	}
	start = 0
	if eventSeq > uint64(len(t.events)) {
		start = eventSeq - uint64(len(t.events))
	}
	for seq := start; seq < eventSeq; seq++ {
		if e := t.events[seq%uint64(len(t.events))].Load(); e != nil {
			ex.Events = append(ex.Events, *e)
		}
	}
	return ex
}

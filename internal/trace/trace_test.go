package trace

import (
	"encoding/binary"
	"sync"
	"testing"
	"time"

	"github.com/bamboo-bft/bamboo/internal/types"
)

func hashOf(i uint64) types.Hash {
	var h types.Hash
	binary.BigEndian.PutUint64(h[:8], i)
	return h
}

func TestSpanLifecycle(t *testing.T) {
	tr := New(2, 8, 8)
	h := hashOf(1)
	tr.OnReceived(h, 7, 3, 40)
	tr.OnVerified(h)
	tr.OnVoted(h)
	tr.OnQCFormed(h)
	tr.OnCommitted(h, 5, 40)
	sp, ok := tr.OnExecuted(h)
	if !ok {
		t.Fatal("span lost before execution")
	}
	tr.OnReplied(h)

	if sp.View != 7 || sp.Proposer != 3 || sp.Txs != 40 || sp.Height != 5 {
		t.Fatalf("span identity wrong: %+v", sp)
	}
	stamps := []int64{sp.Received, sp.Verified, sp.Voted, sp.QCFormed, sp.Committed, sp.Executed}
	for i := 1; i < len(stamps); i++ {
		if stamps[i-1] == 0 || stamps[i] < stamps[i-1] {
			t.Fatalf("stage stamps not monotone: %v", stamps)
		}
	}
	if sp.Proposed != 0 {
		t.Fatalf("follower span must not carry a proposed stamp, got %d", sp.Proposed)
	}

	ex := tr.Snapshot()
	if len(ex.Spans) != 1 || ex.Spans[0].Replied == 0 {
		t.Fatalf("snapshot = %+v", ex)
	}
}

func TestProposerSelfStamps(t *testing.T) {
	tr := New(1, 8, 8)
	h := hashOf(9)
	tr.OnProposed(h, 3, 1, 12)
	sp := tr.Snapshot().Spans[0]
	if sp.Proposed == 0 || sp.Received != sp.Proposed || sp.Verified != sp.Proposed {
		t.Fatalf("proposer's own copy should be received+verified at propose time: %+v", sp)
	}
}

// TestRingWraparound proves the span ring is bounded and evicts oldest
// first: after writing far more blocks than capacity, the snapshot
// holds exactly the newest cap spans, the index has forgotten the
// evicted ones, and the drop counter accounts for the rest.
func TestRingWraparound(t *testing.T) {
	const cap, total = 16, 100
	tr := New(1, cap, cap)
	for i := uint64(0); i < total; i++ {
		tr.OnReceived(hashOf(i), types.View(i), 1, 1)
	}

	ex := tr.Snapshot()
	if len(ex.Spans) != cap {
		t.Fatalf("ring holds %d spans, want %d", len(ex.Spans), cap)
	}
	if ex.SpansDropped != total-cap {
		t.Fatalf("SpansDropped = %d, want %d", ex.SpansDropped, total-cap)
	}
	// Oldest-first export of exactly the newest cap views.
	for i, sp := range ex.Spans {
		if want := types.View(total - cap + i); sp.View != want {
			t.Fatalf("span %d has view %d, want %d (oldest-first eviction broken)", i, sp.View, want)
		}
	}
	// Evicted blocks are gone from the index: a late stamp for one is
	// a no-op, not a resurrection.
	tr.OnCommitted(hashOf(0), 1, 1)
	for _, sp := range tr.Snapshot().Spans {
		if sp.Committed != 0 {
			t.Fatal("stamp on an evicted block resurrected it")
		}
	}
	// A live block still stamps.
	tr.OnCommitted(hashOf(total-1), total-1, 1)
	spans := tr.Snapshot().Spans
	if spans[len(spans)-1].Committed == 0 {
		t.Fatal("live block lost its stamp")
	}
}

func TestEventRingWraparound(t *testing.T) {
	const cap = 8
	tr := New(1, cap, cap)
	for v := types.View(1); v <= 3*cap; v++ {
		tr.OnTimeout(v)
	}
	ex := tr.Snapshot()
	if len(ex.Events) != cap {
		t.Fatalf("event ring holds %d, want %d", len(ex.Events), cap)
	}
	if ex.EventsDropped != 2*cap {
		t.Fatalf("EventsDropped = %d, want %d", ex.EventsDropped, 2*cap)
	}
	for i, e := range ex.Events {
		if want := types.View(2*cap + i + 1); e.View != want {
			t.Fatalf("event %d has view %d, want %d", i, e.View, want)
		}
	}
}

func TestViewEnteredSelfLeader(t *testing.T) {
	tr := New(3, 8, 8)
	tr.OnViewEntered(5, 2)
	tr.OnViewEntered(6, 3) // we are the leader
	ev := tr.Snapshot().Events
	if len(ev) != 3 {
		t.Fatalf("want view-entered, view-entered, leader-elected; got %d events", len(ev))
	}
	if ev[2].Kind != EventLeaderElected || ev[2].View != 6 {
		t.Fatalf("missing leader-elected event: %+v", ev)
	}
}

func TestStampWriteOnce(t *testing.T) {
	tr := New(1, 8, 8)
	h := hashOf(4)
	tr.OnReceived(h, 1, 1, 1)
	first := tr.Snapshot().Spans[0].Received
	time.Sleep(2 * time.Millisecond)
	tr.OnReceived(h, 1, 1, 1) // replayed proposal must not move the stamp
	if got := tr.Snapshot().Spans[0].Received; got != first {
		t.Fatalf("replay moved the received stamp: %d -> %d", first, got)
	}
}

func TestConcurrentStamping(t *testing.T) {
	const cap = 64
	tr := New(1, cap, cap)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := uint64(0); i < 500; i++ {
				h := hashOf(i)
				tr.OnReceived(h, types.View(i), 1, 1)
				tr.OnVerified(h)
				tr.OnVoted(h)
				tr.OnQCFormed(h)
				tr.OnCommitted(h, i, 1)
				tr.OnExecuted(h)
				tr.OnViewEntered(types.View(i), types.NodeID(g+1))
			}
		}(g)
	}
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				tr.Snapshot()
			}
		}
	}()
	wg.Wait()
	close(done)
	if got := len(tr.Snapshot().Spans); got > cap {
		t.Fatalf("ring overflowed under concurrency: %d > %d", got, cap)
	}
}

func TestChromeExport(t *testing.T) {
	tr := New(4, 8, 8)
	h := hashOf(11)
	tr.OnReceived(h, 2, 1, 5)
	tr.OnVerified(h)
	tr.OnVoted(h)
	tr.OnQCFormed(h)
	tr.OnCommitted(h, 1, 5)
	tr.OnExecuted(h)
	tr.OnTimeout(3)

	events := tr.Snapshot().Chrome()
	var slices, instants, meta int
	for _, e := range events {
		switch e.Ph {
		case "X":
			slices++
			if e.Pid != 4 || e.Tid < 1 || e.Tid > 5 {
				t.Fatalf("stage slice on wrong lane: %+v", e)
			}
			if e.Dur < 0 {
				t.Fatalf("negative duration: %+v", e)
			}
		case "i":
			instants++
			if e.Tid != 0 {
				t.Fatalf("instant event off lane 0: %+v", e)
			}
		case "M":
			meta++
		default:
			t.Fatalf("unknown phase %q", e.Ph)
		}
	}
	if slices != 5 {
		t.Fatalf("want 5 stage slices for a fully executed block, got %d", slices)
	}
	if instants != 1 || meta != 7 {
		t.Fatalf("instants=%d meta=%d", instants, meta)
	}
}

package trace

import "fmt"

// Chrome trace-event export: the Export's spans and events rendered in
// the Trace Event Format that chrome://tracing and Perfetto load. Each
// replica is a process (pid = replica ID); thread 0 carries the
// instant events (view changes, timeouts, WAL syncs, sync episodes)
// and threads 1..5 are per-stage lanes where every block's time in
// that stage is a complete ("X") slice — so a committed block reads as
// a staircase of verify → vote → qc → commit → execute slices across
// the lanes, and a stall in any stage is visually obvious.

// ChromeEvent is one entry of the Trace Event Format's JSON array.
type ChromeEvent struct {
	Name string `json:"name"`
	// Ph is the event phase: "X" complete (Ts+Dur), "i" instant, "M"
	// metadata (process/thread names).
	Ph  string `json:"ph"`
	Ts  int64  `json:"ts"`            // microseconds
	Dur int64  `json:"dur,omitempty"` // microseconds, "X" only
	Pid uint32 `json:"pid"`
	Tid uint32 `json:"tid"`
	// S scopes instant events; "p" (process) keeps them visible at
	// any zoom.
	S    string         `json:"s,omitempty"`
	Cat  string         `json:"cat,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// The per-stage lanes, in pipeline order. Lane i+1 renders the
// interval between stageBounds[i]'s two stamps.
var stageLanes = []struct {
	tid  uint32
	name string
	from func(Span) int64
	to   func(Span) int64
}{
	{1, "verify", func(s Span) int64 { return s.Received }, func(s Span) int64 { return s.Verified }},
	{2, "vote", func(s Span) int64 { return s.Verified }, func(s Span) int64 { return s.Voted }},
	{3, "qc", func(s Span) int64 { return s.Voted }, func(s Span) int64 { return s.QCFormed }},
	{4, "commit", func(s Span) int64 { return s.QCFormed }, func(s Span) int64 { return s.Committed }},
	{5, "execute", func(s Span) int64 { return s.Committed }, func(s Span) int64 { return s.Executed }},
}

// Chrome renders the export as a Trace Event Format array.
func (ex Export) Chrome() []ChromeEvent {
	pid := uint32(ex.Node)
	out := []ChromeEvent{
		{Name: "process_name", Ph: "M", Pid: pid,
			Args: map[string]any{"name": fmt.Sprintf("replica %d", ex.Node)}},
		{Name: "thread_name", Ph: "M", Pid: pid, Tid: 0,
			Args: map[string]any{"name": "events"}},
	}
	for _, lane := range stageLanes {
		out = append(out, ChromeEvent{Name: "thread_name", Ph: "M", Pid: pid, Tid: lane.tid,
			Args: map[string]any{"name": "stage:" + lane.name}})
	}
	for _, sp := range ex.Spans {
		args := map[string]any{
			"block":    sp.Block,
			"view":     sp.View,
			"proposer": sp.Proposer,
			"txs":      sp.Txs,
		}
		if sp.Height != 0 {
			args["height"] = sp.Height
		}
		for _, lane := range stageLanes {
			from, to := lane.from(sp), lane.to(sp)
			if from == 0 || to == 0 || to < from {
				continue
			}
			out = append(out, ChromeEvent{
				Name: lane.name + " " + sp.Block,
				Ph:   "X",
				Ts:   from / 1e3,
				Dur:  (to - from) / 1e3,
				Pid:  pid,
				Tid:  lane.tid,
				Cat:  "block",
				Args: args,
			})
		}
	}
	for _, e := range ex.Events {
		ce := ChromeEvent{
			Name: e.Kind,
			Ph:   "i",
			Ts:   e.Time / 1e3,
			Pid:  pid,
			Tid:  0,
			S:    "p",
			Cat:  "view",
		}
		args := map[string]any{}
		if e.View != 0 {
			args["view"] = e.View
		}
		if e.Node != 0 {
			args["node"] = e.Node
		}
		if e.Dur != 0 {
			args["durNs"] = e.Dur
		}
		if len(args) > 0 {
			ce.Args = args
		}
		out = append(out, ce)
	}
	return out
}

// Package safety defines the interface a chained-BFT protocol
// implements on top of the Bamboo engine — the shaded blocks of the
// paper's Figure 4: the Proposing rule, Voting rule, State Updating
// rule, and Commit rule. The engine (internal/core) supplies
// everything else: block forest, mempool, pacemaker, quorum
// aggregation, networking, and benchmarking.
//
// A protocol in this framework is therefore a few hundred lines, the
// same order of magnitude the paper reports (~300 LoC per protocol).
package safety

import (
	"github.com/bamboo-bft/bamboo/internal/forest"
	"github.com/bamboo-bft/bamboo/internal/types"
)

// Rules is the consensus core of one protocol, driven by a single
// replica event loop (implementations need no internal locking).
type Rules interface {
	// Propose implements the Proposing rule: build the block this
	// replica proposes for the view, carrying the given payload.
	// Returning nil means the proposer stays silent for the view —
	// which is exactly how the silence attack is expressed.
	Propose(view types.View, payload []types.Transaction) *types.Block

	// VoteRule implements the Voting rule: report whether to vote
	// for the block. tc, when non-nil, is the timeout certificate
	// justifying a proposal made right after a view change.
	// Implementations update their last-voted view when they return
	// true (the paper's state variable lvView is "updated right
	// after a vote is sent").
	VoteRule(b *types.Block, tc *types.TC) bool

	// UpdateState implements the State Updating rule, ingesting a
	// newly learned quorum certificate.
	UpdateState(qc *types.QC)

	// CommitRule inspects the chain after qc was learned and
	// returns the newest block that became committed (committing a
	// block commits its whole prefix), or nil.
	CommitRule(qc *types.QC) *types.Block

	// HighQC returns the freshest certificate this protocol would
	// extend — carried in timeout messages so a new leader can
	// propose safely, and the anchor the Byzantine forking strategy
	// walks back from.
	HighQC() *types.QC

	// DurableState reports the crash-critical slice of the protocol's
	// voting state — what the engine syncs to the safety WAL before a
	// vote or timeout leaves the replica. Protocols whose state lives
	// in the forest (Streamlet) report only what is truly local.
	DurableState() DurableState

	// Restore merges a previously persisted DurableState back in
	// after a restart. The merge is monotone — views only move up,
	// and a certificate is adopted only if fresher — so it composes
	// with whatever ledger replay already rebuilt.
	Restore(DurableState)

	// Policy reports the protocol's fixed design choices.
	Policy() Policy
}

// DurableState is the protocol state that must survive a crash for
// the voting rule to stay safe across it: the last voted view (lvView
// — a replica that forgets it can vote twice in one view, which is
// equivocation), the lock (preferred view), and the highest known
// certificate.
type DurableState struct {
	LastVoted types.View
	Preferred types.View
	HighQC    *types.QC
}

// Policy captures per-protocol design choices the engine must honour.
type Policy struct {
	// BroadcastVote sends votes to every replica instead of only
	// the next leader (Streamlet).
	BroadcastVote bool
	// EchoMessages re-broadcasts every first-seen proposal and vote
	// (Streamlet's O(n³) echoing).
	EchoMessages bool
	// ResponsiveDefault is whether the protocol proposes
	// immediately on a quorum of timeouts after a view change
	// (HotStuff's optimistic responsiveness) rather than waiting
	// the maximum network delay. The run configuration may
	// override it for experiments such as Figure 15.
	ResponsiveDefault bool
	// LightweightPool skips mempool duplicate tracking — the
	// cheaper client path of the original HotStuff (OHS) baseline.
	LightweightPool bool
}

// Env is what the engine hands a protocol at construction time.
type Env struct {
	// Forest is the replica's block store (shared with the engine).
	Forest *forest.Forest
	// Self is this replica's identity.
	Self types.NodeID
	// N is the cluster size.
	N int
}

// Factory builds a protocol instance for one replica.
type Factory func(Env) Rules

// BuildBlock assembles a standard proposal extending the block that
// qc certifies — the common shape of every honest Proposing rule.
func BuildBlock(self types.NodeID, view types.View, qc *types.QC, payload []types.Transaction) *types.Block {
	b := &types.Block{
		View:     view,
		Proposer: self,
		Parent:   qc.BlockID,
		QC:       qc.Clone(),
		Payload:  payload,
	}
	b.ID()
	return b
}

package safety

import (
	"testing"

	"github.com/bamboo-bft/bamboo/internal/types"
)

func TestBuildBlock(t *testing.T) {
	qc := &types.QC{
		View:    3,
		BlockID: types.Hash{7},
		Signers: []types.NodeID{1, 2, 3},
		Sigs:    [][]byte{{1}, {2}, {3}},
	}
	payload := []types.Transaction{{ID: types.TxID{Client: 1, Seq: 9}}}
	b := BuildBlock(2, 4, qc, payload)
	if b.View != 4 || b.Proposer != 2 {
		t.Fatalf("header wrong: %+v", b)
	}
	if b.Parent != qc.BlockID {
		t.Fatal("parent must be the certified block")
	}
	if len(b.Payload) != 1 {
		t.Fatal("payload lost")
	}
	// The embedded QC is a clone: mutating it must not reach the
	// proposer's original (blocks travel across replica boundaries
	// in-process).
	b.QC.Signers[0] = 42
	if qc.Signers[0] != 1 {
		t.Fatal("BuildBlock shares QC memory with the caller")
	}
	// The ID is pre-computed so later mutation cannot change it.
	id := b.ID()
	b.View = 99
	if b.ID() != id {
		t.Fatal("block ID not pinned at build time")
	}
}

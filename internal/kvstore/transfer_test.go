package kvstore

import (
	"testing"

	"github.com/bamboo-bft/bamboo/internal/types"
)

func apply(s *Store, cmds ...[]byte) {
	txs := make([]types.Transaction, len(cmds))
	for i, cmd := range cmds {
		txs[i] = types.Transaction{ID: types.TxID{Client: 9, Seq: uint64(i + 1)}, Command: cmd}
	}
	s.Apply(txs)
}

func TestTransferMovesBalance(t *testing.T) {
	s := New()
	apply(s,
		EncodeSet("a", EncodeBalance(100), 0),
		EncodeSet("b", EncodeBalance(10), 0),
		EncodeTransfer("a", "b", 30, 0, 0),
	)
	if got := s.Balance("a"); got != 70 {
		t.Fatalf("a = %d, want 70", got)
	}
	if got := s.Balance("b"); got != 40 {
		t.Fatalf("b = %d, want 40", got)
	}
}

func TestTransferInsufficientFundsIsNoop(t *testing.T) {
	s := New()
	apply(s,
		EncodeSet("a", EncodeBalance(5), 0),
		EncodeTransfer("a", "b", 30, 0, 0),
	)
	if got := s.Balance("a"); got != 5 {
		t.Fatalf("a = %d, want 5", got)
	}
	if got := s.Balance("b"); got != 0 {
		t.Fatalf("b = %d, want 0", got)
	}
}

func TestTransferInitMaterializesAccounts(t *testing.T) {
	s := New()
	// Neither account exists; both materialize at the implicit
	// initial balance carried by the command.
	apply(s, EncodeTransfer("a", "b", 30, 100, 0))
	if got := s.Balance("a"); got != 70 {
		t.Fatalf("a = %d, want 70", got)
	}
	if got := s.Balance("b"); got != 130 {
		t.Fatalf("b = %d, want 130", got)
	}
	// An untouched account reads as the initial balance.
	if got := s.BalanceOr("c", 100); got != 100 {
		t.Fatalf("c = %d, want 100", got)
	}
}

func TestTransferToMissingAccountCreatesIt(t *testing.T) {
	s := New()
	apply(s,
		EncodeSet("a", EncodeBalance(50), 0),
		EncodeTransfer("a", "fresh", 20, 0, 0),
	)
	if got := s.Balance("fresh"); got != 20 {
		t.Fatalf("fresh = %d, want 20", got)
	}
}

func TestTransferRoundTripsDecode(t *testing.T) {
	cmd := EncodeTransfer("alice", "bob", 77, 1000, 256)
	if len(cmd) != 256 {
		t.Fatalf("padded command length %d, want 256", len(cmd))
	}
	key, val, op, ok := Decode(cmd)
	if !ok || op != OpTransfer || key != "alice" {
		t.Fatalf("decode: key=%q op=%d ok=%v", key, op, ok)
	}
	to, amount, init, ok := DecodeTransferValue(val)
	if !ok || to != "bob" || amount != 77 || init != 1000 {
		t.Fatalf("transfer value: to=%q amount=%d init=%d ok=%v", to, amount, init, ok)
	}
}

func TestGetCountsReads(t *testing.T) {
	s := New()
	apply(s,
		EncodeSet("k", []byte("v"), 0),
		EncodeGet("k", 0),
		EncodeGet("other", 128),
	)
	if got := s.Reads(); got != 2 {
		t.Fatalf("reads = %d, want 2", got)
	}
	if v, ok := s.Get("k"); !ok || string(v) != "v" {
		t.Fatalf("k = %q ok=%v after reads", v, ok)
	}
}

package kvstore

import (
	"bytes"
	"testing"

	"github.com/bamboo-bft/bamboo/internal/types"
)

// TestSnapshotStateRoundTrip: serialize → restore reproduces the
// exact state, counters included, and the restored store re-serializes
// to the identical bytes.
func TestSnapshotStateRoundTrip(t *testing.T) {
	s := New()
	s.Apply([]types.Transaction{
		{ID: types.TxID{Client: 1, Seq: 1}, Command: EncodeSet("alpha", []byte("one"), 0)},
		{ID: types.TxID{Client: 1, Seq: 2}, Command: EncodeSet("beta", []byte{0, 1, 2}, 0)},
		{ID: types.TxID{Client: 1, Seq: 3}, Command: EncodeGet("alpha", 0)},
		{ID: types.TxID{Client: 1, Seq: 4}, Command: EncodeDel("beta", 0)},
		{ID: types.TxID{Client: 1, Seq: 5}, Command: EncodeSet("", nil, 0)}, // empty key and value
	})
	blob := s.SnapshotState()

	r := New()
	r.Apply([]types.Transaction{ // pre-existing state must be discarded
		{ID: types.TxID{Client: 2, Seq: 1}, Command: EncodeSet("junk", []byte("x"), 0)},
	})
	if err := r.RestoreState(blob); err != nil {
		t.Fatal(err)
	}
	if v, ok := r.Get("alpha"); !ok || string(v) != "one" {
		t.Fatalf("alpha = %q, %v", v, ok)
	}
	if _, ok := r.Get("beta"); ok {
		t.Fatal("deleted key survived the round trip")
	}
	if _, ok := r.Get("junk"); ok {
		t.Fatal("pre-restore state leaked through")
	}
	if r.Applied() != s.Applied() || r.Reads() != s.Reads() {
		t.Fatalf("counters diverged: applied %d/%d reads %d/%d",
			r.Applied(), s.Applied(), r.Reads(), s.Reads())
	}
	if !bytes.Equal(r.SnapshotState(), blob) {
		t.Fatal("restored store serializes differently")
	}
}

// TestSnapshotStateDeterministic: insertion order must not leak into
// the serialization — two stores reaching the same state through
// different histories of equal length serialize identically.
func TestSnapshotStateDeterministic(t *testing.T) {
	a, b := New(), New()
	a.Apply([]types.Transaction{
		{Command: EncodeSet("k1", []byte("v1"), 0)},
		{Command: EncodeSet("k2", []byte("v2"), 0)},
		{Command: EncodeSet("k3", []byte("v3"), 0)},
	})
	b.Apply([]types.Transaction{
		{Command: EncodeSet("k3", []byte("v3"), 0)},
		{Command: EncodeSet("k1", []byte("wrong"), 0)},
		{Command: EncodeSet("k1", []byte("v1"), 0)},
	})
	// Equalize the applied counters so only map iteration order could
	// still differ between the serializations.
	a.Apply([]types.Transaction{{Command: EncodeNoop(0)}})
	b.Apply([]types.Transaction{{Command: EncodeSet("k2", []byte("v2"), 0)}})
	if a.Applied() != b.Applied() {
		t.Fatalf("test setup: applied %d vs %d", a.Applied(), b.Applied())
	}
	if !bytes.Equal(a.SnapshotState(), b.SnapshotState()) {
		t.Fatal("same state, different serialization")
	}
}

// TestRestoreStateRejectsMalformed: truncated or trailing-garbage
// serializations are rejected without touching the store.
func TestRestoreStateRejectsMalformed(t *testing.T) {
	s := New()
	s.Apply([]types.Transaction{{Command: EncodeSet("keep", []byte("me"), 0)}})
	blob := s.SnapshotState()
	for name, bad := range map[string][]byte{
		"empty":     {},
		"truncated": blob[:len(blob)-1],
		"trailing":  append(append([]byte{}, blob...), 0xff),
		"lying len": {0x01, 0xff, 0xff}, // claims a huge key
	} {
		r := New()
		r.Apply([]types.Transaction{{Command: EncodeSet("pre", []byte("x"), 0)}})
		if err := r.RestoreState(bad); err == nil {
			t.Fatalf("%s serialization accepted", name)
		}
		if _, ok := r.Get("pre"); !ok {
			t.Fatalf("%s serialization clobbered the store before failing", name)
		}
	}
}

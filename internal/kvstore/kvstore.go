// Package kvstore is the in-memory key-value execution layer the
// paper adopts for protocol-level benchmarking (Section III-D).
// Committed transactions are applied in commit order; reads are served
// locally from the replica's store.
package kvstore

import (
	"encoding/binary"
	"errors"
	"sort"
	"sync"

	"github.com/bamboo-bft/bamboo/internal/types"
)

// Op codes carried in the first byte of a transaction command.
const (
	OpNoop byte = iota
	OpSet
	OpDel
	// OpGet is an ordered read: it mutates nothing but travels
	// through consensus like any command, so read-heavy workloads
	// exercise the full replication path (linearizable reads).
	OpGet
	// OpTransfer moves balance between two accounts inside the state
	// machine: the value field carries the destination key, an
	// amount, and an optional initial balance that lazily
	// materializes an account the first time a transfer touches it
	// (so no separate seeding phase whose commands could be lost or
	// reordered). Balances are big-endian uint64 values. Transfers
	// with insufficient funds apply as no-ops, so with every account
	// counted at the initial balance until touched, the total is
	// conserved under any subset and ordering of commits.
	OpTransfer
)

// Store is a replica's state machine. Safe for concurrent use: the
// consensus loop applies, observers read.
type Store struct {
	mu      sync.RWMutex
	data    map[string][]byte
	applied uint64
	reads   uint64
}

// New creates an empty store.
func New() *Store {
	return &Store{data: make(map[string][]byte)}
}

// Apply executes a committed payload in order. Unknown or malformed
// commands are ignored (a real deployment would reject them at
// submission; consensus has already ordered them here).
func (s *Store) Apply(txs []types.Transaction) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range txs {
		s.applied++
		key, val, op, ok := Decode(txs[i].Command)
		if !ok {
			continue
		}
		switch op {
		case OpSet:
			s.data[key] = val
		case OpDel:
			delete(s.data, key)
		case OpGet:
			s.reads++
		case OpTransfer:
			to, amount, init, ok := DecodeTransferValue(val)
			if !ok {
				continue
			}
			from := s.balanceOr(key, init)
			if from < amount {
				continue // insufficient funds: conserved no-op
			}
			s.data[key] = encodeBalance(from - amount)
			s.data[to] = encodeBalance(s.balanceOr(to, init) + amount)
		}
	}
}

// Get returns the value for key.
func (s *Store) Get(key string) ([]byte, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.data[key]
	return v, ok
}

// Len returns the number of live keys.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.data)
}

// Applied returns the number of transactions applied.
func (s *Store) Applied() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.applied
}

// Reads returns the number of ordered reads (OpGet) applied.
func (s *Store) Reads() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.reads
}

// SnapshotState renders the store as a canonical byte sequence: key
// count, then every key/value pair in sorted key order with varint
// length prefixes, then the applied and read counters. Two replicas
// that applied the same committed prefix produce byte-identical
// serializations, so a digest over this form is a cross-replica state
// commitment — the anchor snapshot-based catch-up verifies against.
func (s *Store) SnapshotState() []byte {
	s.mu.RLock()
	defer s.mu.RUnlock()
	keys := make([]string, 0, len(s.data))
	size := 0
	for k, v := range s.data {
		keys = append(keys, k)
		size += len(k) + len(v) + 2*binary.MaxVarintLen64
	}
	sort.Strings(keys)
	buf := make([]byte, 0, size+3*binary.MaxVarintLen64)
	var tmp [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) {
		n := binary.PutUvarint(tmp[:], v)
		buf = append(buf, tmp[:n]...)
	}
	putUvarint(uint64(len(keys)))
	for _, k := range keys {
		putUvarint(uint64(len(k)))
		buf = append(buf, k...)
		v := s.data[k]
		putUvarint(uint64(len(v)))
		buf = append(buf, v...)
	}
	putUvarint(s.applied)
	putUvarint(s.reads)
	return buf
}

// ErrBadSnapshot reports a state serialization RestoreState cannot
// parse. Callers verify the serialization's digest before restoring,
// so in practice this only fires on version skew or corruption that
// slipped past the digest check's provenance.
var ErrBadSnapshot = errors.New("kvstore: malformed state snapshot")

// RestoreState replaces the store's entire contents with the state a
// SnapshotState serialization describes — the install step of
// snapshot-based catch-up and restart replay. The previous contents
// are discarded only after the serialization parses completely.
func (s *Store) RestoreState(data []byte) error {
	off := 0
	next := func() (uint64, bool) {
		v, n := binary.Uvarint(data[off:])
		if n <= 0 {
			return 0, false
		}
		off += n
		return v, true
	}
	count, ok := next()
	if !ok {
		return ErrBadSnapshot
	}
	// Every pair costs at least two bytes of serialization, so a
	// count beyond that bound is a lie — reject it before the map
	// pre-allocation turns a corrupt local file into an OOM crash.
	if count > uint64(len(data))/2 {
		return ErrBadSnapshot
	}
	m := make(map[string][]byte, count)
	for i := uint64(0); i < count; i++ {
		klen, ok := next()
		if !ok || uint64(len(data)-off) < klen {
			return ErrBadSnapshot
		}
		k := string(data[off : off+int(klen)])
		off += int(klen)
		vlen, ok := next()
		if !ok || uint64(len(data)-off) < vlen {
			return ErrBadSnapshot
		}
		m[k] = append([]byte(nil), data[off:off+int(vlen)]...)
		off += int(vlen)
	}
	applied, ok := next()
	if !ok {
		return ErrBadSnapshot
	}
	reads, ok := next()
	if !ok || off != len(data) {
		return ErrBadSnapshot
	}
	s.mu.Lock()
	s.data = m
	s.applied = applied
	s.reads = reads
	s.mu.Unlock()
	return nil
}

// Balance returns a key's value interpreted as a big-endian uint64
// account balance (0 when absent or malformed).
func (s *Store) Balance(key string) uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return balanceOf(s.data[key])
}

// BalanceOr returns the account balance, counting an account no
// transfer has materialized yet at its implicit initial balance —
// the read-side mirror of OpTransfer's lazy initialization.
func (s *Store) BalanceOr(key string, init uint64) uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.balanceOr(key, init)
}

// balanceOr is BalanceOr without locking (callers hold mu).
func (s *Store) balanceOr(key string, init uint64) uint64 {
	v, ok := s.data[key]
	if !ok {
		return init
	}
	return balanceOf(v)
}

// EncodeSet builds a SET command. The payload pad extends the command
// to the configured transaction payload size (Table I "psize").
func EncodeSet(key string, value []byte, pad int) []byte {
	return encode(OpSet, key, value, pad)
}

// EncodeDel builds a DEL command.
func EncodeDel(key string, pad int) []byte {
	return encode(OpDel, key, nil, pad)
}

// EncodeNoop builds a no-op command of exactly pad bytes of payload —
// the zero-payload benchmark transaction.
func EncodeNoop(pad int) []byte {
	return encode(OpNoop, "", nil, pad)
}

// EncodeGet builds an ordered-read command for key.
func EncodeGet(key string, pad int) []byte {
	return encode(OpGet, key, nil, pad)
}

// EncodeTransfer builds a balance transfer of amount from one account
// key to another, executed atomically by Apply. init is the implicit
// initial balance of accounts no transfer has touched yet (0 means
// accounts must exist to hold funds).
func EncodeTransfer(from, to string, amount, init uint64, pad int) []byte {
	val := make([]byte, 2+len(to)+16)
	binary.BigEndian.PutUint16(val[:2], uint16(len(to)))
	copy(val[2:], to)
	binary.BigEndian.PutUint64(val[2+len(to):], amount)
	binary.BigEndian.PutUint64(val[2+len(to)+8:], init)
	return encode(OpTransfer, from, val, pad)
}

// DecodeTransferValue parses the value field of an OpTransfer command
// into the destination key, amount, and implicit initial balance.
func DecodeTransferValue(val []byte) (to string, amount, init uint64, ok bool) {
	if len(val) < 2 {
		return "", 0, 0, false
	}
	tlen := int(binary.BigEndian.Uint16(val[:2]))
	if 2+tlen+16 > len(val) {
		return "", 0, 0, false
	}
	to = string(val[2 : 2+tlen])
	amount = binary.BigEndian.Uint64(val[2+tlen : 2+tlen+8])
	init = binary.BigEndian.Uint64(val[2+tlen+8 : 2+tlen+16])
	return to, amount, init, true
}

// EncodeBalance renders an account balance as a store value.
func EncodeBalance(v uint64) []byte { return encodeBalance(v) }

func encodeBalance(v uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	return b[:]
}

// balanceOf reads a stored balance; malformed or missing values are 0.
func balanceOf(v []byte) uint64 {
	if len(v) != 8 {
		return 0
	}
	return binary.BigEndian.Uint64(v)
}

func encode(op byte, key string, value []byte, pad int) []byte {
	n := 1 + 2 + len(key) + 2 + len(value)
	total := n
	if pad > total {
		total = pad
	}
	buf := make([]byte, total)
	buf[0] = op
	binary.BigEndian.PutUint16(buf[1:3], uint16(len(key)))
	copy(buf[3:], key)
	off := 3 + len(key)
	binary.BigEndian.PutUint16(buf[off:off+2], uint16(len(value)))
	copy(buf[off+2:], value)
	return buf
}

// Decode parses a command; ok is false for malformed input.
func Decode(cmd []byte) (key string, value []byte, op byte, ok bool) {
	if len(cmd) < 5 {
		return "", nil, 0, false
	}
	op = cmd[0]
	if op > OpTransfer {
		return "", nil, 0, false
	}
	klen := int(binary.BigEndian.Uint16(cmd[1:3]))
	if 3+klen+2 > len(cmd) {
		return "", nil, 0, false
	}
	key = string(cmd[3 : 3+klen])
	off := 3 + klen
	vlen := int(binary.BigEndian.Uint16(cmd[off : off+2]))
	if off+2+vlen > len(cmd) {
		return "", nil, 0, false
	}
	value = cmd[off+2 : off+2+vlen]
	return key, value, op, true
}

// Package kvstore is the in-memory key-value execution layer the
// paper adopts for protocol-level benchmarking (Section III-D).
// Committed transactions are applied in commit order; reads are served
// locally from the replica's store.
package kvstore

import (
	"encoding/binary"
	"sync"

	"github.com/bamboo-bft/bamboo/internal/types"
)

// Op codes carried in the first byte of a transaction command.
const (
	OpNoop byte = iota
	OpSet
	OpDel
)

// Store is a replica's state machine. Safe for concurrent use: the
// consensus loop applies, observers read.
type Store struct {
	mu      sync.RWMutex
	data    map[string][]byte
	applied uint64
}

// New creates an empty store.
func New() *Store {
	return &Store{data: make(map[string][]byte)}
}

// Apply executes a committed payload in order. Unknown or malformed
// commands are ignored (a real deployment would reject them at
// submission; consensus has already ordered them here).
func (s *Store) Apply(txs []types.Transaction) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range txs {
		s.applied++
		key, val, op, ok := Decode(txs[i].Command)
		if !ok {
			continue
		}
		switch op {
		case OpSet:
			s.data[key] = val
		case OpDel:
			delete(s.data, key)
		}
	}
}

// Get returns the value for key.
func (s *Store) Get(key string) ([]byte, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.data[key]
	return v, ok
}

// Len returns the number of live keys.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.data)
}

// Applied returns the number of transactions applied.
func (s *Store) Applied() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.applied
}

// EncodeSet builds a SET command. The payload pad extends the command
// to the configured transaction payload size (Table I "psize").
func EncodeSet(key string, value []byte, pad int) []byte {
	return encode(OpSet, key, value, pad)
}

// EncodeDel builds a DEL command.
func EncodeDel(key string, pad int) []byte {
	return encode(OpDel, key, nil, pad)
}

// EncodeNoop builds a no-op command of exactly pad bytes of payload —
// the zero-payload benchmark transaction.
func EncodeNoop(pad int) []byte {
	return encode(OpNoop, "", nil, pad)
}

func encode(op byte, key string, value []byte, pad int) []byte {
	n := 1 + 2 + len(key) + 2 + len(value)
	total := n
	if pad > total {
		total = pad
	}
	buf := make([]byte, total)
	buf[0] = op
	binary.BigEndian.PutUint16(buf[1:3], uint16(len(key)))
	copy(buf[3:], key)
	off := 3 + len(key)
	binary.BigEndian.PutUint16(buf[off:off+2], uint16(len(value)))
	copy(buf[off+2:], value)
	return buf
}

// Decode parses a command; ok is false for malformed input.
func Decode(cmd []byte) (key string, value []byte, op byte, ok bool) {
	if len(cmd) < 5 {
		return "", nil, 0, false
	}
	op = cmd[0]
	if op > OpDel {
		return "", nil, 0, false
	}
	klen := int(binary.BigEndian.Uint16(cmd[1:3]))
	if 3+klen+2 > len(cmd) {
		return "", nil, 0, false
	}
	key = string(cmd[3 : 3+klen])
	off := 3 + klen
	vlen := int(binary.BigEndian.Uint16(cmd[off : off+2]))
	if off+2+vlen > len(cmd) {
		return "", nil, 0, false
	}
	value = cmd[off+2 : off+2+vlen]
	return key, value, op, true
}

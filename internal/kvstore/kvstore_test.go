package kvstore

import (
	"bytes"
	"testing"
	"testing/quick"

	"github.com/bamboo-bft/bamboo/internal/types"
)

func tx(cmd []byte) types.Transaction {
	return types.Transaction{ID: types.TxID{Client: 1, Seq: 1}, Command: cmd}
}

func TestSetGetDelete(t *testing.T) {
	s := New()
	s.Apply([]types.Transaction{tx(EncodeSet("k", []byte("v"), 0))})
	if v, ok := s.Get("k"); !ok || string(v) != "v" {
		t.Fatalf("get = %q %v", v, ok)
	}
	if s.Len() != 1 {
		t.Fatalf("len = %d", s.Len())
	}
	s.Apply([]types.Transaction{tx(EncodeDel("k", 0))})
	if _, ok := s.Get("k"); ok {
		t.Fatal("deleted key still present")
	}
	if s.Applied() != 2 {
		t.Fatalf("applied = %d", s.Applied())
	}
}

func TestNoopLeavesStateUntouched(t *testing.T) {
	s := New()
	s.Apply([]types.Transaction{tx(EncodeNoop(128))})
	if s.Len() != 0 {
		t.Fatal("noop mutated state")
	}
	if s.Applied() != 1 {
		t.Fatal("noop not counted as applied")
	}
}

func TestApplyOrderLastWriteWins(t *testing.T) {
	s := New()
	s.Apply([]types.Transaction{
		tx(EncodeSet("k", []byte("first"), 0)),
		tx(EncodeSet("k", []byte("second"), 0)),
	})
	if v, _ := s.Get("k"); string(v) != "second" {
		t.Fatalf("value = %q, want last write", v)
	}
}

func TestMalformedCommandsIgnored(t *testing.T) {
	s := New()
	s.Apply([]types.Transaction{
		tx(nil),
		tx([]byte{1}),
		tx([]byte{99, 0, 0, 0, 0}),       // unknown opcode
		tx([]byte{OpSet, 0xff, 0xff, 1}), // key length overruns
	})
	if s.Len() != 0 {
		t.Fatal("malformed command mutated state")
	}
	if s.Applied() != 4 {
		t.Fatalf("applied = %d (malformed still counts as ordered)", s.Applied())
	}
}

func TestPaddingReachesPayloadSize(t *testing.T) {
	cmd := EncodeSet("k", []byte("v"), 1024)
	if len(cmd) != 1024 {
		t.Fatalf("padded command = %d bytes, want 1024", len(cmd))
	}
	key, val, op, ok := Decode(cmd)
	if !ok || op != OpSet || key != "k" || string(val) != "v" {
		t.Fatalf("padded decode = %q %q %d %v", key, val, op, ok)
	}
	// Commands larger than the pad keep their natural size.
	big := EncodeSet("k", make([]byte, 2048), 100)
	if len(big) < 2048 {
		t.Fatal("pad truncated a large command")
	}
}

// Property: Encode/Decode round-trips arbitrary keys and values.
func TestEncodeDecodeRoundTripQuick(t *testing.T) {
	f := func(key string, value []byte, pad uint16) bool {
		if len(key) > 65535 {
			return true
		}
		cmd := EncodeSet(key, value, int(pad))
		k, v, op, ok := Decode(cmd)
		return ok && op == OpSet && k == key && bytes.Equal(v, value)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentReadsDuringApply(t *testing.T) {
	s := New()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 1000; i++ {
			s.Apply([]types.Transaction{tx(EncodeSet("k", []byte{byte(i)}, 0))})
		}
	}()
	for i := 0; i < 1000; i++ {
		s.Get("k")
		s.Len()
		s.Applied()
	}
	<-done
}

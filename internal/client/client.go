// Package client implements the Bamboo benchmark clients: closed-loop
// workers (the paper's "concurrency" knob — each worker keeps one
// request in flight) and an open-loop Poisson generator (the arrival
// process assumed by the Section V queuing model). Latency is measured
// at the client end, from submission to commit confirmation, exactly
// as the paper defines it.
package client

import (
	"math"
	"math/rand"
	"sync"
	"time"

	"github.com/bamboo-bft/bamboo/internal/metrics"
	"github.com/bamboo-bft/bamboo/internal/network"
	"github.com/bamboo-bft/bamboo/internal/types"
	"github.com/bamboo-bft/bamboo/internal/workload"
)

// Client submits transactions to randomly chosen replicas over an
// in-process transport endpoint and tracks reply latency.
type Client struct {
	ep          network.Transport
	id          uint64
	n           int
	payloadSize int
	rng         *rand.Rand
	rngMu       sync.Mutex
	gen         workload.Generator

	latency   *metrics.Latency
	committed metrics.Counter
	rejected  metrics.Counter
	retries   metrics.Counter

	mu      sync.Mutex
	waiters map[types.TxID]chan bool
	// pendingOpen tracks the *intended* send times of latency-sampled
	// open-loop transactions, resolved by the reply loop. Stamping the
	// intended arrival instead of the actual send keeps the histogram
	// free of coordinated omission: if the pacer falls behind, the
	// scheduling lag shows up as latency rather than vanishing.
	pendingOpen map[types.TxID]time.Time
	seq         uint64
	// fanout broadcasts each transaction to every replica.
	fanout bool

	stopCh   chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// New creates a client on the given endpoint. n is the number of
// replicas (targets are drawn uniformly, like the paper's clients);
// payloadSize pads each transaction (Table I "psize").
func New(ep network.Transport, n, payloadSize int, seed int64) *Client {
	c := &Client{
		ep:          ep,
		id:          uint64(ep.Self()),
		n:           n,
		payloadSize: payloadSize,
		rng:         rand.New(rand.NewSource(seed)),
		gen:         workload.NewNoop(payloadSize),
		latency:     &metrics.Latency{},
		waiters:     make(map[types.TxID]chan bool),
		pendingOpen: make(map[types.TxID]time.Time),
		stopCh:      make(chan struct{}),
	}
	c.wg.Add(1)
	go c.replyLoop()
	return c
}

// Latency exposes the client-side latency histogram.
func (c *Client) Latency() *metrics.Latency { return c.latency }

// Committed returns the number of confirmed transactions.
func (c *Client) Committed() uint64 { return c.committed.Load() }

// Rejected returns the number of pool-rejected transactions.
func (c *Client) Rejected() uint64 { return c.rejected.Load() }

// Retries returns the number of resubmissions made after rejections —
// the client-side cost of admission control under PolicyReject.
func (c *Client) Retries() uint64 { return c.retries.Load() }

// replyLoop demultiplexes commit confirmations.
func (c *Client) replyLoop() {
	defer c.wg.Done()
	for {
		select {
		case <-c.stopCh:
			return
		case env, ok := <-c.ep.Inbox():
			if !ok {
				return
			}
			reply, ok := env.Msg.(types.ReplyMsg)
			if !ok {
				continue
			}
			c.mu.Lock()
			ch, found := c.waiters[reply.TxID]
			if found {
				delete(c.waiters, reply.TxID)
			}
			submitted, sampled := c.pendingOpen[reply.TxID]
			if sampled {
				delete(c.pendingOpen, reply.TxID)
			}
			fanout := c.fanout
			c.mu.Unlock()
			if found {
				ch <- !reply.Rejected
			}
			if reply.Rejected {
				// Count each rejection that resolves a tracked
				// transaction once here (fanout duplicates resolve
				// nothing and are not double counted).
				if found || sampled {
					c.rejected.Add(1)
				}
			} else {
				if sampled {
					c.latency.Record(time.Since(submitted))
				}
				// Every commit reply is one committed transaction —
				// including unsampled open-loop ones, so per-client
				// throughput (the fairness input) counts all commits,
				// not just the latency sample. Under fanout the same
				// transaction draws up to n replies, so only the one
				// resolving a tracked entry counts.
				if found || sampled || !fanout {
					c.committed.Add(1)
				}
			}
		}
	}
}

// SetWorkload installs the command generator behind every submitted
// transaction; nil restores the default padded no-op. Generators are
// shared by all of the client's workers, so the installed value must
// be safe for concurrent use (the workload built-ins are).
func (c *Client) SetWorkload(g workload.Generator) {
	if g == nil {
		g = workload.NewNoop(c.payloadSize)
	}
	c.mu.Lock()
	c.gen = g
	c.mu.Unlock()
}

// nextTx builds a fresh benchmark transaction from the workload
// generator.
func (c *Client) nextTx() types.Transaction {
	c.mu.Lock()
	c.seq++
	seq := c.seq
	gen := c.gen
	c.mu.Unlock()
	return types.Transaction{
		ID:             types.TxID{Client: c.id, Seq: seq},
		Command:        gen.Next(),
		SubmitUnixNano: time.Now().UnixNano(),
	}
}

// pickReplica draws a uniformly random replica.
func (c *Client) pickReplica() types.NodeID {
	c.rngMu.Lock()
	defer c.rngMu.Unlock()
	return types.NodeID(c.rng.Intn(c.n) + 1)
}

// SetFanout makes the client broadcast each transaction to every
// replica instead of one chosen at random — the alternative client
// design choice discussed in Section V-E. The engine's commit scrub
// keeps duplicates out of the chain; the first commit reply wins.
func (c *Client) SetFanout(all bool) {
	c.mu.Lock()
	c.fanout = all
	c.mu.Unlock()
}

// submit registers a waiter and sends the transaction.
func (c *Client) submit(tx types.Transaction) chan bool {
	ch := make(chan bool, 1)
	c.mu.Lock()
	c.waiters[tx.ID] = ch
	fanout := c.fanout
	c.mu.Unlock()
	if fanout {
		for id := 1; id <= c.n; id++ {
			c.ep.Send(types.NodeID(id), types.RequestMsg{Tx: tx})
		}
		return ch
	}
	c.ep.Send(c.pickReplica(), types.RequestMsg{Tx: tx})
	return ch
}

// Retry policy for admission rejections: a rejected transaction is
// resubmitted with exponential backoff up to submitMaxRetries times
// before SubmitAndWait gives up. Each resubmission is counted in
// Retries; each rejection in Rejected.
const (
	submitMaxRetries   = 6
	submitBaseBackoff  = time.Millisecond
	submitBackoffLimit = 32 * time.Millisecond
)

// SubmitAndWait issues one transaction and blocks until it commits,
// the timeout passes, or the client stops. A pool rejection is retried
// with exponential backoff (the same transaction, resubmitted) up to
// submitMaxRetries times; the recorded latency spans the whole
// operation including backoff, so admission control's client-side cost
// is visible in the histogram. It returns true on commit.
func (c *Client) SubmitAndWait(timeout time.Duration) bool {
	tx := c.nextTx()
	start := time.Now()
	var timer *time.Timer
	var timeoutCh <-chan time.Time
	if timeout > 0 {
		timer = time.NewTimer(timeout)
		defer timer.Stop()
		timeoutCh = timer.C
	}
	backoff := submitBaseBackoff
	for attempt := 0; ; attempt++ {
		ch := c.submit(tx)
		select {
		case ok := <-ch:
			if ok {
				// Committed was counted by the reply loop; only the
				// whole-operation latency (including backoff spent on
				// retries) is recorded here.
				c.latency.Record(time.Since(start))
				return true
			}
			// Rejected (counted by the reply loop). Back off and
			// resubmit unless the retry budget is spent.
			if attempt >= submitMaxRetries {
				return false
			}
			wait := time.NewTimer(backoff)
			select {
			case <-wait.C:
			case <-timeoutCh:
				wait.Stop()
				return false
			case <-c.stopCh:
				wait.Stop()
				return false
			}
			if backoff *= 2; backoff > submitBackoffLimit {
				backoff = submitBackoffLimit
			}
			c.retries.Add(1)
			continue
		case <-timeoutCh:
		case <-c.stopCh:
		}
		c.mu.Lock()
		delete(c.waiters, tx.ID)
		c.mu.Unlock()
		return false
	}
}

// RunClosedLoop starts `concurrency` workers, each keeping one request
// in flight until Stop — the paper's benchmark driver. perOpTimeout
// bounds each wait so workers survive stalled protocols.
func (c *Client) RunClosedLoop(concurrency int, perOpTimeout time.Duration) {
	for i := 0; i < concurrency; i++ {
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			// One reusable backoff timer per worker: under sustained
			// backpressure every iteration backs off, and a fresh
			// time.After allocation per retry is pure churn.
			backoff := time.NewTimer(0)
			if !backoff.Stop() {
				<-backoff.C
			}
			defer backoff.Stop()
			for {
				select {
				case <-c.stopCh:
					return
				default:
				}
				if !c.SubmitAndWait(perOpTimeout) {
					// Back off briefly after a rejection or stall
					// so a saturated pool is not hammered.
					backoff.Reset(2 * time.Millisecond)
					select {
					case <-backoff.C:
					case <-c.stopCh:
						return
					}
				}
			}
		}()
	}
}

// RunOpenLoop fires transactions as a Poisson process with the given
// rate (transactions/second) until Stop, without waiting for replies —
// the arrival model of the Section V analysis. Arrivals are generated
// in 2 ms batches with Poisson-distributed counts (statistically
// equivalent, and feasible at 100k+ tx/s on small hosts). A sample of
// transactions (about 2000/s) is tracked for client-side latency,
// stamped at the *intended* arrival time (spread across the batch
// window), not the actual send: a pacer running late therefore shows
// the lag as latency instead of silently omitting it — the classic
// coordinated-omission correction.
func (c *Client) RunOpenLoop(rate float64) {
	if rate <= 0 {
		return
	}
	const tick = 2 * time.Millisecond
	sampleEvery := uint64(rate / 2000)
	if sampleEvery < 1 {
		sampleEvery = 1
	}
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		ticker := time.NewTicker(tick)
		defer ticker.Stop()
		last := time.Now()
		for {
			select {
			case <-c.stopCh:
				return
			case <-ticker.C:
			}
			// Scale the batch to the *actual* elapsed time: under
			// CPU contention the ticker coalesces missed ticks, and
			// a fixed per-tick mean would silently shed offered load.
			now := time.Now()
			window := now.Sub(last)
			mean := rate * window.Seconds()
			n := c.poisson(mean)
			for i := 0; i < n; i++ {
				tx := c.nextTx()
				if tx.ID.Seq%sampleEvery == 0 {
					// Conditioned on n arrivals, Poisson arrival
					// times are uniform order statistics over the
					// window — the i-th lands mid-slot.
					intended := last.Add(time.Duration(
						(float64(i) + 0.5) / float64(n) * float64(window)))
					c.mu.Lock()
					if len(c.pendingOpen) > 1<<16 {
						// Shed stale samples (replies lost to a
						// stalled protocol) instead of leaking.
						c.pendingOpen = make(map[types.TxID]time.Time)
					}
					c.pendingOpen[tx.ID] = intended
					c.mu.Unlock()
				}
				c.ep.Send(c.pickReplica(), types.RequestMsg{Tx: tx})
			}
			last = now
		}
	}()
}

// poisson samples a Poisson-distributed count with the given mean:
// Knuth's method for small means, a normal approximation for large.
func (c *Client) poisson(mean float64) int {
	c.rngMu.Lock()
	defer c.rngMu.Unlock()
	if mean <= 0 {
		return 0
	}
	if mean < 30 {
		l := math.Exp(-mean)
		k, p := 0, 1.0
		for p > l {
			k++
			p *= c.rng.Float64()
		}
		return k - 1
	}
	n := int(c.rng.NormFloat64()*math.Sqrt(mean) + mean + 0.5)
	if n < 0 {
		return 0
	}
	return n
}

// Stop terminates workers and the reply loop.
func (c *Client) Stop() {
	c.stopOnce.Do(func() {
		close(c.stopCh)
		c.wg.Wait()
		_ = c.ep.Close()
	})
}

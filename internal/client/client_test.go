package client

import (
	"sync"
	"testing"
	"time"

	"github.com/bamboo-bft/bamboo/internal/network"
	"github.com/bamboo-bft/bamboo/internal/types"
)

// fakeReplica echoes commit replies for every request, optionally
// rejecting, after an artificial service delay.
type fakeReplica struct {
	ep      network.Transport
	delay   time.Duration
	reject  bool
	mu      sync.Mutex
	seen    int
	stopCh  chan struct{}
	stopped sync.Once
}

func newFakeReplica(t *testing.T, sw *network.Switch, id types.NodeID, delay time.Duration, reject bool) *fakeReplica {
	t.Helper()
	ep, err := sw.Join(id)
	if err != nil {
		t.Fatal(err)
	}
	f := &fakeReplica{ep: ep, delay: delay, reject: reject, stopCh: make(chan struct{})}
	go f.run()
	t.Cleanup(f.stop)
	return f
}

func (f *fakeReplica) run() {
	for {
		select {
		case <-f.stopCh:
			return
		case env, ok := <-f.ep.Inbox():
			if !ok {
				return
			}
			req, isReq := env.Msg.(types.RequestMsg)
			if !isReq {
				continue
			}
			f.mu.Lock()
			f.seen++
			f.mu.Unlock()
			from := env.From
			time.AfterFunc(f.delay, func() {
				f.ep.Send(from, types.ReplyMsg{TxID: req.Tx.ID, View: 1, Rejected: f.reject})
			})
		}
	}
}

func (f *fakeReplica) count() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.seen
}

func (f *fakeReplica) stop() { f.stopped.Do(func() { close(f.stopCh) }) }

func newClient(t *testing.T, sw *network.Switch, n int) *Client {
	t.Helper()
	ep, err := sw.JoinClient(10001)
	if err != nil {
		t.Fatal(err)
	}
	c := New(ep, n, 64, 1)
	t.Cleanup(c.Stop)
	return c
}

func TestSubmitAndWaitCommit(t *testing.T) {
	sw := network.NewSwitch(nil)
	newFakeReplica(t, sw, 1, 5*time.Millisecond, false)
	c := newClient(t, sw, 1)
	if !c.SubmitAndWait(2 * time.Second) {
		t.Fatal("commit reply not received")
	}
	if c.Committed() != 1 {
		t.Fatalf("committed = %d", c.Committed())
	}
	s := c.Latency().Snapshot()
	if s.Count != 1 || s.Mean < 4*time.Millisecond {
		t.Fatalf("latency not recorded: %+v", s)
	}
}

func TestSubmitAndWaitRejection(t *testing.T) {
	sw := network.NewSwitch(nil)
	newFakeReplica(t, sw, 1, 0, true)
	c := newClient(t, sw, 1)
	if c.SubmitAndWait(2 * time.Second) {
		t.Fatal("rejected transaction reported as committed")
	}
	// A replica that always rejects exhausts the retry budget: the
	// initial attempt plus submitMaxRetries resubmissions, every one
	// rejected and counted.
	if got, want := c.Retries(), uint64(submitMaxRetries); got != want {
		t.Fatalf("retries = %d, want %d", got, want)
	}
	if got, want := c.Rejected(), uint64(submitMaxRetries+1); got != want {
		t.Fatalf("rejected = %d, want %d", got, want)
	}
}

func TestSubmitAndWaitTimeout(t *testing.T) {
	sw := network.NewSwitch(nil)
	newFakeReplica(t, sw, 1, time.Hour, false) // never answers in time
	c := newClient(t, sw, 1)
	start := time.Now()
	if c.SubmitAndWait(50 * time.Millisecond) {
		t.Fatal("timed-out transaction reported as committed")
	}
	if time.Since(start) > time.Second {
		t.Fatal("timeout not honoured")
	}
}

func TestClosedLoopKeepsOneInFlight(t *testing.T) {
	sw := network.NewSwitch(nil)
	replica := newFakeReplica(t, sw, 1, 2*time.Millisecond, false)
	c := newClient(t, sw, 1)
	c.RunClosedLoop(4, time.Second)
	time.Sleep(300 * time.Millisecond)
	c.Stop()
	committed := c.Committed()
	if committed < 50 {
		t.Fatalf("closed loop committed only %d", committed)
	}
	// With 4 workers and 2ms service, the replica cannot have seen
	// wildly more requests than replies — workers really wait.
	if int(committed) > replica.count() {
		t.Fatalf("committed %d > requests %d", committed, replica.count())
	}
}

func TestOpenLoopRateAndSampling(t *testing.T) {
	sw := network.NewSwitch(nil)
	replica := newFakeReplica(t, sw, 1, time.Millisecond, false)
	c := newClient(t, sw, 1)
	const rate = 3000.0
	c.RunOpenLoop(rate)
	time.Sleep(500 * time.Millisecond)
	c.Stop()
	seen := float64(replica.count())
	if seen < 0.6*rate*0.5 || seen > 1.4*rate*0.5 {
		t.Fatalf("open loop delivered %.0f requests in 0.5s at rate %.0f", seen, rate)
	}
	if c.Latency().Snapshot().Count == 0 {
		t.Fatal("latency sampling recorded nothing")
	}
}

func TestFanoutReachesAllReplicas(t *testing.T) {
	sw := network.NewSwitch(nil)
	replicas := []*fakeReplica{
		newFakeReplica(t, sw, 1, 0, false),
		newFakeReplica(t, sw, 2, 0, false),
		newFakeReplica(t, sw, 3, 0, false),
	}
	c := newClient(t, sw, 3)
	c.SetFanout(true)
	if !c.SubmitAndWait(2 * time.Second) {
		t.Fatal("fanout commit missing")
	}
	deadline := time.Now().Add(time.Second)
	for {
		total := 0
		for _, r := range replicas {
			total += r.count()
		}
		if total == 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("fanout reached %d replicas, want 3", total)
		}
		time.Sleep(time.Millisecond)
	}
	// Duplicate replies after the first are harmless.
	if c.Committed() != 1 {
		t.Fatalf("committed = %d, want exactly 1", c.Committed())
	}
}

func TestPoissonMean(t *testing.T) {
	sw := network.NewSwitch(nil)
	c := newClient(t, sw, 1)
	for _, mean := range []float64{0.5, 5, 50, 200} {
		const draws = 3000
		var sum float64
		for i := 0; i < draws; i++ {
			sum += float64(c.poisson(mean))
		}
		got := sum / draws
		if got < 0.85*mean || got > 1.15*mean {
			t.Fatalf("poisson(%v) sample mean = %v", mean, got)
		}
	}
	if c.poisson(0) != 0 || c.poisson(-1) != 0 {
		t.Fatal("non-positive mean must yield zero")
	}
}

func TestStopIsIdempotent(t *testing.T) {
	sw := network.NewSwitch(nil)
	c := newClient(t, sw, 1)
	c.Stop()
	c.Stop()
}

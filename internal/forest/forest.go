// Package forest implements the Block Forest of Section III-A: a
// height-indexed collection of block trees that tracks the committed
// main chain, certification (notarization) marks, prunes dead forks,
// and buffers orphan blocks until their parents arrive.
//
// Every vertex has a height one greater than its parent's. Committing
// a block commits its whole uncommitted ancestor chain; blocks at
// heights at or below the committed tip that are not on the main chain
// are dead — their transactions are handed back to the caller for
// re-insertion at the front of the mempool, matching the paper's
// forked-block recycling behaviour.
//
// The forest is not safe for concurrent use: each replica's event loop
// is its sole writer and reader.
package forest

import (
	"errors"
	"fmt"

	"github.com/bamboo-bft/bamboo/internal/types"
)

// Errors reported by the forest.
var (
	ErrDuplicate       = errors.New("forest: block already present")
	ErrStale           = errors.New("forest: block extends a dead or pruned branch")
	ErrSafetyViolation = errors.New("forest: commit target conflicts with committed chain")
	ErrUnknownBlock    = errors.New("forest: unknown block")
)

// maxPendingPerParent bounds the orphan buffer so a malicious peer
// cannot exhaust memory with unconnectable blocks.
const maxPendingPerParent = 8

// deadSetLimit bounds the fork-tombstone set.
const deadSetLimit = 4096

type vertex struct {
	block    *types.Block
	parent   *vertex
	children []*vertex
	height   uint64
	// qc is the certificate that notarized this block, nil until
	// certification.
	qc        *types.QC
	committed bool
	// notarizedLen is the length of the fully-notarized chain
	// ending at this vertex (Streamlet's longest-chain rule);
	// zero until the vertex and its whole ancestry are certified.
	notarizedLen uint64
}

// CommitResult reports the outcome of a Commit call.
type CommitResult struct {
	// Committed lists the newly committed blocks, oldest first.
	Committed []*types.Block
	// Forked lists dead blocks removed by this commit; their
	// transactions should return to the front of the mempool.
	Forked []*types.Block
}

// Forest is the block store of one replica.
type Forest struct {
	vertices map[types.Hash]*vertex
	byHeight map[uint64][]*vertex
	// pending buffers orphans keyed by the missing parent hash.
	pending map[types.Hash][]*types.Block
	// committed holds the main-chain block hash at each height;
	// index equals height. It only ever grows.
	committed []types.Hash
	// committedIdx maps a committed hash to its height for O(1)
	// staleness checks.
	committedIdx map[types.Hash]uint64
	// dead tombstones hashes of removed forked blocks so late
	// children can be rejected instead of buffered forever. Bounded;
	// cleared wholesale when it grows past deadSetLimit.
	dead map[types.Hash]struct{}
	head *vertex
	// keepWindow is how many committed heights of full vertices to
	// retain below the head for parent lookups and catch-up serving.
	keepWindow uint64
	// notarizedTip is the tip of the longest fully-notarized chain.
	notarizedTip *vertex
}

// New creates a forest containing only the genesis block, which is
// committed and certified by construction. keepWindow controls how
// many committed heights below the tip retain full blocks (minimum 8).
func New(keepWindow int) *Forest {
	if keepWindow < 8 {
		keepWindow = 8
	}
	g := types.Genesis()
	gv := &vertex{block: g, height: 0, qc: types.GenesisQC(), committed: true, notarizedLen: 1}
	f := &Forest{
		vertices:     map[types.Hash]*vertex{g.ID(): gv},
		byHeight:     map[uint64][]*vertex{0: {gv}},
		pending:      make(map[types.Hash][]*types.Block),
		committed:    []types.Hash{g.ID()},
		committedIdx: map[types.Hash]uint64{g.ID(): 0},
		dead:         make(map[types.Hash]struct{}),
		head:         gv,
		keepWindow:   uint64(keepWindow),
		notarizedTip: gv,
	}
	return f
}

// Add inserts a block. If the parent is unknown the block is buffered
// and attached later; attached reports every block that actually
// joined the forest during this call (the argument first, then any
// orphans it unblocked, in attachment order). Duplicate blocks return
// ErrDuplicate; blocks extending dead or pruned branches return
// ErrStale.
func (f *Forest) Add(b *types.Block) (attached []*types.Block, err error) {
	id := b.ID()
	if _, ok := f.vertices[id]; ok {
		return nil, ErrDuplicate
	}
	parent, ok := f.vertices[b.Parent]
	if !ok {
		if f.isDeadParent(b.Parent) {
			return nil, ErrStale
		}
		if len(f.pending[b.Parent]) < maxPendingPerParent {
			f.pending[b.Parent] = append(f.pending[b.Parent], b)
		}
		return nil, nil
	}
	if parent.height+1 <= f.head.height {
		// The new block's height falls inside the committed chain,
		// so it conflicts with an already-committed block.
		return nil, ErrStale
	}
	attached = append(attached, b)
	f.attach(b, parent)
	attached = append(attached, f.drainPending(id)...)
	return attached, nil
}

// attach links b under parent, which must exist.
func (f *Forest) attach(b *types.Block, parent *vertex) {
	v := &vertex{block: b, parent: parent, height: parent.height + 1}
	parent.children = append(parent.children, v)
	f.vertices[b.ID()] = v
	f.byHeight[v.height] = append(f.byHeight[v.height], v)
}

// drainPending attaches any orphans waiting on parentID, recursively.
func (f *Forest) drainPending(parentID types.Hash) []*types.Block {
	waiting, ok := f.pending[parentID]
	if !ok {
		return nil
	}
	delete(f.pending, parentID)
	var out []*types.Block
	parent := f.vertices[parentID]
	for _, b := range waiting {
		if _, dup := f.vertices[b.ID()]; dup {
			continue
		}
		if parent.height+1 <= f.head.height {
			continue // stale by now
		}
		f.attach(b, parent)
		out = append(out, b)
		out = append(out, f.drainPending(b.ID())...)
	}
	return out
}

// isDeadParent reports whether hash names a block that can no longer
// be extended: it was committed and compacted below the retention
// window, or removed as a dead fork. Unknown hashes that were never
// seen return false (the block may simply not have arrived yet).
func (f *Forest) isDeadParent(h types.Hash) bool {
	if _, ok := f.dead[h]; ok {
		return true
	}
	// A committed hash that is no longer a live vertex was compacted
	// away; extending it would fork below the committed head.
	_, committed := f.committedIdx[h]
	return committed
}

// Contains reports whether the block is attached to the forest.
func (f *Forest) Contains(h types.Hash) bool {
	_, ok := f.vertices[h]
	return ok
}

// Block returns the attached block with the given hash.
func (f *Forest) Block(h types.Hash) (*types.Block, bool) {
	v, ok := f.vertices[h]
	if !ok {
		return nil, false
	}
	return v.block, true
}

// Parent returns the parent block of the block with the given hash.
func (f *Forest) Parent(h types.Hash) (*types.Block, bool) {
	v, ok := f.vertices[h]
	if !ok || v.parent == nil {
		return nil, false
	}
	return v.parent.block, true
}

// HeightOf returns the chain height of an attached block.
func (f *Forest) HeightOf(h types.Hash) (uint64, bool) {
	v, ok := f.vertices[h]
	if !ok {
		return 0, false
	}
	return v.height, true
}

// Certify records the quorum certificate notarizing qc.BlockID and
// updates the longest-notarized-chain bookkeeping. It returns false if
// the block is not attached. A later QC for an already-certified block
// is ignored (the first certificate wins).
func (f *Forest) Certify(qc *types.QC) bool {
	v, ok := f.vertices[qc.BlockID]
	if !ok {
		return false
	}
	if v.qc != nil {
		return true
	}
	v.qc = qc
	f.propagateNotarized(v)
	return true
}

// QCOf returns the certificate that notarized the block, if any.
func (f *Forest) QCOf(h types.Hash) (*types.QC, bool) {
	v, ok := f.vertices[h]
	if !ok || v.qc == nil {
		return nil, false
	}
	return v.qc, true
}

// propagateNotarized recomputes notarized-chain lengths for v and any
// certified descendants whose chains just became complete.
func (f *Forest) propagateNotarized(v *vertex) {
	if v.qc == nil || v.notarizedLen != 0 {
		return
	}
	if v.parent == nil || v.parent.notarizedLen == 0 {
		return // ancestry not fully notarized yet
	}
	v.notarizedLen = v.parent.notarizedLen + 1
	f.maybeAdvanceNotarizedTip(v)
	for _, c := range v.children {
		f.propagateNotarized(c)
	}
}

func (f *Forest) maybeAdvanceNotarizedTip(v *vertex) {
	t := f.notarizedTip
	if v.notarizedLen > t.notarizedLen ||
		(v.notarizedLen == t.notarizedLen && v.block.View > t.block.View) {
		f.notarizedTip = v
	}
}

// IsCertified reports whether the attached block has been certified.
func (f *Forest) IsCertified(h types.Hash) bool {
	v, ok := f.vertices[h]
	return ok && v.qc != nil
}

// LongestNotarizedTip returns the tip of the longest fully-notarized
// chain (ties broken toward the higher view). It is the fork-choice of
// Streamlet's proposing and voting rules. With no notarized blocks it
// returns the genesis block.
func (f *Forest) LongestNotarizedTip() *types.Block {
	return f.notarizedTip.block
}

// ExtendsNotarized reports whether b's parent is the tip of some
// longest notarized chain — Streamlet's voting-rule check. Because
// lengths are unique per branch it suffices to compare the parent's
// notarized length with the maximum.
func (f *Forest) ExtendsNotarized(b *types.Block) bool {
	p, ok := f.vertices[b.Parent]
	if !ok {
		return false
	}
	return p.notarizedLen == f.notarizedTip.notarizedLen && p.notarizedLen > 0
}

// CommittedHeight returns the height of the committed tip.
func (f *Forest) CommittedHeight() uint64 { return f.head.height }

// KeepWindow returns how many committed heights of full blocks the
// forest retains below the tip — the boundary past which catch-up must
// be served from the ledger.
func (f *Forest) KeepWindow() uint64 { return f.keepWindow }

// CommittedHead returns the committed tip block.
func (f *Forest) CommittedHead() *types.Block { return f.head.block }

// CommittedHash returns the main-chain block hash at a height, for
// cross-replica consistency checks. Heights below a snapshot install
// point hold no hash (the history was never replayed here) and
// report false.
func (f *Forest) CommittedHash(height uint64) (types.Hash, bool) {
	if height >= uint64(len(f.committed)) || f.committed[height].IsZero() {
		return types.ZeroHash, false
	}
	return f.committed[height], true
}

// ResetTo reinitializes the forest with b — certified by qc — as the
// committed head at the given height, discarding everything else: the
// install step of snapshot-based catch-up, where the replica adopts a
// verified remote state instead of replaying the history below it.
// Committed hashes below the install height are unknown afterwards
// (CommittedHash reports false for them), exactly like heights
// compacted out of a normally-grown forest.
func (f *Forest) ResetTo(b *types.Block, qc *types.QC, height uint64) {
	v := &vertex{block: b, height: height, qc: qc, committed: true, notarizedLen: 1}
	f.vertices = map[types.Hash]*vertex{b.ID(): v}
	f.byHeight = map[uint64][]*vertex{height: {v}}
	f.pending = make(map[types.Hash][]*types.Block)
	f.committed = make([]types.Hash, height+1)
	f.committed[height] = b.ID()
	f.committedIdx = map[types.Hash]uint64{b.ID(): height}
	f.dead = make(map[types.Hash]struct{})
	f.head = v
	f.notarizedTip = v
}

// Size returns the number of attached vertices (leak detection).
func (f *Forest) Size() int { return len(f.vertices) }

// PendingCount returns the number of buffered orphan blocks.
func (f *Forest) PendingCount() int {
	n := 0
	for _, w := range f.pending {
		n += len(w)
	}
	return n
}

// Commit finalizes the block with the given hash and its uncommitted
// ancestors. It returns the newly committed chain (oldest first) and
// the dead forked blocks removed as a result. Committing a block that
// conflicts with the already committed chain returns
// ErrSafetyViolation — in a correct protocol this never happens, and
// the test suite asserts it never does.
func (f *Forest) Commit(target types.Hash) (CommitResult, error) {
	var res CommitResult
	tv, ok := f.vertices[target]
	if !ok {
		return res, fmt.Errorf("%w: %s", ErrUnknownBlock, target)
	}
	if tv.committed {
		return res, nil // idempotent: already on the main chain
	}
	if tv.height <= f.head.height {
		return res, fmt.Errorf("%w: target %s at height %d, head at %d",
			ErrSafetyViolation, target, tv.height, f.head.height)
	}
	// Walk target → head collecting the new chain.
	chain := make([]*vertex, 0, tv.height-f.head.height)
	v := tv
	for v != f.head {
		if v == nil || v.height <= f.head.height {
			return res, fmt.Errorf("%w: %s does not extend committed head", ErrSafetyViolation, target)
		}
		chain = append(chain, v)
		v = v.parent
	}
	// Reverse to oldest-first and mark committed.
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}
	oldHead := f.head.height
	for _, cv := range chain {
		cv.committed = true
		f.committedIdx[cv.block.ID()] = uint64(len(f.committed))
		f.committed = append(f.committed, cv.block.ID())
		res.Committed = append(res.Committed, cv.block)
	}
	f.head = tv
	// Remove dead forks: every vertex at heights (oldHead, head]
	// that is not on the new main chain, together with its subtree.
	for h := oldHead + 1; h <= f.head.height; h++ {
		for _, fv := range f.byHeight[h] {
			if !fv.committed && f.vertices[fv.block.ID()] == fv {
				f.removeSubtree(fv, &res.Forked)
			}
		}
		// Rebuild the height bucket with only the survivor.
		survivors := f.byHeight[h][:0]
		for _, fv := range f.byHeight[h] {
			if f.vertices[fv.block.ID()] == fv {
				survivors = append(survivors, fv)
			}
		}
		f.byHeight[h] = survivors
	}
	f.dropStalePending()
	f.compact()
	return res, nil
}

// removeSubtree deletes v and its descendants, appending their blocks
// to forked.
func (f *Forest) removeSubtree(v *vertex, forked *[]*types.Block) {
	*forked = append(*forked, v.block)
	delete(f.vertices, v.block.ID())
	if len(f.dead) >= deadSetLimit {
		f.dead = make(map[types.Hash]struct{})
	}
	f.dead[v.block.ID()] = struct{}{}
	if f.notarizedTip == v {
		f.notarizedTip = f.head // conservative reset; head is notarized
	}
	for _, c := range v.children {
		f.removeSubtree(c, forked)
	}
	v.children = nil
	v.parent = nil
}

// dropStalePending discards buffered orphans that can no longer attach
// above the committed head. Orphans carry no height, so retain only
// ones whose parent is still plausible: parent unknown or parent at or
// above the head.
func (f *Forest) dropStalePending() {
	for parentID := range f.pending {
		if pv, ok := f.vertices[parentID]; ok && pv.height < f.head.height {
			delete(f.pending, parentID)
			continue
		}
		if f.isDeadParent(parentID) {
			delete(f.pending, parentID)
		}
	}
}

// compact releases committed vertices deeper than keepWindow below the
// head. Their hashes remain in the committed index for consistency
// checks; the full blocks are eligible for garbage collection,
// mirroring the paper's "finalized blocks can be removed from memory".
func (f *Forest) compact() {
	if f.head.height <= f.keepWindow {
		return
	}
	cutoff := f.head.height - f.keepWindow
	for h, bucket := range f.byHeight {
		if h >= cutoff {
			continue
		}
		for _, v := range bucket {
			delete(f.vertices, v.block.ID())
			v.children = nil
			v.parent = nil
		}
		delete(f.byHeight, h)
	}
	// Detach the parent pointer at the cutoff boundary so the
	// compacted chain below becomes unreachable.
	if bv, ok := f.vertices[f.committed[cutoff]]; ok {
		bv.parent = nil
	}
}

package forest

import (
	"errors"
	"math/rand"
	"testing"

	"github.com/bamboo-bft/bamboo/internal/types"
)

// mkBlock builds a block on top of parent with the given view. The
// payload carries one transaction so fork recycling is observable.
func mkBlock(parent *types.Block, view types.View) *types.Block {
	b := &types.Block{
		View:     view,
		Proposer: types.NodeID(uint32(view%4) + 1),
		Parent:   parent.ID(),
		QC:       &types.QC{View: parent.View, BlockID: parent.ID()},
		Payload: []types.Transaction{
			{ID: types.TxID{Client: 1, Seq: uint64(view)}},
		},
	}
	b.ID()
	return b
}

// qcFor fabricates a certificate for a block.
func qcFor(b *types.Block) *types.QC {
	return &types.QC{View: b.View, BlockID: b.ID()}
}

// chain builds and adds a linear chain of n blocks on top of base.
func chain(t *testing.T, f *Forest, base *types.Block, startView types.View, n int) []*types.Block {
	t.Helper()
	out := make([]*types.Block, 0, n)
	parent := base
	for i := 0; i < n; i++ {
		b := mkBlock(parent, startView+types.View(i))
		if _, err := f.Add(b); err != nil {
			t.Fatalf("add block view %d: %v", b.View, err)
		}
		out = append(out, b)
		parent = b
	}
	return out
}

func TestNewForestGenesis(t *testing.T) {
	f := New(8)
	g := types.Genesis()
	if !f.Contains(g.ID()) {
		t.Fatal("genesis missing")
	}
	if f.CommittedHeight() != 0 {
		t.Fatal("genesis height must be 0")
	}
	if f.CommittedHead().ID() != g.ID() {
		t.Fatal("head must be genesis")
	}
	if !f.IsCertified(g.ID()) {
		t.Fatal("genesis must be certified")
	}
	if h, ok := f.CommittedHash(0); !ok || h != g.ID() {
		t.Fatal("committed hash at 0 must be genesis")
	}
	if f.Size() != 1 {
		t.Fatalf("size = %d, want 1", f.Size())
	}
}

func TestAddChainHeights(t *testing.T) {
	f := New(8)
	blocks := chain(t, f, types.Genesis(), 1, 5)
	for i, b := range blocks {
		h, ok := f.HeightOf(b.ID())
		if !ok || h != uint64(i+1) {
			t.Fatalf("block %d height = %d ok=%v, want %d", i, h, ok, i+1)
		}
	}
	// Parent lookups walk the chain.
	p, ok := f.Parent(blocks[2].ID())
	if !ok || p.ID() != blocks[1].ID() {
		t.Fatal("parent lookup broken")
	}
}

func TestAddDuplicate(t *testing.T) {
	f := New(8)
	b := mkBlock(types.Genesis(), 1)
	if _, err := f.Add(b); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Add(b); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("want ErrDuplicate, got %v", err)
	}
}

func TestOrphanBuffering(t *testing.T) {
	f := New(8)
	b1 := mkBlock(types.Genesis(), 1)
	b2 := mkBlock(b1, 2)
	b3 := mkBlock(b2, 3)
	// Arrive out of order: b3, b2 first (orphans), then b1.
	if att, err := f.Add(b3); err != nil || len(att) != 0 {
		t.Fatalf("orphan add: att=%d err=%v", len(att), err)
	}
	if att, err := f.Add(b2); err != nil || len(att) != 0 {
		t.Fatalf("orphan add: att=%d err=%v", len(att), err)
	}
	if f.PendingCount() != 2 {
		t.Fatalf("pending = %d, want 2", f.PendingCount())
	}
	att, err := f.Add(b1)
	if err != nil {
		t.Fatal(err)
	}
	if len(att) != 3 {
		t.Fatalf("attached %d blocks, want 3 (b1 + both orphans)", len(att))
	}
	if att[0].ID() != b1.ID() {
		t.Fatal("argument block must attach first")
	}
	if f.PendingCount() != 0 {
		t.Fatal("pending not drained")
	}
	if h, _ := f.HeightOf(b3.ID()); h != 3 {
		t.Fatalf("b3 height = %d, want 3", h)
	}
}

func TestCommitChain(t *testing.T) {
	f := New(8)
	blocks := chain(t, f, types.Genesis(), 1, 5)
	res, err := f.Commit(blocks[2].ID())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Committed) != 3 {
		t.Fatalf("committed %d, want 3", len(res.Committed))
	}
	for i, b := range res.Committed {
		if b.ID() != blocks[i].ID() {
			t.Fatalf("commit order wrong at %d", i)
		}
	}
	if len(res.Forked) != 0 {
		t.Fatalf("unexpected forked blocks: %d", len(res.Forked))
	}
	if f.CommittedHeight() != 3 {
		t.Fatalf("head = %d, want 3", f.CommittedHeight())
	}
	// Idempotent re-commit.
	res2, err := f.Commit(blocks[2].ID())
	if err != nil || len(res2.Committed) != 0 {
		t.Fatalf("re-commit not idempotent: %v %d", err, len(res2.Committed))
	}
	// Later commit only adds the new suffix.
	res3, err := f.Commit(blocks[4].ID())
	if err != nil || len(res3.Committed) != 2 {
		t.Fatalf("suffix commit: %v %d", err, len(res3.Committed))
	}
}

func TestCommitConflictIsSafetyViolation(t *testing.T) {
	f := New(8)
	main := chain(t, f, types.Genesis(), 1, 3)
	// A fork from genesis reaching beyond the committed height.
	forkA := mkBlock(types.Genesis(), 10)
	forkB := mkBlock(forkA, 11)
	forkC := mkBlock(forkB, 12)
	forkD := mkBlock(forkC, 13)
	for _, b := range []*types.Block{forkA, forkB, forkC, forkD} {
		if _, err := f.Add(b); err != nil {
			t.Fatal(err)
		}
	}
	// Commit the fork to height 4; the conflicting main branch is
	// removed in the same step, so attempting to commit it afterwards
	// reports it unknown. (ErrSafetyViolation itself is a defensive
	// guard that a correct forest never lets callers reach, because
	// conflicting subtrees are deleted the moment a branch commits.)
	res, err := f.Commit(forkD.ID())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Forked) != len(main) {
		t.Fatalf("forked %d blocks, want %d (whole main branch)", len(res.Forked), len(main))
	}
	if _, err := f.Commit(main[2].ID()); !errors.Is(err, ErrUnknownBlock) {
		t.Fatalf("want ErrUnknownBlock for removed branch, got %v", err)
	}
}

func TestCommitUnknownBlock(t *testing.T) {
	f := New(8)
	if _, err := f.Commit(types.Hash{9, 9}); !errors.Is(err, ErrUnknownBlock) {
		t.Fatalf("want ErrUnknownBlock, got %v", err)
	}
}

func TestForkRemovalAndRecycling(t *testing.T) {
	f := New(8)
	main := chain(t, f, types.Genesis(), 1, 4)
	// Fork branching off main[0] (height 1): two blocks at heights 2-3.
	forkA := mkBlock(main[0], 20)
	forkB := mkBlock(forkA, 21)
	for _, b := range []*types.Block{forkA, forkB} {
		if _, err := f.Add(b); err != nil {
			t.Fatal(err)
		}
	}
	res, err := f.Commit(main[3].ID())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Forked) != 2 {
		t.Fatalf("forked %d blocks, want 2", len(res.Forked))
	}
	if f.Contains(forkA.ID()) || f.Contains(forkB.ID()) {
		t.Fatal("forked blocks still attached")
	}
	// A late child of the dead fork is stale on arrival.
	late := mkBlock(forkB, 22)
	if _, err := f.Add(late); !errors.Is(err, ErrStale) {
		t.Fatalf("want ErrStale for dead-branch child, got %v", err)
	}
}

func TestStaleBelowCommittedHead(t *testing.T) {
	f := New(8)
	main := chain(t, f, types.Genesis(), 1, 3)
	if _, err := f.Commit(main[2].ID()); err != nil {
		t.Fatal(err)
	}
	// New block claiming genesis as parent would land at height 1 ≤ head 3.
	b := mkBlock(types.Genesis(), 30)
	if _, err := f.Add(b); !errors.Is(err, ErrStale) {
		t.Fatalf("want ErrStale, got %v", err)
	}
}

func TestCertificationAndNotarizedChain(t *testing.T) {
	f := New(8)
	blocks := chain(t, f, types.Genesis(), 1, 4)
	if f.LongestNotarizedTip().ID() != types.Genesis().ID() {
		t.Fatal("initial notarized tip must be genesis")
	}
	// Certify out of order: child first, then parent; the tip only
	// advances when the full ancestry is certified.
	if !f.Certify(qcFor(blocks[1])) {
		t.Fatal("mark failed")
	}
	if f.LongestNotarizedTip().ID() != types.Genesis().ID() {
		t.Fatal("tip advanced with uncertified ancestor")
	}
	f.Certify(qcFor(blocks[0]))
	if f.LongestNotarizedTip().ID() != blocks[1].ID() {
		t.Fatalf("tip = %s, want %s", f.LongestNotarizedTip().ID(), blocks[1].ID())
	}
	f.Certify(qcFor(blocks[2]))
	if f.LongestNotarizedTip().ID() != blocks[2].ID() {
		t.Fatal("tip must follow contiguous certification")
	}
	// ExtendsNotarized: blocks[3] extends the tip blocks[2].
	if !f.ExtendsNotarized(blocks[3]) {
		t.Fatal("blocks[3] extends the notarized tip")
	}
	short := mkBlock(blocks[0], 50) // extends a shorter notarized chain
	if _, err := f.Add(short); err != nil {
		t.Fatal(err)
	}
	if f.ExtendsNotarized(short) {
		t.Fatal("short branch must not count as extending the longest chain")
	}
	if f.Certify(&types.QC{BlockID: types.Hash{1, 2, 3}}) {
		t.Fatal("marking unknown block must fail")
	}
}

func TestNotarizedTieBreakByView(t *testing.T) {
	f := New(8)
	a := mkBlock(types.Genesis(), 1)
	b := mkBlock(types.Genesis(), 2)
	for _, blk := range []*types.Block{a, b} {
		if _, err := f.Add(blk); err != nil {
			t.Fatal(err)
		}
	}
	f.Certify(qcFor(a))
	f.Certify(qcFor(b))
	if f.LongestNotarizedTip().ID() != b.ID() {
		t.Fatal("tie must break toward higher view")
	}
}

func TestCompaction(t *testing.T) {
	f := New(8)
	parent := types.Genesis()
	for v := types.View(1); v <= 100; v++ {
		b := mkBlock(parent, v)
		if _, err := f.Add(b); err != nil {
			t.Fatal(err)
		}
		if _, err := f.Commit(b.ID()); err != nil {
			t.Fatal(err)
		}
		parent = b
	}
	if f.Size() > 16 {
		t.Fatalf("size = %d after 100 commits; compaction not working", f.Size())
	}
	// Consistency index must survive compaction.
	if _, ok := f.CommittedHash(1); !ok {
		t.Fatal("committed hash lost by compaction")
	}
	if f.CommittedHeight() != 100 {
		t.Fatalf("height = %d, want 100", f.CommittedHeight())
	}
	// Extending a compacted ancestor is stale.
	old, _ := f.CommittedHash(1)
	late := &types.Block{View: 200, Parent: old}
	if _, err := f.Add(late); !errors.Is(err, ErrStale) {
		t.Fatalf("want ErrStale for compacted parent, got %v", err)
	}
}

func TestPendingCap(t *testing.T) {
	f := New(8)
	missing := types.Hash{7, 7, 7}
	for i := 0; i < 2*maxPendingPerParent; i++ {
		b := &types.Block{View: types.View(i + 1), Parent: missing}
		if _, err := f.Add(b); err != nil {
			t.Fatal(err)
		}
	}
	if f.PendingCount() > maxPendingPerParent {
		t.Fatalf("pending %d exceeds cap %d", f.PendingCount(), maxPendingPerParent)
	}
}

// TestArrivalOrderIndependenceQuick: any arrival permutation of a
// valid chain yields the same attached forest (orphan buffering makes
// insertion order irrelevant).
func TestArrivalOrderIndependenceQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	base := New(8)
	blocks := chain(t, base, types.Genesis(), 1, 6)
	for trial := 0; trial < 30; trial++ {
		f := New(8)
		perm := rng.Perm(len(blocks))
		for _, idx := range perm {
			if _, err := f.Add(blocks[idx]); err != nil {
				t.Fatalf("perm %v add %d: %v", perm, idx, err)
			}
		}
		if f.Size() != base.Size() {
			t.Fatalf("perm %v: size %d, want %d", perm, f.Size(), base.Size())
		}
		for i, b := range blocks {
			h, ok := f.HeightOf(b.ID())
			if !ok || h != uint64(i+1) {
				t.Fatalf("perm %v: block %d at height %d ok=%v", perm, i, h, ok)
			}
		}
		if f.PendingCount() != 0 {
			t.Fatalf("perm %v: %d orphans left", perm, f.PendingCount())
		}
	}
}

// TestRandomTreeCommitInvariants drives the forest with random trees
// and validates the committed-chain invariants after each commit.
func TestRandomTreeCommitInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		f := New(8)
		live := []*types.Block{types.Genesis()}
		view := types.View(1)
		for i := 0; i < 40; i++ {
			parent := live[rng.Intn(len(live))]
			b := mkBlock(parent, view)
			view++
			if _, err := f.Add(b); err != nil {
				continue // stale parent after a commit; fine
			}
			live = append(live, b)
			if rng.Intn(8) == 0 {
				h, ok := f.HeightOf(b.ID())
				if !ok {
					t.Fatal("just-added block unknown")
				}
				if h <= f.CommittedHeight() {
					continue
				}
				res, err := f.Commit(b.ID())
				if err != nil {
					t.Fatalf("commit of descendant failed: %v", err)
				}
				// Committed chain heights must be contiguous.
				for j := 1; j < len(res.Committed); j++ {
					hj, _ := f.HeightOf(res.Committed[j].ID())
					hp, _ := f.HeightOf(res.Committed[j-1].ID())
					if hj != hp+1 {
						t.Fatal("committed chain not contiguous")
					}
				}
				// No forked block may appear in the committed index.
				for _, fb := range res.Forked {
					if hgt, ok := f.HeightOf(fb.ID()); ok {
						t.Fatalf("forked block still attached at height %d", hgt)
					}
				}
			}
		}
		// Final audit: walking the committed index yields a chain of
		// existing-or-compacted hashes with no gaps.
		for h := uint64(0); h <= f.CommittedHeight(); h++ {
			if _, ok := f.CommittedHash(h); !ok {
				t.Fatalf("committed hash missing at height %d", h)
			}
		}
	}
}

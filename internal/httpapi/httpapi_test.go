package httpapi

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/bamboo-bft/bamboo/internal/cluster"
	"github.com/bamboo-bft/bamboo/internal/config"
	"github.com/bamboo-bft/bamboo/internal/kvstore"
	"github.com/bamboo-bft/bamboo/internal/types"
)

// startAPICluster runs a 4-node in-process cluster and exposes the
// observer replica over httptest.
func startAPICluster(t *testing.T) (*cluster.Cluster, *httptest.Server) {
	t.Helper()
	cfg := config.Default()
	cfg.Protocol = config.ProtocolHotStuff
	cfg.ApplyProtocolDefaults()
	cfg.CryptoScheme = "hmac"
	cfg.BlockSize = 20
	cfg.MemSize = 10000
	cfg.Timeout = 150 * time.Millisecond
	c, err := cluster.New(cfg, cluster.Options{WithStores: true})
	if err != nil {
		t.Fatal(err)
	}
	node := c.Node(c.Observer())
	api := New(node, 9001, 5*time.Second)
	srv := httptest.NewServer(api.Handler())
	c.Start()
	t.Cleanup(func() {
		srv.Close()
		c.Stop()
	})
	return c, srv
}

func TestSubmitTxCommits(t *testing.T) {
	_, srv := startAPICluster(t)
	body, err := json.Marshal(txRequest{Command: kvstore.EncodeSet("k", []byte("v"), 0)})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/tx", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var out txResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if !out.Committed {
		t.Fatalf("transaction not committed: %+v", out)
	}
	if out.LatencyMS <= 0 || out.View == 0 || out.Block == "" {
		t.Fatalf("incomplete commit info: %+v", out)
	}
}

func TestSubmitAppliesCommand(t *testing.T) {
	c, srv := startAPICluster(t)
	body, _ := json.Marshal(txRequest{Command: kvstore.EncodeSet("color", []byte("green"), 0)})
	resp, err := http.Post(srv.URL+"/tx", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	// The observer's store applies on the commit path that resolved
	// the request, so the value must be visible promptly.
	deadline := time.Now().Add(3 * time.Second)
	for {
		if v, ok := c.Store(c.Observer()).Get("color"); ok && string(v) == "green" {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("committed command not applied to the kvstore")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestStatusAndMetrics(t *testing.T) {
	_, srv := startAPICluster(t)
	// Push one tx so the chain moves.
	body, _ := json.Marshal(txRequest{Command: kvstore.EncodeNoop(0)})
	resp, err := http.Post(srv.URL+"/tx", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()

	resp, err = http.Get(srv.URL + "/status")
	if err != nil {
		t.Fatal(err)
	}
	var status struct {
		CurView         uint64
		CommittedHeight uint64
	}
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if status.CommittedHeight == 0 || status.CurView == 0 {
		t.Fatalf("empty status: %+v", status)
	}

	resp, err = http.Get(srv.URL + "/chain")
	if err != nil {
		t.Fatal(err)
	}
	var m struct {
		BlocksCommitted uint64
		TxCommitted     uint64
	}
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if m.BlocksCommitted == 0 {
		t.Fatalf("no committed blocks in metrics: %+v", m)
	}
}

func TestHashEndpoint(t *testing.T) {
	c, srv := startAPICluster(t)
	body, _ := json.Marshal(txRequest{Command: kvstore.EncodeNoop(0)})
	resp, err := http.Post(srv.URL+"/tx", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	h := c.Node(c.Observer()).Status().CommittedHeight
	if h == 0 {
		t.Fatal("no committed height")
	}
	resp, err = http.Get(fmt.Sprintf("%s/hash?height=%d", srv.URL, h))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var out map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out["hash"]) != 64 {
		t.Fatalf("hash = %q", out["hash"])
	}
	// Unknown heights 404; bad parameters 400.
	resp, err = http.Get(srv.URL + "/hash?height=99999999")
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown height status = %d", resp.StatusCode)
	}
	resp, err = http.Get(srv.URL + "/hash")
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing height status = %d", resp.StatusCode)
	}
}

// TestStatusSnapshotSurface: with the snapshot interval configured,
// /status exposes the replica's snapshot height, the hex state
// digest, and the snapshot/restart pipeline counters — the operator's
// view of how the replica would recover.
func TestStatusSnapshotSurface(t *testing.T) {
	cfg := config.Default()
	cfg.Protocol = config.ProtocolHotStuff
	cfg.ApplyProtocolDefaults()
	cfg.CryptoScheme = "hmac"
	cfg.BlockSize = 20
	cfg.MemSize = 10000
	cfg.Timeout = 150 * time.Millisecond
	cfg.ForestKeep = 8
	cfg.SnapshotInterval = 8
	c, err := cluster.New(cfg, cluster.Options{WithStores: true})
	if err != nil {
		t.Fatal(err)
	}
	node := c.Node(c.Observer())
	api := New(node, 9002, 5*time.Second)
	srv := httptest.NewServer(api.Handler())
	c.Start()
	t.Cleanup(func() {
		srv.Close()
		c.Stop()
	})
	// Commit one command, then wait out the first snapshot interval
	// (the chain keeps committing empty blocks on its own).
	body, _ := json.Marshal(txRequest{Command: kvstore.EncodeSet("k", []byte("v"), 0)})
	resp, err := http.Post(srv.URL+"/tx", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	deadline := time.Now().Add(10 * time.Second)
	for node.Status().SnapshotHeight == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no snapshot captured within the deadline")
		}
		time.Sleep(10 * time.Millisecond)
	}

	resp, err = http.Get(srv.URL + "/status")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	var raw map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	if h, ok := raw["SnapshotHeight"].(float64); !ok || h < float64(cfg.SnapshotInterval) {
		t.Fatalf("snapshot height missing or low: %v", raw["SnapshotHeight"])
	}
	digest, _ := raw["stateDigest"].(string)
	if len(digest) != 64 {
		t.Fatalf("state digest = %q, want 64 hex chars", digest)
	}
	if _, leaked := raw["SnapshotDigest"]; leaked {
		t.Fatal("raw digest byte array leaked into /status next to the hex form")
	}
	for _, key := range []string{"snapshotInstalls", "snapshotsServed", "replayedBlocks"} {
		if _, ok := raw[key]; !ok {
			t.Fatalf("/status missing %q", key)
		}
	}
}

func TestBadTxBody(t *testing.T) {
	_, srv := startAPICluster(t)
	resp, err := http.Post(srv.URL+"/tx", "application/json", bytes.NewBufferString("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

// TestTxRejectedOverloaded: with the rest of the cluster crashed the
// observer's tiny mempool cannot drain, so concurrent submissions past
// its capacity must come back as HTTP 429 with the rejection flagged
// in the body — the typed overload signal remote clients key off.
func TestTxRejectedOverloaded(t *testing.T) {
	cfg := config.Default()
	cfg.Protocol = config.ProtocolHotStuff
	cfg.ApplyProtocolDefaults()
	cfg.CryptoScheme = "hmac"
	cfg.BlockSize = 4
	cfg.MemSize = 8
	cfg.Timeout = 150 * time.Millisecond
	c, err := cluster.New(cfg, cluster.Options{})
	if err != nil {
		t.Fatal(err)
	}
	node := c.Node(c.Observer())
	api := New(node, 9001, 500*time.Millisecond)
	srv := httptest.NewServer(api.Handler())
	c.Start()
	t.Cleanup(func() {
		srv.Close()
		c.Stop()
	})
	for id := 1; id <= 3; id++ {
		c.Crash(types.NodeID(id))
	}

	const posts = 48
	type outcome struct {
		status int
		body   txResponse
	}
	results := make(chan outcome, posts)
	for i := 0; i < posts; i++ {
		go func(i int) {
			body, _ := json.Marshal(txRequest{Command: []byte(fmt.Sprintf("tx-%d", i))})
			resp, err := http.Post(srv.URL+"/tx", "application/json", bytes.NewReader(body))
			if err != nil {
				results <- outcome{status: -1}
				return
			}
			var out txResponse
			_ = json.NewDecoder(resp.Body).Decode(&out)
			_ = resp.Body.Close()
			results <- outcome{status: resp.StatusCode, body: out}
		}(i)
	}
	var rejected int
	for i := 0; i < posts; i++ {
		res := <-results
		if res.status == http.StatusTooManyRequests {
			if !res.body.Rejected {
				t.Fatalf("429 without rejected flag: %+v", res.body)
			}
			if res.body.Committed {
				t.Fatalf("rejected transaction claims commit: %+v", res.body)
			}
			rejected++
		}
	}
	if rejected == 0 {
		t.Fatalf("no 429s from %d posts into an %d-slot pool with consensus halted", posts, cfg.MemSize)
	}
	if st := node.PoolStats(); st.Rejected == 0 {
		t.Fatal("pool counters never recorded a rejection")
	}
}

package httpapi

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
	"time"

	"github.com/bamboo-bft/bamboo/internal/cluster"
	"github.com/bamboo-bft/bamboo/internal/config"
	"github.com/bamboo-bft/bamboo/internal/kvstore"
)

// expositionLine matches the Prometheus text format's sample lines:
// name{optional labels} value.
var expositionLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [^ ]+$`)

// TestMetricsExposition drives a cluster to commit, scrapes /metrics,
// and checks the exposition parses line by line and carries the series
// the telemetry plane promises (the same checks CI's fleet-smoke runs
// against a live bamboo-server process).
func TestMetricsExposition(t *testing.T) {
	cfg := config.Default()
	cfg.Protocol = config.ProtocolHotStuff
	cfg.ApplyProtocolDefaults()
	cfg.CryptoScheme = "hmac"
	cfg.BlockSize = 10
	c, err := cluster.New(cfg, cluster.Options{WithStores: true})
	if err != nil {
		t.Fatal(err)
	}
	api := New(c.Node(c.Observer()), 9001, 2*time.Second)
	srv := httptest.NewServer(api.Handler())
	c.Start()
	t.Cleanup(func() {
		srv.Close()
		c.Stop()
	})

	// One committed transaction guarantees non-zero chain counters.
	body, _ := json.Marshal(txRequest{Command: kvstore.EncodeNoop(1)})
	resp, err := http.Post(srv.URL+"/tx", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	resp, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}

	text, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(bytes.NewReader(text))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lines := 0
	for sc.Scan() {
		line := sc.Text()
		lines++
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !expositionLine.MatchString(line) {
			t.Fatalf("line %d does not parse as an exposition sample: %q", lines, line)
		}
	}
	if lines == 0 {
		t.Fatal("empty exposition")
	}

	for _, series := range []string{
		"bamboo_committed_blocks_total ",
		"bamboo_committed_txs_total ",
		"bamboo_chain_gini ",
		`bamboo_proposer_commits_total{proposer="1"} `,
		`bamboo_stage_seconds_bucket{stage="commit",le="+Inf"} `,
		`bamboo_stage_seconds_count{stage="verify"} `,
		"bamboo_pool_admitted_total ",
		"bamboo_wal_syncs_total ",
		"bamboo_pacemaker_timeouts_fired_total ",
		"bamboo_verify_queue_wait_seconds_count ",
	} {
		if !strings.Contains(string(text), "\n"+series) && !strings.HasPrefix(string(text), series) {
			t.Fatalf("exposition missing series %q", series)
		}
	}

	// The committed block must have produced non-zero chain counters.
	if !regexp.MustCompile(`(?m)^bamboo_committed_blocks_total [1-9]`).Match(text) {
		t.Fatalf("bamboo_committed_blocks_total still zero:\n%s", text[:200])
	}
}

// TestMetricsJSONGone pins the migration contract: asking /metrics for
// JSON is answered 410 with a pointer at /chain.
func TestMetricsJSONGone(t *testing.T) {
	cfg := config.Default()
	cfg.Protocol = config.ProtocolHotStuff
	cfg.ApplyProtocolDefaults()
	cfg.CryptoScheme = "hmac"
	c, err := cluster.New(cfg, cluster.Options{})
	if err != nil {
		t.Fatal(err)
	}
	api := New(c.Node(c.Observer()), 9002, time.Second)
	srv := httptest.NewServer(api.Handler())
	c.Start()
	t.Cleanup(func() {
		srv.Close()
		c.Stop()
	})

	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/metrics", nil)
	req.Header.Set("Accept", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("JSON Accept on /metrics = %d, want 410", resp.StatusCode)
	}
	msg, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(msg), "/chain") {
		t.Fatalf("410 body must point at /chain: %q", msg)
	}
}

// TestDebugTrace checks both trace export formats over HTTP.
func TestDebugTrace(t *testing.T) {
	cfg := config.Default()
	cfg.Protocol = config.ProtocolHotStuff
	cfg.ApplyProtocolDefaults()
	cfg.CryptoScheme = "hmac"
	cfg.BlockSize = 10
	c, err := cluster.New(cfg, cluster.Options{WithStores: true})
	if err != nil {
		t.Fatal(err)
	}
	api := New(c.Node(c.Observer()), 9003, 2*time.Second)
	srv := httptest.NewServer(api.Handler())
	c.Start()
	t.Cleanup(func() {
		srv.Close()
		c.Stop()
	})

	body, _ := json.Marshal(txRequest{Command: kvstore.EncodeNoop(2)})
	resp, err := http.Post(srv.URL+"/tx", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	resp, err = http.Get(srv.URL + "/debug/trace")
	if err != nil {
		t.Fatal(err)
	}
	var ex struct {
		Node  int `json:"node"`
		Spans []struct {
			Block     string `json:"block"`
			Committed int64  `json:"committed"`
		} `json:"spans"`
		Events []struct {
			Kind string `json:"kind"`
		} `json:"events"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ex); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(ex.Spans) == 0 || len(ex.Events) == 0 {
		t.Fatalf("trace export empty: %d spans, %d events", len(ex.Spans), len(ex.Events))
	}
	committed := false
	for _, sp := range ex.Spans {
		if sp.Committed != 0 {
			committed = true
		}
	}
	if !committed {
		t.Fatal("no committed span in the trace export")
	}

	// Chrome format: a JSON array whose entries chrome://tracing
	// accepts — every event needs name/ph/pid, and complete events a
	// ts.
	resp, err = http.Get(srv.URL + "/debug/trace?format=chrome")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var events []map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&events); err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("empty chrome trace")
	}
	sawSlice := false
	for _, ev := range events {
		if ev["name"] == nil || ev["ph"] == nil {
			t.Fatalf("chrome event missing name/ph: %v", ev)
		}
		if ev["ph"] == "X" {
			sawSlice = true
			if _, ok := ev["ts"]; !ok {
				t.Fatalf("complete event without ts: %v", ev)
			}
		}
	}
	if !sawSlice {
		t.Fatal("chrome trace has no stage slices")
	}
}

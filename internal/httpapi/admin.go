package httpapi

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"time"

	"github.com/bamboo-bft/bamboo/internal/metrics"
	"github.com/bamboo-bft/bamboo/internal/network"
	"github.com/bamboo-bft/bamboo/internal/snapshot"
)

// The admin surface is the control plane a fleet supervisor drives a
// real multi-process deployment through:
//
//	GET  /readyz                    readiness: consensus sockets up and
//	                                bootstrap replay done (503 before).
//	POST /admin/conditions          apply a declarative condition change
//	                                (network.ConditionsSpec) to this
//	                                server's conditioned transport —
//	                                remote fault injection for
//	                                partitions, delays, loss.
//	GET  /admin/result              this server's slice of a harness
//	                                Result: chain/pipeline/transport
//	                                stats, committed and snapshot
//	                                heights, violations, PID.
//	GET  /admin/snapshot/manifest   latest snapshot manifest (heights,
//	                                digests, chunking), 404 until a
//	                                snapshot exists.
//	GET  /admin/snapshot/chunk/{i}  raw chunk bytes; optional ?height=
//	                                pins the snapshot generation (409 on
//	                                mismatch), so multi-GB state moves
//	                                over HTTP instead of competing with
//	                                votes on the consensus sockets.

// SetReady marks the replica ready: transport bound, bootstrap replay
// complete, event loop running. Call it after node.Start() returns.
func (s *Server) SetReady() { s.ready.Store(true) }

// SetConditions attaches the condition model judging this server's
// transport, enabling POST /admin/conditions.
func (s *Server) SetConditions(cond *network.Conditions) { s.cond = cond }

// SetSnapshots attaches the replica's snapshot store, enabling the
// /admin/snapshot endpoints.
func (s *Server) SetSnapshots(st *snapshot.Store) { s.snaps = st }

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	ready := s.ready.Load()
	if !ready {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	writeJSON(w, map[string]bool{"ready": ready})
}

func (s *Server) handleConditions(w http.ResponseWriter, r *http.Request) {
	if s.cond == nil {
		http.Error(w, "replica has no conditioned transport", http.StatusServiceUnavailable)
		return
	}
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var spec network.ConditionsSpec
	if err := dec.Decode(&spec); err != nil {
		http.Error(w, fmt.Sprintf("bad spec: %v", err), http.StatusBadRequest)
		return
	}
	if err := spec.Validate(); err != nil {
		// Validate before Apply: a half-applied spec would leave the
		// fleet in a state no schedule declares.
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	spec.Apply(s.cond, time.Now())
	writeJSON(w, map[string]bool{"ok": true})
}

// ReplicaResult is one server's slice of a deployment-wide result: the
// node-local stats a fleet harness collects over HTTP and merges into
// a single harness.Result. The PID makes the process boundary
// auditable — a merged fleet result can prove each replica ran in its
// own OS process (and that a restart leg really re-exec'd).
type ReplicaResult struct {
	ID              uint64 `json:"id"`
	Pid             int    `json:"pid"`
	CommittedHeight uint64 `json:"committedHeight"`
	// LedgerHeight is the highest height on the replica's disk ledger
	// at fetch time. Fetched just before a SIGKILL it lower-bounds
	// what the next incarnation must replay: the ledger only grows
	// while the process lives, so a full-ledger bootstrap replay
	// re-commits at least this many heights.
	LedgerHeight   uint64                 `json:"ledgerHeight"`
	SnapshotHeight uint64                 `json:"snapshotHeight"`
	Violations     uint64                 `json:"violations"`
	Chain          metrics.ChainStats     `json:"chain"`
	Pipeline       metrics.PipelineStats  `json:"pipeline"`
	Transport      network.TransportStats `json:"transport"`
	// Mempool admission counters, so the fleet harness can compute
	// server-side rejection deltas per measurement window.
	PoolAdmitted uint64 `json:"poolAdmitted"`
	PoolRejected uint64 `json:"poolRejected"`
	PoolQueued   uint64 `json:"poolQueued"`
}

func (s *Server) handleResult(w http.ResponseWriter, _ *http.Request) {
	st := s.node.Status()
	res := ReplicaResult{
		ID:              uint64(s.node.ID()),
		Pid:             os.Getpid(),
		CommittedHeight: st.CommittedHeight,
		LedgerHeight:    s.node.LedgerHeight(),
		SnapshotHeight:  st.SnapshotHeight,
		Violations:      s.node.Violations(),
		Chain:           s.node.Tracker().Snapshot(),
		Pipeline:        s.node.Pipeline().Snapshot(),
	}
	ps := s.node.PoolStats()
	res.PoolAdmitted, res.PoolRejected, res.PoolQueued = ps.Admitted, ps.Rejected, ps.Queued
	if tr, ok := s.node.Transport().(interface{ Stats() network.TransportStats }); ok {
		res.Transport = tr.Stats()
	}
	writeJSON(w, res)
}

// SnapshotManifest describes the server's latest snapshot for
// out-of-band HTTP transfer: everything a fetcher needs to stream and
// verify chunks. The same trust model as the consensus-socket path
// applies — the digest is only as good as its source, so a fetcher
// cross-checks manifests across f+1 servers before streaming.
type SnapshotManifest struct {
	Height      uint64   `json:"height"`
	Block       string   `json:"block"`
	StateDigest string   `json:"stateDigest"`
	TotalSize   uint64   `json:"totalSize"`
	ChunkSize   uint32   `json:"chunkSize"`
	Chunks      []string `json:"chunks"`
}

func (s *Server) handleSnapshotManifest(w http.ResponseWriter, _ *http.Request) {
	if s.snaps == nil {
		http.Error(w, "replica has no snapshot store", http.StatusNotFound)
		return
	}
	snap, digests, ok := s.snaps.Latest()
	if !ok {
		http.Error(w, "no snapshot yet", http.StatusNotFound)
		return
	}
	blockID := snap.Block.ID()
	m := SnapshotManifest{
		Height:      snap.Height,
		Block:       fmt.Sprintf("%x", blockID[:]),
		StateDigest: fmt.Sprintf("%x", snap.StateDigest[:]),
		TotalSize:   uint64(len(snap.Payload)),
		ChunkSize:   snapshot.ChunkSize,
		Chunks:      make([]string, 0, len(digests)),
	}
	for _, d := range digests {
		m.Chunks = append(m.Chunks, fmt.Sprintf("%x", d[:]))
	}
	writeJSON(w, m)
}

func (s *Server) handleSnapshotChunk(w http.ResponseWriter, r *http.Request) {
	if s.snaps == nil {
		http.Error(w, "replica has no snapshot store", http.StatusNotFound)
		return
	}
	idx, err := strconv.ParseUint(r.PathValue("i"), 10, 32)
	if err != nil {
		http.Error(w, "bad chunk index", http.StatusBadRequest)
		return
	}
	snap, _, ok := s.snaps.Latest()
	if !ok {
		http.Error(w, "no snapshot yet", http.StatusNotFound)
		return
	}
	// A fetcher pins the generation it negotiated via ?height=: if a
	// newer snapshot replaced it mid-transfer, mixing chunks across
	// generations must fail loudly, not corrupt silently.
	if hq := r.URL.Query().Get("height"); hq != "" {
		want, err := strconv.ParseUint(hq, 10, 64)
		if err != nil {
			http.Error(w, "bad height", http.StatusBadRequest)
			return
		}
		if want != snap.Height {
			http.Error(w, fmt.Sprintf("snapshot advanced to height %d", snap.Height),
				http.StatusConflict)
			return
		}
	}
	data := snapshot.Chunk(snap.Payload, snapshot.ChunkSize, uint32(idx))
	if data == nil {
		http.Error(w, "chunk index out of range", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Snapshot-Height", strconv.FormatUint(snap.Height, 10))
	_, _ = w.Write(data)
}

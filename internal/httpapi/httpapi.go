// Package httpapi exposes a replica over the RESTful interface the
// paper's client library uses (Section III-D), so external benchmark
// drivers (YCSB-style) can submit transactions over HTTP and replicas
// can be inspected and perturbed at run time.
//
// Endpoints:
//
//	POST /tx      submit a transaction; the response returns when the
//	              transaction commits (or the request times out).
//	GET  /status  replica snapshot: current view, committed height,
//	              state-sync progress (Syncing/SyncApplied), the
//	              per-stage pipeline latencies (verify-queue wait,
//	              apply lag), and — on TCP deployments — the
//	              endpoint's transport counters (msgs, bytes, dials).
//	GET  /hash    committed block hash at ?height=N (consistency check).
//	GET  /chain   chain micro-metrics as JSON (CGR, BI, committed
//	              counts, per-proposer commit shares, Gini, per-stage
//	              histograms) plus the pipeline stage counters under
//	              "pipeline".
//	GET  /metrics Prometheus text exposition of every replica counter
//	              and histogram (chain, stages, mempool admission, WAL
//	              syncs, sync, snapshot, pipeline). Scrape-ready with
//	              no client library. Requests that ask for JSON via
//	              the Accept header get 410 Gone pointing at /chain,
//	              which kept the old JSON shape.
//	GET  /debug/trace
//	              block-lifecycle trace rings: span per block with
//	              stage timestamps, interleaved per-view events. JSON
//	              by default; ?format=chrome emits the Chrome
//	              trace-event array chrome://tracing loads directly.
package httpapi

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/bamboo-bft/bamboo/internal/core"
	"github.com/bamboo-bft/bamboo/internal/metrics"
	"github.com/bamboo-bft/bamboo/internal/network"
	"github.com/bamboo-bft/bamboo/internal/snapshot"
	"github.com/bamboo-bft/bamboo/internal/types"
)

// Server is the HTTP front end of one replica.
type Server struct {
	node    *core.Node
	timeout time.Duration

	// admin surface (see admin.go); cond and snaps are optional and
	// set once before the server starts accepting requests.
	ready atomic.Bool
	cond  *network.Conditions
	snaps *snapshot.Store

	mu      sync.Mutex
	nextSeq uint64
	client  uint64
	waiters map[types.TxID]chan commitInfo
}

type commitInfo struct {
	view     types.View
	blockID  types.Hash
	rejected bool
}

// New creates a server for the node. clientID namespaces the
// transaction IDs this server mints (use the replica's ID); timeout
// bounds how long POST /tx waits for the commit.
func New(node *core.Node, clientID uint64, timeout time.Duration) *Server {
	s := &Server{
		node:    node,
		timeout: timeout,
		client:  clientID,
		waiters: make(map[types.TxID]chan commitInfo),
	}
	node.AddCommitListener(s.onCommit)
	node.AddRejectListener(s.onReject)
	return s
}

// onCommit resolves waiting POST /tx requests.
func (s *Server) onCommit(view types.View, blockID types.Hash, txs []types.Transaction) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range txs {
		if ch, ok := s.waiters[txs[i].ID]; ok {
			delete(s.waiters, txs[i].ID)
			ch <- commitInfo{view: view, blockID: blockID}
		}
	}
}

// onReject resolves a waiting POST /tx request whose transaction the
// admission policy turned away — the 429 path.
func (s *Server) onReject(id types.TxID) {
	s.mu.Lock()
	ch, ok := s.waiters[id]
	if ok {
		delete(s.waiters, id)
	}
	s.mu.Unlock()
	if ok {
		ch <- commitInfo{rejected: true}
	}
}

// Handler returns the route mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /tx", s.handleTx)
	mux.HandleFunc("GET /status", s.handleStatus)
	mux.HandleFunc("GET /hash", s.handleHash)
	mux.HandleFunc("GET /chain", s.handleChain)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /debug/trace", s.handleTrace)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("POST /admin/conditions", s.handleConditions)
	mux.HandleFunc("GET /admin/result", s.handleResult)
	mux.HandleFunc("GET /admin/snapshot/manifest", s.handleSnapshotManifest)
	mux.HandleFunc("GET /admin/snapshot/chunk/{i}", s.handleSnapshotChunk)
	return mux
}

// txRequest is the POST /tx body.
type txRequest struct {
	// Command is the transaction payload (the kvstore command or
	// arbitrary bytes for benchmarking).
	Command []byte `json:"command"`
}

// txResponse is the POST /tx reply. A transaction the admission policy
// turned away answers 429 with Rejected set — the client's cue to back
// off and retry, distinct from the 504 of a commit that timed out.
type txResponse struct {
	Committed bool       `json:"committed"`
	Rejected  bool       `json:"rejected,omitempty"`
	View      types.View `json:"view,omitempty"`
	Block     string     `json:"block,omitempty"`
	LatencyMS float64    `json:"latencyMs"`
}

func (s *Server) handleTx(w http.ResponseWriter, r *http.Request) {
	var req txRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, fmt.Sprintf("bad request: %v", err), http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	s.nextSeq++
	id := types.TxID{Client: s.client, Seq: s.nextSeq}
	ch := make(chan commitInfo, 1)
	s.waiters[id] = ch
	s.mu.Unlock()

	start := time.Now()
	s.node.Submit(types.Transaction{
		ID:             id,
		Command:        req.Command,
		SubmitUnixNano: start.UnixNano(),
	})

	timer := time.NewTimer(s.timeout)
	defer timer.Stop()
	var resp txResponse
	select {
	case info := <-ch:
		if info.rejected {
			resp = txResponse{
				Rejected:  true,
				LatencyMS: float64(time.Since(start)) / float64(time.Millisecond),
			}
			w.WriteHeader(http.StatusTooManyRequests)
			break
		}
		resp = txResponse{
			Committed: true,
			View:      info.view,
			Block:     info.blockID.String(),
			LatencyMS: float64(time.Since(start)) / float64(time.Millisecond),
		}
	case <-timer.C:
		s.mu.Lock()
		delete(s.waiters, id)
		s.mu.Unlock()
		resp = txResponse{Committed: false, LatencyMS: float64(time.Since(start)) / float64(time.Millisecond)}
		w.WriteHeader(http.StatusGatewayTimeout)
	case <-r.Context().Done():
		s.mu.Lock()
		delete(s.waiters, id)
		s.mu.Unlock()
		return
	}
	writeJSON(w, resp)
}

// statusResponse augments the replica snapshot (which carries the
// state-sync progress and snapshot-height fields) with the pipeline's
// per-stage latencies and the snapshot/restart counters, so operators
// can see at a glance whether the verification pool or the
// commit-apply stage is the bottleneck, whether the replica is still
// streaming catch-up batches, and how it last recovered (snapshot
// install vs ledger replay). StateDigest renders the latest snapshot
// digest in hex (empty until a snapshot exists). On transports that
// keep their own counters (TCP deployments), Transport reports the
// endpoint's traffic and connection churn; it is omitted on the
// in-process switch, whose counters are deployment-wide.
type statusResponse struct {
	core.Status
	// SnapshotDigest shadows the embedded Status field out of the
	// JSON (an outer field with the same name dominates; left empty,
	// omitempty then drops it): the digest is served once, as the hex
	// StateDigest below. A `json:"-"` tag would not work here — such
	// fields are ignored entirely and the embedded one would marshal.
	SnapshotDigest   string                  `json:"SnapshotDigest,omitempty"`
	StateDigest      string                  `json:"stateDigest,omitempty"`
	SnapshotInstalls uint64                  `json:"snapshotInstalls"`
	SnapshotsServed  uint64                  `json:"snapshotsServed"`
	ReplayedBlocks   uint64                  `json:"replayedBlocks"`
	VerifyQueueWait  metrics.LatencySummary  `json:"verifyQueueWait"`
	ApplyLag         metrics.LatencySummary  `json:"applyLag"`
	Transport        *network.TransportStats `json:"transport,omitempty"`
}

func (s *Server) handleStatus(w http.ResponseWriter, _ *http.Request) {
	p := s.node.Pipeline().Snapshot()
	resp := statusResponse{
		Status:           s.node.Status(),
		SnapshotInstalls: p.SnapshotInstalls,
		SnapshotsServed:  p.SnapshotsServed,
		ReplayedBlocks:   p.ReplayedBlocks,
		VerifyQueueWait:  p.VerifyQueueWait,
		ApplyLag:         p.ApplyLag,
	}
	if !resp.Status.SnapshotDigest.IsZero() {
		resp.StateDigest = fmt.Sprintf("%x", resp.Status.SnapshotDigest[:])
	}
	if st, ok := s.node.Transport().(interface{ Stats() network.TransportStats }); ok {
		stats := st.Stats()
		resp.Transport = &stats
	}
	writeJSON(w, resp)
}

func (s *Server) handleHash(w http.ResponseWriter, r *http.Request) {
	height, err := strconv.ParseUint(r.URL.Query().Get("height"), 10, 64)
	if err != nil {
		http.Error(w, "height parameter required", http.StatusBadRequest)
		return
	}
	hash, ok := s.node.HashAt(height)
	if !ok {
		http.Error(w, "height not committed", http.StatusNotFound)
		return
	}
	writeJSON(w, map[string]string{"hash": fmt.Sprintf("%x", hash[:])})
}

// chainResponse flattens the chain micro-metrics (unchanged wire shape
// for existing consumers of the old JSON /metrics, which moved here)
// and nests the pipeline stage counters.
type chainResponse struct {
	metrics.ChainStats
	Pipeline metrics.PipelineStats `json:"pipeline"`
}

func (s *Server) handleChain(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, chainResponse{
		ChainStats: s.node.Tracker().Snapshot(),
		Pipeline:   s.node.Pipeline().Snapshot(),
	})
}

// handleTrace serves the block-lifecycle trace rings: the JSON export
// by default, the Chrome trace-event array under ?format=chrome (save
// it to a file and load it in chrome://tracing or Perfetto).
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	ex := s.node.Trace().Snapshot()
	if r.URL.Query().Get("format") == "chrome" {
		writeJSON(w, ex.Chrome())
		return
	}
	writeJSON(w, ex)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Connection-level failure; nothing further to do.
		_ = err
	}
}

package httpapi

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/bamboo-bft/bamboo/internal/cluster"
	"github.com/bamboo-bft/bamboo/internal/config"
	"github.com/bamboo-bft/bamboo/internal/kvstore"
)

// TestPipelineMetricsExposed: with the pipeline stages on, /status
// reports the per-stage latencies and /chain the stage counters.
func TestPipelineMetricsExposed(t *testing.T) {
	cfg := config.Default()
	cfg.Protocol = config.ProtocolHotStuff
	cfg.ApplyProtocolDefaults()
	cfg.CryptoScheme = "hmac"
	cfg.BlockSize = 20
	cfg.MemSize = 10000
	cfg.Timeout = 150 * time.Millisecond
	cfg.DigestProposals = true
	cfg.AsyncVerify = true
	cfg.AsyncCommit = true
	c, err := cluster.New(cfg, cluster.Options{WithStores: true})
	if err != nil {
		t.Fatal(err)
	}
	api := New(c.Node(c.Observer()), 9002, 5*time.Second)
	srv := httptest.NewServer(api.Handler())
	c.Start()
	t.Cleanup(func() {
		srv.Close()
		c.Stop()
	})

	body, _ := json.Marshal(txRequest{Command: kvstore.EncodeNoop(0)})
	resp, err := http.Post(srv.URL+"/tx", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()

	resp, err = http.Get(srv.URL + "/status")
	if err != nil {
		t.Fatal(err)
	}
	var status struct {
		CommittedHeight uint64
		VerifyQueueWait struct{ Count uint64 } `json:"verifyQueueWait"`
		ApplyLag        struct{ Count uint64 } `json:"applyLag"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if status.CommittedHeight == 0 {
		t.Fatalf("no commit: %+v", status)
	}
	if status.VerifyQueueWait.Count == 0 {
		t.Fatalf("no verify-queue samples on the status endpoint: %+v", status)
	}
	if status.ApplyLag.Count == 0 {
		t.Fatalf("no apply-lag samples on the status endpoint: %+v", status)
	}

	resp, err = http.Get(srv.URL + "/chain")
	if err != nil {
		t.Fatal(err)
	}
	var m struct {
		BlocksCommitted uint64
		Pipeline        struct {
			SigsVerified  uint64
			BlocksApplied uint64
		} `json:"pipeline"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if m.BlocksCommitted == 0 {
		t.Fatalf("no chain metrics: %+v", m)
	}
	if m.Pipeline.SigsVerified == 0 || m.Pipeline.BlocksApplied == 0 {
		t.Fatalf("pipeline counters missing from /chain: %+v", m)
	}
}

package httpapi

// prometheus.go renders the replica's telemetry in the Prometheus text
// exposition format (version 0.0.4) with no client library: the format
// is lines of `name{labels} value` under `# HELP` / `# TYPE` headers,
// and hand-rolling it keeps the module dependency-free while remaining
// scrape-compatible with any Prometheus, VictoriaMetrics, or OpenMetrics
// collector. Histograms follow the convention exactly: cumulative
// `_bucket{le="..."}` series over the shared bamboo bucket geometry,
// a `+Inf` bucket, and `_sum` / `_count` — durations in seconds.

import (
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"

	"github.com/bamboo-bft/bamboo/internal/metrics"
)

// expo accumulates one exposition document.
type expo struct {
	b strings.Builder
}

func (e *expo) header(name, typ, help string) {
	fmt.Fprintf(&e.b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

func (e *expo) counter(name, help string, v uint64) {
	e.header(name, "counter", help)
	fmt.Fprintf(&e.b, "%s %d\n", name, v)
}

func (e *expo) gauge(name, help string, v float64) {
	e.header(name, "gauge", help)
	fmt.Fprintf(&e.b, "%s %s\n", name, formatFloat(v))
}

// histogram renders one labeled histogram series set (pass labels ""
// for an unlabeled histogram). The header is the caller's job, so one
// family (e.g. bamboo_stage_seconds) can carry several label values.
func (e *expo) histogram(name, labels string, h metrics.HistData) {
	sep := ""
	if labels != "" {
		sep = ","
	}
	var cum uint64
	for i, c := range h.Buckets {
		cum += c
		upper := metrics.HistBucketUpper(i).Seconds()
		fmt.Fprintf(&e.b, "%s_bucket{%s%sle=\"%s\"} %d\n", name, labels, sep, formatFloat(upper), cum)
	}
	fmt.Fprintf(&e.b, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, h.Count)
	if labels == "" {
		fmt.Fprintf(&e.b, "%s_sum %s\n", name, formatFloat(float64(h.Sum)/1e9))
		fmt.Fprintf(&e.b, "%s_count %d\n", name, h.Count)
	} else {
		fmt.Fprintf(&e.b, "%s_sum{%s} %s\n", name, labels, formatFloat(float64(h.Sum)/1e9))
		fmt.Fprintf(&e.b, "%s_count{%s} %d\n", name, labels, h.Count)
	}
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// handleMetrics is GET /metrics: the Prometheus exposition of every
// replica counter and histogram. A request that explicitly asks for
// JSON gets 410 Gone pointing at /chain — the old JSON shape moved
// there when the exposition took over the conventional path.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if accept := r.Header.Get("Accept"); strings.Contains(accept, "application/json") {
		http.Error(w, "the JSON metrics document moved to /chain; /metrics now serves the Prometheus text exposition", http.StatusGone)
		return
	}

	chain := s.node.Tracker().Snapshot()
	pipe := s.node.Pipeline().Snapshot()
	pool := s.node.PoolStats()
	status := s.node.Status()

	var e expo

	// Chain progress.
	e.counter("bamboo_committed_blocks_total", "Blocks that reached commitment on this replica.", chain.BlocksCommitted)
	e.counter("bamboo_added_blocks_total", "Blocks this replica accepted onto its chain (voted for).", chain.BlocksAdded)
	e.counter("bamboo_views_total", "Views this replica entered.", chain.ViewsEntered)
	e.counter("bamboo_committed_txs_total", "Transactions carried by committed blocks.", chain.TxCommitted)
	e.gauge("bamboo_chain_cgr", "Chain growth rate: committed blocks over accepted blocks.", chain.CGR)
	e.gauge("bamboo_chain_bi", "Block interval: mean views from proposal to commit.", chain.BI)
	e.gauge("bamboo_chain_gini", "Gini coefficient over per-proposer committed-block shares (chain quality).", chain.Gini)

	// Per-proposer committed blocks, zero-filled over the cohort so the
	// series set is stable and a flat-zero proposer is visible.
	e.header("bamboo_proposer_commits_total", "counter", "Committed blocks per proposer (chain-quality raw counts).")
	for id := 1; id <= chain.Cohort; id++ {
		fmt.Fprintf(&e.b, "bamboo_proposer_commits_total{proposer=\"%d\"} %d\n", id, chain.ProposerCommits[uint32(id)])
	}

	// Per-stage block-lifecycle histograms.
	e.header("bamboo_stage_seconds", "histogram", "Block-lifecycle stage durations (verify, vote, qc, commit, execute).")
	stageKeys := make([]string, 0, len(chain.Stages))
	for k := range chain.Stages {
		stageKeys = append(stageKeys, k)
	}
	sort.Strings(stageKeys)
	for _, k := range stageKeys {
		e.histogram("bamboo_stage_seconds", fmt.Sprintf("stage=%q", k), chain.Stages[k])
	}

	// Replica status gauges.
	e.gauge("bamboo_current_view", "The replica's current view.", float64(status.CurView))
	e.gauge("bamboo_committed_height", "The replica's committed chain height.", float64(status.CommittedHeight))
	e.gauge("bamboo_snapshot_height", "Height of the replica's latest state snapshot (0 = none).", float64(status.SnapshotHeight))
	syncing := 0.0
	if status.Syncing {
		syncing = 1
	}
	e.gauge("bamboo_syncing", "1 while the replica is in deep catch-up, else 0.", syncing)
	e.gauge("bamboo_pool_size", "Transactions currently pooled.", float64(status.Pool))
	e.gauge("bamboo_pool_overflow", "Pooled transactions currently past the soft capacity.", float64(status.PoolQueued))

	// Mempool admission.
	e.counter("bamboo_pool_admitted_total", "Transactions accepted by the admission policy.", pool.Admitted)
	e.counter("bamboo_pool_rejected_total", "Transactions turned away by the admission policy (overload signal).", pool.Rejected)
	e.counter("bamboo_pool_queued_total", "Admissions that landed in the overflow band past the soft capacity.", pool.Queued)

	// Pipeline counters.
	e.counter("bamboo_sigs_verified_total", "Signatures checked by the verification pool.", pipe.SigsVerified)
	e.counter("bamboo_verify_batches_total", "Batch verification calls.", pipe.BatchesVerified)
	e.counter("bamboo_verify_batch_fallbacks_total", "Batches that fell back to per-signature verification.", pipe.BatchFallbacks)
	e.counter("bamboo_verify_rejected_total", "Messages dropped for bad signatures.", pipe.VerifyRejected)
	e.counter("bamboo_inline_verifies_total", "Messages verified on the event loop under pool backpressure.", pipe.InlineVerifies)
	e.counter("bamboo_digest_resolved_total", "Digest proposals rebuilt from the local mempool.", pipe.DigestResolved)
	e.counter("bamboo_digest_fetched_total", "Digest proposals that fell back to a full-block fetch.", pipe.DigestFetched)
	e.counter("bamboo_blocks_applied_total", "Blocks executed by the commit-apply stage.", pipe.BlocksApplied)
	e.counter("bamboo_sync_requests_sent_total", "Ranged catch-up requests issued in deep state sync.", pipe.SyncRequestsSent)
	e.counter("bamboo_sync_batches_served_total", "Ranged batches served to lagging peers.", pipe.SyncBatchesServed)
	e.counter("bamboo_sync_blocks_applied_total", "Committed blocks fast-forwarded through state sync.", pipe.SyncBlocksApplied)
	e.counter("bamboo_sync_rejected_total", "Sync responses dropped by verification.", pipe.SyncRejected)
	e.counter("bamboo_snapshot_installs_total", "Peer state snapshots verified and installed.", pipe.SnapshotInstalls)
	e.counter("bamboo_snapshots_served_total", "Snapshot manifests served to catch-up requesters.", pipe.SnapshotsServed)
	e.counter("bamboo_replayed_blocks_total", "Blocks replayed from the replica's own ledger at restart.", pipe.ReplayedBlocks)
	e.counter("bamboo_wal_syncs_total", "Durable safety-state syncs (one fsync'd append per vote or timeout).", pipe.WALSyncs)

	// Pipeline latency histograms.
	pipeHists := s.node.Pipeline().Hists()
	for _, ph := range []struct{ key, help string }{
		{"verify_queue_wait", "Wait between a message entering the verification queue and a worker picking it up."},
		{"apply_lag", "Lag between a block committing and its payload finishing execution."},
		{"wal_sync", "Durable safety-state append wait (the per-vote durability tax)."},
	} {
		h, ok := pipeHists[ph.key]
		if !ok {
			continue
		}
		full := "bamboo_" + ph.key + "_seconds"
		e.header(full, "histogram", ph.help)
		e.histogram(full, "", h)
	}

	// Pacemaker and safety.
	e.counter("bamboo_pacemaker_timeouts_fired_total", "View-timer expirations surfaced by the pacemaker.", s.node.TimeoutsFired())
	e.counter("bamboo_safety_violations_total", "Commit-safety violations the forest reported (must stay 0).", s.node.Violations())

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write([]byte(e.b.String()))
}

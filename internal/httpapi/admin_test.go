package httpapi

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"github.com/bamboo-bft/bamboo/internal/cluster"
	"github.com/bamboo-bft/bamboo/internal/config"
	"github.com/bamboo-bft/bamboo/internal/kvstore"
	"github.com/bamboo-bft/bamboo/internal/snapshot"
	"github.com/bamboo-bft/bamboo/internal/types"
)

// startAdminCluster is startAPICluster with the Server handle exposed,
// so tests can drive the admin setters the way bamboo-server does.
func startAdminCluster(t *testing.T) (*cluster.Cluster, *Server, *httptest.Server) {
	t.Helper()
	cfg := config.Default()
	cfg.Protocol = config.ProtocolHotStuff
	cfg.ApplyProtocolDefaults()
	cfg.CryptoScheme = "hmac"
	cfg.BlockSize = 20
	cfg.MemSize = 10000
	cfg.Timeout = 150 * time.Millisecond
	c, err := cluster.New(cfg, cluster.Options{WithStores: true})
	if err != nil {
		t.Fatal(err)
	}
	api := New(c.Node(c.Observer()), 9100, 5*time.Second)
	srv := httptest.NewServer(api.Handler())
	c.Start()
	t.Cleanup(func() {
		srv.Close()
		c.Stop()
	})
	return c, api, srv
}

func TestReadyzFlips(t *testing.T) {
	_, api, srv := startAdminCluster(t)
	resp, err := http.Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("pre-ready status = %d, want 503", resp.StatusCode)
	}
	api.SetReady()
	resp, err = http.Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-ready status = %d, want 200", resp.StatusCode)
	}
	var out map[string]bool
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if !out["ready"] {
		t.Fatal("ready flag false after SetReady")
	}
}

func TestAdminResultEndpoint(t *testing.T) {
	c, _, srv := startAdminCluster(t)
	body, _ := json.Marshal(txRequest{Command: kvstore.EncodeNoop(0)})
	resp, err := http.Post(srv.URL+"/tx", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()

	resp, err = http.Get(srv.URL + "/admin/result")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	var res ReplicaResult
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	if res.ID != uint64(c.Observer()) {
		t.Fatalf("result id = %d, want %d", res.ID, c.Observer())
	}
	if res.Pid != os.Getpid() {
		t.Fatalf("result pid = %d, want %d", res.Pid, os.Getpid())
	}
	if res.CommittedHeight == 0 || res.Chain.BlocksCommitted == 0 {
		t.Fatalf("empty progress in result: %+v", res)
	}
}

func TestAdminConditionsEndpoint(t *testing.T) {
	c, api, srv := startAdminCluster(t)

	post := func(body string) *http.Response {
		t.Helper()
		resp, err := http.Post(srv.URL+"/admin/conditions", "application/json",
			bytes.NewBufferString(body))
		if err != nil {
			t.Fatal(err)
		}
		_ = resp.Body.Close()
		return resp
	}

	// Without a condition model attached the endpoint refuses.
	if resp := post(`{"crash":[2]}`); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("no-model status = %d, want 503", resp.StatusCode)
	}

	api.SetConditions(c.Conditions())
	if resp := post(`{"crash":[2]}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("crash spec status = %d", resp.StatusCode)
	}
	if !c.Conditions().IsCrashed(2) {
		t.Fatal("crash spec not applied to the condition model")
	}
	if resp := post(`{"restart":[2]}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("restart spec status = %d", resp.StatusCode)
	}
	if c.Conditions().IsCrashed(2) {
		t.Fatal("restart spec did not clear the crash mark")
	}

	// Malformed and invalid specs are rejected before touching the
	// model.
	if resp := post(`{"dropRate": 2.0}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid spec status = %d, want 400", resp.StatusCode)
	}
	if resp := post(`{"noSuchKnob": true}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field status = %d, want 400", resp.StatusCode)
	}
}

func TestAdminSnapshotEndpoints(t *testing.T) {
	_, api, srv := startAdminCluster(t)

	// No store attached: both endpoints 404.
	resp, err := http.Get(srv.URL + "/admin/snapshot/manifest")
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("no-store manifest status = %d, want 404", resp.StatusCode)
	}

	// Attach a store holding a two-chunk snapshot.
	payload := bytes.Repeat([]byte("bamboo"), (snapshot.ChunkSize/6)+100)
	blk := &types.Block{View: 5, Proposer: 1}
	snap := &snapshot.Snapshot{
		Height:      12,
		Block:       blk,
		QC:          &types.QC{View: 5, BlockID: blk.ID()},
		StateDigest: snapshot.Digest(payload),
		Payload:     payload,
	}
	store, err := snapshot.OpenStore(filepath.Join(t.TempDir(), "replica.snap"))
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Save(snap); err != nil {
		t.Fatal(err)
	}
	api.SetSnapshots(store)

	resp, err = http.Get(srv.URL + "/admin/snapshot/manifest")
	if err != nil {
		t.Fatal(err)
	}
	var m SnapshotManifest
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if m.Height != 12 || m.TotalSize != uint64(len(payload)) || m.ChunkSize != snapshot.ChunkSize {
		t.Fatalf("bad manifest: %+v", m)
	}
	wantChunks := snapshot.ChunkCount(uint64(len(payload)), snapshot.ChunkSize)
	if len(m.Chunks) != wantChunks || wantChunks < 2 {
		t.Fatalf("manifest chunks = %d, want %d (>= 2)", len(m.Chunks), wantChunks)
	}

	// Stream every chunk pinned to the manifest's generation and check
	// each against its advertised digest.
	var got []byte
	for i := 0; i < wantChunks; i++ {
		resp, err := http.Get(fmt.Sprintf("%s/admin/snapshot/chunk/%d?height=%d", srv.URL, i, m.Height))
		if err != nil {
			t.Fatal(err)
		}
		data, err := io.ReadAll(resp.Body)
		_ = resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("chunk %d status = %d", i, resp.StatusCode)
		}
		if sum := sha256.Sum256(data); fmt.Sprintf("%x", sum[:]) != m.Chunks[i] {
			t.Fatalf("chunk %d does not match its manifest digest", i)
		}
		got = append(got, data...)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("reassembled chunks differ from the snapshot payload")
	}

	// Generation pin mismatch conflicts; out-of-range chunk 404s.
	resp, err = http.Get(fmt.Sprintf("%s/admin/snapshot/chunk/0?height=%d", srv.URL, m.Height+1))
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("stale-pin status = %d, want 409", resp.StatusCode)
	}
	resp, err = http.Get(fmt.Sprintf("%s/admin/snapshot/chunk/%d", srv.URL, wantChunks))
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("out-of-range status = %d, want 404", resp.StatusCode)
	}
}

// TestShutdownRace hammers the submit and status paths while the node
// stops underneath the HTTP server — the window a fleet teardown
// always crosses (SIGTERM drains HTTP while the event loop winds
// down). Run under -race; the assertion is the detector staying quiet
// and every request completing one way or the other.
func TestShutdownRace(t *testing.T) {
	cfg := config.Default()
	cfg.Protocol = config.ProtocolHotStuff
	cfg.ApplyProtocolDefaults()
	cfg.CryptoScheme = "hmac"
	cfg.BlockSize = 20
	cfg.MemSize = 10000
	cfg.Timeout = 150 * time.Millisecond
	c, err := cluster.New(cfg, cluster.Options{WithStores: true})
	if err != nil {
		t.Fatal(err)
	}
	api := New(c.Node(c.Observer()), 9101, 300*time.Millisecond)
	srv := httptest.NewServer(api.Handler())
	c.Start()
	t.Cleanup(func() {
		srv.Close()
		c.Stop()
	})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	hammer := func(fn func()) {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			fn()
		}
	}
	get := func(path string) func() {
		return func() {
			resp, err := http.Get(srv.URL + path)
			if err == nil {
				_, _ = io.Copy(io.Discard, resp.Body)
				_ = resp.Body.Close()
			}
		}
	}
	for g := 0; g < 4; g++ {
		wg.Add(5)
		go hammer(func() {
			body, _ := json.Marshal(txRequest{Command: kvstore.EncodeNoop(0)})
			resp, err := http.Post(srv.URL+"/tx", "application/json", bytes.NewReader(body))
			if err == nil {
				_, _ = io.Copy(io.Discard, resp.Body)
				_ = resp.Body.Close()
			}
		})
		// Every read surface that walks tracker/trace state must
		// survive the node stopping underneath it.
		go hammer(get("/status"))
		go hammer(get("/metrics"))
		go hammer(get("/debug/trace"))
		go hammer(get("/debug/trace?format=chrome"))
	}
	// Let the load reach steady state, then stop the node underneath
	// the still-serving HTTP front end.
	time.Sleep(100 * time.Millisecond)
	c.Stop()
	time.Sleep(100 * time.Millisecond)
	close(stop)
	wg.Wait()
}

package election

import (
	"testing"
	"testing/quick"

	"github.com/bamboo-bft/bamboo/internal/types"
)

func TestRoundRobinRotation(t *testing.T) {
	e := NewRoundRobin(4)
	want := []types.NodeID{1, 2, 3, 4, 1, 2, 3, 4}
	for i, w := range want {
		if got := e.Leader(types.View(i + 1)); got != w {
			t.Fatalf("view %d leader = %s, want %s", i+1, got, w)
		}
	}
}

// TestRoundRobinFairness: each node leads exactly once per N views —
// the fairness property frequent rotation is meant to provide.
func TestRoundRobinFairness(t *testing.T) {
	const n = 7
	e := NewRoundRobin(n)
	counts := make(map[types.NodeID]int)
	for v := types.View(1); v <= 10*n; v++ {
		counts[e.Leader(v)]++
	}
	for id := types.NodeID(1); id <= n; id++ {
		if counts[id] != 10 {
			t.Fatalf("node %s led %d times, want 10", id, counts[id])
		}
	}
}

func TestRoundRobinZeroNodes(t *testing.T) {
	if got := NewRoundRobin(0).Leader(1); got != types.NoNode {
		t.Fatalf("leader over zero nodes = %s", got)
	}
}

func TestStatic(t *testing.T) {
	e := NewStatic(3)
	for v := types.View(1); v <= 20; v++ {
		if e.Leader(v) != 3 {
			t.Fatal("static leader changed")
		}
	}
}

func TestHashedDeterministicAndInRange(t *testing.T) {
	a, b := NewHashed(8, 42), NewHashed(8, 42)
	for v := types.View(1); v <= 100; v++ {
		la, lb := a.Leader(v), b.Leader(v)
		if la != lb {
			t.Fatal("hash election not deterministic across replicas")
		}
		if la < 1 || la > 8 {
			t.Fatalf("leader %s out of range", la)
		}
	}
}

func TestHashedRoughlyUniform(t *testing.T) {
	const n, views = 4, 4000
	e := NewHashed(n, 7)
	counts := make(map[types.NodeID]int)
	for v := types.View(1); v <= views; v++ {
		counts[e.Leader(v)]++
	}
	for id := types.NodeID(1); id <= n; id++ {
		share := float64(counts[id]) / views
		if share < 0.15 || share > 0.35 {
			t.Fatalf("node %s share %.3f far from uniform 0.25", id, share)
		}
	}
}

func TestHashedZeroNodes(t *testing.T) {
	if got := NewHashed(0, 1).Leader(1); got != types.NoNode {
		t.Fatalf("leader over zero nodes = %s", got)
	}
}

// Property: round-robin leaders are always in [1, n].
func TestRoundRobinRangeQuick(t *testing.T) {
	f := func(n uint8, view uint64) bool {
		if n == 0 {
			return true
		}
		id := NewRoundRobin(int(n)).Leader(types.View(view) + 1)
		return id >= 1 && id <= types.NodeID(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Package election chooses the leader of each view. Three policies
// are provided: round-robin rotation (the paper's default when
// "master" is 0), a static leader pinned by the master parameter, and
// hash-based pseudo-random election (the design-choice variation
// discussed in Section V-E).
package election

import (
	"crypto/sha256"
	"encoding/binary"

	"github.com/bamboo-bft/bamboo/internal/types"
)

// Elector maps views to leaders. Implementations must be
// deterministic: every replica must derive the same leader for a view.
type Elector interface {
	// Leader returns the designated leader of the view.
	Leader(view types.View) types.NodeID
}

// RoundRobin rotates leadership across nodes 1..N: view v is led by
// ((v-1) mod N) + 1, so every node leads exactly once every N views.
type RoundRobin struct {
	n uint64
}

// NewRoundRobin creates a rotation over n nodes.
func NewRoundRobin(n int) RoundRobin { return RoundRobin{n: uint64(n)} }

// Leader implements Elector.
func (r RoundRobin) Leader(view types.View) types.NodeID {
	if r.n == 0 {
		return types.NoNode
	}
	return types.NodeID((uint64(view)-1)%r.n + 1)
}

// Static always elects the same node (Table I "master" non-zero).
type Static struct {
	master types.NodeID
}

// NewStatic pins leadership to master.
func NewStatic(master types.NodeID) Static { return Static{master: master} }

// Leader implements Elector.
func (s Static) Leader(types.View) types.NodeID { return s.master }

// Hashed elects pseudo-randomly by hashing (seed, view); with a
// shared seed all replicas agree, and over many views each node leads
// with probability 1/N — the "leader election based on hash
// functions" alternative the paper's model can also analyze.
type Hashed struct {
	n    uint64
	seed int64
}

// NewHashed creates a hash-based elector over n nodes.
func NewHashed(n int, seed int64) Hashed { return Hashed{n: uint64(n), seed: seed} }

// Leader implements Elector.
func (h Hashed) Leader(view types.View) types.NodeID {
	if h.n == 0 {
		return types.NoNode
	}
	var buf [16]byte
	binary.BigEndian.PutUint64(buf[:8], uint64(h.seed))
	binary.BigEndian.PutUint64(buf[8:], uint64(view))
	sum := sha256.Sum256(buf[:])
	return types.NodeID(binary.BigEndian.Uint64(sum[:8])%h.n + 1)
}

// Package wal persists the durable safety state of one replica: the
// few words of protocol state (last-voted view, preferred view, the
// highest known certificate, the pacemaker's current view) that must
// survive a crash for the voting rule to stay safe across it, plus
// the short certified-but-uncommitted block suffix that makes the
// restored lock satisfiable after a whole-cluster crash. Without the
// views a SIGKILLed replica forgets it ever voted and can vote twice
// in the same view after restart — Byzantine equivocation produced by
// a crash fault. The engine appends a record BEFORE any vote or
// timeout message leaves the node, so by the time a peer can count
// this replica's signature the state that forbids a second one is on
// disk.
//
// The format mirrors the ledger's: length-prefixed, self-contained gob
// records, with a CRC32 of the body in each frame (safety state is
// small and precious — a bit flip must be a clean rejection, not a
// silently wrong lock). Crash recovery follows the same rule as the
// ledger: a truncated final frame is the footprint of a crash
// mid-append and is cut off at Open; a frame that is structurally
// complete but fails its checksum or decode is real corruption and is
// reported as an error.
//
// Every record supersedes all earlier ones, so the log is compacted
// back to a single record at Open and periodically during appends
// (atomic write-then-rename, like snapshot saves).
package wal

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"

	"github.com/bamboo-bft/bamboo/internal/types"
)

// Record is one durable-safety snapshot. Later records supersede
// earlier ones entirely; only the last intact record matters.
type Record struct {
	// CurView is the pacemaker view at the time of the append. A
	// restarted replica rejoins at this view, so it can never vote
	// below the views its pre-crash signatures already covered.
	CurView types.View
	// LastVoted is the protocol's lvView — the highest view this
	// replica has signed a block vote for.
	LastVoted types.View
	// Preferred is the protocol's lock (preferred view); restoring it
	// keeps a rebooted replica from voting for a branch that forks
	// below what it had locked.
	Preferred types.View
	// LastTimeout is the highest view this replica signed a timeout
	// for (the engine's f+1 join rule signs each view at most once).
	LastTimeout types.View
	// HighQC is the freshest certificate the protocol would extend.
	HighQC *types.QC
	// Suffix is the certified-but-uncommitted block path from just
	// above the committed tip up to HighQC's block, ascending by
	// height. A restored lock points at these blocks, and after a
	// whole-cluster crash nobody else has them either (only committed
	// blocks reach ledgers): without the suffix the lock is a promise
	// no proposal can ever satisfy — every replica waits for a
	// certificate at least as fresh as a block the cluster has
	// collectively forgotten, which is a deadlock, not safety. With
	// it, restore re-attaches the blocks to the replayed chain and the
	// restored HighQC is immediately extendable.
	Suffix []*types.Block
}

// ErrCorrupt reports a frame that is structurally complete but fails
// its checksum or decode — real corruption, distinct from the
// truncated tail a crash mid-append leaves (which Open repairs
// silently, like the ledger).
var ErrCorrupt = errors.New("wal: corrupt record")

// maxFrame bounds a frame body: a record is a few views, one QC, and
// the short certified-but-uncommitted block suffix (a handful of
// blocks with payloads), so anything larger is corruption, not data.
// It also keeps a hostile length prefix from driving a giant
// allocation at Open. Append re-encodes without the suffix rather
// than ever writing a frame this bound would reject.
const maxFrame = 1 << 24

// compactEvery is how many appends accumulate before the file is
// rewritten down to its single live record.
const compactEvery = 1024

// WAL is the append-only safety log of one replica. Appends are
// serialized internally; the engine calls it from its single event
// loop anyway.
type WAL struct {
	mu     sync.Mutex
	path   string
	f      *os.File
	sync   bool
	latest *Record
	// sinceCompact counts appends since the file last held one record.
	sinceCompact int
	closed       bool
}

// Open opens (or creates) the safety log at path with fsync-per-append
// durability: Append returns only once the record is on stable
// storage, which is what lets a vote leave the node afterwards. Any
// records already present are scanned, the damaged tail of a crash
// mid-append is cut off, and the file is compacted to the last intact
// record. Structural corruption is reported as an error.
func Open(path string) (*WAL, error) {
	return open(path, true)
}

// OpenNoSync is Open without the per-append fsync: records reach the
// page cache but survive only process death, not machine crash. It is
// the in-process cluster's mode, where a "crash" never takes the OS
// with it — the same durability trade the ledger's OpenBuffered makes.
func OpenNoSync(path string) (*WAL, error) {
	return open(path, false)
}

func open(path string, fsync bool) (*WAL, error) {
	latest, end, count, err := scan(path)
	if err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	if fi, err := f.Stat(); err == nil && fi.Size() > end {
		// Crash footprint: a partial frame past the last intact record.
		if err := f.Truncate(end); err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: recover tail: %w", err)
		}
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: %w", err)
	}
	w := &WAL{path: path, f: f, sync: fsync, latest: latest}
	if count > 1 {
		if err := w.compactLocked(); err != nil {
			f.Close()
			return nil, err
		}
	}
	return w, nil
}

// scan reads the log at path, returning the last intact record, the
// end offset of the last intact frame, and how many intact frames the
// file holds. A missing file is an empty log.
func scan(path string) (latest *Record, end int64, count int, err error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, 0, 0, nil
	}
	if err != nil {
		return nil, 0, 0, fmt.Errorf("wal: %w", err)
	}
	off := int64(0)
	for int64(len(data)) > off {
		rec, next, status := readFrame(data, off)
		switch status {
		case frameOK:
			latest, off, count = rec, next, count+1
		case frameTruncated:
			return latest, off, count, nil
		default: // frameCorrupt
			return nil, 0, 0, fmt.Errorf("%w at offset %d in %s", ErrCorrupt, off, path)
		}
	}
	return latest, off, count, nil
}

type frameStatus int

const (
	frameOK frameStatus = iota
	frameTruncated
	frameCorrupt
)

// readFrame decodes the frame starting at off: uvarint body length,
// 4-byte CRC32 (IEEE) of the body, gob body. A frame that runs past
// the end of data is truncated (crash footprint); a frame whose length
// is implausible or whose body fails the checksum or decode is
// corrupt.
func readFrame(data []byte, off int64) (*Record, int64, frameStatus) {
	size, n := binary.Uvarint(data[off:])
	if n == 0 {
		return nil, 0, frameTruncated
	}
	if n < 0 || size > maxFrame {
		return nil, 0, frameCorrupt
	}
	body := off + int64(n) + 4
	end := body + int64(size)
	if end > int64(len(data)) {
		return nil, 0, frameTruncated
	}
	sum := binary.LittleEndian.Uint32(data[off+int64(n) : body])
	if crc32.ChecksumIEEE(data[body:end]) != sum {
		return nil, 0, frameCorrupt
	}
	var rec Record
	if err := gob.NewDecoder(bytes.NewReader(data[body:end])).Decode(&rec); err != nil {
		return nil, 0, frameCorrupt
	}
	return &rec, end, frameOK
}

// encodeFrame renders one record as a complete frame.
func encodeFrame(rec *Record) ([]byte, error) {
	var body bytes.Buffer
	if err := gob.NewEncoder(&body).Encode(rec); err != nil {
		return nil, fmt.Errorf("wal: encode: %w", err)
	}
	var lenb [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(lenb[:], uint64(body.Len()))
	frame := make([]byte, 0, n+4+body.Len())
	frame = append(frame, lenb[:n]...)
	var sumb [4]byte
	binary.LittleEndian.PutUint32(sumb[:], crc32.ChecksumIEEE(body.Bytes()))
	frame = append(frame, sumb[:]...)
	return append(frame, body.Bytes()...), nil
}

// Latest returns a copy of the last durable record, or nil for an
// empty log.
func (w *WAL) Latest() *Record {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.latest == nil {
		return nil
	}
	rec := *w.latest
	if rec.HighQC != nil {
		rec.HighQC = rec.HighQC.Clone()
	}
	if len(rec.Suffix) > 0 {
		// Blocks are immutable once built; copying the slice header is
		// enough to decouple the caller from later appends.
		rec.Suffix = append([]*types.Block(nil), rec.Suffix...)
	}
	return &rec
}

// Append makes rec the durable safety state. In fsync mode it returns
// only once the record is on stable storage — callers send the vote or
// timeout the record covers strictly after Append returns nil.
func (w *WAL) Append(rec Record) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return errors.New("wal: closed")
	}
	frame, err := encodeFrame(&rec)
	if err != nil {
		return err
	}
	if len(frame) > maxFrame {
		// A pathologically deep uncommitted suffix (views certifying
		// without committing for a long stretch) can outgrow the frame
		// bound. Drop the blocks and keep the views and certificate —
		// a written frame must never be one Open would call corrupt.
		rec.Suffix = nil
		if frame, err = encodeFrame(&rec); err != nil {
			return err
		}
	}
	if _, err := w.f.Write(frame); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	if w.sync {
		if err := w.f.Sync(); err != nil {
			return fmt.Errorf("wal: sync: %w", err)
		}
	}
	cp := rec
	if cp.HighQC != nil {
		cp.HighQC = cp.HighQC.Clone()
	}
	w.latest = &cp
	w.sinceCompact++
	if w.sinceCompact >= compactEvery {
		// Best-effort: a failed compaction only means the file stays
		// larger than one record; the append above is already durable.
		_ = w.compactLocked()
	}
	return nil
}

// compactLocked rewrites the file down to the single live record,
// atomically (write tmp, sync, rename), and swaps the handle onto the
// new file.
func (w *WAL) compactLocked() error {
	var frame []byte
	if w.latest != nil {
		var err error
		if frame, err = encodeFrame(w.latest); err != nil {
			return err
		}
	}
	tmp := w.path + ".tmp"
	tf, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("wal: compact: %w", err)
	}
	if _, err := tf.Write(frame); err != nil {
		tf.Close()
		os.Remove(tmp)
		return fmt.Errorf("wal: compact: %w", err)
	}
	if err := tf.Sync(); err != nil {
		tf.Close()
		os.Remove(tmp)
		return fmt.Errorf("wal: compact: %w", err)
	}
	if err := os.Rename(tmp, w.path); err != nil {
		tf.Close()
		os.Remove(tmp)
		return fmt.Errorf("wal: compact: %w", err)
	}
	// Make the rename itself durable before retiring the old handle.
	if w.sync {
		if dir, derr := os.Open(filepath.Dir(w.path)); derr == nil {
			_ = dir.Sync()
			dir.Close()
		}
	}
	old := w.f
	w.f = tf
	old.Close()
	w.sinceCompact = 0
	return nil
}

// Close releases the file handle. The log stays valid on disk.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	return w.f.Close()
}

// Path returns the log's file path.
func (w *WAL) Path() string {
	return w.path
}

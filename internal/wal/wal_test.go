package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"github.com/bamboo-bft/bamboo/internal/types"
)

func testQC(view types.View) *types.QC {
	return &types.QC{
		View:    view,
		BlockID: types.Hash{byte(view), 0xab},
		Signers: []types.NodeID{1, 2, 3},
		Sigs:    [][]byte{{1}, {2}, {3}},
	}
}

func testRecord(view types.View) Record {
	qc := testQC(view)
	return Record{
		CurView:     view,
		LastVoted:   view,
		Preferred:   view - 1,
		LastTimeout: view - 2,
		HighQC:      qc,
		Suffix: []*types.Block{
			{View: view - 1, Proposer: 2, Parent: types.Hash{0x01}, QC: testQC(view - 2),
				Payload: []types.Transaction{{ID: types.TxID{Client: 7, Seq: 1}, Command: []byte("x")}}},
			{View: view, Proposer: 3, Parent: types.Hash{0x02}, QC: testQC(view - 1)},
		},
	}
}

func TestAppendLatestReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "safety.wal")
	w, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if w.Latest() != nil {
		t.Fatal("fresh log has a record")
	}
	for v := types.View(3); v <= 12; v++ {
		if err := w.Append(testRecord(v)); err != nil {
			t.Fatal(err)
		}
	}
	rec := w.Latest()
	if rec == nil || rec.CurView != 12 || rec.LastVoted != 12 || rec.Preferred != 11 {
		t.Fatalf("latest = %+v, want the view-12 record", rec)
	}
	if rec.HighQC == nil || rec.HighQC.View != 12 || len(rec.HighQC.Sigs) != 3 {
		t.Fatalf("latest HighQC = %+v", rec.HighQC)
	}
	if len(rec.Suffix) != 2 || rec.Suffix[1].View != 12 || len(rec.Suffix[0].Payload) != 1 {
		t.Fatalf("latest suffix = %+v", rec.Suffix)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	rec = w2.Latest()
	if rec == nil || rec.CurView != 12 || len(rec.Suffix) != 2 {
		t.Fatalf("reopened latest = %+v, want the view-12 record", rec)
	}
	// Open compacts a multi-record log down to its single live record.
	if fi, err := os.Stat(path); err != nil {
		t.Fatal(err)
	} else if frame, _ := encodeFrame(rec); fi.Size() != int64(len(frame)) {
		t.Fatalf("file is %d bytes after compaction, one frame is %d", fi.Size(), len(frame))
	}
}

func TestTruncatedTailIsRepaired(t *testing.T) {
	path := filepath.Join(t.TempDir(), "safety.wal")
	w, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(testRecord(5)); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(testRecord(6)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// A crash mid-append leaves a partial frame: any proper prefix of a
	// valid frame must be cut off, not reported as corruption.
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	frame, err := encodeFrame(&Record{CurView: 7, LastVoted: 7})
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{1, 5, len(frame) - 1} {
		if err := os.WriteFile(path, append(append([]byte(nil), full...), frame[:cut]...), 0o644); err != nil {
			t.Fatal(err)
		}
		w, err := Open(path)
		if err != nil {
			t.Fatalf("cut=%d: %v", cut, err)
		}
		rec := w.Latest()
		if rec == nil || rec.CurView != 6 {
			t.Fatalf("cut=%d: latest = %+v, want the view-6 record", cut, rec)
		}
		// The repaired log accepts appends and survives another reopen.
		if err := w.Append(testRecord(8)); err != nil {
			t.Fatalf("cut=%d: append after repair: %v", cut, err)
		}
		w.Close()
	}
}

func TestCorruptFrameIsRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "safety.wal")
	w, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(testRecord(5)); err != nil {
		t.Fatal(err)
	}
	w.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one bit in the body: structurally complete, checksum broken.
	data[len(data)-1] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil {
		t.Fatal("bit flip opened cleanly")
	} else if !bytes.Contains([]byte(err.Error()), []byte("corrupt")) {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestOversizedSuffixIsDropped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "safety.wal")
	w, err := OpenNoSync(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	rec := testRecord(9)
	rec.Suffix = []*types.Block{{View: 8, QC: testQC(7),
		Payload: []types.Transaction{{Command: make([]byte, maxFrame+1)}}}}
	if err := w.Append(rec); err != nil {
		t.Fatal(err)
	}
	got := w.Latest()
	if got == nil || got.CurView != 9 || got.HighQC == nil {
		t.Fatalf("latest = %+v, want views and certificate intact", got)
	}
	// The views and certificate stay; only the blocks are shed — and the
	// written frame must still be readable.
	w2, err := OpenNoSync(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if rec := w2.Latest(); rec == nil || rec.CurView != 9 || len(rec.Suffix) != 0 {
		t.Fatalf("reopened latest = %+v, want suffix-free view-9 record", rec)
	}
}

// FuzzWAL feeds arbitrary bytes to Open: whatever is on disk, Open
// must either restore a record or reject cleanly — never panic, and
// never leave a log that cannot take appends.
func FuzzWAL(f *testing.F) {
	f.Add([]byte{})
	if frame, err := encodeFrame(&Record{CurView: 3, LastVoted: 3, HighQC: testQC(3)}); err == nil {
		f.Add(frame)
		f.Add(frame[:len(frame)/2])
		f.Add(append(frame, frame...))
		flipped := append([]byte(nil), frame...)
		flipped[len(flipped)-2] ^= 1
		f.Add(flipped)
	}
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.wal")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		w, err := OpenNoSync(path)
		if err != nil {
			return // clean rejection
		}
		defer w.Close()
		w.Latest()
		if err := w.Append(testRecord(42)); err != nil {
			t.Fatalf("append to recovered log: %v", err)
		}
		if rec := w.Latest(); rec == nil || rec.CurView != 42 {
			t.Fatalf("latest after append = %+v", rec)
		}
	})
}

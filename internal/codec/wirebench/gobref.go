// Package wirebench measures the binary wire codec against the gob
// implementation it replaced. The gob codec lives on here — verbatim
// but renamed — as the reference point for the CI perf gate: the
// BENCH_wire.json report proves, on every run, that the hand-rolled
// format still beats the frame layout the repo started with, rather
// than asserting it once and trusting history.
package wirebench

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"sync"

	"github.com/bamboo-bft/bamboo/internal/codec"
	"github.com/bamboo-bft/bamboo/internal/types"
)

// errGobFrameTooLarge mirrors the old codec's ErrFrameTooLarge; after
// it the gob stream is unusable (its type dictionary may have advanced
// past what the peer saw), which is exactly the coupling the binary
// codec removed.
var errGobFrameTooLarge = errors.New("wirebench: gob frame exceeds MaxFrame")

var gobRegisterOnce sync.Once

// registerGobTypes makes every wire message known to gob, as the old
// codec did lazily from its constructors.
func registerGobTypes() {
	gobRegisterOnce.Do(func() {
		gob.Register(types.ProposalMsg{})
		gob.Register(types.VoteMsg{})
		gob.Register(types.TimeoutMsg{})
		gob.Register(types.TCMsg{})
		gob.Register(types.FetchMsg{})
		gob.Register(types.SyncRequestMsg{})
		gob.Register(types.SyncResponseMsg{})
		gob.Register(types.SnapshotRequestMsg{})
		gob.Register(types.SnapshotManifestMsg{})
		gob.Register(types.SnapshotChunkMsg{})
		gob.Register(types.RequestMsg{})
		gob.Register(types.PayloadBatchMsg{})
		gob.Register(types.ReplyMsg{})
		gob.Register(types.QueryMsg{})
		gob.Register(types.QueryReplyMsg{})
		gob.Register(types.SlowMsg{})
	})
}

// gobShrinkCap is the staging-buffer capacity above which the old
// encoder released its backing array after a frame.
const gobShrinkCap = 1 << 20

// GobEncoder is the retired production encoder: gob bytes behind a
// uvarint length prefix, one Flush per Encode.
type GobEncoder struct {
	w   *bufio.Writer
	buf bytes.Buffer
	enc *gob.Encoder
	hdr [binary.MaxVarintLen64]byte
}

// NewGobEncoder returns a GobEncoder writing to w.
func NewGobEncoder(w io.Writer) *GobEncoder {
	registerGobTypes()
	e := &GobEncoder{w: bufio.NewWriter(w)}
	e.enc = gob.NewEncoder(&e.buf)
	return e
}

// Encode writes one envelope and returns the bytes that hit the
// stream.
func (e *GobEncoder) Encode(env codec.Envelope) (int, error) {
	e.buf.Reset()
	if err := e.enc.Encode(&env); err != nil {
		return 0, fmt.Errorf("wirebench: gob encode: %w", err)
	}
	if e.buf.Len() > codec.MaxFrame {
		return 0, fmt.Errorf("wirebench: %d-byte message: %w", e.buf.Len(), errGobFrameTooLarge)
	}
	n := binary.PutUvarint(e.hdr[:], uint64(e.buf.Len()))
	if _, err := e.w.Write(e.hdr[:n]); err != nil {
		return 0, err
	}
	if _, err := e.w.Write(e.buf.Bytes()); err != nil {
		return 0, err
	}
	if err := e.w.Flush(); err != nil {
		return 0, err
	}
	written := n + e.buf.Len()
	if e.buf.Cap() > gobShrinkCap {
		e.buf = bytes.Buffer{}
	}
	return written, nil
}

// GobDecoder is the retired production decoder.
type GobDecoder struct {
	dec *gob.Decoder
}

// NewGobDecoder returns a GobDecoder reading from r.
func NewGobDecoder(r io.Reader) *GobDecoder {
	registerGobTypes()
	return &GobDecoder{dec: gob.NewDecoder(newGobFrameReader(r))}
}

// Decode reads one envelope.
func (d *GobDecoder) Decode() (codec.Envelope, error) {
	var env codec.Envelope
	if err := d.dec.Decode(&env); err != nil {
		if err == io.EOF {
			return env, io.EOF
		}
		return env, fmt.Errorf("wirebench: gob decode: %w", err)
	}
	return env, nil
}

// gobFrameReader strips the uvarint length prefixes, presenting the
// concatenated frame payloads as one plain stream while enforcing
// MaxFrame per frame.
type gobFrameReader struct {
	r         *bufio.Reader
	remaining int64
}

func newGobFrameReader(r io.Reader) *gobFrameReader {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReader(r)
	}
	return &gobFrameReader{r: br}
}

func (f *gobFrameReader) Read(p []byte) (int, error) {
	for f.remaining == 0 {
		size, err := binary.ReadUvarint(f.r)
		if err != nil {
			return 0, err
		}
		if size > codec.MaxFrame {
			return 0, fmt.Errorf("wirebench: %d-byte frame announced: %w", size, errGobFrameTooLarge)
		}
		f.remaining = int64(size)
	}
	if int64(len(p)) > f.remaining {
		p = p[:f.remaining]
	}
	n, err := f.r.Read(p)
	f.remaining -= int64(n)
	return n, err
}

package wirebench

import (
	"github.com/bamboo-bft/bamboo/internal/types"
)

// Fixture is one benchmark workload: a named message representative of
// hot-path traffic.
type Fixture struct {
	Name string
	Msg  any
}

// sigSize matches ed25519 signature length — the scheme the paper's
// evaluation (and this repo's crypto layer) uses on the hot path.
const sigSize = 64

// benchQC builds a certificate as a 4-replica deployment produces it:
// quorum of 3 signers with ed25519-sized signatures.
func benchQC(view types.View, id types.Hash) *types.QC {
	qc := &types.QC{View: view, BlockID: id}
	for i := 0; i < 3; i++ {
		qc.Signers = append(qc.Signers, types.NodeID(i+1))
		sig := make([]byte, sigSize)
		for j := range sig {
			sig[j] = byte(i + j)
		}
		qc.Sigs = append(qc.Sigs, sig)
	}
	return qc
}

// benchTxs builds n deterministic transactions with cmd-byte commands.
func benchTxs(n, cmd int) []types.Transaction {
	txs := make([]types.Transaction, n)
	for i := range txs {
		command := make([]byte, cmd)
		for j := range command {
			command[j] = byte(i ^ j)
		}
		txs[i] = types.Transaction{
			ID:             types.TxID{Client: uint64(i%16 + 1), Seq: uint64(i)},
			Command:        command,
			SubmitUnixNano: int64(1_700_000_000_000_000_000 + i),
		}
	}
	return txs
}

// Fixtures returns the hot-path message mix the wire benchmarks
// measure: the paper's default block (400 transactions of 128-byte
// payload), the digest-mode variant of the same proposal, the vote
// that certifies it, and the payload batch that replicates its
// transactions off the critical path. Together these are the bytes a
// replica actually moves per committed block.
func Fixtures() []Fixture {
	const blockSize = 400
	txs := benchTxs(blockSize, 128)
	full := &types.Block{
		View:     42,
		Proposer: 2,
		Parent:   types.Hash{0xAB},
		QC:       benchQC(41, types.Hash{0xAB}),
		Payload:  txs,
		Sig:      make([]byte, sigSize),
	}
	digest := &types.Block{
		View:     42,
		Proposer: 2,
		Parent:   types.Hash{0xAB},
		QC:       benchQC(41, types.Hash{0xAB}),
		Digest:   types.Hash{0xCD},
		Sig:      make([]byte, sigSize),
	}
	ids := make([]types.TxID, blockSize)
	for i := range ids {
		ids[i] = types.TxID{Client: uint64(i%16 + 1), Seq: uint64(i)}
	}
	return []Fixture{
		{"proposal-400", types.ProposalMsg{Block: full}},
		{"proposal-digest", types.ProposalMsg{Block: digest, PayloadIDs: ids}},
		{"vote", types.VoteMsg{Vote: &types.Vote{
			View: 42, BlockID: types.Hash{0xEF}, Voter: 3, Sig: make([]byte, sigSize),
		}}},
		{"payload-batch-400", types.PayloadBatchMsg{Txs: txs}},
	}
}

package wirebench

import (
	"bytes"
	"fmt"
	"io"
	"runtime"
	"testing"

	"github.com/bamboo-bft/bamboo/internal/codec"
)

// The benchmark bodies below are shared between `go test -bench`
// (internal/codec's Benchmark{Encode,Decode}PerMessage sub-benchmarks)
// and the programmatic Run used by `bamboo-bench -wire`, so the CI
// perf gate and an engineer's ad-hoc -bench run measure identical
// loops.

// BenchEncodeWire measures the binary codec encoding msg, one frame
// per op, into a discarded stream (bufio flushes as it fills — the
// write-coalescing path, not a syscall per message).
func BenchEncodeWire(b *testing.B, msg any) {
	enc := codec.NewEncoder(io.Discard)
	env := codec.Envelope{From: 1, Msg: msg}
	n, ok := codec.EncodedSize(msg)
	if !ok {
		b.Fatalf("%T not in wire registry", msg)
	}
	b.SetBytes(int64(n))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := enc.Encode(env); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if err := enc.Flush(); err != nil {
		b.Fatal(err)
	}
}

// loopReader serves one encoded frame cyclically, forever. The binary
// codec's frames are stateless, so a single decoder can drain it —
// there is deliberately no per-iteration decoder setup in the loop.
type loopReader struct {
	data []byte
	off  int
}

func (l *loopReader) Read(p []byte) (int, error) {
	if l.off == len(l.data) {
		l.off = 0
	}
	n := copy(p, l.data[l.off:])
	l.off += n
	return n, nil
}

// BenchDecodeWire measures the binary codec decoding msg, one frame
// per op, from an endless stream of identical frames.
func BenchDecodeWire(b *testing.B, msg any) {
	var buf bytes.Buffer
	enc := codec.NewEncoder(&buf)
	if _, err := enc.Encode(codec.Envelope{From: 1, Msg: msg}); err != nil {
		b.Fatal(err)
	}
	if err := enc.Flush(); err != nil {
		b.Fatal(err)
	}
	dec := codec.NewDecoder(&loopReader{data: buf.Bytes()})
	b.SetBytes(int64(buf.Len()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dec.Decode(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchEncodeGob measures the reference gob codec encoding msg. The
// encoder lives across iterations, so gob's per-stream type dictionary
// is amortized exactly as it was on a long-lived connection.
func BenchEncodeGob(b *testing.B, msg any) {
	enc := NewGobEncoder(io.Discard)
	env := codec.Envelope{From: 1, Msg: msg}
	// Steady-state frame size: the first frame also carries the type
	// dictionary, so size the throughput figure from a second frame.
	b.SetBytes(int64(gobSteadyFrameSize(msg)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := enc.Encode(env); err != nil {
			b.Fatal(err)
		}
	}
}

// gobStreamBudget bounds the pre-encoded stream BenchDecodeGob decodes
// from; the stream is recycled (fresh decoder, dictionary re-parsed)
// when it runs out, amortized over the frames that fit the budget.
const gobStreamBudget = 4 << 20

// BenchDecodeGob measures the reference gob codec decoding msg from a
// pre-encoded multi-frame stream. Gob frames are stream-stateful, so
// the decoder must be rebuilt whenever the stream restarts — that
// periodic cost is part of the measurement, amortized over at least 16
// frames (more for small messages), as on a real connection carrying
// bounded batches.
func BenchDecodeGob(b *testing.B, msg any) {
	env := codec.Envelope{From: 1, Msg: msg}
	var stream bytes.Buffer
	enc := NewGobEncoder(&stream)
	frames := 0
	for stream.Len() < gobStreamBudget || frames < 16 {
		if _, err := enc.Encode(env); err != nil {
			b.Fatal(err)
		}
		frames++
	}
	data := stream.Bytes()
	dec := NewGobDecoder(bytes.NewReader(data))
	left := frames
	b.SetBytes(int64(gobSteadyFrameSize(msg)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if left == 0 {
			dec = NewGobDecoder(bytes.NewReader(data))
			left = frames
		}
		if _, err := dec.Decode(); err != nil {
			b.Fatal(err)
		}
		left--
	}
}

// gobSteadyFrameSize returns the on-wire size of msg's gob frame once
// the stream's type dictionary has been sent.
func gobSteadyFrameSize(msg any) int {
	enc := NewGobEncoder(io.Discard)
	env := codec.Envelope{From: 1, Msg: msg}
	if _, err := enc.Encode(env); err != nil {
		return 0
	}
	n, err := enc.Encode(env)
	if err != nil {
		return 0
	}
	return n
}

// Case is one measured (fixture, codec, op) cell of the report.
type Case struct {
	Fixture         string  `json:"fixture"`
	Codec           string  `json:"codec"` // "wire" or "gob"
	Op              string  `json:"op"`    // "encode" or "decode"
	FrameBytes      int     `json:"frame_bytes"`
	NsPerOp         float64 `json:"ns_per_op"`
	MBPerSec        float64 `json:"mb_per_s"`
	AllocsPerOp     int64   `json:"allocs_per_op"`
	AllocBytesPerOp int64   `json:"alloc_bytes_per_op"`
	N               int     `json:"n"`
}

// Summary aggregates the hot-path mix: total nanoseconds and
// allocations to encode+decode one of each fixture — one committed
// block's worth of wire work — under each codec, and the resulting
// ratios the CI gate checks.
type Summary struct {
	WireNsPerMix     float64 `json:"wire_ns_per_mix"`
	GobNsPerMix      float64 `json:"gob_ns_per_mix"`
	SpeedupX         float64 `json:"speedup_x"`
	WireAllocsPerMix int64   `json:"wire_allocs_per_mix"`
	GobAllocsPerMix  int64   `json:"gob_allocs_per_mix"`
	AllocRatioX      float64 `json:"alloc_ratio_x"`
}

// Report is the BENCH_wire.json payload.
type Report struct {
	GoVersion string  `json:"go_version"`
	GOOS      string  `json:"goos"`
	GOARCH    string  `json:"goarch"`
	Cases     []Case  `json:"cases"`
	Summary   Summary `json:"summary"`
}

// Run benchmarks every fixture under both codecs and both directions,
// returning the structured report. Progress lines go to w (pass nil to
// run quietly); each cell takes the standard testing.Benchmark
// auto-sizing time (~1s).
func Run(w io.Writer) *Report {
	rep := &Report{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
	}
	type bench struct {
		codec string
		op    string
		fn    func(*testing.B, any)
	}
	benches := []bench{
		{"wire", "encode", BenchEncodeWire},
		{"wire", "decode", BenchDecodeWire},
		{"gob", "encode", BenchEncodeGob},
		{"gob", "decode", BenchDecodeGob},
	}
	for _, fix := range Fixtures() {
		wireSize, _ := codec.EncodedSize(fix.Msg)
		for _, bn := range benches {
			frame := wireSize
			if bn.codec == "gob" {
				frame = gobSteadyFrameSize(fix.Msg)
			}
			msg := fix.Msg
			r := testing.Benchmark(func(b *testing.B) { bn.fn(b, msg) })
			nsPerOp := float64(r.T.Nanoseconds()) / float64(r.N)
			c := Case{
				Fixture:         fix.Name,
				Codec:           bn.codec,
				Op:              bn.op,
				FrameBytes:      frame,
				NsPerOp:         nsPerOp,
				MBPerSec:        float64(frame) / nsPerOp * 1e3,
				AllocsPerOp:     r.AllocsPerOp(),
				AllocBytesPerOp: r.AllocedBytesPerOp(),
				N:               r.N,
			}
			rep.Cases = append(rep.Cases, c)
			if w != nil {
				fmt.Fprintf(w, "%-18s %-4s %-6s %9.0f ns/op %8.1f MB/s %6d allocs/op %9d B/op\n",
					c.Fixture, c.Codec, c.Op, c.NsPerOp, c.MBPerSec, c.AllocsPerOp, c.AllocBytesPerOp)
			}
		}
	}
	for _, c := range rep.Cases {
		switch c.Codec {
		case "wire":
			rep.Summary.WireNsPerMix += c.NsPerOp
			rep.Summary.WireAllocsPerMix += c.AllocsPerOp
		case "gob":
			rep.Summary.GobNsPerMix += c.NsPerOp
			rep.Summary.GobAllocsPerMix += c.AllocsPerOp
		}
	}
	if rep.Summary.WireNsPerMix > 0 {
		rep.Summary.SpeedupX = rep.Summary.GobNsPerMix / rep.Summary.WireNsPerMix
	}
	if rep.Summary.WireAllocsPerMix > 0 {
		rep.Summary.AllocRatioX = float64(rep.Summary.GobAllocsPerMix) / float64(rep.Summary.WireAllocsPerMix)
	}
	return rep
}

package codec

import (
	"bufio"
	"bytes"
	"encoding/hex"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"github.com/bamboo-bft/bamboo/internal/types"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/golden_frames.txt from the current encoder")

// registryFixtures returns one deterministic, fully-populated message
// per wire tag. Blocks are built fresh per call and their IDs are
// never materialized, so reflect.DeepEqual sees identical lazy-hash
// state on both sides of a round trip.
func registryFixtures() []struct {
	Name string
	Tag  types.WireTag
	Msg  any
} {
	qc := func() *types.QC {
		return &types.QC{
			View:    8,
			BlockID: types.Hash{0xab, 1, 2, 3},
			Signers: []types.NodeID{1, 2, 3},
			Sigs:    [][]byte{{0x11, 0x12}, {0x21}, {0x31, 0x32, 0x33}},
		}
	}
	block := func() *types.Block {
		return &types.Block{
			View:     9,
			Proposer: 2,
			Parent:   types.Hash{0xab, 1, 2, 3},
			QC:       qc(),
			Payload: []types.Transaction{
				{ID: types.TxID{Client: 4, Seq: 2}, Command: []byte("put k v"), SubmitUnixNano: 12345},
				{ID: types.TxID{Client: 4, Seq: 3}, Command: []byte("del k"), SubmitUnixNano: -7},
			},
			Sig: []byte{0xaa, 0xbb},
		}
	}
	tc := func() *types.TC {
		return &types.TC{
			View:    10,
			Signers: []types.NodeID{2, 3, 4},
			Sigs:    [][]byte{{1}, {2}, {3}},
			HighQC:  qc(),
		}
	}
	return []struct {
		Name string
		Tag  types.WireTag
		Msg  any
	}{
		{"proposal", types.TagProposal, types.ProposalMsg{Block: block(), TC: tc()}},
		{"proposal-digest", types.TagProposal, types.ProposalMsg{
			Block:      &types.Block{View: 9, Proposer: 2, Parent: types.Hash{1}, QC: qc(), Digest: types.Hash{0xd1, 0xd2}, Sig: []byte{0xcc}},
			PayloadIDs: []types.TxID{{Client: 4, Seq: 2}, {Client: 4, Seq: 3}},
		}},
		{"vote", types.TagVote, types.VoteMsg{Vote: &types.Vote{View: 2, BlockID: types.Hash{3}, Voter: 1, Sig: []byte{1, 2, 3}}}},
		{"timeout", types.TagTimeout, types.TimeoutMsg{Timeout: &types.Timeout{View: 2, Voter: 1, HighQC: qc(), Sig: []byte{9}}}},
		{"tc", types.TagTC, types.TCMsg{TC: tc()}},
		{"fetch", types.TagFetch, types.FetchMsg{BlockID: types.Hash{0xfe, 0xfd}}},
		{"sync-request", types.TagSyncRequest, types.SyncRequestMsg{From: 17, To: 80}},
		{"sync-response", types.TagSyncResponse, types.SyncResponseMsg{From: 41, Blocks: []*types.Block{block(), block()}, Head: 99, Floor: 12}},
		{"snapshot-request", types.TagSnapshotRequest, types.SnapshotRequestMsg{Height: 64, Chunk: 3}},
		{"snapshot-manifest", types.TagSnapshotManifest, types.SnapshotManifestMsg{
			Height: 64, Block: block(), QC: qc(), StateDigest: types.Hash{0x5d},
			TotalSize: 1 << 20, ChunkSize: 256 << 10, ChunkDigests: []types.Hash{{1}, {2}, {3}, {4}},
		}},
		{"snapshot-chunk", types.TagSnapshotChunk, types.SnapshotChunkMsg{Height: 64, Chunk: 3, Data: []byte{0xde, 0xad, 0xbe, 0xef}}},
		{"request", types.TagRequest, types.RequestMsg{Tx: types.Transaction{ID: types.TxID{Client: 1, Seq: 2}, Command: []byte("x"), SubmitUnixNano: 99}}},
		{"payload-batch", types.TagPayloadBatch, types.PayloadBatchMsg{Txs: []types.Transaction{
			{ID: types.TxID{Client: 1, Seq: 1}, Command: []byte("a"), SubmitUnixNano: 7},
			{ID: types.TxID{Client: 1, Seq: 2}, Command: []byte("bb")},
		}}},
		{"reply", types.TagReply, types.ReplyMsg{TxID: types.TxID{Client: 1, Seq: 2}, View: 7, BlockID: types.Hash{1}, Rejected: true}},
		{"query", types.TagQuery, types.QueryMsg{Height: 11}},
		{"query-reply", types.TagQueryReply, types.QueryReplyMsg{CommittedHeight: 11, CommittedView: 12, BlockHash: types.Hash{2}}},
		{"slow", types.TagSlow, types.SlowMsg{DelayMeanNanos: 100, DelayStdNanos: -10}},
		// Nil pointers inside messages must travel, not crash: a
		// hostile or buggy peer can always hand the decoder absence.
		{"proposal-nil", types.TagProposal, types.ProposalMsg{}},
		{"vote-nil", types.TagVote, types.VoteMsg{}},
		{"timeout-nil", types.TagTimeout, types.TimeoutMsg{}},
		{"tc-nil", types.TagTC, types.TCMsg{}},
		{"sync-response-empty", types.TagSyncResponse, types.SyncResponseMsg{From: 41, Head: 12, Floor: 13}},
	}
}

// TestRegistryCoversAllTags: every tag constant has at least one
// fixture, and every fixture's message maps back to its tag — the
// guard that a new message type cannot land without entering the
// round-trip, size, and golden suites.
func TestRegistryCoversAllTags(t *testing.T) {
	seen := map[types.WireTag]bool{}
	for _, f := range registryFixtures() {
		tag, ok := types.WireTagOf(f.Msg)
		if !ok {
			t.Fatalf("%s: message %T has no wire tag", f.Name, f.Msg)
		}
		if tag != f.Tag {
			t.Fatalf("%s: fixture declares tag %d, WireTagOf says %d", f.Name, f.Tag, tag)
		}
		seen[tag] = true
	}
	for tag := types.TagProposal; tag <= types.TagSlow; tag++ {
		if !seen[tag] {
			t.Errorf("tag %d has no fixture", tag)
		}
	}
}

// TestRegistryRoundTrip: encode → decode must reproduce every
// registered message exactly (reflect.DeepEqual), with the decoder
// normalizing empty byte fields to nil just like the fixture set.
func TestRegistryRoundTrip(t *testing.T) {
	for _, f := range registryFixtures() {
		var buf bytes.Buffer
		encodeFrame(t, &buf, Envelope{From: 3, Msg: f.Msg})
		env, err := NewDecoder(&buf).Decode()
		if err != nil {
			t.Errorf("%s: decode: %v", f.Name, err)
			continue
		}
		// Compare against a freshly built fixture: decoding must not
		// have mutated the original (blocks cache their IDs lazily).
		want := registryFixtures()[indexOf(t, f.Name)].Msg
		if !reflect.DeepEqual(env.Msg, want) {
			t.Errorf("%s: round trip mangled\n got: %#v\nwant: %#v", f.Name, env.Msg, want)
		}
	}
}

func indexOf(t *testing.T, name string) int {
	t.Helper()
	for i, f := range registryFixtures() {
		if f.Name == name {
			return i
		}
	}
	t.Fatalf("fixture %q missing", name)
	return -1
}

// TestEncodedSizeIsExact: EncodedSize must equal the bytes Encode
// actually produces for every registered message — it is what the
// in-process switch charges against modeled bandwidth, so estimate
// drift would desynchronize the two backends' byte accounting.
func TestEncodedSizeIsExact(t *testing.T) {
	for _, f := range registryFixtures() {
		want, ok := EncodedSize(f.Msg)
		if !ok {
			t.Fatalf("%s: message %T not sized", f.Name, f.Msg)
		}
		var buf bytes.Buffer
		n := encodeFrame(t, &buf, Envelope{From: 1, Msg: f.Msg})
		if n != want || buf.Len() != want {
			t.Errorf("%s: EncodedSize %d, Encode reported %d, stream holds %d", f.Name, want, n, buf.Len())
		}
	}
}

// TestEncodedSizeUnknownType: unregistered values are not sized — the
// network layer falls back to its own heuristics for them.
func TestEncodedSizeUnknownType(t *testing.T) {
	if _, ok := EncodedSize("not a message"); ok {
		t.Fatal("strings must not be sized")
	}
	if _, ok := EncodedSize(struct{ X int }{1}); ok {
		t.Fatal("anonymous structs must not be sized")
	}
}

// TestGoldenFrames pins the wire format: the hex encoding of every
// fixture is committed, so any byte-level change — reordered fields,
// width changes, a renumbered tag — fails this test and forces a
// deliberate WireVersion decision instead of a silent incompatibility.
// Regenerate with `go test ./internal/codec -run TestGoldenFrames -update`.
func TestGoldenFrames(t *testing.T) {
	path := filepath.Join("testdata", "golden_frames.txt")
	var lines []string
	for _, f := range registryFixtures() {
		var buf bytes.Buffer
		encodeFrame(t, &buf, Envelope{From: 3, Msg: f.Msg})
		lines = append(lines, fmt.Sprintf("%s %s", f.Name, hex.EncodeToString(buf.Bytes())))
	}
	got := strings.Join(lines, "\n") + "\n"
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden file missing (run with -update to create): %v", err)
	}
	if got != string(want) {
		for i, line := range lines {
			wantLines := strings.Split(strings.TrimRight(string(want), "\n"), "\n")
			if i >= len(wantLines) || line != wantLines[i] {
				t.Errorf("wire bytes changed for fixture %q", strings.SplitN(line, " ", 2)[0])
			}
		}
		t.Fatal("golden frames diverged: bump WireVersion or re-examine the change, then -update")
	}
	// The committed bytes must also still decode to the fixtures —
	// golden coverage of the decoder, not just the encoder.
	for i, line := range strings.Split(strings.TrimRight(string(want), "\n"), "\n") {
		parts := strings.SplitN(line, " ", 2)
		raw, err := hex.DecodeString(parts[1])
		if err != nil {
			t.Fatalf("golden line %d: %v", i, err)
		}
		env, err := NewDecoder(bytes.NewReader(raw)).Decode()
		if err != nil {
			t.Fatalf("golden %s: decode: %v", parts[0], err)
		}
		if !reflect.DeepEqual(env.Msg, registryFixtures()[i].Msg) {
			t.Errorf("golden %s: decoded message diverged from fixture", parts[0])
		}
	}
}

// TestForwardCompatTrailingBytes: within one WireVersion, new fields
// append — an older decoder must ignore trailing body bytes it does
// not understand instead of rejecting the frame.
func TestForwardCompatTrailingBytes(t *testing.T) {
	var buf bytes.Buffer
	encodeFrame(t, &buf, Envelope{From: 1, Msg: types.QueryMsg{Height: 11}})
	frame := buf.Bytes()
	// Splice four extra bytes into the body and patch the length.
	extended := append([]byte(nil), frame...)
	extended = append(extended, 0xCA, 0xFE, 0xBA, 0xBE)
	extended[0] += 4 // payload length, little-endian low byte (no carry at this size)
	env, err := NewDecoder(bytes.NewReader(extended)).Decode()
	if err != nil {
		t.Fatalf("appended fields must not break old decoders: %v", err)
	}
	if q, ok := env.Msg.(types.QueryMsg); !ok || q.Height != 11 {
		t.Fatalf("message mangled: %+v", env)
	}
}

// TestDecoderReusesBufioReader: handing the decoder an existing
// bufio.Reader must not double-buffer (the TCP read path wraps the
// socket once).
func TestDecoderReusesBufioReader(t *testing.T) {
	var buf bytes.Buffer
	encodeFrame(t, &buf, Envelope{From: 1, Msg: types.QueryMsg{Height: 1}})
	br := bufio.NewReader(&buf)
	if _, err := NewDecoder(br).Decode(); err != nil {
		t.Fatal(err)
	}
}

package codec

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzDecode feeds the decoder hostile byte streams. The seed corpus
// is one valid frame per registered message plus truncations and bit
// flips of each; the fuzzer mutates from there. The properties under
// test:
//
//   - hostile bytes never panic the decoder;
//   - every Decode makes progress (a wedged frame reader would hang
//     the target and trip the fuzzer's timeout);
//   - recoverable damage costs one frame — the decoder keeps serving
//     the stream afterwards;
//   - anything that decodes re-encodes canonically and decodes again
//     to the same message (no lossy or ambiguous parses survive).
//
// Allocation bounding (a hostile count cannot pre-allocate past the
// bytes actually received) is enforced structurally by reader.count
// and the frame-length arena; see wire.go.
func FuzzDecode(f *testing.F) {
	for _, fix := range registryFixtures() {
		var buf bytes.Buffer
		enc := NewEncoder(&buf)
		if _, err := enc.Encode(Envelope{From: 3, Msg: fix.Msg}); err != nil {
			f.Fatal(err)
		}
		if err := enc.Flush(); err != nil {
			f.Fatal(err)
		}
		frame := buf.Bytes()
		f.Add(append([]byte(nil), frame...))
		if len(frame) > 7 {
			f.Add(append([]byte(nil), frame[:len(frame)-3]...))
			f.Add(append([]byte(nil), frame[:5]...))
		}
		for _, pos := range []int{0, 4, 5, 6, len(frame) / 2, len(frame) - 1} {
			flipped := append([]byte(nil), frame...)
			flipped[pos] ^= 0x41
			f.Add(flipped)
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		dec := NewDecoder(bytes.NewReader(data))
		for {
			env, err := dec.Decode()
			if err != nil {
				if Recoverable(err) {
					// Exactly one frame was consumed; the stream must
					// still be servable.
					continue
				}
				return
			}
			// Whatever decoded must re-encode (canonical form is never
			// larger than the received frame) and decode back equal.
			var out bytes.Buffer
			re := NewEncoder(&out)
			if _, err := re.Encode(Envelope{From: env.From, Msg: env.Msg}); err != nil {
				t.Fatalf("re-encode of decoded %T: %v", env.Msg, err)
			}
			if err := re.Flush(); err != nil {
				t.Fatal(err)
			}
			env2, err := NewDecoder(bytes.NewReader(out.Bytes())).Decode()
			if err != nil {
				t.Fatalf("decode of re-encoded %T: %v", env.Msg, err)
			}
			if env2.From != env.From || !reflect.DeepEqual(env2.Msg, env.Msg) {
				t.Fatalf("re-encode round trip diverged for %T", env.Msg)
			}
		}
	})
}

package codec_test

// The benchmark bodies live in the wirebench package so the CI perf
// gate (bamboo-bench -wire, via testing.Benchmark) and these -bench
// entry points measure identical loops. This file is the external test
// package: wirebench imports codec, so in-package benchmarks would be
// an import cycle.

import (
	"testing"

	"github.com/bamboo-bft/bamboo/internal/codec/wirebench"
)

// BenchmarkEncodePerMessage measures one-frame encode cost for the
// hot-path message mix, for the binary wire codec and the retained gob
// reference.
func BenchmarkEncodePerMessage(b *testing.B) {
	for _, fix := range wirebench.Fixtures() {
		b.Run(fix.Name+"/wire", func(b *testing.B) { wirebench.BenchEncodeWire(b, fix.Msg) })
		b.Run(fix.Name+"/gob", func(b *testing.B) { wirebench.BenchEncodeGob(b, fix.Msg) })
	}
}

// BenchmarkDecodePerMessage measures one-frame decode cost for the
// hot-path message mix, for the binary wire codec and the retained gob
// reference.
func BenchmarkDecodePerMessage(b *testing.B) {
	for _, fix := range wirebench.Fixtures() {
		b.Run(fix.Name+"/wire", func(b *testing.B) { wirebench.BenchDecodeWire(b, fix.Msg) })
		b.Run(fix.Name+"/gob", func(b *testing.B) { wirebench.BenchDecodeGob(b, fix.Msg) })
	}
}

// Package codec serializes protocol messages for the TCP transport.
// It wraps encoding/gob with explicit type registration so any message
// defined in internal/types can travel as an interface value, mirroring
// the Paxi-style message-passing layer the paper's framework reuses.
package codec

import (
	"encoding/gob"
	"fmt"
	"io"
	"sync"

	"github.com/bamboo-bft/bamboo/internal/types"
)

// Envelope frames a message with its sender for transports that
// multiplex many logical links over one connection.
type Envelope struct {
	From types.NodeID
	Msg  any
}

var registerOnce sync.Once

// registerTypes makes every wire message known to gob. Called lazily
// by the encoder/decoder constructors (no package init, per style
// guide) and safe to call many times.
func registerTypes() {
	registerOnce.Do(func() {
		gob.Register(types.ProposalMsg{})
		gob.Register(types.VoteMsg{})
		gob.Register(types.TimeoutMsg{})
		gob.Register(types.TCMsg{})
		gob.Register(types.FetchMsg{})
		gob.Register(types.SyncRequestMsg{})
		gob.Register(types.SyncResponseMsg{})
		gob.Register(types.RequestMsg{})
		gob.Register(types.PayloadBatchMsg{})
		gob.Register(types.ReplyMsg{})
		gob.Register(types.QueryMsg{})
		gob.Register(types.QueryReplyMsg{})
		gob.Register(types.SlowMsg{})
	})
}

// Encoder writes envelopes to a stream. It is not safe for concurrent
// use; guard it with the connection's write lock.
type Encoder struct {
	enc *gob.Encoder
}

// NewEncoder returns an Encoder writing to w.
func NewEncoder(w io.Writer) *Encoder {
	registerTypes()
	return &Encoder{enc: gob.NewEncoder(w)}
}

// Encode writes one envelope.
func (e *Encoder) Encode(env Envelope) error {
	if err := e.enc.Encode(&env); err != nil {
		return fmt.Errorf("codec: encode: %w", err)
	}
	return nil
}

// Decoder reads envelopes from a stream.
type Decoder struct {
	dec *gob.Decoder
}

// NewDecoder returns a Decoder reading from r.
func NewDecoder(r io.Reader) *Decoder {
	registerTypes()
	return &Decoder{dec: gob.NewDecoder(r)}
}

// Decode reads one envelope. It returns io.EOF unchanged when the
// stream ends cleanly so callers can distinguish shutdown from damage.
func (d *Decoder) Decode() (Envelope, error) {
	var env Envelope
	if err := d.dec.Decode(&env); err != nil {
		if err == io.EOF {
			return env, io.EOF
		}
		return env, fmt.Errorf("codec: decode: %w", err)
	}
	return env, nil
}

// Package codec serializes protocol messages for the TCP transport
// with a hand-rolled, versioned binary wire format. Every message in
// internal/types encodes as explicit little-endian fields behind a
// fixed frame header, replacing the gob envelopes the transport
// started with: no per-connection type dictionaries, no reflection on
// the hot path, and no per-message allocations beyond the decoded
// message itself (encode and decode stage through pooled buffers).
//
// Frame layout (all integers little-endian):
//
//	offset 0  u32  payload length (bytes after this word, ≤ MaxFrame)
//	offset 4  u8   format version (types.WireVersion)
//	offset 5  u8   message tag (types.WireTag)
//	offset 6  u32  sender NodeID
//	offset 10 ...  message body (see wire.go)
//
// Frames are self-delimiting and stateless, so a malformed or
// oversized frame costs exactly one frame: the decoder consumes it,
// reports a Recoverable error, and the next Decode starts clean at
// the following frame. This is what lets the TCP transport drop one
// message instead of discarding the connection (the gob design had to
// poison the conn because its type dictionary could have advanced).
//
// Decoding is untrusting: every field read is length-checked against
// the frame, slice counts are bounded by the bytes actually present
// before any allocation, and byte fields are carved from one
// frame-sized arena — a hostile peer cannot make the reader allocate
// past MaxFrame per frame, not even transiently.
package codec

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"

	"github.com/bamboo-bft/bamboo/internal/types"
)

// MaxFrame bounds one frame's payload. The largest legitimate
// messages are state-sync batches (a keep window of full blocks) and
// snapshot chunks; 16 MiB leaves an order of magnitude of headroom.
const MaxFrame = 16 << 20

// frameHeader is the fixed prefix before the message body: the u32
// payload length plus the version, tag, and sender fields the length
// covers.
const (
	frameHeader     = 10
	framePayloadMin = frameHeader - 4 // version + tag + sender
)

// Frame-level errors. All of them are Recoverable: the decoder has
// consumed the offending frame (or the encoder has written nothing),
// so the stream remains usable and only one message is lost.
var (
	// ErrFrameTooLarge reports a frame above MaxFrame, on either end.
	ErrFrameTooLarge = errors.New("codec: frame exceeds MaxFrame")
	// ErrBadFrame reports a frame whose body does not parse.
	ErrBadFrame = errors.New("codec: malformed frame")
	// ErrBadVersion reports a frame carrying a wire version this
	// decoder does not speak.
	ErrBadVersion = errors.New("codec: unsupported frame version")
	// ErrUnknownTag reports a frame carrying an unregistered tag.
	ErrUnknownTag = errors.New("codec: unknown message tag")
	// ErrUnknownMessage reports an encode of a type with no wire tag.
	ErrUnknownMessage = errors.New("codec: unregistered message type")
)

// Recoverable reports whether err cost one frame rather than the
// stream: the caller may keep encoding/decoding on the same
// connection after counting the message as dropped. I/O errors and
// truncated streams are not recoverable.
func Recoverable(err error) bool {
	return errors.Is(err, ErrFrameTooLarge) ||
		errors.Is(err, ErrBadFrame) ||
		errors.Is(err, ErrBadVersion) ||
		errors.Is(err, ErrUnknownTag) ||
		errors.Is(err, ErrUnknownMessage)
}

// Envelope frames a message with its sender for transports that
// multiplex many logical links over one connection.
type Envelope struct {
	From types.NodeID
	Msg  any
}

// shrinkCap is the staging-buffer capacity above which the pool drops
// a buffer instead of retaining it: one multi-MiB frame (a deep
// state-sync batch) must not pin its high-water capacity forever.
const shrinkCap = 1 << 20

// bufPool recycles encode staging and decode frame buffers. It holds
// *[]byte so Put never allocates an interface box.
var bufPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 4096)
	return &b
}}

// getBuf returns a pooled buffer with capacity ≥ n and length 0.
func getBuf(n int) *[]byte {
	bp := bufPool.Get().(*[]byte)
	if cap(*bp) < n {
		*bp = make([]byte, 0, n)
	}
	*bp = (*bp)[:0]
	return bp
}

// putBuf recycles a buffer, dropping it when an oversized frame grew
// it past shrinkCap — capacity policy lives here, in the pool's
// lifecycle, not in the middle of Encode. It reports whether the
// buffer was retained so the policy is testable.
func putBuf(bp *[]byte) bool {
	if cap(*bp) > shrinkCap {
		return false
	}
	bufPool.Put(bp)
	return true
}

// Encoder writes envelopes to a stream as self-delimiting frames. It
// is not safe for concurrent use; guard it with the connection's
// write lock.
//
// Encode buffers; call Flush to push the bytes to the underlying
// writer. Separating the two is what enables write coalescing: a
// transport can drain its whole send queue through Encode and pay one
// syscall at the Flush.
type Encoder struct {
	w *bufio.Writer
}

// NewEncoder returns an Encoder writing to w.
func NewEncoder(w io.Writer) *Encoder {
	return &Encoder{w: bufio.NewWriterSize(w, 64<<10)}
}

// Encode appends one envelope to the write buffer and returns the
// frame's exact wire size. The size is computed before a byte is
// staged, so an oversized or unregistered message returns a
// Recoverable error with nothing written — the stream stays clean and
// the connection survives.
func (e *Encoder) Encode(env Envelope) (int, error) {
	tag, ok := types.WireTagOf(env.Msg)
	if !ok {
		return 0, fmt.Errorf("codec: %T: %w", env.Msg, ErrUnknownMessage)
	}
	payload := framePayloadMin + bodySize(env.Msg)
	if payload > MaxFrame {
		return 0, fmt.Errorf("codec: %d-byte message: %w", payload, ErrFrameTooLarge)
	}
	total := 4 + payload
	bp := getBuf(total)
	b := *bp
	b = binary.LittleEndian.AppendUint32(b, uint32(payload))
	b = append(b, types.WireVersion, byte(tag))
	b = binary.LittleEndian.AppendUint32(b, uint32(env.From))
	b = appendBody(b, env.Msg)
	*bp = b
	if len(b) != total {
		// Size and encode are generated in lockstep and tested for
		// equality over every registered message; disagreement means a
		// codec bug, and silently sending a mis-framed message would
		// desync the peer.
		putBuf(bp)
		return 0, fmt.Errorf("codec: internal: %T sized %d, encoded %d", env.Msg, total, len(b))
	}
	_, err := e.w.Write(b)
	putBuf(bp)
	if err != nil {
		return 0, fmt.Errorf("codec: write frame: %w", err)
	}
	return total, nil
}

// Flush pushes buffered frames to the underlying writer.
func (e *Encoder) Flush() error {
	if err := e.w.Flush(); err != nil {
		return fmt.Errorf("codec: flush: %w", err)
	}
	return nil
}

// EncodedSize returns the exact number of bytes msg occupies on the
// wire (header included), or false for unregistered types. The
// in-process switch charges this against modeled link bandwidth, so
// both backends account identical bytes for identical messages.
func EncodedSize(msg any) (int, bool) {
	if _, ok := types.WireTagOf(msg); !ok {
		return 0, false
	}
	return frameHeader + bodySize(msg), true
}

// Decoder reads envelopes from a stream of frames.
type Decoder struct {
	r   *bufio.Reader
	hdr [4]byte
}

// NewDecoder returns a Decoder reading from r.
func NewDecoder(r io.Reader) *Decoder {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReaderSize(r, 64<<10)
	}
	return &Decoder{r: br}
}

// Decode reads one envelope. It returns io.EOF unchanged when the
// stream ends cleanly at a frame boundary, so callers can distinguish
// shutdown from damage. A Recoverable error means exactly one frame
// was consumed and discarded; the next Decode reads the next frame.
// Any other error means the stream is dead.
func (d *Decoder) Decode() (Envelope, error) {
	var env Envelope
	if _, err := io.ReadFull(d.r, d.hdr[:]); err != nil {
		if err == io.EOF {
			return env, io.EOF
		}
		return env, fmt.Errorf("codec: read frame header: %w", err)
	}
	payload := int(binary.LittleEndian.Uint32(d.hdr[:]))
	if payload > MaxFrame {
		// Skip the frame instead of killing the stream: honest peers
		// never send one, and a hostile peer must actually transmit
		// the announced bytes for us to discard them.
		if err := d.skip(payload); err != nil {
			return env, err
		}
		return env, fmt.Errorf("codec: %d-byte frame announced: %w", payload, ErrFrameTooLarge)
	}
	if payload < framePayloadMin {
		if err := d.skip(payload); err != nil {
			return env, err
		}
		return env, fmt.Errorf("codec: %d-byte frame payload: %w", payload, ErrBadFrame)
	}
	bp := getBuf(payload)
	buf := (*bp)[:payload]
	*bp = buf
	defer putBuf(bp)
	if _, err := io.ReadFull(d.r, buf); err != nil {
		return env, fmt.Errorf("codec: read frame: %w", err)
	}
	if buf[0] != types.WireVersion {
		return env, fmt.Errorf("codec: frame version %d: %w", buf[0], ErrBadVersion)
	}
	tag := types.WireTag(buf[1])
	from := types.NodeID(binary.LittleEndian.Uint32(buf[2:6]))
	msg, err := decodeBody(tag, buf[framePayloadMin:])
	if err != nil {
		return env, err
	}
	return Envelope{From: from, Msg: msg}, nil
}

// skip discards one announced frame so the stream stays aligned.
func (d *Decoder) skip(n int) error {
	if _, err := d.r.Discard(n); err != nil {
		return fmt.Errorf("codec: skip %d-byte frame: %w", n, err)
	}
	return nil
}

// Package codec serializes protocol messages for the TCP transport.
// It wraps encoding/gob with explicit type registration so any message
// defined in internal/types can travel as an interface value, mirroring
// the Paxi-style message-passing layer the paper's framework reuses.
//
// Each envelope is written as one length-prefixed frame (uvarint size,
// then the gob bytes). The prefix lets both ends enforce MaxFrame
// before allocating: a corrupted or hostile length cannot make the
// reader commit gigabytes of memory, and an accidentally huge message
// fails loudly at the sender instead of stalling a peer's socket.
package codec

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"sync"

	"github.com/bamboo-bft/bamboo/internal/types"
)

// MaxFrame bounds one encoded envelope. The largest legitimate
// messages are state-sync batches (a keep window of full blocks);
// 16 MiB leaves an order of magnitude of headroom over those.
const MaxFrame = 16 << 20

// ErrFrameTooLarge reports a frame above MaxFrame, on either end.
// After it the gob stream is unusable (its type dictionary may have
// advanced past what the peer saw), so callers must discard the
// connection, not just the message.
var ErrFrameTooLarge = errors.New("codec: frame exceeds MaxFrame")

// Envelope frames a message with its sender for transports that
// multiplex many logical links over one connection.
type Envelope struct {
	From types.NodeID
	Msg  any
}

var registerOnce sync.Once

// registerTypes makes every wire message known to gob. Called lazily
// by the encoder/decoder constructors (no package init, per style
// guide) and safe to call many times.
func registerTypes() {
	registerOnce.Do(func() {
		gob.Register(types.ProposalMsg{})
		gob.Register(types.VoteMsg{})
		gob.Register(types.TimeoutMsg{})
		gob.Register(types.TCMsg{})
		gob.Register(types.FetchMsg{})
		gob.Register(types.SyncRequestMsg{})
		gob.Register(types.SyncResponseMsg{})
		gob.Register(types.SnapshotRequestMsg{})
		gob.Register(types.SnapshotManifestMsg{})
		gob.Register(types.SnapshotChunkMsg{})
		gob.Register(types.RequestMsg{})
		gob.Register(types.PayloadBatchMsg{})
		gob.Register(types.ReplyMsg{})
		gob.Register(types.QueryMsg{})
		gob.Register(types.QueryReplyMsg{})
		gob.Register(types.SlowMsg{})
	})
}

// Encoder writes envelopes to a stream as length-prefixed frames. It
// is not safe for concurrent use; guard it with the connection's write
// lock.
type Encoder struct {
	w   *bufio.Writer
	buf bytes.Buffer
	enc *gob.Encoder
	hdr [binary.MaxVarintLen64]byte
}

// NewEncoder returns an Encoder writing to w.
func NewEncoder(w io.Writer) *Encoder {
	registerTypes()
	e := &Encoder{w: bufio.NewWriter(w)}
	e.enc = gob.NewEncoder(&e.buf)
	return e
}

// Encode writes one envelope and returns the number of bytes that hit
// the stream. A message gob-encoding above MaxFrame returns
// ErrFrameTooLarge without writing anything — but the encoder's gob
// type dictionary may have advanced, so the connection must be
// discarded along with the message.
func (e *Encoder) Encode(env Envelope) (int, error) {
	e.buf.Reset()
	if err := e.enc.Encode(&env); err != nil {
		return 0, fmt.Errorf("codec: encode: %w", err)
	}
	if e.buf.Len() > MaxFrame {
		return 0, fmt.Errorf("codec: %d-byte message: %w", e.buf.Len(), ErrFrameTooLarge)
	}
	n := binary.PutUvarint(e.hdr[:], uint64(e.buf.Len()))
	if _, err := e.w.Write(e.hdr[:n]); err != nil {
		return 0, fmt.Errorf("codec: write frame header: %w", err)
	}
	if _, err := e.w.Write(e.buf.Bytes()); err != nil {
		return 0, fmt.Errorf("codec: write frame: %w", err)
	}
	if err := e.w.Flush(); err != nil {
		return 0, fmt.Errorf("codec: flush frame: %w", err)
	}
	written := n + e.buf.Len()
	if e.buf.Cap() > shrinkCap {
		// One multi-MiB frame (a deep state-sync batch) must not pin
		// its high-water capacity on this connection forever.
		// Assigning through the same address keeps the gob encoder's
		// *bytes.Buffer valid while releasing the backing array.
		e.buf = bytes.Buffer{}
	}
	return written, nil
}

// shrinkCap is the staging-buffer capacity above which Encode releases
// the backing array after the frame is written.
const shrinkCap = 1 << 20

// Decoder reads envelopes from a stream of length-prefixed frames.
type Decoder struct {
	dec *gob.Decoder
}

// NewDecoder returns a Decoder reading from r.
func NewDecoder(r io.Reader) *Decoder {
	registerTypes()
	return &Decoder{dec: gob.NewDecoder(newFrameReader(r))}
}

// Decode reads one envelope. It returns io.EOF unchanged when the
// stream ends cleanly so callers can distinguish shutdown from damage.
func (d *Decoder) Decode() (Envelope, error) {
	var env Envelope
	if err := d.dec.Decode(&env); err != nil {
		if err == io.EOF {
			return env, io.EOF
		}
		return env, fmt.Errorf("codec: decode: %w", err)
	}
	return env, nil
}

// frameReader strips the length prefixes, presenting the concatenated
// frame payloads as one plain stream (exactly the bytes the sender's
// gob encoder produced) while enforcing MaxFrame per frame before any
// payload is read.
type frameReader struct {
	r         *bufio.Reader
	remaining int64
}

func newFrameReader(r io.Reader) *frameReader {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReader(r)
	}
	return &frameReader{r: br}
}

func (f *frameReader) Read(p []byte) (int, error) {
	for f.remaining == 0 {
		size, err := binary.ReadUvarint(f.r)
		if err != nil {
			return 0, err
		}
		if size > MaxFrame {
			return 0, fmt.Errorf("codec: %d-byte frame announced: %w", size, ErrFrameTooLarge)
		}
		f.remaining = int64(size)
	}
	if int64(len(p)) > f.remaining {
		p = p[:f.remaining]
	}
	n, err := f.r.Read(p)
	f.remaining -= int64(n)
	return n, err
}

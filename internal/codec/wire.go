package codec

// Per-message binary layouts. Each registered message has a size
// function and an encode branch that MUST agree byte-for-byte (the
// Encoder checks, and wire_test.go proves it over the whole
// registry), plus an untrusting decode branch.
//
// Field primitives, all little-endian:
//
//	u8/u32/u64   fixed-width integers (View, NodeID, heights, counts)
//	hash         32 raw bytes
//	bytes        u32 length + raw bytes
//	presence     u8 0|1 before any pointer field; 0 means nil
//	slices       u32 element count + elements
//
// Signed int64 fields (timestamps, delays) travel as their two's-
// complement u64 bit pattern.

import (
	"encoding/binary"
	"fmt"

	"github.com/bamboo-bft/bamboo/internal/types"
)

// --- sizes -----------------------------------------------------------

// bodySize returns the exact encoded body length for a registered
// message. Unregistered types never reach it (Encode checks the tag
// first).
func bodySize(msg any) int {
	switch m := msg.(type) {
	case types.ProposalMsg:
		return sizeBlockPtr(m.Block) + sizeTCPtr(m.TC) + 4 + 16*len(m.PayloadIDs)
	case types.VoteMsg:
		return sizeVotePtr(m.Vote)
	case types.TimeoutMsg:
		return sizeTimeoutPtr(m.Timeout)
	case types.TCMsg:
		return sizeTCPtr(m.TC)
	case types.FetchMsg:
		return 32
	case types.SyncRequestMsg:
		return 16
	case types.SyncResponseMsg:
		n := 8 + 8 + 8 + 4
		for _, b := range m.Blocks {
			n += sizeBlockPtr(b)
		}
		return n
	case types.SnapshotRequestMsg:
		return 12
	case types.SnapshotManifestMsg:
		return 8 + sizeBlockPtr(m.Block) + sizeQCPtr(m.QC) + 32 + 8 + 4 + 4 + 32*len(m.ChunkDigests)
	case types.SnapshotChunkMsg:
		return 12 + sizeBytes(m.Data)
	case types.RequestMsg:
		return sizeTx(&m.Tx)
	case types.PayloadBatchMsg:
		n := 4
		for i := range m.Txs {
			n += sizeTx(&m.Txs[i])
		}
		return n
	case types.ReplyMsg:
		return 16 + 8 + 32 + 1
	case types.QueryMsg:
		return 8
	case types.QueryReplyMsg:
		return 8 + 8 + 32
	case types.SlowMsg:
		return 16
	}
	panic(fmt.Sprintf("codec: bodySize of unregistered %T", msg))
}

func sizeBytes(p []byte) int { return 4 + len(p) }

func sizeTx(tx *types.Transaction) int { return 24 + sizeBytes(tx.Command) }

func sizeQC(qc *types.QC) int {
	n := 8 + 32 + 4 + 4*len(qc.Signers) + 4
	for _, s := range qc.Sigs {
		n += sizeBytes(s)
	}
	return n
}

func sizeQCPtr(qc *types.QC) int {
	if qc == nil {
		return 1
	}
	return 1 + sizeQC(qc)
}

func sizeBlockPtr(b *types.Block) int {
	if b == nil {
		return 1
	}
	n := 1 + 8 + 4 + 32 + sizeQCPtr(b.QC) + 4
	for i := range b.Payload {
		n += sizeTx(&b.Payload[i])
	}
	return n + 32 + sizeBytes(b.Sig)
}

func sizeVotePtr(v *types.Vote) int {
	if v == nil {
		return 1
	}
	return 1 + 8 + 32 + 4 + sizeBytes(v.Sig)
}

func sizeTimeoutPtr(t *types.Timeout) int {
	if t == nil {
		return 1
	}
	return 1 + 8 + 4 + sizeQCPtr(t.HighQC) + sizeBytes(t.Sig)
}

func sizeTCPtr(tc *types.TC) int {
	if tc == nil {
		return 1
	}
	n := 1 + 8 + 4 + 4*len(tc.Signers) + 4
	for _, s := range tc.Sigs {
		n += sizeBytes(s)
	}
	return n + sizeQCPtr(tc.HighQC)
}

// --- encode ----------------------------------------------------------

func appendU32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }
func appendU64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }

func appendBytes(b, p []byte) []byte {
	b = appendU32(b, uint32(len(p)))
	return append(b, p...)
}

// appendBody encodes a registered message's body.
func appendBody(b []byte, msg any) []byte {
	switch m := msg.(type) {
	case types.ProposalMsg:
		b = appendBlockPtr(b, m.Block)
		b = appendTCPtr(b, m.TC)
		b = appendU32(b, uint32(len(m.PayloadIDs)))
		for _, id := range m.PayloadIDs {
			b = appendU64(b, id.Client)
			b = appendU64(b, id.Seq)
		}
		return b
	case types.VoteMsg:
		return appendVotePtr(b, m.Vote)
	case types.TimeoutMsg:
		return appendTimeoutPtr(b, m.Timeout)
	case types.TCMsg:
		return appendTCPtr(b, m.TC)
	case types.FetchMsg:
		return append(b, m.BlockID[:]...)
	case types.SyncRequestMsg:
		b = appendU64(b, m.From)
		return appendU64(b, m.To)
	case types.SyncResponseMsg:
		b = appendU64(b, m.From)
		b = appendU64(b, m.Head)
		b = appendU64(b, m.Floor)
		b = appendU32(b, uint32(len(m.Blocks)))
		for _, blk := range m.Blocks {
			b = appendBlockPtr(b, blk)
		}
		return b
	case types.SnapshotRequestMsg:
		b = appendU64(b, m.Height)
		return appendU32(b, m.Chunk)
	case types.SnapshotManifestMsg:
		b = appendU64(b, m.Height)
		b = appendBlockPtr(b, m.Block)
		b = appendQCPtr(b, m.QC)
		b = append(b, m.StateDigest[:]...)
		b = appendU64(b, m.TotalSize)
		b = appendU32(b, m.ChunkSize)
		b = appendU32(b, uint32(len(m.ChunkDigests)))
		for i := range m.ChunkDigests {
			b = append(b, m.ChunkDigests[i][:]...)
		}
		return b
	case types.SnapshotChunkMsg:
		b = appendU64(b, m.Height)
		b = appendU32(b, m.Chunk)
		return appendBytes(b, m.Data)
	case types.RequestMsg:
		return appendTx(b, &m.Tx)
	case types.PayloadBatchMsg:
		b = appendU32(b, uint32(len(m.Txs)))
		for i := range m.Txs {
			b = appendTx(b, &m.Txs[i])
		}
		return b
	case types.ReplyMsg:
		b = appendU64(b, m.TxID.Client)
		b = appendU64(b, m.TxID.Seq)
		b = appendU64(b, uint64(m.View))
		b = append(b, m.BlockID[:]...)
		if m.Rejected {
			return append(b, 1)
		}
		return append(b, 0)
	case types.QueryMsg:
		return appendU64(b, m.Height)
	case types.QueryReplyMsg:
		b = appendU64(b, m.CommittedHeight)
		b = appendU64(b, uint64(m.CommittedView))
		return append(b, m.BlockHash[:]...)
	case types.SlowMsg:
		b = appendU64(b, uint64(m.DelayMeanNanos))
		return appendU64(b, uint64(m.DelayStdNanos))
	}
	panic(fmt.Sprintf("codec: appendBody of unregistered %T", msg))
}

func appendTx(b []byte, tx *types.Transaction) []byte {
	b = appendU64(b, tx.ID.Client)
	b = appendU64(b, tx.ID.Seq)
	b = appendU64(b, uint64(tx.SubmitUnixNano))
	return appendBytes(b, tx.Command)
}

func appendQC(b []byte, qc *types.QC) []byte {
	b = appendU64(b, uint64(qc.View))
	b = append(b, qc.BlockID[:]...)
	b = appendU32(b, uint32(len(qc.Signers)))
	for _, id := range qc.Signers {
		b = appendU32(b, uint32(id))
	}
	b = appendU32(b, uint32(len(qc.Sigs)))
	for _, s := range qc.Sigs {
		b = appendBytes(b, s)
	}
	return b
}

func appendQCPtr(b []byte, qc *types.QC) []byte {
	if qc == nil {
		return append(b, 0)
	}
	return appendQC(append(b, 1), qc)
}

func appendBlockPtr(b []byte, blk *types.Block) []byte {
	if blk == nil {
		return append(b, 0)
	}
	b = append(b, 1)
	b = appendU64(b, uint64(blk.View))
	b = appendU32(b, uint32(blk.Proposer))
	b = append(b, blk.Parent[:]...)
	b = appendQCPtr(b, blk.QC)
	b = appendU32(b, uint32(len(blk.Payload)))
	for i := range blk.Payload {
		b = appendTx(b, &blk.Payload[i])
	}
	// The digest travels explicitly so stripped (digest-only) blocks
	// decode with their payload commitment intact.
	b = append(b, blk.Digest[:]...)
	return appendBytes(b, blk.Sig)
}

func appendVotePtr(b []byte, v *types.Vote) []byte {
	if v == nil {
		return append(b, 0)
	}
	b = append(b, 1)
	b = appendU64(b, uint64(v.View))
	b = append(b, v.BlockID[:]...)
	b = appendU32(b, uint32(v.Voter))
	return appendBytes(b, v.Sig)
}

func appendTimeoutPtr(b []byte, t *types.Timeout) []byte {
	if t == nil {
		return append(b, 0)
	}
	b = append(b, 1)
	b = appendU64(b, uint64(t.View))
	b = appendU32(b, uint32(t.Voter))
	b = appendQCPtr(b, t.HighQC)
	return appendBytes(b, t.Sig)
}

func appendTCPtr(b []byte, tc *types.TC) []byte {
	if tc == nil {
		return append(b, 0)
	}
	b = append(b, 1)
	b = appendU64(b, uint64(tc.View))
	b = appendU32(b, uint32(len(tc.Signers)))
	for _, id := range tc.Signers {
		b = appendU32(b, uint32(id))
	}
	b = appendU32(b, uint32(len(tc.Sigs)))
	for _, s := range tc.Sigs {
		b = appendBytes(b, s)
	}
	return appendQCPtr(b, tc.HighQC)
}

// --- decode ----------------------------------------------------------

// reader parses one frame body with a sticky error: after the first
// violation every further read is a no-op and the message is
// rejected. Byte fields are carved from a single arena allocation
// capped at the frame's own length, so decode never allocates more
// than the bytes actually received (plus the decoded structs).
type reader struct {
	buf   []byte
	arena []byte
	cap   int
	err   error
}

func newReader(body []byte) *reader { return &reader{buf: body, cap: len(body)} }

func (r *reader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("codec: %s: %w", what, ErrBadFrame)
	}
}

func (r *reader) u8() byte {
	if r.err != nil {
		return 0
	}
	if len(r.buf) < 1 {
		r.fail("truncated u8")
		return 0
	}
	v := r.buf[0]
	r.buf = r.buf[1:]
	return v
}

func (r *reader) u32() uint32 {
	if r.err != nil {
		return 0
	}
	if len(r.buf) < 4 {
		r.fail("truncated u32")
		return 0
	}
	v := binary.LittleEndian.Uint32(r.buf)
	r.buf = r.buf[4:]
	return v
}

func (r *reader) u64() uint64 {
	if r.err != nil {
		return 0
	}
	if len(r.buf) < 8 {
		r.fail("truncated u64")
		return 0
	}
	v := binary.LittleEndian.Uint64(r.buf)
	r.buf = r.buf[8:]
	return v
}

func (r *reader) hash() (h types.Hash) {
	if r.err != nil {
		return
	}
	if len(r.buf) < 32 {
		r.fail("truncated hash")
		return
	}
	copy(h[:], r.buf)
	r.buf = r.buf[32:]
	return
}

// present reads a pointer presence byte, strict 0|1 so random bytes
// don't accidentally parse.
func (r *reader) present() bool {
	switch r.u8() {
	case 0:
		return false
	case 1:
		return r.err == nil
	default:
		r.fail("invalid presence byte")
		return false
	}
}

// count reads a slice length and bounds it by the bytes remaining in
// the frame at elemMin bytes per element — the cap that keeps hostile
// counts from pre-allocating past MaxFrame.
func (r *reader) count(elemMin int, what string) int {
	n := int(r.u32())
	if r.err != nil {
		return 0
	}
	if n > len(r.buf)/elemMin {
		r.fail(what + " count overruns frame")
		return 0
	}
	return n
}

// bytes reads a length-prefixed byte field, carved out of the shared
// arena so a message's many small fields (signatures, commands) cost
// one allocation per frame instead of one each. The three-index slice
// pins each field's capacity, so growing one later cannot clobber its
// neighbors.
func (r *reader) bytes() []byte {
	n := int(r.u32())
	if r.err != nil {
		return nil
	}
	if n > len(r.buf) {
		r.fail("byte field overruns frame")
		return nil
	}
	src := r.buf[:n]
	r.buf = r.buf[n:]
	if n == 0 {
		return nil
	}
	if r.arena == nil {
		// Disjoint byte fields of one frame can never sum past the
		// frame length, so this single allocation serves them all.
		r.arena = make([]byte, 0, r.cap)
	}
	start := len(r.arena)
	r.arena = append(r.arena, src...)
	return r.arena[start:len(r.arena):len(r.arena)]
}

func (r *reader) tx(tx *types.Transaction) {
	tx.ID.Client = r.u64()
	tx.ID.Seq = r.u64()
	tx.SubmitUnixNano = int64(r.u64())
	tx.Command = r.bytes()
}

// txMinSize bounds pre-allocation of transaction slices: id (16) +
// timestamp (8) + command length word (4).
const txMinSize = 28

func (r *reader) txs() []types.Transaction {
	n := r.count(txMinSize, "transaction")
	if n == 0 {
		return nil
	}
	txs := make([]types.Transaction, n)
	for i := range txs {
		r.tx(&txs[i])
	}
	return txs
}

func (r *reader) qc() *types.QC {
	if !r.present() {
		return nil
	}
	qc := &types.QC{View: types.View(r.u64()), BlockID: r.hash()}
	if n := r.count(4, "signer"); n > 0 {
		qc.Signers = make([]types.NodeID, n)
		for i := range qc.Signers {
			qc.Signers[i] = types.NodeID(r.u32())
		}
	}
	if n := r.count(4, "signature"); n > 0 {
		qc.Sigs = make([][]byte, n)
		for i := range qc.Sigs {
			qc.Sigs[i] = r.bytes()
		}
	}
	if r.err != nil {
		return nil
	}
	return qc
}

func (r *reader) block() *types.Block {
	if !r.present() {
		return nil
	}
	b := &types.Block{
		View:     types.View(r.u64()),
		Proposer: types.NodeID(r.u32()),
		Parent:   r.hash(),
	}
	b.QC = r.qc()
	b.Payload = r.txs()
	b.Digest = r.hash()
	b.Sig = r.bytes()
	if r.err != nil {
		return nil
	}
	return b
}

func (r *reader) vote() *types.Vote {
	if !r.present() {
		return nil
	}
	v := &types.Vote{View: types.View(r.u64()), BlockID: r.hash(), Voter: types.NodeID(r.u32())}
	v.Sig = r.bytes()
	if r.err != nil {
		return nil
	}
	return v
}

func (r *reader) timeout() *types.Timeout {
	if !r.present() {
		return nil
	}
	t := &types.Timeout{View: types.View(r.u64()), Voter: types.NodeID(r.u32())}
	t.HighQC = r.qc()
	t.Sig = r.bytes()
	if r.err != nil {
		return nil
	}
	return t
}

func (r *reader) tc() *types.TC {
	if !r.present() {
		return nil
	}
	tc := &types.TC{View: types.View(r.u64())}
	if n := r.count(4, "signer"); n > 0 {
		tc.Signers = make([]types.NodeID, n)
		for i := range tc.Signers {
			tc.Signers[i] = types.NodeID(r.u32())
		}
	}
	if n := r.count(4, "signature"); n > 0 {
		tc.Sigs = make([][]byte, n)
		for i := range tc.Sigs {
			tc.Sigs[i] = r.bytes()
		}
	}
	tc.HighQC = r.qc()
	if r.err != nil {
		return nil
	}
	return tc
}

// decodeBody parses one frame body into its message value. Trailing
// bytes beyond the fields this version knows are ignored, which is
// what lets future encoders append fields without a version bump.
func decodeBody(tag types.WireTag, body []byte) (any, error) {
	r := newReader(body)
	var msg any
	switch tag {
	case types.TagProposal:
		m := types.ProposalMsg{Block: r.block(), TC: r.tc()}
		if n := r.count(16, "payload id"); n > 0 {
			m.PayloadIDs = make([]types.TxID, n)
			for i := range m.PayloadIDs {
				m.PayloadIDs[i] = types.TxID{Client: r.u64(), Seq: r.u64()}
			}
		}
		msg = m
	case types.TagVote:
		msg = types.VoteMsg{Vote: r.vote()}
	case types.TagTimeout:
		msg = types.TimeoutMsg{Timeout: r.timeout()}
	case types.TagTC:
		msg = types.TCMsg{TC: r.tc()}
	case types.TagFetch:
		msg = types.FetchMsg{BlockID: r.hash()}
	case types.TagSyncRequest:
		msg = types.SyncRequestMsg{From: r.u64(), To: r.u64()}
	case types.TagSyncResponse:
		m := types.SyncResponseMsg{From: r.u64(), Head: r.u64(), Floor: r.u64()}
		if n := r.count(1, "block"); n > 0 {
			m.Blocks = make([]*types.Block, n)
			for i := range m.Blocks {
				m.Blocks[i] = r.block()
			}
		}
		msg = m
	case types.TagSnapshotRequest:
		msg = types.SnapshotRequestMsg{Height: r.u64(), Chunk: r.u32()}
	case types.TagSnapshotManifest:
		m := types.SnapshotManifestMsg{Height: r.u64(), Block: r.block(), QC: r.qc(), StateDigest: r.hash(), TotalSize: r.u64(), ChunkSize: r.u32()}
		if n := r.count(32, "chunk digest"); n > 0 {
			m.ChunkDigests = make([]types.Hash, n)
			for i := range m.ChunkDigests {
				m.ChunkDigests[i] = r.hash()
			}
		}
		msg = m
	case types.TagSnapshotChunk:
		msg = types.SnapshotChunkMsg{Height: r.u64(), Chunk: r.u32(), Data: r.bytes()}
	case types.TagRequest:
		var m types.RequestMsg
		r.tx(&m.Tx)
		msg = m
	case types.TagPayloadBatch:
		msg = types.PayloadBatchMsg{Txs: r.txs()}
	case types.TagReply:
		m := types.ReplyMsg{TxID: types.TxID{Client: r.u64(), Seq: r.u64()}, View: types.View(r.u64()), BlockID: r.hash()}
		m.Rejected = r.u8() == 1
		msg = m
	case types.TagQuery:
		msg = types.QueryMsg{Height: r.u64()}
	case types.TagQueryReply:
		msg = types.QueryReplyMsg{CommittedHeight: r.u64(), CommittedView: types.View(r.u64()), BlockHash: r.hash()}
	case types.TagSlow:
		msg = types.SlowMsg{DelayMeanNanos: int64(r.u64()), DelayStdNanos: int64(r.u64())}
	default:
		return nil, fmt.Errorf("codec: tag %d: %w", tag, ErrUnknownTag)
	}
	if r.err != nil {
		return nil, r.err
	}
	return msg, nil
}

package codec

import (
	"bytes"
	"io"
	"testing"

	"github.com/bamboo-bft/bamboo/internal/types"
)

// TestDigestProposalRoundTrip: a digest-form proposal survives the
// wire — payload IDs and digest intact, block ID recomputed on the
// receiving side equal to the sender's, and no payload smuggled along.
func TestDigestProposalRoundTrip(t *testing.T) {
	payload := []types.Transaction{
		{ID: types.TxID{Client: 3, Seq: 9}, Command: []byte("cmd"), SubmitUnixNano: 42},
	}
	full := &types.Block{
		View:     7,
		Proposer: 2,
		Parent:   types.Hash{0x0a},
		QC: &types.QC{View: 6, BlockID: types.Hash{0x0a},
			Signers: []types.NodeID{1, 2, 3}, Sigs: [][]byte{{1}, {2}, {3}}},
		Payload: payload,
		Sig:     []byte("proposer-sig"),
	}
	wantID := full.ID()
	msg := types.ProposalMsg{
		Block:      full.StripPayload(),
		PayloadIDs: []types.TxID{payload[0].ID},
	}

	var buf bytes.Buffer
	encodeFrame(t, &buf, Envelope{From: 2, Msg: msg})
	env, err := NewDecoder(&buf).Decode()
	if err != nil {
		t.Fatal(err)
	}
	got, ok := env.Msg.(types.ProposalMsg)
	if !ok {
		t.Fatalf("decoded %T", env.Msg)
	}
	if !got.IsDigest() {
		t.Fatal("digest form lost on the wire")
	}
	if got.Block.ID() != wantID {
		t.Fatalf("block ID drifted: %s vs %s", got.Block.ID(), wantID)
	}
	if len(got.Block.Payload) != 0 {
		t.Fatal("payload smuggled in a digest proposal")
	}
	if len(got.PayloadIDs) != 1 || got.PayloadIDs[0] != payload[0].ID {
		t.Fatalf("payload IDs corrupted: %v", got.PayloadIDs)
	}
	// Resolution on the receiving side reproduces the identity.
	resolved := got.Block.WithPayload(payload)
	if resolved.ID() != wantID {
		t.Fatal("resolved block ID differs after decode")
	}
}

// TestPayloadBatchRoundTrip: the data-plane batch message carries
// transactions byte-identically.
func TestPayloadBatchRoundTrip(t *testing.T) {
	msg := types.PayloadBatchMsg{Txs: []types.Transaction{
		{ID: types.TxID{Client: 1, Seq: 1}, Command: []byte("a"), SubmitUnixNano: 7},
		{ID: types.TxID{Client: 1, Seq: 2}, Command: []byte("bb")},
	}}
	var buf bytes.Buffer
	encodeFrame(t, &buf, Envelope{From: 1, Msg: msg})
	env, err := NewDecoder(&buf).Decode()
	if err != nil {
		t.Fatal(err)
	}
	got, ok := env.Msg.(types.PayloadBatchMsg)
	if !ok {
		t.Fatalf("decoded %T", env.Msg)
	}
	if len(got.Txs) != 2 || !bytes.Equal(got.Txs[1].Command, []byte("bb")) ||
		got.Txs[0].SubmitUnixNano != 7 {
		t.Fatalf("batch corrupted: %+v", got.Txs)
	}
	if _, err := NewDecoder(&buf).Decode(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

package codec

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"reflect"
	"testing"
	"testing/quick"

	"github.com/bamboo-bft/bamboo/internal/types"
)

func roundTrip(t *testing.T, msg any) any {
	t.Helper()
	var buf bytes.Buffer
	if _, err := NewEncoder(&buf).Encode(Envelope{From: 3, Msg: msg}); err != nil {
		t.Fatalf("encode: %v", err)
	}
	env, err := NewDecoder(&buf).Decode()
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if env.From != 3 {
		t.Fatalf("sender lost: %v", env.From)
	}
	return env.Msg
}

func TestProposalRoundTrip(t *testing.T) {
	block := &types.Block{
		View:     9,
		Proposer: 2,
		Parent:   types.Hash{1, 2},
		QC: &types.QC{
			View:    8,
			BlockID: types.Hash{1, 2},
			Signers: []types.NodeID{1, 2, 3},
			Sigs:    [][]byte{{9}, {8}, {7}},
		},
		Payload: []types.Transaction{
			{ID: types.TxID{Client: 4, Seq: 2}, Command: []byte("put k v"), SubmitUnixNano: 12345},
		},
		Sig: []byte{0xaa},
	}
	wantID := block.ID()
	got, ok := roundTrip(t, types.ProposalMsg{Block: block}).(types.ProposalMsg)
	if !ok {
		t.Fatal("wrong type decoded")
	}
	if got.Block.ID() != wantID {
		t.Fatalf("block ID changed across wire: %s vs %s", got.Block.ID(), wantID)
	}
	if !reflect.DeepEqual(got.Block.QC, block.QC) {
		t.Fatalf("QC mangled: %+v", got.Block.QC)
	}
	if got.Block.Payload[0].SubmitUnixNano != 12345 {
		t.Fatal("tx timestamp lost")
	}
}

func TestAllMessageKindsRoundTrip(t *testing.T) {
	qc := &types.QC{View: 1, BlockID: types.Hash{5}, Signers: []types.NodeID{1}, Sigs: [][]byte{{1}}}
	msgs := []any{
		types.VoteMsg{Vote: &types.Vote{View: 2, BlockID: types.Hash{3}, Voter: 1, Sig: []byte{1}}},
		types.TimeoutMsg{Timeout: &types.Timeout{View: 2, Voter: 1, HighQC: qc, Sig: []byte{2}}},
		types.TCMsg{TC: &types.TC{View: 2, Signers: []types.NodeID{1, 2, 3}, Sigs: [][]byte{{1}, {2}, {3}}, HighQC: qc}},
		types.RequestMsg{Tx: types.Transaction{ID: types.TxID{Client: 1, Seq: 2}, Command: []byte("x")}},
		types.SyncRequestMsg{From: 17, To: 80},
		types.ReplyMsg{TxID: types.TxID{Client: 1, Seq: 2}, View: 7, BlockID: types.Hash{1}},
		types.QueryMsg{Height: 11},
		types.QueryReplyMsg{CommittedHeight: 11, CommittedView: 12, BlockHash: types.Hash{2}},
		types.SlowMsg{DelayMeanNanos: 100, DelayStdNanos: 10},
	}
	for _, m := range msgs {
		got := roundTrip(t, m)
		if !reflect.DeepEqual(got, m) {
			t.Errorf("%T mangled: got %+v want %+v", m, got, m)
		}
	}
}

// TestSyncResponseRoundTrip: catch-up batches carry whole certified
// blocks; identity, certificate, and payload must survive the wire,
// because the receiver re-verifies all three.
func TestSyncResponseRoundTrip(t *testing.T) {
	qc := &types.QC{View: 6, BlockID: types.Hash{7}, Signers: []types.NodeID{1, 2, 3}, Sigs: [][]byte{{1}, {2}, {3}}}
	block := &types.Block{
		View:     7,
		Proposer: 3,
		Parent:   types.Hash{7},
		QC:       qc,
		Payload:  []types.Transaction{{ID: types.TxID{Client: 2, Seq: 9}, Command: []byte("set k v")}},
		Sig:      []byte{0xbb},
	}
	wantID := block.ID()
	msg := types.SyncResponseMsg{From: 41, Blocks: []*types.Block{block}, Head: 99}
	got, ok := roundTrip(t, msg).(types.SyncResponseMsg)
	if !ok {
		t.Fatal("wrong type decoded")
	}
	if got.From != 41 || got.Head != 99 || len(got.Blocks) != 1 {
		t.Fatalf("framing mangled: %+v", got)
	}
	if got.Blocks[0].ID() != wantID {
		t.Fatal("block identity changed across the wire")
	}
	if !reflect.DeepEqual(got.Blocks[0].QC, qc) {
		t.Fatalf("certificate mangled: %+v", got.Blocks[0].QC)
	}
}

func TestStreamOfMessages(t *testing.T) {
	// A single encoder/decoder pair must survive many messages on
	// one stream, as the TCP transport keeps connections open.
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	const count = 100
	for i := 0; i < count; i++ {
		msg := types.VoteMsg{Vote: &types.Vote{View: types.View(i), Voter: 1}}
		if _, err := enc.Encode(Envelope{From: 1, Msg: msg}); err != nil {
			t.Fatal(err)
		}
	}
	dec := NewDecoder(&buf)
	for i := 0; i < count; i++ {
		env, err := dec.Decode()
		if err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
		vm, ok := env.Msg.(types.VoteMsg)
		if !ok || vm.Vote.View != types.View(i) {
			t.Fatalf("message %d out of order or mangled", i)
		}
	}
	if _, err := dec.Decode(); err != io.EOF {
		t.Fatalf("want io.EOF at stream end, got %v", err)
	}
}

func TestDecodeCorruptStream(t *testing.T) {
	buf := bytes.NewBufferString("this is not gob")
	if _, err := NewDecoder(buf).Decode(); err == nil || err == io.EOF {
		t.Fatalf("corrupt stream must fail loudly, got %v", err)
	}
}

// Property: request messages round-trip for arbitrary payloads.
func TestRequestRoundTripQuick(t *testing.T) {
	f := func(client, seq uint64, cmd []byte, ts int64) bool {
		msg := types.RequestMsg{Tx: types.Transaction{
			ID: types.TxID{Client: client, Seq: seq}, Command: cmd, SubmitUnixNano: ts,
		}}
		var buf bytes.Buffer
		if _, err := NewEncoder(&buf).Encode(Envelope{From: 1, Msg: msg}); err != nil {
			return false
		}
		env, err := NewDecoder(&buf).Decode()
		if err != nil {
			return false
		}
		got, ok := env.Msg.(types.RequestMsg)
		if !ok {
			return false
		}
		// gob collapses empty and nil slices; normalize.
		if len(cmd) == 0 {
			return got.Tx.ID == msg.Tx.ID && len(got.Tx.Command) == 0 && got.Tx.SubmitUnixNano == ts
		}
		return reflect.DeepEqual(got, msg)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestEncodeRejectsOversizedMessage: a message whose gob form exceeds
// MaxFrame must fail at the sender with ErrFrameTooLarge and write
// nothing to the stream — the receiver never sees a byte of it.
func TestEncodeRejectsOversizedMessage(t *testing.T) {
	var buf bytes.Buffer
	huge := types.RequestMsg{Tx: types.Transaction{
		ID: types.TxID{Client: 1, Seq: 1}, Command: make([]byte, MaxFrame+1),
	}}
	_, err := NewEncoder(&buf).Encode(Envelope{From: 1, Msg: huge})
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("want ErrFrameTooLarge, got %v", err)
	}
	if buf.Len() != 0 {
		t.Fatalf("oversized frame leaked %d bytes onto the stream", buf.Len())
	}
}

// TestDecodeRejectsOversizedFrame: a header announcing more than
// MaxFrame must fail before any payload allocation, so a corrupted or
// hostile length prefix cannot commit the reader to gigabytes.
func TestDecodeRejectsOversizedFrame(t *testing.T) {
	var buf bytes.Buffer
	hdr := make([]byte, binary.MaxVarintLen64)
	n := binary.PutUvarint(hdr, uint64(MaxFrame)+1)
	buf.Write(hdr[:n])
	buf.WriteString("payload that must never be read")
	_, err := NewDecoder(&buf).Decode()
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("want ErrFrameTooLarge, got %v", err)
	}
}

// TestLargeLegalMessageRoundTrips: framing must not get in the way of
// big-but-legitimate messages (a full sync batch is megabytes).
func TestLargeLegalMessageRoundTrips(t *testing.T) {
	payload := make([]byte, 4<<20)
	for i := range payload {
		payload[i] = byte(i)
	}
	msg := types.RequestMsg{Tx: types.Transaction{
		ID: types.TxID{Client: 1, Seq: 1}, Command: payload,
	}}
	var buf bytes.Buffer
	n, err := NewEncoder(&buf).Encode(Envelope{From: 1, Msg: msg})
	if err != nil {
		t.Fatal(err)
	}
	if n != buf.Len() {
		t.Fatalf("Encode reported %d bytes, stream holds %d", n, buf.Len())
	}
	env, err := NewDecoder(&buf).Decode()
	if err != nil {
		t.Fatal(err)
	}
	got, ok := env.Msg.(types.RequestMsg)
	if !ok || !bytes.Equal(got.Tx.Command, payload) {
		t.Fatal("large payload mangled across the wire")
	}
}

func BenchmarkEncodeProposal400(b *testing.B) {
	payload := make([]types.Transaction, 400)
	for i := range payload {
		payload[i] = types.Transaction{ID: types.TxID{Client: 1, Seq: uint64(i)}, Command: make([]byte, 128)}
	}
	block := &types.Block{View: 1, Proposer: 1, QC: types.GenesisQC(), Payload: payload}
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if _, err := enc.Encode(Envelope{From: 1, Msg: types.ProposalMsg{Block: block}}); err != nil {
			b.Fatal(err)
		}
	}
}

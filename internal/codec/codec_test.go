package codec

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"reflect"
	"testing"
	"testing/quick"

	"github.com/bamboo-bft/bamboo/internal/types"
)

// encodeFrame writes one envelope and flushes, returning the frame's
// reported wire size.
func encodeFrame(t *testing.T, buf *bytes.Buffer, env Envelope) int {
	t.Helper()
	enc := NewEncoder(buf)
	n, err := enc.Encode(env)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	if err := enc.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	return n
}

func roundTrip(t *testing.T, msg any) any {
	t.Helper()
	var buf bytes.Buffer
	encodeFrame(t, &buf, Envelope{From: 3, Msg: msg})
	env, err := NewDecoder(&buf).Decode()
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if env.From != 3 {
		t.Fatalf("sender lost: %v", env.From)
	}
	return env.Msg
}

func TestProposalRoundTrip(t *testing.T) {
	block := &types.Block{
		View:     9,
		Proposer: 2,
		Parent:   types.Hash{1, 2},
		QC: &types.QC{
			View:    8,
			BlockID: types.Hash{1, 2},
			Signers: []types.NodeID{1, 2, 3},
			Sigs:    [][]byte{{9}, {8}, {7}},
		},
		Payload: []types.Transaction{
			{ID: types.TxID{Client: 4, Seq: 2}, Command: []byte("put k v"), SubmitUnixNano: 12345},
		},
		Sig: []byte{0xaa},
	}
	wantID := block.ID()
	got, ok := roundTrip(t, types.ProposalMsg{Block: block}).(types.ProposalMsg)
	if !ok {
		t.Fatal("wrong type decoded")
	}
	if got.Block.ID() != wantID {
		t.Fatalf("block ID changed across wire: %s vs %s", got.Block.ID(), wantID)
	}
	if !reflect.DeepEqual(got.Block.QC, block.QC) {
		t.Fatalf("QC mangled: %+v", got.Block.QC)
	}
	if got.Block.Payload[0].SubmitUnixNano != 12345 {
		t.Fatal("tx timestamp lost")
	}
}

// TestSyncResponseRoundTrip: catch-up batches carry whole certified
// blocks; identity, certificate, and payload must survive the wire,
// because the receiver re-verifies all three.
func TestSyncResponseRoundTrip(t *testing.T) {
	qc := &types.QC{View: 6, BlockID: types.Hash{7}, Signers: []types.NodeID{1, 2, 3}, Sigs: [][]byte{{1}, {2}, {3}}}
	block := &types.Block{
		View:     7,
		Proposer: 3,
		Parent:   types.Hash{7},
		QC:       qc,
		Payload:  []types.Transaction{{ID: types.TxID{Client: 2, Seq: 9}, Command: []byte("set k v")}},
		Sig:      []byte{0xbb},
	}
	wantID := block.ID()
	msg := types.SyncResponseMsg{From: 41, Blocks: []*types.Block{block}, Head: 99}
	got, ok := roundTrip(t, msg).(types.SyncResponseMsg)
	if !ok {
		t.Fatal("wrong type decoded")
	}
	if got.From != 41 || got.Head != 99 || len(got.Blocks) != 1 {
		t.Fatalf("framing mangled: %+v", got)
	}
	if got.Blocks[0].ID() != wantID {
		t.Fatal("block identity changed across the wire")
	}
	if !reflect.DeepEqual(got.Blocks[0].QC, qc) {
		t.Fatalf("certificate mangled: %+v", got.Blocks[0].QC)
	}
}

func TestStreamOfMessages(t *testing.T) {
	// A single encoder/decoder pair must survive many messages on one
	// stream, as the TCP transport keeps connections open — and many
	// Encodes behind one Flush is exactly the transport's write
	// coalescing path.
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	const count = 100
	for i := 0; i < count; i++ {
		msg := types.VoteMsg{Vote: &types.Vote{View: types.View(i), Voter: 1}}
		if _, err := enc.Encode(Envelope{From: 1, Msg: msg}); err != nil {
			t.Fatal(err)
		}
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	dec := NewDecoder(&buf)
	for i := 0; i < count; i++ {
		env, err := dec.Decode()
		if err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
		vm, ok := env.Msg.(types.VoteMsg)
		if !ok || vm.Vote.View != types.View(i) {
			t.Fatalf("message %d out of order or mangled", i)
		}
	}
	if _, err := dec.Decode(); err != io.EOF {
		t.Fatalf("want io.EOF at stream end, got %v", err)
	}
}

func TestDecodeCorruptStream(t *testing.T) {
	buf := bytes.NewBufferString("this is not a frame")
	if _, err := NewDecoder(buf).Decode(); err == nil || err == io.EOF {
		t.Fatalf("corrupt stream must fail loudly, got %v", err)
	}
}

// TestDecodeSkipsMalformedFrame: a frame that announces a sane length
// but carries garbage costs exactly that frame — the decoder consumes
// it, reports a Recoverable error, and the next frame decodes fine.
// This is the property that lets the transport drop one message
// instead of the connection.
func TestDecodeSkipsMalformedFrame(t *testing.T) {
	var buf bytes.Buffer
	// A well-framed payload with an unknown tag.
	payload := []byte{types.WireVersion, 0xEE, 1, 0, 0, 0, 42}
	hdr := binary.LittleEndian.AppendUint32(nil, uint32(len(payload)))
	buf.Write(hdr)
	buf.Write(payload)
	// A well-framed vote with a truncated body (announces more signer
	// bytes than the frame holds).
	bad := []byte{types.WireVersion, byte(types.TagVote), 1, 0, 0, 0, 1, 99, 99}
	buf.Write(binary.LittleEndian.AppendUint32(nil, uint32(len(bad))))
	buf.Write(bad)
	// A wrong-version frame.
	verbad := []byte{99, byte(types.TagQuery), 1, 0, 0, 0, 1, 2, 3, 4, 5, 6, 7, 8}
	buf.Write(binary.LittleEndian.AppendUint32(nil, uint32(len(verbad))))
	buf.Write(verbad)
	// Finally a healthy frame.
	encodeFrame(t, &buf, Envelope{From: 7, Msg: types.QueryMsg{Height: 5}})

	dec := NewDecoder(&buf)
	for i, want := range []error{ErrUnknownTag, ErrBadFrame, ErrBadVersion} {
		_, err := dec.Decode()
		if !errors.Is(err, want) {
			t.Fatalf("frame %d: want %v, got %v", i, want, err)
		}
		if !Recoverable(err) {
			t.Fatalf("frame %d: %v must be Recoverable", i, err)
		}
	}
	env, err := dec.Decode()
	if err != nil {
		t.Fatalf("healthy frame after damage: %v", err)
	}
	if q, ok := env.Msg.(types.QueryMsg); !ok || q.Height != 5 || env.From != 7 {
		t.Fatalf("healthy frame mangled: %+v", env)
	}
	if _, err := dec.Decode(); err != io.EOF {
		t.Fatalf("want io.EOF, got %v", err)
	}
}

// Property: request messages round-trip for arbitrary payloads.
func TestRequestRoundTripQuick(t *testing.T) {
	f := func(client, seq uint64, cmd []byte, ts int64) bool {
		msg := types.RequestMsg{Tx: types.Transaction{
			ID: types.TxID{Client: client, Seq: seq}, Command: cmd, SubmitUnixNano: ts,
		}}
		var buf bytes.Buffer
		enc := NewEncoder(&buf)
		if _, err := enc.Encode(Envelope{From: 1, Msg: msg}); err != nil {
			return false
		}
		if err := enc.Flush(); err != nil {
			return false
		}
		env, err := NewDecoder(&buf).Decode()
		if err != nil {
			return false
		}
		got, ok := env.Msg.(types.RequestMsg)
		if !ok {
			return false
		}
		// The codec normalizes empty and nil byte fields to nil.
		if len(cmd) == 0 {
			return got.Tx.ID == msg.Tx.ID && len(got.Tx.Command) == 0 && got.Tx.SubmitUnixNano == ts
		}
		return reflect.DeepEqual(got, msg)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestEncodeRejectsOversizedMessage: a message whose encoding exceeds
// MaxFrame must fail at the sender with ErrFrameTooLarge and write
// nothing to the stream — and because the size check runs before any
// byte is staged, the stream (and its connection) stays usable.
func TestEncodeRejectsOversizedMessage(t *testing.T) {
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	huge := types.RequestMsg{Tx: types.Transaction{
		ID: types.TxID{Client: 1, Seq: 1}, Command: make([]byte, MaxFrame+1),
	}}
	_, err := enc.Encode(Envelope{From: 1, Msg: huge})
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("want ErrFrameTooLarge, got %v", err)
	}
	if !Recoverable(err) {
		t.Fatal("sender-side oversize must be Recoverable (conn survives)")
	}
	// The same encoder keeps working.
	if _, err := enc.Encode(Envelope{From: 1, Msg: types.QueryMsg{Height: 1}}); err != nil {
		t.Fatalf("encoder poisoned by oversized message: %v", err)
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	env, err := NewDecoder(&buf).Decode()
	if err != nil {
		t.Fatalf("stream after oversized reject: %v", err)
	}
	if _, ok := env.Msg.(types.QueryMsg); !ok {
		t.Fatalf("unexpected message %T", env.Msg)
	}
}

// TestDecodeRejectsOversizedFrame: a header announcing more than
// MaxFrame must fail before any payload allocation, so a corrupted or
// hostile length prefix cannot commit the reader to gigabytes.
func TestDecodeRejectsOversizedFrame(t *testing.T) {
	var buf bytes.Buffer
	hdr := binary.LittleEndian.AppendUint32(nil, uint32(MaxFrame)+1)
	buf.Write(hdr)
	buf.WriteString("payload that must never be parsed")
	_, err := NewDecoder(&buf).Decode()
	if errors.Is(err, ErrFrameTooLarge) {
		t.Fatal("announced bytes never arrived; the stream is dead, not recoverable")
	}
	if err == nil || err == io.EOF {
		t.Fatalf("oversized announcement must fail loudly, got %v", err)
	}
}

// TestDecodeSkipsOversizedFrameThenContinues: when the announced
// oversized bytes ARE all present on the stream, the decoder discards
// exactly that frame and keeps going — one lost message, not a lost
// connection.
func TestDecodeSkipsOversizedFrameThenContinues(t *testing.T) {
	var buf bytes.Buffer
	over := MaxFrame + 10
	buf.Write(binary.LittleEndian.AppendUint32(nil, uint32(over)))
	buf.Write(make([]byte, over))
	encodeFrame(t, &buf, Envelope{From: 2, Msg: types.QueryMsg{Height: 9}})

	dec := NewDecoder(&buf)
	_, err := dec.Decode()
	if !errors.Is(err, ErrFrameTooLarge) || !Recoverable(err) {
		t.Fatalf("want recoverable ErrFrameTooLarge, got %v", err)
	}
	env, err := dec.Decode()
	if err != nil {
		t.Fatalf("frame after oversized skip: %v", err)
	}
	if q, ok := env.Msg.(types.QueryMsg); !ok || q.Height != 9 {
		t.Fatalf("frame after skip mangled: %+v", env)
	}
}

// TestLargeLegalMessageRoundTrips: framing must not get in the way of
// big-but-legitimate messages (a full sync batch is megabytes).
func TestLargeLegalMessageRoundTrips(t *testing.T) {
	payload := make([]byte, 4<<20)
	for i := range payload {
		payload[i] = byte(i)
	}
	msg := types.RequestMsg{Tx: types.Transaction{
		ID: types.TxID{Client: 1, Seq: 1}, Command: payload,
	}}
	var buf bytes.Buffer
	n := encodeFrame(t, &buf, Envelope{From: 1, Msg: msg})
	if n != buf.Len() {
		t.Fatalf("Encode reported %d bytes, stream holds %d", n, buf.Len())
	}
	env, err := NewDecoder(&buf).Decode()
	if err != nil {
		t.Fatal(err)
	}
	got, ok := env.Msg.(types.RequestMsg)
	if !ok || !bytes.Equal(got.Tx.Command, payload) {
		t.Fatal("large payload mangled across the wire")
	}
}

// TestPoolDropsOversizedBuffers: buffer capacity policy lives in the
// pool's lifecycle — Put drops a buffer an oversized frame grew past
// shrinkCap, and retains ordinary ones.
func TestPoolDropsOversizedBuffers(t *testing.T) {
	big := make([]byte, 0, shrinkCap+1)
	if putBuf(&big) {
		t.Fatal("a multi-MiB buffer must not be retained by the pool")
	}
	small := make([]byte, 0, 4096)
	if !putBuf(&small) {
		t.Fatal("an ordinary buffer must be recycled")
	}
}

// TestEncodeMultiMiBBatchDoesNotPinCapacity: after encoding a
// multi-MiB sync batch, the pool hands out buffers at ordinary
// capacity — the batch's high-water backing array was dropped at Put,
// not kept pinned for the connection's lifetime.
func TestEncodeMultiMiBBatchDoesNotPinCapacity(t *testing.T) {
	blocks := make([]*types.Block, 8)
	for i := range blocks {
		txs := make([]types.Transaction, 64)
		for j := range txs {
			txs[j] = types.Transaction{ID: types.TxID{Client: 1, Seq: uint64(j)}, Command: make([]byte, 8<<10)}
		}
		blocks[i] = &types.Block{View: types.View(i), Proposer: 1, Payload: txs}
	}
	msg := types.SyncResponseMsg{Blocks: blocks, Head: 8}
	if n, ok := EncodedSize(msg); !ok || n <= shrinkCap {
		t.Fatalf("fixture too small to exercise the shrink path: %d", n)
	}
	enc := NewEncoder(io.Discard)
	if _, err := enc.Encode(Envelope{From: 1, Msg: msg}); err != nil {
		t.Fatal(err)
	}
	// Only putBuf feeds the pool, and it filters by capacity, so any
	// buffer the pool hands back now is below the shrink threshold.
	bp := getBuf(64)
	defer putBuf(bp)
	if cap(*bp) > shrinkCap {
		t.Fatalf("pool retained a %d-byte backing array past shrinkCap", cap(*bp))
	}
}

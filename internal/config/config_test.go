package config

import (
	"path/filepath"
	"testing"
	"time"

	"github.com/bamboo-bft/bamboo/internal/types"
)

// TestDefaultsMatchTableI pins the defaults to the paper's Table I.
func TestDefaultsMatchTableI(t *testing.T) {
	c := Default()
	if c.Master != 0 {
		t.Error("master default must be 0 (rotating)")
	}
	if c.Strategy != StrategySilence {
		t.Error("strategy default must be silence")
	}
	if c.ByzNo != 0 {
		t.Error("byzNo default must be 0")
	}
	if c.BlockSize != 400 {
		t.Error("bsize default must be 400")
	}
	if c.MemSize != 1000 {
		t.Error("memsize default must be 1000")
	}
	if c.PayloadSize != 0 {
		t.Error("psize default must be 0")
	}
	if c.Delay != 0 {
		t.Error("delay default must be 0")
	}
	if c.Timeout != 100*time.Millisecond {
		t.Error("timeout default must be 100ms")
	}
	if c.Runtime != 30*time.Second {
		t.Error("runtime default must be 30s")
	}
	if c.Concurrency != 10 {
		t.Error("concurrency default must be 10")
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("defaults must validate: %v", err)
	}
}

func TestQuorum(t *testing.T) {
	cases := []struct{ n, want int }{
		{4, 3}, {7, 5}, {8, 6}, {10, 7}, {16, 11}, {32, 22}, {64, 43}, {100, 67},
	}
	for _, c := range cases {
		if got := Quorum(c.n); got != c.want {
			t.Errorf("Quorum(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestMaxFaults(t *testing.T) {
	cases := []struct{ n, want int }{{4, 1}, {7, 2}, {10, 3}, {32, 10}, {64, 21}}
	for _, c := range cases {
		if got := MaxFaults(c.n); got != c.want {
			t.Errorf("MaxFaults(%d) = %d, want %d", c.n, got, c.want)
		}
	}
	// Quorum + faults relationship: two quorums overlap in >f nodes.
	for n := 4; n <= 100; n++ {
		q, f := Quorum(n), MaxFaults(n)
		if 2*q-n <= f {
			t.Errorf("n=%d: quorum intersection %d not > f=%d", n, 2*q-n, f)
		}
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"too few replicas", func(c *Config) { c.N = 3 }},
		{"empty protocol", func(c *Config) { c.Protocol = "" }},
		{"bad strategy", func(c *Config) { c.Strategy = "omission" }},
		{"byz exceeds f", func(c *Config) { c.ByzNo = 2 }}, // n=4 → f=1
		{"zero block size", func(c *Config) { c.BlockSize = 0 }},
		{"mempool under block", func(c *Config) { c.MemSize = 10 }},
		{"negative payload", func(c *Config) { c.PayloadSize = -1 }},
		{"zero timeout", func(c *Config) { c.Timeout = 0 }},
		{"zero runtime", func(c *Config) { c.Runtime = 0 }},
		{"negative runtime", func(c *Config) { c.Runtime = -time.Second }},
		{"zero mempool", func(c *Config) { c.MemSize = 0 }},
		{"negative mempool", func(c *Config) { c.MemSize = -1 }},
		{"negative concurrency", func(c *Config) { c.Concurrency = -1 }},
		{"master out of range", func(c *Config) { c.Master = 9 }},
		{"forest keep below minimum", func(c *Config) { c.ForestKeep = 7 }},
		{"negative forest keep", func(c *Config) { c.ForestKeep = -1 }},
		{"negative snapshot interval", func(c *Config) { c.SnapshotInterval = -1 }},
		{"snapshot interval below default keep window", func(c *Config) { c.SnapshotInterval = 8 }},
		{"snapshot interval below explicit keep window", func(c *Config) {
			c.ForestKeep = 12
			c.SnapshotInterval = 11
		}},
		{"address count mismatch", func(c *Config) {
			c.Addrs = map[types.NodeID]string{1: "x"}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := Default()
			tc.mut(&c)
			if err := c.Validate(); err == nil {
				t.Fatal("expected validation error")
			}
		})
	}
}

// TestSnapshotIntervalValidation: the interval is accepted at or
// above the keep window (matching or exceeding the block retention
// that bridges a snapshot to the live chain) and zero stays disabled.
func TestSnapshotIntervalValidation(t *testing.T) {
	c := Default()
	c.SnapshotInterval = 16 // equals the default keep window
	if err := c.Validate(); err != nil {
		t.Fatalf("interval at the keep window rejected: %v", err)
	}
	c = Default()
	c.ForestKeep = 8
	c.SnapshotInterval = 8
	if err := c.Validate(); err != nil {
		t.Fatalf("interval at a shrunken keep window rejected: %v", err)
	}
	c = Default()
	c.SnapshotInterval = 0
	if err := c.Validate(); err != nil {
		t.Fatalf("disabled interval rejected: %v", err)
	}
}

// TestForestKeepWindow: the keep window is configurable down to 8 (so
// tests can hit the deep-sync path fast), defaults to 16 when unset,
// and rejects anything in between.
func TestForestKeepWindow(t *testing.T) {
	c := Default()
	if c.ForestKeep != 16 || c.KeepWindow() != 16 {
		t.Fatalf("default keep window = %d/%d, want 16", c.ForestKeep, c.KeepWindow())
	}
	c.ForestKeep = 0
	if err := c.Validate(); err != nil {
		t.Fatalf("unset keep window rejected: %v", err)
	}
	if c.KeepWindow() != 16 {
		t.Fatalf("unset keep window resolves to %d, want 16", c.KeepWindow())
	}
	c.ForestKeep = 8
	if err := c.Validate(); err != nil {
		t.Fatalf("minimum keep window rejected: %v", err)
	}
	if c.KeepWindow() != 8 {
		t.Fatalf("keep window %d, want 8", c.KeepWindow())
	}
}

func TestIsByzantine(t *testing.T) {
	c := Default()
	c.N = 32
	c.ByzNo = 4
	c.Strategy = StrategyForking
	for id := types.NodeID(1); id <= 4; id++ {
		if !c.IsByzantine(id) {
			t.Errorf("node %s should be Byzantine", id)
		}
	}
	for id := types.NodeID(5); id <= 32; id++ {
		if c.IsByzantine(id) {
			t.Errorf("node %s should be honest", id)
		}
	}
	c.Strategy = StrategyHonest
	if c.IsByzantine(1) {
		t.Error("honest strategy must disable Byzantine behaviour")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bamboo.json")
	c := Default()
	c.N = 8
	c.Protocol = ProtocolStreamlet
	c.BlockSize = 800
	c.Delay = 5 * time.Millisecond
	if err := c.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.N != 8 || got.Protocol != ProtocolStreamlet || got.BlockSize != 800 || got.Delay != 5*time.Millisecond {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestLoadDerivesNFromAddrs(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bamboo.json")
	c := Default()
	c.Addrs = map[types.NodeID]string{
		1: "127.0.0.1:7001", 2: "127.0.0.1:7002",
		3: "127.0.0.1:7003", 4: "127.0.0.1:7004",
	}
	if err := c.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.N != 4 {
		t.Fatalf("N = %d, want 4 (derived from addresses)", got.N)
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Fatal("expected error for missing file")
	}
}

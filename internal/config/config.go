// Package config holds the run configuration for a Bamboo deployment.
// The parameters and their defaults mirror Table I of the paper; a
// configuration is fixed for a run and, for multi-process deployments,
// distributed to every node as a JSON file.
package config

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"time"

	"github.com/bamboo-bft/bamboo/internal/mempool"
	"github.com/bamboo-bft/bamboo/internal/types"
)

// Byzantine strategy names accepted by Config.Strategy.
const (
	StrategySilence    = "silence"
	StrategyForking    = "forking"
	StrategyEquivocate = "equivocate"
	StrategyHonest     = "" // empty means no Byzantine behaviour
)

// Protocol names accepted by Config.Protocol.
const (
	ProtocolHotStuff     = "hotstuff"
	ProtocolTwoChainHS   = "2chainhs"
	ProtocolStreamlet    = "streamlet"
	ProtocolFastHotStuff = "fasthotstuff"
	ProtocolOHS          = "ohs"
)

// Config collects every tunable of a run. Field comments cite the
// corresponding Table I parameter where one exists.
type Config struct {
	// Addrs lists the peers: key is the node ID, value the address
	// the node listens on (Table I "address"). Empty for in-process
	// clusters.
	Addrs map[types.NodeID]string `json:"address,omitempty"`

	// N is the total number of replicas. Derived from Addrs when
	// they are provided.
	N int `json:"n"`

	// Protocol selects the cBFT protocol (hotstuff, 2chainhs,
	// streamlet, fasthotstuff, ohs).
	Protocol string `json:"protocol"`

	// Master pins a static leader; 0 means rotating leaders
	// (Table I "master").
	Master types.NodeID `json:"master"`

	// Strategy is the Byzantine strategy run by Byzantine nodes
	// (Table I "strategy"; default silence).
	Strategy string `json:"strategy"`

	// ByzNo is the number of Byzantine nodes (Table I "byzNo").
	// Nodes 1..ByzNo follow Strategy.
	ByzNo int `json:"byzNo"`

	// StrategyDelay postpones the Byzantine strategy: attackers act
	// honestly until this long after start. The responsiveness
	// experiment (Figure 15) uses it to launch the silence attack
	// after the network fluctuation window.
	StrategyDelay time.Duration `json:"strategyDelay"`

	// BlockSize is the number of transactions per block
	// (Table I "bsize"; default 400).
	BlockSize int `json:"bsize"`

	// MemSize is the memory-pool capacity in transactions
	// (Table I "memsize"; default 1000 in the paper's table —
	// in practice runs use a capacity that comfortably exceeds the
	// offered load, which the paper's artifact also does).
	MemSize int `json:"memsize"`

	// MemPolicy selects what a full mempool does with the next
	// transaction: "" or "reject" (the default) turns it away — the
	// client sees a typed rejection, HTTP submitters a 429 — while
	// "queue" admits it into a bounded overflow band (MemQueue) so
	// overload shows up as queueing delay first and rejection only
	// once the band is exhausted too.
	MemPolicy string `json:"memPolicy,omitempty"`

	// MemQueue sizes the overflow band of MemPolicy "queue" in
	// transactions; 0 picks 4×MemSize. Meaningless (and rejected)
	// under the reject policy.
	MemQueue int `json:"memQueue,omitempty"`

	// PayloadSize is the per-transaction payload in bytes
	// (Table I "psize"; default 0).
	PayloadSize int `json:"psize"`

	// Delay adds artificial latency to every sent message
	// (Table I "delay"); DelayStd is its standard deviation.
	Delay    time.Duration `json:"delay"`
	DelayStd time.Duration `json:"delayStd"`

	// Timeout is the view timer (Table I "timeout"; default 100ms).
	Timeout time.Duration `json:"timeout"`

	// Runtime is how long clients run (Table I "runtime"; 30s).
	Runtime time.Duration `json:"runtime"`

	// Concurrency is the number of concurrent closed-loop clients
	// (Table I "concurrency"; default 10).
	Concurrency int `json:"concurrency"`

	// CryptoScheme selects vote/block authentication: "ed25519"
	// (default), "hmac", or "noop" (benchmarks only).
	CryptoScheme string `json:"crypto"`

	// Seed drives deterministic key generation and workload
	// randomness; runs with equal seeds are reproducible.
	Seed int64 `json:"seed"`

	// Responsive, when true, lets a new leader propose as soon as
	// it collects a quorum of timeouts/new-view messages after a
	// view change (HotStuff's optimistic responsiveness). When
	// false the leader waits MaxNetworkDelay, the behaviour the
	// paper assigns to 2CHS/Streamlet in the t100 setting.
	Responsive bool `json:"responsive"`

	// MaxNetworkDelay is the assumed maximum network delay Δ a
	// non-responsive leader waits after a view change.
	MaxNetworkDelay time.Duration `json:"maxNetworkDelay"`

	// Bandwidth models per-NIC throughput in bytes/second for the
	// in-process transport (0 disables bandwidth modelling).
	Bandwidth float64 `json:"bandwidth"`

	// DigestProposals separates the data plane from the consensus
	// plane: proposals are broadcast carrying the payload digest and
	// ordered transaction IDs instead of full transactions, and
	// followers rebuild the payload from their indexed mempool
	// (falling back to a fetch from the proposer when transactions
	// are missing). Pair with client fan-out so follower pools hold
	// the payload before the proposal arrives.
	DigestProposals bool `json:"digestProposals"`

	// AsyncVerify moves proposal, vote, and timeout signature
	// verification off the replica's event loop onto a bounded
	// worker pool with batch verification, so crypto no longer
	// serializes the forest and safety rules.
	AsyncVerify bool `json:"asyncVerify"`

	// VerifyWorkers sizes the verification pool; 0 picks the number
	// of CPUs, capped at 8.
	VerifyWorkers int `json:"verifyWorkers"`

	// AsyncCommit applies committed blocks (the Execute hook and
	// ledger append) on an ordered commit-apply goroutine with a
	// bounded queue, so block execution no longer stalls voting.
	AsyncCommit bool `json:"asyncCommit"`

	// ApplyQueue bounds the staged-commit backlog in blocks; once
	// full, commits apply backpressure to the event loop. 0 picks
	// the default of 128.
	ApplyQueue int `json:"applyQueue"`

	// SnapshotInterval, when positive, snapshots the replica's state
	// machine every that-many committed heights: the canonical
	// kvstore serialization plus the certified block header at the
	// snapshot height is persisted next to the ledger, and the ledger
	// compacts the covered prefix. Snapshots are what serve catch-up
	// for peers whose gap outruns every retained ledger prefix
	// (transfer cost O(state) instead of O(chain)) and what a
	// restarted replica restores before replaying its ledger suffix.
	// Zero disables snapshotting (the ledger then retains the whole
	// chain). Enabled values below the forest keep window are
	// rejected: the window of full blocks above a snapshot is what
	// lets peers bridge the snapshot to the live chain. Capture runs
	// on the commit path — pair with AsyncCommit for large states, or
	// the serialization and ledger compaction stall the event loop.
	SnapshotInterval int `json:"snapshotInterval"`

	// ForestKeep is how many committed heights of full blocks the
	// forest retains below the tip for parent lookups and shallow
	// catch-up serving; deeper history is served from the ledger by
	// state sync. 0 picks the default of 16; values below 8 are
	// rejected (the engine needs a few heights of slack for orphan
	// attachment and fork bookkeeping). Tests shrink it to exercise
	// the deep-sync path quickly.
	ForestKeep int `json:"forestKeep"`
}

// Default returns the paper's Table I defaults: rotating leaders,
// silence strategy with zero Byzantine nodes, 400-transaction blocks,
// 1000-transaction mempool, zero payload and added delay, 100 ms view
// timeout, 30 s client runtime, concurrency 10.
func Default() Config {
	return Config{
		N:               4,
		Protocol:        ProtocolHotStuff,
		Master:          0,
		Strategy:        StrategySilence,
		ByzNo:           0,
		BlockSize:       400,
		MemSize:         1000,
		PayloadSize:     0,
		Delay:           0,
		Timeout:         100 * time.Millisecond,
		Runtime:         30 * time.Second,
		Concurrency:     10,
		CryptoScheme:    "ed25519",
		Seed:            1,
		Responsive:      true,
		MaxNetworkDelay: 20 * time.Millisecond,
		ForestKeep:      16,
	}
}

// MemQueueDepth returns the effective overflow band of the mempool:
// zero under the reject policy, MemQueue (default 4×MemSize) under the
// queue policy.
func (c *Config) MemQueueDepth() int {
	if c.MemPolicy != mempool.PolicyQueue {
		return 0
	}
	if c.MemQueue > 0 {
		return c.MemQueue
	}
	return 4 * c.MemSize
}

// KeepWindow returns the effective forest keep window: ForestKeep, or
// the default of 16 when unset.
func (c *Config) KeepWindow() int {
	if c.ForestKeep <= 0 {
		return 16
	}
	return c.ForestKeep
}

// Quorum returns the vote threshold n−f with f = ⌊(n−1)/3⌋. For
// n = 3f+1 this is the classic 2f+1; for other n it is the smallest
// count whose pairwise intersections always contain an honest node.
func Quorum(n int) int {
	return n - MaxFaults(n)
}

// Quorum returns Quorum(c.N) for this configuration's cluster size.
func (c *Config) Quorum() int { return Quorum(c.N) }

// MaxFaults returns f = ⌊(n−1)/3⌋, the tolerated Byzantine faults.
func MaxFaults(n int) int { return (n - 1) / 3 }

// Validate checks internal consistency and reports the first problem.
func (c *Config) Validate() error {
	if c.N < 4 {
		return fmt.Errorf("config: need at least 4 replicas, have %d", c.N)
	}
	if len(c.Addrs) > 0 && len(c.Addrs) != c.N {
		return fmt.Errorf("config: %d addresses for %d replicas", len(c.Addrs), c.N)
	}
	if c.Protocol == "" {
		return errors.New("config: protocol must be set")
	}
	// Names beyond the built-in constants are allowed here: custom
	// protocols register with the protocol registry, which is the
	// authority that rejects truly unknown names at cluster build.
	switch c.Strategy {
	case StrategyHonest, StrategySilence, StrategyForking, StrategyEquivocate:
	default:
		return fmt.Errorf("config: unknown Byzantine strategy %q", c.Strategy)
	}
	if c.ByzNo < 0 || c.ByzNo > MaxFaults(c.N) {
		return fmt.Errorf("config: byzNo %d exceeds f=%d for n=%d", c.ByzNo, MaxFaults(c.N), c.N)
	}
	if c.BlockSize <= 0 {
		return errors.New("config: block size must be positive")
	}
	if c.MemSize <= 0 {
		return fmt.Errorf("config: memsize must be positive, have %d", c.MemSize)
	}
	if c.MemSize < c.BlockSize {
		return fmt.Errorf("config: memsize %d smaller than block size %d", c.MemSize, c.BlockSize)
	}
	switch c.MemPolicy {
	case "", mempool.PolicyReject, mempool.PolicyQueue:
	default:
		return fmt.Errorf("config: unknown mempool policy %q (want %q or %q)",
			c.MemPolicy, mempool.PolicyReject, mempool.PolicyQueue)
	}
	if c.MemQueue < 0 {
		return errors.New("config: memQueue must be non-negative")
	}
	if c.MemQueue > 0 && c.MemPolicy != mempool.PolicyQueue {
		return fmt.Errorf("config: memQueue %d without memPolicy %q", c.MemQueue, mempool.PolicyQueue)
	}
	if c.PayloadSize < 0 {
		return errors.New("config: payload size must be non-negative")
	}
	if c.Timeout <= 0 {
		return errors.New("config: timeout must be positive")
	}
	if c.Runtime <= 0 {
		return errors.New("config: runtime must be positive")
	}
	if c.Concurrency < 0 {
		return errors.New("config: concurrency must be non-negative")
	}
	if int(c.Master) > c.N {
		return fmt.Errorf("config: master %d out of range for n=%d", c.Master, c.N)
	}
	if c.VerifyWorkers < 0 {
		return errors.New("config: verify workers must be non-negative")
	}
	if c.ApplyQueue < 0 {
		return errors.New("config: apply queue must be non-negative")
	}
	if c.ForestKeep != 0 && c.ForestKeep < 8 {
		return fmt.Errorf("config: forest keep window %d below minimum 8", c.ForestKeep)
	}
	if c.SnapshotInterval < 0 {
		return errors.New("config: snapshot interval must be non-negative")
	}
	if c.SnapshotInterval != 0 && c.SnapshotInterval < c.KeepWindow() {
		return fmt.Errorf("config: snapshot interval %d below forest keep window %d",
			c.SnapshotInterval, c.KeepWindow())
	}
	return nil
}

// ApplyProtocolDefaults sets the per-protocol responsiveness default:
// HotStuff, Fast-HotStuff, and OHS propose as soon as a quorum of
// timeouts arrives after a view change; 2CHS and Streamlet wait the
// maximum network delay. Experiments (e.g. Figure 15's t10/t100
// settings) override Responsive after calling this.
func (c *Config) ApplyProtocolDefaults() {
	switch c.Protocol {
	case ProtocolHotStuff, ProtocolFastHotStuff, ProtocolOHS:
		c.Responsive = true
	case ProtocolTwoChainHS, ProtocolStreamlet:
		c.Responsive = false
	}
}

// IsByzantine reports whether id runs the Byzantine strategy under
// this configuration (the first ByzNo node IDs are Byzantine).
func (c *Config) IsByzantine(id types.NodeID) bool {
	return c.ByzNo > 0 && c.Strategy != StrategyHonest && int(id) <= c.ByzNo
}

// Load reads a JSON configuration file, applying defaults for any
// field the file omits.
func Load(path string) (Config, error) {
	c := Default()
	data, err := os.ReadFile(path)
	if err != nil {
		return c, fmt.Errorf("config: %w", err)
	}
	if err := json.Unmarshal(data, &c); err != nil {
		return c, fmt.Errorf("config: parse %s: %w", path, err)
	}
	if len(c.Addrs) > 0 {
		c.N = len(c.Addrs)
	}
	if err := c.Validate(); err != nil {
		return c, err
	}
	return c, nil
}

// Save writes the configuration as indented JSON.
func (c *Config) Save(path string) error {
	data, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return fmt.Errorf("config: %w", err)
	}
	return os.WriteFile(path, data, 0o644)
}

package types

// Wire-format registry: the stable numbering that lets a hand-rolled
// binary codec identify message types without gob's per-connection
// type dictionaries. The byte-level encoding lives in internal/codec;
// this file owns only the identity rules, because they must outlive
// any single codec implementation:
//
//   - Tags are never reused. A retired message keeps its number
//     forever (mark it reserved); a new message takes the next free
//     one. Reusing a tag would make two deployments parse each
//     other's frames as the wrong type without any error.
//   - New fields append. Within one WireVersion, decoders ignore
//     trailing bytes they do not understand, so a newer encoder may
//     append fields and still interoperate with an older decoder.
//   - WireVersion bumps only for incompatible re-layouts (field
//     reordering, width changes, removed fields). A decoder rejects
//     frames carrying a version it does not speak.

// WireVersion is the current frame format version, carried in every
// frame header.
const WireVersion = 1

// WireTag identifies a message type on the wire. The zero value is
// invalid, so an all-zero frame never parses as a real message.
type WireTag uint8

// The stable tag assignments. Append only; never renumber.
const (
	TagInvalid          WireTag = 0
	TagProposal         WireTag = 1
	TagVote             WireTag = 2
	TagTimeout          WireTag = 3
	TagTC               WireTag = 4
	TagFetch            WireTag = 5
	TagSyncRequest      WireTag = 6
	TagSyncResponse     WireTag = 7
	TagSnapshotRequest  WireTag = 8
	TagSnapshotManifest WireTag = 9
	TagSnapshotChunk    WireTag = 10
	TagRequest          WireTag = 11
	TagPayloadBatch     WireTag = 12
	TagReply            WireTag = 13
	TagQuery            WireTag = 14
	TagQueryReply       WireTag = 15
	TagSlow             WireTag = 16
)

// WireTagOf returns the stable tag for a registered wire message, or
// (TagInvalid, false) for anything else. Messages travel as values, so
// only value forms are registered.
func WireTagOf(msg any) (WireTag, bool) {
	switch msg.(type) {
	case ProposalMsg:
		return TagProposal, true
	case VoteMsg:
		return TagVote, true
	case TimeoutMsg:
		return TagTimeout, true
	case TCMsg:
		return TagTC, true
	case FetchMsg:
		return TagFetch, true
	case SyncRequestMsg:
		return TagSyncRequest, true
	case SyncResponseMsg:
		return TagSyncResponse, true
	case SnapshotRequestMsg:
		return TagSnapshotRequest, true
	case SnapshotManifestMsg:
		return TagSnapshotManifest, true
	case SnapshotChunkMsg:
		return TagSnapshotChunk, true
	case RequestMsg:
		return TagRequest, true
	case PayloadBatchMsg:
		return TagPayloadBatch, true
	case ReplyMsg:
		return TagReply, true
	case QueryMsg:
		return TagQuery, true
	case QueryReplyMsg:
		return TagQueryReply, true
	case SlowMsg:
		return TagSlow, true
	}
	return TagInvalid, false
}

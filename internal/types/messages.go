package types

// Message kinds exchanged between replicas and between clients and
// replicas. The network layer carries them as interface values; the
// codec registers the concrete types for wire encoding.

// ProposalMsg disseminates a block proposal from the view leader.
//
// In digest mode (Config.DigestProposals) the block travels stripped:
// Block.Payload is empty, Block.Digest commits to the payload, and
// PayloadIDs lists the batched transactions in order. Followers
// rebuild the payload from their indexed mempool and fall back to a
// FetchMsg when transactions are missing — the data plane rides the
// client fan-out path instead of the leader's proposal.
type ProposalMsg struct {
	Block *Block
	// TC, if non-nil, justifies proposing after a view change: it
	// proves a quorum abandoned the previous view.
	TC *TC
	// PayloadIDs, when non-empty, identifies the stripped payload's
	// transactions in batch order (digest mode only).
	PayloadIDs []TxID
}

// IsDigest reports whether the proposal travels in digest form: the
// payload replaced by its digest plus the ordered transaction IDs.
func (m *ProposalMsg) IsDigest() bool {
	return m.Block != nil && len(m.Block.Payload) == 0 && len(m.PayloadIDs) > 0
}

// VoteMsg carries a vote, routed either to the next leader (HotStuff
// family) or broadcast (Streamlet).
type VoteMsg struct {
	Vote *Vote
}

// TimeoutMsg broadcasts a replica's view timeout.
type TimeoutMsg struct {
	Timeout *Timeout
}

// TCMsg forwards an assembled timeout certificate, in particular to
// the leader of the next view.
type TCMsg struct {
	TC *TC
}

// RequestMsg submits a transaction from a client to a replica.
type RequestMsg struct {
	Tx Transaction
}

// PayloadBatchMsg replicates a batch of client transactions to peer
// mempools — the data plane of digest mode. Replicas forward the
// transactions they receive in batches, off the consensus critical
// path, so any leader's digest proposal resolves from the follower's
// own pool instead of riding the proposal.
type PayloadBatchMsg struct {
	Txs []Transaction
}

// ReplyMsg confirms to a client that its transaction committed, or —
// when Rejected is set — that the replica's memory pool refused it.
type ReplyMsg struct {
	TxID     TxID
	View     View
	BlockID  Hash
	Rejected bool
}

// FetchMsg asks a peer for a missing ancestor block — simple catch-up
// for replicas that missed a proposal (e.g. across a healed partition).
type FetchMsg struct {
	BlockID Hash
}

// SyncRequestMsg asks a peer for a contiguous range of committed
// blocks — the deep catch-up path for replicas whose gap outruns the
// forest keep window, where per-block FetchMsg walks dead-end. From is
// the first wanted height (the requester's committed height plus one);
// To bounds the range, with zero meaning "as far as you have". Peers
// serve the range from their persistent ledger, falling back to the
// in-memory forest for recent heights.
type SyncRequestMsg struct {
	From uint64
	To   uint64
}

// SyncResponseMsg answers a SyncRequestMsg with committed blocks in
// height order starting at From. Each block carries the quorum
// certificate for its parent, so the requester verifies the whole
// range as a certified chain anchored at its own committed head —
// forged history from a Byzantine peer fails certificate verification.
// Head is the responder's committed height; an empty Blocks slice with
// Head at or below the requester's height tells it catch-up is done.
// Floor, when non-zero, is the lowest height the responder can still
// serve: its ledger prefix below it was compacted away once a state
// snapshot covered it. An empty response with Floor above the
// requested height tells the requester that block-by-block catch-up
// cannot bridge its gap and it must fall back to snapshot transfer.
type SyncResponseMsg struct {
	From   uint64
	Blocks []*Block
	Head   uint64
	Floor  uint64
}

// SnapshotRequestMsg drives snapshot transfer, the catch-up path for
// a replica whose gap outruns every peer's retained ledger prefix.
// With Height zero it asks the peer for the manifest of its latest
// state snapshot; with Height set it asks for chunk Chunk of the
// snapshot at that height.
type SnapshotRequestMsg struct {
	Height uint64
	Chunk  uint32
}

// SnapshotManifestMsg describes a peer's latest state snapshot: the
// committed block header it anchors to (payload stripped), a quorum
// certificate for that block, the canonical state serialization's
// digest and size, and the per-chunk digests at the serving chunk
// size. The manifest is the trust decision surface: a requester
// cross-checks {Height, Block, StateDigest} across f+1 peers and
// verifies the certificate before streaming a single chunk.
type SnapshotManifestMsg struct {
	Height      uint64
	Block       *Block
	QC          *QC
	StateDigest Hash
	TotalSize   uint64
	ChunkSize   uint32
	// ChunkDigests[i] hashes chunk i, letting the requester reject a
	// tampered chunk on arrival instead of after the full stream.
	ChunkDigests []Hash
}

// SnapshotChunkMsg carries one verified-size piece of a snapshot's
// state serialization, answering a chunk-indexed SnapshotRequestMsg.
type SnapshotChunkMsg struct {
	Height uint64
	Chunk  uint32
	Data   []byte
}

// QueryMsg asks a replica for local state (committed height, metrics);
// used by the HTTP API and the benchmarker.
type QueryMsg struct {
	// Height, if non-zero, requests the committed block hash at
	// that height for cross-replica consistency checks.
	Height uint64
}

// QueryReplyMsg answers a QueryMsg.
type QueryReplyMsg struct {
	CommittedHeight uint64
	CommittedView   View
	BlockHash       Hash
}

// SlowMsg adjusts a replica's artificial message delay at run time
// (the paper's "slow" command used to simulate network fluctuation).
type SlowMsg struct {
	// DelayMeanNanos and DelayStdNanos set the extra outbound
	// delay distribution; zero clears it.
	DelayMeanNanos int64
	DelayStdNanos  int64
}

// Package types defines the basic identifiers and wire-level data
// structures shared by every chained-BFT protocol built on Bamboo:
// views, node identifiers, transactions, blocks, quorum certificates,
// votes, timeouts, and timeout certificates.
//
// The structures mirror Section II of "Dissecting the Performance of
// Chained-BFT" (ICDCS 2021): a block carries a hash link to its parent
// and a quorum certificate (QC) certifying that parent, so a vote on a
// block implicitly extends votes on its ancestors.
package types

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sync"
)

// View is a monotonically increasing protocol round. Each view has a
// designated leader chosen by the election module.
type View uint64

// NodeID identifies a replica. IDs are dense, starting at 1; ID 0 is
// reserved to mean "no node".
type NodeID uint32

// NoNode is the zero NodeID, used where a node reference is absent.
const NoNode NodeID = 0

// String implements fmt.Stringer.
func (id NodeID) String() string { return fmt.Sprintf("n%d", uint32(id)) }

// Hash is a 32-byte SHA-256 digest used for block identifiers and
// parent links.
type Hash [32]byte

// ZeroHash is the all-zero hash, used as the genesis parent link.
var ZeroHash Hash

// String renders the first four bytes of the hash in hex.
func (h Hash) String() string { return fmt.Sprintf("%x", h[:4]) }

// IsZero reports whether h is the all-zero hash.
func (h Hash) IsZero() bool { return h == ZeroHash }

// TxID uniquely identifies a transaction by its issuing client and a
// client-local sequence number. Using a comparable struct keeps
// duplicate suppression allocation-free.
type TxID struct {
	Client uint64
	Seq    uint64
}

// String implements fmt.Stringer.
func (t TxID) String() string { return fmt.Sprintf("c%d/%d", t.Client, t.Seq) }

// Transaction is a client command replicated by the protocol. The
// payload is opaque to consensus; the execution layer (e.g. the
// in-memory key-value store) interprets it after commit.
type Transaction struct {
	ID      TxID
	Command []byte
	// SubmitUnixNano records the client submission time for
	// client-side latency measurement. It is carried through the
	// system untouched.
	SubmitUnixNano int64
}

// Size returns the wire-relevant size of the transaction in bytes:
// identifier, timestamp, and payload. It is what the network layer
// charges against link bandwidth.
func (tx *Transaction) Size() int { return 24 + len(tx.Command) }

// QC is a quorum certificate: proof that a quorum (2f+1 of n) of
// replicas voted for the block identified by BlockID in View.
// Signers[i] produced Sigs[i] over the (View, BlockID) pair.
type QC struct {
	View    View
	BlockID Hash
	Signers []NodeID
	Sigs    [][]byte
}

// Clone returns a deep copy of the QC. QCs are shared across replicas
// in in-process deployments, so mutating paths must copy first.
func (qc *QC) Clone() *QC {
	if qc == nil {
		return nil
	}
	cp := &QC{View: qc.View, BlockID: qc.BlockID}
	cp.Signers = append([]NodeID(nil), qc.Signers...)
	cp.Sigs = make([][]byte, len(qc.Sigs))
	for i, s := range qc.Sigs {
		cp.Sigs[i] = append([]byte(nil), s...)
	}
	return cp
}

// IsGenesis reports whether the QC certifies the genesis block.
func (qc *QC) IsGenesis() bool { return qc != nil && qc.View == 0 }

// SigningDigest returns the digest replicas sign when voting for
// (view, blockID). Votes and QCs share this digest so a QC is exactly
// an aggregation of vote signatures.
func SigningDigest(view View, blockID Hash) []byte {
	var buf [8 + 32]byte
	binary.BigEndian.PutUint64(buf[:8], uint64(view))
	copy(buf[8:], blockID[:])
	sum := sha256.Sum256(buf[:])
	return sum[:]
}

// TimeoutDigest returns the digest replicas sign on a timeout for a
// view. A timeout certificate aggregates these signatures.
func TimeoutDigest(view View) []byte {
	var buf [16]byte
	binary.BigEndian.PutUint64(buf[:8], uint64(view))
	copy(buf[8:], "timeout!")
	sum := sha256.Sum256(buf[:])
	return sum[:]
}

// DigestPayload hashes an ordered transaction batch: each transaction's
// identifier and command, in batch order. It is the payload commitment
// blocks carry, and what lets a proposal travel as a digest plus
// transaction IDs while followers rebuild the batch from their own
// memory pools (the data-plane/consensus-plane split).
func DigestPayload(txs []Transaction) Hash {
	h := sha256.New()
	var buf [8]byte
	for i := range txs {
		tx := &txs[i]
		binary.BigEndian.PutUint64(buf[:], tx.ID.Client)
		h.Write(buf[:])
		binary.BigEndian.PutUint64(buf[:], tx.ID.Seq)
		h.Write(buf[:])
		h.Write(tx.Command)
	}
	var out Hash
	copy(out[:], h.Sum(nil))
	return out
}

// Block is the unit of replication. Its QC certifies the parent block,
// cryptographically chaining blocks together.
type Block struct {
	View     View
	Proposer NodeID
	// Parent is the hash of the parent block; it always equals
	// QC.BlockID for honest proposers.
	Parent  Hash
	QC      *QC
	Payload []Transaction
	// Digest commits to the payload (see DigestPayload). It is
	// computed lazily from Payload for full blocks and carried
	// explicitly on digest-only proposals, whose Payload is empty
	// until the follower resolves it from its mempool.
	Digest Hash
	// Sig is the proposer's signature over the block ID.
	Sig []byte

	// id caches the block hash; compute with ID(). The once guard
	// makes first use safe from any goroutine: blocks travel by
	// pointer between in-process replicas, so two event loops may
	// materialize the same block's hash concurrently.
	idOnce sync.Once
	id     Hash
}

// PayloadDigest returns the block's payload commitment, materializing
// the block identity (which caches the digest) on first use. Blocks
// with an empty payload and no explicit digest commit to the zero
// hash.
func (b *Block) PayloadDigest() Hash {
	b.idOnce.Do(b.computeID)
	return b.Digest
}

// ID returns the block's hash, computing and caching it on first use.
// The hash covers view, proposer, parent link, the certified parent's
// view, and the payload digest — everything that determines the
// block's position and contents. Because the payload enters through
// its digest, the ID of a digest-only proposal equals the ID of the
// full block, so signatures verify before the payload is resolved.
func (b *Block) ID() Hash {
	b.idOnce.Do(b.computeID)
	return b.id
}

// computeID runs exactly once per block, under idOnce: it fills the
// payload digest (when the block carries its payload inline) and the
// block hash.
func (b *Block) computeID() {
	if b.Digest.IsZero() && len(b.Payload) > 0 {
		b.Digest = DigestPayload(b.Payload)
	}
	h := sha256.New()
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], uint64(b.View))
	h.Write(buf[:])
	binary.BigEndian.PutUint64(buf[:], uint64(b.Proposer))
	h.Write(buf[:])
	h.Write(b.Parent[:])
	if b.QC != nil {
		binary.BigEndian.PutUint64(buf[:], uint64(b.QC.View))
		h.Write(buf[:])
		h.Write(b.QC.BlockID[:])
	}
	h.Write(b.Digest[:])
	copy(b.id[:], h.Sum(nil))
}

// StripPayload returns a copy of the block carrying the payload digest
// instead of the payload itself — the wire form of a digest-only
// proposal. The copy shares the (immutable) QC and signature and has
// its ID pre-computed, so concurrent receivers never mutate the
// original block.
func (b *Block) StripPayload() *Block {
	cp := &Block{
		View:     b.View,
		Proposer: b.Proposer,
		Parent:   b.Parent,
		QC:       b.QC,
		Digest:   b.PayloadDigest(),
		Sig:      b.Sig,
	}
	cp.idOnce.Do(func() { cp.id = b.ID() })
	return cp
}

// WithPayload returns a copy of the block with the resolved payload
// attached. It is the inverse of StripPayload on the follower side;
// the caller must have checked that DigestPayload(payload) matches
// the block's digest.
func (b *Block) WithPayload(payload []Transaction) *Block {
	cp := &Block{
		View:     b.View,
		Proposer: b.Proposer,
		Parent:   b.Parent,
		QC:       b.QC,
		Payload:  payload,
		Digest:   b.PayloadDigest(),
		Sig:      b.Sig,
	}
	cp.idOnce.Do(func() { cp.id = b.ID() })
	return cp
}

// Size returns the approximate wire size of the block in bytes,
// charged against link bandwidth by the network layer.
func (b *Block) Size() int {
	n := 8 + 4 + 32 + len(b.Sig) // header
	if b.QC != nil {
		n += 8 + 32
		for _, s := range b.QC.Sigs {
			n += 4 + len(s)
		}
		n += 4 * len(b.QC.Signers)
	}
	for i := range b.Payload {
		n += b.Payload[i].Size()
	}
	return n
}

// String implements fmt.Stringer.
func (b *Block) String() string {
	return fmt.Sprintf("block{v=%d id=%s parent=%s txs=%d}", b.View, b.ID(), b.Parent, len(b.Payload))
}

// Vote is a replica's signed endorsement of a block.
type Vote struct {
	View    View
	BlockID Hash
	Voter   NodeID
	Sig     []byte
}

// String implements fmt.Stringer.
func (v *Vote) String() string {
	return fmt.Sprintf("vote{v=%d block=%s from=%s}", v.View, v.BlockID, v.Voter)
}

// Timeout is a replica's signed declaration that its timer for View
// expired. It carries the replica's highest known QC so the next
// leader can safely extend the freshest certified block.
type Timeout struct {
	View   View
	Voter  NodeID
	HighQC *QC
	Sig    []byte
}

// String implements fmt.Stringer.
func (t *Timeout) String() string {
	return fmt.Sprintf("timeout{v=%d from=%s}", t.View, t.Voter)
}

// TC is a timeout certificate: proof that a quorum of replicas timed
// out of View. Receiving a TC advances a replica to View+1. HighQC is
// the freshest QC among the aggregated timeouts.
type TC struct {
	View    View
	Signers []NodeID
	Sigs    [][]byte
	HighQC  *QC
}

// String implements fmt.Stringer.
func (tc *TC) String() string { return fmt.Sprintf("tc{v=%d n=%d}", tc.View, len(tc.Signers)) }

package types

// Genesis returns the canonical genesis block shared by every replica.
// The genesis block occupies view 0, has no parent, and is considered
// certified and committed from the start; its QC (see GenesisQC) is
// what the first real proposal extends.
func Genesis() *Block {
	b := &Block{
		View:     0,
		Proposer: NoNode,
		Parent:   ZeroHash,
		QC:       nil,
	}
	b.ID() // pre-compute and cache the hash
	return b
}

// GenesisQC returns the implicit quorum certificate for the genesis
// block. It carries no signatures; verifiers treat view-0 QCs as valid
// by construction.
func GenesisQC() *QC {
	return &QC{View: 0, BlockID: Genesis().ID()}
}

package types

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestBlockIDDeterministic(t *testing.T) {
	mk := func() *Block {
		return &Block{
			View:     7,
			Proposer: 3,
			Parent:   Hash{1, 2, 3},
			QC:       &QC{View: 6, BlockID: Hash{1, 2, 3}},
			Payload: []Transaction{
				{ID: TxID{Client: 1, Seq: 9}, Command: []byte("set x 1")},
			},
		}
	}
	a, b := mk(), mk()
	if a.ID() != b.ID() {
		t.Fatalf("identical blocks hash differently: %s vs %s", a.ID(), b.ID())
	}
}

func TestBlockIDSensitivity(t *testing.T) {
	// Build a fresh block per variant: the hash cache is fixed at
	// first use (and guarded by a sync.Once, so blocks cannot be
	// copied by value).
	id := func(mut func(*Block)) Hash {
		b := &Block{
			View:     7,
			Proposer: 3,
			Parent:   Hash{1},
			QC:       &QC{View: 6, BlockID: Hash{1}},
			Payload:  []Transaction{{ID: TxID{Client: 1, Seq: 1}, Command: []byte("a")}},
		}
		mut(b)
		return b.ID()
	}
	orig := id(func(*Block) {})
	cases := map[string]func(*Block){
		"view":     func(b *Block) { b.View = 8 },
		"proposer": func(b *Block) { b.Proposer = 4 },
		"parent":   func(b *Block) { b.Parent = Hash{2} },
		"qc view":  func(b *Block) { b.QC = &QC{View: 5, BlockID: Hash{1}} },
		"payload": func(b *Block) {
			b.Payload = []Transaction{{ID: TxID{Client: 1, Seq: 2}, Command: []byte("a")}}
		},
		"command": func(b *Block) {
			b.Payload = []Transaction{{ID: TxID{Client: 1, Seq: 1}, Command: []byte("b")}}
		},
	}
	for name, mut := range cases {
		if id(mut) == orig {
			t.Errorf("mutating %s did not change block ID", name)
		}
	}
}

func TestBlockIDCached(t *testing.T) {
	b := &Block{View: 1, Proposer: 1}
	first := b.ID()
	// Mutating after hashing must not change the cached ID: the ID is
	// fixed at first computation (proposers hash before signing).
	b.View = 99
	if b.ID() != first {
		t.Fatal("block ID not cached")
	}
}

func TestQCClone(t *testing.T) {
	qc := &QC{
		View:    3,
		BlockID: Hash{9},
		Signers: []NodeID{1, 2, 3},
		Sigs:    [][]byte{{1}, {2}, {3}},
	}
	cp := qc.Clone()
	cp.Signers[0] = 42
	cp.Sigs[0][0] = 42
	if qc.Signers[0] != 1 || qc.Sigs[0][0] != 1 {
		t.Fatal("Clone shares memory with original")
	}
	if (*QC)(nil).Clone() != nil {
		t.Fatal("nil Clone should be nil")
	}
}

func TestSigningDigestDistinct(t *testing.T) {
	d1 := SigningDigest(1, Hash{1})
	d2 := SigningDigest(2, Hash{1})
	d3 := SigningDigest(1, Hash{2})
	if bytes.Equal(d1, d2) || bytes.Equal(d1, d3) {
		t.Fatal("signing digests collide across view/block")
	}
	if bytes.Equal(TimeoutDigest(1), SigningDigest(1, ZeroHash)) {
		t.Fatal("timeout digest must differ from vote digest domain")
	}
}

func TestGenesisStable(t *testing.T) {
	if Genesis().ID() != Genesis().ID() {
		t.Fatal("genesis hash unstable")
	}
	qc := GenesisQC()
	if !qc.IsGenesis() {
		t.Fatal("genesis QC not recognized")
	}
	if qc.BlockID != Genesis().ID() {
		t.Fatal("genesis QC does not certify genesis block")
	}
}

func TestTransactionSize(t *testing.T) {
	tx := Transaction{ID: TxID{1, 1}, Command: make([]byte, 128)}
	if got := tx.Size(); got != 24+128 {
		t.Fatalf("tx size = %d, want %d", got, 152)
	}
}

func TestBlockSizeGrowsWithPayload(t *testing.T) {
	small := &Block{View: 1, QC: GenesisQC()}
	big := &Block{View: 1, QC: GenesisQC(), Payload: make([]Transaction, 100)}
	for i := range big.Payload {
		big.Payload[i] = Transaction{ID: TxID{1, uint64(i)}, Command: make([]byte, 64)}
	}
	if big.Size() <= small.Size() {
		t.Fatal("block size must grow with payload")
	}
}

// Property: distinct (view, block) pairs yield distinct signing
// digests (collision would let a vote be replayed across views).
func TestSigningDigestInjectiveQuick(t *testing.T) {
	f := func(v1, v2 uint64, b1, b2 [32]byte) bool {
		if v1 == v2 && b1 == b2 {
			return true
		}
		return !bytes.Equal(SigningDigest(View(v1), Hash(b1)), SigningDigest(View(v2), Hash(b2)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStringers(t *testing.T) {
	// Smoke-test the Stringer implementations; they feed logs and
	// bench output so they must not panic on partial values.
	b := &Block{View: 1}
	for _, s := range []string{
		NodeID(3).String(), Hash{0xab}.String(), TxID{1, 2}.String(),
		b.String(), (&Vote{}).String(), (&Timeout{}).String(), (&TC{}).String(),
	} {
		if s == "" {
			t.Fatal("empty Stringer output")
		}
	}
}

package types

import (
	"bytes"
	"testing"
)

func digestPayloadFixture() []Transaction {
	return []Transaction{
		{ID: TxID{Client: 1, Seq: 1}, Command: []byte("set a 1")},
		{ID: TxID{Client: 2, Seq: 7}, Command: []byte("set b 2")},
	}
}

func TestDigestPayloadSensitivity(t *testing.T) {
	base := DigestPayload(digestPayloadFixture())
	if base.IsZero() {
		t.Fatal("digest of non-empty payload is zero")
	}
	reordered := digestPayloadFixture()
	reordered[0], reordered[1] = reordered[1], reordered[0]
	if DigestPayload(reordered) == base {
		t.Fatal("digest ignores order")
	}
	tampered := digestPayloadFixture()
	tampered[1].Command = []byte("set b 3")
	if DigestPayload(tampered) == base {
		t.Fatal("digest ignores command bytes")
	}
	renamed := digestPayloadFixture()
	renamed[1].ID.Seq = 8
	if DigestPayload(renamed) == base {
		t.Fatal("digest ignores transaction IDs")
	}
}

// TestStripAndResolveRoundTrip is the digest-proposal invariant the
// whole data-plane split rests on: a stripped block and its resolved
// counterpart share the ID of the original full block, so signatures
// verify before resolution and the forest sees one identity.
func TestStripAndResolveRoundTrip(t *testing.T) {
	payload := digestPayloadFixture()
	full := &Block{
		View:     4,
		Proposer: 2,
		Parent:   Hash{0x11},
		QC:       &QC{View: 3, BlockID: Hash{0x11}},
		Payload:  payload,
	}
	id := full.ID()

	stripped := full.StripPayload()
	if len(stripped.Payload) != 0 {
		t.Fatal("stripped block kept its payload")
	}
	if stripped.ID() != id {
		t.Fatal("stripped ID differs from full ID")
	}
	if stripped.PayloadDigest() != DigestPayload(payload) {
		t.Fatal("stripped digest wrong")
	}
	if !bytes.Equal(stripped.Sig, full.Sig) {
		t.Fatal("signature not carried")
	}

	resolved := stripped.WithPayload(payload)
	if resolved.ID() != id {
		t.Fatal("resolved ID differs from full ID")
	}
	if len(resolved.Payload) != len(payload) {
		t.Fatal("resolved payload wrong")
	}
	// Mutating the resolved copy must not corrupt the stripped one
	// (blocks travel by pointer in-process).
	resolved.Payload[0].Command = []byte("mutated")
	if len(stripped.Payload) != 0 {
		t.Fatal("resolution aliased the stripped block")
	}
}

// TestBlockIDDistinguishesDigests: two blocks identical except for
// their payloads (hence digests) must have different IDs; two blocks
// with equal digests but one carrying the payload inline must match.
func TestBlockIDDistinguishesDigests(t *testing.T) {
	qc := &QC{View: 1, BlockID: Hash{0x22}}
	a := &Block{View: 2, Proposer: 1, Parent: Hash{0x22}, QC: qc,
		Payload: []Transaction{{ID: TxID{Client: 1, Seq: 1}}}}
	b := &Block{View: 2, Proposer: 1, Parent: Hash{0x22}, QC: qc,
		Payload: []Transaction{{ID: TxID{Client: 1, Seq: 2}}}}
	if a.ID() == b.ID() {
		t.Fatal("different payloads, same block ID")
	}
	empty := &Block{View: 2, Proposer: 1, Parent: Hash{0x22}, QC: qc}
	if empty.ID() == a.ID() {
		t.Fatal("empty payload collides with non-empty")
	}
}

func TestIsDigestProposal(t *testing.T) {
	full := ProposalMsg{Block: &Block{Payload: digestPayloadFixture()}}
	if full.IsDigest() {
		t.Fatal("full proposal classified as digest")
	}
	stripped := ProposalMsg{
		Block:      &Block{Digest: Hash{0x01}},
		PayloadIDs: []TxID{{Client: 1, Seq: 1}},
	}
	if !stripped.IsDigest() {
		t.Fatal("digest proposal not classified")
	}
	empty := ProposalMsg{}
	if empty.IsDigest() {
		t.Fatal("nil block classified as digest")
	}
}

package bench

import (
	"fmt"
	"time"

	"github.com/bamboo-bft/bamboo/internal/config"
	"github.com/bamboo-bft/bamboo/internal/harness"
)

// RunAblationCrypto quantifies the signature scheme's share of the
// stack: the same HotStuff workload under Ed25519, HMAC, and no-op
// authentication. The gap between ed25519 and hmac is the t_CPU the
// Section V model attributes to crypto; the gap between hmac and noop
// is hashing/dispatch overhead.
func (r *Runner) RunAblationCrypto() error {
	r.printf("Ablation: crypto scheme cost (HotStuff, n=4, bsize=400)\n")
	warm, window := r.scaled(800*time.Millisecond), r.scaled(2*time.Second)
	for _, scheme := range []string{"ed25519", "hmac", "noop"} {
		cfg := r.substrate()
		cfg.Protocol = config.ProtocolHotStuff
		cfg.ApplyProtocolDefaults()
		cfg.CryptoScheme = scheme
		p, err := r.measure(cfg, 64, 0, warm, window)
		if err != nil {
			return fmt.Errorf("ablation crypto %s: %w", scheme, err)
		}
		tcpu, err := MeasureTCPU(scheme)
		if err != nil {
			return err
		}
		r.printf("%-8s tput=%7s KTx/s  lat=%8s ms  (measured t_CPU %v)\n",
			scheme, fmtKTx(p.Throughput), fmtMS(p.Mean), tcpu)
	}
	return nil
}

// RunAblationVoteBroadcast contrasts vote routing designs by running
// HotStuff (votes to the next leader, linear) against Streamlet
// (votes broadcast and echoed, cubic) at equal block size, isolating
// the messaging design choice the paper credits for Streamlet's
// forking resilience and throughput penalty.
func (r *Runner) RunAblationVoteBroadcast() error {
	r.printf("Ablation: vote routing (next-leader vs broadcast+echo, n=8)\n")
	warm, window := r.scaled(800*time.Millisecond), r.scaled(2*time.Second)
	for _, proto := range []string{config.ProtocolHotStuff, config.ProtocolStreamlet} {
		cfg := r.substrate()
		cfg.Protocol = proto
		cfg.ApplyProtocolDefaults()
		cfg.N = 8
		c, err := r.measureWithMessages(cfg, 64, warm, window)
		if err != nil {
			return fmt.Errorf("ablation routing %s: %w", proto, err)
		}
		r.printf("%-10s tput=%7s KTx/s  lat=%8s ms  msgs/block=%.0f\n",
			proto, fmtKTx(c.point.Throughput), fmtMS(c.point.Mean), c.msgsPerBlock)
	}
	return nil
}

// RunAblationResponsiveness measures the cost of the Δ-wait after a
// view change: 2CHS with responsive proposals versus the Δ-wait mode,
// under periodic leader silence that forces view changes.
func (r *Runner) RunAblationResponsiveness() error {
	r.printf("Ablation: responsive vs Δ-wait view change (2CHS, 1 silent node, n=4)\n")
	warm, window := r.scaled(time.Second), r.scaled(2500*time.Millisecond)
	for _, responsive := range []bool{true, false} {
		cfg := r.substrate()
		cfg.Protocol = config.ProtocolTwoChainHS
		cfg.Responsive = responsive
		cfg.ByzNo = 1
		cfg.Strategy = config.StrategySilence
		cfg.Timeout = 50 * time.Millisecond
		cfg.MaxNetworkDelay = 20 * time.Millisecond
		p, err := r.measure(cfg, 32, 0, warm, window)
		if err != nil {
			return fmt.Errorf("ablation responsiveness %v: %w", responsive, err)
		}
		mode := "responsive"
		if !responsive {
			mode = "delta-wait"
		}
		r.printf("%-11s tput=%7s KTx/s  lat=%8s ms  BI=%.2f\n",
			mode, fmtKTx(p.Throughput), fmtMS(p.Mean), p.BI)
	}
	return nil
}

// RunAblationBatching contrasts the Bamboo HotStuff client path with
// the OHS lightweight pool (Section VI-B attributes their gap to the
// request path and batching differences).
func (r *Runner) RunAblationBatching() error {
	r.printf("Ablation: client path (bamboo mempool vs OHS lightweight pool)\n")
	warm, window := r.scaled(800*time.Millisecond), r.scaled(2*time.Second)
	for _, proto := range []string{config.ProtocolHotStuff, config.ProtocolOHS} {
		cfg := r.substrate()
		cfg.Protocol = proto
		cfg.ApplyProtocolDefaults()
		p, err := r.measure(cfg, 128, 0, warm, window)
		if err != nil {
			return fmt.Errorf("ablation batching %s: %w", proto, err)
		}
		r.printf("%-10s tput=%7s KTx/s  lat=%8s ms\n",
			proto, fmtKTx(p.Throughput), fmtMS(p.Mean))
	}
	return nil
}

// RunAblationClientFanout contrasts the two client designs of
// Section V-E: sending each transaction to one random replica (the
// default, matching the queuing model) versus broadcasting it to all
// replicas (lower time-to-proposal, n× the request traffic and
// duplicate suppression work).
func (r *Runner) RunAblationClientFanout() error {
	r.printf("Ablation: client fan-out (single random replica vs broadcast, HotStuff n=4)\n")
	warm, window := r.scaled(800*time.Millisecond), r.scaled(2*time.Second)
	for _, fanout := range []bool{false, true} {
		cfg := r.substrate()
		cfg.Protocol = config.ProtocolHotStuff
		cfg.ApplyProtocolDefaults()
		p, err := r.measureWith(cfg, 64, 0, warm, window, measureOpt{fanout: fanout})
		if err != nil {
			return fmt.Errorf("ablation fanout %v: %w", fanout, err)
		}
		mode := "single"
		if fanout {
			mode = "broadcast"
		}
		r.printf("%-10s tput=%7s KTx/s  lat=%8s ms\n",
			mode, fmtKTx(p.Throughput), fmtMS(p.Mean))
	}
	return nil
}

// RunAblationElection compares leader-election designs (Section V-E):
// deterministic round-robin against hash-based pseudo-random election.
// Hash election repeats leaders back to back occasionally, which keeps
// a transaction waiting longer for its home replica's turn — the
// paper's model captures this through the effective service time.
func (r *Runner) RunAblationElection() error {
	r.printf("Ablation: leader election (round-robin vs hash-based, HotStuff n=4)\n")
	warm, window := r.scaled(800*time.Millisecond), r.scaled(2*time.Second)
	for _, mode := range []string{harness.ElectionRoundRobin, harness.ElectionHashed} {
		cfg := r.substrate()
		cfg.Protocol = config.ProtocolHotStuff
		cfg.ApplyProtocolDefaults()
		p, err := r.measureWith(cfg, 64, 0, warm, window, measureOpt{election: mode})
		if err != nil {
			return fmt.Errorf("ablation election %s: %w", mode, err)
		}
		r.printf("%-12s tput=%7s KTx/s  lat=%8s ms  p99=%8s ms\n",
			mode, fmtKTx(p.Throughput), fmtMS(p.Mean), fmtMS(p.P99))
	}
	return nil
}

// measureWithMessages augments measure with switch message counters.
type msgPoint struct {
	point        Point
	msgsPerBlock float64
}

func (r *Runner) measureWithMessages(cfg config.Config, concurrency int,
	warm, window time.Duration) (msgPoint, error) {

	p, err := r.measure(cfg, concurrency, 0, warm, window)
	if err != nil {
		return msgPoint{}, err
	}
	out := msgPoint{point: p}
	if p.Blocks > 0 {
		out.msgsPerBlock = float64(p.NetMsgs) / float64(p.Blocks)
	}
	return out, nil
}

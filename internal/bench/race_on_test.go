//go:build race

package bench

// raceEnabled reports that this binary was built with the race
// detector; throughput comparisons are meaningless under its
// instrumentation and are skipped.
const raceEnabled = true

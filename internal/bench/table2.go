package bench

import (
	"fmt"
	"time"

	"github.com/bamboo-bft/bamboo/internal/config"
)

// RunTable2 regenerates Table II: transaction arrival rate versus
// committed transaction throughput for HotStuff with block size 400
// and 4 replicas. The paper's point — below saturation, throughput
// tracks the arrival rate almost exactly — is checked by the Match
// column. Arrival rates are placed at fractions of this machine's
// measured saturation (the paper's absolute rates belong to its
// testbed).
func (r *Runner) RunTable2() error {
	cfg := r.substrate()
	cfg.Protocol = config.ProtocolHotStuff
	cfg.ApplyProtocolDefaults()
	cfg.BlockSize = 400

	sat, err := r.calibrate(cfg)
	if err != nil {
		return err
	}
	r.printf("Table II: arrival rate vs throughput (HotStuff, bsize=400, n=4)\n")
	r.printf("(saturation calibrated at %s KTx/s on this host)\n", fmtKTx(sat))
	r.printf("%-20s %-20s %-8s\n", "Arrival rate (Tx/s)", "Throughput (Tx/s)", "Match")
	warm, window := r.scaled(1*time.Second), r.scaled(3*time.Second)
	for _, frac := range []float64{0.15, 0.30, 0.45, 0.60, 0.75, 0.90, 0.98} {
		rate := sat * frac
		p, err := r.measure(cfg, 0, rate, warm, window)
		if err != nil {
			return fmt.Errorf("table2 rate %.0f: %w", rate, err)
		}
		match := p.Throughput / rate
		r.printf("%-20.0f %-20.0f %.3f\n", rate, p.Throughput, match)
	}
	return nil
}

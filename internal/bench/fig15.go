package bench

import (
	"fmt"
	"time"

	"github.com/bamboo-bft/bamboo/internal/config"
	"github.com/bamboo-bft/bamboo/internal/harness"
)

// RunFigure15 regenerates the responsiveness experiment (Figure 15):
// four nodes under steady high load; after a warm phase the network
// fluctuates for a window (message delays uniform in 10–100 ms); when
// the fluctuation ends, one node launches a silence attack. Two
// settings are compared:
//
//	t10:  view timeout 10 ms, every protocol proposes as soon as
//	      2f+1 post-view-change messages arrive (responsive mode);
//	t100: view timeout 100 ms, every protocol waits out the timeout
//	      after a view change.
//
// The paper's result: under t10 all protocols stall during the
// fluctuation; HotStuff resumes instantly when it ends (optimistic
// responsiveness) while 2CHS and Streamlet can remain stuck; under
// t100 everyone retains liveness at much lower throughput. The series
// below print committed Tx/s per time bucket.
func (r *Runner) RunFigure15() error {
	pre := r.scaled(3 * time.Second)
	fluct := r.scaled(10 * time.Second)
	post := r.scaled(12 * time.Second)
	bucket := r.scaled(500 * time.Millisecond)
	r.printf("Figure 15: responsiveness (n=4; fluctuation %v of 10-100ms delays, then silence attack)\n", fluct)
	settings := []struct {
		label      string
		timeout    time.Duration
		responsive bool
	}{
		{"t10", 10 * time.Millisecond, true},
		{"t100", 100 * time.Millisecond, false},
	}
	for _, s := range settings {
		for _, proto := range happyPathProtocols {
			series, err := r.runResponsivenessRun(proto, s.timeout, s.responsive, pre, fluct, post, bucket)
			if err != nil {
				return fmt.Errorf("fig15 %s-%s: %w", proto, s.label, err)
			}
			r.printf("%-14s", fmt.Sprintf("%s-%s:", proto, s.label))
			for _, rate := range series {
				r.printf(" %6.1f", rate/1000)
			}
			r.printf("  (KTx/s per %v bucket; fluctuation %v..%v, attack from %v)\n",
				bucket, pre, pre+fluct, pre+fluct)
		}
	}
	return nil
}

// runResponsivenessRun declares one timeline — steady closed-loop
// load, a fluctuation window injected by the fault schedule, and a
// config-delayed silence attack — and returns the committed-rate
// series of the harness result.
func (r *Runner) runResponsivenessRun(proto string, timeout time.Duration, responsive bool,
	pre, fluct, post, bucket time.Duration) ([]float64, error) {

	cfg := r.substrate()
	cfg.Protocol = proto
	cfg.Timeout = timeout
	cfg.Responsive = responsive
	cfg.MaxNetworkDelay = timeout
	cfg.ByzNo = 1
	cfg.Strategy = config.StrategySilence
	cfg.StrategyDelay = pre + fluct

	exp := harness.Experiment{
		Name:    "fig15-" + proto,
		Config:  cfg,
		Backend: r.Backend,
		Faults: harness.FaultSchedule{
			harness.FluctuateAt(pre, fluct, 10*time.Millisecond, 100*time.Millisecond),
		},
		Measure: harness.MeasurePlan{
			Window:       pre + fluct + post,
			Concurrency:  64,
			PerOpTimeout: time.Second,
			Bucket:       bucket,
		},
	}
	res, err := harness.Run(exp)
	r.record(res)
	if err != nil {
		return nil, err
	}
	return res.Series, nil
}

package bench

import (
	"fmt"
	"time"

	"github.com/bamboo-bft/bamboo/internal/config"
)

// runAttackFigure shares the machinery of Figures 13 and 14: 32 nodes
// total, an increasing number of Byzantine nodes, measuring
// throughput, latency, chain growth rate, and block intervals.
func (r *Runner) runAttackFigure(strategy string, timeout time.Duration) error {
	warm, window := r.scaled(time.Second), r.scaled(2500*time.Millisecond)
	for _, proto := range happyPathProtocols {
		for _, byz := range r.byzLevels() {
			cfg := r.substrate()
			cfg.Protocol = proto
			cfg.ApplyProtocolDefaults()
			cfg.N = 32
			cfg.PayloadSize = 128
			cfg.Strategy = strategy
			cfg.ByzNo = byz
			cfg.Timeout = timeout
			p, err := r.measure(cfg, 32*8, 0, warm, window)
			if err != nil {
				return fmt.Errorf("%s %s byz=%d: %w", strategy, proto, byz, err)
			}
			r.printf("%-10s byz=%-3d tput=%7s KTx/s  lat=%8s ms  CGR=%.3f  BI=%.2f\n",
				proto, byz, fmtKTx(p.Throughput), fmtMS(p.Mean), p.CGR, p.BI)
		}
	}
	return nil
}

// RunFigure13 regenerates Figure 13: the forking attack on a 32-node
// cluster with 0–10 Byzantine nodes. Expected shapes (Section VI-C):
// Streamlet flat across every metric (immune — votes are broadcast
// and honest replicas only extend the longest notarized chain); 2CHS
// beats HotStuff on every metric because its attacker can overwrite
// only one block per fork instead of two; HotStuff BI starts at ≈3
// and 2CHS at ≈2 by their commit rules.
func (r *Runner) RunFigure13() error {
	r.printf("Figure 13: forking attack (n=32, increasing Byzantine nodes)\n")
	return r.runAttackFigure(config.StrategyForking, 100*time.Millisecond)
}

// RunFigure14 regenerates Figure 14: the silence attack, timeout
// 50 ms (the paper's setting so that only attacker views time out).
// Expected shapes: throughput drops for all protocols as silent
// proposers burn views; HotStuff and 2CHS lose the block preceding
// each silent view (CGR < 1) while Streamlet's CGR stays 1; BI grows
// faster than under forking for every protocol.
func (r *Runner) RunFigure14() error {
	r.printf("Figure 14: silence attack (n=32, increasing Byzantine nodes, timeout=50ms)\n")
	return r.runAttackFigure(config.StrategySilence, 50*time.Millisecond)
}

package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"github.com/bamboo-bft/bamboo/internal/config"
)

// tinyRunner runs experiments at the smallest useful scale so every
// figure runner is exercised in CI.
func tinyRunner() (*Runner, *bytes.Buffer) {
	var buf bytes.Buffer
	return NewRunner(&buf, 0.01, 7), &buf
}

func TestMeasureClosedLoopProducesThroughput(t *testing.T) {
	r, _ := tinyRunner()
	cfg := r.substrate()
	cfg.Protocol = config.ProtocolHotStuff
	cfg.ApplyProtocolDefaults()
	p, err := r.measure(cfg, 16, 0, 200*time.Millisecond, 400*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if p.Throughput <= 0 {
		t.Fatalf("no throughput measured: %+v", p)
	}
	if p.Mean <= 0 {
		t.Fatalf("no latency measured: %+v", p)
	}
}

func TestMeasureOpenLoopTracksRate(t *testing.T) {
	r, _ := tinyRunner()
	cfg := r.substrate()
	cfg.Protocol = config.ProtocolHotStuff
	cfg.ApplyProtocolDefaults()
	// A modest rate well below saturation: committed ≈ offered.
	const rate = 2000.0
	p, err := r.measure(cfg, 0, rate, 400*time.Millisecond, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if p.Throughput < 0.7*rate || p.Throughput > 1.3*rate {
		t.Fatalf("open-loop throughput %.0f far from offered %.0f", p.Throughput, rate)
	}
}

func TestMeasureTCPU(t *testing.T) {
	ed, err := MeasureTCPU("ed25519")
	if err != nil {
		t.Fatal(err)
	}
	hm, err := MeasureTCPU("hmac")
	if err != nil {
		t.Fatal(err)
	}
	if ed <= hm {
		t.Fatalf("ed25519 t_CPU (%v) should exceed hmac (%v)", ed, hm)
	}
	if _, err := MeasureTCPU("nope"); err == nil {
		t.Fatal("unknown scheme accepted")
	}
}

func TestSweepClosedStopsPastSaturation(t *testing.T) {
	r, _ := tinyRunner()
	cfg := r.substrate()
	cfg.Protocol = config.ProtocolHotStuff
	cfg.ApplyProtocolDefaults()
	pts, err := r.sweepClosed(cfg, []int{1, 4, 16}, 150*time.Millisecond, 300*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) == 0 {
		t.Fatal("sweep returned no points")
	}
	// Throughput should increase from concurrency 1 to 16 on an
	// unsaturated substrate.
	if pts[len(pts)-1].Throughput <= pts[0].Throughput {
		t.Logf("warning: sweep non-monotone: %+v", pts)
	}
}

// TestFigureRunnersSmoke executes every table/figure runner at tiny
// scale and sanity-checks the emitted rows. This is the CI guard that
// the full benchmark suite cannot bit-rot.
func TestFigureRunnersSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("bench smoke skipped in -short")
	}
	cases := []struct {
		name    string
		run     func(*Runner) error
		markers []string
	}{
		{"table2", (*Runner).RunTable2, []string{"Table II", "Match"}},
		{"fig12", (*Runner).RunFigure12, []string{"scalability", "n=4", "n=8"}},
		{"fig13", (*Runner).RunFigure13, []string{"forking", "CGR"}},
		{"fig14", (*Runner).RunFigure14, []string{"silence", "BI"}},
		{"ablation-crypto", (*Runner).RunAblationCrypto, []string{"ed25519", "noop"}},
		{"ablation-routing", (*Runner).RunAblationVoteBroadcast, []string{"msgs/block"}},
		{"ablation-fanout", (*Runner).RunAblationClientFanout, []string{"single", "broadcast"}},
		{"pipeline-hotpath", (*Runner).RunPipelineHotPath, []string{"sync", "pipelined", "speedup"}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			r, buf := tinyRunner()
			r.Ns = []int{4, 8}
			r.ByzLevels = []int{0, 2}
			r.Levels = []int{4, 16}
			if err := tc.run(r); err != nil {
				t.Fatal(err)
			}
			out := buf.String()
			for _, m := range tc.markers {
				if !strings.Contains(out, m) {
					t.Fatalf("output missing %q:\n%s", m, out)
				}
			}
		})
	}
}

// TestPipelineHotPathImproves asserts the refactor's acceptance
// criterion: digest proposals plus off-loop batch verification beat
// the synchronous hot path at payload 128 B / block size 400. The
// comparison runs at a 200 Mbps modeled NIC, where payload
// dissemination dominates the proposal critical path; one retry damps
// scheduler noise on busy CI hosts.
func TestPipelineHotPathImproves(t *testing.T) {
	if testing.Short() {
		t.Skip("bench comparison skipped in -short")
	}
	if raceEnabled {
		t.Skip("throughput comparison meaningless under the race detector")
	}
	r, _ := tinyRunner()
	const bandwidth = 2.5e7 // 200 Mbps
	warm, window := 500*time.Millisecond, 1500*time.Millisecond
	for attempt := 1; ; attempt++ {
		sync, err := r.MeasureHotPath(false, bandwidth, 1024, warm, window)
		if err != nil {
			t.Fatal(err)
		}
		pipe, err := r.MeasureHotPath(true, bandwidth, 1024, warm, window)
		if err != nil {
			t.Fatal(err)
		}
		speedup := pipe.Throughput / sync.Throughput
		t.Logf("attempt %d: sync %.0f tx/s, pipelined %.0f tx/s (%.2fx), resolved=%d fetched=%d",
			attempt, sync.Throughput, pipe.Throughput, speedup,
			pipe.Pipeline.DigestResolved, pipe.Pipeline.DigestFetched)
		if pipe.Throughput > sync.Throughput {
			if pipe.Pipeline.DigestResolved == 0 {
				t.Fatal("pipelined run never resolved a digest proposal")
			}
			return
		}
		if attempt >= 3 {
			t.Fatalf("pipelined hot path no faster than sync after %d attempts (last %.2fx)",
				attempt, speedup)
		}
	}
}

// TestFigure15Smoke runs one shrunken responsiveness timeline.
func TestFigure15Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("bench smoke skipped in -short")
	}
	r, _ := tinyRunner()
	series, err := r.runResponsivenessRun(config.ProtocolHotStuff,
		20*time.Millisecond, true,
		300*time.Millisecond, 500*time.Millisecond, 700*time.Millisecond,
		100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) < 10 {
		t.Fatalf("series too short: %d buckets", len(series))
	}
	// Committed throughput must be nonzero before the fluctuation.
	var preSum float64
	for _, v := range series[:3] {
		preSum += v
	}
	if preSum == 0 {
		t.Fatal("no commits before fluctuation")
	}
}

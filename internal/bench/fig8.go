package bench

import (
	"fmt"
	"time"

	"github.com/bamboo-bft/bamboo/internal/config"
	"github.com/bamboo-bft/bamboo/internal/model"
)

// fig8Protocols are the three protocols of the paper's comparison,
// with their model counterparts.
var fig8Protocols = []struct {
	name  string
	model model.Protocol
}{
	{config.ProtocolHotStuff, model.HotStuff},
	{config.ProtocolTwoChainHS, model.TwoChainHotStuff},
	{config.ProtocolStreamlet, model.Streamlet},
}

// RunFigure8 regenerates Figure 8: model-predicted versus measured
// latency/throughput curves for HotStuff, 2CHS, and Streamlet across
// the four (network size / block size) configurations 4/100, 8/100,
// 4/400, 8/400. Open-loop Poisson load is swept toward saturation;
// next to each measured point the model's latency estimate at the
// same arrival rate is printed.
func (r *Runner) RunFigure8() error {
	r.printf("Figure 8: model vs implementation (latency ms @ KTx/s)\n")
	warm, window := r.scaled(1*time.Second), r.scaled(2500*time.Millisecond)
	for _, shape := range []struct{ n, bsize int }{
		{4, 100}, {8, 100}, {4, 400}, {8, 400},
	} {
		r.printf("-- configuration %d/%d (replicas/block size) --\n", shape.n, shape.bsize)
		for _, proto := range fig8Protocols {
			cfg := r.substrate()
			cfg.N = shape.n
			cfg.BlockSize = shape.bsize
			cfg.Protocol = proto.name
			cfg.ApplyProtocolDefaults()
			params, err := r.modelParams(cfg)
			if err != nil {
				return err
			}
			sat, err := r.calibrate(cfg)
			if err != nil {
				return fmt.Errorf("fig8 %s %d/%d: %w", proto.name, shape.n, shape.bsize, err)
			}
			r.printf("%-10s %-12s %-14s %-14s %-14s\n",
				proto.name, "KTx/s", "impl lat(ms)", "model lat(ms)", "impl P99(ms)")
			for _, frac := range []float64{0.2, 0.4, 0.6, 0.8, 0.95} {
				rate := sat * frac
				p, err := r.measure(cfg, 0, rate, warm, window)
				if err != nil {
					return fmt.Errorf("fig8 %s: %w", proto.name, err)
				}
				// The model's λ is scaled to its own saturation
				// point so both curves are compared at equal
				// utilization, as the paper's plots do.
				mLat, err := params.Latency(proto.model, frac*params.SaturationRate())
				mOut := "sat"
				if err == nil {
					mOut = fmtMS(mLat)
				}
				r.printf("%-10s %-12s %-14s %-14s %-14s\n",
					"", fmtKTx(p.Throughput), fmtMS(p.Mean), mOut, fmtMS(p.P99))
			}
		}
	}
	return nil
}

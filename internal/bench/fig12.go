package bench

import (
	"fmt"
	"math"
	"time"
)

// RunFigure12 regenerates Figure 12: scalability of the three
// protocols at 4, 8, 16, 32, and 64 replicas (128-byte payload,
// 400-transaction blocks), reporting saturated throughput and latency
// with standard deviations over repeated runs — the paper averages
// three runs of 10,000 views and shows error bars.
//
// Streamlet's O(n³) message complexity makes its large-n numbers
// degenerate; the paper calls results above 64 nodes "meaningless",
// and the same collapse is expected (and reproduced) here.
func (r *Runner) RunFigure12() error {
	r.printf("Figure 12: scalability (bsize=400, payload=128)\n")
	const repeats = 3
	warm, window := r.scaled(time.Second), r.scaled(2*time.Second)
	for _, n := range r.ns() {
		for _, proto := range happyPathProtocols {
			cfg := r.substrate()
			cfg.Protocol = proto
			cfg.ApplyProtocolDefaults()
			cfg.N = n
			cfg.PayloadSize = 128
			// Bigger clusters carry more consensus overhead per
			// view; stretch the timer the way an operator would.
			cfg.Timeout = 200 * time.Millisecond
			// Saturating concurrency grows with cluster size.
			conc := 32 * n
			var tputs, lats []float64
			for rep := 0; rep < repeats; rep++ {
				cfg.Seed = r.Seed + int64(rep)
				p, err := r.measure(cfg, conc, 0, warm, window)
				if err != nil {
					return fmt.Errorf("fig12 %s n=%d: %w", proto, n, err)
				}
				tputs = append(tputs, p.Throughput)
				lats = append(lats, float64(p.Mean)/float64(time.Millisecond))
			}
			mt, st := meanStd(tputs)
			ml, sl := meanStd(lats)
			r.printf("%-10s n=%-3d tput=%7s ±%6s KTx/s   lat=%8.2f ±%.2f ms\n",
				proto, n, fmtKTx(mt), fmtKTx(st), ml, sl)
		}
	}
	return nil
}

// meanStd returns the mean and standard deviation of xs.
func meanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		std += (x - mean) * (x - mean)
	}
	std = math.Sqrt(std / float64(len(xs)))
	return mean, std
}

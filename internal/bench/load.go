package bench

import (
	"fmt"
	"time"

	"github.com/bamboo-bft/bamboo/internal/config"
	"github.com/bamboo-bft/bamboo/internal/harness"
	"github.com/bamboo-bft/bamboo/internal/workload"
)

// RunLoadLadder sweeps an open-loop rate ladder through this host's
// saturation point with a mixed client fleet and a deliberately small
// memory pool, charting the three signatures of overload that the
// Section V queuing model predicts: committed throughput plateaus at
// the knee, tail latency (p99) inflates past it, and once arrivals
// outrun the pool's drain rate admission control engages (pool
// rejections > 0 at the top rungs).
//
// The fleet is 90% zipfian key-value clients and 10% bank-transfer
// writers — a mixed population whose per-client throughput spread the
// fairness columns report. Latency percentiles come from merged
// log-bucketed histograms stamped at intended send times, so the p99
// inflation is real queueing delay, not a coordinated-omission artifact.
func (r *Runner) RunLoadLadder() error {
	cfg := r.substrate()
	cfg.Protocol = config.ProtocolHotStuff
	cfg.ApplyProtocolDefaults()
	cfg.BlockSize = 400
	// A small pool (vs the substrate's 128k) makes the overload rungs
	// actually reject under PolicyReject instead of absorbing the whole
	// window's backlog.
	cfg.MemSize = 4096

	sat, err := r.calibrate(cfg)
	if err != nil {
		return err
	}
	warm, window := r.scaled(time.Second), r.scaled(3*time.Second)
	exp := harness.Experiment{
		Name:    "load-ladder",
		Config:  cfg,
		Backend: r.Backend,
		Measure: harness.MeasurePlan{
			Warmup: warm,
			Window: window,
			Rates: []float64{
				0.25 * sat, 0.50 * sat, 0.75 * sat, 0.95 * sat,
				1.25 * sat, 2.00 * sat,
			},
			Clients: []harness.ClientSpec{
				{Count: 9, Workload: &workload.Spec{
					Kind: workload.KindKV, Keys: 4096, WriteRatio: 0.1, ZipfS: 1.1}},
				{Count: 1, Workload: &workload.Spec{
					Kind: workload.KindKVBank, Accounts: 512}},
			},
		},
	}
	res, err := harness.Run(exp)
	r.record(res)
	if err != nil {
		return fmt.Errorf("load ladder: %w", err)
	}

	r.printf("Load ladder: open-loop rates through saturation (HotStuff, bsize=400, n=4, memsize=%d)\n", cfg.MemSize)
	r.printf("(closed-loop saturation calibrated at %s KTx/s on this host; fleet = 9 kv + 1 kvbank clients)\n", fmtKTx(sat))
	r.printf("%-14s %-14s %-9s %-9s %-9s %-9s %-10s %-10s %-8s\n",
		"Rate (Tx/s)", "Tput (Tx/s)", "p50(ms)", "p95(ms)", "p99(ms)", "p999(ms)", "Rejected", "PoolRej", "Disp")
	for _, p := range res.Points {
		r.printf("%-14.0f %-14.0f %-9s %-9s %-9s %-9s %-10d %-10d %.2f\n",
			p.Offered, p.Throughput,
			fmtMS(p.P50), fmtMS(p.P95), fmtMS(p.P99), fmtMS(p.P999),
			p.Rejected, p.PoolRejections, p.ClientDispersion)
	}
	return nil
}

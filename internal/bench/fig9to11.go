package bench

import (
	"fmt"
	"time"

	"github.com/bamboo-bft/bamboo/internal/config"
)

// happyPathProtocols is the paper's three-way comparison set.
var happyPathProtocols = []string{
	config.ProtocolHotStuff,
	config.ProtocolTwoChainHS,
	config.ProtocolStreamlet,
}

// printSeries emits one throughput/latency series.
func (r *Runner) printSeries(label string, pts []Point) {
	for _, p := range pts {
		r.printf("%-16s conc=%-5.0f tput=%7s KTx/s  lat=%8s ms  p99=%8s ms\n",
			label, p.Offered, fmtKTx(p.Throughput), fmtMS(p.Mean), fmtMS(p.P99))
	}
}

// RunFigure9 regenerates Figure 9: throughput vs latency for block
// sizes 100, 400, and 800 with zero transaction payload, including
// the OHS baseline at sizes 100 and 800 (the paper obtained no
// meaningful OHS results at 400, so it too is omitted here).
func (r *Runner) RunFigure9() error {
	r.printf("Figure 9: block sizes (payload 0 B, n=4)\n")
	warm, window := r.scaled(800*time.Millisecond), r.scaled(2*time.Second)
	run := func(proto string, bsize int) error {
		cfg := r.substrate()
		cfg.Protocol = proto
		cfg.ApplyProtocolDefaults()
		cfg.BlockSize = bsize
		cfg.PayloadSize = 0
		pts, err := r.sweepClosed(cfg, r.levels(), warm, window)
		if err != nil {
			return fmt.Errorf("fig9 %s b%d: %w", proto, bsize, err)
		}
		r.printSeries(fmt.Sprintf("%s-b%d", proto, bsize), pts)
		return nil
	}
	for _, proto := range happyPathProtocols {
		for _, bsize := range []int{100, 400, 800} {
			if err := run(proto, bsize); err != nil {
				return err
			}
		}
	}
	for _, bsize := range []int{100, 800} {
		if err := run(config.ProtocolOHS, bsize); err != nil {
			return err
		}
	}
	return nil
}

// RunFigure10 regenerates Figure 10: throughput vs latency for
// transaction payload sizes 0, 128, and 1024 bytes at block size 400.
func (r *Runner) RunFigure10() error {
	r.printf("Figure 10: payload sizes (bsize=400, n=4)\n")
	warm, window := r.scaled(800*time.Millisecond), r.scaled(2*time.Second)
	for _, proto := range happyPathProtocols {
		for _, psize := range []int{0, 128, 1024} {
			cfg := r.substrate()
			cfg.Protocol = proto
			cfg.ApplyProtocolDefaults()
			cfg.PayloadSize = psize
			pts, err := r.sweepClosed(cfg, r.levels(), warm, window)
			if err != nil {
				return fmt.Errorf("fig10 %s p%d: %w", proto, psize, err)
			}
			r.printSeries(fmt.Sprintf("%s-p%d", proto, psize), pts)
		}
	}
	return nil
}

// RunFigure11 regenerates Figure 11: throughput vs latency under
// added network delays of 0, 5±1, and 10±2 milliseconds (payload 128,
// bsize 400).
func (r *Runner) RunFigure11() error {
	r.printf("Figure 11: network delays (bsize=400, payload=128, n=4)\n")
	warm, window := r.scaled(time.Second), r.scaled(2500*time.Millisecond)
	delays := []struct {
		label string
		mean  time.Duration
		std   time.Duration
	}{
		{"d0", 0, 0},
		{"d5", 5 * time.Millisecond, 1 * time.Millisecond},
		{"d10", 10 * time.Millisecond, 2 * time.Millisecond},
	}
	for _, proto := range happyPathProtocols {
		for _, d := range delays {
			cfg := r.substrate()
			cfg.Protocol = proto
			cfg.ApplyProtocolDefaults()
			cfg.PayloadSize = 128
			if d.mean > 0 {
				cfg.Delay, cfg.DelayStd = d.mean, d.std
				// Delayed links need a proportionally longer view
				// timer, like a real WAN deployment would set.
				cfg.Timeout = 100*time.Millisecond + 10*d.mean
			}
			pts, err := r.sweepClosed(cfg, r.levels(), warm, window)
			if err != nil {
				return fmt.Errorf("fig11 %s %s: %w", proto, d.label, err)
			}
			r.printSeries(fmt.Sprintf("%s-%s", proto, d.label), pts)
		}
	}
	return nil
}

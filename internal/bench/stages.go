package bench

import (
	"fmt"
	"time"

	"github.com/bamboo-bft/bamboo/internal/config"
	"github.com/bamboo-bft/bamboo/internal/harness"
	"github.com/bamboo-bft/bamboo/internal/metrics"
	"github.com/bamboo-bft/bamboo/internal/workload"
)

// RunStages decomposes commit latency across a load ladder: at each
// rung the block-lifecycle tracer attributes every committed block's
// life to its pipeline stages (verify → vote → qc → commit → execute),
// and the chain-quality metrics report who actually proposed the
// committed chain (per-proposer shares, Gini). This is the paper's
// dissection applied to our own reproduction — instead of one
// end-to-end latency number per rung, the table shows WHERE the
// latency goes as load rises (queueing in the verify stage, QC
// formation stretched by vote fan-in, the apply stage falling behind)
// and whether leader rotation actually spreads the committed chain
// (the "Leader Rotation Is Not Enough" reading: a Gini near 0 means
// equal shares; a high Gini means few leaders own the chain even
// though rotation nominally spreads the proposer role).
func (r *Runner) RunStages() error {
	cfg := r.substrate()
	cfg.Protocol = config.ProtocolHotStuff
	cfg.ApplyProtocolDefaults()
	cfg.BlockSize = 400
	cfg.MemSize = 4096

	sat, err := r.calibrate(cfg)
	if err != nil {
		return err
	}
	warm, window := r.scaled(time.Second), r.scaled(3*time.Second)
	exp := harness.Experiment{
		Name:    "stages",
		Config:  cfg,
		Backend: r.Backend,
		Measure: harness.MeasurePlan{
			Warmup: warm,
			Window: window,
			Rates:  []float64{0.25 * sat, 0.50 * sat, 0.75 * sat, 0.95 * sat},
			Clients: []harness.ClientSpec{
				{Count: 8, Workload: &workload.Spec{
					Kind: workload.KindKV, Keys: 4096, WriteRatio: 0.1, ZipfS: 1.1}},
			},
		},
	}
	res, err := harness.Run(exp)
	r.record(res)
	if err != nil {
		return fmt.Errorf("stages: %w", err)
	}

	r.printf("Stage breakdown: where commit latency goes (HotStuff, bsize=400, n=4)\n")
	r.printf("(closed-loop saturation calibrated at %s KTx/s; stage histograms merged across honest replicas, final rung)\n", fmtKTx(sat))
	r.printf("%-14s %-14s %-9s %-9s\n", "Rate (Tx/s)", "Tput (Tx/s)", "p50(ms)", "p99(ms)")
	for _, p := range res.Points {
		r.printf("%-14.0f %-14.0f %-9s %-9s\n",
			p.Offered, p.Throughput, fmtMS(p.P50), fmtMS(p.P99))
	}
	r.printf("\n%-10s %-10s %-10s %-10s %-10s\n", "Stage", "count", "p50", "p99", "max")
	for _, name := range metrics.StageNames {
		s, ok := res.Stages[name]
		if !ok {
			continue
		}
		r.printf("%-10s %-10d %-10s %-10s %-10s\n",
			name, s.Count, fmtMS(s.P50), fmtMS(s.P99), fmtMS(s.Max))
	}
	r.printf("\nChain quality: Gini=%.3f, proposer shares=%v\n", res.Gini, fmtShares(res.ProposerShares))
	return nil
}

// fmtShares renders proposer shares as short percentages.
func fmtShares(shares []float64) []string {
	out := make([]string, len(shares))
	for i, s := range shares {
		out[i] = fmt.Sprintf("%.1f%%", 100*s)
	}
	return out
}

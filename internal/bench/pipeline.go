package bench

import (
	"time"

	"github.com/bamboo-bft/bamboo/internal/config"
)

// hotPathPayload and hotPathBlockSize fix the hot-path comparison at
// the working point the refactor targets: 128-byte transactions in
// 400-transaction blocks, where a full proposal is ~58 KB of payload
// against ~6.4 KB of transaction IDs.
const (
	hotPathPayload   = 128
	hotPathBlockSize = 400
)

// HotPathConfig returns the hot-path measurement configuration:
// Ed25519 authentication (so signature verification is a real cost,
// as on the paper's testbed) at payload 128 B / block size 400.
// pipelined enables all three pipeline stages — digest proposals
// (with their batched payload-sync data plane), off-loop batch
// verification, and staged commit.
func (r *Runner) HotPathConfig(pipelined bool) config.Config {
	cfg := r.substrate()
	cfg.Protocol = config.ProtocolHotStuff
	cfg.ApplyProtocolDefaults()
	cfg.CryptoScheme = "ed25519"
	cfg.PayloadSize = hotPathPayload
	cfg.BlockSize = hotPathBlockSize
	if pipelined {
		cfg.DigestProposals = true
		cfg.AsyncVerify = true
		cfg.AsyncCommit = true
	}
	return cfg
}

// MeasureHotPath runs one hot-path point: closed-loop saturation at
// the given concurrency and modeled NIC bandwidth (0 keeps the
// substrate default of 1 Gbps). Committed payloads execute through a
// kvstore so the commit stage has real work.
func (r *Runner) MeasureHotPath(pipelined bool, bandwidth float64, concurrency int,
	warm, window time.Duration) (Point, error) {
	cfg := r.HotPathConfig(pipelined)
	if bandwidth > 0 {
		cfg.Bandwidth = bandwidth
	}
	return r.measureWith(cfg, concurrency, 0, warm, window,
		measureOpt{stores: true})
}

// RunPipelineHotPath prints the before/after hot-path comparison of
// the three-stage pipeline refactor: the synchronous baseline (full
// proposals, event-loop verification, inline execution) against the
// pipelined replica (digest proposals + off-loop batch verification +
// staged commit), at the substrate's 1 Gbps and at a constrained
// 200 Mbps where payload dissemination dominates the critical path.
func (r *Runner) RunPipelineHotPath() error {
	r.printf("Pipeline hot path — HotStuff n=4, ed25519, psize=%dB, bsize=%d\n",
		hotPathPayload, hotPathBlockSize)
	r.printf("%-8s %-10s %10s %10s %10s %10s %10s\n",
		"NIC", "mode", "kTx/s", "mean ms", "p99 ms", "resolved", "fetched")
	warm := r.scaled(time.Second)
	window := r.scaled(3 * time.Second)
	for _, bw := range []struct {
		label string
		bytes float64
	}{
		{"1Gbps", 1.25e8},
		{"200Mbps", 2.5e7},
	} {
		var base float64
		for _, pipelined := range []bool{false, true} {
			p, err := r.MeasureHotPath(pipelined, bw.bytes, 1024, warm, window)
			if err != nil {
				return err
			}
			mode := "sync"
			if pipelined {
				mode = "pipelined"
			}
			r.printf("%-8s %-10s %10s %10s %10s %10d %10d\n", bw.label, mode,
				fmtKTx(p.Throughput), fmtMS(p.Mean), fmtMS(p.P99),
				p.Pipeline.DigestResolved, p.Pipeline.DigestFetched)
			if !pipelined {
				base = p.Throughput
			} else if base > 0 {
				r.printf("%-8s speedup: %.2fx (batches=%d fallbacks=%d applied=%d)\n",
					bw.label, p.Throughput/base, p.Pipeline.BatchesVerified,
					p.Pipeline.BatchFallbacks, p.Pipeline.BlocksApplied)
			}
		}
	}
	return nil
}

// MeasureHotPathVariant measures an arbitrary hot-path configuration
// (diagnostic helper for dissecting the pipeline stages one at a
// time, the way Section VI dissects the protocols).
func (r *Runner) MeasureHotPathVariant(cfg config.Config, fanout bool, concurrency int,
	warm, window time.Duration) (Point, error) {
	return r.measureWith(cfg, concurrency, 0, warm, window,
		measureOpt{fanout: fanout, stores: true})
}

// Package bench regenerates every table and figure of the paper's
// evaluation (Section VI) on the in-process substrate: Table II and
// Figures 8 through 15, plus ablation studies of the design choices
// DESIGN.md calls out. Each experiment prints rows/series in the shape
// the paper reports so results can be compared side by side; absolute
// numbers differ from the paper's testbed (single machine vs one VM
// per replica), but the comparative shapes are the reproduction target.
//
// All experiments accept a Scale factor: 1.0 runs paper-like
// durations, smaller values shrink warmup/measurement windows
// proportionally for quick runs (the go test benches default to the
// BAMBOO_BENCH_SCALE environment variable, or 0.15).
package bench

import (
	"fmt"
	"io"
	"math"
	"time"

	"github.com/bamboo-bft/bamboo/internal/config"
	"github.com/bamboo-bft/bamboo/internal/crypto"
	"github.com/bamboo-bft/bamboo/internal/harness"
	"github.com/bamboo-bft/bamboo/internal/model"
	"github.com/bamboo-bft/bamboo/internal/network"
	"github.com/bamboo-bft/bamboo/internal/types"
)

// Runner executes experiments and writes human-readable rows. Every
// measurement goes through the harness (harness.Run), and the
// structured results accumulate for machine-readable export
// (TakeResults, the -json flag of cmd/bamboo-bench).
type Runner struct {
	// Out receives the result rows.
	Out io.Writer
	// Scale multiplies every warmup/measurement duration; 1.0
	// reproduces paper-like run lengths.
	Scale float64
	// Seed drives workload and key randomness.
	Seed int64
	// Ns overrides the scalability experiment's cluster sizes
	// (default 4, 8, 16, 32, 64).
	Ns []int
	// ByzLevels overrides the attack experiments' Byzantine counts
	// (default 0, 2, 4, 6, 8, 10).
	ByzLevels []int
	// Levels overrides the closed-loop concurrency ladder.
	Levels []int
	// Backend deploys every experiment over the named transport
	// backend ("" keeps the harness default, the in-process switch;
	// "tcp" uses loopback sockets).
	Backend string

	// results accumulates the structured outcome of every harness
	// run since the last TakeResults call.
	results []*harness.Result
}

func (r *Runner) ns() []int {
	if len(r.Ns) > 0 {
		return r.Ns
	}
	return []int{4, 8, 16, 32, 64}
}

func (r *Runner) byzLevels() []int {
	if len(r.ByzLevels) > 0 {
		return r.ByzLevels
	}
	return []int{0, 2, 4, 6, 8, 10}
}

func (r *Runner) levels() []int {
	if len(r.Levels) > 0 {
		return r.Levels
	}
	return []int{2, 8, 32, 128, 512}
}

// NewRunner creates a runner with sane defaults.
func NewRunner(out io.Writer, scale float64, seed int64) *Runner {
	if scale <= 0 {
		scale = 1
	}
	if seed == 0 {
		seed = 1
	}
	return &Runner{Out: out, Scale: scale, Seed: seed}
}

// scaled shrinks a duration by the run scale, with a floor that keeps
// measurements meaningful.
func (r *Runner) scaled(d time.Duration) time.Duration {
	s := time.Duration(float64(d) * r.Scale)
	if s < 150*time.Millisecond {
		s = 150 * time.Millisecond
	}
	return s
}

// printf writes one output row.
func (r *Runner) printf(format string, args ...any) {
	fmt.Fprintf(r.Out, format, args...)
}

// substrate returns the baseline configuration of the single-machine
// substrate: 4 replicas, HMAC authentication (see DESIGN.md §4),
// 200µs ± 50µs link delay (the <1ms same-datacenter profile of the
// paper's testbed), and 1 Gbps modeled NIC bandwidth.
func (r *Runner) substrate() config.Config {
	cfg := config.Default()
	cfg.CryptoScheme = "hmac"
	cfg.Seed = r.Seed
	cfg.Delay = 200 * time.Microsecond
	cfg.DelayStd = 50 * time.Microsecond
	cfg.Bandwidth = 1.25e8 // 1 Gbps in bytes/s
	cfg.Timeout = 100 * time.Millisecond
	cfg.MaxNetworkDelay = 5 * time.Millisecond
	cfg.MemSize = 1 << 17
	return cfg
}

// Point is one measured datum of a throughput/latency experiment —
// the harness's structured point.
type Point = harness.Point

// measureOpt tunes a measurement run beyond the cluster config.
type measureOpt struct {
	// fanout broadcasts each client transaction to every replica —
	// the data-plane dissemination digest proposals resolve against.
	fanout bool
	// stores attaches a kvstore execution layer to every replica so
	// the commit-apply stage has real work.
	stores bool
	// election selects the leader-election design ("" keeps the
	// configuration default).
	election string
}

// record accumulates a harness result for TakeResults.
func (r *Runner) record(res *harness.Result) {
	if res != nil {
		r.results = append(r.results, res)
	}
}

// TakeResults returns every structured result collected since the
// last call and resets the collector — cmd/bamboo-bench drains it
// after each experiment to write the -json files.
func (r *Runner) TakeResults() []*harness.Result {
	out := r.results
	r.results = nil
	return out
}

// experiment assembles the harness declaration shared by every bench
// measurement.
func (r *Runner) experiment(cfg config.Config, warm, window time.Duration, opt measureOpt) harness.Experiment {
	return harness.Experiment{
		Config:  cfg,
		Backend: r.Backend,
		Measure: harness.MeasurePlan{
			Warmup:     warm,
			Window:     window,
			Fanout:     opt.fanout,
			WithStores: opt.stores,
		},
		Election: opt.election,
	}
}

// measure runs one experiment point. If rate > 0 an open-loop Poisson
// client drives the cluster at that rate; otherwise `concurrency`
// closed-loop workers do.
func (r *Runner) measure(cfg config.Config, concurrency int, rate float64,
	warm, window time.Duration) (Point, error) {
	return r.measureWith(cfg, concurrency, rate, warm, window, measureOpt{})
}

// measureWith is measure with per-run options, expressed as a
// single-point harness experiment.
func (r *Runner) measureWith(cfg config.Config, concurrency int, rate float64,
	warm, window time.Duration, opt measureOpt) (Point, error) {

	exp := r.experiment(cfg, warm, window, opt)
	exp.Measure.Concurrency = concurrency
	exp.Measure.Rate = rate
	res, err := harness.Run(exp)
	r.record(res)
	if err != nil {
		return Point{}, err
	}
	return res.Points[0], nil
}

// sweepClosed raises closed-loop concurrency until throughput stops
// improving (the paper's "increase concurrency until saturated"),
// returning all measured points.
func (r *Runner) sweepClosed(cfg config.Config, levels []int, warm, window time.Duration) ([]Point, error) {
	exp := r.experiment(cfg, warm, window, measureOpt{})
	exp.Measure.Levels = levels
	exp.Measure.SaturationStop = true
	res, err := harness.Run(exp)
	r.record(res)
	return res.Points, err
}

// calibrate measures the saturated closed-loop throughput of a
// configuration — used to place open-loop rates for Table II/Figure 8.
// The worker count must outrun the bandwidth-delay product: at commit
// latencies around 10 ms, a thousand in-flight requests are needed to
// expose six-figure Tx/s capacity.
func (r *Runner) calibrate(cfg config.Config) (float64, error) {
	p, err := r.measure(cfg, 1024, 0, r.scaled(time.Second), r.scaled(2*time.Second))
	if err != nil {
		return 0, err
	}
	return p.Throughput, nil
}

// MeasureTCPU estimates the model's t_CPU on this machine for a
// scheme: the mean cost of one signature operation pair (sign+verify
// averaged), which is what the paper's constant CPU term captures.
func MeasureTCPU(schemeName string) (time.Duration, error) {
	s, err := crypto.NewScheme(schemeName, 4, 1)
	if err != nil {
		return 0, err
	}
	digest := make([]byte, 32)
	const iters = 2000
	start := time.Now()
	for i := 0; i < iters; i++ {
		sig, err := s.Sign(1, digest)
		if err != nil {
			return 0, err
		}
		if err := s.Verify(1, digest, sig); err != nil {
			return 0, err
		}
	}
	return time.Since(start) / (2 * iters), nil
}

// MeasureLinkDelay measures the substrate's *effective* one-way
// message delay under the configuration's network conditions — what
// the paper means by "µ and σ can be determined via measurement". On a
// busy host the effective delay exceeds the configured distribution
// (timer granularity, scheduler hops), and feeding the measured values
// to the model is what makes the Figure 8 comparison honest.
func MeasureLinkDelay(cfg config.Config) (mu, sigma time.Duration, err error) {
	cond := network.NewConditions(cfg.Seed)
	cond.SetBaseDelay(cfg.Delay, cfg.DelayStd)
	sw := network.NewSwitch(cond)
	a, err := sw.Join(1)
	if err != nil {
		return 0, 0, err
	}
	b, err := sw.Join(2)
	if err != nil {
		return 0, 0, err
	}
	defer func() {
		_ = a.Close()
		_ = b.Close()
	}()
	const pings = 200
	samples := make([]float64, 0, pings)
	for i := 0; i < pings; i++ {
		start := time.Now()
		a.Send(2, types.QueryMsg{Height: uint64(i)})
		select {
		case <-b.Inbox():
			samples = append(samples, float64(time.Since(start)))
		case <-time.After(time.Second):
			return 0, 0, fmt.Errorf("bench: link-delay probe lost")
		}
	}
	var sum float64
	for _, s := range samples {
		sum += s
	}
	mean := sum / float64(len(samples))
	var varsum float64
	for _, s := range samples {
		varsum += (s - mean) * (s - mean)
	}
	std := math.Sqrt(varsum / float64(len(samples)))
	return time.Duration(mean), time.Duration(std), nil
}

// modelParams assembles Section V parameters matching a substrate
// configuration, with µ/σ and t_CPU measured on this host rather than
// assumed.
func (r *Runner) modelParams(cfg config.Config) (model.Params, error) {
	tcpu, err := MeasureTCPU(cfg.CryptoScheme)
	if err != nil {
		return model.Params{}, err
	}
	mu, sigma, err := MeasureLinkDelay(cfg)
	if err != nil {
		return model.Params{}, err
	}
	txBytes := float64(24 + cfg.PayloadSize)
	return model.Params{
		N:          cfg.N,
		BlockSize:  cfg.BlockSize,
		Mu:         mu,
		Sigma:      sigma,
		TCPU:       tcpu,
		BlockBytes: float64(cfg.BlockSize) * txBytes,
		Bandwidth:  cfg.Bandwidth,
	}, nil
}

// fmtMS renders a duration in milliseconds with two decimals.
func fmtMS(d time.Duration) string {
	return fmt.Sprintf("%.2f", float64(d)/float64(time.Millisecond))
}

// fmtKTx renders a rate in thousands of transactions per second.
func fmtKTx(rate float64) string {
	return fmt.Sprintf("%.1f", rate/1000)
}

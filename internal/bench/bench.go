// Package bench regenerates every table and figure of the paper's
// evaluation (Section VI) on the in-process substrate: Table II and
// Figures 8 through 15, plus ablation studies of the design choices
// DESIGN.md calls out. Each experiment prints rows/series in the shape
// the paper reports so results can be compared side by side; absolute
// numbers differ from the paper's testbed (single machine vs one VM
// per replica), but the comparative shapes are the reproduction target.
//
// All experiments accept a Scale factor: 1.0 runs paper-like
// durations, smaller values shrink warmup/measurement windows
// proportionally for quick runs (the go test benches default to the
// BAMBOO_BENCH_SCALE environment variable, or 0.15).
package bench

import (
	"fmt"
	"io"
	"math"
	"time"

	"github.com/bamboo-bft/bamboo/internal/cluster"
	"github.com/bamboo-bft/bamboo/internal/config"
	"github.com/bamboo-bft/bamboo/internal/crypto"
	"github.com/bamboo-bft/bamboo/internal/metrics"
	"github.com/bamboo-bft/bamboo/internal/model"
	"github.com/bamboo-bft/bamboo/internal/network"
	"github.com/bamboo-bft/bamboo/internal/types"
)

// Runner executes experiments and writes human-readable rows.
type Runner struct {
	// Out receives the result rows.
	Out io.Writer
	// Scale multiplies every warmup/measurement duration; 1.0
	// reproduces paper-like run lengths.
	Scale float64
	// Seed drives workload and key randomness.
	Seed int64
	// Ns overrides the scalability experiment's cluster sizes
	// (default 4, 8, 16, 32, 64).
	Ns []int
	// ByzLevels overrides the attack experiments' Byzantine counts
	// (default 0, 2, 4, 6, 8, 10).
	ByzLevels []int
	// Levels overrides the closed-loop concurrency ladder.
	Levels []int
}

func (r *Runner) ns() []int {
	if len(r.Ns) > 0 {
		return r.Ns
	}
	return []int{4, 8, 16, 32, 64}
}

func (r *Runner) byzLevels() []int {
	if len(r.ByzLevels) > 0 {
		return r.ByzLevels
	}
	return []int{0, 2, 4, 6, 8, 10}
}

func (r *Runner) levels() []int {
	if len(r.Levels) > 0 {
		return r.Levels
	}
	return []int{2, 8, 32, 128, 512}
}

// NewRunner creates a runner with sane defaults.
func NewRunner(out io.Writer, scale float64, seed int64) *Runner {
	if scale <= 0 {
		scale = 1
	}
	if seed == 0 {
		seed = 1
	}
	return &Runner{Out: out, Scale: scale, Seed: seed}
}

// scaled shrinks a duration by the run scale, with a floor that keeps
// measurements meaningful.
func (r *Runner) scaled(d time.Duration) time.Duration {
	s := time.Duration(float64(d) * r.Scale)
	if s < 150*time.Millisecond {
		s = 150 * time.Millisecond
	}
	return s
}

// printf writes one output row.
func (r *Runner) printf(format string, args ...any) {
	fmt.Fprintf(r.Out, format, args...)
}

// substrate returns the baseline configuration of the single-machine
// substrate: 4 replicas, HMAC authentication (see DESIGN.md §4),
// 200µs ± 50µs link delay (the <1ms same-datacenter profile of the
// paper's testbed), and 1 Gbps modeled NIC bandwidth.
func (r *Runner) substrate() config.Config {
	cfg := config.Default()
	cfg.CryptoScheme = "hmac"
	cfg.Seed = r.Seed
	cfg.Delay = 200 * time.Microsecond
	cfg.DelayStd = 50 * time.Microsecond
	cfg.Bandwidth = 1.25e8 // 1 Gbps in bytes/s
	cfg.Timeout = 100 * time.Millisecond
	cfg.MaxNetworkDelay = 5 * time.Millisecond
	cfg.MemSize = 1 << 17
	return cfg
}

// Point is one measured datum of a throughput/latency experiment.
type Point struct {
	// Offered is the offered load: concurrency for closed-loop
	// runs, transactions/second for open-loop runs.
	Offered float64
	// Throughput is committed transactions/second observed at the
	// observer replica.
	Throughput float64
	// Mean, P50, P99 are client-side latencies.
	Mean time.Duration
	P50  time.Duration
	P99  time.Duration
	// CGR and BI are the chain micro-metrics over the window.
	CGR float64
	BI  float64
	// Pipeline sums the pipeline stage counters over honest replicas
	// (all zero when the pipeline stages are disabled).
	Pipeline metrics.PipelineStats
}

// measureOpt tunes a measurement run beyond the cluster config.
type measureOpt struct {
	// fanout broadcasts each client transaction to every replica —
	// the data-plane dissemination digest proposals resolve against.
	fanout bool
	// stores attaches a kvstore execution layer to every replica so
	// the commit-apply stage has real work.
	stores bool
}

// measure runs one experiment point. If rate > 0 an open-loop Poisson
// client drives the cluster at that rate; otherwise `concurrency`
// closed-loop workers do.
func (r *Runner) measure(cfg config.Config, concurrency int, rate float64,
	warm, window time.Duration) (Point, error) {
	return r.measureWith(cfg, concurrency, rate, warm, window, measureOpt{})
}

// measureWith is measure with per-run options.
func (r *Runner) measureWith(cfg config.Config, concurrency int, rate float64,
	warm, window time.Duration, opt measureOpt) (Point, error) {

	var p Point
	c, err := cluster.New(cfg, cluster.Options{WithStores: opt.stores})
	if err != nil {
		return p, err
	}
	c.Start()
	defer c.Stop()
	cl, err := c.NewClient()
	if err != nil {
		return p, err
	}
	cl.SetFanout(opt.fanout)
	if rate > 0 {
		p.Offered = rate
		cl.RunOpenLoop(rate)
	} else {
		p.Offered = float64(concurrency)
		cl.RunClosedLoop(concurrency, 5*time.Second)
	}
	time.Sleep(warm)
	cl.Latency().Reset()
	observer := c.Node(c.Observer())
	startTx := observer.Tracker().Snapshot().TxCommitted
	start := time.Now()
	time.Sleep(window)
	elapsed := time.Since(start)
	endTx := observer.Tracker().Snapshot().TxCommitted
	lat := cl.Latency().Snapshot()
	chain := c.AggregateChain()

	p.Throughput = float64(endTx-startTx) / elapsed.Seconds()
	p.Mean, p.P50, p.P99 = lat.Mean, lat.P50, lat.P99
	p.CGR, p.BI = chain.CGR, chain.BI
	p.Pipeline = c.AggregatePipeline()
	if err := c.ConsistencyCheck(); err != nil {
		return p, err
	}
	if v := c.Violations(); v != 0 {
		return p, fmt.Errorf("bench: %d safety violations", v)
	}
	return p, nil
}

// sweepClosed raises closed-loop concurrency until throughput stops
// improving (the paper's "increase concurrency until saturated"),
// returning all measured points.
func (r *Runner) sweepClosed(cfg config.Config, levels []int, warm, window time.Duration) ([]Point, error) {
	points := make([]Point, 0, len(levels))
	var best float64
	for _, lvl := range levels {
		p, err := r.measure(cfg, lvl, 0, warm, window)
		if err != nil {
			return points, err
		}
		points = append(points, p)
		if p.Throughput > best {
			best = p.Throughput
		} else if p.Throughput < 0.9*best && len(points) >= 3 {
			break // clearly past saturation
		}
	}
	return points, nil
}

// calibrate measures the saturated closed-loop throughput of a
// configuration — used to place open-loop rates for Table II/Figure 8.
// The worker count must outrun the bandwidth-delay product: at commit
// latencies around 10 ms, a thousand in-flight requests are needed to
// expose six-figure Tx/s capacity.
func (r *Runner) calibrate(cfg config.Config) (float64, error) {
	p, err := r.measure(cfg, 1024, 0, r.scaled(time.Second), r.scaled(2*time.Second))
	if err != nil {
		return 0, err
	}
	return p.Throughput, nil
}

// MeasureTCPU estimates the model's t_CPU on this machine for a
// scheme: the mean cost of one signature operation pair (sign+verify
// averaged), which is what the paper's constant CPU term captures.
func MeasureTCPU(schemeName string) (time.Duration, error) {
	s, err := crypto.NewScheme(schemeName, 4, 1)
	if err != nil {
		return 0, err
	}
	digest := make([]byte, 32)
	const iters = 2000
	start := time.Now()
	for i := 0; i < iters; i++ {
		sig, err := s.Sign(1, digest)
		if err != nil {
			return 0, err
		}
		if err := s.Verify(1, digest, sig); err != nil {
			return 0, err
		}
	}
	return time.Since(start) / (2 * iters), nil
}

// MeasureLinkDelay measures the substrate's *effective* one-way
// message delay under the configuration's network conditions — what
// the paper means by "µ and σ can be determined via measurement". On a
// busy host the effective delay exceeds the configured distribution
// (timer granularity, scheduler hops), and feeding the measured values
// to the model is what makes the Figure 8 comparison honest.
func MeasureLinkDelay(cfg config.Config) (mu, sigma time.Duration, err error) {
	cond := network.NewConditions(cfg.Seed)
	cond.SetBaseDelay(cfg.Delay, cfg.DelayStd)
	sw := network.NewSwitch(cond)
	a, err := sw.Join(1)
	if err != nil {
		return 0, 0, err
	}
	b, err := sw.Join(2)
	if err != nil {
		return 0, 0, err
	}
	defer func() {
		_ = a.Close()
		_ = b.Close()
	}()
	const pings = 200
	samples := make([]float64, 0, pings)
	for i := 0; i < pings; i++ {
		start := time.Now()
		a.Send(2, types.QueryMsg{Height: uint64(i)})
		select {
		case <-b.Inbox():
			samples = append(samples, float64(time.Since(start)))
		case <-time.After(time.Second):
			return 0, 0, fmt.Errorf("bench: link-delay probe lost")
		}
	}
	var sum float64
	for _, s := range samples {
		sum += s
	}
	mean := sum / float64(len(samples))
	var varsum float64
	for _, s := range samples {
		varsum += (s - mean) * (s - mean)
	}
	std := math.Sqrt(varsum / float64(len(samples)))
	return time.Duration(mean), time.Duration(std), nil
}

// modelParams assembles Section V parameters matching a substrate
// configuration, with µ/σ and t_CPU measured on this host rather than
// assumed.
func (r *Runner) modelParams(cfg config.Config) (model.Params, error) {
	tcpu, err := MeasureTCPU(cfg.CryptoScheme)
	if err != nil {
		return model.Params{}, err
	}
	mu, sigma, err := MeasureLinkDelay(cfg)
	if err != nil {
		return model.Params{}, err
	}
	txBytes := float64(24 + cfg.PayloadSize)
	return model.Params{
		N:          cfg.N,
		BlockSize:  cfg.BlockSize,
		Mu:         mu,
		Sigma:      sigma,
		TCPU:       tcpu,
		BlockBytes: float64(cfg.BlockSize) * txBytes,
		Bandwidth:  cfg.Bandwidth,
	}, nil
}

// fmtMS renders a duration in milliseconds with two decimals.
func fmtMS(d time.Duration) string {
	return fmt.Sprintf("%.2f", float64(d)/float64(time.Millisecond))
}

// fmtKTx renders a rate in thousands of transactions per second.
func fmtKTx(rate float64) string {
	return fmt.Sprintf("%.1f", rate/1000)
}

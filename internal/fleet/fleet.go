// Package fleet spawns, supervises, and tears down a deployment of
// real bamboo-server processes on loopback — the third deployment
// backend, where every replica is its own OS process with its own
// ledger and snapshot files, and the only way in is the wire.
//
// The supervisor reserves ephemeral ports, writes one shared
// configuration file, execs one bamboo-server per replica into a
// run-scoped directory, and waits for every /readyz. Faults cross the
// process boundary for real: a crash is SIGKILL, a restart re-execs
// the child against its surviving ledger and snapshot files (so
// bootstrap replay is measured across an actual process death), and
// partitions, delays, and loss are pushed to every live server's
// POST /admin/conditions. The steady-state condition view is
// accumulated and replayed to restarted replicas, whose fresh
// processes boot with default conditions.
package fleet

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"sync"
	"syscall"
	"time"

	"github.com/bamboo-bft/bamboo/internal/config"
	"github.com/bamboo-bft/bamboo/internal/httpapi"
	"github.com/bamboo-bft/bamboo/internal/network"
	"github.com/bamboo-bft/bamboo/internal/trace"
	"github.com/bamboo-bft/bamboo/internal/types"
)

// Options configures a fleet deployment.
type Options struct {
	// ServerBin is the bamboo-server binary to exec. Empty resolves
	// through ServerBin(): $BAMBOO_SERVER, then PATH, then a one-time
	// `go build` from the enclosing module.
	ServerBin string
	// Dir is the run directory holding the configuration file and
	// every replica's ledger, snapshot, and log files. Empty creates a
	// temporary directory that Stop removes; a caller-supplied Dir is
	// left in place (reuse it to restart a fleet on surviving state).
	Dir string
	// DisableLedger runs the servers without persistence (-ledger
	// none); restarts then recover over state sync only.
	DisableLedger bool
	// ReadyTimeout bounds the wait for every replica's /readyz after
	// spawn and after each restart. Default 30s.
	ReadyTimeout time.Duration
	// GraceTimeout is how long Stop waits between SIGTERM and SIGKILL.
	// The default (10s) sits above the server's own worst-case drain —
	// bamboo-server gives in-flight API requests up to 5s before
	// closing their connections — so a healthy replica is never killed
	// for draining politely; Stop returns as soon as every child exits,
	// not after the full grace.
	GraceTimeout time.Duration
}

// replica is one supervised child process slot. The slot outlives any
// single incarnation: a restart re-execs into the same slot, keeping
// the ledger/snapshot paths and both ports stable.
type replica struct {
	id       types.NodeID
	consAddr string
	httpAddr string
	ledger   string
	snaps    string
	logPath  string

	mu       sync.Mutex
	cmd      *exec.Cmd
	pid      int
	down     bool // no live process in the slot (crashed, not yet restarted)
	killed   bool // we initiated the kill; a non-zero exit is expected
	waitErr  error
	waitDone chan struct{}
	logFile  *os.File
}

// Fleet is a running multi-process deployment.
type Fleet struct {
	cfg     config.Config
	dir     string
	ownDir  bool
	cfgPath string
	bin     string
	grace   time.Duration
	ready   time.Duration
	client  *http.Client

	mu       sync.Mutex
	replicas map[types.NodeID]*replica
	steady   network.ConditionsSpec
	errs     []error

	stopOnce sync.Once
	stopErr  error
}

// New reserves ports, writes the run configuration, spawns one
// bamboo-server per replica, and blocks until every replica reports
// ready (transport bound, bootstrap replay done). On any failure the
// partial fleet is torn down before returning.
func New(cfg config.Config, opts Options) (*Fleet, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	bin := opts.ServerBin
	if bin == "" {
		var err error
		if bin, err = ServerBin(); err != nil {
			return nil, err
		}
	}
	f := &Fleet{
		cfg:      cfg,
		bin:      bin,
		grace:    opts.GraceTimeout,
		ready:    opts.ReadyTimeout,
		client:   &http.Client{Timeout: 5 * time.Second},
		replicas: make(map[types.NodeID]*replica, cfg.N),
	}
	if f.grace <= 0 {
		f.grace = 10 * time.Second
	}
	if f.ready <= 0 {
		f.ready = 30 * time.Second
	}
	f.dir = opts.Dir
	if f.dir == "" {
		dir, err := os.MkdirTemp("", "bamboo-fleet-")
		if err != nil {
			return nil, fmt.Errorf("fleet: run dir: %w", err)
		}
		f.dir, f.ownDir = dir, true
	} else if err := os.MkdirAll(f.dir, 0o755); err != nil {
		return nil, fmt.Errorf("fleet: run dir: %w", err)
	}

	// Reserve two loopback ports per replica (consensus + HTTP) by
	// binding them all simultaneously, then releasing just before the
	// children bind them back. The window between release and re-bind
	// is a benign race on a loopback test host.
	ports, err := reservePorts(2 * cfg.N)
	if err != nil {
		if f.ownDir {
			_ = os.RemoveAll(f.dir)
		}
		return nil, err
	}
	f.cfg.Addrs = make(map[types.NodeID]string, cfg.N)
	for i := 0; i < cfg.N; i++ {
		id := types.NodeID(i + 1)
		f.cfg.Addrs[id] = fmt.Sprintf("127.0.0.1:%d", ports[2*i])
		r := &replica{
			id:       id,
			consAddr: f.cfg.Addrs[id],
			httpAddr: fmt.Sprintf("127.0.0.1:%d", ports[2*i+1]),
			logPath:  filepath.Join(f.dir, fmt.Sprintf("replica-%d.log", id)),
		}
		if !opts.DisableLedger {
			r.ledger = filepath.Join(f.dir, fmt.Sprintf("replica-%d.ledger", id))
			r.snaps = filepath.Join(f.dir, fmt.Sprintf("replica-%d.snap", id))
		}
		f.replicas[id] = r
	}
	f.cfgPath = filepath.Join(f.dir, "bamboo.json")
	if err := f.cfg.Save(f.cfgPath); err != nil {
		if f.ownDir {
			_ = os.RemoveAll(f.dir)
		}
		return nil, err
	}

	for _, r := range f.sorted() {
		if err := f.spawn(r); err != nil {
			_ = f.Stop()
			return nil, err
		}
	}
	deadline := time.Now().Add(f.ready)
	for _, r := range f.sorted() {
		if err := f.waitReady(r, deadline); err != nil {
			_ = f.Stop()
			return nil, err
		}
	}
	return f, nil
}

// sorted returns the replica slots in ID order (deterministic spawn,
// signal, and merge order).
func (f *Fleet) sorted() []*replica {
	out := make([]*replica, 0, len(f.replicas))
	for i := 1; i <= f.cfg.N; i++ {
		out = append(out, f.replicas[types.NodeID(i)])
	}
	return out
}

// spawn execs one incarnation of the replica into its slot.
func (f *Fleet) spawn(r *replica) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.logFile == nil {
		lf, err := os.OpenFile(r.logPath, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			return fmt.Errorf("fleet: replica %d log: %w", r.id, err)
		}
		r.logFile = lf
	}
	args := []string{
		"-config", f.cfgPath,
		"-id", strconv.FormatUint(uint64(r.id), 10),
		"-http", r.httpAddr,
	}
	if r.ledger == "" {
		args = append(args, "-ledger", "none")
	} else {
		args = append(args, "-ledger", r.ledger, "-snapshots", r.snaps)
	}
	cmd := exec.Command(f.bin, args...)
	cmd.Stdout = r.logFile
	cmd.Stderr = r.logFile
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("fleet: replica %d: %w", r.id, err)
	}
	done := make(chan struct{})
	r.cmd = cmd
	r.pid = cmd.Process.Pid
	r.down = false
	r.killed = false
	r.waitErr = nil
	r.waitDone = done
	go func() {
		err := cmd.Wait()
		r.mu.Lock()
		r.waitErr = err
		r.down = true
		r.mu.Unlock()
		close(done)
	}()
	return nil
}

// waitReady polls the replica's /readyz until it answers 200, the
// process dies, or the deadline passes.
func (f *Fleet) waitReady(r *replica, deadline time.Time) error {
	url := fmt.Sprintf("http://%s/readyz", r.httpAddr)
	for {
		r.mu.Lock()
		done := r.waitDone
		r.mu.Unlock()
		select {
		case <-done:
			return fmt.Errorf("fleet: replica %d exited before ready: %w\n%s",
				r.id, r.waitError(), logTail(r.logPath))
		default:
		}
		resp, err := f.client.Get(url)
		if err == nil {
			_, _ = io.Copy(io.Discard, resp.Body)
			_ = resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("fleet: replica %d not ready within %v\n%s",
				r.id, f.ready, logTail(r.logPath))
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func (r *replica) waitError() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.waitErr
}

// logTail returns the last portion of a replica log for error context.
func logTail(path string) string {
	data, err := os.ReadFile(path)
	if err != nil {
		return ""
	}
	const tail = 2048
	if len(data) > tail {
		data = data[len(data)-tail:]
	}
	return string(bytes.TrimSpace(data))
}

// reservePorts binds n loopback ports simultaneously (so no two
// reservations collide), records them, and releases them all.
func reservePorts(n int) ([]int, error) {
	listeners := make([]net.Listener, 0, n)
	defer func() {
		for _, l := range listeners {
			_ = l.Close()
		}
	}()
	ports := make([]int, 0, n)
	for i := 0; i < n; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, fmt.Errorf("fleet: reserve port: %w", err)
		}
		listeners = append(listeners, l)
		ports = append(ports, l.Addr().(*net.TCPAddr).Port)
	}
	return ports, nil
}

// URL returns the base HTTP URL of a replica's API.
func (f *Fleet) URL(id types.NodeID) string {
	return "http://" + f.replicas[id].httpAddr
}

// Config returns the effective configuration (addresses filled in).
func (f *Fleet) Config() config.Config { return f.cfg }

// Dir returns the run directory.
func (f *Fleet) Dir() string { return f.dir }

// Pids returns the current (latest incarnation) PID of every replica —
// the audit trail proving each replica is its own OS process and that
// a restart really re-exec'd.
func (f *Fleet) Pids() map[types.NodeID]int {
	out := make(map[types.NodeID]int, len(f.replicas))
	for id, r := range f.replicas {
		r.mu.Lock()
		out[id] = r.pid
		r.mu.Unlock()
	}
	return out
}

// noteErr records an asynchronous supervision error; Stop surfaces
// them.
func (f *Fleet) noteErr(err error) {
	f.mu.Lock()
	f.errs = append(f.errs, err)
	f.mu.Unlock()
}

// ApplyConditions pushes a declarative condition change to every live
// replica and folds it into the accumulated steady state (replayed to
// replicas that restart with a fresh condition model). Every server
// holds the full deployment view, so sender-side judging matches the
// shared-model in-process backends. Implements the harness fault
// target.
func (f *Fleet) ApplyConditions(spec network.ConditionsSpec) {
	f.mu.Lock()
	f.steady.Merge(spec)
	f.mu.Unlock()
	for _, r := range f.sorted() {
		r.mu.Lock()
		down := r.down
		r.mu.Unlock()
		if down {
			continue
		}
		if err := f.postConditions(r, spec); err != nil {
			f.noteErr(err)
		}
	}
}

func (f *Fleet) postConditions(r *replica, spec network.ConditionsSpec) error {
	body, err := json.Marshal(spec)
	if err != nil {
		return fmt.Errorf("fleet: encode conditions: %w", err)
	}
	resp, err := f.client.Post(
		fmt.Sprintf("http://%s/admin/conditions", r.httpAddr),
		"application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("fleet: replica %d conditions: %w", r.id, err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("fleet: replica %d conditions: %s: %s",
			r.id, resp.Status, bytes.TrimSpace(msg))
	}
	return nil
}

// Crash kills the replica's process with SIGKILL — no shutdown path
// runs, exactly what a crash fault means — and reaps it before
// returning, so the schedule's next event sees the process gone.
// Implements the harness fault target.
func (f *Fleet) Crash(id types.NodeID) {
	r := f.replicas[id]
	r.mu.Lock()
	cmd, done := r.cmd, r.waitDone
	r.killed = true
	r.mu.Unlock()
	if cmd == nil || cmd.Process == nil {
		return
	}
	_ = cmd.Process.Kill()
	<-done
}

// Restart re-execs a crashed replica against its surviving ledger and
// snapshot files and the same ports, waits for it to finish bootstrap
// replay (/readyz), then replays the accumulated steady-state
// conditions onto its fresh condition model. Implements the harness
// fault target; failures are recorded and surfaced by Stop.
func (f *Fleet) Restart(id types.NodeID) {
	r := f.replicas[id]
	r.mu.Lock()
	down := r.down
	r.mu.Unlock()
	if !down {
		f.noteErr(fmt.Errorf("fleet: restart of replica %d, which is still running", id))
		return
	}
	if err := f.spawn(r); err != nil {
		f.noteErr(err)
		return
	}
	if err := f.waitReady(r, time.Now().Add(f.ready)); err != nil {
		f.noteErr(err)
		return
	}
	f.mu.Lock()
	steady := f.steady
	f.mu.Unlock()
	if !steady.Empty() {
		if err := f.postConditions(r, steady); err != nil {
			f.noteErr(err)
		}
	}
}

// ReplicaResult fetches the replica's node-local result slice.
func (f *Fleet) ReplicaResult(id types.NodeID) (httpapi.ReplicaResult, error) {
	var out httpapi.ReplicaResult
	resp, err := f.client.Get(f.URL(id) + "/admin/result")
	if err != nil {
		return out, fmt.Errorf("fleet: replica %d result: %w", id, err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		return out, fmt.Errorf("fleet: replica %d result: %s", id, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return out, fmt.Errorf("fleet: replica %d result: %w", id, err)
	}
	return out, nil
}

// Metrics scrapes the replica's Prometheus text exposition
// (GET /metrics) — the fleet-wide telemetry plane's raw material, and
// what CI's fleet-smoke asserts parses from a live server process.
func (f *Fleet) Metrics(id types.NodeID) (string, error) {
	resp, err := f.client.Get(f.URL(id) + "/metrics")
	if err != nil {
		return "", fmt.Errorf("fleet: replica %d metrics: %w", id, err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("fleet: replica %d metrics: %s", id, resp.Status)
	}
	text, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", fmt.Errorf("fleet: replica %d metrics: %w", id, err)
	}
	return string(text), nil
}

// Trace fetches the replica's block-lifecycle trace rings
// (GET /debug/trace): spans with stage timestamps plus interleaved
// per-view events, decoded from the JSON export.
func (f *Fleet) Trace(id types.NodeID) (trace.Export, error) {
	var out trace.Export
	resp, err := f.client.Get(f.URL(id) + "/debug/trace")
	if err != nil {
		return out, fmt.Errorf("fleet: replica %d trace: %w", id, err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		return out, fmt.Errorf("fleet: replica %d trace: %s", id, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return out, fmt.Errorf("fleet: replica %d trace: %w", id, err)
	}
	return out, nil
}

// HashAt fetches the replica's committed block hash at the height.
// ok=false (without error) means the replica has not committed that
// height.
func (f *Fleet) HashAt(id types.NodeID, height uint64) (string, bool, error) {
	resp, err := f.client.Get(fmt.Sprintf("%s/hash?height=%d", f.URL(id), height))
	if err != nil {
		return "", false, fmt.Errorf("fleet: replica %d hash: %w", id, err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode == http.StatusNotFound {
		return "", false, nil
	}
	if resp.StatusCode != http.StatusOK {
		return "", false, fmt.Errorf("fleet: replica %d hash: %s", id, resp.Status)
	}
	var body map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return "", false, fmt.Errorf("fleet: replica %d hash: %w", id, err)
	}
	return body["hash"], true, nil
}

// Stop tears the fleet down: SIGTERM every live replica, wait out the
// grace period, SIGKILL stragglers, reap everything, and remove the
// run directory if the fleet owns it. It returns the first teardown
// problem: a replica that exited non-zero on its own (bamboo-server
// exits non-zero when it observed a safety violation), a straggler
// that had to be killed, or any recorded supervision error. Idempotent.
func (f *Fleet) Stop() error {
	f.stopOnce.Do(func() { f.stopErr = f.stop() })
	return f.stopErr
}

func (f *Fleet) stop() error {
	var errs []error
	for _, r := range f.sorted() {
		r.mu.Lock()
		if !r.down && r.cmd != nil && r.cmd.Process != nil {
			if err := r.cmd.Process.Signal(syscall.SIGTERM); err != nil {
				r.killed = true // already gone; don't blame the exit status
			}
		}
		r.mu.Unlock()
	}
	deadline := time.After(f.grace)
	for _, r := range f.sorted() {
		r.mu.Lock()
		done := r.waitDone
		r.mu.Unlock()
		if done == nil {
			continue
		}
		select {
		case <-done:
		case <-deadline:
			r.mu.Lock()
			r.killed = true
			if r.cmd != nil && r.cmd.Process != nil {
				_ = r.cmd.Process.Kill()
			}
			r.mu.Unlock()
			<-done
			errs = append(errs, fmt.Errorf(
				"fleet: replica %d did not stop within %v and was killed", r.id, f.grace))
		}
	}
	for _, r := range f.sorted() {
		r.mu.Lock()
		if r.waitErr != nil && !r.killed {
			errs = append(errs, fmt.Errorf("fleet: replica %d: %w\n%s",
				r.id, r.waitErr, logTail(r.logPath)))
		}
		if r.logFile != nil {
			_ = r.logFile.Close()
			r.logFile = nil
		}
		r.mu.Unlock()
	}
	f.mu.Lock()
	errs = append(errs, f.errs...)
	f.mu.Unlock()
	if f.ownDir {
		if err := os.RemoveAll(f.dir); err != nil {
			errs = append(errs, fmt.Errorf("fleet: run dir: %w", err))
		}
	}
	return errors.Join(errs...)
}

package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"github.com/bamboo-bft/bamboo/internal/config"
	"github.com/bamboo-bft/bamboo/internal/kvstore"
	"github.com/bamboo-bft/bamboo/internal/network"
	"github.com/bamboo-bft/bamboo/internal/types"
)

// TestMain builds the server binary once for every test in the
// package (the ServerBin fallback would too, but into a directory
// nothing removes) and points the fleet at it.
func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "bamboo-fleet-test-")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	bin := filepath.Join(dir, "bamboo-server")
	root, err := moduleRoot()
	if err == nil {
		cmd := exec.Command("go", "build", "-o", bin, "./cmd/bamboo-server")
		cmd.Dir = root
		var out []byte
		if out, err = cmd.CombinedOutput(); err != nil {
			err = fmt.Errorf("building bamboo-server: %v\n%s", err, out)
		}
	}
	if err != nil {
		_ = os.RemoveAll(dir)
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	_ = os.Setenv("BAMBOO_SERVER", bin)
	code := m.Run()
	_ = os.RemoveAll(dir)
	os.Exit(code)
}

func fleetConfig() config.Config {
	cfg := config.Default()
	cfg.Protocol = config.ProtocolHotStuff
	cfg.ApplyProtocolDefaults()
	cfg.CryptoScheme = "hmac"
	cfg.BlockSize = 20
	cfg.MemSize = 10000
	cfg.Timeout = 150 * time.Millisecond
	return cfg
}

// processAlive reports whether the PID names a live process (signal 0
// probes without delivering).
func processAlive(pid int) bool {
	return syscall.Kill(pid, 0) == nil
}

func submitNoop(t *testing.T, f *Fleet, id types.NodeID) {
	t.Helper()
	body, _ := json.Marshal(map[string][]byte{"command": kvstore.EncodeNoop(0)})
	resp, err := http.Post(f.URL(id)+"/tx", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("submit to replica %d: %v", id, err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("submit to replica %d: %s", id, resp.Status)
	}
}

// waitHeight polls the replica's result until its committed height
// reaches target.
func waitHeight(t *testing.T, f *Fleet, id types.NodeID, target uint64, timeout time.Duration) uint64 {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		res, err := f.ReplicaResult(id)
		if err == nil && res.CommittedHeight >= target {
			return res.CommittedHeight
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica %d below height %d at deadline (last: %+v, err: %v)",
				id, target, res, err)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// TestFleetCommitsAndTearsDownClean is the lifecycle test: four real
// processes come up, commit, and Stop leaves neither processes nor
// files behind.
func TestFleetCommitsAndTearsDownClean(t *testing.T) {
	cfg := fleetConfig()
	f, err := New(cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	stopped := false
	defer func() {
		if !stopped {
			_ = f.Stop()
		}
	}()

	pids := f.Pids()
	if len(pids) != cfg.N {
		t.Fatalf("pids = %v, want %d entries", pids, cfg.N)
	}
	seen := make(map[int]bool)
	for id, pid := range pids {
		if pid <= 0 || seen[pid] || pid == os.Getpid() {
			t.Fatalf("replica %d pid %d not a distinct child process (%v)", id, pid, pids)
		}
		seen[pid] = true
		if !processAlive(pid) {
			t.Fatalf("replica %d process %d not running", id, pid)
		}
	}

	submitNoop(t, f, 1)
	observer := types.NodeID(cfg.N)
	h := waitHeight(t, f, observer, 1, 10*time.Second)

	res, err := f.ReplicaResult(observer)
	if err != nil {
		t.Fatal(err)
	}
	if res.ID != uint64(observer) || res.Pid != pids[observer] {
		t.Fatalf("result identity mismatch: %+v vs pids %v", res, pids)
	}
	if res.Chain.BlocksCommitted == 0 {
		t.Fatalf("no committed blocks in result: %+v", res)
	}
	if _, ok, err := f.HashAt(observer, h); err != nil || !ok {
		t.Fatalf("hash at committed height %d: ok=%v err=%v", h, ok, err)
	}

	// The telemetry plane must be scrape-able from a live replica
	// process: the Prometheus exposition carries committed blocks, and
	// the trace rings hold committed spans.
	text, err := f.Metrics(observer)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "bamboo_committed_blocks_total") ||
		!strings.Contains(text, "bamboo_stage_seconds_bucket") {
		t.Fatalf("exposition missing required series:\n%.300s", text)
	}
	tr, err := f.Trace(observer)
	if err != nil {
		t.Fatal(err)
	}
	committedSpan := false
	for _, sp := range tr.Spans {
		if sp.Committed != 0 {
			committedSpan = true
		}
	}
	if !committedSpan {
		t.Fatalf("trace export has no committed span (%d spans)", len(tr.Spans))
	}

	dir := f.Dir()
	stopped = true
	if err := f.Stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}
	for id, pid := range pids {
		if processAlive(pid) {
			t.Errorf("replica %d process %d still alive after Stop", id, pid)
		}
	}
	if _, err := os.Stat(dir); !os.IsNotExist(err) {
		t.Fatalf("run dir %s not removed after Stop (err=%v)", dir, err)
	}
}

// TestFleetCrashRestartReplaysAcrossProcesses is the fleet's reason to
// exist: a SIGKILLed replica re-execs as a NEW process against its
// surviving ledger, replays it during bootstrap, and rejoins the
// chain.
func TestFleetCrashRestartReplaysAcrossProcesses(t *testing.T) {
	cfg := fleetConfig()
	f, err := New(cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = f.Stop() }()

	victim := types.NodeID(2)
	submitNoop(t, f, 1)
	// Let the victim commit real history so restart replay has work.
	waitHeight(t, f, victim, 5, 15*time.Second)

	oldPid := f.Pids()[victim]
	f.Crash(victim)
	if processAlive(oldPid) {
		t.Fatalf("victim process %d survived Crash", oldPid)
	}
	// No progress expectation while the victim is down: with n=4 and
	// round-robin leaders, votes for every view preceding the dead
	// leader's turn are addressed to the dead next-leader, so three
	// consecutive certified views never form and chained commit rules
	// stall until the replica returns — the fleet exposes for real the
	// forking dynamics the in-process backends only brush against with
	// sub-second crash windows. Hold the gap open briefly, then bring
	// the victim back.
	observer := types.NodeID(cfg.N)
	time.Sleep(300 * time.Millisecond)

	f.Restart(victim)
	newPid := f.Pids()[victim]
	if newPid == oldPid || !processAlive(newPid) {
		t.Fatalf("restart did not re-exec: old pid %d, new pid %d", oldPid, newPid)
	}
	res, err := f.ReplicaResult(victim)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pid != newPid {
		t.Fatalf("victim reports pid %d, supervisor sees %d", res.Pid, newPid)
	}
	if res.Pipeline.ReplayedBlocks == 0 {
		t.Fatalf("restarted replica replayed no ledger blocks: %+v", res.Pipeline)
	}
	// The restarted replica catches back up to the live chain.
	live, err := f.ReplicaResult(observer)
	if err != nil {
		t.Fatal(err)
	}
	waitHeight(t, f, victim, live.CommittedHeight, 20*time.Second)

	if err := f.Stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}
}

// TestFleetConditionsReachEveryReplica pushes a condition change and a
// heal; any replica rejecting it surfaces through Stop.
func TestFleetConditionsReachEveryReplica(t *testing.T) {
	cfg := fleetConfig()
	f, err := New(cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = f.Stop() }()

	f.ApplyConditions(network.ConditionsSpec{Partition: map[types.NodeID]int{1: 1}})
	f.ApplyConditions(network.ConditionsSpec{Heal: true})

	submitNoop(t, f, 1)
	waitHeight(t, f, types.NodeID(cfg.N), 1, 10*time.Second)
	if err := f.Stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}
}

package fleet

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
)

var (
	buildOnce sync.Once
	builtBin  string
	buildErr  error
)

// ServerBin resolves the bamboo-server binary a fleet execs:
//
//  1. $BAMBOO_SERVER, when set (CI builds once — e.g. with -race —
//     and points every run at it);
//  2. bamboo-server on $PATH;
//  3. a one-time `go build ./cmd/bamboo-server` from the enclosing
//     module, cached for the rest of the process (requires running
//     inside the repository with a go toolchain available).
//
// The fallback build lands in a process-lifetime temp directory; set
// $BAMBOO_SERVER to keep repeated short-lived invocations from
// rebuilding.
func ServerBin() (string, error) {
	if p := os.Getenv("BAMBOO_SERVER"); p != "" {
		return p, nil
	}
	if p, err := exec.LookPath("bamboo-server"); err == nil {
		return p, nil
	}
	buildOnce.Do(func() {
		root, err := moduleRoot()
		if err != nil {
			buildErr = err
			return
		}
		dir, err := os.MkdirTemp("", "bamboo-fleet-bin-")
		if err != nil {
			buildErr = fmt.Errorf("fleet: %w", err)
			return
		}
		bin := filepath.Join(dir, "bamboo-server")
		cmd := exec.Command("go", "build", "-o", bin, "./cmd/bamboo-server")
		cmd.Dir = root
		if out, err := cmd.CombinedOutput(); err != nil {
			_ = os.RemoveAll(dir)
			buildErr = fmt.Errorf("fleet: building bamboo-server: %v\n%s", err, out)
			return
		}
		builtBin = bin
	})
	if buildErr != nil {
		return "", buildErr
	}
	return builtBin, nil
}

// moduleRoot walks up from the working directory to the enclosing
// go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", fmt.Errorf("fleet: %w", err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("fleet: no bamboo-server binary ($BAMBOO_SERVER unset, not on PATH, no enclosing module to build from)")
		}
		dir = parent
	}
}

package network

import (
	"sync"
	"time"

	"github.com/bamboo-bft/bamboo/internal/metrics"
	"github.com/bamboo-bft/bamboo/internal/types"
)

// Conditioned wraps a Transport with the same Conditions model the
// in-process switch enforces, so a declared fault schedule means the
// same thing over real sockets as it does in simulation: every
// outgoing message's fate is judged at send time (partition and crash
// drops, random loss, modeled delay), and incoming traffic is
// discarded while the local node is crashed — mirroring the switch's
// delivery-time crash re-check. The wrapper leaves the wire format and
// the underlying transport untouched; it only decides which messages
// reach it, and when.
type Conditioned struct {
	inner Transport
	cond  *Conditions
	// replicas is the broadcast domain judged per destination; nil for
	// endpoints that never broadcast (clients).
	replicas []types.NodeID
	out      chan Envelope
	done     chan struct{}
	wg       sync.WaitGroup

	closeOnce sync.Once
	dropped   metrics.Counter
}

// Condition wraps inner with the shared condition model.
func Condition(inner Transport, cond *Conditions, replicas []types.NodeID) *Conditioned {
	c := &Conditioned{
		inner:    inner,
		cond:     cond,
		replicas: append([]types.NodeID(nil), replicas...),
		out:      make(chan Envelope, inboxCapacity),
		done:     make(chan struct{}),
	}
	c.wg.Add(1)
	go c.pump()
	return c
}

// Self implements Transport.
func (c *Conditioned) Self() types.NodeID { return c.inner.Self() }

// Send implements Transport, judging the message against the condition
// model before it reaches the wire.
func (c *Conditioned) Send(to types.NodeID, msg any) {
	v := c.cond.judge(c.inner.Self(), to, messageSize(msg), time.Now())
	if v.drop {
		c.dropped.Add(1)
		return
	}
	if v.delay <= 0 {
		c.inner.Send(to, msg)
		return
	}
	// One timer per delayed message. Unlike the switch there is no
	// deadline-heap scheduler here: conditioned-TCP runs are scenario
	// scale, where timer pressure is irrelevant; saturation studies
	// with modeled delay belong on the switch.
	time.AfterFunc(v.delay, func() {
		select {
		case <-c.done:
			return
		default:
		}
		// Crash re-check at delivery time, like the switch's
		// scheduler: a node that crashed mid-flight gets nothing.
		if c.cond.IsCrashed(to) {
			c.dropped.Add(1)
			return
		}
		c.inner.Send(to, msg)
	})
}

// Broadcast implements Transport, judging each destination separately
// so a partition can split one broadcast's audience.
func (c *Conditioned) Broadcast(msg any) {
	self := c.inner.Self()
	for _, id := range c.replicas {
		if id != self {
			c.Send(id, msg)
		}
	}
}

// Inbox implements Transport.
func (c *Conditioned) Inbox() <-chan Envelope { return c.out }

// pump filters the inner inbox: traffic arriving while the local node
// is crashed is discarded, so a crashed replica is silent in both
// directions even though its sockets still accept bytes.
func (c *Conditioned) pump() {
	defer c.wg.Done()
	defer close(c.out)
	self := c.inner.Self()
	for {
		select {
		case <-c.done:
			return
		case env, ok := <-c.inner.Inbox():
			if !ok {
				return
			}
			if c.cond.IsCrashed(self) {
				c.dropped.Add(1)
				continue
			}
			select {
			case c.out <- env:
			case <-c.done:
				return
			}
		}
	}
}

// Stats merges the underlying transport's counters with the messages
// this shim dropped by condition.
func (c *Conditioned) Stats() TransportStats {
	var s TransportStats
	if st, ok := c.inner.(interface{ Stats() TransportStats }); ok {
		s = st.Stats()
	}
	s.Dropped += c.dropped.Load()
	return s
}

// Close implements Transport: it closes the underlying transport and
// joins the filter goroutine. Safe to call more than once.
func (c *Conditioned) Close() error {
	var err error
	c.closeOnce.Do(func() {
		close(c.done)
		err = c.inner.Close()
		c.wg.Wait()
	})
	return err
}

package network

import (
	"testing"
	"time"

	"github.com/bamboo-bft/bamboo/internal/types"
)

// newConditionedPair wires two TCP transports through one shared
// condition model — the harness's TCP-backend shape in miniature.
func newConditionedPair(t *testing.T) (*Conditioned, *Conditioned, *Conditions) {
	t.Helper()
	a, b := newTCPPair(t)
	cond := NewConditions(1)
	replicas := []types.NodeID{1, 2}
	ca := Condition(a, cond, replicas)
	cb := Condition(b, cond, replicas)
	t.Cleanup(func() {
		_ = ca.Close()
		_ = cb.Close()
		assertNoLeaks(t)
	})
	return ca, cb, cond
}

// deliver sends through send until want arrives on tr, failing after
// the deadline.
func deliver(t *testing.T, tr *Conditioned, want uint64, send func()) {
	t.Helper()
	deadline := time.After(5 * time.Second)
	tick := time.NewTicker(20 * time.Millisecond)
	defer tick.Stop()
	for {
		send()
		select {
		case env, ok := <-tr.Inbox():
			if !ok {
				t.Fatal("inbox closed while waiting")
			}
			if q, isQ := env.Msg.(types.QueryMsg); isQ && q.Height == want {
				return
			}
		case <-tick.C:
		case <-deadline:
			t.Fatalf("message %d never delivered", want)
		}
	}
}

// mustStaySilent asserts no message numbered want (or later) arrives
// on tr while send keeps offering it — the drop-side assertion for
// partitions and crashes.
func mustStaySilent(t *testing.T, tr *Conditioned, floor uint64, send func()) {
	t.Helper()
	deadline := time.After(200 * time.Millisecond)
	for {
		send()
		select {
		case env, ok := <-tr.Inbox():
			if !ok {
				t.Fatal("inbox closed")
			}
			if q, isQ := env.Msg.(types.QueryMsg); isQ && q.Height >= floor {
				t.Fatalf("message %d delivered through an active fault", q.Height)
			}
		case <-deadline:
			return
		case <-time.After(10 * time.Millisecond):
		}
	}
}

// TestConditionedPartitionMatchesSwitchSemantics: a partition must cut
// cross-group traffic over TCP exactly as the switch cuts it, and heal
// must restore it.
func TestConditionedPartitionMatchesSwitchSemantics(t *testing.T) {
	ca, cb, cond := newConditionedPair(t)

	deliver(t, cb, 1, func() { ca.Send(2, types.QueryMsg{Height: 1}) })

	cond.Partition(map[types.NodeID]int{1: 1})
	mustStaySilent(t, cb, 2, func() { ca.Send(2, types.QueryMsg{Height: 2}) })

	cond.Heal()
	deliver(t, cb, 3, func() { ca.Send(2, types.QueryMsg{Height: 3}) })
}

// TestConditionedCrashSilencesBothDirections: a crashed node neither
// sends nor receives — including messages arriving over sockets that
// are still open — and a restart brings it back.
func TestConditionedCrashSilencesBothDirections(t *testing.T) {
	ca, cb, cond := newConditionedPair(t)

	deliver(t, cb, 1, func() { ca.Send(2, types.QueryMsg{Height: 1}) })

	cond.Crash(2)
	// Inbound to the crashed node dies at its receive filter.
	mustStaySilent(t, cb, 2, func() { ca.Send(2, types.QueryMsg{Height: 2}) })
	// Outbound from the crashed node dies at its send judge.
	mustStaySilent(t, ca, 2, func() { cb.Send(1, types.QueryMsg{Height: 2}) })

	cond.Restart(2)
	deliver(t, cb, 3, func() { ca.Send(2, types.QueryMsg{Height: 3}) })
	deliver(t, ca, 4, func() { cb.Send(1, types.QueryMsg{Height: 4}) })
}

// TestConditionedDelayApplies: a per-node extra delay must hold
// messages back about as long as declared, like the switch scheduler
// does.
func TestConditionedDelayApplies(t *testing.T) {
	ca, cb, cond := newConditionedPair(t)

	// Warm the connection so dial time does not pollute the sample.
	deliver(t, cb, 1, func() { ca.Send(2, types.QueryMsg{Height: 1}) })

	cond.SetNodeDelay(1, 80*time.Millisecond, 0)
	start := time.Now()
	ca.Send(2, types.QueryMsg{Height: 2})
	select {
	case env := <-cb.Inbox():
		elapsed := time.Since(start)
		if q, isQ := env.Msg.(types.QueryMsg); !isQ || q.Height != 2 {
			t.Fatalf("unexpected message %+v", env.Msg)
		}
		if elapsed < 60*time.Millisecond {
			t.Fatalf("declared 80ms delay, message arrived after %v", elapsed)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("delayed message never arrived")
	}

	// Broadcast goes through the same judge.
	cond.SetNodeDelay(1, 0, 0)
	deliver(t, cb, 5, func() { ca.Broadcast(types.QueryMsg{Height: 5}) })
}

package network

import (
	"testing"
	"time"

	"github.com/bamboo-bft/bamboo/internal/types"
)

// judge-level unit tests: the verdict logic independent of delivery.

func TestJudgeCrashDropsBothDirections(t *testing.T) {
	c := NewConditions(1)
	c.Crash(2)
	if v := c.judge(1, 2, 10, time.Now()); !v.drop {
		t.Fatal("message to crashed node survived")
	}
	if v := c.judge(2, 1, 10, time.Now()); !v.drop {
		t.Fatal("message from crashed node survived")
	}
	c.Restart(2)
	if v := c.judge(1, 2, 10, time.Now()); v.drop {
		t.Fatal("message dropped after restart")
	}
	if !c.IsCrashed(3) == false && c.IsCrashed(3) {
		t.Fatal("uncrashed node reported crashed")
	}
}

func TestJudgePartitionGroups(t *testing.T) {
	c := NewConditions(1)
	c.Partition(map[types.NodeID]int{1: 0, 2: 1, 3: 1})
	if v := c.judge(1, 2, 10, time.Now()); !v.drop {
		t.Fatal("cross-partition message survived")
	}
	if v := c.judge(2, 3, 10, time.Now()); v.drop {
		t.Fatal("same-partition message dropped")
	}
	// Unlisted nodes default to group 0.
	if v := c.judge(1, 4, 10, time.Now()); v.drop {
		t.Fatal("default-group message dropped")
	}
	c.Heal()
	if v := c.judge(1, 2, 10, time.Now()); v.drop {
		t.Fatal("message dropped after heal")
	}
}

func TestJudgeFluctuationWindowBoundaries(t *testing.T) {
	c := NewConditions(1)
	start := time.Now().Add(time.Hour)
	c.Fluctuate(start, time.Minute, 40*time.Millisecond, 50*time.Millisecond)
	// Before the window: base delay (zero here).
	if v := c.judge(1, 2, 10, start.Add(-time.Second)); v.delay != 0 {
		t.Fatalf("delay before window: %v", v.delay)
	}
	// Inside: within [min, max).
	v := c.judge(1, 2, 10, start.Add(30*time.Second))
	if v.delay < 40*time.Millisecond || v.delay >= 50*time.Millisecond {
		t.Fatalf("fluctuation delay %v outside [40ms, 50ms)", v.delay)
	}
	// Exactly at the end: back to base.
	if v := c.judge(1, 2, 10, start.Add(time.Minute)); v.delay != 0 {
		t.Fatalf("delay after window: %v", v.delay)
	}
	// Degenerate min==max window.
	c.Fluctuate(start, time.Minute, 10*time.Millisecond, 10*time.Millisecond)
	if v := c.judge(1, 2, 10, start.Add(time.Second)); v.delay != 10*time.Millisecond {
		t.Fatalf("fixed fluctuation delay %v", v.delay)
	}
}

func TestJudgeBandwidthCharge(t *testing.T) {
	c := NewConditions(1)
	c.SetBandwidth(1 << 20) // 1 MiB/s
	v := c.judge(1, 2, 1<<19, time.Now())
	// 2·(512 KiB)/(1 MiB/s) = 1 s.
	if v.delay < 990*time.Millisecond || v.delay > 1010*time.Millisecond {
		t.Fatalf("bandwidth charge %v, want ≈1s", v.delay)
	}
	// Zero-size messages cost nothing.
	if v := c.judge(1, 2, 0, time.Now()); v.delay != 0 {
		t.Fatalf("zero-size charge %v", v.delay)
	}
}

func TestJudgePerNodeDelayAddsToBase(t *testing.T) {
	c := NewConditions(1)
	c.SetBaseDelay(5*time.Millisecond, 0)
	c.SetNodeDelay(1, 7*time.Millisecond, 0)
	if v := c.judge(1, 2, 10, time.Now()); v.delay != 12*time.Millisecond {
		t.Fatalf("combined delay %v, want 12ms", v.delay)
	}
	// Only the sender's slow setting applies.
	if v := c.judge(2, 1, 10, time.Now()); v.delay != 5*time.Millisecond {
		t.Fatalf("receiver-side delay applied: %v", v.delay)
	}
}

func TestSetDropRateClamped(t *testing.T) {
	c := NewConditions(1)
	c.SetDropRate(2.0)
	if v := c.judge(1, 2, 10, time.Now()); !v.drop {
		t.Fatal("clamped drop rate 1.0 did not drop")
	}
	c.SetDropRate(-1)
	if v := c.judge(1, 2, 10, time.Now()); v.drop {
		t.Fatal("clamped drop rate 0.0 dropped")
	}
}

package network

import (
	"encoding/json"
	"testing"
	"time"

	"github.com/bamboo-bft/bamboo/internal/types"
)

func rate(p float64) *float64 { return &p }

// TestSpecApplyMatchesDirectCalls: applying a spec must be
// indistinguishable from the equivalent direct Conditions calls, judged
// by message fate.
func TestSpecApplyMatchesDirectCalls(t *testing.T) {
	cond := NewConditions(1)
	spec := ConditionsSpec{
		Partition: map[types.NodeID]int{1: 1},
		Delays:    []NodeDelaySpec{{Node: 2, Mean: 5 * time.Millisecond}},
		Crash:     []types.NodeID{3},
	}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	spec.Apply(cond, time.Now())

	now := time.Now()
	if v := cond.judge(1, 2, 0, now); !v.drop {
		t.Fatal("partitioned node 1 should not reach node 2")
	}
	if v := cond.judge(2, 4, 0, now); v.drop || v.delay < 5*time.Millisecond {
		t.Fatalf("node 2 should send with extra delay, got %+v", v)
	}
	if !cond.IsCrashed(3) {
		t.Fatal("crash mark not applied")
	}

	// Heal + restart + clearing the delay restores full connectivity.
	heal := ConditionsSpec{
		Heal:    true,
		Delays:  []NodeDelaySpec{{Node: 2}},
		Restart: []types.NodeID{3},
	}
	heal.Apply(cond, time.Now())
	if v := cond.judge(1, 2, 0, time.Now()); v.drop {
		t.Fatal("heal did not restore connectivity")
	}
	if v := cond.judge(2, 4, 0, time.Now()); v.delay != 0 {
		t.Fatalf("delay not cleared: %+v", v)
	}
	if cond.IsCrashed(3) {
		t.Fatal("restart did not lift the crash mark")
	}
}

// TestSpecValidate rejects the malformed corners an admin endpoint
// must never apply half of.
func TestSpecValidate(t *testing.T) {
	bad := []ConditionsSpec{
		{DropRate: rate(1.5)},
		{DropRate: rate(-0.1)},
		{Fluctuate: &FluctuateSpec{Dur: 0, Min: 0, Max: time.Millisecond}},
		{Fluctuate: &FluctuateSpec{Dur: time.Second, Min: time.Second, Max: 0}},
		{Delays: []NodeDelaySpec{{Node: 0, Mean: time.Millisecond}}},
		{Delays: []NodeDelaySpec{{Node: 1, Mean: -time.Millisecond}}},
	}
	for i, spec := range bad {
		if err := spec.Validate(); err == nil {
			t.Errorf("spec %d accepted: %+v", i, spec)
		}
	}
	good := ConditionsSpec{
		Heal:      true,
		DropRate:  rate(0.25),
		Fluctuate: &FluctuateSpec{Dur: time.Second, Min: time.Millisecond, Max: 2 * time.Millisecond},
	}
	if err := good.Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
}

// TestSpecJSONRoundTrip: the spec is the admin endpoint's wire body;
// it must survive JSON unchanged, including integer map keys.
func TestSpecJSONRoundTrip(t *testing.T) {
	in := ConditionsSpec{
		Partition: map[types.NodeID]int{1: 1, 2: 2},
		Delays:    []NodeDelaySpec{{Node: 3, Mean: time.Millisecond, Std: 100 * time.Microsecond}},
		DropRate:  rate(0.1),
		Fluctuate: &FluctuateSpec{Dur: time.Second, Min: time.Millisecond, Max: 5 * time.Millisecond},
		Crash:     []types.NodeID{4},
	}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out ConditionsSpec
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.Partition[1] != 1 || out.Partition[2] != 2 || len(out.Delays) != 1 ||
		out.Delays[0] != in.Delays[0] || *out.DropRate != 0.1 ||
		*out.Fluctuate != *in.Fluctuate || len(out.Crash) != 1 || out.Crash[0] != 4 {
		t.Fatalf("round trip mangled the spec: %+v", out)
	}
}

// TestSpecMergeAccumulatesSteadyState: a supervisor replays the merged
// spec to a rebooted replica; it must reflect exactly the conditions a
// schedule has driven the deployment into.
func TestSpecMergeAccumulatesSteadyState(t *testing.T) {
	var acc ConditionsSpec
	acc.Merge(ConditionsSpec{Partition: map[types.NodeID]int{1: 1}})
	acc.Merge(ConditionsSpec{DropRate: rate(0.2)})
	acc.Merge(ConditionsSpec{Delays: []NodeDelaySpec{{Node: 2, Mean: time.Millisecond}}})
	acc.Merge(ConditionsSpec{Crash: []types.NodeID{3}})

	if acc.Partition[1] != 1 || *acc.DropRate != 0.2 ||
		len(acc.Delays) != 1 || len(acc.Crash) != 1 {
		t.Fatalf("accumulated state wrong: %+v", acc)
	}

	// Heal wipes the partition; restart lifts the crash; zero delay
	// clears the node's entry; zero rate clears the drop.
	acc.Merge(ConditionsSpec{Heal: true, Restart: []types.NodeID{3}})
	acc.Merge(ConditionsSpec{Delays: []NodeDelaySpec{{Node: 2}}, DropRate: rate(0)})
	if !acc.Empty() {
		t.Fatalf("steady state should be empty after undoing everything: %+v", acc)
	}

	// Fluctuation windows are wall-clock anchored and must not be
	// replayed to a rebooted replica.
	acc.Merge(ConditionsSpec{Fluctuate: &FluctuateSpec{Dur: time.Second, Max: time.Millisecond}})
	if acc.Fluctuate != nil {
		t.Fatal("fluctuation window leaked into the steady state")
	}
}

package network

import (
	"bytes"
	"testing"
	"time"

	"github.com/bamboo-bft/bamboo/internal/codec"
	"github.com/bamboo-bft/bamboo/internal/types"
)

// wireFixtures returns one representative value per registered wire
// tag. The switch charges bandwidth for these via messageSize; the TCP
// transport counts the bytes its encoder actually frames. The sizing
// tests pin the two to each other.
func wireFixtures() []any {
	qc := &types.QC{
		View:    7,
		BlockID: types.Hash{0xAA},
		Signers: []types.NodeID{1, 2, 3},
		Sigs:    [][]byte{{1}, {2, 2}, {3, 3, 3}},
	}
	block := &types.Block{
		View:     8,
		Proposer: 2,
		Parent:   types.Hash{0xBB},
		QC:       qc,
		Payload: []types.Transaction{
			{ID: types.TxID{Client: 4, Seq: 1}, Command: []byte("set x 1"), SubmitUnixNano: 99},
		},
		Digest: types.Hash{0xCC},
		Sig:    []byte{9, 9},
	}
	return []any{
		types.ProposalMsg{Block: block, TC: &types.TC{View: 6, Signers: []types.NodeID{1, 2}, Sigs: [][]byte{{1}, {2}}, HighQC: qc}, PayloadIDs: []types.TxID{{Client: 4, Seq: 1}}},
		types.VoteMsg{Vote: &types.Vote{View: 8, BlockID: types.Hash{0xDD}, Voter: 3, Sig: []byte{5}}},
		types.TimeoutMsg{Timeout: &types.Timeout{View: 8, Voter: 1, HighQC: qc, Sig: []byte{6}}},
		types.TCMsg{TC: &types.TC{View: 8, Signers: []types.NodeID{1, 2, 3}, Sigs: [][]byte{{1}, {2}, {3}}, HighQC: qc}},
		types.FetchMsg{BlockID: types.Hash{0xEE}},
		types.SyncRequestMsg{From: 10, To: 20},
		types.SyncResponseMsg{From: 10, Blocks: []*types.Block{block}, Head: 12, Floor: 3},
		types.SnapshotRequestMsg{Height: 100, Chunk: 2},
		types.SnapshotManifestMsg{Height: 100, Block: block, QC: qc, StateDigest: types.Hash{0x11}, TotalSize: 4096, ChunkSize: 1024, ChunkDigests: []types.Hash{{0x21}, {0x22}}},
		types.SnapshotChunkMsg{Height: 100, Chunk: 2, Data: []byte("chunk-bytes")},
		types.RequestMsg{Tx: types.Transaction{ID: types.TxID{Client: 5, Seq: 2}, Command: []byte("get y"), SubmitUnixNano: 123}},
		types.PayloadBatchMsg{Txs: []types.Transaction{{ID: types.TxID{Client: 5, Seq: 3}, Command: []byte("set z 2"), SubmitUnixNano: 124}}},
		types.ReplyMsg{TxID: types.TxID{Client: 5, Seq: 2}, View: 8, BlockID: types.Hash{0xFF}, Rejected: false},
		types.QueryMsg{Height: 12},
		types.QueryReplyMsg{CommittedHeight: 12, CommittedView: 8, BlockHash: types.Hash{0x31}},
		types.SlowMsg{DelayMeanNanos: 1000, DelayStdNanos: 100},
	}
}

// TestMessageSizeMatchesWire: the size the switch charges for every
// registered message type equals the frame the TCP transport puts on
// the wire, byte for byte. Estimator drift between the two backends is
// impossible by construction — both read codec.EncodedSize — but this
// pins EncodedSize itself to the encoder's actual output, through the
// switch's entry point.
func TestMessageSizeMatchesWire(t *testing.T) {
	seen := make(map[types.WireTag]bool)
	for _, msg := range wireFixtures() {
		tag, ok := types.WireTagOf(msg)
		if !ok {
			t.Fatalf("%T not in wire registry", msg)
		}
		if seen[tag] {
			t.Fatalf("duplicate fixture for tag %d", tag)
		}
		seen[tag] = true

		charged := messageSize(msg)
		exact, ok := codec.EncodedSize(msg)
		if !ok {
			t.Fatalf("%T has no codec size", msg)
		}
		if charged != exact {
			t.Fatalf("%T: switch charges %d, codec sizes %d", msg, charged, exact)
		}
		var buf bytes.Buffer
		enc := codec.NewEncoder(&buf)
		n, err := enc.Encode(codec.Envelope{From: 1, Msg: msg})
		if err != nil {
			t.Fatalf("%T: %v", msg, err)
		}
		if err := enc.Flush(); err != nil {
			t.Fatal(err)
		}
		if n != charged || buf.Len() != charged {
			t.Fatalf("%T: charged %d, framed %d (reported %d)", msg, charged, buf.Len(), n)
		}
	}
	for tag := types.WireTag(1); tag <= types.TagSlow; tag++ {
		if !seen[tag] {
			t.Fatalf("no sizing fixture for tag %d — new message types must be added here", tag)
		}
	}
}

// TestSwitchChargesExactWireBytes: the in-process switch's byte
// counter, after delivering one of each registered message, equals the
// sum of the frames TCP would have written for the same traffic.
func TestSwitchChargesExactWireBytes(t *testing.T) {
	sw := NewSwitch(nil)
	defer sw.Close()
	a, err := sw.Join(1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sw.Join(2)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = a.Close() }()
	defer func() { _ = b.Close() }()

	fixtures := wireFixtures()
	var want uint64
	for _, msg := range fixtures {
		n, ok := codec.EncodedSize(msg)
		if !ok {
			t.Fatalf("%T has no codec size", msg)
		}
		want += uint64(n)
		a.Send(2, msg)
	}
	for range fixtures {
		select {
		case <-b.Inbox():
		case <-time.After(5 * time.Second):
			t.Fatal("switch delivery stalled")
		}
	}
	if _, gotBytes, _ := sw.Stats(); gotBytes != want {
		t.Fatalf("switch charged %d bytes, wire frames total %d", gotBytes, want)
	}
}

package network

import (
	"bytes"
	"encoding/binary"
	"net"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/bamboo-bft/bamboo/internal/codec"
	"github.com/bamboo-bft/bamboo/internal/types"
)

// newTCPPair stands up two wired transports on loopback ephemeral
// ports.
func newTCPPair(t *testing.T) (*TCP, *TCP) {
	t.Helper()
	a, err := NewTCP(1, map[types.NodeID]string{1: "127.0.0.1:0", 2: ""})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewTCP(2, map[types.NodeID]string{1: "", 2: "127.0.0.1:0"})
	if err != nil {
		_ = a.Close()
		t.Fatal(err)
	}
	a.SetPeerAddr(2, b.Addr())
	b.SetPeerAddr(1, a.Addr())
	return a, b
}

// recvQuery waits for one QueryMsg with the wanted height, resending
// via send until it arrives — TCP sends are datagrams here (a send
// racing a dead connection is dropped), so tests must offer the
// message until the transport has reconnected.
func recvQuery(t *testing.T, tr *TCP, want uint64, send func()) Envelope {
	t.Helper()
	deadline := time.After(5 * time.Second)
	tick := time.NewTicker(20 * time.Millisecond)
	defer tick.Stop()
	for {
		send()
		select {
		case env, ok := <-tr.Inbox():
			if !ok {
				t.Fatal("inbox closed while waiting")
			}
			if q, isQ := env.Msg.(types.QueryMsg); isQ && q.Height == want {
				return env
			}
		case <-tick.C:
		case <-deadline:
			t.Fatalf("message %d never delivered", want)
		}
	}
}

// goroutineLeaks lists stacks of still-running network goroutines
// (accept/read/write loops, conditioned pumps) after polling for up to
// two seconds — the goleak-style accounting the Stop/Close tests rely
// on.
func goroutineLeaks(t *testing.T) []string {
	t.Helper()
	markers := []string{
		"network.(*TCP).acceptLoop",
		"network.(*TCP).readLoop",
		"network.(*TCP).writeLoop",
		"network.(*Conditioned).pump",
	}
	deadline := time.Now().Add(2 * time.Second)
	var leaked []string
	for {
		leaked = leaked[:0]
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		for _, stack := range strings.Split(string(buf[:n]), "\n\n") {
			for _, m := range markers {
				if strings.Contains(stack, m) {
					leaked = append(leaked, stack)
					break
				}
			}
		}
		if len(leaked) == 0 || time.Now().After(deadline) {
			return leaked
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func assertNoLeaks(t *testing.T) {
	t.Helper()
	if leaks := goroutineLeaks(t); len(leaks) > 0 {
		t.Fatalf("%d network goroutines leaked; first:\n%s", len(leaks), leaks[0])
	}
}

// TestTCPReconnectAfterPeerRestart: a peer that dies and comes back on
// the same address must start receiving again without any help — the
// sender's writer re-dials lazily.
func TestTCPReconnectAfterPeerRestart(t *testing.T) {
	a, b := newTCPPair(t)
	defer func() { _ = a.Close() }()

	recvQuery(t, b, 1, func() { a.Send(2, types.QueryMsg{Height: 1}) })

	// Kill B and bring it back on the same address.
	addr := b.Addr()
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	b2, err := NewTCP(2, map[types.NodeID]string{1: "", 2: addr})
	if err != nil {
		t.Fatalf("rebind %s: %v", addr, err)
	}
	defer func() { _ = b2.Close() }()
	b2.SetPeerAddr(1, a.Addr())

	recvQuery(t, b2, 2, func() { a.Send(2, types.QueryMsg{Height: 2}) })
	if s := a.Stats(); s.Redials == 0 {
		t.Fatalf("restart must show up as a redial, stats %+v", s)
	}
}

// TestTCPResetPeerConnsReconnects: ResetPeerConns (the crash
// teardown) must sever every live connection both ways, and traffic
// must resume over fresh connections afterwards.
func TestTCPResetPeerConnsReconnects(t *testing.T) {
	a, b := newTCPPair(t)
	defer func() { _ = a.Close() }()
	defer func() { _ = b.Close() }()

	recvQuery(t, b, 1, func() { a.Send(2, types.QueryMsg{Height: 1}) })
	recvQuery(t, a, 2, func() { b.Send(1, types.QueryMsg{Height: 2}) })

	b.ResetPeerConns()

	recvQuery(t, b, 3, func() { a.Send(2, types.QueryMsg{Height: 3}) })
	recvQuery(t, a, 4, func() { b.Send(1, types.QueryMsg{Height: 4}) })
	redials := a.Stats().Redials + b.Stats().Redials
	if redials == 0 {
		t.Fatal("reset must force at least one redial")
	}
}

// TestTCPConcurrentCloseSendRace: hammering Send and Broadcast from
// many goroutines while Close runs must neither panic, nor race, nor
// deadlock — the -race CI job is the real assertion here.
func TestTCPConcurrentCloseSendRace(t *testing.T) {
	a, b := newTCPPair(t)

	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			for i := 0; i < 500; i++ {
				if g%2 == 0 {
					a.Send(2, types.QueryMsg{Height: uint64(i)})
				} else {
					a.Broadcast(types.QueryMsg{Height: uint64(i)})
				}
			}
		}(g)
	}
	closed := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		time.Sleep(time.Millisecond)
		closed <- a.Close()
	}()
	close(start)
	wg.Wait()
	if err := <-closed; err != nil {
		t.Logf("close error (listener): %v", err)
	}
	// A second Close must be a no-op.
	_ = a.Close()
	_ = b.Close()
	assertNoLeaks(t)
}

// TestTCPOversizedMessageDropped: a message over the frame cap must
// die at the sender without wedging the link — and because the codec
// detects the oversize before staging a byte, the connection itself
// survives: later messages arrive with no redial.
func TestTCPOversizedMessageDropped(t *testing.T) {
	a, b := newTCPPair(t)
	defer func() { _ = a.Close() }()
	defer func() { _ = b.Close() }()

	recvQuery(t, b, 1, func() { a.Send(2, types.QueryMsg{Height: 1}) })
	dropsBefore := a.Stats().Dropped

	huge := types.RequestMsg{Tx: types.Transaction{
		ID:      types.TxID{Client: 9, Seq: 9},
		Command: make([]byte, 17<<20), // over codec.MaxFrame
	}}
	a.Send(2, huge)

	recvQuery(t, b, 2, func() { a.Send(2, types.QueryMsg{Height: 2}) })
	drainDeadline := time.After(100 * time.Millisecond)
	for {
		select {
		case got := <-b.Inbox():
			if _, isReq := got.Msg.(types.RequestMsg); isReq {
				t.Fatal("oversized message must never be delivered")
			}
		case <-drainDeadline:
			stats := a.Stats()
			if stats.Dropped <= dropsBefore {
				t.Fatalf("oversized message not counted dropped: %+v", stats)
			}
			// One message lost, zero connections: the frame cap no
			// longer poisons the stream, so no re-dial happened.
			if stats.Redials != 0 {
				t.Fatalf("oversized message cost the connection: %d redials", stats.Redials)
			}
			if stats.Dials != 1 {
				t.Fatalf("expected the original dial only, got %d", stats.Dials)
			}
			return
		}
	}
}

// TestTCPMalformedFrameDropsMessageNotConn: hostile bytes on an
// inbound connection cost one frame, counted in TransportStats — a
// healthy frame on the SAME connection still delivers. This is the
// receive-side half of the drop-a-message-not-the-connection
// guarantee (the gob design had to discard the conn).
func TestTCPMalformedFrameDropsMessageNotConn(t *testing.T) {
	b, err := NewTCP(2, map[types.NodeID]string{2: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = b.Close() }()

	conn, err := net.Dial("tcp", b.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()

	// Frame 1: well-framed garbage (unknown tag). Frame 2: truncated
	// vote body. Frame 3: a healthy query — same connection.
	var raw bytes.Buffer
	junk := []byte{types.WireVersion, 0xEE, 1, 0, 0, 0, 42}
	raw.Write(binary.LittleEndian.AppendUint32(nil, uint32(len(junk))))
	raw.Write(junk)
	bad := []byte{types.WireVersion, byte(types.TagVote), 1, 0, 0, 0, 1, 9}
	raw.Write(binary.LittleEndian.AppendUint32(nil, uint32(len(bad))))
	raw.Write(bad)
	enc := codec.NewEncoder(&raw)
	if _, err := enc.Encode(codec.Envelope{From: 1, Msg: types.QueryMsg{Height: 77}}); err != nil {
		t.Fatal(err)
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(raw.Bytes()); err != nil {
		t.Fatal(err)
	}

	select {
	case env := <-b.Inbox():
		q, ok := env.Msg.(types.QueryMsg)
		if !ok || q.Height != 77 || env.From != 1 {
			t.Fatalf("healthy frame mangled: %+v", env)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("healthy frame after malformed frames never delivered")
	}
	if drops := b.Stats().Dropped; drops != 2 {
		t.Fatalf("want 2 dropped frames counted, got %d", drops)
	}
}

// TestTCPWriteCoalescing: a burst queued behind a blocked writer is
// drained through one encoder flush — every message arrives, exact
// framed bytes are counted, and the per-message accounting matches
// the codec's sizes.
func TestTCPWriteCoalescing(t *testing.T) {
	a, b := newTCPPair(t)
	defer func() { _ = a.Close() }()
	defer func() { _ = b.Close() }()

	// Establish the connection first so the burst rides one stream.
	recvQuery(t, b, 1, func() { a.Send(2, types.QueryMsg{Height: 1}) })
	base := a.Stats()

	const burst = 200
	var wantBytes uint64
	for i := 0; i < burst; i++ {
		msg := types.VoteMsg{Vote: &types.Vote{View: types.View(i), BlockID: types.Hash{1}, Voter: 1, Sig: []byte{1, 2, 3, 4}}}
		n, ok := codec.EncodedSize(msg)
		if !ok {
			t.Fatal("vote not sized")
		}
		wantBytes += uint64(n)
		a.Send(2, msg)
	}
	got := 0
	deadline := time.After(5 * time.Second)
	for got < burst {
		select {
		case env, ok := <-b.Inbox():
			if !ok {
				t.Fatal("inbox closed mid-burst")
			}
			if _, isVote := env.Msg.(types.VoteMsg); isVote {
				got++
			}
		case <-deadline:
			t.Fatalf("only %d/%d burst messages arrived", got, burst)
		}
	}
	stats := a.Stats()
	if stats.Msgs-base.Msgs != burst {
		t.Fatalf("sent-message count off: %d", stats.Msgs-base.Msgs)
	}
	if stats.Bytes-base.Bytes != wantBytes {
		t.Fatalf("framed bytes %d, codec sizes sum to %d", stats.Bytes-base.Bytes, wantBytes)
	}
	if stats.Dials != 1 || stats.Redials != 0 {
		t.Fatalf("burst should ride one connection: %+v", stats)
	}
}

// TestTCPCloseReleasesGoroutines: after Close, no accept/read/write
// goroutine may linger and no dial retry may keep spinning, even with
// a peer that was never reachable.
func TestTCPCloseReleasesGoroutines(t *testing.T) {
	a, b := newTCPPair(t)
	// Peer 3 is a black hole: known address, nothing listening — the
	// writer's dial-retry path stays warm until Close.
	a.SetPeerAddr(3, "127.0.0.1:1")
	t.Cleanup(func() { assertNoLeaks(t) })

	for i := 0; i < 50; i++ {
		a.Send(2, types.QueryMsg{Height: uint64(i)})
		a.Send(3, types.QueryMsg{Height: uint64(i)})
		b.Send(1, types.QueryMsg{Height: uint64(i)})
	}
	if err := a.Close(); err != nil {
		t.Logf("close: %v", err)
	}
	if err := b.Close(); err != nil {
		t.Logf("close: %v", err)
	}
	// Inboxes must be closed so consumers see end-of-stream.
	if _, ok := <-a.Inbox(); ok {
		// Drain: buffered messages may precede the close.
		for range a.Inbox() {
		}
	}
}

package network

import (
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/bamboo-bft/bamboo/internal/types"
)

// newTCPPair stands up two wired transports on loopback ephemeral
// ports.
func newTCPPair(t *testing.T) (*TCP, *TCP) {
	t.Helper()
	a, err := NewTCP(1, map[types.NodeID]string{1: "127.0.0.1:0", 2: ""})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewTCP(2, map[types.NodeID]string{1: "", 2: "127.0.0.1:0"})
	if err != nil {
		_ = a.Close()
		t.Fatal(err)
	}
	a.SetPeerAddr(2, b.Addr())
	b.SetPeerAddr(1, a.Addr())
	return a, b
}

// recvQuery waits for one QueryMsg with the wanted height, resending
// via send until it arrives — TCP sends are datagrams here (a send
// racing a dead connection is dropped), so tests must offer the
// message until the transport has reconnected.
func recvQuery(t *testing.T, tr *TCP, want uint64, send func()) Envelope {
	t.Helper()
	deadline := time.After(5 * time.Second)
	tick := time.NewTicker(20 * time.Millisecond)
	defer tick.Stop()
	for {
		send()
		select {
		case env, ok := <-tr.Inbox():
			if !ok {
				t.Fatal("inbox closed while waiting")
			}
			if q, isQ := env.Msg.(types.QueryMsg); isQ && q.Height == want {
				return env
			}
		case <-tick.C:
		case <-deadline:
			t.Fatalf("message %d never delivered", want)
		}
	}
}

// goroutineLeaks lists stacks of still-running network goroutines
// (accept/read/write loops, conditioned pumps) after polling for up to
// two seconds — the goleak-style accounting the Stop/Close tests rely
// on.
func goroutineLeaks(t *testing.T) []string {
	t.Helper()
	markers := []string{
		"network.(*TCP).acceptLoop",
		"network.(*TCP).readLoop",
		"network.(*TCP).writeLoop",
		"network.(*Conditioned).pump",
	}
	deadline := time.Now().Add(2 * time.Second)
	var leaked []string
	for {
		leaked = leaked[:0]
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		for _, stack := range strings.Split(string(buf[:n]), "\n\n") {
			for _, m := range markers {
				if strings.Contains(stack, m) {
					leaked = append(leaked, stack)
					break
				}
			}
		}
		if len(leaked) == 0 || time.Now().After(deadline) {
			return leaked
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func assertNoLeaks(t *testing.T) {
	t.Helper()
	if leaks := goroutineLeaks(t); len(leaks) > 0 {
		t.Fatalf("%d network goroutines leaked; first:\n%s", len(leaks), leaks[0])
	}
}

// TestTCPReconnectAfterPeerRestart: a peer that dies and comes back on
// the same address must start receiving again without any help — the
// sender's writer re-dials lazily.
func TestTCPReconnectAfterPeerRestart(t *testing.T) {
	a, b := newTCPPair(t)
	defer func() { _ = a.Close() }()

	recvQuery(t, b, 1, func() { a.Send(2, types.QueryMsg{Height: 1}) })

	// Kill B and bring it back on the same address.
	addr := b.Addr()
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	b2, err := NewTCP(2, map[types.NodeID]string{1: "", 2: addr})
	if err != nil {
		t.Fatalf("rebind %s: %v", addr, err)
	}
	defer func() { _ = b2.Close() }()
	b2.SetPeerAddr(1, a.Addr())

	recvQuery(t, b2, 2, func() { a.Send(2, types.QueryMsg{Height: 2}) })
	if s := a.Stats(); s.Redials == 0 {
		t.Fatalf("restart must show up as a redial, stats %+v", s)
	}
}

// TestTCPResetPeerConnsReconnects: ResetPeerConns (the crash
// teardown) must sever every live connection both ways, and traffic
// must resume over fresh connections afterwards.
func TestTCPResetPeerConnsReconnects(t *testing.T) {
	a, b := newTCPPair(t)
	defer func() { _ = a.Close() }()
	defer func() { _ = b.Close() }()

	recvQuery(t, b, 1, func() { a.Send(2, types.QueryMsg{Height: 1}) })
	recvQuery(t, a, 2, func() { b.Send(1, types.QueryMsg{Height: 2}) })

	b.ResetPeerConns()

	recvQuery(t, b, 3, func() { a.Send(2, types.QueryMsg{Height: 3}) })
	recvQuery(t, a, 4, func() { b.Send(1, types.QueryMsg{Height: 4}) })
	redials := a.Stats().Redials + b.Stats().Redials
	if redials == 0 {
		t.Fatal("reset must force at least one redial")
	}
}

// TestTCPConcurrentCloseSendRace: hammering Send and Broadcast from
// many goroutines while Close runs must neither panic, nor race, nor
// deadlock — the -race CI job is the real assertion here.
func TestTCPConcurrentCloseSendRace(t *testing.T) {
	a, b := newTCPPair(t)

	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			for i := 0; i < 500; i++ {
				if g%2 == 0 {
					a.Send(2, types.QueryMsg{Height: uint64(i)})
				} else {
					a.Broadcast(types.QueryMsg{Height: uint64(i)})
				}
			}
		}(g)
	}
	closed := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		time.Sleep(time.Millisecond)
		closed <- a.Close()
	}()
	close(start)
	wg.Wait()
	if err := <-closed; err != nil {
		t.Logf("close error (listener): %v", err)
	}
	// A second Close must be a no-op.
	_ = a.Close()
	_ = b.Close()
	assertNoLeaks(t)
}

// TestTCPOversizedMessageDropped: a message over the frame cap must
// die at the sender without wedging the link — later messages still
// arrive (over a fresh connection, since an oversized encode poisons
// the gob stream).
func TestTCPOversizedMessageDropped(t *testing.T) {
	a, b := newTCPPair(t)
	defer func() { _ = a.Close() }()
	defer func() { _ = b.Close() }()

	recvQuery(t, b, 1, func() { a.Send(2, types.QueryMsg{Height: 1}) })

	huge := types.RequestMsg{Tx: types.Transaction{
		ID:      types.TxID{Client: 9, Seq: 9},
		Command: make([]byte, 17<<20), // over codec.MaxFrame
	}}
	a.Send(2, huge)

	recvQuery(t, b, 2, func() { a.Send(2, types.QueryMsg{Height: 2}) })
	drainDeadline := time.After(100 * time.Millisecond)
	for {
		select {
		case got := <-b.Inbox():
			if _, isReq := got.Msg.(types.RequestMsg); isReq {
				t.Fatal("oversized message must never be delivered")
			}
		case <-drainDeadline:
			return
		}
	}
}

// TestTCPCloseReleasesGoroutines: after Close, no accept/read/write
// goroutine may linger and no dial retry may keep spinning, even with
// a peer that was never reachable.
func TestTCPCloseReleasesGoroutines(t *testing.T) {
	a, b := newTCPPair(t)
	// Peer 3 is a black hole: known address, nothing listening — the
	// writer's dial-retry path stays warm until Close.
	a.SetPeerAddr(3, "127.0.0.1:1")
	t.Cleanup(func() { assertNoLeaks(t) })

	for i := 0; i < 50; i++ {
		a.Send(2, types.QueryMsg{Height: uint64(i)})
		a.Send(3, types.QueryMsg{Height: uint64(i)})
		b.Send(1, types.QueryMsg{Height: uint64(i)})
	}
	if err := a.Close(); err != nil {
		t.Logf("close: %v", err)
	}
	if err := b.Close(); err != nil {
		t.Logf("close: %v", err)
	}
	// Inboxes must be closed so consumers see end-of-stream.
	if _, ok := <-a.Inbox(); ok {
		// Drain: buffered messages may precede the close.
		for range a.Inbox() {
		}
	}
}

package network

import (
	"testing"
	"time"

	"github.com/bamboo-bft/bamboo/internal/types"
)

func join(t *testing.T, s *Switch, id types.NodeID) *Endpoint {
	t.Helper()
	ep, err := s.Join(id)
	if err != nil {
		t.Fatal(err)
	}
	return ep
}

func recvWithin(t *testing.T, ep *Endpoint, d time.Duration) Envelope {
	t.Helper()
	select {
	case env := <-ep.Inbox():
		return env
	case <-time.After(d):
		t.Fatalf("node %s: no message within %v", ep.Self(), d)
		return Envelope{}
	}
}

func TestSwitchSendReceive(t *testing.T) {
	s := NewSwitch(nil)
	a, b := join(t, s, 1), join(t, s, 2)
	a.Send(2, "hello")
	env := recvWithin(t, b, time.Second)
	if env.From != 1 || env.Msg != "hello" {
		t.Fatalf("got %+v", env)
	}
	if a.Self() != 1 {
		t.Fatal("self wrong")
	}
}

func TestSwitchBroadcastExcludesSelfAndClients(t *testing.T) {
	s := NewSwitch(nil)
	a, b, c := join(t, s, 1), join(t, s, 2), join(t, s, 3)
	client, err := s.JoinClient(100)
	if err != nil {
		t.Fatal(err)
	}
	a.Broadcast("x")
	recvWithin(t, b, time.Second)
	recvWithin(t, c, time.Second)
	select {
	case env := <-a.Inbox():
		t.Fatalf("sender received own broadcast: %+v", env)
	case env := <-client.Inbox():
		t.Fatalf("client received broadcast: %+v", env)
	case <-time.After(50 * time.Millisecond):
	}
}

func TestSwitchClientDirectedMessages(t *testing.T) {
	s := NewSwitch(nil)
	a := join(t, s, 1)
	client, err := s.JoinClient(100)
	if err != nil {
		t.Fatal(err)
	}
	client.Send(1, types.RequestMsg{Tx: types.Transaction{ID: types.TxID{Client: 100, Seq: 1}}})
	env := recvWithin(t, a, time.Second)
	if env.From != 100 {
		t.Fatalf("from = %v", env.From)
	}
	a.Send(100, types.ReplyMsg{TxID: types.TxID{Client: 100, Seq: 1}})
	env = recvWithin(t, client, time.Second)
	if _, ok := env.Msg.(types.ReplyMsg); !ok {
		t.Fatalf("client got %T", env.Msg)
	}
}

func TestSwitchDuplicateJoin(t *testing.T) {
	s := NewSwitch(nil)
	join(t, s, 1)
	if _, err := s.Join(1); err == nil {
		t.Fatal("duplicate join accepted")
	}
}

func TestSwitchDelay(t *testing.T) {
	cond := NewConditions(1)
	cond.SetBaseDelay(30*time.Millisecond, 0)
	s := NewSwitch(cond)
	a, b := join(t, s, 1), join(t, s, 2)
	start := time.Now()
	a.Send(2, "delayed")
	recvWithin(t, b, time.Second)
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Fatalf("message arrived after %v, want ≥ ~30ms", elapsed)
	}
}

func TestSwitchBandwidthCharge(t *testing.T) {
	cond := NewConditions(1)
	cond.SetBandwidth(1 << 20) // 1 MiB/s
	s := NewSwitch(cond)
	a, b := join(t, s, 1), join(t, s, 2)
	// 512 KiB payload → 2·size/bw = 1s... too slow for a test; use
	// a 26 KiB block ≈ 50ms charge.
	payload := make([]types.Transaction, 100)
	for i := range payload {
		payload[i] = types.Transaction{ID: types.TxID{Client: 1, Seq: uint64(i)}, Command: make([]byte, 256)}
	}
	block := &types.Block{View: 1, QC: types.GenesisQC(), Payload: payload}
	start := time.Now()
	a.Send(2, types.ProposalMsg{Block: block})
	recvWithin(t, b, 2*time.Second)
	if elapsed := time.Since(start); elapsed < 40*time.Millisecond {
		t.Fatalf("large message arrived after %v, want NIC serialization delay", elapsed)
	}
}

func TestSwitchPartitionAndHeal(t *testing.T) {
	cond := NewConditions(1)
	s := NewSwitch(cond)
	a, b := join(t, s, 1), join(t, s, 2)
	cond.Partition(map[types.NodeID]int{1: 0, 2: 1})
	a.Send(2, "lost")
	select {
	case <-b.Inbox():
		t.Fatal("message crossed partition")
	case <-time.After(50 * time.Millisecond):
	}
	cond.Heal()
	a.Send(2, "found")
	env := recvWithin(t, b, time.Second)
	if env.Msg != "found" {
		t.Fatalf("got %+v", env)
	}
}

func TestSwitchCrashAndRestart(t *testing.T) {
	cond := NewConditions(1)
	s := NewSwitch(cond)
	a, b := join(t, s, 1), join(t, s, 2)
	cond.Crash(2)
	a.Send(2, "to the dead")
	select {
	case <-b.Inbox():
		t.Fatal("crashed node received message")
	case <-time.After(50 * time.Millisecond):
	}
	// Crashed nodes cannot send either.
	cond.Crash(1)
	cond.Restart(2)
	a.Send(2, "from the dead")
	select {
	case <-b.Inbox():
		t.Fatal("crashed sender delivered message")
	case <-time.After(50 * time.Millisecond):
	}
	cond.Restart(1)
	a.Send(2, "alive")
	recvWithin(t, b, time.Second)
}

func TestSwitchCrashDropsInFlight(t *testing.T) {
	cond := NewConditions(1)
	cond.SetBaseDelay(50*time.Millisecond, 0)
	s := NewSwitch(cond)
	a, b := join(t, s, 1), join(t, s, 2)
	a.Send(2, "in flight")
	cond.Crash(2) // crash before the delayed delivery fires
	select {
	case <-b.Inbox():
		t.Fatal("in-flight message delivered to crashed node")
	case <-time.After(150 * time.Millisecond):
	}
}

func TestSwitchDropRate(t *testing.T) {
	cond := NewConditions(1)
	cond.SetDropRate(1.0)
	s := NewSwitch(cond)
	a, b := join(t, s, 1), join(t, s, 2)
	for i := 0; i < 10; i++ {
		a.Send(2, i)
	}
	select {
	case <-b.Inbox():
		t.Fatal("message survived 100% drop rate")
	case <-time.After(50 * time.Millisecond):
	}
	_, _, dropped := s.Stats()
	if dropped != 10 {
		t.Fatalf("dropped = %d, want 10", dropped)
	}
}

func TestSwitchFluctuationWindow(t *testing.T) {
	cond := NewConditions(1)
	s := NewSwitch(cond)
	a, b := join(t, s, 1), join(t, s, 2)
	cond.Fluctuate(time.Now(), 80*time.Millisecond, 40*time.Millisecond, 41*time.Millisecond)
	start := time.Now()
	a.Send(2, "during")
	recvWithin(t, b, time.Second)
	if elapsed := time.Since(start); elapsed < 35*time.Millisecond {
		t.Fatalf("fluctuation not applied: %v", elapsed)
	}
	time.Sleep(90 * time.Millisecond) // window over
	start = time.Now()
	a.Send(2, "after")
	recvWithin(t, b, time.Second)
	if elapsed := time.Since(start); elapsed > 20*time.Millisecond {
		t.Fatalf("fluctuation persisted after window: %v", elapsed)
	}
}

func TestSwitchSlowCommand(t *testing.T) {
	cond := NewConditions(1)
	s := NewSwitch(cond)
	a, b := join(t, s, 1), join(t, s, 2)
	cond.SetNodeDelay(1, 30*time.Millisecond, 0)
	start := time.Now()
	a.Send(2, "slowed")
	recvWithin(t, b, time.Second)
	if time.Since(start) < 25*time.Millisecond {
		t.Fatal("per-node slow delay not applied")
	}
	cond.SetNodeDelay(1, 0, 0) // clear
	start = time.Now()
	a.Send(2, "fast")
	recvWithin(t, b, time.Second)
	if time.Since(start) > 20*time.Millisecond {
		t.Fatal("slow delay not cleared")
	}
}

func TestSwitchStatsCount(t *testing.T) {
	s := NewSwitch(nil)
	a, b := join(t, s, 1), join(t, s, 2)
	_ = b
	for i := 0; i < 5; i++ {
		a.Send(2, types.VoteMsg{Vote: &types.Vote{View: 1, Voter: 1}})
	}
	deadline := time.Now().Add(time.Second)
	for {
		msgs, bytes, _ := s.Stats()
		if msgs == 5 && bytes > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stats: msgs=%d bytes=%d", msgs, bytes)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestEndpointClose(t *testing.T) {
	s := NewSwitch(nil)
	a, b := join(t, s, 1), join(t, s, 2)
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	a.Send(2, "gone")
	a.Broadcast("gone")
	// Closing twice is fine; sends from closed endpoints are no-ops.
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	b.Send(1, "zombie")
	select {
	case <-a.Inbox():
		t.Fatal("closed endpoint delivered a message")
	case <-time.After(50 * time.Millisecond):
	}
}

func TestNormalDelayNonNegative(t *testing.T) {
	cond := NewConditions(1)
	for i := 0; i < 1000; i++ {
		if d := normalDelay(cond.rng, time.Millisecond, 10*time.Millisecond); d < 0 {
			t.Fatal("negative delay sampled")
		}
	}
}

func TestTCPSendReceive(t *testing.T) {
	addrs := map[types.NodeID]string{1: "127.0.0.1:0", 2: "127.0.0.1:0"}
	t1, err := NewTCP(1, addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = t1.Close() }()
	// Node 2 must know node 1's real port and vice versa; rebuild the
	// address map with bound ports.
	addrs[1] = t1.Addr()
	t2, err := NewTCP(2, addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = t2.Close() }()
	addrs[2] = t2.Addr()
	t1.SetPeerAddr(2, t2.Addr())

	t1.Send(2, types.VoteMsg{Vote: &types.Vote{View: 3, Voter: 1, BlockID: types.Hash{1}}})
	select {
	case env := <-t2.Inbox():
		vm, ok := env.Msg.(types.VoteMsg)
		if !ok || vm.Vote.View != 3 || env.From != 1 {
			t.Fatalf("got %+v", env)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no TCP delivery")
	}

	// Reply direction exercises t2's lazy dial.
	t2.Send(1, types.VoteMsg{Vote: &types.Vote{View: 4, Voter: 2}})
	select {
	case env := <-t1.Inbox():
		if env.From != 2 {
			t.Fatalf("from = %v", env.From)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no reverse TCP delivery")
	}
}

func TestTCPBroadcastAndClose(t *testing.T) {
	addrs := map[types.NodeID]string{1: "127.0.0.1:0", 2: "127.0.0.1:0", 3: "127.0.0.1:0"}
	transports := make(map[types.NodeID]*TCP)
	for id := types.NodeID(1); id <= 3; id++ {
		tr, err := NewTCP(id, addrs)
		if err != nil {
			t.Fatal(err)
		}
		addrs[id] = tr.Addr()
		transports[id] = tr
	}
	// Propagate the real ports to every transport's address book.
	for _, tr := range transports {
		for id, a := range addrs {
			tr.SetPeerAddr(id, a)
		}
	}
	transports[1].Broadcast(types.VoteMsg{Vote: &types.Vote{View: 1, Voter: 1}})
	for _, id := range []types.NodeID{2, 3} {
		select {
		case env := <-transports[id].Inbox():
			if env.From != 1 {
				t.Fatalf("from = %v", env.From)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("node %s missed broadcast", id)
		}
	}
	for _, tr := range transports {
		if err := tr.Close(); err != nil {
			t.Fatal(err)
		}
		if err := tr.Close(); err != nil { // idempotent
			t.Fatal(err)
		}
	}
	// Send after close is a silent no-op.
	transports[1].Send(2, "late")
}

func TestTCPMissingSelfAddress(t *testing.T) {
	if _, err := NewTCP(9, map[types.NodeID]string{1: "127.0.0.1:0"}); err == nil {
		t.Fatal("expected error for missing self address")
	}
}

func TestTCPSendToUnknownPeer(t *testing.T) {
	tr, err := NewTCP(1, map[types.NodeID]string{1: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = tr.Close() }()
	tr.Send(42, "nobody home") // must not panic or block
}

package network

import (
	"fmt"
	"time"

	"github.com/bamboo-bft/bamboo/internal/types"
)

// ConditionsSpec is a declarative condition change: the JSON body of a
// fleet's POST /admin/conditions and the currency the harness fault
// scheduler compiles events into. One spec carries only the changes it
// declares — absent fields leave the corresponding condition alone —
// so a schedule's events translate one-to-one and a fleet supervisor
// can accumulate the steady-state view it must replay to a replica
// that rejoins after a crash.
//
// Apply order within one spec: Heal first (so "heal then re-partition"
// fits a single spec), then partitions, per-node delays, drop rate,
// fluctuation window (anchored at apply time), and finally
// condition-level crash/restart marks.
type ConditionsSpec struct {
	// Heal removes every partition before the rest of the spec
	// applies.
	Heal bool `json:"heal,omitempty"`
	// Partition assigns replicas to partition groups (unlisted nodes
	// are group 0); nil leaves the current partition untouched.
	Partition map[types.NodeID]int `json:"partition,omitempty"`
	// Delays adds Normal(mean, std) delay to every message the named
	// replicas send; zero mean and std clears a node's entry.
	Delays []NodeDelaySpec `json:"delays,omitempty"`
	// DropRate, when non-nil, sets the independent message loss
	// probability in [0,1].
	DropRate *float64 `json:"dropRate,omitempty"`
	// Fluctuate, when non-nil, opens a Uniform(min, max) delay window
	// of the given duration starting when the spec is applied.
	Fluctuate *FluctuateSpec `json:"fluctuate,omitempty"`
	// Crash marks replicas silent in the condition model (they
	// neither send nor receive); Restart lifts the mark. A fleet
	// deployment expresses crash faults as real process kills
	// instead, but the condition-level mark remains available for
	// silencing a replica without losing its state.
	Crash   []types.NodeID `json:"crash,omitempty"`
	Restart []types.NodeID `json:"restart,omitempty"`
}

// NodeDelaySpec is one replica's extra send delay.
type NodeDelaySpec struct {
	Node types.NodeID  `json:"node"`
	Mean time.Duration `json:"mean"`
	Std  time.Duration `json:"std,omitempty"`
}

// FluctuateSpec bounds a delay fluctuation window.
type FluctuateSpec struct {
	Dur time.Duration `json:"dur"`
	Min time.Duration `json:"min"`
	Max time.Duration `json:"max"`
}

// Validate reports the first malformed field. An admin endpoint must
// reject a bad spec before touching the live model — a half-applied
// condition change would leave the fleet in a state no schedule
// declares.
func (s *ConditionsSpec) Validate() error {
	if s.DropRate != nil && (*s.DropRate < 0 || *s.DropRate > 1) {
		return fmt.Errorf("network: drop rate %v outside [0,1]", *s.DropRate)
	}
	if f := s.Fluctuate; f != nil {
		if f.Dur <= 0 {
			return fmt.Errorf("network: fluctuation window needs a positive duration")
		}
		if f.Min > f.Max {
			return fmt.Errorf("network: fluctuation min %v above max %v", f.Min, f.Max)
		}
	}
	for _, d := range s.Delays {
		if d.Node == 0 {
			return fmt.Errorf("network: delay spec names node 0")
		}
		if d.Mean < 0 || d.Std < 0 {
			return fmt.Errorf("network: negative delay for node %s", d.Node)
		}
	}
	return nil
}

// Empty reports whether the spec declares no change at all.
func (s *ConditionsSpec) Empty() bool {
	return !s.Heal && s.Partition == nil && len(s.Delays) == 0 &&
		s.DropRate == nil && s.Fluctuate == nil &&
		len(s.Crash) == 0 && len(s.Restart) == 0
}

// Apply compiles the spec onto the condition model at time now (the
// fluctuation anchor).
func (s *ConditionsSpec) Apply(c *Conditions, now time.Time) {
	if s.Heal {
		c.Heal()
	}
	if s.Partition != nil {
		c.Partition(s.Partition)
	}
	for _, d := range s.Delays {
		c.SetNodeDelay(d.Node, d.Mean, d.Std)
	}
	if s.DropRate != nil {
		c.SetDropRate(*s.DropRate)
	}
	if f := s.Fluctuate; f != nil {
		c.Fluctuate(now, f.Dur, f.Min, f.Max)
	}
	for _, id := range s.Crash {
		c.Crash(id)
	}
	for _, id := range s.Restart {
		c.Restart(id)
	}
}

// Merge folds a newly applied spec into the receiver, the accumulated
// steady state of a deployment: what a supervisor must replay to a
// replica that boots (or reboots) with a fresh condition model.
// Fluctuation windows are deliberately not accumulated — they are
// anchored wall-clock intervals, stale by the time a restarted replica
// could replay them.
func (s *ConditionsSpec) Merge(next ConditionsSpec) {
	if next.Heal {
		s.Partition = nil
		s.Heal = false // steady state: "no partition" is the zero value
	}
	if next.Partition != nil {
		groups := make(map[types.NodeID]int, len(next.Partition))
		for id, g := range next.Partition {
			groups[id] = g
		}
		s.Partition = groups
	}
	for _, d := range next.Delays {
		merged := make([]NodeDelaySpec, 0, len(s.Delays)+1)
		for _, prev := range s.Delays {
			if prev.Node != d.Node {
				merged = append(merged, prev)
			}
		}
		if d.Mean != 0 || d.Std != 0 {
			merged = append(merged, d)
		}
		s.Delays = merged
	}
	if next.DropRate != nil {
		rate := *next.DropRate
		if rate == 0 {
			s.DropRate = nil
		} else {
			s.DropRate = &rate
		}
	}
	crashed := make(map[types.NodeID]bool, len(s.Crash))
	for _, id := range s.Crash {
		crashed[id] = true
	}
	for _, id := range next.Crash {
		crashed[id] = true
	}
	for _, id := range next.Restart {
		delete(crashed, id)
	}
	s.Crash = s.Crash[:0:0]
	for id := range crashed {
		s.Crash = append(s.Crash, id)
	}
	sortNodeIDs(s.Crash)
	s.Restart = nil
}

// sortNodeIDs keeps accumulated ID lists deterministic across merges
// (map iteration order would otherwise leak into serialized specs).
func sortNodeIDs(ids []types.NodeID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j-1] > ids[j]; j-- {
			ids[j-1], ids[j] = ids[j], ids[j-1]
		}
	}
}

package network

import (
	"math/rand"
	"sync"
	"time"

	"github.com/bamboo-bft/bamboo/internal/types"
)

// Conditions models the state of the simulated network: base link
// delay (Normal(µ,σ), the paper's model assumption), per-NIC
// bandwidth, per-node extra delay (the run-time "slow" command),
// random loss, partitions, crash faults, and bounded time windows of
// delay fluctuation (the responsiveness experiment of Section VI-D).
//
// All methods are safe for concurrent use.
type Conditions struct {
	mu  sync.Mutex
	rng *rand.Rand

	baseMean time.Duration
	baseStd  time.Duration
	// bandwidth in bytes/second per NIC; 0 disables the 2·size/b
	// serialization charge.
	bandwidth float64

	perNode  map[types.NodeID]extraDelay
	groups   map[types.NodeID]int // partition group; default group 0
	dropRate float64
	crashed  map[types.NodeID]bool

	flucFrom  time.Time
	flucUntil time.Time
	flucMin   time.Duration
	flucMax   time.Duration
}

type extraDelay struct {
	mean time.Duration
	std  time.Duration
}

// NewConditions creates a condition model seeded for reproducibility.
func NewConditions(seed int64) *Conditions {
	return &Conditions{
		rng:     rand.New(rand.NewSource(seed)),
		perNode: make(map[types.NodeID]extraDelay),
		groups:  make(map[types.NodeID]int),
		crashed: make(map[types.NodeID]bool),
	}
}

// SetBaseDelay sets the Normal(mean, std) per-message link delay
// (Table I "delay").
func (c *Conditions) SetBaseDelay(mean, std time.Duration) {
	c.mu.Lock()
	c.baseMean, c.baseStd = mean, std
	c.mu.Unlock()
}

// SetBandwidth sets the per-NIC bandwidth in bytes/second; messages
// are charged 2·size/bandwidth (sender NIC + receiver NIC), matching
// the t_NIC term of the performance model. Zero disables the charge.
func (c *Conditions) SetBandwidth(bytesPerSecond float64) {
	c.mu.Lock()
	c.bandwidth = bytesPerSecond
	c.mu.Unlock()
}

// SetNodeDelay adds extra Normal(mean, std) delay to every message
// sent by the node — the paper's "slow" run-time command. Zero mean
// and std clears it.
func (c *Conditions) SetNodeDelay(id types.NodeID, mean, std time.Duration) {
	c.mu.Lock()
	if mean == 0 && std == 0 {
		delete(c.perNode, id)
	} else {
		c.perNode[id] = extraDelay{mean: mean, std: std}
	}
	c.mu.Unlock()
}

// SetDropRate makes every message independently lost with probability
// p ∈ [0,1].
func (c *Conditions) SetDropRate(p float64) {
	c.mu.Lock()
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	c.dropRate = p
	c.mu.Unlock()
}

// Partition assigns nodes to partition groups; messages cross groups
// only if both endpoints share a group. Heal() restores full
// connectivity.
func (c *Conditions) Partition(groups map[types.NodeID]int) {
	c.mu.Lock()
	c.groups = make(map[types.NodeID]int, len(groups))
	for id, g := range groups {
		c.groups[id] = g
	}
	c.mu.Unlock()
}

// Heal removes all partitions.
func (c *Conditions) Heal() {
	c.mu.Lock()
	c.groups = make(map[types.NodeID]int)
	c.mu.Unlock()
}

// Crash makes a node silent: it neither sends nor receives. The
// silence-attack and responsiveness experiments use it.
func (c *Conditions) Crash(id types.NodeID) {
	c.mu.Lock()
	c.crashed[id] = true
	c.mu.Unlock()
}

// Restart undoes Crash.
func (c *Conditions) Restart(id types.NodeID) {
	c.mu.Lock()
	delete(c.crashed, id)
	c.mu.Unlock()
}

// Fluctuate schedules a window [from, from+dur) during which every
// message experiences Uniform(min, max) delay instead of the base
// delay — the network fluctuation of the responsiveness experiment.
func (c *Conditions) Fluctuate(from time.Time, dur time.Duration, min, max time.Duration) {
	c.mu.Lock()
	c.flucFrom, c.flucUntil = from, from.Add(dur)
	c.flucMin, c.flucMax = min, max
	c.mu.Unlock()
}

// verdict is the fate of one message.
type verdict struct {
	drop  bool
	delay time.Duration
}

// judge decides the fate of a message of the given size from -> to at
// time now.
func (c *Conditions) judge(from, to types.NodeID, size int, now time.Time) verdict {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed[from] || c.crashed[to] {
		return verdict{drop: true}
	}
	if gf, gt := c.groups[from], c.groups[to]; gf != gt {
		return verdict{drop: true}
	}
	if c.dropRate > 0 && c.rng.Float64() < c.dropRate {
		return verdict{drop: true}
	}
	var d time.Duration
	if !now.Before(c.flucFrom) && now.Before(c.flucUntil) {
		span := c.flucMax - c.flucMin
		if span > 0 {
			d = c.flucMin + time.Duration(c.rng.Int63n(int64(span)))
		} else {
			d = c.flucMin
		}
	} else if c.baseMean > 0 || c.baseStd > 0 {
		d = normalDelay(c.rng, c.baseMean, c.baseStd)
	}
	if extra, ok := c.perNode[from]; ok {
		d += normalDelay(c.rng, extra.mean, extra.std)
	}
	if c.bandwidth > 0 && size > 0 {
		d += time.Duration(2 * float64(size) / c.bandwidth * float64(time.Second))
	}
	return verdict{delay: d}
}

// normalDelay samples max(0, Normal(mean, std)).
func normalDelay(rng *rand.Rand, mean, std time.Duration) time.Duration {
	if std == 0 {
		return mean
	}
	d := time.Duration(rng.NormFloat64()*float64(std)) + mean
	if d < 0 {
		return 0
	}
	return d
}

// IsCrashed reports whether the node is crashed.
func (c *Conditions) IsCrashed(id types.NodeID) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.crashed[id]
}

package network

import (
	"context"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"github.com/bamboo-bft/bamboo/internal/codec"
	"github.com/bamboo-bft/bamboo/internal/metrics"
	"github.com/bamboo-bft/bamboo/internal/types"
)

// outboundDepth bounds each peer's send queue; overflow drops the
// message, preserving the Transport contract that sends never block
// (datagram semantics — a blocked consensus loop is a deadlock risk,
// a dropped message is just a retransmit).
const outboundDepth = 1 << 12

// dialTimeout bounds one connection attempt; dialCooldown is how long
// a peer's writer drops messages after a failed attempt before dialing
// again, so a dead peer costs one SYN per cooldown instead of one per
// queued message.
const (
	dialTimeout  = time.Second
	dialCooldown = 50 * time.Millisecond
)

// TCP is a Transport connecting replicas over persistent TCP
// connections carrying the codec's self-delimiting binary frames —
// the deployment path for multi-machine experiments. Outbound writes
// coalesce: a writer drains its whole pending queue through the
// encoder and flushes once, so a burst of votes costs one syscall
// instead of one per message. Because frames are stateless, a
// malformed or oversized frame (either direction) costs one message,
// counted in TransportStats.Dropped — never the connection.
// It carries no condition model itself:
// wrap it in Condition to give a scheduled scenario's partitions,
// delays, and drops the same meaning they have on the in-process
// switch, or use it bare to observe the real network.
type TCP struct {
	self     types.NodeID
	listener net.Listener
	inbox    chan Envelope
	done     chan struct{}
	wg       sync.WaitGroup
	// ctx cancels in-flight dials at Close, so shutdown never waits
	// out a connection attempt to a dead peer.
	ctx       context.Context
	cancel    context.CancelFunc
	closeOnce sync.Once
	closeErr  error

	mu    sync.Mutex
	addrs map[types.NodeID]string
	peers map[types.NodeID]*tcpPeer
	// conns tracks every live connection (accepted and dialed), so
	// Close and ResetPeerConns can unblock goroutines parked in reads
	// and writes by closing the sockets under them.
	conns map[net.Conn]struct{}
	// replicas is the broadcast domain, fixed at construction from the
	// address map's keys; addresses learned later through SetPeerAddr
	// (clients, in harness deployments) are dialable but not
	// broadcast targets, mirroring the switch's replica/client split.
	replicas []types.NodeID

	msgs    metrics.Counter
	bytes   metrics.Counter
	dropped metrics.Counter
	dials   metrics.Counter
	redials metrics.Counter
	accepts metrics.Counter
}

type tcpPeer struct {
	outbound chan any
	// reset asks the writer to tear down its connection and re-dial on
	// the next message (crash faults, address changes).
	reset chan struct{}
	// dialed is writer-local state: a first dial has succeeded, so any
	// further dial counts as a redial.
	dialed bool
}

// NewTCP starts listening on addrs[self] and returns the transport.
// The map's keys fix the broadcast domain; a peer's value may be left
// empty when its address is only known later (ephemeral ":0" ports),
// to be filled in with SetPeerAddr before traffic flows. Peer
// connections are dialed lazily by per-peer writer goroutines.
func NewTCP(self types.NodeID, addrs map[types.NodeID]string) (*TCP, error) {
	addr, ok := addrs[self]
	if !ok || addr == "" {
		return nil, fmt.Errorf("network: no listen address for self %s", self)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("network: listen %s: %w", addr, err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	t := &TCP{
		self:     self,
		addrs:    make(map[types.NodeID]string, len(addrs)),
		listener: ln,
		inbox:    make(chan Envelope, inboxCapacity),
		done:     make(chan struct{}),
		ctx:      ctx,
		cancel:   cancel,
		peers:    make(map[types.NodeID]*tcpPeer),
		conns:    make(map[net.Conn]struct{}),
	}
	for id, a := range addrs {
		t.addrs[id] = a
		t.replicas = append(t.replicas, id)
	}
	sort.Slice(t.replicas, func(i, j int) bool { return t.replicas[i] < t.replicas[j] })
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Addr returns the bound listen address (useful with ":0" ports).
func (t *TCP) Addr() string { return t.listener.Addr().String() }

// SetPeerAddr updates a peer's dial address — used with ephemeral
// listen ports, where addresses are only known after every transport
// has bound, and to teach replicas where a late-joining client
// listens. The peer's writer (re)dials on its next send.
func (t *TCP) SetPeerAddr(id types.NodeID, addr string) {
	t.mu.Lock()
	t.addrs[id] = addr
	t.mu.Unlock()
}

func (t *TCP) peerAddr(id types.NodeID) (string, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	a, ok := t.addrs[id]
	return a, ok
}

// track registers a live connection for teardown; it refuses (and the
// caller must close the conn) once the transport is closing, so no
// socket can slip past Close.
func (t *TCP) track(conn net.Conn) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	select {
	case <-t.done:
		return false
	default:
	}
	t.conns[conn] = struct{}{}
	return true
}

func (t *TCP) untrack(conn net.Conn) {
	t.mu.Lock()
	delete(t.conns, conn)
	t.mu.Unlock()
}

// liveConns snapshots the tracked connections for closing outside the
// lock.
func (t *TCP) liveConns() []net.Conn {
	t.mu.Lock()
	defer t.mu.Unlock()
	conns := make([]net.Conn, 0, len(t.conns))
	for c := range t.conns {
		conns = append(conns, c)
	}
	return conns
}

func (t *TCP) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.listener.Accept()
		if err != nil {
			select {
			case <-t.done:
				return
			default:
				continue
			}
		}
		if !t.track(conn) {
			_ = conn.Close()
			return
		}
		t.accepts.Add(1)
		t.wg.Add(1)
		go t.readLoop(conn)
	}
}

func (t *TCP) readLoop(conn net.Conn) {
	defer t.wg.Done()
	defer func() {
		t.untrack(conn)
		_ = conn.Close()
	}()
	dec := codec.NewDecoder(conn)
	for {
		env, err := dec.Decode()
		if err != nil {
			if codec.Recoverable(err) {
				// A malformed or oversized frame costs exactly that
				// frame: count the lost message and keep serving the
				// connection. Tearing it down here would hand a
				// hostile peer a dial-storm lever and an honest bug a
				// reconnect tax.
				t.dropped.Add(1)
				continue
			}
			// Clean EOF, reset, or a truncated stream: the connection
			// is dead; the sender re-dials if it still cares.
			return
		}
		select {
		case t.inbox <- Envelope{From: env.From, Msg: env.Msg}:
		case <-t.done:
			return
		default:
			// Inbox overflow: drop, like a full socket buffer.
			t.dropped.Add(1)
		}
	}
}

// Self implements Transport.
func (t *TCP) Self() types.NodeID { return t.self }

// Send implements Transport. The message is queued for the peer's
// writer goroutine; a full queue or connection failure drops it —
// the same datagram semantics as the in-process switch.
func (t *TCP) Send(to types.NodeID, msg any) {
	select {
	case <-t.done:
		return
	default:
	}
	peer := t.getPeer(to)
	if peer == nil {
		t.dropped.Add(1)
		return
	}
	select {
	case peer.outbound <- msg:
	default:
		// Peer queue full: drop.
		t.dropped.Add(1)
	}
}

// getPeer returns (creating if needed) the peer's queue and writer.
func (t *TCP) getPeer(to types.NodeID) *tcpPeer {
	t.mu.Lock()
	defer t.mu.Unlock()
	peer, ok := t.peers[to]
	if !ok {
		if _, known := t.addrs[to]; !known {
			return nil
		}
		peer = &tcpPeer{
			outbound: make(chan any, outboundDepth),
			reset:    make(chan struct{}, 1),
		}
		t.peers[to] = peer
		t.wg.Add(1)
		go t.writeLoop(to, peer)
	}
	return peer
}

// writeLoop drains one peer's queue over a lazily (re)dialed
// connection. Failed dials back off for dialCooldown (dropping queued
// messages meanwhile) so an unreachable peer is probed at a bounded
// rate instead of once per message. Writes coalesce: after the
// blocking receive that starts a batch, the loop opportunistically
// drains whatever else is queued through the encoder and flushes
// once — under consensus bursts (a proposal plus its fan-out of
// votes and payload batches) that collapses per-message syscalls
// into one buffered write.
func (t *TCP) writeLoop(to types.NodeID, peer *tcpPeer) {
	defer t.wg.Done()
	var conn net.Conn
	var enc *codec.Encoder
	var retryAt time.Time
	closeConn := func() {
		if conn != nil {
			t.untrack(conn)
			_ = conn.Close()
			conn, enc = nil, nil
		}
	}
	defer closeConn()
	// encode stages one message on the open connection. A recoverable
	// codec error (oversized or unregistered message) costs only that
	// message — frames are stateless, so the stream stays aligned and
	// the connection survives. An I/O error kills the connection.
	encode := func(msg any) {
		n, err := enc.Encode(codec.Envelope{From: t.self, Msg: msg})
		if err != nil {
			t.dropped.Add(1)
			if !codec.Recoverable(err) {
				closeConn()
			}
			return
		}
		t.msgs.Add(1)
		t.bytes.Add(uint64(n))
	}
	for {
		var msg any
		select {
		case <-t.done:
			return
		case <-peer.reset:
			closeConn()
			continue
		case msg = <-peer.outbound:
		}
		// A reset racing with the message tears the connection down
		// first; the message then re-dials like any other.
		select {
		case <-peer.reset:
			closeConn()
		default:
		}
		if conn == nil {
			addr, ok := t.peerAddr(to)
			if !ok || addr == "" {
				t.dropped.Add(1)
				continue
			}
			if time.Now().Before(retryAt) {
				t.dropped.Add(1)
				continue
			}
			dctx, cancel := context.WithTimeout(t.ctx, dialTimeout)
			c, err := (&net.Dialer{}).DialContext(dctx, "tcp", addr)
			cancel()
			if err != nil {
				retryAt = time.Now().Add(dialCooldown)
				t.dropped.Add(1)
				continue
			}
			if !t.track(c) {
				_ = c.Close()
				return
			}
			if peer.dialed {
				t.redials.Add(1)
			}
			peer.dialed = true
			t.dials.Add(1)
			conn, enc = c, codec.NewEncoder(c)
		}
		encode(msg)
		// Drain the backlog into the same buffered write before
		// flushing. The encoder's own buffer bounds memory; a dead
		// connection (conn == nil) stops the batch and the remaining
		// queue re-dials on the next outer iteration.
	coalesce:
		for conn != nil {
			select {
			case msg = <-peer.outbound:
				encode(msg)
			default:
				break coalesce
			}
		}
		if conn != nil {
			if err := enc.Flush(); err != nil {
				// The batch's messages were already counted as sent;
				// like bytes parked in a kernel buffer at reset time,
				// their fate is unknowable. The connection is not.
				closeConn()
			}
		}
	}
}

// Broadcast implements Transport: the message goes to every replica in
// the construction-time broadcast domain except the sender. Peers
// learned later via SetPeerAddr (clients) are excluded, like the
// switch's client endpoints.
func (t *TCP) Broadcast(msg any) {
	for _, id := range t.replicas {
		if id != t.self {
			t.Send(id, msg)
		}
	}
}

// Inbox implements Transport. The channel closes once Close has torn
// the transport down, so consumers can drain and exit.
func (t *TCP) Inbox() <-chan Envelope { return t.inbox }

// ResetPeerConns tears down every live connection — writers close
// theirs and re-dial lazily on their next send; inbound connections
// die under their readers, and the remote ends re-dial the same way.
// The harness uses it to give a scheduled crash real socket
// consequences (peers observe resets and exercise their reconnect
// paths) instead of only silently eating messages. The listener stays
// up; the transport remains usable.
func (t *TCP) ResetPeerConns() {
	t.mu.Lock()
	for _, p := range t.peers {
		select {
		case p.reset <- struct{}{}:
		default:
		}
	}
	t.mu.Unlock()
	for _, c := range t.liveConns() {
		_ = c.Close()
	}
}

// Stats reports this endpoint's traffic counters.
func (t *TCP) Stats() TransportStats {
	return TransportStats{
		Msgs:     t.msgs.Load(),
		Bytes:    t.bytes.Load(),
		Dropped:  t.dropped.Load(),
		Dials:    t.dials.Load(),
		Redials:  t.redials.Load(),
		Accepted: t.accepts.Load(),
	}
}

// Close implements Transport: it stops the listener, closes every live
// connection (unblocking parked readers and writers), cancels
// in-flight dials, waits for all goroutines, and finally closes the
// inbox so consumers see end-of-stream. Safe to call more than once.
func (t *TCP) Close() error {
	t.closeOnce.Do(func() {
		close(t.done)
		t.cancel()
		t.closeErr = t.listener.Close()
		for _, c := range t.liveConns() {
			_ = c.Close()
		}
		t.wg.Wait()
		close(t.inbox)
	})
	return t.closeErr
}

package network

import (
	"fmt"
	"net"
	"sync"

	"github.com/bamboo-bft/bamboo/internal/codec"
	"github.com/bamboo-bft/bamboo/internal/types"
)

// outboundDepth bounds each peer's send queue; overflow drops the
// message, preserving the Transport contract that sends never block
// (datagram semantics — a blocked consensus loop is a deadlock risk,
// a dropped message is just a retransmit).
const outboundDepth = 1 << 12

// TCP is a Transport connecting replicas over persistent TCP
// connections with gob framing — the deployment path for multi-machine
// experiments. Artificial network conditions are not applied here; the
// in-process Switch is the instrument for controlled-delay studies,
// while TCP observes the real network.
type TCP struct {
	self     types.NodeID
	listener net.Listener
	inbox    chan Envelope
	done     chan struct{}
	wg       sync.WaitGroup

	mu    sync.Mutex
	addrs map[types.NodeID]string
	peers map[types.NodeID]*tcpPeer
}

type tcpPeer struct {
	outbound chan any
}

// NewTCP starts listening on addrs[self] and returns the transport.
// Peer connections are dialed lazily by per-peer writer goroutines.
func NewTCP(self types.NodeID, addrs map[types.NodeID]string) (*TCP, error) {
	addr, ok := addrs[self]
	if !ok {
		return nil, fmt.Errorf("network: no address for self %s", self)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("network: listen %s: %w", addr, err)
	}
	t := &TCP{
		self:     self,
		addrs:    make(map[types.NodeID]string, len(addrs)),
		listener: ln,
		inbox:    make(chan Envelope, inboxCapacity),
		done:     make(chan struct{}),
		peers:    make(map[types.NodeID]*tcpPeer),
	}
	for id, a := range addrs {
		t.addrs[id] = a
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Addr returns the bound listen address (useful with ":0" ports).
func (t *TCP) Addr() string { return t.listener.Addr().String() }

// SetPeerAddr updates a peer's dial address — used with ephemeral
// listen ports, where addresses are only known after every transport
// has bound. The peer's writer re-dials on its next send.
func (t *TCP) SetPeerAddr(id types.NodeID, addr string) {
	t.mu.Lock()
	t.addrs[id] = addr
	t.mu.Unlock()
}

func (t *TCP) peerAddr(id types.NodeID) (string, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	a, ok := t.addrs[id]
	return a, ok
}

func (t *TCP) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.listener.Accept()
		if err != nil {
			select {
			case <-t.done:
				return
			default:
				continue
			}
		}
		t.wg.Add(1)
		go t.readLoop(conn)
	}
}

func (t *TCP) readLoop(conn net.Conn) {
	defer t.wg.Done()
	defer func() { _ = conn.Close() }()
	// Close the connection when the transport shuts down so the
	// blocking Decode unblocks.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-t.done:
			_ = conn.Close()
		case <-stop:
		}
	}()
	dec := codec.NewDecoder(conn)
	for {
		env, err := dec.Decode()
		if err != nil {
			return
		}
		select {
		case t.inbox <- Envelope{From: env.From, Msg: env.Msg}:
		case <-t.done:
			return
		default:
			// Inbox overflow: drop, like a full socket buffer.
		}
	}
}

// Self implements Transport.
func (t *TCP) Self() types.NodeID { return t.self }

// Send implements Transport. The message is queued for the peer's
// writer goroutine; a full queue or connection failure drops it —
// the same datagram semantics as the in-process switch.
func (t *TCP) Send(to types.NodeID, msg any) {
	select {
	case <-t.done:
		return
	default:
	}
	peer := t.getPeer(to)
	if peer == nil {
		return
	}
	select {
	case peer.outbound <- msg:
	default:
		// Peer queue full: drop.
	}
}

// getPeer returns (creating if needed) the peer's queue and writer.
func (t *TCP) getPeer(to types.NodeID) *tcpPeer {
	t.mu.Lock()
	defer t.mu.Unlock()
	peer, ok := t.peers[to]
	if !ok {
		if _, known := t.addrs[to]; !known {
			return nil
		}
		peer = &tcpPeer{outbound: make(chan any, outboundDepth)}
		t.peers[to] = peer
		t.wg.Add(1)
		go t.writeLoop(to, peer)
	}
	return peer
}

// writeLoop drains one peer's queue over a lazily (re)dialed
// connection.
func (t *TCP) writeLoop(to types.NodeID, peer *tcpPeer) {
	defer t.wg.Done()
	var conn net.Conn
	var enc *codec.Encoder
	defer func() {
		if conn != nil {
			_ = conn.Close()
		}
	}()
	for {
		var msg any
		select {
		case <-t.done:
			return
		case msg = <-peer.outbound:
		}
		if conn == nil {
			addr, ok := t.peerAddr(to)
			if !ok {
				continue
			}
			c, err := net.Dial("tcp", addr)
			if err != nil {
				continue // drop; retry dial on next message
			}
			conn, enc = c, codec.NewEncoder(c)
		}
		if err := enc.Encode(codec.Envelope{From: t.self, Msg: msg}); err != nil {
			_ = conn.Close()
			conn, enc = nil, nil
		}
	}
}

// Broadcast implements Transport.
func (t *TCP) Broadcast(msg any) {
	t.mu.Lock()
	ids := make([]types.NodeID, 0, len(t.addrs))
	for id := range t.addrs {
		if id != t.self {
			ids = append(ids, id)
		}
	}
	t.mu.Unlock()
	for _, id := range ids {
		t.Send(id, msg)
	}
}

// Inbox implements Transport.
func (t *TCP) Inbox() <-chan Envelope { return t.inbox }

// Close implements Transport.
func (t *TCP) Close() error {
	select {
	case <-t.done:
		return nil
	default:
	}
	close(t.done)
	err := t.listener.Close()
	t.wg.Wait()
	return err
}

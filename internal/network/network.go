// Package network provides the message-passing layer (modeled after
// the Paxi network module the paper reuses): a Transport interface
// with two implementations — an in-process channel switch supporting
// the paper's delay, bandwidth, partition, fluctuation, and crash
// modelling for single-machine simulation, and a TCP transport for
// multi-process deployment.
package network

import (
	"github.com/bamboo-bft/bamboo/internal/types"
)

// Envelope pairs a message with its sender.
type Envelope struct {
	From types.NodeID
	Msg  any
}

// Transport is the interface replicas and in-process clients use to
// exchange messages. Send and Broadcast never block on slow peers;
// delivery is best-effort, exactly like a datagram network after the
// paper's GST assumption is dropped.
type Transport interface {
	// Self returns the local node ID.
	Self() types.NodeID
	// Send delivers msg to one peer.
	Send(to types.NodeID, msg any)
	// Broadcast delivers msg to every registered replica except
	// the sender itself.
	Broadcast(msg any)
	// Inbox streams incoming envelopes until Close.
	Inbox() <-chan Envelope
	// Close detaches the endpoint and releases resources.
	Close() error
}

// Sizer lets the switch charge bandwidth for a message; messages
// without a size are charged a small fixed header cost.
type Sizer interface {
	Size() int
}

// TransportStats counts one endpoint's traffic. The TCP transport and
// the Conditioned shim implement `Stats() TransportStats`; the switch
// keeps switch-wide counters instead (Switch.Stats). Msgs and Bytes
// count successfully written messages (actual framed wire bytes on
// TCP); Dropped counts messages lost to full queues, failed dials,
// write errors, or — through the shim — network conditions.
type TransportStats struct {
	Msgs    uint64 `json:"msgs"`
	Bytes   uint64 `json:"bytes"`
	Dropped uint64 `json:"dropped"`
	// Dials counts successful outbound connections; Redials the subset
	// that replaced an earlier connection to the same peer (reconnect
	// traffic after restarts and resets). Accepted counts inbound
	// connections.
	Dials    uint64 `json:"dials,omitempty"`
	Redials  uint64 `json:"redials,omitempty"`
	Accepted uint64 `json:"accepted,omitempty"`
}

// Add accumulates other's counters — aggregation across a deployment's
// endpoints.
func (s *TransportStats) Add(other TransportStats) {
	s.Msgs += other.Msgs
	s.Bytes += other.Bytes
	s.Dropped += other.Dropped
	s.Dials += other.Dials
	s.Redials += other.Redials
	s.Accepted += other.Accepted
}

// messageSize estimates the wire size of a message for bandwidth
// modelling. Votes/timeouts are small and fixed; proposals implement
// Sizer through their block.
func messageSize(msg any) int {
	switch m := msg.(type) {
	case types.ProposalMsg:
		if m.Block != nil {
			// Digest proposals carry the 32-byte payload digest plus
			// 16-byte transaction IDs instead of full transactions —
			// the bandwidth saving the data-plane split buys.
			// (Block.Size covers the header; the digest is charged
			// here since only stripped proposals depend on it.)
			n := m.Block.Size() + 16*len(m.PayloadIDs)
			if len(m.PayloadIDs) > 0 {
				n += 32
			}
			return n
		}
	case types.VoteMsg:
		return 150 // view + hash + id + signature
	case types.TimeoutMsg:
		if m.Timeout != nil && m.Timeout.HighQC != nil {
			return 150 + 100*len(m.Timeout.HighQC.Signers)
		}
		return 150
	case types.TCMsg:
		if m.TC != nil {
			return 100 * (len(m.TC.Signers) + 1)
		}
	case types.RequestMsg:
		return m.Tx.Size()
	case types.PayloadBatchMsg:
		n := 16
		for i := range m.Txs {
			n += m.Txs[i].Size()
		}
		return n
	case types.SyncRequestMsg:
		return 24 // two heights plus framing
	case types.SyncResponseMsg:
		n := 32
		for _, b := range m.Blocks {
			if b != nil {
				n += b.Size()
			}
		}
		return n
	case types.SnapshotRequestMsg:
		return 20 // height, chunk index, framing
	case types.SnapshotManifestMsg:
		n := 64 + 32*len(m.ChunkDigests)
		if m.Block != nil {
			n += m.Block.Size()
		}
		if m.QC != nil {
			n += 8 + 32
			for _, s := range m.QC.Sigs {
				n += 4 + len(s)
			}
			n += 4 * len(m.QC.Signers)
		}
		return n
	case types.SnapshotChunkMsg:
		return 20 + len(m.Data)
	case Sizer:
		return m.Size()
	}
	return 64
}

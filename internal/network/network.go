// Package network provides the message-passing layer (modeled after
// the Paxi network module the paper reuses): a Transport interface
// with two implementations — an in-process channel switch supporting
// the paper's delay, bandwidth, partition, fluctuation, and crash
// modelling for single-machine simulation, and a TCP transport for
// multi-process deployment.
package network

import (
	"github.com/bamboo-bft/bamboo/internal/codec"
	"github.com/bamboo-bft/bamboo/internal/types"
)

// Envelope pairs a message with its sender.
type Envelope struct {
	From types.NodeID
	Msg  any
}

// Transport is the interface replicas and in-process clients use to
// exchange messages. Send and Broadcast never block on slow peers;
// delivery is best-effort, exactly like a datagram network after the
// paper's GST assumption is dropped.
type Transport interface {
	// Self returns the local node ID.
	Self() types.NodeID
	// Send delivers msg to one peer.
	Send(to types.NodeID, msg any)
	// Broadcast delivers msg to every registered replica except
	// the sender itself.
	Broadcast(msg any)
	// Inbox streams incoming envelopes until Close.
	Inbox() <-chan Envelope
	// Close detaches the endpoint and releases resources.
	Close() error
}

// Sizer lets the switch charge bandwidth for a message; messages
// without a size are charged a small fixed header cost.
type Sizer interface {
	Size() int
}

// TransportStats counts one endpoint's traffic. The TCP transport and
// the Conditioned shim implement `Stats() TransportStats`; the switch
// keeps switch-wide counters instead (Switch.Stats). Msgs and Bytes
// count successfully written messages (actual framed wire bytes on
// TCP); Dropped counts messages lost to full queues, failed dials,
// write errors, or — through the shim — network conditions.
type TransportStats struct {
	Msgs    uint64 `json:"msgs"`
	Bytes   uint64 `json:"bytes"`
	Dropped uint64 `json:"dropped"`
	// Dials counts successful outbound connections; Redials the subset
	// that replaced an earlier connection to the same peer (reconnect
	// traffic after restarts and resets). Accepted counts inbound
	// connections.
	Dials    uint64 `json:"dials,omitempty"`
	Redials  uint64 `json:"redials,omitempty"`
	Accepted uint64 `json:"accepted,omitempty"`
}

// Add accumulates other's counters — aggregation across a deployment's
// endpoints.
func (s *TransportStats) Add(other TransportStats) {
	s.Msgs += other.Msgs
	s.Bytes += other.Bytes
	s.Dropped += other.Dropped
	s.Dials += other.Dials
	s.Redials += other.Redials
	s.Accepted += other.Accepted
}

// messageSize returns the wire size of a message for bandwidth
// modelling. Every registered protocol message is charged its exact
// framed size from the codec — the same bytes the TCP transport
// counts when it writes the frame — so the switch's bandwidth model
// and TransportStats agree between backends by construction instead
// of by hand-maintained estimates. Unregistered values (test traffic,
// extensions) fall back to Sizer or a fixed header cost.
func messageSize(msg any) int {
	if n, ok := codec.EncodedSize(msg); ok {
		return n
	}
	if s, ok := msg.(Sizer); ok {
		return s.Size()
	}
	return 64
}

package network

import (
	"errors"
	"sync"
	"time"

	"github.com/bamboo-bft/bamboo/internal/metrics"
	"github.com/bamboo-bft/bamboo/internal/types"
)

// inboxCapacity is the per-endpoint queue depth. It is deliberately
// deep: it plays the role of socket buffers, and dropping consensus
// messages under load distorts liveness rather than modelling it.
const inboxCapacity = 1 << 14

// ErrClosed is returned by operations on a closed endpoint.
var ErrClosed = errors.New("network: endpoint closed")

// Switch is the in-process network: a set of endpoints exchanging
// messages through buffered channels, with delivery fate and timing
// decided by a Conditions model. It is safe for concurrent use.
//
// Delayed deliveries run through one scheduler goroutine with a
// deadline heap rather than one runtime timer per message: at
// consensus message rates (10⁵/s) per-message timers overwhelm small
// hosts and their firing jitter would distort the very delays being
// modeled.
type Switch struct {
	cond *Conditions

	mu        sync.RWMutex
	endpoints map[types.NodeID]*Endpoint
	replicas  []types.NodeID // broadcast domain, sorted by insertion

	sched *scheduler

	// Counters for message-complexity reporting.
	msgsSent  metrics.Counter
	bytesSent metrics.Counter
	dropped   metrics.Counter
}

// NewSwitch creates a switch governed by cond; a nil cond means a
// perfect, zero-latency network.
func NewSwitch(cond *Conditions) *Switch {
	if cond == nil {
		cond = NewConditions(0)
	}
	s := &Switch{
		cond:      cond,
		endpoints: make(map[types.NodeID]*Endpoint),
	}
	s.sched = newScheduler(s)
	return s
}

// Close stops the delivery scheduler; pending delayed messages are
// dropped. Endpoints must not be used afterwards.
func (s *Switch) Close() {
	s.sched.stop()
}

// Conditions exposes the switch's condition model for fault injection.
func (s *Switch) Conditions() *Conditions { return s.cond }

// Join registers a replica endpoint: it receives broadcasts.
func (s *Switch) Join(id types.NodeID) (*Endpoint, error) {
	return s.join(id, true)
}

// JoinClient registers a client endpoint: it can send and receive
// directed messages but is excluded from the broadcast domain.
func (s *Switch) JoinClient(id types.NodeID) (*Endpoint, error) {
	return s.join(id, false)
}

func (s *Switch) join(id types.NodeID, replica bool) (*Endpoint, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.endpoints[id]; dup {
		return nil, errors.New("network: node already joined")
	}
	ep := &Endpoint{
		id:    id,
		sw:    s,
		inbox: make(chan Envelope, inboxCapacity),
		done:  make(chan struct{}),
	}
	s.endpoints[id] = ep
	if replica {
		s.replicas = append(s.replicas, id)
	}
	return ep, nil
}

// Stats reports switch-wide counters: messages delivered, bytes
// delivered, and messages dropped by conditions or backpressure.
func (s *Switch) Stats() (msgs, bytes, dropped uint64) {
	return s.msgsSent.Load(), s.bytesSent.Load(), s.dropped.Load()
}

// deliver routes one message, applying network conditions.
func (s *Switch) deliver(from, to types.NodeID, msg any) {
	size := messageSize(msg)
	v := s.cond.judge(from, to, size, time.Now())
	if v.drop {
		s.dropped.Add(1)
		return
	}
	if v.delay <= 0 {
		s.enqueue(from, to, msg, size)
		return
	}
	s.sched.schedule(delivery{
		at:   time.Now().Add(v.delay),
		from: from,
		to:   to,
		msg:  msg,
		size: size,
	})
}

// deliverDue completes a scheduled delivery.
func (s *Switch) deliverDue(d delivery) {
	// Re-check crash state at delivery time so a node that crashed
	// mid-flight does not receive late messages.
	if s.cond.IsCrashed(d.to) {
		s.dropped.Add(1)
		return
	}
	s.enqueue(d.from, d.to, d.msg, d.size)
}

func (s *Switch) enqueue(from, to types.NodeID, msg any, size int) {
	s.mu.RLock()
	ep, ok := s.endpoints[to]
	s.mu.RUnlock()
	if !ok {
		s.dropped.Add(1)
		return
	}
	select {
	case ep.inbox <- Envelope{From: from, Msg: msg}:
		s.msgsSent.Add(1)
		s.bytesSent.Add(uint64(size))
	case <-ep.done:
		s.dropped.Add(1)
	default:
		// Inbox overflow models NIC queue loss.
		s.dropped.Add(1)
	}
}

// Endpoint is one node's attachment to the switch.
type Endpoint struct {
	id    types.NodeID
	sw    *Switch
	inbox chan Envelope
	done  chan struct{}
	once  sync.Once
}

// Self implements Transport.
func (e *Endpoint) Self() types.NodeID { return e.id }

// Send implements Transport.
func (e *Endpoint) Send(to types.NodeID, msg any) {
	select {
	case <-e.done:
		return
	default:
	}
	e.sw.deliver(e.id, to, msg)
}

// Broadcast implements Transport: the message goes to every replica
// endpoint except the sender. Clients are not part of the broadcast
// domain.
func (e *Endpoint) Broadcast(msg any) {
	select {
	case <-e.done:
		return
	default:
	}
	e.sw.mu.RLock()
	targets := make([]types.NodeID, 0, len(e.sw.replicas))
	for _, id := range e.sw.replicas {
		if id != e.id {
			targets = append(targets, id)
		}
	}
	e.sw.mu.RUnlock()
	for _, id := range targets {
		e.sw.deliver(e.id, id, msg)
	}
}

// Inbox implements Transport.
func (e *Endpoint) Inbox() <-chan Envelope { return e.inbox }

// Close implements Transport. It detaches the endpoint; in-flight
// messages to it are dropped.
func (e *Endpoint) Close() error {
	e.once.Do(func() {
		close(e.done)
		e.sw.mu.Lock()
		delete(e.sw.endpoints, e.id)
		for i, id := range e.sw.replicas {
			if id == e.id {
				e.sw.replicas = append(e.sw.replicas[:i], e.sw.replicas[i+1:]...)
				break
			}
		}
		e.sw.mu.Unlock()
	})
	return nil
}

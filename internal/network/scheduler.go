package network

import (
	"container/heap"
	"sync"
	"time"

	"github.com/bamboo-bft/bamboo/internal/types"
)

// delivery is one delayed message awaiting its deadline.
type delivery struct {
	at   time.Time
	from types.NodeID
	to   types.NodeID
	msg  any
	size int
}

// deliveryHeap orders deliveries by deadline.
type deliveryHeap []delivery

func (h deliveryHeap) Len() int           { return len(h) }
func (h deliveryHeap) Less(i, j int) bool { return h[i].at.Before(h[j].at) }
func (h deliveryHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *deliveryHeap) Push(x any)        { *h = append(*h, x.(delivery)) }
func (h *deliveryHeap) Pop() any {
	old := *h
	n := len(old)
	d := old[n-1]
	old[n-1] = delivery{}
	*h = old[:n-1]
	return d
}

// scheduler delivers delayed messages from a single goroutine driven
// by one timer — the cheap, precise alternative to a runtime timer per
// message.
type scheduler struct {
	sw   *Switch
	mu   sync.Mutex
	h    deliveryHeap
	wake chan struct{}
	done chan struct{}
	once sync.Once
}

func newScheduler(sw *Switch) *scheduler {
	s := &scheduler{
		sw:   sw,
		wake: make(chan struct{}, 1),
		done: make(chan struct{}),
	}
	go s.run()
	return s
}

// schedule queues a delivery and wakes the loop if the new deadline
// precedes the previous earliest one.
func (s *scheduler) schedule(d delivery) {
	s.mu.Lock()
	needWake := s.h.Len() == 0 || d.at.Before(s.h[0].at)
	heap.Push(&s.h, d)
	s.mu.Unlock()
	if needWake {
		select {
		case s.wake <- struct{}{}:
		default:
		}
	}
}

// stop terminates the loop; queued deliveries are discarded.
func (s *scheduler) stop() {
	s.once.Do(func() { close(s.done) })
}

func (s *scheduler) run() {
	timer := time.NewTimer(time.Hour)
	defer timer.Stop()
	for {
		s.mu.Lock()
		// Flush everything already due.
		now := time.Now()
		for s.h.Len() > 0 && !s.h[0].at.After(now) {
			d := heap.Pop(&s.h).(delivery)
			s.mu.Unlock()
			s.sw.deliverDue(d)
			s.mu.Lock()
		}
		var wait time.Duration
		hasNext := s.h.Len() > 0
		if hasNext {
			wait = time.Until(s.h[0].at)
		}
		s.mu.Unlock()

		if !hasNext {
			select {
			case <-s.done:
				return
			case <-s.wake:
			}
			continue
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(wait)
		select {
		case <-s.done:
			return
		case <-s.wake:
		case <-timer.C:
		}
	}
}

package network

import (
	"container/heap"
	"sort"
	"testing"
	"testing/quick"
	"time"

	"github.com/bamboo-bft/bamboo/internal/types"
)

// TestDeliveryHeapOrdering: the heap yields deliveries in deadline
// order regardless of insertion order.
func TestDeliveryHeapOrdering(t *testing.T) {
	f := func(offsets []int16) bool {
		if len(offsets) == 0 {
			return true
		}
		base := time.Unix(1000, 0)
		var h deliveryHeap
		for _, off := range offsets {
			heap.Push(&h, delivery{at: base.Add(time.Duration(off) * time.Millisecond)})
		}
		sorted := make([]int16, len(offsets))
		copy(sorted, offsets)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		for _, want := range sorted {
			d := heap.Pop(&h).(delivery)
			if d.at != base.Add(time.Duration(want)*time.Millisecond) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestSchedulerOrdersDeliveries: messages with shorter delays arrive
// first even when scheduled last.
func TestSchedulerOrdersDeliveries(t *testing.T) {
	cond := NewConditions(1)
	s := NewSwitch(cond)
	defer s.Close()
	a, err := s.Join(1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Join(2)
	if err != nil {
		t.Fatal(err)
	}
	// Schedule the slow message first, then the fast one: the fast
	// one must still win the race (the scheduler re-arms its timer
	// for the new earliest deadline).
	cond.SetBaseDelay(60*time.Millisecond, 0)
	a.Send(2, "slow")
	cond.SetBaseDelay(10*time.Millisecond, 0)
	a.Send(2, "fast")
	first := recvWithin(t, b, time.Second)
	second := recvWithin(t, b, time.Second)
	if first.Msg != "fast" || second.Msg != "slow" {
		t.Fatalf("order: %v then %v", first.Msg, second.Msg)
	}
}

// TestSchedulerHighVolume pushes many delayed messages through one
// scheduler and requires complete delivery.
func TestSchedulerHighVolume(t *testing.T) {
	cond := NewConditions(1)
	cond.SetBaseDelay(2*time.Millisecond, time.Millisecond)
	s := NewSwitch(cond)
	defer s.Close()
	a, err := s.Join(1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Join(2)
	if err != nil {
		t.Fatal(err)
	}
	const count = 5000
	go func() {
		for i := 0; i < count; i++ {
			a.Send(2, types.VoteMsg{Vote: &types.Vote{View: types.View(i), Voter: 1}})
		}
	}()
	received := 0
	deadline := time.After(10 * time.Second)
	for received < count {
		select {
		case <-b.Inbox():
			received++
		case <-deadline:
			t.Fatalf("received %d of %d", received, count)
		}
	}
}

// TestSwitchCloseStopsScheduler: pending deliveries die with the
// switch, and Close is idempotent.
func TestSwitchCloseStopsScheduler(t *testing.T) {
	cond := NewConditions(1)
	cond.SetBaseDelay(50*time.Millisecond, 0)
	s := NewSwitch(cond)
	a, err := s.Join(1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Join(2)
	if err != nil {
		t.Fatal(err)
	}
	a.Send(2, "doomed")
	s.Close()
	s.Close()
	select {
	case m := <-b.Inbox():
		t.Fatalf("delivery after Close: %v", m)
	case <-time.After(120 * time.Millisecond):
	}
}

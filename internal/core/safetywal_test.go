package core

import (
	"path/filepath"
	"testing"

	"github.com/bamboo-bft/bamboo/internal/config"
	"github.com/bamboo-bft/bamboo/internal/crypto"
	"github.com/bamboo-bft/bamboo/internal/network"
	"github.com/bamboo-bft/bamboo/internal/protocol/hotstuff"
	"github.com/bamboo-bft/bamboo/internal/safety"
	"github.com/bamboo-bft/bamboo/internal/types"
	"github.com/bamboo-bft/bamboo/internal/wal"
)

// walFixture is one un-started replica (the highest ID) on a switch
// whose other slots are raw endpoints, optionally wired to a safety
// WAL — the direct-drive shape of syncFixture, for vote-level tests.
type walFixture struct {
	n      *Node
	scheme crypto.Scheme
	peers  map[types.NodeID]*network.Endpoint
}

func newWALFixture(t *testing.T, cfg config.Config, w *wal.WAL) *walFixture {
	t.Helper()
	sw := network.NewSwitch(nil)
	t.Cleanup(sw.Close)
	peers := make(map[types.NodeID]*network.Endpoint, cfg.N)
	var self network.Transport
	for i := 1; i <= cfg.N; i++ {
		ep, err := sw.Join(types.NodeID(i))
		if err != nil {
			t.Fatal(err)
		}
		if i == cfg.N {
			self = ep
		} else {
			peers[types.NodeID(i)] = ep
		}
	}
	scheme, err := crypto.NewScheme(cfg.CryptoScheme, cfg.N, cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	n := NewNode(types.NodeID(cfg.N), cfg, hotstuff.New, self, scheme, Options{WAL: w})
	return &walFixture{n: n, scheme: scheme, peers: peers}
}

// signedBlock builds a view-1 proposal from leader 1 with the given
// payload marker, properly signed — two different markers give two
// conflicting blocks a crashed replica could be tricked into voting
// for twice.
func (fx *walFixture) signedBlock(t *testing.T, marker byte) *types.Block {
	t.Helper()
	b := safety.BuildBlock(1, 1, types.GenesisQC(), []types.Transaction{{
		ID:      types.TxID{Client: 900, Seq: uint64(marker)},
		Command: []byte{marker},
	}})
	sig, err := fx.scheme.Sign(1, types.SigningDigest(1, b.ID()))
	if err != nil {
		t.Fatal(err)
	}
	b.Sig = sig
	return b
}

// drainVotes empties the view-2 leader's inbox and returns the block
// IDs this replica voted for.
func (fx *walFixture) drainVotes() []types.Hash {
	var got []types.Hash
	for {
		select {
		case env := <-fx.peers[2].Inbox():
			if m, ok := env.Msg.(types.VoteMsg); ok {
				got = append(got, m.Vote.BlockID)
			}
		default:
			return got
		}
	}
}

// TestWALPreventsAmnesiaEquivocation is the regression test for the
// amnesia-equivocation window: a replica votes at view 1, is SIGKILLed
// (modelled as a fresh node over the same WAL file), and is offered a
// CONFLICTING view-1 proposal after restart. With the WAL the restored
// lvView forbids the second signature; the control run without a WAL
// shows the window this closes — the reborn replica happily signs both
// blocks, which is Byzantine equivocation produced by a crash fault.
func TestWALPreventsAmnesiaEquivocation(t *testing.T) {
	cfg := syncTestCfg()
	path := filepath.Join(t.TempDir(), "safety.wal")
	w, err := wal.OpenNoSync(path)
	if err != nil {
		t.Fatal(err)
	}

	fx := newWALFixture(t, cfg, w)
	first := fx.signedBlock(t, 0x01)
	fx.n.onProposal(1, types.ProposalMsg{Block: first}, true)
	if votes := fx.drainVotes(); len(votes) != 1 || votes[0] != first.ID() {
		t.Fatalf("votes before the crash = %v, want exactly one for %s", votes, first.ID())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Crash and restart: a new node with empty memory, same WAL file.
	w2, err := wal.OpenNoSync(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	fx2 := newWALFixture(t, cfg, w2)
	fx2.n.restoreSafety()
	if ds := fx2.n.rules.DurableState(); ds.LastVoted != 1 {
		t.Fatalf("restored lvView = %d, want 1", ds.LastVoted)
	}
	conflicting := fx2.signedBlock(t, 0x02)
	fx2.n.onProposal(1, types.ProposalMsg{Block: conflicting}, true)
	if votes := fx2.drainVotes(); len(votes) != 0 {
		t.Fatalf("restarted replica voted again in view 1: %v", votes)
	}

	// Control: the same crash without a WAL. The reborn replica has
	// forgotten its view-1 signature and signs the conflicting block —
	// the exact equivocation the WAL exists to prevent.
	ctl := newWALFixture(t, cfg, nil)
	ctl.n.onProposal(1, types.ProposalMsg{Block: first}, true)
	reborn := newWALFixture(t, cfg, nil)
	reborn.n.onProposal(1, types.ProposalMsg{Block: conflicting}, true)
	if votes := reborn.drainVotes(); len(votes) != 1 || votes[0] != conflicting.ID() {
		t.Fatalf("control without WAL did not double-vote (votes %v) — the window this test pins is gone", votes)
	}
}

// TestWALRestoreRejoinsAtPersistedView: the pacemaker rejoins at the
// record's current view, so no view the pre-crash process could have
// signed in is ever re-entered.
func TestWALRestoreRejoinsAtPersistedView(t *testing.T) {
	cfg := syncTestCfg()
	path := filepath.Join(t.TempDir(), "safety.wal")
	w, err := wal.OpenNoSync(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(wal.Record{CurView: 9, LastVoted: 8, LastTimeout: 7}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w2, err := wal.OpenNoSync(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	fx := newWALFixture(t, cfg, w2)
	fx.n.restoreSafety()
	if v := fx.n.pm.CurView(); v != 9 {
		t.Fatalf("rejoined at view %d, want the persisted view 9", v)
	}
	if fx.n.lastTimeoutView != 7 {
		t.Fatalf("timeout high-water mark %d, want 7", fx.n.lastTimeoutView)
	}
}

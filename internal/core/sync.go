package core

// sync.go is the deep catch-up path: ledger-backed state sync for a
// replica whose committed chain has fallen more than the forest keep
// window behind its peers. The per-block FetchMsg walk covers shallow
// gaps — a peer can serve any ancestor still inside its keep window —
// but under sustained load the committed chain outruns that window and
// the walk dead-ends on compacted history. Here the lagging replica
// instead requests contiguous height ranges; peers serve them from
// their persistent ledger (falling back to the forest for recent
// heights), and the requester verifies each batch as a certified chain
// anchored at its own committed head before fast-forwarding forest,
// state machine, and ledger through the normal commit machinery.

import (
	"time"

	"github.com/bamboo-bft/bamboo/internal/crypto"
	"github.com/bamboo-bft/bamboo/internal/types"
)

// syncBatchSize bounds the blocks in one SyncResponseMsg: large enough
// to amortize a round trip over many heights, small enough to keep one
// response's verification from monopolizing the event loop.
const syncBatchSize = 64

// syncHoldback is how many blocks at the end of a verified batch are
// NOT applied. Every applied block therefore has syncHoldback certified
// descendants inside the verified range — the evidence that keeps a
// Byzantine peer from feeding us a certified-but-abandoned suffix near
// the tip of its claimed chain. Three matches the deepest commit rule
// among the built-in protocols (chained HotStuff's three-chain): a
// conflicting certified two-chain can legitimately exist there (it is
// exactly what the third link rules out), so two descendants would be
// lock-grade, not commit-grade. The held-back heights are re-requested
// next round or recovered through the live fetch path.
const syncHoldback = 3

// syncRetryEvent re-checks a catch-up round that may have stalled
// (crashed, partitioned, or Byzantine-silent serving peer). epoch
// invalidates timers from an earlier catch-up episode.
type syncRetryEvent struct {
	epoch uint64
}

// syncRetryInterval is how long a round may stall before the request
// is re-sent to a rotated peer.
func (n *Node) syncRetryInterval() time.Duration {
	d := 2 * n.cfg.Timeout
	if d < 50*time.Millisecond {
		d = 50 * time.Millisecond
	}
	return d
}

// maybeStartSync enters catch-up mode when an unattachable proposal's
// certificate shows the chain has moved more than a keep window past
// this replica's committed view — the point where the FetchMsg walk is
// doomed, because the ancestors it would fetch are already compacted
// out of every peer's forest. Views advance at least as fast as
// heights, so a view gap below the window can never hide a height gap
// beyond it; a view gap inflated by timeout churn merely triggers a
// sync round that terminates immediately.
func (n *Node) maybeStartSync(from types.NodeID, b *types.Block) {
	if n.syncing || from == n.id || b.QC == nil {
		return
	}
	headView := n.forest.CommittedHead().View
	if b.QC.View <= headView+types.View(n.forest.KeepWindow()) {
		return
	}
	n.syncing = true
	n.syncTarget = from
	n.syncEpoch++
	n.syncLastHeight = n.forest.CommittedHeight()
	n.sendSyncRequest()
	n.armSyncRetry()
	n.publishStatus()
}

// sendSyncRequest asks the current target for everything above our
// committed head.
func (n *Node) sendSyncRequest() {
	n.pipeline.OnSyncRequested()
	n.net.Send(n.syncTarget, types.SyncRequestMsg{From: n.forest.CommittedHeight() + 1})
}

// armSyncRetry schedules the stall check for the current episode.
func (n *Node) armSyncRetry() {
	epoch := n.syncEpoch
	time.AfterFunc(n.syncRetryInterval(), func() {
		select {
		case n.events <- syncRetryEvent{epoch: epoch}:
		case <-n.stopCh:
		}
	})
}

// onSyncRetry fires on the stall timer. It first re-checks the
// episode's premise: once the committed head's view is back within a
// keep window of the live view, the shallow fetch path covers the
// remainder and catch-up ends — this also retires false-positive
// episodes started by timeout-churned view gaps, and episodes whose
// final "you are caught up" response was lost. Otherwise, a round that
// gained no height means the serving peer is gone (or hostile) and
// the request is re-sent to the next replica in ID order.
func (n *Node) onSyncRetry(ev syncRetryEvent) {
	if !n.syncing || ev.epoch != n.syncEpoch {
		return
	}
	headView := n.forest.CommittedHead().View
	if n.pm.CurView() <= headView+types.View(n.forest.KeepWindow()) {
		n.endSync()
		return
	}
	h := n.forest.CommittedHeight()
	if h == n.syncLastHeight {
		n.rotateSyncTarget()
		n.sendSyncRequest()
	}
	n.syncLastHeight = h
	n.armSyncRetry()
}

// rotateSyncTarget moves to the next replica, skipping this one.
func (n *Node) rotateSyncTarget() {
	next := n.syncTarget%types.NodeID(n.cfg.N) + 1
	if next == n.id {
		next = next%types.NodeID(n.cfg.N) + 1
	}
	n.syncTarget = next
}

// endSync leaves catch-up mode; the live proposal/fetch path covers
// whatever remains (the residual gap is within the keep window).
func (n *Node) endSync() {
	n.syncing = false
	n.publishStatus()
}

// onSyncRequest serves a ranged catch-up request from the persistent
// ledger, falling back to the forest for heights the ledger has not
// flushed yet (the commit-apply stage appends asynchronously). The
// response is best-effort and contiguous: if neither source holds some
// height, the range is cut short and the requester simply asks again
// from wherever it lands.
func (n *Node) onSyncRequest(from types.NodeID, m types.SyncRequestMsg) {
	if from == n.id {
		return
	}
	committed := n.forest.CommittedHeight()
	if m.From == 0 || m.From > committed {
		// Nothing to serve — answer with our head so a requester that
		// has caught up can conclude its episode.
		n.net.Send(from, types.SyncResponseMsg{From: m.From, Head: committed})
		return
	}
	to := m.To
	if to == 0 || to > committed {
		to = committed
	}
	if to < m.From {
		return // inverted range: nothing to serve
	}
	if max := m.From + syncBatchSize - 1; to > max {
		to = max
	}
	blocks := make([]*types.Block, 0, to-m.From+1)
	h := m.From
	if led := n.opts.Ledger; led != nil {
		if lh := led.Height(); lh >= h {
			end := to
			if end > lh {
				end = lh
			}
			if bs, err := led.ReadRange(h, end); err == nil {
				for _, b := range bs {
					// Serve a ledger block only if it IS this run's
					// committed block at that height: a ledger file
					// carried over from an earlier deployment holds a
					// different chain, and handing it out would make
					// every requester burn a full batch verification
					// before rejecting us.
					if want, ok := n.forest.CommittedHash(h); !ok || want != b.ID() {
						break
					}
					blocks = append(blocks, b)
					h++
				}
			}
		}
	}
	for ; h <= to; h++ {
		hash, ok := n.forest.CommittedHash(h)
		if !ok {
			break
		}
		b, ok := n.forest.Block(hash)
		if !ok {
			break // compacted below the window and not yet in the ledger
		}
		blocks = append(blocks, b)
	}
	if len(blocks) == 0 {
		return
	}
	n.pipeline.OnSyncServed()
	n.net.Send(from, types.SyncResponseMsg{From: m.From, Blocks: blocks, Head: committed})
}

// onSyncResponse verifies and applies one catch-up batch. The whole
// range is checked before any state changes: every block must extend
// the previous one by parent hash AND carry a valid quorum certificate
// for it, anchored at this replica's committed head. Unsolicited
// responses, responses from the wrong peer, mis-ranged responses, and
// tampered blocks are all rejected without touching forest or store.
func (n *Node) onSyncResponse(from types.NodeID, m types.SyncResponseMsg) {
	if !n.syncing || from != n.syncTarget {
		n.pipeline.OnSyncRejected()
		return
	}
	before := n.forest.CommittedHeight()
	expected := before + 1
	if m.From > expected {
		// A range starting above our next height cannot anchor at the
		// committed head — there is nothing to verify it against.
		n.pipeline.OnSyncRejected()
		return
	}
	if len(m.Blocks) == 0 {
		if m.Head <= before {
			n.endSync()
		}
		return
	}
	if len(m.Blocks) > syncBatchSize {
		n.pipeline.OnSyncRejected()
		return
	}
	// The committed head may have moved between request and response
	// (the post-heal backlog drains concurrently with the first sync
	// round); skip the part of the range we already hold and verify
	// the remainder anchored at the head we have now.
	skip := int(expected - m.From)
	if skip >= len(m.Blocks) {
		// Entirely stale — not hostile, just raced; the reply to our
		// next request will start where we are now.
		return
	}
	blocks := m.Blocks[skip:]
	if !n.verifySyncChain(blocks) {
		n.pipeline.OnSyncRejected()
		// The target lied or is serving garbage; rotate away from it
		// rather than trusting its next reply.
		n.rotateSyncTarget()
		return
	}
	applyCount := len(blocks) - syncHoldback
	if applyCount <= 0 {
		// The gap is already within the holdback margin: the live
		// fetch path finishes from here.
		n.endSync()
		return
	}
	for i := 0; i < applyCount; i++ {
		b := blocks[i]
		if !n.forest.Contains(b.ID()) {
			attached, err := n.forest.Add(b)
			if err != nil || len(attached) == 0 {
				// Cannot happen for a verified contiguous range, but
				// never loop on a forest refusal.
				n.endSync()
				return
			}
			for _, ab := range attached {
				n.scrubPayload(ab)
				abID := ab.ID()
				if qc, ok := n.pendingQCs[abID]; ok {
					delete(n.pendingQCs, abID)
					n.handleQC(qc)
				}
			}
		}
		// The block's own certificate certifies its parent: ride it
		// through the normal path so the forest marks certification,
		// the protocol rules see the QC, and the pacemaker view
		// fast-forwards toward the live chain.
		n.handleQC(b.QC)
	}
	// The first held-back block's certificate covers the applied tip.
	n.handleQC(blocks[applyCount].QC)
	n.commit(blocks[applyCount-1])
	if gained := n.forest.CommittedHeight() - before; gained > 0 {
		n.pipeline.OnSyncApplied(gained)
	}
	n.syncLastHeight = n.forest.CommittedHeight()
	if m.Head > n.syncLastHeight+syncHoldback {
		n.sendSyncRequest()
		return
	}
	n.endSync()
}

// verifySyncChain checks a response range as a certified chain
// anchored at the committed head: contiguous parent links, each
// certificate naming the predecessor, and every certificate carrying a
// verified quorum of signatures. A view-0 ("genesis") certificate is
// implicit-valid only for the real genesis block — anywhere else it is
// a forgery that skips signature checks.
func (n *Node) verifySyncChain(blocks []*types.Block) bool {
	genesisID := types.Genesis().ID()
	prevID := n.forest.CommittedHead().ID()
	quorum := n.cfg.Quorum()
	for _, b := range blocks {
		if b == nil || b.QC == nil || b.Parent != prevID || b.QC.BlockID != prevID {
			return false
		}
		if b.QC.IsGenesis() && prevID != genesisID {
			return false
		}
		if err := crypto.VerifyQC(n.scheme, b.QC, quorum); err != nil {
			return false
		}
		prevID = b.ID()
	}
	return true
}

package core

// sync.go is the deep catch-up path: one episode state machine for a
// replica whose committed chain has fallen more than the forest keep
// window behind its peers. The per-block FetchMsg walk covers shallow
// gaps — a peer can serve any ancestor still inside its keep window —
// but under sustained load the committed chain outruns that window and
// the walk dead-ends on compacted history.
//
// An episode moves through up to three phases, sharing one stall
// timer, one serving-peer rotation, and one termination premise:
//
//	blocks    — stream contiguous committed-height ranges from the
//	            target's ledger, verify each batch as a certified
//	            chain anchored at the own committed head (with a
//	            3-block holdback), and fast-forward through the
//	            normal commit machinery.
//	manifests — entered when the target's ledger prefix is compacted
//	            above our gap (its SyncResponseMsg.Floor outruns us):
//	            collect snapshot manifests from every peer and wait
//	            for f+1 to agree on {height, block, state digest},
//	            which at least one honest replica must be part of.
//	chunks    — stream the agreed snapshot's state chunks, each
//	            verified against the manifest's chunk digests on
//	            arrival, install the state machine at the snapshot
//	            height, then drop back to the blocks phase for the
//	            suffix.
//
// Every phase re-checks the same premise on its stall timer: once the
// committed head's view is back within a keep window of the live
// view, the live fetch path covers the remainder and the episode
// ends.

import (
	"crypto/sha256"
	"time"

	"github.com/bamboo-bft/bamboo/internal/config"
	"github.com/bamboo-bft/bamboo/internal/crypto"
	"github.com/bamboo-bft/bamboo/internal/snapshot"
	"github.com/bamboo-bft/bamboo/internal/types"
)

// syncBatchSize bounds the blocks in one SyncResponseMsg: large enough
// to amortize a round trip over many heights, small enough to keep one
// response's verification from monopolizing the event loop.
const syncBatchSize = 64

// syncHoldback is how many blocks at the end of a verified batch are
// NOT applied. Every applied block therefore has syncHoldback certified
// descendants inside the verified range — the evidence that keeps a
// Byzantine peer from feeding us a certified-but-abandoned suffix near
// the tip of its claimed chain. Three matches the deepest commit rule
// among the built-in protocols (chained HotStuff's three-chain): a
// conflicting certified two-chain can legitimately exist there (it is
// exactly what the third link rules out), so two descendants would be
// lock-grade, not commit-grade. The held-back heights are re-requested
// next round or recovered through the live fetch path.
const syncHoldback = 3

// chunkStallLimit is how many consecutive stalled chunk rounds the
// episode tolerates before renegotiating the manifest: if every
// agreeing peer has gone quiet (or compacted on to a newer snapshot),
// rotating inside the stale agreement set cannot make progress.
const chunkStallLimit = 2

// manifestStallLimit is how many consecutive stalled manifest rounds
// the episode tolerates before dropping back to the blocks phase with
// a rotated target. The manifests phase is entered on a peer's word —
// its SyncResponseMsg.Floor — and that word can be a lie: a Byzantine
// target forging a floor in a cluster where no honest replica has a
// snapshot would otherwise park the episode polling for f+1 agreement
// that can never form.
const manifestStallLimit = 2

// syncState names the phase of a catch-up episode.
type syncState int

const (
	// syncIdle: no episode running.
	syncIdle syncState = iota
	// syncBlocks: streaming ranged committed-block batches.
	syncBlocks
	// syncManifests: collecting snapshot manifests for the f+1
	// cross-check.
	syncManifests
	// syncChunks: streaming the agreed snapshot's state chunks.
	syncChunks
)

// syncEpisode is the state of one deep catch-up episode. A single
// episode may pass through all three phases (blocks → manifests →
// chunks → blocks again for the suffix); epoch invalidates stall
// timers armed by earlier phases or earlier episodes.
type syncEpisode struct {
	state syncState
	// target is the peer serving the blocks phase.
	target types.NodeID
	epoch  uint64
	// lastHeight is the committed height at the previous stall check
	// (blocks-phase progress marker).
	lastHeight uint64
	// manifests collects one manifest per peer during the manifests
	// phase; manifestSeen is the count at the previous stall check
	// and manifestStalls the consecutive checks without progress.
	manifests      map[types.NodeID]*types.SnapshotManifestMsg
	manifestSeen   int
	manifestStalls int
	// chosen is the f+1-agreed manifest being streamed; agree lists
	// the peers that vouched for it (the chunk-phase rotation set)
	// and chunkSrc the one currently serving.
	chosen   *types.SnapshotManifestMsg
	agree    []types.NodeID
	chunkSrc types.NodeID
	// buf accumulates verified chunks; nextChunk is the next index
	// wanted, chunkSeen the index at the previous stall check, and
	// chunkStalls the consecutive stalled checks.
	buf         []byte
	nextChunk   uint32
	chunkSeen   uint32
	chunkStalls int
}

// syncRetryEvent re-checks a catch-up round that may have stalled
// (crashed, partitioned, or Byzantine-silent serving peer). epoch
// invalidates timers from an earlier phase or episode.
type syncRetryEvent struct {
	epoch uint64
}

// syncRetryInterval is how long a round may stall before the request
// is re-sent to a rotated peer.
func (n *Node) syncRetryInterval() time.Duration {
	d := 2 * n.cfg.Timeout
	if d < 50*time.Millisecond {
		d = 50 * time.Millisecond
	}
	return d
}

// maybeStartSync enters catch-up mode when an unattachable proposal's
// certificate shows the chain has moved more than a keep window past
// this replica's committed view — the point where the FetchMsg walk is
// doomed, because the ancestors it would fetch are already compacted
// out of every peer's forest. Views advance at least as fast as
// heights, so a view gap below the window can never hide a height gap
// beyond it; a view gap inflated by timeout churn merely triggers a
// sync round that terminates immediately.
func (n *Node) maybeStartSync(from types.NodeID, b *types.Block) {
	if n.catchup.state != syncIdle || from == n.id || b.QC == nil {
		return
	}
	headView := n.forest.CommittedHead().View
	if b.QC.View <= headView+types.View(n.forest.KeepWindow()) {
		return
	}
	n.catchup.state = syncBlocks
	n.catchup.target = from
	n.catchup.epoch++
	n.catchup.lastHeight = n.forest.CommittedHeight()
	n.trace.OnSyncStart(from)
	n.sendSyncRequest()
	n.armSyncRetry()
	n.publishStatus()
}

// sendSyncRequest asks the current target for everything above our
// committed head.
func (n *Node) sendSyncRequest() {
	n.pipeline.OnSyncRequested()
	n.net.Send(n.catchup.target, types.SyncRequestMsg{From: n.forest.CommittedHeight() + 1})
}

// armSyncRetry schedules the stall check for the current phase.
func (n *Node) armSyncRetry() {
	epoch := n.catchup.epoch
	time.AfterFunc(n.syncRetryInterval(), func() {
		select {
		case n.events <- syncRetryEvent{epoch: epoch}:
		case <-n.stopCh:
		}
	})
}

// onSyncRetry fires on the stall timer. It first re-checks the
// episode's premise: once the committed head's view is back within a
// keep window of the live view, the shallow fetch path covers the
// remainder and catch-up ends — this also retires false-positive
// episodes started by timeout-churned view gaps, and episodes whose
// final "you are caught up" response was lost. Otherwise a phase that
// made no progress since the last check rotates away from its serving
// peer and re-issues its request.
func (n *Node) onSyncRetry(ev syncRetryEvent) {
	ep := &n.catchup
	if ep.state == syncIdle || ev.epoch != ep.epoch {
		return
	}
	headView := n.forest.CommittedHead().View
	if n.pm.CurView() <= headView+types.View(n.forest.KeepWindow()) {
		n.endSync()
		return
	}
	switch ep.state {
	case syncBlocks:
		h := n.forest.CommittedHeight()
		if h == ep.lastHeight {
			n.rotateSyncTarget()
			n.sendSyncRequest()
		}
		ep.lastHeight = h
	case syncManifests:
		if len(ep.manifests) == ep.manifestSeen {
			ep.manifestStalls++
			if ep.manifestStalls > manifestStallLimit {
				// No agreement is forming — possibly because the
				// floor that sent us here was forged and no snapshots
				// exist. Go back to streaming blocks from the next
				// peer; an honest floor will route us here again.
				ep.state = syncBlocks
				ep.epoch++
				ep.lastHeight = n.forest.CommittedHeight()
				ep.manifests = nil
				n.rotateSyncTarget()
				n.sendSyncRequest()
				n.armSyncRetry()
				return
			}
			n.requestManifests()
		} else {
			ep.manifestStalls = 0
		}
		ep.manifestSeen = len(ep.manifests)
	case syncChunks:
		if ep.nextChunk == ep.chunkSeen {
			ep.chunkStalls++
			if ep.chunkStalls > chunkStallLimit {
				// Every agreeing peer is quiet or has moved on to a
				// newer snapshot: renegotiate the manifest (which
				// arms its own retry under a fresh epoch).
				n.beginManifestPhase()
				return
			}
			n.rotateChunkSrc()
			n.requestChunk()
		} else {
			ep.chunkStalls = 0
		}
		ep.chunkSeen = ep.nextChunk
	}
	n.armSyncRetry()
}

// rotateSyncTarget moves to the next replica, skipping this one.
func (n *Node) rotateSyncTarget() {
	next := n.catchup.target%types.NodeID(n.cfg.N) + 1
	if next == n.id {
		next = next%types.NodeID(n.cfg.N) + 1
	}
	n.catchup.target = next
}

// endSync leaves catch-up mode; the live proposal/fetch path covers
// whatever remains (the residual gap is within the keep window). The
// epoch bump kills any stall timer still in flight.
func (n *Node) endSync() {
	n.catchup = syncEpisode{epoch: n.catchup.epoch + 1}
	n.trace.OnSyncEnd()
	n.publishStatus()
}

// onSyncRequest serves a ranged catch-up request from the persistent
// ledger, falling back to the forest for heights the ledger has not
// flushed yet (the commit-apply stage appends asynchronously). The
// response is best-effort and contiguous: if neither source holds some
// height, the range is cut short and the requester simply asks again
// from wherever it lands. A request starting below the ledger's
// compacted floor cannot be served at all — the empty response then
// carries the floor, which is the requester's cue to fall back to
// snapshot transfer.
func (n *Node) onSyncRequest(from types.NodeID, m types.SyncRequestMsg) {
	if from == n.id {
		return
	}
	committed := n.forest.CommittedHeight()
	var floor uint64
	if led := n.opts.Ledger; led != nil {
		floor = led.Base() + 1
	}
	if m.From == 0 || m.From > committed {
		// Nothing to serve — answer with our head so a requester that
		// has caught up can conclude its episode.
		n.net.Send(from, types.SyncResponseMsg{From: m.From, Head: committed, Floor: floor})
		return
	}
	to := m.To
	if to == 0 || to > committed {
		to = committed
	}
	if to < m.From {
		return // inverted range: nothing to serve
	}
	if max := m.From + syncBatchSize - 1; to > max {
		to = max
	}
	blocks := make([]*types.Block, 0, to-m.From+1)
	h := m.From
	if led := n.opts.Ledger; led != nil {
		if lh := led.Height(); lh >= h && h > led.Base() {
			end := to
			if end > lh {
				end = lh
			}
			if bs, err := led.ReadRange(h, end); err == nil {
				for _, b := range bs {
					// Serve a ledger block only if it IS this run's
					// committed block at that height: a ledger file
					// carried over from an earlier deployment holds a
					// different chain, and handing it out would make
					// every requester burn a full batch verification
					// before rejecting us.
					if want, ok := n.forest.CommittedHash(h); !ok || want != b.ID() {
						break
					}
					blocks = append(blocks, b)
					h++
				}
			}
		}
	}
	for ; h <= to; h++ {
		hash, ok := n.forest.CommittedHash(h)
		if !ok {
			break
		}
		b, ok := n.forest.Block(hash)
		if !ok {
			break // compacted below the window and not yet in the ledger
		}
		if len(b.Payload) == 0 && !b.PayloadDigest().IsZero() {
			// A payload-stripped header — the block a snapshot install
			// planted at its height. Its transactions live inside the
			// snapshot state, not here; serving the header would hand
			// the requester a block it cannot execute.
			break
		}
		blocks = append(blocks, b)
	}
	if len(blocks) == 0 {
		if floor > 1 && m.From < floor {
			// The requested prefix was compacted under a snapshot:
			// point the requester at the snapshot path.
			n.net.Send(from, types.SyncResponseMsg{From: m.From, Head: committed, Floor: floor})
		}
		return
	}
	n.pipeline.OnSyncServed()
	n.net.Send(from, types.SyncResponseMsg{From: m.From, Blocks: blocks, Head: committed, Floor: floor})
}

// onSyncResponse verifies and applies one catch-up batch. The whole
// range is checked before any state changes: every block must extend
// the previous one by parent hash AND carry a valid quorum certificate
// for it, anchored at this replica's committed head. Unsolicited
// responses, responses from the wrong peer, mis-ranged responses, and
// tampered blocks are all rejected without touching forest or store.
// An empty response whose floor outruns our gap switches the episode
// to the snapshot path.
func (n *Node) onSyncResponse(from types.NodeID, m types.SyncResponseMsg) {
	if n.catchup.state != syncBlocks || from != n.catchup.target {
		n.pipeline.OnSyncRejected()
		return
	}
	before := n.forest.CommittedHeight()
	expected := before + 1
	if m.From > expected {
		// A range starting above our next height cannot anchor at the
		// committed head — there is nothing to verify it against.
		n.pipeline.OnSyncRejected()
		return
	}
	if len(m.Blocks) == 0 {
		if m.Head <= before {
			n.endSync()
			return
		}
		if m.Floor > expected {
			// The peer is ahead but its retained ledger prefix starts
			// past our gap: block-by-block catch-up cannot bridge it.
			n.beginSnapshotFetch()
		}
		return
	}
	if len(m.Blocks) > syncBatchSize {
		n.pipeline.OnSyncRejected()
		return
	}
	// The committed head may have moved between request and response
	// (the post-heal backlog drains concurrently with the first sync
	// round); skip the part of the range we already hold and verify
	// the remainder anchored at the head we have now.
	skip := int(expected - m.From)
	if skip >= len(m.Blocks) {
		// Entirely stale — not hostile, just raced; the reply to our
		// next request will start where we are now.
		return
	}
	blocks := m.Blocks[skip:]
	if !n.verifySyncChain(blocks) {
		n.pipeline.OnSyncRejected()
		// The target lied or is serving garbage; rotate away from it
		// rather than trusting its next reply.
		n.rotateSyncTarget()
		return
	}
	applyCount := len(blocks) - syncHoldback
	if applyCount <= 0 {
		// The gap is already within the holdback margin: the live
		// fetch path finishes from here.
		n.endSync()
		return
	}
	for i := 0; i < applyCount; i++ {
		b := blocks[i]
		if !n.forest.Contains(b.ID()) {
			attached, err := n.forest.Add(b)
			if err != nil || len(attached) == 0 {
				// Cannot happen for a verified contiguous range, but
				// never loop on a forest refusal.
				n.endSync()
				return
			}
			for _, ab := range attached {
				n.scrubPayload(ab)
				abID := ab.ID()
				if qc, ok := n.pendingQCs[abID]; ok {
					delete(n.pendingQCs, abID)
					n.handleQC(qc)
				}
			}
		}
		// The block's own certificate certifies its parent: ride it
		// through the normal path so the forest marks certification,
		// the protocol rules see the QC, and the pacemaker view
		// fast-forwards toward the live chain.
		n.handleQC(b.QC)
	}
	// The first held-back block's certificate covers the applied tip.
	n.handleQC(blocks[applyCount].QC)
	n.commit(blocks[applyCount-1])
	if gained := n.forest.CommittedHeight() - before; gained > 0 {
		n.pipeline.OnSyncApplied(gained)
	}
	n.catchup.lastHeight = n.forest.CommittedHeight()
	if m.Head > n.catchup.lastHeight+syncHoldback {
		n.sendSyncRequest()
		return
	}
	n.endSync()
}

// verifySyncChain checks a response range as a certified chain
// anchored at the committed head: contiguous parent links, each
// certificate naming the predecessor, every certificate carrying a
// verified quorum of signatures, and every block actually CARRYING
// the payload its identity commits to. The last check matters because
// a block's ID covers the payload only through its digest: a stripped
// header (or a header with a substituted payload) has a perfectly
// valid certificate chain, and without the binding check a sync
// requester would commit and execute the wrong — possibly empty —
// transaction list, diverging state behind identical block hashes. A
// view-0 ("genesis") certificate is implicit-valid only for the real
// genesis block — anywhere else it is a forgery that skips signature
// checks.
func (n *Node) verifySyncChain(blocks []*types.Block) bool {
	genesisID := types.Genesis().ID()
	prevID := n.forest.CommittedHead().ID()
	quorum := n.cfg.Quorum()
	for _, b := range blocks {
		if b == nil || b.QC == nil || b.Parent != prevID || b.QC.BlockID != prevID {
			return false
		}
		if b.QC.IsGenesis() && prevID != genesisID {
			return false
		}
		if len(b.Payload) > 0 {
			if types.DigestPayload(b.Payload) != b.PayloadDigest() {
				return false
			}
		} else if !b.PayloadDigest().IsZero() {
			return false // payload withheld: a stripped header
		}
		if err := crypto.VerifyQC(n.scheme, b.QC, quorum); err != nil {
			return false
		}
		prevID = b.ID()
	}
	return true
}

// beginSnapshotFetch switches the episode to the snapshot path. A
// replica without a snapshottable state machine cannot install one —
// it retires the episode and stays behind (the control knob for
// experiments that want the old O(chain) behaviour measurable). A
// replica with a ledger but no snapshot store refuses too: installing
// would force the ledger to drop its history with no durable
// replacement to restart from.
func (n *Node) beginSnapshotFetch() {
	if n.opts.State == nil || (n.opts.Ledger != nil && n.opts.Snapshots == nil) {
		n.endSync()
		return
	}
	n.beginManifestPhase()
}

// beginManifestPhase (re)starts manifest collection: ask every peer
// for its latest snapshot manifest and wait for f+1 agreement.
func (n *Node) beginManifestPhase() {
	ep := &n.catchup
	ep.state = syncManifests
	ep.epoch++
	ep.manifests = make(map[types.NodeID]*types.SnapshotManifestMsg, n.cfg.N)
	ep.manifestSeen = 0
	ep.manifestStalls = 0
	ep.chosen, ep.agree, ep.buf = nil, nil, nil
	ep.nextChunk, ep.chunkSeen, ep.chunkStalls = 0, 0, 0
	n.requestManifests()
	n.armSyncRetry()
	n.publishStatus()
}

// requestManifests polls every peer — including ones that already
// answered, whose refreshed manifests may be what finally lines f+1
// of them up on one snapshot.
func (n *Node) requestManifests() {
	for i := 1; i <= n.cfg.N; i++ {
		id := types.NodeID(i)
		if id == n.id {
			continue
		}
		n.net.Send(id, types.SnapshotRequestMsg{})
	}
}

// onSnapshotManifest records one peer's manifest and, once f+1 peers
// agree on the same snapshot, starts streaming chunks. A newer
// manifest from a peer that already answered replaces its old one —
// peers keep snapshotting while we negotiate, and holding every peer
// to its first answer could wedge the phase on a transient height
// skew forever. Manifests failing structural or certificate checks
// never count toward agreement — a forged height or digest needs f+1
// colluding replicas, which the fault model rules out.
func (n *Node) onSnapshotManifest(from types.NodeID, m types.SnapshotManifestMsg) {
	ep := &n.catchup
	if ep.state != syncManifests || from == n.id {
		return
	}
	if !n.validManifest(&m) {
		n.pipeline.OnSyncRejected()
		return
	}
	ep.manifests[from] = &m
	if pick, agree := n.manifestQuorum(); pick != nil {
		n.beginChunkPhase(pick, agree)
	}
}

// validManifest checks one manifest's internal consistency and its
// certificate: the snapshot must sit above our committed head, the
// certificate must name the snapshot block and carry a verified
// quorum of signatures, and the declared sizes must be within what
// the transfer path will actually accept.
func (n *Node) validManifest(m *types.SnapshotManifestMsg) bool {
	if m.Block == nil || m.QC == nil || m.Height == 0 {
		return false
	}
	if m.Height <= n.forest.CommittedHeight() {
		return false
	}
	if m.QC.BlockID != m.Block.ID() || m.QC.IsGenesis() {
		return false
	}
	if m.ChunkSize == 0 || m.ChunkSize > snapshot.MaxChunkSize || m.TotalSize > snapshot.MaxStateSize {
		return false
	}
	if snapshot.ChunkCount(m.TotalSize, m.ChunkSize) != len(m.ChunkDigests) {
		return false
	}
	return crypto.VerifyQC(n.scheme, m.QC, n.cfg.Quorum()) == nil
}

// manifestQuorum looks for f+1 collected manifests agreeing on the
// whole transfer description — height, block, state digest, AND the
// declared sizes and chunk digest list. Covering the transfer
// parameters matters: the chosen manifest is an arbitrary member of
// the agreeing group, so any parameter outside the agreement key
// would be a single (possibly Byzantine) peer's word — a forged
// TotalSize alone could pre-commit gigabytes of buffer or smuggle an
// empty payload past the chunk stream. Among agreeing groups the
// highest height wins (less suffix to stream). It returns the
// manifest to stream and the peers vouching for it, or nil.
func (n *Node) manifestQuorum() (*types.SnapshotManifestMsg, []types.NodeID) {
	need := config.MaxFaults(n.cfg.N) + 1
	type key struct {
		height    uint64
		blockID   types.Hash
		digest    types.Hash
		totalSize uint64
		chunkSize uint32
		chunks    types.Hash
	}
	keyOf := func(m *types.SnapshotManifestMsg) key {
		h := sha256.New()
		for _, d := range m.ChunkDigests {
			h.Write(d[:])
		}
		var chunks types.Hash
		copy(chunks[:], h.Sum(nil))
		return key{m.Height, m.Block.ID(), m.StateDigest, m.TotalSize, m.ChunkSize, chunks}
	}
	groups := make(map[key][]types.NodeID)
	for from, m := range n.catchup.manifests {
		k := keyOf(m)
		groups[k] = append(groups[k], from)
	}
	var bestKey key
	var bestPeers []types.NodeID
	for k, peers := range groups {
		if len(peers) >= need && k.height > bestKey.height {
			bestKey, bestPeers = k, peers
		}
	}
	if bestPeers == nil {
		return nil, nil
	}
	return n.catchup.manifests[bestPeers[0]], bestPeers
}

// beginChunkPhase starts streaming the agreed snapshot, preferring
// the blocks-phase target as the serving peer when it is part of the
// agreement (its ledger suffix is what we will need next).
func (n *Node) beginChunkPhase(m *types.SnapshotManifestMsg, agree []types.NodeID) {
	ep := &n.catchup
	ep.state = syncChunks
	ep.epoch++
	ep.chosen = m
	ep.agree = agree
	ep.chunkSrc = agree[0]
	for _, id := range agree {
		if id == ep.target {
			ep.chunkSrc = id
			break
		}
	}
	// Pre-size the buffer only modestly: TotalSize is f+1-vouched by
	// now, but there is no reason to pre-commit a large state's whole
	// footprint before a single chunk verified.
	bufCap := m.TotalSize
	if bufCap > 8<<20 {
		bufCap = 8 << 20
	}
	ep.buf = make([]byte, 0, bufCap)
	ep.nextChunk, ep.chunkSeen, ep.chunkStalls = 0, 0, 0
	if len(m.ChunkDigests) == 0 {
		// Empty state: nothing to stream — but the empty payload must
		// still hash to the agreed digest, exactly like a streamed
		// one (no install path skips the digest check).
		if snapshot.Digest(ep.buf) != m.StateDigest {
			n.pipeline.OnSyncRejected()
			n.beginManifestPhase()
			return
		}
		n.installSnapshot()
		return
	}
	n.requestChunk()
	n.armSyncRetry()
	n.publishStatus()
}

// requestChunk asks the current chunk source for the next chunk.
func (n *Node) requestChunk() {
	n.net.Send(n.catchup.chunkSrc,
		types.SnapshotRequestMsg{Height: n.catchup.chosen.Height, Chunk: n.catchup.nextChunk})
}

// rotateChunkSrc moves to the next peer of the agreement set.
func (n *Node) rotateChunkSrc() {
	ep := &n.catchup
	for i, id := range ep.agree {
		if id == ep.chunkSrc {
			ep.chunkSrc = ep.agree[(i+1)%len(ep.agree)]
			return
		}
	}
	ep.chunkSrc = ep.agree[0]
}

// onSnapshotChunk verifies one streamed chunk against the manifest:
// exact expected length and a matching per-chunk digest. A bad chunk
// rotates the serving peer and re-requests the same index; the final
// assembled payload must additionally hash to the f+1-agreed state
// digest, so even a manifest with forged chunk digests cannot install
// a wrong state.
func (n *Node) onSnapshotChunk(from types.NodeID, m types.SnapshotChunkMsg) {
	ep := &n.catchup
	if ep.state != syncChunks || from != ep.chunkSrc {
		n.pipeline.OnSyncRejected()
		return
	}
	man := ep.chosen
	if m.Height != man.Height || m.Chunk != ep.nextChunk {
		n.pipeline.OnSyncRejected()
		return
	}
	want := man.TotalSize - uint64(len(ep.buf))
	if want > uint64(man.ChunkSize) {
		want = uint64(man.ChunkSize)
	}
	if uint64(len(m.Data)) != want || snapshot.Digest(m.Data) != man.ChunkDigests[m.Chunk] {
		n.pipeline.OnSyncRejected()
		n.rotateChunkSrc()
		n.requestChunk()
		return
	}
	ep.buf = append(ep.buf, m.Data...)
	ep.nextChunk++
	if int(ep.nextChunk) < len(man.ChunkDigests) {
		n.requestChunk()
		return
	}
	if snapshot.Digest(ep.buf) != man.StateDigest {
		// Per-chunk digests were internally consistent but the whole
		// does not hash to the cross-checked state digest: the chunk
		// digest list itself was forged. Renegotiate from scratch.
		n.pipeline.OnSyncRejected()
		n.beginManifestPhase()
		return
	}
	n.installSnapshot()
}

// installSnapshot adopts the verified snapshot: the forest and the
// protocol state jump to the snapshot block on the event loop, while
// the state-machine restore, the ledger re-base, and the local
// snapshot save ride the ordered apply stage — behind any block still
// executing, ahead of every suffix block committed after this point.
// The episode then drops back to the blocks phase for the suffix.
func (n *Node) installSnapshot() {
	ep := &n.catchup
	man := ep.chosen
	snap := &snapshot.Snapshot{
		Height:      man.Height,
		Block:       man.Block,
		QC:          man.QC,
		StateDigest: man.StateDigest,
		Payload:     ep.buf,
	}
	n.adoptSnapshot(man.Block, man.QC, man.Height, man.StateDigest)
	if n.apply != nil {
		n.apply.enqueue(applyJob{install: snap})
	} else {
		n.applyInstall(snap)
	}
	n.pipeline.OnSnapshotInstalled()

	// Suffix: continue the blocks phase from the snapshot height,
	// served by the peer whose chunks we just verified.
	ep.state = syncBlocks
	ep.epoch++
	ep.target = ep.chunkSrc
	ep.lastHeight = n.forest.CommittedHeight()
	ep.manifests, ep.chosen, ep.agree, ep.buf = nil, nil, nil, nil
	n.sendSyncRequest()
	n.armSyncRetry()
	n.publishStatus()
}

package core

import (
	"path/filepath"
	"testing"

	"github.com/bamboo-bft/bamboo/internal/kvstore"
	"github.com/bamboo-bft/bamboo/internal/ledger"
	"github.com/bamboo-bft/bamboo/internal/snapshot"
	"github.com/bamboo-bft/bamboo/internal/types"
)

// buildManifest derives the manifest an honest peer would serve after
// snapshotting at `height` of the fixture's certified chain, plus the
// payload backing it. The certificate is the next block's embedded QC
// — exactly what the capture path anchors with.
func buildManifest(t *testing.T, fx *syncFixture, height int, chunkSize uint32) (types.SnapshotManifestMsg, []byte) {
	t.Helper()
	if height >= len(fx.chain) {
		t.Fatalf("manifest height %d needs a certifying successor inside the %d-block chain", height, len(fx.chain))
	}
	scratch := kvstore.New()
	for _, b := range fx.chain[:height] {
		scratch.Apply(b.Payload)
	}
	payload := scratch.SnapshotState()
	return types.SnapshotManifestMsg{
		Height:       uint64(height),
		Block:        fx.chain[height-1].StripPayload(),
		QC:           fx.chain[height].QC,
		StateDigest:  snapshot.Digest(payload),
		TotalSize:    uint64(len(payload)),
		ChunkSize:    chunkSize,
		ChunkDigests: snapshot.ChunkDigests(payload, chunkSize),
	}, payload
}

// triggerSnapshotPhase drives the fixture to manifest collection: a
// deep orphan starts the episode, and the target's floor response
// (its ledger compacted past our whole gap) flips it to the snapshot
// path. Asserts manifest requests went to every peer.
func triggerSnapshotPhase(t *testing.T, fx *syncFixture) {
	t.Helper()
	fx.triggerDeepSync(t, 1)
	fx.n.onSyncResponse(1, types.SyncResponseMsg{From: 1, Head: 40, Floor: 31})
	if fx.n.catchup.state != syncManifests {
		t.Fatalf("floor response left episode in state %d, want manifests", fx.n.catchup.state)
	}
	for id := types.NodeID(1); id <= 3; id++ {
		if !drainForSnapshotRequest(t, fx, id) {
			t.Fatalf("no manifest request reached peer %s", id)
		}
	}
}

// drainForSnapshotRequest empties a peer's inbox and reports whether
// a manifest request (zero height) arrived.
func drainForSnapshotRequest(t *testing.T, fx *syncFixture, id types.NodeID) bool {
	t.Helper()
	found := false
	for {
		select {
		case env := <-fx.peers[id].Inbox():
			if m, ok := env.Msg.(types.SnapshotRequestMsg); ok && m.Height == 0 {
				found = true
			}
		default:
			return found
		}
	}
}

// drainForChunkRequest empties a peer's inbox and returns the last
// chunk request seen there.
func drainForChunkRequest(t *testing.T, fx *syncFixture, id types.NodeID) (types.SnapshotRequestMsg, bool) {
	t.Helper()
	var req types.SnapshotRequestMsg
	found := false
	for {
		select {
		case env := <-fx.peers[id].Inbox():
			if m, ok := env.Msg.(types.SnapshotRequestMsg); ok && m.Height > 0 {
				req, found = m, true
			}
		default:
			return req, found
		}
	}
}

// serveChunks answers the node's chunk requests from `payload` as peer
// `from` until the node stops asking (install or rejection).
func serveChunks(t *testing.T, fx *syncFixture, from types.NodeID, m types.SnapshotManifestMsg, payload []byte) {
	t.Helper()
	for {
		if fx.n.catchup.state != syncChunks {
			return // installed (or rejected): leave follow-up traffic undrained
		}
		req, ok := drainForChunkRequest(t, fx, from)
		if !ok {
			return
		}
		fx.n.onSnapshotChunk(from, types.SnapshotChunkMsg{
			Height: req.Height,
			Chunk:  req.Chunk,
			Data:   snapshot.Chunk(payload, m.ChunkSize, req.Chunk),
		})
	}
}

// TestSnapshotInstallHappyPath: floor → manifests from f+1 peers →
// chunk stream → install at the snapshot height → ranged suffix. The
// state machine, forest, ledger, local snapshot store, and status
// surface all land on the snapshot.
func TestSnapshotInstallHappyPath(t *testing.T) {
	cfg := syncTestCfg()
	led, err := ledger.OpenBuffered(filepath.Join(t.TempDir(), "sync.ledger"))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = led.Close() }()
	fx := newSyncFixture(t, cfg, led)
	triggerSnapshotPhase(t, fx)

	// A small chunk size forces a multi-chunk stream.
	man, payload := buildManifest(t, fx, 30, 4)
	fx.n.onSnapshotManifest(1, man)
	if fx.n.catchup.state != syncChunks {
		// One manifest is below the f+1 threshold (f=1 at n=4).
		if fx.n.catchup.state != syncManifests {
			t.Fatalf("single manifest moved episode to state %d", fx.n.catchup.state)
		}
	} else {
		t.Fatal("single manifest reached agreement")
	}
	fx.n.onSnapshotManifest(2, man)
	if fx.n.catchup.state != syncChunks {
		t.Fatalf("f+1 agreeing manifests left state %d, want chunks", fx.n.catchup.state)
	}
	// The blocks-phase target is part of the agreement: it serves.
	if fx.n.catchup.chunkSrc != 1 {
		t.Fatalf("chunk source %s, want the episode target n1", fx.n.catchup.chunkSrc)
	}
	serveChunks(t, fx, 1, man, payload)

	if h := fx.n.forest.CommittedHeight(); h != 30 {
		t.Fatalf("committed height %d after install, want 30", h)
	}
	if fx.n.forest.CommittedHead().ID() != fx.chain[29].ID() {
		t.Fatal("committed head is not the snapshot block")
	}
	if got := fx.store.Applied(); got != 30 {
		t.Fatalf("state machine applied %d after install, want 30", got)
	}
	if led.Base() != 30 || led.Height() != 30 {
		t.Fatalf("ledger not re-based: base %d height %d", led.Base(), led.Height())
	}
	if snap, _, ok := fx.n.opts.Snapshots.Latest(); !ok || snap.Height != 30 {
		t.Fatal("installed snapshot not persisted locally")
	}
	p := fx.n.Pipeline().Snapshot()
	if p.SnapshotInstalls != 1 {
		t.Fatalf("SnapshotInstalls = %d, want 1", p.SnapshotInstalls)
	}
	st := fx.n.Status()
	if st.SnapshotHeight != 30 || st.SnapshotDigest != man.StateDigest {
		t.Fatalf("status snapshot fields wrong: %+v", st)
	}
	if !st.Syncing {
		t.Fatal("suffix phase must still report syncing")
	}
	// The episode dropped back to the blocks phase for the suffix.
	if got := fx.drainFor(t, 1); got.From != 31 {
		t.Fatalf("suffix request starts at %d, want 31", got.From)
	}
	fx.n.onSyncResponse(1, types.SyncResponseMsg{From: 31, Blocks: fx.chain[30:], Head: 40, Floor: 31})
	wantHeight := uint64(40 - syncHoldback)
	if h := fx.n.forest.CommittedHeight(); h != wantHeight {
		t.Fatalf("suffix advanced to %d, want %d", h, wantHeight)
	}
	if fx.store.Applied() != wantHeight {
		t.Fatalf("state machine at %d after suffix, want %d", fx.store.Applied(), wantHeight)
	}
	if fx.n.catchup.state != syncIdle {
		t.Fatal("episode still open after reaching the served head")
	}

	// The block planted at the install height is a payload-stripped
	// header — its transactions live in the snapshot state. Serving
	// it through block sync would hand a requester a block it cannot
	// execute; the server must answer with its floor instead, routing
	// the requester to the snapshot path.
	fx.n.onSyncRequest(2, types.SyncRequestMsg{From: 30, To: 30})
	resp := lastSyncResponse(t, fx.peers[2])
	if len(resp.Blocks) != 0 {
		t.Fatalf("stripped install-height block served: %d blocks", len(resp.Blocks))
	}
	if resp.Floor != 31 {
		t.Fatalf("floor reply = %d, want 31", resp.Floor)
	}
}

// TestSyncRejectsStrippedBlocks: a range containing a payload-less
// header whose identity commits to a payload must die in chain
// verification. The certificate chain around such a block is fully
// valid (the ID covers the payload only through its digest), so
// without the binding check the requester would commit the block and
// execute an empty transaction list — state divergence hidden behind
// matching block hashes.
func TestSyncRejectsStrippedBlocks(t *testing.T) {
	fx := newSyncFixture(t, syncTestCfg(), nil)
	fx.triggerDeepSync(t, 1)

	forged := make([]*types.Block, 20)
	copy(forged, fx.chain[:20])
	forged[10] = fx.chain[10].StripPayload()
	fx.n.onSyncResponse(1, types.SyncResponseMsg{From: 1, Blocks: forged, Head: 40})

	if h := fx.n.forest.CommittedHeight(); h != 0 {
		t.Fatalf("stripped-block range advanced the chain to %d", h)
	}
	if fx.store.Applied() != 0 {
		t.Fatal("stripped-block range reached the state machine")
	}
	if fx.n.Pipeline().Snapshot().SyncRejected == 0 {
		t.Fatal("stripped-block range not counted as rejected")
	}
}

// TestManifestStallFallsBackToBlocks: a forged floor must not park
// the episode forever. When no f+1 manifest agreement forms (here:
// nobody answers at all — the shape of a cluster with no snapshots),
// the stalled manifest phase drops back to the blocks phase with a
// rotated target.
func TestManifestStallFallsBackToBlocks(t *testing.T) {
	fx := newSyncFixture(t, syncTestCfg(), nil)
	triggerSnapshotPhase(t, fx)
	// Keep the episode's premise alive (a deep view gap), as live
	// certificates would during a real episode.
	fx.n.handleQC(fx.chain[len(fx.chain)-1].QC)

	for i := 0; i <= manifestStallLimit; i++ {
		if fx.n.catchup.state != syncManifests {
			t.Fatalf("left the manifest phase after %d stalls", i)
		}
		fx.n.onSyncRetry(syncRetryEvent{epoch: fx.n.catchup.epoch})
	}
	if fx.n.catchup.state != syncBlocks {
		t.Fatalf("stalled manifest phase in state %d, want blocks", fx.n.catchup.state)
	}
	if fx.n.catchup.target == 1 {
		t.Fatal("fallback did not rotate away from the floor-forging target")
	}
	if got := fx.drainFor(t, fx.n.catchup.target); got.From != 1 {
		t.Fatalf("fallback request starts at %d, want 1", got.From)
	}
}

// TestSnapshotManifestCrossCheck: manifests disagreeing on the state
// digest never reach agreement alone — the forged copy is stranded in
// a minority group while the honest pair installs. This is the f+1
// cross-check doing its job against a peer serving a corrupt state.
func TestSnapshotManifestCrossCheck(t *testing.T) {
	fx := newSyncFixture(t, syncTestCfg(), nil)
	triggerSnapshotPhase(t, fx)

	man, payload := buildManifest(t, fx, 30, 4)
	forged := man
	forged.StateDigest = types.Hash{0xba, 0xad}
	fx.n.onSnapshotManifest(1, forged)
	fx.n.onSnapshotManifest(2, man)
	if fx.n.catchup.state != syncManifests {
		t.Fatalf("divergent digests reached agreement: state %d", fx.n.catchup.state)
	}
	fx.n.onSnapshotManifest(3, man)
	if fx.n.catchup.state != syncChunks {
		t.Fatalf("honest pair did not reach agreement: state %d", fx.n.catchup.state)
	}
	// The forger is outside the rotation set; the honest pair serves.
	if fx.n.catchup.chunkSrc == 1 {
		t.Fatal("forging peer chosen as chunk source")
	}
	serveChunks(t, fx, fx.n.catchup.chunkSrc, man, payload)
	if fx.n.forest.CommittedHeight() != 30 {
		t.Fatal("honest snapshot not installed")
	}
}

// TestSnapshotRejectsForgedHeight: a height lie is internally
// consistent — the certificate binds the snapshot BLOCK, not the
// height the manifest claims for it — so structural validation alone
// cannot catch it. The f+1 cross-check must: a lone forger claiming
// the snapshot sits higher (which would make the requester skip real
// history) stays a minority group, and the honest pair installs at
// the true height.
func TestSnapshotRejectsForgedHeight(t *testing.T) {
	fx := newSyncFixture(t, syncTestCfg(), nil)
	triggerSnapshotPhase(t, fx)

	man, payload := buildManifest(t, fx, 30, 4)
	forged := man
	forged.Height = man.Height + 7 // same block, same digest, lying height
	fx.n.onSnapshotManifest(1, forged)
	fx.n.onSnapshotManifest(2, man)
	if fx.n.catchup.state != syncManifests {
		t.Fatalf("height forgery broke the cross-check: state %d", fx.n.catchup.state)
	}
	fx.n.onSnapshotManifest(3, man)
	if fx.n.catchup.state != syncChunks || fx.n.catchup.chosen.Height != 30 {
		t.Fatalf("honest height not chosen: state %d", fx.n.catchup.state)
	}
	serveChunks(t, fx, fx.n.catchup.chunkSrc, man, payload)
	if h := fx.n.forest.CommittedHeight(); h != 30 {
		t.Fatalf("installed at height %d, want the honest 30", h)
	}
}

// TestSnapshotRejectsForgedManifests: manifests with a forged height
// (certificate naming a different block), a sub-quorum certificate,
// or an inconsistent chunk list are rejected before they can count
// toward agreement — even delivered twice from different peers.
func TestSnapshotRejectsForgedManifests(t *testing.T) {
	fx := newSyncFixture(t, syncTestCfg(), nil)
	triggerSnapshotPhase(t, fx)
	man, _ := buildManifest(t, fx, 30, 4)

	wrongBlock := man
	wrongBlock.Block = fx.chain[20].StripPayload() // QC names chain[29]
	subQuorum := man
	subQuorum.QC = &types.QC{View: man.QC.View, BlockID: man.QC.BlockID,
		Signers: man.QC.Signers[:1], Sigs: man.QC.Sigs[:1]}
	badChunks := man
	badChunks.ChunkDigests = man.ChunkDigests[:1]
	hugeState := man
	hugeState.TotalSize = snapshot.MaxStateSize + 1

	rejected := fx.n.Pipeline().Snapshot().SyncRejected
	for _, forged := range []types.SnapshotManifestMsg{wrongBlock, subQuorum, badChunks, hugeState} {
		fx.n.onSnapshotManifest(1, forged)
		fx.n.onSnapshotManifest(2, forged)
		if fx.n.catchup.state != syncManifests {
			t.Fatalf("forged manifest advanced the episode: %+v", forged)
		}
	}
	if got := fx.n.Pipeline().Snapshot().SyncRejected; got != rejected+8 {
		t.Fatalf("rejected counter %d, want %d", got, rejected+8)
	}
	if len(fx.n.catchup.manifests) != 0 {
		t.Fatal("forged manifests counted toward agreement")
	}
}

// TestSnapshotRejectsTamperedChunk: a chunk failing its manifest
// digest is dropped, the serving peer is rotated away from, and the
// same index is re-requested — the stream then completes from an
// honest peer.
func TestSnapshotRejectsTamperedChunk(t *testing.T) {
	fx := newSyncFixture(t, syncTestCfg(), nil)
	triggerSnapshotPhase(t, fx)
	man, payload := buildManifest(t, fx, 30, 4)
	fx.n.onSnapshotManifest(1, man)
	fx.n.onSnapshotManifest(3, man)
	if fx.n.catchup.chunkSrc != 1 {
		t.Fatalf("chunk source %s, want n1", fx.n.catchup.chunkSrc)
	}

	req, ok := drainForChunkRequest(t, fx, 1)
	if !ok {
		t.Fatal("no chunk request sent")
	}
	evil := append([]byte(nil), snapshot.Chunk(payload, man.ChunkSize, req.Chunk)...)
	evil[0] ^= 0xff
	fx.n.onSnapshotChunk(1, types.SnapshotChunkMsg{Height: req.Height, Chunk: req.Chunk, Data: evil})

	if len(fx.n.catchup.buf) != 0 {
		t.Fatal("tampered chunk entered the buffer")
	}
	if fx.n.Pipeline().Snapshot().SyncRejected == 0 {
		t.Fatal("tampered chunk not counted as rejected")
	}
	if fx.n.catchup.chunkSrc != 3 {
		t.Fatalf("chunk source not rotated: %s", fx.n.catchup.chunkSrc)
	}
	// A chunk from the deposed peer is now unsolicited.
	fx.n.onSnapshotChunk(1, types.SnapshotChunkMsg{Height: req.Height, Chunk: req.Chunk,
		Data: snapshot.Chunk(payload, man.ChunkSize, req.Chunk)})
	if len(fx.n.catchup.buf) != 0 {
		t.Fatal("chunk from deposed peer accepted")
	}
	// The honest peer finishes the stream.
	serveChunks(t, fx, 3, man, payload)
	if fx.n.forest.CommittedHeight() != 30 {
		t.Fatal("install did not recover from the tampered chunk")
	}
	if fx.store.Applied() != 30 {
		t.Fatalf("state machine at %d, want 30", fx.store.Applied())
	}
}

// TestBootstrapReplaysOwnLedger: a node with Bootstrap set replays
// its ledger into forest and state machine before joining — committed
// height, execution, the replay counter, and the view all land at the
// pre-crash position without a single network message.
func TestBootstrapReplaysOwnLedger(t *testing.T) {
	cfg := syncTestCfg()
	led, err := ledger.OpenBuffered(filepath.Join(t.TempDir(), "boot.ledger"))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = led.Close() }()
	fx := newSyncFixture(t, cfg, led)
	for i, b := range fx.chain[:20] {
		if err := led.AppendCertified(b, uint64(i+1), fx.chain[i+1].QC); err != nil {
			t.Fatal(err)
		}
	}
	fx.n.opts.Bootstrap = true
	fx.n.bootstrap()

	// The FULL ledger is re-committed, tip included: the safety WAL
	// closed the amnesia window that used to force a held-back tail,
	// so every persisted height is committed, executed, and counted.
	const wantCommitted = uint64(20)
	if h := fx.n.forest.CommittedHeight(); h != wantCommitted {
		t.Fatalf("bootstrap committed height %d, want %d", h, wantCommitted)
	}
	if fx.store.Applied() != wantCommitted {
		t.Fatalf("bootstrap executed %d txs, want %d", fx.store.Applied(), wantCommitted)
	}
	if got := fx.n.Pipeline().Snapshot().ReplayedBlocks; got != wantCommitted {
		t.Fatalf("ReplayedBlocks = %d, want %d", got, wantCommitted)
	}
	// The freshest replayed certificate — the tip's own, at the tip's
	// view — sets the rejoin view.
	if v := fx.n.pm.CurView(); v != fx.chain[19].View+1 {
		t.Fatalf("view %d after bootstrap, want %d", v, fx.chain[19].View+1)
	}
	if h, ok := fx.n.HashAt(7); !ok || h != fx.chain[6].ID() {
		t.Fatal("replayed hashes not published")
	}
	// Nothing was rolled back: live appends continue right above the
	// replayed tip.
	if led.Height() != wantCommitted {
		t.Fatalf("ledger height %d after bootstrap, want %d", led.Height(), wantCommitted)
	}
}

// TestBootstrapFromSnapshotAndSuffix: with a local snapshot under a
// compacted ledger, bootstrap restores the snapshot and replays only
// the suffix — O(gap), not O(chain).
func TestBootstrapFromSnapshotAndSuffix(t *testing.T) {
	cfg := syncTestCfg()
	dir := t.TempDir()
	led, err := ledger.OpenBuffered(filepath.Join(dir, "boot.ledger"))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = led.Close() }()
	fx := newSyncFixture(t, cfg, led)

	man, payload := buildManifest(t, fx, 30, snapshot.ChunkSize)
	snap := &snapshot.Snapshot{Height: 30, Block: man.Block, QC: man.QC,
		StateDigest: man.StateDigest, Payload: payload}
	if err := fx.n.opts.Snapshots.Save(snap); err != nil {
		t.Fatal(err)
	}
	if err := led.ResetTo(30); err != nil {
		t.Fatal(err)
	}
	for i, b := range fx.chain[30:36] {
		if err := led.AppendCertified(b, uint64(31+i), fx.chain[31+i].QC); err != nil {
			t.Fatal(err)
		}
	}
	fx.n.opts.Bootstrap = true
	fx.n.bootstrap()

	const wantCommitted = uint64(36)
	if h := fx.n.forest.CommittedHeight(); h != wantCommitted {
		t.Fatalf("bootstrap committed height %d, want %d", h, wantCommitted)
	}
	if fx.store.Applied() != wantCommitted {
		t.Fatalf("state machine at %d, want %d (30 restored + replayed suffix)",
			fx.store.Applied(), wantCommitted)
	}
	p := fx.n.Pipeline().Snapshot()
	if p.ReplayedBlocks != wantCommitted-30 {
		t.Fatalf("ReplayedBlocks = %d, want the full suffix of %d",
			p.ReplayedBlocks, wantCommitted-30)
	}
	st := fx.n.Status()
	if st.SnapshotHeight != 30 {
		t.Fatalf("status snapshot height %d, want 30", st.SnapshotHeight)
	}
	if _, ok := fx.n.HashAt(12); ok {
		t.Fatal("pre-snapshot heights claim hashes that were never replayed")
	}
	if h, ok := fx.n.HashAt(33); !ok || h != fx.chain[32].ID() {
		t.Fatal("suffix hashes not published")
	}
}

// TestBootstrapNoopOnFreshDisk: an empty ledger and no snapshot leave
// the node exactly at genesis.
func TestBootstrapNoopOnFreshDisk(t *testing.T) {
	cfg := syncTestCfg()
	led, err := ledger.OpenBuffered(filepath.Join(t.TempDir(), "fresh.ledger"))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = led.Close() }()
	fx := newSyncFixture(t, cfg, led)
	fx.n.opts.Bootstrap = true
	fx.n.bootstrap()
	if h := fx.n.forest.CommittedHeight(); h != 0 {
		t.Fatalf("fresh bootstrap committed height %d, want 0", h)
	}
	if fx.n.Pipeline().Snapshot().ReplayedBlocks != 0 {
		t.Fatal("fresh bootstrap replayed blocks")
	}
	if fx.n.pm.CurView() != 1 {
		t.Fatal("fresh bootstrap moved the view")
	}
}

// TestPeerServesManifestAndChunks: the serving side — a replica whose
// snapshot store holds a snapshot answers manifest requests (counted)
// and chunk requests, ignores stale heights, and never answers
// without a snapshot.
func TestPeerServesManifestAndChunks(t *testing.T) {
	fx := newSyncFixture(t, syncTestCfg(), nil)
	// No snapshot yet: requests go unanswered.
	fx.n.onSnapshotRequest(2, types.SnapshotRequestMsg{})
	select {
	case env := <-fx.peers[2].Inbox():
		t.Fatalf("snapshot-less replica answered: %T", env.Msg)
	default:
	}

	man, payload := buildManifest(t, fx, 30, snapshot.ChunkSize)
	snap := &snapshot.Snapshot{Height: 30, Block: man.Block, QC: man.QC,
		StateDigest: man.StateDigest, Payload: payload}
	if err := fx.n.opts.Snapshots.Save(snap); err != nil {
		t.Fatal(err)
	}
	fx.n.onSnapshotRequest(2, types.SnapshotRequestMsg{})
	env := <-fx.peers[2].Inbox()
	served, ok := env.Msg.(types.SnapshotManifestMsg)
	if !ok {
		t.Fatalf("manifest request answered with %T", env.Msg)
	}
	if served.Height != 30 || served.StateDigest != man.StateDigest ||
		served.TotalSize != uint64(len(payload)) {
		t.Fatalf("served manifest wrong: %+v", served)
	}
	if fx.n.Pipeline().Snapshot().SnapshotsServed != 1 {
		t.Fatal("served manifest not counted")
	}
	fx.n.onSnapshotRequest(2, types.SnapshotRequestMsg{Height: 30, Chunk: 0})
	env = <-fx.peers[2].Inbox()
	chunk, ok := env.Msg.(types.SnapshotChunkMsg)
	if !ok || chunk.Chunk != 0 || snapshot.Digest(chunk.Data) != served.ChunkDigests[0] {
		t.Fatalf("chunk request answered wrong: %T", env.Msg)
	}
	// Stale height: no answer (the requester renegotiates).
	fx.n.onSnapshotRequest(2, types.SnapshotRequestMsg{Height: 22, Chunk: 0})
	select {
	case env := <-fx.peers[2].Inbox():
		t.Fatalf("stale snapshot height answered: %T", env.Msg)
	default:
	}
}

package core

import (
	"time"

	"github.com/bamboo-bft/bamboo/internal/attack"
	"github.com/bamboo-bft/bamboo/internal/config"
	"github.com/bamboo-bft/bamboo/internal/crypto"
	"github.com/bamboo-bft/bamboo/internal/forest"
	"github.com/bamboo-bft/bamboo/internal/mempool"
	"github.com/bamboo-bft/bamboo/internal/types"
)

// pendingQCLimit bounds the buffered-certificate map.
const pendingQCLimit = 1024

// echoSeenLimit bounds Streamlet's echo dedup cache.
const echoSeenLimit = 1 << 13

// propose builds, signs, and disseminates this view's proposal.
// Proposing continues even mid-catch-up: a stale-view proposal is
// rejected by every honest voter for free, while suppressing the
// replica's leader slots would burn a view timeout per rotation and
// measurably slow the whole cluster during a long sync episode.
func (n *Node) propose(view types.View, tc *types.TC) {
	if view != n.pm.CurView() || n.proposedInView >= view {
		return
	}
	payload := n.takePayload()
	block := n.rules.Propose(view, payload)
	if block == nil {
		// Silence strategy: withhold the proposal but keep the
		// transactions for a later view.
		n.returnPayload(payload)
		return
	}
	n.proposedInView = view
	n.stampPayloadOwnership(block.Payload)
	sig, err := n.scheme.Sign(n.id, types.SigningDigest(block.View, block.ID()))
	if err != nil {
		n.returnPayload(payload)
		return
	}
	block.Sig = sig
	n.trace.OnProposed(block.ID(), view, n.id, len(block.Payload))
	msg := types.ProposalMsg{Block: block, TC: tc}

	if eq, ok := n.rules.(attack.Equivocator); ok {
		if alt := eq.ProposeAlt(view, payload); alt != nil {
			if altSig, err := n.scheme.Sign(n.id, types.SigningDigest(alt.View, alt.ID())); err == nil {
				alt.Sig = altSig
				n.equivocast(msg, types.ProposalMsg{Block: alt, TC: tc})
				n.onProposal(n.id, msg, true)
				return
			}
		}
	}
	n.net.Broadcast(n.wireProposal(msg))
	n.onProposal(n.id, msg, true)
}

// wireProposal picks the proposal's wire form: in digest mode the
// payload stays on the data plane — the broadcast carries the payload
// digest plus ordered transaction IDs, and followers rebuild the batch
// from their own pools. The OHS lightweight client path keeps full
// proposals (its pool is not indexed).
func (n *Node) wireProposal(msg types.ProposalMsg) types.ProposalMsg {
	if !n.cfg.DigestProposals || n.policy.LightweightPool || len(msg.Block.Payload) == 0 {
		return msg
	}
	// Flush any buffered payload sync first: transactions this block
	// batched straight off a client arrival must reach follower pools
	// no later than the digest that references them.
	n.flushPayloadSync()
	ids := make([]types.TxID, len(msg.Block.Payload))
	for i := range msg.Block.Payload {
		ids[i] = msg.Block.Payload[i].ID
	}
	return types.ProposalMsg{Block: msg.Block.StripPayload(), TC: msg.TC, PayloadIDs: ids}
}

// equivocast sends msgA to the lower half of the replicas and msgB to
// the upper half.
func (n *Node) equivocast(msgA, msgB types.ProposalMsg) {
	half := types.NodeID(n.cfg.N / 2)
	for id := types.NodeID(1); id <= types.NodeID(n.cfg.N); id++ {
		if id == n.id {
			continue
		}
		if id <= half {
			n.net.Send(id, msgA)
		} else {
			n.net.Send(id, msgB)
		}
	}
}

// takePayload draws the next batch from the client path.
func (n *Node) takePayload() []types.Transaction {
	if n.policy.LightweightPool {
		k := n.cfg.BlockSize
		if k > len(n.lightPool) {
			k = len(n.lightPool)
		}
		batch := n.lightPool[:k]
		n.lightPool = n.lightPool[k:]
		return batch
	}
	return n.pool.Batch(n.cfg.BlockSize)
}

// returnPayload puts an unused batch back at the front of the queue.
// In digest mode the recovered transactions are re-synced to peers:
// followers scrubbed them from their pools when the forked block
// attached, and the coming re-proposal must resolve against something.
func (n *Node) returnPayload(payload []types.Transaction) {
	if len(payload) == 0 {
		return
	}
	n.queuePayloadSync(payload)
	if n.policy.LightweightPool {
		// Never append into the payload slice: it may share a
		// backing array with a later block's payload (blocks travel
		// by pointer in-process), and an in-place prepend would
		// corrupt that block under every other replica.
		combined := make([]types.Transaction, 0, len(payload)+len(n.lightPool))
		combined = append(combined, payload...)
		combined = append(combined, n.lightPool...)
		n.lightPool = combined
		return
	}
	n.pool.Requeue(payload)
}

// stampPayloadOwnership is a hook point: ownership was recorded at
// request time; nothing to do today, but the indirection keeps the
// propose path explicit about the reply contract.
func (n *Node) stampPayloadOwnership([]types.Transaction) {}

// onProposal handles a block proposal (or a fetched ancestor).
// verified means the signatures were already checked — by this
// replica having produced the message, or by the verification pool.
func (n *Node) onProposal(from types.NodeID, m types.ProposalMsg, verified bool) {
	b := m.Block
	if b == nil || b.QC == nil {
		return
	}
	id := b.ID()
	if n.forest.Contains(id) {
		// Seen already (echo duplicates land here); a TC may still
		// be news.
		if m.TC != nil && from != n.id {
			n.onTC(m.TC, !verified)
		}
		return
	}
	// Authenticate: right leader, valid proposer signature, valid
	// embedded certificate.
	if b.Proposer != n.elect.Leader(b.View) {
		return
	}
	if !verified {
		if err := n.scheme.Verify(b.Proposer, types.SigningDigest(b.View, id), b.Sig); err != nil {
			return
		}
		if err := crypto.VerifyQC(n.scheme, b.QC, n.cfg.Quorum()); err != nil {
			return
		}
		// The signed ID covers the payload only through its digest;
		// a full-payload proposal must actually match that digest, or
		// a Byzantine proposer could ship one signed ID with
		// divergent payloads to different replicas. (Digest-only
		// proposals are checked during resolution instead.)
		if len(b.Payload) > 0 && types.DigestPayload(b.Payload) != b.PayloadDigest() {
			return
		}
	}
	if n.policy.EchoMessages && from != n.id {
		if _, seen := n.echoSeen[id]; !seen {
			n.rememberEcho(id)
			n.net.Broadcast(m)
		}
	}
	if m.TC != nil && from != n.id {
		n.onTC(m.TC, !verified)
	}
	// Authenticated: the span's verify stage ends here (for pool-checked
	// messages this includes the queue wait, which is the point — the
	// verify stage measures what a replica pays before it can act).
	n.trace.OnVerified(id)
	if m.IsDigest() && from != n.id {
		// Data-plane resolution: rebuild the payload from the local
		// pool; on a miss, park the proposal one link delay — the
		// payload usually races the proposal over the client fan-out
		// path — before falling back to a fetch.
		resolved := n.resolveDigest(m)
		if resolved == nil {
			n.parkDigest(from, m)
			return
		}
		n.pipeline.OnDigestResolved()
		b = resolved
	}

	attached, err := n.forest.Add(b)
	switch err {
	case nil:
	case forest.ErrDuplicate, forest.ErrStale:
		return
	default:
		return
	}
	if len(attached) == 0 {
		// Orphan: buffered inside the forest; ask the sender for
		// the missing ancestor and remember the certificate. When
		// the orphan's certificate shows a gap deeper than the keep
		// window, the fetch walk is a dead-end (the ancestors are
		// compacted everywhere) — switch to ledger-backed state sync.
		n.bufferQC(b.QC)
		if from != n.id {
			n.net.Send(from, types.FetchMsg{BlockID: b.Parent})
			n.maybeStartSync(from, b)
		}
		return
	}
	for _, ab := range attached {
		// Scrub the block's transactions from the local pool before
		// any chance of proposing: with client fan-out, several
		// replicas hold the same transaction, and whoever proposes
		// next must not re-batch what this block already carries.
		n.scrubPayload(ab)
		abID := ab.ID()
		if qc, ok := n.pendingQCs[abID]; ok {
			delete(n.pendingQCs, abID)
			n.handleQC(qc)
		}
		n.handleQC(ab.QC)
		if ab == b {
			n.maybeVote(b, m.TC)
		}
	}
}

// resolveDigest rebuilds a digest proposal's payload from the indexed
// mempool: first the batch cache (duplicate digests — echoes,
// retransmissions — cost one map hit), then per-transaction lookup
// with the digest recomputed over the assembled batch. nil means the
// payload cannot be resolved locally and the caller must fetch.
func (n *Node) resolveDigest(m types.ProposalMsg) *types.Block {
	b := m.Block
	want := b.PayloadDigest()
	if payload, ok := n.pool.BatchByDigest(want); ok {
		return b.WithPayload(payload)
	}
	if n.policy.LightweightPool {
		return nil
	}
	payload, missing := n.pool.Resolve(m.PayloadIDs)
	if len(missing) > 0 {
		return nil
	}
	if types.DigestPayload(payload) != want {
		return nil
	}
	n.pool.CacheBatch(want, payload)
	return b.WithPayload(payload)
}

// digestWaitLimit bounds the parked-proposal set; past it, misses go
// straight to the fetch fallback.
const digestWaitLimit = 256

// digestRetryMax is how many times a digest proposal re-attempts
// resolution before fetching the full block.
const digestRetryMax = 2

// parkDigest holds an unresolvable digest proposal for a short retry.
// The data plane and the consensus plane race over the same links, so
// the missing transactions are usually one link delay (or one
// payload-sync flush) behind the proposal; fetching the full block
// immediately would waste the digest's entire bandwidth saving on
// every near-miss. Retries back off geometrically from roughly the
// link-delay spread up to the sync flush interval.
func (n *Node) parkDigest(from types.NodeID, m types.ProposalMsg) {
	id := m.Block.ID()
	if _, parked := n.digestWait[id]; parked {
		return // a retry is already scheduled
	}
	if len(n.digestWait) >= digestWaitLimit {
		n.fetchFullBlock(from, m.Block)
		return
	}
	n.digestWait[id] = 0
	n.scheduleDigestRetry(from, m, 0)
}

// scheduleDigestRetry arms retry number `attempt` (0-based).
func (n *Node) scheduleDigestRetry(from types.NodeID, m types.ProposalMsg, attempt int) {
	delay := n.cfg.Delay + 4*n.cfg.DelayStd
	if delay < 200*time.Microsecond {
		delay = 200 * time.Microsecond
	}
	delay <<= attempt
	if delay > 4*payloadSyncInterval {
		delay = 4 * payloadSyncInterval
	}
	time.AfterFunc(delay, func() {
		select {
		case n.events <- digestRetryEvent{from: from, msg: m}:
		case <-n.stopCh:
		}
	})
}

// onDigestRetry re-attempts a parked digest proposal; once the retry
// budget is spent it falls back to fetching the full block from the
// sender (the seen-already check in onProposal deduplicates the
// eventual re-delivery).
func (n *Node) onDigestRetry(from types.NodeID, m types.ProposalMsg) {
	id := m.Block.ID()
	attempt, parked := n.digestWait[id]
	if !parked {
		return
	}
	if n.forest.Contains(id) {
		delete(n.digestWait, id)
		return
	}
	if resolved := n.resolveDigest(m); resolved != nil {
		delete(n.digestWait, id)
		n.pipeline.OnDigestResolved()
		// The BLOCK's signatures were verified before it parked, but
		// the piggybacked TC was only verified on the first pass in
		// async mode (the pool strips invalid ones). Re-delivering it
		// as pre-verified would let a TC the sync path rejected back
		// in unchecked — verify it here before forwarding.
		tc := m.TC
		if tc != nil {
			if crypto.VerifyTC(n.scheme, tc, n.cfg.Quorum()) != nil {
				tc = nil
			} else if tc.HighQC != nil && !tc.HighQC.IsGenesis() &&
				crypto.VerifyQC(n.scheme, tc.HighQC, n.cfg.Quorum()) != nil {
				tc = nil
			}
		}
		n.onProposal(from, types.ProposalMsg{Block: resolved, TC: tc}, true)
		return
	}
	if attempt+1 < digestRetryMax {
		n.digestWait[id] = attempt + 1
		n.scheduleDigestRetry(from, m, attempt+1)
		return
	}
	delete(n.digestWait, id)
	n.fetchFullBlock(from, m.Block)
}

// fetchFullBlock requests the full block from the sender and — when
// the sender is a relay (a Streamlet echoer may itself hold the
// proposal unresolved) — from the proposer, which built the block and
// is the one replica guaranteed to have its payload.
func (n *Node) fetchFullBlock(from types.NodeID, b *types.Block) {
	n.pipeline.OnDigestFetched()
	n.net.Send(from, types.FetchMsg{BlockID: b.ID()})
	if b.Proposer != from && b.Proposer != n.id {
		n.net.Send(b.Proposer, types.FetchMsg{BlockID: b.ID()})
	}
}

// scrubPayload drops another proposer's queued duplicates.
func (n *Node) scrubPayload(b *types.Block) {
	if b.Proposer == n.id || n.policy.LightweightPool ||
		len(b.Payload) == 0 || n.pool.Len() == 0 {
		return
	}
	ids := make([]types.TxID, len(b.Payload))
	for i := range b.Payload {
		ids[i] = b.Payload[i].ID
	}
	n.pool.Remove(ids)
}

// maybeVote applies the protocol's voting rule and routes the vote.
// A replica votes for proposals of its current view or one view ahead:
// the lookahead is inherent to chained pipelining — the proposer of
// view v holds QC(v−1) before anyone else, so honest voters are
// legitimately one view behind. (It is also what lets the forking
// attacker's old-parent proposal gather votes, exactly as in the
// paper's Figure 5; without lookahead the attack degenerates into
// silence.) More than one view ahead is refused, so a Byzantine
// proposer cannot drag lastVoted into the far future and starve the
// intervening views.
func (n *Node) maybeVote(b *types.Block, tc *types.TC) {
	cur := n.pm.CurView()
	if b.View < cur || b.View > cur+1 {
		return
	}
	if !n.rules.VoteRule(b, tc) {
		return
	}
	// The voting rule just advanced lvView; sync it (and the rest of
	// the durable safety state) to the WAL before the vote exists
	// anywhere outside this process. A replica whose vote can be
	// counted by a peer but forgotten by its own restart is one crash
	// away from equivocating.
	if !n.persistSafety() {
		return
	}
	// A vote is this replica accepting the block onto its chain:
	// the event the chain-growth-rate denominator counts
	// (Section IV-B). Blocks the voting rule rejects never "append"
	// from this replica's point of view.
	n.tracker.OnBlockAdded()
	id := b.ID()
	sig, err := n.scheme.Sign(n.id, types.SigningDigest(b.View, id))
	if err != nil {
		return
	}
	n.trace.OnVoted(id)
	vote := &types.Vote{View: b.View, BlockID: id, Voter: n.id, Sig: sig}
	msg := types.VoteMsg{Vote: vote}
	if n.policy.BroadcastVote {
		n.net.Broadcast(msg)
		n.onVote(vote, true)
		return
	}
	next := n.elect.Leader(b.View + 1)
	if next == n.id {
		n.onVote(vote, true)
		return
	}
	n.net.Send(next, msg)
}

// onVote aggregates a vote; a completed quorum forms a QC. verified
// means the signature was already checked off-loop (or the vote is
// this replica's own).
func (n *Node) onVote(v *types.Vote, verified bool) {
	if v == nil {
		return
	}
	cur := n.pm.CurView()
	if v.View+4 < cur {
		return // too old to ever matter
	}
	if !verified {
		if err := n.scheme.Verify(v.Voter, types.SigningDigest(v.View, v.BlockID), v.Sig); err != nil {
			return
		}
	}
	if n.policy.EchoMessages && v.Voter != n.id {
		key := echoKeyForVote(v)
		if _, seen := n.echoSeen[key]; !seen {
			n.rememberEcho(key)
			n.net.Broadcast(types.VoteMsg{Vote: v})
		}
	}
	if qc, formed := n.votes.Add(v); formed {
		n.handleQC(qc)
	}
}

// handleQC ingests a (verified or locally formed) certificate: certify
// the block in the forest, let the protocol update its state, check
// the commit rule, and ride the QC into the next view.
func (n *Node) handleQC(qc *types.QC) {
	if qc == nil {
		return
	}
	if n.forest.Contains(qc.BlockID) {
		n.forest.Certify(qc)
	} else if !qc.IsGenesis() {
		n.bufferQC(qc)
	}
	if !qc.IsGenesis() {
		n.trace.OnQCFormed(qc.BlockID)
	}
	n.rules.UpdateState(qc)
	if target := n.rules.CommitRule(qc); target != nil {
		n.commit(target)
	}
	if n.pm.AdvanceTo(qc.View + 1) {
		n.onNewView(nil)
	}
}

// bufferQC remembers the freshest certificate for a missing block.
func (n *Node) bufferQC(qc *types.QC) {
	if qc == nil || qc.IsGenesis() {
		return
	}
	if old, ok := n.pendingQCs[qc.BlockID]; ok && old.View >= qc.View {
		return
	}
	if len(n.pendingQCs) >= pendingQCLimit {
		cur := n.pm.CurView()
		for h, pqc := range n.pendingQCs {
			if pqc.View+16 < cur {
				delete(n.pendingQCs, h)
			}
		}
	}
	n.pendingQCs[qc.BlockID] = qc
}

// commit finalizes target and its prefix, executes payloads, replies
// to owned clients, and recycles forked transactions.
func (n *Node) commit(target *types.Block) {
	res, err := n.forest.Commit(target.ID())
	if err != nil {
		if err == forest.ErrSafetyViolation {
			n.warn(err)
		}
		return
	}
	if len(res.Committed) == 0 && len(res.Forked) == 0 {
		return
	}
	now := time.Now()
	cur := n.pm.CurView()
	n.statusMu.Lock()
	for _, cb := range res.Committed {
		n.committedHashes = append(n.committedHashes, cb.ID())
	}
	n.statusMu.Unlock()
	height := n.forest.CommittedHeight() - uint64(len(res.Committed))
	// At most one state snapshot per commit batch: the highest due
	// interval boundary (earlier ones would be superseded within the
	// same batch).
	snapHeight := n.dueSnapshotHeight(height, n.forest.CommittedHeight())
	for i, cb := range res.Committed {
		height++
		n.tracker.OnBlockCommitted(cb.Proposer, cb.View, cur, len(cb.Payload))
		n.trace.OnCommitted(cb.ID(), height, len(cb.Payload))
		// Every committed block has a certificate in hand (the next
		// block's embedded QC, or the forest's certification record);
		// it rides to the ledger record — restart replay needs it to
		// extend the replayed tip — and anchors the state snapshot
		// the apply stage captures on interval boundaries.
		selfQC := n.commitCert(res.Committed, i)
		takeSnap := height == snapHeight && selfQC != nil
		if n.apply != nil {
			// Stage 3: execution and persistence ride the ordered
			// commit-apply goroutine so the loop returns to voting.
			n.apply.enqueue(applyJob{block: cb, height: height, committedAt: now,
				selfQC: selfQC, snapshot: takeSnap})
		} else {
			if n.opts.Ledger != nil {
				// Persistence is best-effort relative to consensus:
				// the in-memory chain stays authoritative on append
				// failure.
				_ = n.opts.Ledger.AppendCertified(cb, height, selfQC)
			}
			if n.opts.Execute != nil {
				n.opts.Execute(cb.Payload)
			}
			if takeSnap {
				n.captureSnapshot(cb, height, selfQC)
			}
			n.onExecuted(cb.ID())
		}
		if n.opts.CommitSeries != nil {
			n.opts.CommitSeries.Add(now, uint64(len(cb.Payload)))
		}
		for _, fn := range n.commitListeners {
			fn(cb.View, cb.ID(), cb.Payload)
		}
		replied := false
		for i := range cb.Payload {
			txID := cb.Payload[i].ID
			if client, ok := n.owned[txID]; ok {
				delete(n.owned, txID)
				n.net.Send(client, types.ReplyMsg{
					TxID:    txID,
					View:    cb.View,
					BlockID: cb.ID(),
				})
				replied = true
			}
		}
		if replied {
			n.trace.OnReplied(cb.ID())
		}
	}
	for _, fb := range res.Forked {
		if fb.Proposer == n.id && len(fb.Payload) > 0 {
			n.returnPayload(fb.Payload)
		}
	}
	n.publishStatus()
}

// onLocalTimeout fires when the view timer expires: broadcast a signed
// timeout carrying the freshest QC (the pacemaker of Section III-B).
func (n *Node) onLocalTimeout(view types.View) {
	if view != n.pm.CurView() {
		return
	}
	n.broadcastTimeout(view)
}

// broadcastTimeout signs and disseminates ⟨TIMEOUT, view⟩.
func (n *Node) broadcastTimeout(view types.View) {
	sig, err := n.scheme.Sign(n.id, types.TimeoutDigest(view))
	if err != nil {
		return
	}
	if view > n.lastTimeoutView {
		n.lastTimeoutView = view
	}
	// Same discipline as votes: the timeout signature must not leave
	// the node before the view it covers is durable, or a restarted
	// replica could sign a second, conflicting timeout share for it.
	if !n.persistSafety() {
		return
	}
	n.trace.OnTimeout(view)
	t := &types.Timeout{View: view, Voter: n.id, HighQC: n.rules.HighQC(), Sig: sig}
	n.net.Broadcast(types.TimeoutMsg{Timeout: t})
	n.onTimeoutMsg(t, true)
}

// onTimeoutMsg aggregates a timeout; a completed quorum forms a TC
// that is forwarded to the next leader. verified means the signature
// (and the carried QC, which the verification pool strips when
// invalid) was already checked.
func (n *Node) onTimeoutMsg(t *types.Timeout, verified bool) {
	if t == nil {
		return
	}
	if !verified {
		if err := n.scheme.Verify(t.Voter, types.TimeoutDigest(t.View), t.Sig); err != nil {
			return
		}
	}
	if t.Voter != n.id && t.HighQC != nil && !t.HighQC.IsGenesis() {
		// Adopt the carried QC even when the timeout itself is
		// stale: a non-responsive leader waiting out Δ uses these
		// to learn the freshest certified block.
		if verified {
			n.handleQC(t.HighQC)
		} else if err := crypto.VerifyQC(n.scheme, t.HighQC, n.cfg.Quorum()); err == nil {
			n.handleQC(t.HighQC)
		}
	}
	tc, formed := n.pm.OnTimeoutMsg(t)
	if !formed {
		// f+1 join rule (Bracha-style amplification): if f+1
		// distinct replicas are timing out of a view ahead of the
		// highest one we signed, at least one is honest — join
		// them so staggered replicas converge on a common timeout
		// view and the TC can complete.
		if t.Voter != n.id && t.View > n.lastTimeoutView &&
			n.pm.TimeoutCount(t.View) > config.MaxFaults(n.cfg.N) {
			n.broadcastTimeout(t.View)
		}
		return
	}
	next := n.elect.Leader(tc.View + 1)
	if next != n.id {
		n.net.Send(next, types.TCMsg{TC: tc})
	}
	n.onTC(tc, false)
}

// onTC ingests a timeout certificate, advancing the view.
func (n *Node) onTC(tc *types.TC, needVerify bool) {
	if tc == nil {
		return
	}
	if needVerify {
		if err := crypto.VerifyTC(n.scheme, tc, n.cfg.Quorum()); err != nil {
			return
		}
		if tc.HighQC != nil && !tc.HighQC.IsGenesis() {
			if err := crypto.VerifyQC(n.scheme, tc.HighQC, n.cfg.Quorum()); err != nil {
				return
			}
		}
	}
	if tc.HighQC != nil {
		n.handleQC(tc.HighQC)
	}
	if n.pm.AdvanceTo(tc.View + 1) {
		n.onNewView(tc)
	}
}

// onNewView runs once per view entry: housekeeping plus, when this
// replica leads the view, proposing — immediately in the responsive
// mode, after the maximum network delay otherwise.
func (n *Node) onNewView(tc *types.TC) {
	view := n.pm.CurView()
	n.tracker.OnViewEntered()
	n.trace.OnViewEntered(view, n.elect.Leader(view))
	if view > 4 {
		n.votes.Prune(view - 4)
	}
	n.publishStatus()
	if n.elect.Leader(view) != n.id {
		return
	}
	if tc != nil && !n.cfg.Responsive && n.cfg.MaxNetworkDelay > 0 {
		// Non-responsive view change: wait Δ collecting stray
		// timeout messages (and their high QCs) before proposing.
		time.AfterFunc(n.cfg.MaxNetworkDelay, func() {
			select {
			case n.events <- proposeEvent{view: view, tc: tc}:
			case <-n.stopCh:
			}
		})
		return
	}
	n.propose(view, tc)
}

// onRequest admits a client transaction into the replica's pool. In
// digest mode the transaction is also queued for the next payload-sync
// broadcast, so peers can resolve digest proposals locally.
func (n *Node) onRequest(from types.NodeID, tx types.Transaction) {
	if n.policy.LightweightPool {
		if len(n.lightPool) >= 4*n.cfg.MemSize {
			n.lightRejections.Add(1)
			n.rejectTx(from, tx.ID)
			return
		}
		n.lightPool = append(n.lightPool, tx)
		n.owned[tx.ID] = from
		return
	}
	if err := n.pool.Add(tx); err != nil {
		if err == mempool.ErrFull {
			n.rejectTx(from, tx.ID)
		}
		return
	}
	n.owned[tx.ID] = from
	n.queuePayloadSync([]types.Transaction{tx})
}

// rejectTx delivers an admission rejection to whoever submitted the
// transaction: the registered reject listeners for this node's own
// submissions (the HTTP API turns them into 429s), a rejected ReplyMsg
// over the network for remote client endpoints.
func (n *Node) rejectTx(from types.NodeID, id types.TxID) {
	if from == n.id {
		for _, fn := range n.rejectListeners {
			fn(id)
		}
		return
	}
	n.net.Send(from, types.ReplyMsg{TxID: id, Rejected: true})
}

// payloadSyncInterval bounds how long a buffered transaction waits for
// the next payload-sync broadcast.
const payloadSyncInterval = time.Millisecond

// queuePayloadSync buffers transactions for the next payload-sync
// broadcast (digest mode's data plane), flushing when a block-sized
// batch accumulates and arming the flush timer otherwise.
func (n *Node) queuePayloadSync(txs []types.Transaction) {
	if !n.cfg.DigestProposals || n.policy.LightweightPool || len(txs) == 0 {
		return
	}
	n.syncBuf = append(n.syncBuf, txs...)
	if len(n.syncBuf) >= n.cfg.BlockSize {
		n.flushPayloadSync()
	} else if !n.syncArmed {
		n.syncArmed = true
		time.AfterFunc(payloadSyncInterval, func() {
			select {
			case n.events <- flushPayloadEvent{}:
			case <-n.stopCh:
			}
		})
	}
}

// flushPayloadSync broadcasts the buffered transactions to peer
// mempools — data-plane dissemination in batches, off the consensus
// critical path.
func (n *Node) flushPayloadSync() {
	if len(n.syncBuf) == 0 {
		return
	}
	txs := n.syncBuf
	n.syncBuf = nil
	n.net.Broadcast(types.PayloadBatchMsg{Txs: txs})
}

// onPayloadBatch admits peer-synced transactions. No ownership is
// recorded: the replica that accepted the transaction from its client
// owns the commit reply.
func (n *Node) onPayloadBatch(m types.PayloadBatchMsg) {
	if n.policy.LightweightPool {
		return
	}
	for i := range m.Txs {
		// Duplicates and overflow are fine: the pool is an index,
		// and the fetch fallback covers whatever it cannot hold.
		_ = n.pool.Add(m.Txs[i])
	}
}

// onFetch serves a missing-ancestor request from the local forest.
func (n *Node) onFetch(from types.NodeID, m types.FetchMsg) {
	if b, ok := n.forest.Block(m.BlockID); ok {
		n.net.Send(from, types.ProposalMsg{Block: b})
	}
}

// onQuery answers a state query (consistency checks, HTTP API).
func (n *Node) onQuery(from types.NodeID, m types.QueryMsg) {
	reply := types.QueryReplyMsg{
		CommittedHeight: n.forest.CommittedHeight(),
		CommittedView:   n.forest.CommittedHead().View,
	}
	if m.Height != 0 {
		if h, ok := n.forest.CommittedHash(m.Height); ok {
			reply.BlockHash = h
		}
	} else {
		reply.BlockHash = n.forest.CommittedHead().ID()
	}
	n.net.Send(from, reply)
}

// rememberEcho inserts into the bounded echo cache.
func (n *Node) rememberEcho(key types.Hash) {
	if len(n.echoSeen) >= echoSeenLimit {
		n.echoSeen = make(map[types.Hash]struct{}, echoSeenLimit)
	}
	n.echoSeen[key] = struct{}{}
}

// echoKeyForVote derives a dedup key for a vote echo.
func echoKeyForVote(v *types.Vote) types.Hash {
	var key types.Hash
	copy(key[:], v.BlockID[:])
	key[0] ^= byte(v.View)
	key[1] ^= byte(v.View >> 8)
	key[2] ^= byte(v.Voter)
	key[3] ^= byte(v.Voter >> 8)
	key[31] ^= 0xee // domain-separate from proposal echoes
	return key
}

package core

import (
	"time"

	"github.com/bamboo-bft/bamboo/internal/snapshot"
	"github.com/bamboo-bft/bamboo/internal/types"
)

// defaultApplyQueue is the staged-commit backlog bound when the
// configuration leaves ApplyQueue at zero.
const defaultApplyQueue = 128

// applyJob is one committed block awaiting execution, or — when
// install is set — a verified peer snapshot awaiting installation.
// Riding installs through the same ordered queue is what keeps the
// state machine sequential: every block committed before the install
// finishes executing first, and every suffix block committed after it
// executes on top of the restored state.
type applyJob struct {
	block       *types.Block
	height      uint64
	committedAt time.Time
	// selfQC certifies the job's block (nil only when the forest had
	// no certificate recorded): persisted with the ledger record so a
	// restarted replica can extend its replayed tip.
	selfQC *types.QC
	// snapshot directs the apply stage to capture a state snapshot
	// (anchored by selfQC) right after executing the block — the
	// point where the state machine reflects exactly this height.
	snapshot bool
	// install, when non-nil, replaces block execution: restore the
	// state machine from the snapshot, re-base the ledger, and
	// persist the snapshot locally.
	install *snapshot.Snapshot
}

// applier is pipeline stage 3: an ordered commit-apply goroutine that
// runs the Execute hook and the ledger append off the event loop, so
// block execution no longer stalls voting. The queue is bounded; when
// execution lags more than ApplyQueue blocks behind consensus, the
// enqueue blocks the event loop — deliberate backpressure that slows
// voting instead of growing an unbounded backlog.
type applier struct {
	n    *Node
	jobs chan applyJob
	done chan struct{}
}

// newApplier starts the commit-apply goroutine.
func newApplier(n *Node, queue int) *applier {
	if queue <= 0 {
		queue = defaultApplyQueue
	}
	a := &applier{n: n, jobs: make(chan applyJob, queue), done: make(chan struct{})}
	go a.run()
	return a
}

// enqueue hands a committed block to the apply stage in commit order.
// The send blocks when the queue is full; the applier drains
// independently of the event loop, so this cannot deadlock.
func (a *applier) enqueue(job applyJob) {
	a.jobs <- job
}

// stop drains and joins the apply stage. Call only after the event
// loop has exited (no more enqueues); every block committed before
// shutdown is executed before stop returns.
func (a *applier) stop() {
	close(a.jobs)
	<-a.done
}

// run applies committed blocks (and snapshot installs) in order.
func (a *applier) run() {
	defer close(a.done)
	for job := range a.jobs {
		if job.install != nil {
			a.n.applyInstall(job.install)
			continue
		}
		if a.n.opts.Ledger != nil {
			// Persistence is best-effort relative to consensus: the
			// in-memory chain stays authoritative on append failure.
			_ = a.n.opts.Ledger.AppendCertified(job.block, job.height, job.selfQC)
		}
		if a.n.opts.Execute != nil {
			a.n.opts.Execute(job.block.Payload)
		}
		if job.snapshot {
			a.n.captureSnapshot(job.block, job.height, job.selfQC)
		}
		a.n.onExecuted(job.block.ID())
		a.n.pipeline.OnBlockApplied(time.Since(job.committedAt))
	}
}

package core

import (
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"github.com/bamboo-bft/bamboo/internal/config"
	"github.com/bamboo-bft/bamboo/internal/crypto"
	"github.com/bamboo-bft/bamboo/internal/network"
	"github.com/bamboo-bft/bamboo/internal/protocol/hotstuff"
	"github.com/bamboo-bft/bamboo/internal/types"
)

// pipelineCfg enables all three pipeline stages on the test config.
func pipelineCfg() config.Config {
	cfg := testCfg()
	cfg.DigestProposals = true
	cfg.AsyncVerify = true
	cfg.AsyncCommit = true
	return cfg
}

// TestPipelinedEngineSurvivesMalformedMessages floods a pipelined
// cluster with the same hostile garbage as the synchronous test: the
// verification pool must reject forgeries off-loop without panics,
// stalls, or safety violations.
func TestPipelinedEngineSurvivesMalformedMessages(t *testing.T) {
	nodes, raw := startSwitchClusterCfg(t, pipelineCfg(), 666)
	nodes[0].Submit(types.Transaction{ID: types.TxID{Client: 1, Seq: 1}})
	waitProgress(t, nodes, 0)

	hostile := []any{
		types.ProposalMsg{},
		types.ProposalMsg{Block: &types.Block{}},
		types.VoteMsg{},
		types.TimeoutMsg{},
		types.TCMsg{},
		types.FetchMsg{BlockID: types.Hash{0xde, 0xad}},
		types.PayloadBatchMsg{},
		types.PayloadBatchMsg{Txs: make([]types.Transaction, 3)},
		"junk",
	}
	forged := []any{
		types.ProposalMsg{Block: &types.Block{
			View: 5, Proposer: 1, QC: types.GenesisQC(), Sig: []byte("forged"),
		}},
		types.ProposalMsg{
			Block: &types.Block{
				View: 6, Proposer: 2, QC: types.GenesisQC(), Sig: []byte("x"),
				Digest: types.Hash{0xaa},
			},
			PayloadIDs: []types.TxID{{Client: 9, Seq: 9}},
		},
		types.VoteMsg{Vote: &types.Vote{View: 2, Voter: 2, Sig: []byte("forged")}},
		types.VoteMsg{Vote: &types.Vote{View: 1 << 40, Voter: 3, Sig: []byte("future")}},
		types.TimeoutMsg{Timeout: &types.Timeout{View: 1 << 40, Voter: 3, Sig: []byte("future")}},
		types.TCMsg{TC: &types.TC{View: 1 << 40, Signers: []types.NodeID{1, 2, 3},
			Sigs: [][]byte{{1}, {2}, {3}}}},
	}
	rng := rand.New(rand.NewSource(1))
	for round := 0; round < 50; round++ {
		for _, msg := range hostile {
			raw.Send(types.NodeID(rng.Intn(4)+1), msg)
		}
		for _, msg := range forged {
			raw.Send(types.NodeID(rng.Intn(4)+1), msg)
		}
	}
	before := nodes[len(nodes)-1].Status().CommittedHeight
	nodes[0].Submit(types.Transaction{ID: types.TxID{Client: 1, Seq: 2}})
	waitProgress(t, nodes, before)
	for _, n := range nodes {
		if n.Violations() != 0 {
			t.Fatalf("node %s reported safety violations under hostile traffic", n.ID())
		}
	}
	// The pool, not the loop, must have rejected the forgeries.
	var rejected uint64
	for _, n := range nodes {
		rejected += n.Pipeline().Snapshot().VerifyRejected
	}
	if rejected == 0 {
		t.Fatal("verification pool rejected nothing despite forged traffic")
	}
}

// TestDigestMissFallsBackToFetch crafts a digest proposal whose
// transactions no replica holds: the follower must park it, retry,
// and then fetch the full block from the sender — the data-plane
// fallback path — without crashing or voting for an unresolved block.
func TestDigestMissFallsBackToFetch(t *testing.T) {
	cfg := pipelineCfg()
	nodes, raw := startSwitchClusterCfg(t, cfg, 777)
	nodes[0].Submit(types.Transaction{ID: types.TxID{Client: 1, Seq: 1}})
	waitProgress(t, nodes, 0)

	// Sign as the legitimate leader of a far-enough view (HMAC test
	// scheme shares the key, standing in for a compromised replica).
	scheme, err := crypto.NewScheme(cfg.CryptoScheme, cfg.N, cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	payload := []types.Transaction{{ID: types.TxID{Client: 42, Seq: 1}, Command: []byte("ghost")}}
	view := nodes[3].Status().CurView + 1
	leader := types.NodeID((uint64(view)-1)%uint64(cfg.N) + 1) // round robin
	b := &types.Block{
		View:     view,
		Proposer: leader,
		Parent:   types.Hash{0xcc},
		QC:       types.GenesisQC(),
		Digest:   types.DigestPayload(payload),
	}
	sig, err := scheme.Sign(leader, types.SigningDigest(b.View, b.ID()))
	if err != nil {
		t.Fatal(err)
	}
	b.Sig = sig
	target := types.NodeID(4)
	if target == leader {
		target = 3
	}
	raw.Send(target, types.ProposalMsg{
		Block:      b,
		PayloadIDs: []types.TxID{payload[0].ID},
	})

	deadline := time.Now().Add(5 * time.Second)
	for {
		select {
		case env := <-raw.Inbox():
			if fm, ok := env.Msg.(types.FetchMsg); ok {
				if fm.BlockID != b.ID() {
					t.Fatalf("fetch for wrong block: %s", fm.BlockID)
				}
				return // fallback worked
			}
		case <-time.After(time.Until(deadline)):
			t.Fatal("no fetch fallback for unresolvable digest proposal")
		}
	}
}

// TestTamperedPayloadDigestRejected: the signed block ID covers the
// payload only through its digest, so a proposal whose inline payload
// does not hash to the carried digest must be dropped — otherwise a
// Byzantine proposer could commit one block ID with divergent
// payloads on different replicas. Runs in both verification modes,
// against a single isolated replica: with no quorum the view is
// pinned and nothing commits, so the forest neither prunes forks nor
// compacts — attachment is directly and stably observable through
// the fetch path.
func TestTamperedPayloadDigestRejected(t *testing.T) {
	for _, mode := range []string{"sync", "async"} {
		t.Run(mode, func(t *testing.T) {
			cfg := testCfg()
			cfg.AsyncVerify = mode == "async"
			sw := network.NewSwitch(nil)
			// Only replica 4 runs; peers 1-3 exist solely as signing
			// identities (HMAC's shared key stands in for a Byzantine
			// proposer forging their votes).
			ep, err := sw.Join(4)
			if err != nil {
				t.Fatal(err)
			}
			scheme, err := crypto.NewScheme(cfg.CryptoScheme, cfg.N, cfg.Seed)
			if err != nil {
				t.Fatal(err)
			}
			node := NewNode(4, cfg, hotstuff.New, ep, scheme, Options{})
			node.Start()
			t.Cleanup(node.Stop)
			raw, err := sw.JoinClient(888)
			if err != nil {
				t.Fatal(err)
			}

			payload := []types.Transaction{{ID: types.TxID{Client: 50, Seq: 1}, Command: []byte("real")}}
			otherPayload := []types.Transaction{{ID: types.TxID{Client: 50, Seq: 2}, Command: []byte("fake")}}
			mk := func(p []types.Transaction, digest types.Hash) *types.Block {
				// View 1's leader is replica 1 under round robin.
				b := &types.Block{
					View:     1,
					Proposer: 1,
					Parent:   types.Genesis().ID(),
					QC:       types.GenesisQC(),
					Payload:  p,
					Digest:   digest,
				}
				sig, err := scheme.Sign(1, types.SigningDigest(b.View, b.ID()))
				if err != nil {
					t.Fatal(err)
				}
				b.Sig = sig
				return b
			}
			// Tampered: inline payload does not hash to the carried
			// digest. Honest control: digest computed from payload.
			tampered := mk(payload, types.DigestPayload(otherPayload))
			honest := mk(payload, types.Hash{})
			raw.Send(4, types.ProposalMsg{Block: tampered})
			raw.Send(4, types.ProposalMsg{Block: honest})

			// Observe through the fetch path: an attached block is
			// servable; a rejected one is not.
			fetchable := func(id types.Hash, wait time.Duration) bool {
				deadline := time.After(wait)
				raw.Send(4, types.FetchMsg{BlockID: id})
				for {
					select {
					case env := <-raw.Inbox():
						if pm, ok := env.Msg.(types.ProposalMsg); ok && pm.Block != nil && pm.Block.ID() == id {
							return true
						}
					case <-deadline:
						return false
					}
				}
			}
			deadline := time.Now().Add(5 * time.Second)
			for !fetchable(honest.ID(), 100*time.Millisecond) {
				if time.Now().After(deadline) {
					t.Fatal("control block with a consistent digest was not attached")
				}
			}
			if fetchable(tampered.ID(), 300*time.Millisecond) {
				t.Fatal("proposal with a tampered payload digest was attached")
			}
		})
	}
}

// TestParkedProposalForgedTCNotTrusted: a digest proposal that parks
// and later resolves must not re-deliver its piggybacked TC as
// pre-verified — in sync-digest mode the TC was never pool-checked,
// and a forged one would advance the view without a quorum.
func TestParkedProposalForgedTCNotTrusted(t *testing.T) {
	cfg := testCfg()
	cfg.DigestProposals = true // sync verify + digest: the exposed combination
	sw := network.NewSwitch(nil)
	ep, err := sw.Join(4)
	if err != nil {
		t.Fatal(err)
	}
	scheme, err := crypto.NewScheme(cfg.CryptoScheme, cfg.N, cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	node := NewNode(4, cfg, hotstuff.New, ep, scheme, Options{})
	node.Start()
	t.Cleanup(node.Stop)
	raw, err := sw.JoinClient(889)
	if err != nil {
		t.Fatal(err)
	}

	payload := []types.Transaction{{ID: types.TxID{Client: 60, Seq: 1}, Command: []byte("x")}}
	b := &types.Block{
		View:     1,
		Proposer: 1,
		Parent:   types.Genesis().ID(),
		QC:       types.GenesisQC(),
		Digest:   types.DigestPayload(payload),
	}
	sig, err := scheme.Sign(1, types.SigningDigest(b.View, b.ID()))
	if err != nil {
		t.Fatal(err)
	}
	b.Sig = sig
	forgedTC := &types.TC{
		View:    1 << 30,
		Signers: []types.NodeID{1, 2, 3},
		Sigs:    [][]byte{[]byte("no"), []byte("nope"), []byte("never")},
	}
	// Digest proposal with an unresolvable payload parks; the payload
	// arrives on the data plane moments later, triggering the retry
	// path that re-enters onProposal with the piggybacked TC.
	raw.Send(4, types.ProposalMsg{
		Block:      b,
		TC:         forgedTC,
		PayloadIDs: []types.TxID{payload[0].ID},
	})
	raw.Send(4, types.PayloadBatchMsg{Txs: payload})

	// The retry resolves and attaches the block...
	deadline := time.Now().Add(5 * time.Second)
	for node.Pipeline().Snapshot().DigestResolved == 0 {
		if time.Now().After(deadline) {
			t.Fatal("parked digest proposal never resolved")
		}
		time.Sleep(2 * time.Millisecond)
	}
	// ...but the forged TC must not have advanced the view.
	if v := node.Status().CurView; v >= 1<<30 {
		t.Fatalf("forged TC on the retry path advanced the view to %d", v)
	}
}

// TestStagedCommitAppliesInOrder: with AsyncCommit on, the Execute
// hook observes every committed payload exactly once, in commit
// order, and Stop drains the backlog.
func TestStagedCommitAppliesInOrder(t *testing.T) {
	cfg := pipelineCfg()
	sw := network.NewSwitch(nil)
	transports := make(map[types.NodeID]network.Transport, cfg.N)
	for i := 1; i <= cfg.N; i++ {
		ep, err := sw.Join(types.NodeID(i))
		if err != nil {
			t.Fatal(err)
		}
		transports[types.NodeID(i)] = ep
	}
	scheme, err := crypto.NewScheme(cfg.CryptoScheme, cfg.N, cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	var applied atomic.Uint64
	var lastSeq uint64
	nodes := make([]*Node, 0, cfg.N)
	for i := 1; i <= cfg.N; i++ {
		id := types.NodeID(i)
		opts := Options{}
		if id == 1 {
			opts.Execute = func(txs []types.Transaction) {
				for i := range txs {
					// Single client submitting sequential IDs: commit
					// order must preserve submission order.
					if txs[i].ID.Seq <= lastSeq {
						t.Errorf("out-of-order apply: seq %d after %d", txs[i].ID.Seq, lastSeq)
					}
					lastSeq = txs[i].ID.Seq
					applied.Add(1)
				}
			}
		}
		nodes = append(nodes, NewNode(id, cfg, hotstuff.New, transports[id], scheme, opts))
	}
	for _, n := range nodes {
		n.Start()
	}
	const total = 60
	for i := 1; i <= total; i++ {
		nodes[0].Submit(types.Transaction{ID: types.TxID{Client: 7, Seq: uint64(i)}})
	}
	deadline := time.Now().Add(10 * time.Second)
	for nodes[0].Tracker().Snapshot().TxCommitted < total {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d transactions committed",
				nodes[0].Tracker().Snapshot().TxCommitted, total)
		}
		time.Sleep(5 * time.Millisecond)
	}
	committed := nodes[0].Tracker().Snapshot().TxCommitted
	for _, n := range nodes {
		n.Stop()
	}
	if got := applied.Load(); got != committed {
		t.Fatalf("applied %d of %d committed transactions after Stop", got, committed)
	}
	if nodes[0].Pipeline().Snapshot().BlocksApplied == 0 {
		t.Fatal("commit-apply stage never ran")
	}
}

package core

import (
	"math/rand"
	"testing"
	"time"

	"github.com/bamboo-bft/bamboo/internal/config"
	"github.com/bamboo-bft/bamboo/internal/network"
	"github.com/bamboo-bft/bamboo/internal/types"
)

// startSwitchCluster runs cfg.N engine nodes on a fresh switch and
// returns the nodes plus a raw endpoint joined as the given intruder
// ID for crafting hostile traffic.
func startSwitchCluster(t *testing.T, intruder types.NodeID) ([]*Node, *network.Endpoint) {
	t.Helper()
	return startSwitchClusterCfg(t, testCfg(), intruder)
}

// startSwitchClusterCfg is startSwitchCluster with an explicit
// configuration (pipeline-mode variants).
func startSwitchClusterCfg(t *testing.T, cfg config.Config, intruder types.NodeID) ([]*Node, *network.Endpoint) {
	t.Helper()
	sw := network.NewSwitch(nil)
	transports := make(map[types.NodeID]network.Transport, cfg.N)
	for i := 1; i <= cfg.N; i++ {
		ep, err := sw.Join(types.NodeID(i))
		if err != nil {
			t.Fatal(err)
		}
		transports[types.NodeID(i)] = ep
	}
	nodes := buildNodes(t, cfg, transports)
	for _, n := range nodes {
		n.Start()
	}
	t.Cleanup(func() {
		for _, n := range nodes {
			n.Stop()
		}
	})
	raw, err := sw.JoinClient(intruder)
	if err != nil {
		t.Fatal(err)
	}
	return nodes, raw
}

// waitProgress asserts the cluster commits past `beyond` soon.
func waitProgress(t *testing.T, nodes []*Node, beyond uint64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if nodes[len(nodes)-1].Status().CommittedHeight > beyond {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("no progress past height %d", beyond)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestEngineSurvivesMalformedMessages floods a live cluster with
// hostile garbage — nil payloads, forged signatures, stale and future
// views, junk types — and requires continued progress, zero panics,
// and zero safety violations.
func TestEngineSurvivesMalformedMessages(t *testing.T) {
	nodes, raw := startSwitchCluster(t, 666)
	nodes[0].Submit(types.Transaction{ID: types.TxID{Client: 1, Seq: 1}})
	waitProgress(t, nodes, 0)

	hostile := []any{
		types.ProposalMsg{},                             // nil block
		types.ProposalMsg{Block: &types.Block{}},        // no QC
		types.VoteMsg{},                                 // nil vote
		types.TimeoutMsg{},                              // nil timeout
		types.TCMsg{},                                   // nil TC
		types.FetchMsg{BlockID: types.Hash{0xde, 0xad}}, // unknown block
		types.QueryMsg{Height: 1 << 60},                 // absurd height
		"a string, not a protocol message",              // junk type
		42,                                              // more junk
		types.ReplyMsg{TxID: types.TxID{Client: 9, Seq: 9}}, // replies to a replica
		types.RequestMsg{}, // zero-value transaction
		types.SlowMsg{DelayMeanNanos: -5, DelayStdNanos: -5}, // nonsense delays
	}
	// Forged consensus messages: bad signatures, wrong proposers,
	// time-traveling views.
	forged := []any{
		types.ProposalMsg{Block: &types.Block{
			View: 5, Proposer: 1, QC: types.GenesisQC(), Sig: []byte("forged"),
		}},
		types.ProposalMsg{Block: &types.Block{
			View: 3, Proposer: 4, // wrong leader for view 3 (round robin)
			QC: types.GenesisQC(), Sig: []byte("x"),
		}},
		types.VoteMsg{Vote: &types.Vote{View: 2, Voter: 2, Sig: []byte("forged")}},
		types.VoteMsg{Vote: &types.Vote{View: 1 << 40, Voter: 3, Sig: []byte("future")}},
		types.TimeoutMsg{Timeout: &types.Timeout{View: 1 << 40, Voter: 3, Sig: []byte("future")}},
		types.TCMsg{TC: &types.TC{View: 1 << 40, Signers: []types.NodeID{1, 2, 3},
			Sigs: [][]byte{{1}, {2}, {3}}}},
	}
	rng := rand.New(rand.NewSource(1))
	for round := 0; round < 50; round++ {
		for _, msg := range hostile {
			raw.Send(types.NodeID(rng.Intn(4)+1), msg)
		}
		for _, msg := range forged {
			raw.Send(types.NodeID(rng.Intn(4)+1), msg)
		}
	}
	before := nodes[len(nodes)-1].Status().CommittedHeight
	nodes[0].Submit(types.Transaction{ID: types.TxID{Client: 1, Seq: 2}})
	waitProgress(t, nodes, before)
	for _, n := range nodes {
		if n.Violations() != 0 {
			t.Fatalf("node %s reported safety violations under hostile traffic", n.ID())
		}
	}
	// Honest replicas still agree.
	min := nodes[0].Status().CommittedHeight
	for _, n := range nodes[1:] {
		if h := n.Status().CommittedHeight; h < min {
			min = h
		}
	}
	if min > 0 {
		want, _ := nodes[0].HashAt(min)
		for _, n := range nodes[1:] {
			if got, ok := n.HashAt(min); ok && got != want {
				t.Fatalf("divergence at height %d under hostile traffic", min)
			}
		}
	}
}

// TestForgedQCNeverCertifies: a fabricated quorum certificate with
// invalid signatures must not advance any replica's chain state.
func TestForgedQCNeverCertifies(t *testing.T) {
	nodes, raw := startSwitchCluster(t, 667)
	nodes[0].Submit(types.Transaction{ID: types.TxID{Client: 1, Seq: 1}})
	waitProgress(t, nodes, 0)
	// Build a block with a forged QC certifying a fantasy parent at a
	// far-future view; replicas must reject it during verification.
	forgedQC := &types.QC{
		View:    1 << 30,
		BlockID: types.Hash{0xbb},
		Signers: []types.NodeID{1, 2, 3},
		Sigs:    [][]byte{[]byte("no"), []byte("not"), []byte("nope")},
	}
	b := &types.Block{View: 1<<30 + 1, Proposer: 2, Parent: types.Hash{0xbb}, QC: forgedQC}
	for i := 1; i <= 4; i++ {
		raw.Send(types.NodeID(i), types.ProposalMsg{Block: b})
	}
	time.Sleep(100 * time.Millisecond)
	for _, n := range nodes {
		if n.Status().CurView >= 1<<30 {
			t.Fatalf("node %s jumped to the forged view", n.ID())
		}
	}
}

// TestFetchServesKnownBlocks: the catch-up path answers with the
// requested ancestor.
func TestFetchServesKnownBlocks(t *testing.T) {
	nodes, raw := startSwitchCluster(t, 668)
	nodes[0].Submit(types.Transaction{ID: types.TxID{Client: 1, Seq: 1}})
	waitProgress(t, nodes, 1)
	h, ok := nodes[3].HashAt(nodes[3].Status().CommittedHeight)
	if !ok {
		t.Fatal("no committed hash")
	}
	raw.Send(4, types.FetchMsg{BlockID: h})
	select {
	case env := <-raw.Inbox():
		pm, isProposal := env.Msg.(types.ProposalMsg)
		if !isProposal || pm.Block == nil || pm.Block.ID() != h {
			t.Fatalf("fetch answered with %T", env.Msg)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("fetch unanswered")
	}
}

// TestQueryAnswersConsistently: QueryMsg returns the committed state.
func TestQueryAnswersConsistently(t *testing.T) {
	nodes, raw := startSwitchCluster(t, 669)
	nodes[0].Submit(types.Transaction{ID: types.TxID{Client: 1, Seq: 1}})
	waitProgress(t, nodes, 1)
	raw.Send(4, types.QueryMsg{})
	select {
	case env := <-raw.Inbox():
		qr, isReply := env.Msg.(types.QueryReplyMsg)
		if !isReply {
			t.Fatalf("query answered with %T", env.Msg)
		}
		if qr.CommittedHeight == 0 || qr.BlockHash.IsZero() {
			t.Fatalf("empty query reply: %+v", qr)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("query unanswered")
	}
}

package core

import (
	"runtime"
	"sync"
	"time"

	"github.com/bamboo-bft/bamboo/internal/crypto"
	"github.com/bamboo-bft/bamboo/internal/types"
)

// verifyQueueCap bounds the off-loop verification queue; when full,
// the event loop verifies inline (graceful degradation instead of
// unbounded buffering).
const verifyQueueCap = 1024

// verifyBatchMax caps how many queued votes one worker folds into a
// single batch verification.
const verifyBatchMax = 32

// verifiedEnv re-injects a message whose signatures the verification
// pool has already checked, preserving the original sender.
type verifiedEnv struct {
	from types.NodeID
	msg  any
}

// verifyJob is one message awaiting signature verification.
type verifyJob struct {
	from types.NodeID
	msg  any
	enq  time.Time
}

// verifier is the bounded worker pool of pipeline stage 2: it checks
// proposal, vote, and timeout signatures off the event loop and
// re-injects verified events, so the forest and safety rules stay
// single-threaded and lock-free while crypto runs in parallel.
type verifier struct {
	n    *Node
	jobs chan verifyJob
	wg   sync.WaitGroup
}

// newVerifier starts `workers` verification goroutines (0 = NumCPU,
// capped at 8).
func newVerifier(n *Node, workers int) *verifier {
	if workers <= 0 {
		workers = runtime.NumCPU()
		if workers > 8 {
			workers = 8
		}
	}
	if workers < 1 {
		workers = 1
	}
	v := &verifier{n: n, jobs: make(chan verifyJob, verifyQueueCap)}
	v.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go v.worker()
	}
	return v
}

// submit queues a message for off-loop verification; false means the
// queue is full and the caller should verify inline.
func (v *verifier) submit(from types.NodeID, msg any) bool {
	select {
	case v.jobs <- verifyJob{from: from, msg: msg, enq: time.Now()}:
		return true
	default:
		return false
	}
}

// stop drains the workers. Call only after the event loop has exited
// (no more submissions).
func (v *verifier) stop() {
	close(v.jobs)
	v.wg.Wait()
}

// worker verifies jobs until the queue closes. Votes are drained
// opportunistically into one batch so a burst of n−1 vote signatures
// costs one batch-verification call.
func (v *verifier) worker() {
	defer v.wg.Done()
	for job := range v.jobs {
		if _, isVote := job.msg.(types.VoteMsg); !isVote {
			v.verifyOne(job)
			continue
		}
		votes := []verifyJob{job}
	drain:
		for len(votes) < verifyBatchMax {
			select {
			case next, open := <-v.jobs:
				if !open {
					break drain
				}
				if _, isVote := next.msg.(types.VoteMsg); isVote {
					votes = append(votes, next)
				} else {
					v.verifyOne(next)
				}
			default:
				break drain
			}
		}
		v.verifyVotes(votes)
	}
}

// inject hands a verified message back to the event loop.
func (v *verifier) inject(from types.NodeID, msg any) {
	select {
	case v.n.events <- verifiedEnv{from: from, msg: msg}:
	case <-v.n.stopCh:
	}
}

// verifyVotes batch-verifies a set of vote signatures; a forged vote
// in the batch is rejected individually without dropping the honest
// votes around it.
func (v *verifier) verifyVotes(jobs []verifyJob) {
	bv := crypto.NewBatchVerifier(v.n.scheme)
	for _, j := range jobs {
		vote := j.msg.(types.VoteMsg).Vote
		if vote == nil {
			continue
		}
		bv.Add(vote.Voter, types.SigningDigest(vote.View, vote.BlockID), vote.Sig)
	}
	sigs := bv.Len()
	ok, err := bv.Verify()
	v.n.pipeline.OnVerifyBatch(time.Since(jobs[0].enq), sigs, err != nil)
	i := 0
	for _, j := range jobs {
		if j.msg.(types.VoteMsg).Vote == nil {
			continue
		}
		if ok[i] {
			v.inject(j.from, j.msg)
		} else {
			v.n.pipeline.OnVerifyRejected()
		}
		i++
	}
}

// verifyOne checks a proposal, timeout, or TC message, mirroring the
// synchronous path's acceptance rules:
//
//   - proposal: proposer signature and embedded QC must verify or the
//     message is dropped; an invalid piggybacked TC is stripped (the
//     sync path rejects the TC but still processes the proposal).
//   - timeout: the timeout signature must verify; an invalid carried
//     high-QC is stripped (the sync path skips adopting it).
//   - TC: certificate and carried high-QC must verify or the message
//     is dropped.
func (v *verifier) verifyOne(job verifyJob) {
	n := v.n
	quorum := n.cfg.Quorum()
	switch m := job.msg.(type) {
	case types.ProposalMsg:
		b := m.Block
		if b == nil || b.QC == nil {
			// Structurally hopeless; the loop handler drops it.
			v.inject(job.from, m)
			return
		}
		sigs := 1 + len(b.QC.Sigs)
		if err := n.scheme.Verify(b.Proposer, types.SigningDigest(b.View, b.ID()), b.Sig); err != nil {
			n.pipeline.OnVerifyBatch(time.Since(job.enq), 1, true)
			n.pipeline.OnVerifyRejected()
			return
		}
		if err := crypto.VerifyQCBatch(n.scheme, b.QC, quorum); err != nil {
			n.pipeline.OnVerifyBatch(time.Since(job.enq), sigs, true)
			n.pipeline.OnVerifyRejected()
			return
		}
		// Payload-to-digest binding for full proposals (the signed ID
		// covers only the digest); digest-only proposals are checked
		// during resolution on the loop.
		if len(b.Payload) > 0 && types.DigestPayload(b.Payload) != b.PayloadDigest() {
			n.pipeline.OnVerifyBatch(time.Since(job.enq), sigs, true)
			n.pipeline.OnVerifyRejected()
			return
		}
		fellBack := false
		if m.TC != nil {
			sigs += len(m.TC.Sigs)
			if !v.tcValid(m.TC, quorum) {
				m.TC = nil
				fellBack = true
			}
		}
		n.pipeline.OnVerifyBatch(time.Since(job.enq), sigs, fellBack)
		v.inject(job.from, m)
	case types.TimeoutMsg:
		t := m.Timeout
		if t == nil {
			v.inject(job.from, m)
			return
		}
		if err := n.scheme.Verify(t.Voter, types.TimeoutDigest(t.View), t.Sig); err != nil {
			n.pipeline.OnVerifyBatch(time.Since(job.enq), 1, true)
			n.pipeline.OnVerifyRejected()
			return
		}
		sigs := 1
		fellBack := false
		if t.HighQC != nil && !t.HighQC.IsGenesis() {
			sigs += len(t.HighQC.Sigs)
			if crypto.VerifyQCBatch(n.scheme, t.HighQC, quorum) != nil {
				// Strip the bad certificate but keep the timeout:
				// the signature covers only (view), so the vote
				// toward the TC remains sound.
				stripped := *t
				stripped.HighQC = nil
				m.Timeout = &stripped
				fellBack = true
			}
		}
		n.pipeline.OnVerifyBatch(time.Since(job.enq), sigs, fellBack)
		v.inject(job.from, m)
	case types.TCMsg:
		tc := m.TC
		if tc == nil {
			v.inject(job.from, m)
			return
		}
		sigs := len(tc.Sigs)
		if !v.tcValid(tc, quorum) {
			n.pipeline.OnVerifyBatch(time.Since(job.enq), sigs, true)
			n.pipeline.OnVerifyRejected()
			return
		}
		n.pipeline.OnVerifyBatch(time.Since(job.enq), sigs, false)
		v.inject(job.from, m)
	default:
		v.inject(job.from, job.msg)
	}
}

// tcValid checks a timeout certificate and its carried high-QC.
func (v *verifier) tcValid(tc *types.TC, quorum int) bool {
	if crypto.VerifyTCBatch(v.n.scheme, tc, quorum) != nil {
		return false
	}
	if tc.HighQC != nil && !tc.HighQC.IsGenesis() {
		if crypto.VerifyQCBatch(v.n.scheme, tc.HighQC, quorum) != nil {
			return false
		}
	}
	return true
}

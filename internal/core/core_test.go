package core

import (
	"testing"
	"time"

	"github.com/bamboo-bft/bamboo/internal/config"
	"github.com/bamboo-bft/bamboo/internal/crypto"
	"github.com/bamboo-bft/bamboo/internal/network"
	"github.com/bamboo-bft/bamboo/internal/protocol/hotstuff"
	"github.com/bamboo-bft/bamboo/internal/types"
)

// testCfg is a minimal 4-node configuration.
func testCfg() config.Config {
	cfg := config.Default()
	cfg.Protocol = config.ProtocolHotStuff
	cfg.ApplyProtocolDefaults()
	cfg.CryptoScheme = "hmac"
	cfg.BlockSize = 10
	cfg.MemSize = 1 << 12
	cfg.Timeout = 150 * time.Millisecond
	return cfg
}

// buildNodes assembles n engine nodes over the given transports.
func buildNodes(t *testing.T, cfg config.Config, transports map[types.NodeID]network.Transport) []*Node {
	t.Helper()
	scheme, err := crypto.NewScheme(cfg.CryptoScheme, cfg.N, cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	nodes := make([]*Node, 0, cfg.N)
	for i := 1; i <= cfg.N; i++ {
		id := types.NodeID(i)
		n := NewNode(id, cfg, hotstuff.New, transports[id], scheme, Options{
			OnViolation: func(err error) { t.Errorf("violation: %v", err) },
		})
		nodes = append(nodes, n)
	}
	return nodes
}

// TestConsensusOverTCP runs real chained HotStuff over loopback TCP —
// the multi-process deployment path, in one test binary.
func TestConsensusOverTCP(t *testing.T) {
	cfg := testCfg()
	// Bind ephemeral ports first, then share the address book.
	addrs := map[types.NodeID]string{}
	for i := 1; i <= cfg.N; i++ {
		addrs[types.NodeID(i)] = "127.0.0.1:0"
	}
	tcp := make(map[types.NodeID]*network.TCP, cfg.N)
	transports := make(map[types.NodeID]network.Transport, cfg.N)
	for i := 1; i <= cfg.N; i++ {
		id := types.NodeID(i)
		tr, err := network.NewTCP(id, addrs)
		if err != nil {
			t.Fatal(err)
		}
		addrs[id] = tr.Addr()
		tcp[id] = tr
		transports[id] = tr
	}
	cfg.Addrs = addrs
	nodes := buildNodes(t, cfg, transports)
	// Propagate the bound ephemeral ports into every address book.
	for _, tr := range tcp {
		for pid, addr := range addrs {
			tr.SetPeerAddr(pid, addr)
		}
	}
	for _, n := range nodes {
		n.Start()
	}
	defer func() {
		for _, n := range nodes {
			n.Stop()
		}
		for _, tr := range tcp {
			_ = tr.Close()
		}
	}()

	// Submit transactions to node 1 and wait for commits everywhere.
	for i := 0; i < 50; i++ {
		nodes[0].Submit(types.Transaction{
			ID: types.TxID{Client: 500, Seq: uint64(i + 1)},
		})
	}
	deadline := time.Now().Add(15 * time.Second)
	for {
		done := true
		for _, n := range nodes {
			if n.Status().CommittedHeight < 5 {
				done = false
			}
		}
		if done {
			break
		}
		if time.Now().After(deadline) {
			for _, n := range nodes {
				t.Logf("node %s: %+v", n.ID(), n.Status())
			}
			t.Fatal("TCP cluster made no progress")
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Consistency across TCP replicas.
	h := nodes[0].Status().CommittedHeight
	for _, n := range nodes[1:] {
		if nh := n.Status().CommittedHeight; nh < h {
			h = nh
		}
	}
	want, _ := nodes[0].HashAt(h)
	for _, n := range nodes[1:] {
		got, ok := n.HashAt(h)
		if ok && got != want {
			t.Fatalf("TCP replicas diverged at height %d", h)
		}
	}
}

// TestStatusAndHashAt covers the cross-thread snapshot surface.
func TestStatusAndHashAt(t *testing.T) {
	cfg := testCfg()
	sw := network.NewSwitch(nil)
	transports := make(map[types.NodeID]network.Transport, cfg.N)
	for i := 1; i <= cfg.N; i++ {
		ep, err := sw.Join(types.NodeID(i))
		if err != nil {
			t.Fatal(err)
		}
		transports[types.NodeID(i)] = ep
	}
	nodes := buildNodes(t, cfg, transports)
	for _, n := range nodes {
		n.Start()
	}
	defer func() {
		for _, n := range nodes {
			n.Stop()
		}
	}()
	nodes[0].Submit(types.Transaction{ID: types.TxID{Client: 1, Seq: 1}})
	deadline := time.Now().Add(5 * time.Second)
	for nodes[0].Status().CommittedHeight == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no commit")
		}
		time.Sleep(2 * time.Millisecond)
	}
	s := nodes[0].Status()
	if s.CommittedHash.IsZero() || s.CommittedView == 0 || s.CurView == 0 {
		t.Fatalf("incomplete status: %+v", s)
	}
	if _, ok := nodes[0].HashAt(1); !ok {
		t.Fatal("HashAt(1) missing after commit")
	}
	if _, ok := nodes[0].HashAt(0); ok {
		t.Fatal("HashAt(0) must be absent (genesis is implicit)")
	}
	if _, ok := nodes[0].HashAt(1 << 40); ok {
		t.Fatal("HashAt far future must be absent")
	}
	if nodes[0].ID() != 1 {
		t.Fatal("ID accessor wrong")
	}
	if nodes[0].Violations() != 0 {
		t.Fatal("spurious violations")
	}
}

// TestStopIsIdempotentAndSubmitAfterStop: lifecycle edges.
func TestStopIsIdempotentAndSubmitAfterStop(t *testing.T) {
	cfg := testCfg()
	sw := network.NewSwitch(nil)
	ep, err := sw.Join(1)
	if err != nil {
		t.Fatal(err)
	}
	scheme, err := crypto.NewScheme("hmac", cfg.N, 1)
	if err != nil {
		t.Fatal(err)
	}
	n := NewNode(1, cfg, hotstuff.New, ep, scheme, Options{})
	n.Start()
	n.Stop()
	n.Stop()                                                       // second stop: no deadlock
	n.Submit(types.Transaction{ID: types.TxID{Client: 1, Seq: 1}}) // no panic
}

package core

import (
	"path/filepath"
	"testing"
	"time"

	"github.com/bamboo-bft/bamboo/internal/config"
	"github.com/bamboo-bft/bamboo/internal/crypto"
	"github.com/bamboo-bft/bamboo/internal/kvstore"
	"github.com/bamboo-bft/bamboo/internal/ledger"
	"github.com/bamboo-bft/bamboo/internal/network"
	"github.com/bamboo-bft/bamboo/internal/protocol/hotstuff"
	"github.com/bamboo-bft/bamboo/internal/safety"
	"github.com/bamboo-bft/bamboo/internal/snapshot"
	"github.com/bamboo-bft/bamboo/internal/types"
)

// syncTestCfg shrinks the keep window to the minimum and parks the
// view timer so direct-drive tests control every event.
func syncTestCfg() config.Config {
	cfg := testCfg()
	cfg.ForestKeep = 8
	cfg.Timeout = time.Hour
	return cfg
}

// buildCertifiedChain manufactures `length` committed blocks with real
// quorum certificates: block h is proposed by the round-robin leader
// of view h and certified by a quorum of signatures the next block
// carries — the exact material an honest peer's ledger serves.
func buildCertifiedChain(t *testing.T, scheme crypto.Scheme, cfg config.Config, length int) []*types.Block {
	t.Helper()
	parentQC := types.GenesisQC()
	chain := make([]*types.Block, 0, length)
	for h := 1; h <= length; h++ {
		view := types.View(h)
		proposer := types.NodeID((h-1)%cfg.N + 1)
		payload := []types.Transaction{{
			ID:      types.TxID{Client: 900, Seq: uint64(h)},
			Command: kvstore.EncodeSet("k", []byte{byte(h)}, 0),
		}}
		b := safety.BuildBlock(proposer, view, parentQC, payload)
		sig, err := scheme.Sign(proposer, types.SigningDigest(view, b.ID()))
		if err != nil {
			t.Fatal(err)
		}
		b.Sig = sig
		qc := &types.QC{View: view, BlockID: b.ID()}
		for i := 1; i <= cfg.Quorum(); i++ {
			id := types.NodeID(i)
			s, err := scheme.Sign(id, types.SigningDigest(view, b.ID()))
			if err != nil {
				t.Fatal(err)
			}
			qc.Signers = append(qc.Signers, id)
			qc.Sigs = append(qc.Sigs, s)
		}
		chain = append(chain, b)
		parentQC = qc
	}
	return chain
}

// syncFixture is a single un-started replica on a switch whose other
// slots are raw endpoints, so tests drive the handlers directly and
// inspect exactly what the node sends.
type syncFixture struct {
	n     *Node
	store *kvstore.Store
	peers map[types.NodeID]*network.Endpoint
	chain []*types.Block
}

func newSyncFixture(t *testing.T, cfg config.Config, led *ledger.Ledger) *syncFixture {
	t.Helper()
	sw := network.NewSwitch(nil)
	peers := make(map[types.NodeID]*network.Endpoint, cfg.N)
	var self *network.Endpoint
	for i := 1; i <= cfg.N; i++ {
		ep, err := sw.Join(types.NodeID(i))
		if err != nil {
			t.Fatal(err)
		}
		if i == cfg.N {
			self = ep
		} else {
			peers[types.NodeID(i)] = ep
		}
	}
	scheme, err := crypto.NewScheme(cfg.CryptoScheme, cfg.N, cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	store := kvstore.New()
	snaps, err := snapshot.OpenStore(filepath.Join(t.TempDir(), "replica.snap"))
	if err != nil {
		t.Fatal(err)
	}
	n := NewNode(types.NodeID(cfg.N), cfg, hotstuff.New, self, scheme, Options{
		Execute:   store.Apply,
		Ledger:    led,
		State:     store,
		Snapshots: snaps,
		OnViolation: func(err error) {
			t.Errorf("violation during sync: %v", err)
		},
	})
	return &syncFixture{
		n:     n,
		store: store,
		peers: peers,
		chain: buildCertifiedChain(t, scheme, cfg, 40),
	}
}

// triggerDeepSync feeds the fixture an orphan whose certificate is far
// past the keep window and asserts the node enters catch-up mode,
// requesting from the orphan's sender.
func (fx *syncFixture) triggerDeepSync(t *testing.T, from types.NodeID) {
	t.Helper()
	deep := fx.chain[len(fx.chain)-1]
	fx.n.onProposal(from, types.ProposalMsg{Block: deep}, true)
	if fx.n.catchup.state == syncIdle {
		t.Fatal("deep orphan did not start catch-up")
	}
	if fx.n.catchup.target != from {
		t.Fatalf("sync target %s, want %s", fx.n.catchup.target, from)
	}
	wantFrom := fx.n.forest.CommittedHeight() + 1
	if got := fx.drainFor(t, from); got.From != wantFrom {
		t.Fatalf("request range starts at %d, want %d", got.From, wantFrom)
	}
}

// drainFor empties a peer's inbox and returns the last SyncRequestMsg
// seen there.
func (fx *syncFixture) drainFor(t *testing.T, id types.NodeID) types.SyncRequestMsg {
	t.Helper()
	var req types.SyncRequestMsg
	found := false
	for {
		select {
		case env := <-fx.peers[id].Inbox():
			if m, ok := env.Msg.(types.SyncRequestMsg); ok {
				req, found = m, true
			}
		default:
			if !found {
				t.Fatal("no sync request reached the serving peer")
			}
			return req
		}
	}
}

// TestDeepSyncHappyPath: a verified range fast-forwards forest, state
// machine, and ledger, holding back the uncertified tail, and the
// replica then serves shallow ranges back out of its own forest and
// deep ranges out of its ledger.
func TestDeepSyncHappyPath(t *testing.T) {
	cfg := syncTestCfg()
	led, err := ledger.OpenBuffered(filepath.Join(t.TempDir(), "sync.ledger"))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = led.Close() }()
	fx := newSyncFixture(t, cfg, led)
	fx.triggerDeepSync(t, 1)

	fx.n.onSyncResponse(1, types.SyncResponseMsg{From: 1, Blocks: fx.chain, Head: 40})
	wantHeight := uint64(len(fx.chain) - syncHoldback)
	if got := fx.n.forest.CommittedHeight(); got != wantHeight {
		t.Fatalf("committed height %d after sync, want %d (holdback %d)", got, wantHeight, syncHoldback)
	}
	if fx.n.catchup.state != syncIdle {
		t.Fatal("still syncing after reaching the served head")
	}
	if got := fx.store.Applied(); got != wantHeight {
		t.Fatalf("state machine applied %d txs, want %d", got, wantHeight)
	}
	if got := led.Height(); got != wantHeight {
		t.Fatalf("ledger height %d, want %d", got, wantHeight)
	}
	if got := fx.n.Pipeline().Snapshot().SyncBlocksApplied; got != wantHeight {
		t.Fatalf("SyncBlocksApplied = %d, want %d", got, wantHeight)
	}
	st := fx.n.Status()
	if st.Syncing || st.SyncApplied != wantHeight {
		t.Fatalf("status not reflecting sync: %+v", st)
	}

	// Shallow range: served from the forest keep window.
	fx.n.onSyncRequest(2, types.SyncRequestMsg{From: wantHeight - 3})
	resp := lastSyncResponse(t, fx.peers[2])
	if len(resp.Blocks) != 4 || resp.Head != wantHeight {
		t.Fatalf("forest-served range wrong: %d blocks, head %d", len(resp.Blocks), resp.Head)
	}
	// A hostile inverted range must be ignored, not allocated for.
	fx.n.onSyncRequest(2, types.SyncRequestMsg{From: 30, To: 3})
	// Deep range: far below the keep window, served from the ledger.
	fx.n.onSyncRequest(2, types.SyncRequestMsg{From: 1, To: 10})
	resp = lastSyncResponse(t, fx.peers[2])
	if len(resp.Blocks) != 10 {
		t.Fatalf("ledger-served range wrong: %d blocks", len(resp.Blocks))
	}
	for i, b := range resp.Blocks {
		if b.ID() != fx.chain[i].ID() {
			t.Fatalf("ledger-served block %d has wrong identity", i)
		}
		if b.QC == nil {
			t.Fatalf("ledger-served block %d lost its certificate", i)
		}
	}
	if fx.n.Pipeline().Snapshot().SyncBatchesServed != 2 {
		t.Fatal("served batches not counted")
	}
}

// lastSyncResponse drains an endpoint and returns the last
// SyncResponseMsg delivered to it.
func lastSyncResponse(t *testing.T, ep *network.Endpoint) types.SyncResponseMsg {
	t.Helper()
	var resp types.SyncResponseMsg
	found := false
	for {
		select {
		case env := <-ep.Inbox():
			if m, ok := env.Msg.(types.SyncResponseMsg); ok {
				resp, found = m, true
			}
		default:
			if !found {
				t.Fatal("no sync response delivered")
			}
			return resp
		}
	}
}

// reblock rebuilds a block with a substituted payload — a tampering
// helper that leaves certificate and signature untouched, exactly what
// a Byzantine peer rewriting history would ship.
func reblock(b *types.Block, payload []types.Transaction) *types.Block {
	return &types.Block{
		View:     b.View,
		Proposer: b.Proposer,
		Parent:   b.Parent,
		QC:       b.QC,
		Payload:  payload,
		Sig:      b.Sig,
	}
}

// TestSyncRejectsTamperedBlocks: a response with one rewritten payload
// must be rejected wholesale, with forest and kvstore untouched.
func TestSyncRejectsTamperedBlocks(t *testing.T) {
	fx := newSyncFixture(t, syncTestCfg(), nil)
	fx.triggerDeepSync(t, 1)

	forged := make([]*types.Block, len(fx.chain))
	copy(forged, fx.chain)
	forged[10] = reblock(fx.chain[10], []types.Transaction{{
		ID:      types.TxID{Client: 666, Seq: 1},
		Command: kvstore.EncodeSet("stolen", []byte("funds"), 0),
	}})
	fx.n.onSyncResponse(1, types.SyncResponseMsg{From: 1, Blocks: forged, Head: 40})

	if h := fx.n.forest.CommittedHeight(); h != 0 {
		t.Fatalf("tampered range advanced the chain to %d", h)
	}
	if fx.store.Applied() != 0 {
		t.Fatal("tampered range reached the state machine")
	}
	if fx.n.Pipeline().Snapshot().SyncRejected == 0 {
		t.Fatal("tampered response not counted as rejected")
	}
	if fx.n.catchup.state == syncIdle {
		t.Fatal("rejection must keep catch-up alive for a retry")
	}
	if fx.n.catchup.target == 1 {
		t.Fatal("target not rotated away from the lying peer")
	}
}

// TestSyncRejectsWrongRange: a reply whose range does not start at the
// requester's next height is dropped before verification.
func TestSyncRejectsWrongRange(t *testing.T) {
	fx := newSyncFixture(t, syncTestCfg(), nil)
	fx.triggerDeepSync(t, 1)

	fx.n.onSyncResponse(1, types.SyncResponseMsg{From: 5, Blocks: fx.chain[4:20], Head: 40})
	if h := fx.n.forest.CommittedHeight(); h != 0 {
		t.Fatalf("mis-ranged reply advanced the chain to %d", h)
	}
	if fx.n.Pipeline().Snapshot().SyncRejected != 1 {
		t.Fatal("mis-ranged reply not counted as rejected")
	}
}

// TestSyncRejectsUnsolicited: responses out of the blue — no catch-up
// episode, or from a peer other than the one asked — change nothing.
func TestSyncRejectsUnsolicited(t *testing.T) {
	fx := newSyncFixture(t, syncTestCfg(), nil)
	// No episode at all.
	fx.n.onSyncResponse(1, types.SyncResponseMsg{From: 1, Blocks: fx.chain, Head: 40})
	if h := fx.n.forest.CommittedHeight(); h != 0 {
		t.Fatalf("unsolicited response applied: height %d", h)
	}
	if fx.store.Applied() != 0 {
		t.Fatal("unsolicited response reached the state machine")
	}
	if fx.n.Pipeline().Snapshot().SyncRejected != 1 {
		t.Fatal("unsolicited response not counted")
	}
	// Episode active, but the reply comes from the wrong replica.
	fx.triggerDeepSync(t, 1)
	fx.n.onSyncResponse(2, types.SyncResponseMsg{From: 1, Blocks: fx.chain, Head: 40})
	if h := fx.n.forest.CommittedHeight(); h != 0 {
		t.Fatalf("wrong-peer response applied: height %d", h)
	}
	if fx.n.Pipeline().Snapshot().SyncRejected != 2 {
		t.Fatal("wrong-peer response not counted")
	}
}

// TestSyncRejectsForgedGenesisCertificates: view-0 certificates are
// implicitly valid only for the true genesis block; a chain that uses
// them to skip signature checks anywhere else must die.
func TestSyncRejectsForgedGenesisCertificates(t *testing.T) {
	cfg := syncTestCfg()
	fx := newSyncFixture(t, cfg, nil)
	fx.triggerDeepSync(t, 1)

	// Rebuild the first blocks with "genesis" QCs: no signatures at
	// all, each naming its parent so the structural checks pass.
	forged := make([]*types.Block, 8)
	parent := types.Genesis().ID()
	for i := range forged {
		b := safety.BuildBlock(types.NodeID(i%cfg.N+1), types.View(i+1),
			&types.QC{View: 0, BlockID: parent}, nil)
		forged[i] = b
		parent = b.ID()
	}
	fx.n.onSyncResponse(1, types.SyncResponseMsg{From: 1, Blocks: forged, Head: 40})
	if h := fx.n.forest.CommittedHeight(); h != 0 {
		t.Fatalf("forged-genesis chain applied: height %d", h)
	}
	if fx.n.Pipeline().Snapshot().SyncRejected == 0 {
		t.Fatal("forged-genesis chain not rejected")
	}
}

// TestSyncRejectsSubQuorumCertificates: certificates signed by fewer
// than a quorum (here, a single colluding replica) are refused.
func TestSyncRejectsSubQuorumCertificates(t *testing.T) {
	cfg := syncTestCfg()
	fx := newSyncFixture(t, cfg, nil)
	fx.triggerDeepSync(t, 1)

	scheme, err := crypto.NewScheme(cfg.CryptoScheme, cfg.N, cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	forged := make([]*types.Block, 8)
	parentQC := types.GenesisQC()
	for i := range forged {
		view := types.View(i + 1)
		b := safety.BuildBlock(1, view, parentQC, nil)
		forged[i] = b
		sig, err := scheme.Sign(1, types.SigningDigest(view, b.ID()))
		if err != nil {
			t.Fatal(err)
		}
		parentQC = &types.QC{View: view, BlockID: b.ID(),
			Signers: []types.NodeID{1}, Sigs: [][]byte{sig}}
	}
	fx.n.onSyncResponse(1, types.SyncResponseMsg{From: 1, Blocks: forged, Head: 40})
	if h := fx.n.forest.CommittedHeight(); h != 0 {
		t.Fatalf("sub-quorum chain applied: height %d", h)
	}
	if fx.n.Pipeline().Snapshot().SyncRejected == 0 {
		t.Fatal("sub-quorum chain not rejected")
	}
}

// TestSyncRetryRotatesTarget: a stalled round (silent or crashed
// serving peer) rotates to the next replica and re-sends, skipping
// this replica's own ID. A retry whose view gap has closed instead
// ends the episode — TestSyncRetryEndsCaughtUpEpisode below.
func TestSyncRetryRotatesTarget(t *testing.T) {
	fx := newSyncFixture(t, syncTestCfg(), nil)
	fx.triggerDeepSync(t, 3)

	// Live certificates keep advancing the pacemaker during a real
	// episode; mirror that, or the retry handler concludes the view
	// gap has closed and (correctly) retires the episode instead.
	fx.n.handleQC(fx.chain[len(fx.chain)-1].QC)
	fx.n.onSyncRetry(syncRetryEvent{epoch: fx.n.catchup.epoch})
	if fx.n.catchup.target != 1 {
		t.Fatalf("stalled round rotated to %s, want n1 (n4 is self)", fx.n.catchup.target)
	}
	if fx.drainFor(t, 1).From != 1 {
		t.Fatal("rotated request not re-sent")
	}
	// A stale epoch (earlier episode's timer) must not touch state.
	fx.n.onSyncRetry(syncRetryEvent{epoch: fx.n.catchup.epoch - 1})
	if fx.n.catchup.target != 1 {
		t.Fatal("stale retry epoch rotated the target")
	}
}

// TestSyncRetryEndsCaughtUpEpisode: an episode whose committed head
// view is back within a keep window of the live view has nothing left
// for deep sync to do (the shallow fetch path covers it) — the stall
// timer retires it instead of re-requesting forever. This is also the
// safety valve for false triggers from timeout-churned view gaps.
func TestSyncRetryEndsCaughtUpEpisode(t *testing.T) {
	fx := newSyncFixture(t, syncTestCfg(), nil)
	fx.triggerDeepSync(t, 1)
	// CurView stays at 1 in this fixture, within a window of the
	// committed head's view 0: the premise for deep sync is gone.
	fx.n.onSyncRetry(syncRetryEvent{epoch: fx.n.catchup.epoch})
	if fx.n.catchup.state != syncIdle {
		t.Fatal("caught-up episode not retired by the stall timer")
	}
	if fx.n.Status().Syncing {
		t.Fatal("status still reports syncing")
	}
}

// TestShallowGapDoesNotTriggerSync: an orphan inside the keep window
// stays on the cheap FetchMsg path.
func TestShallowGapDoesNotTriggerSync(t *testing.T) {
	fx := newSyncFixture(t, syncTestCfg(), nil)
	near := fx.chain[4] // view 5, well inside the window of 8
	fx.n.onProposal(1, types.ProposalMsg{Block: near}, true)
	if fx.n.catchup.state != syncIdle {
		t.Fatal("shallow orphan escalated to deep sync")
	}
	if fx.n.Pipeline().Snapshot().SyncRequestsSent != 0 {
		t.Fatal("shallow orphan sent a sync request")
	}
}

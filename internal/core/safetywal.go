package core

// safetywal.go closes the amnesia-equivocation window: the paper's
// voting rule updates lvView "right after a vote is sent", but state
// that lives only in memory is forgotten by a crash — a SIGKILLed
// replica could rejoin and vote twice in the same view, which is
// Byzantine equivocation produced by a crash fault. persistSafety
// syncs the durable slice of the rules' state (plus the pacemaker
// view and the timeout-signing high-water mark) to the WAL before any
// vote or timeout message leaves the node; restoreSafety replays it
// into the rules and pacemaker on Start, after ledger replay.

import (
	"fmt"
	"time"

	"github.com/bamboo-bft/bamboo/internal/safety"
	"github.com/bamboo-bft/bamboo/internal/types"
	"github.com/bamboo-bft/bamboo/internal/wal"
)

// safetyStateFromRecord lifts a WAL record back into the protocol's
// durable-state shape.
func safetyStateFromRecord(rec *wal.Record) safety.DurableState {
	return safety.DurableState{
		LastVoted: rec.LastVoted,
		Preferred: rec.Preferred,
		HighQC:    rec.HighQC,
	}
}

// uncommittedSuffix returns the certified-but-uncommitted block path
// from just above the committed tip up to (and including) highQC's
// block, ascending by height. These blocks exist nowhere durable —
// ledgers only hold commits — yet the persisted lock points at them:
// after a whole-cluster crash the record's views alone would leave
// every replica refusing to vote for any proposal the survivors can
// actually build (their freshest extendable certificate sits below
// the lock), a permanent deadlock. Persisting the suffix lets restore
// re-attach it to the replayed chain, so the restored highQC is
// extendable and the lock satisfiable. nil when the path does not
// reach back to the committed tip (the highQC's block may be known
// only by certificate).
func (n *Node) uncommittedSuffix(qc *types.QC) []*types.Block {
	if qc == nil || qc.IsGenesis() {
		return nil
	}
	committed := n.forest.CommittedHeight()
	var down []*types.Block
	for id := qc.BlockID; ; {
		h, ok := n.forest.HeightOf(id)
		if !ok {
			return nil
		}
		if h <= committed {
			break
		}
		b, ok := n.forest.Block(id)
		if !ok {
			return nil
		}
		down = append(down, b)
		id = b.Parent
	}
	for i, j := 0, len(down)-1; i < j; i, j = i+1, j-1 {
		down[i], down[j] = down[j], down[i]
	}
	return down
}

// persistSafety makes the replica's current safety state durable. It
// returns false when the append failed, in which case the caller MUST
// NOT send the message the record was meant to cover: a silent replica
// is merely slow, an equivocating one is faulty.
func (n *Node) persistSafety() bool {
	w := n.opts.WAL
	if w == nil {
		return true
	}
	ds := n.rules.DurableState()
	start := time.Now()
	err := w.Append(wal.Record{
		CurView:     n.pm.CurView(),
		LastVoted:   ds.LastVoted,
		Preferred:   ds.Preferred,
		LastTimeout: n.lastTimeoutView,
		HighQC:      ds.HighQC,
		Suffix:      n.uncommittedSuffix(ds.HighQC),
	})
	n.pipeline.OnWALSync(time.Since(start))
	n.trace.OnWALSync(n.pm.CurView(), time.Since(start))
	if err != nil {
		// A replica that cannot persist its vote state can no longer
		// promise not to equivocate across a crash — as loud as a
		// safety violation, and the vote is withheld below.
		n.warn(fmt.Errorf("safety wal: %w", err))
		return false
	}
	return true
}

// restoreSafety merges the persisted safety state back in on Start.
// It runs after bootstrap's ledger replay, and the merge is monotone
// (views only move up, certificates only adopted if fresher), so the
// two recovery sources compose in either order. The persisted highQC
// is normally ahead of the replayed chain — a vote left the node, the
// certificate formed, and the crash hit before the commit persisted —
// which is exactly what the record's block suffix is for: re-attach
// the certified-but-uncommitted path and the certificate is usable
// again. When the suffix cannot re-attach (a record older than the
// ledger, a lost ledger tail), the certificate is dropped and the
// views alone carry the safety guarantee; the live chain re-delivers
// the freshest certificate within a view.
func (n *Node) restoreSafety() {
	w := n.opts.WAL
	if w == nil {
		return
	}
	rec := w.Latest()
	if rec == nil {
		return
	}
	ds := safetyStateFromRecord(rec)
	// Re-attach the persisted certified-but-uncommitted suffix onto the
	// replayed chain before adopting the certificate that points at its
	// tip. The blocks come from this replica's own WAL — the same trust
	// as ledger replay, integrity-checked frame by frame at Open — so
	// their signatures are not re-verified. Ascending order attaches
	// each block to its already-present parent; duplicates and stale
	// entries (the replay got there first) fall out of forest.Add.
	for _, b := range rec.Suffix {
		if b == nil || b.QC == nil {
			continue
		}
		if _, err := n.forest.Add(b); err != nil && !n.forest.Contains(b.ID()) {
			continue
		}
		// The embedded certificate certifies the parent; feeding it
		// through the rules rebuilds highQC and the lock exactly as the
		// live path would have.
		n.forest.Certify(b.QC)
		n.rules.UpdateState(b.QC)
	}
	if ds.HighQC != nil && !ds.HighQC.IsGenesis() {
		if n.forest.Contains(ds.HighQC.BlockID) {
			n.forest.Certify(ds.HighQC)
			n.rules.UpdateState(ds.HighQC)
		} else {
			ds.HighQC = nil
		}
	}
	n.rules.Restore(ds)
	if rec.LastTimeout > n.lastTimeoutView {
		n.lastTimeoutView = rec.LastTimeout
	}
	// Rejoin at the persisted view: the replica's pre-crash signatures
	// cover every view below it, so it must never vote there again —
	// and AdvanceTo works before the pacemaker starts.
	n.pm.AdvanceTo(rec.CurView)
	n.publishStatus()
}

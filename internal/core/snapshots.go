package core

// snapshots.go is the replica-local half of the snapshot subsystem:
// periodic capture on the commit path (with ledger prefix compaction),
// serving manifests and chunks to catch-up requesters, applying a
// verified install, and the restart bootstrap that replays the
// replica's own snapshot + ledger into forest and state machine
// before it joins — making restart cost O(gap), not O(chain).

import (
	"errors"
	"fmt"

	"github.com/bamboo-bft/bamboo/internal/snapshot"
	"github.com/bamboo-bft/bamboo/internal/types"
)

// dueSnapshotHeight returns the snapshot boundary to capture within a
// commit batch spanning heights (first, last], or zero when none is
// due. Only the HIGHEST boundary in the batch counts: each snapshot
// supersedes the previous, and a deep-sync fast-forward batch can
// cross many interval boundaries — capturing every one would fsync
// the full state and rewrite the ledger once per interval of the gap
// for snapshots that are superseded within the same batch. For the
// same reason nothing is captured mid-catch-up at all; the first
// boundary after the episode ends picks the cadence back up.
func (n *Node) dueSnapshotHeight(first, last uint64) uint64 {
	iv := uint64(n.cfg.SnapshotInterval)
	if iv == 0 || n.opts.State == nil || n.opts.Snapshots == nil ||
		n.catchup.state != syncIdle {
		return 0
	}
	boundary := last - last%iv
	if boundary <= first {
		return 0
	}
	return boundary
}

// commitCert returns a quorum certificate for committed[i], the
// anchor a snapshot at that height carries. For all but the newest
// committed block the next block's embedded certificate is exactly
// that; for the newest, the forest's certification record (present
// for every commit-rule target) is. nil skips the capture — the next
// interval boundary tries again.
func (n *Node) commitCert(committed []*types.Block, i int) *types.QC {
	if i+1 < len(committed) {
		return committed[i+1].QC
	}
	if qc, ok := n.forest.QCOf(committed[i].ID()); ok {
		return qc
	}
	return nil
}

// captureSnapshot runs on the apply stage (or inline, without it)
// right after the block at height executed: it serializes the state
// machine, persists the snapshot, and compacts the ledger prefix the
// snapshot now covers. Compaction only follows a successful save — a
// prefix must never be dropped before its replacement is durable.
func (n *Node) captureSnapshot(b *types.Block, height uint64, qc *types.QC) {
	payload := n.opts.State.SnapshotState()
	snap := &snapshot.Snapshot{
		Height:      height,
		Block:       b.StripPayload(),
		QC:          qc,
		StateDigest: snapshot.Digest(payload),
		Payload:     payload,
	}
	if err := n.opts.Snapshots.Save(snap); err != nil {
		return
	}
	if n.opts.Ledger != nil {
		// Best-effort: a failed compaction only means the ledger
		// stays larger than it needs to be.
		_ = n.opts.Ledger.CompactTo(height)
	}
	n.noteSnapshot(height, snap.StateDigest)
}

// applyInstall is the apply-stage half of a snapshot install: restore
// the state machine from the verified payload, persist the snapshot
// durably, and only THEN re-base the ledger at the snapshot height
// (the local chain below it was never replayed here, so the old file
// is another history as far as appends are concerned). The ordering
// is the subsystem's one durability invariant — never drop history
// before its replacement is on disk: a crash between the save and
// the re-base merely leaves a stale ledger next to a fresh snapshot,
// which bootstrap resolves; the reverse window would leave neither.
func (n *Node) applyInstall(snap *snapshot.Snapshot) {
	if n.opts.State != nil {
		if err := n.opts.State.RestoreState(snap.Payload); err != nil {
			// The payload hashed to the f+1-agreed digest, so a parse
			// failure is local corruption or version skew — the state
			// machine is now behind the forest, which is as loud a
			// divergence as a safety violation.
			n.warn(fmt.Errorf("snapshot install at height %d: %w", snap.Height, err))
			return
		}
	}
	if n.opts.Ledger != nil {
		// beginSnapshotFetch refuses the snapshot path for
		// ledger-with-no-store configurations, so a ledger here
		// always has a snapshot store beside it — and the re-base
		// happens only once the replacement is durably saved.
		if n.opts.Snapshots == nil {
			return
		}
		if err := n.opts.Snapshots.Save(snap); err != nil {
			// Without a durable replacement the old ledger must stay.
			return
		}
		if err := n.opts.Ledger.ResetTo(snap.Height); err != nil {
			// A stale ledger under a fresh snapshot is the crash
			// window bootstrap already resolves, but a re-base that
			// fails while the process lives deserves a page: appends
			// are now rejected until the next restart completes it.
			n.warn(fmt.Errorf("snapshot install at height %d: ledger re-base: %w", snap.Height, err))
		}
		return
	}
	if n.opts.Snapshots != nil {
		_ = n.opts.Snapshots.Save(snap)
	}
}

// adoptSnapshot jumps the consensus surfaces onto a verified snapshot
// — forest head, committed-hash index (zero-padded below the install
// height: that history never passed through this replica), protocol
// rules, pacemaker view, and the status surface. It is the shared
// half of a peer install and a restart restore; the state machine and
// persistence halves differ per caller.
func (n *Node) adoptSnapshot(b *types.Block, qc *types.QC, height uint64, digest types.Hash) {
	n.forest.ResetTo(b, qc, height)
	n.statusMu.Lock()
	for uint64(len(n.committedHashes)) < height {
		n.committedHashes = append(n.committedHashes, types.ZeroHash)
	}
	n.committedHashes[height-1] = b.ID()
	n.statusMu.Unlock()
	n.rules.UpdateState(qc)
	n.pm.AdvanceTo(qc.View + 1)
	n.noteSnapshot(height, digest)
}

// onSnapshotRequest serves the snapshot-transfer fetch path from the
// local snapshot store: the latest manifest for a zero-height
// request, one chunk otherwise. Requests for a height other than the
// retained snapshot go unanswered — the requester's stall rotation
// renegotiates against whatever the cluster serves now.
func (n *Node) onSnapshotRequest(from types.NodeID, m types.SnapshotRequestMsg) {
	if from == n.id || n.opts.Snapshots == nil {
		return
	}
	snap, digests, ok := n.opts.Snapshots.Latest()
	if !ok {
		return
	}
	if m.Height == 0 {
		n.pipeline.OnSnapshotServed()
		n.net.Send(from, types.SnapshotManifestMsg{
			Height:       snap.Height,
			Block:        snap.Block,
			QC:           snap.QC,
			StateDigest:  snap.StateDigest,
			TotalSize:    uint64(len(snap.Payload)),
			ChunkSize:    snapshot.ChunkSize,
			ChunkDigests: digests,
		})
		return
	}
	if m.Height != snap.Height {
		return
	}
	data := snapshot.Chunk(snap.Payload, snapshot.ChunkSize, m.Chunk)
	if len(data) == 0 {
		return
	}
	n.net.Send(from, types.SnapshotChunkMsg{Height: m.Height, Chunk: m.Chunk, Data: data})
}

// errReplayHalt stops a ledger replay early without reporting
// corruption — the walked prefix stays installed.
var errReplayHalt = errors.New("core: replay halted")

// bootstrap rebuilds the replica from its own disk before it joins:
// restore the latest local snapshot (if any) into state machine and
// forest, then replay the ledger suffix above it block by block
// through forest, rules, and execution — commit cost O(gap), not
// O(chain). Only the tail the replica missed while down still travels
// over the network (live fetch for shallow tails, ranged sync for
// deep ones). Certificates replayed from the local ledger are not
// re-verified: the file is this replica's own committed chain,
// integrity-checked record by record at open.
//
// The FULL ledger is re-committed, tip included. Every persisted
// record was committed before the crash, and the safety WAL closes
// the amnesia window that used to make this unsafe: votes and locks
// now survive restarts, so no quorum can re-certify a conflicting
// block at the old tip's views — the holdback that once truncated the
// top of the replayed chain is gone, and a restarted replica recovers
// to its exact pre-crash committed height.
func (n *Node) bootstrap() {
	led := n.opts.Ledger
	var floor uint64
	if n.opts.Snapshots != nil && n.opts.State != nil {
		if snap, _, ok := n.opts.Snapshots.Latest(); ok {
			if err := n.opts.State.RestoreState(snap.Payload); err == nil {
				n.adoptSnapshot(snap.Block, snap.QC, snap.Height, snap.StateDigest)
				floor = snap.Height
			}
		}
	}
	if led == nil {
		n.publishStatus()
		return
	}
	if led.Base() > floor {
		// The ledger's floor sits above what the snapshot restored (a
		// missing or corrupt snapshot file under a compacted ledger):
		// the retained records cannot attach to anything. Join with
		// what the snapshot gave us and let state sync cover the rest.
		// (A floor above the base is fine — the replay below simply
		// skips the heights the snapshot already covers.)
		n.publishStatus()
		return
	}
	if led.Height() <= floor {
		// Every retained record is covered by the snapshot — the
		// footprint of a crash between an install's durable save and
		// its ledger re-base. Complete the re-base now so appends
		// continue from the snapshot height.
		if led.Height() < floor || led.Base() < floor {
			if err := led.ResetTo(floor); err != nil {
				n.warn(fmt.Errorf("bootstrap: ledger re-base to %d: %w", floor, err))
			}
		}
		n.publishStatus()
		return
	}
	var replayed uint64
	var maxQC *types.QC
	replayErr := led.ReplayCertified(func(b *types.Block, h uint64, selfQC *types.QC) error {
		if h <= floor {
			return nil
		}
		attached, err := n.forest.Add(b)
		if err != nil || len(attached) == 0 {
			return errReplayHalt
		}
		// The record's embedded certificate certifies the parent; its
		// SelfQC certifies the block itself. Feeding both through the
		// rules leaves highQC at the replayed tip, so this replica
		// can lead views immediately after rejoining.
		n.forest.Certify(b.QC)
		n.rules.UpdateState(b.QC)
		if maxQC == nil || b.QC.View > maxQC.View {
			maxQC = b.QC
		}
		if selfQC != nil {
			n.forest.Certify(selfQC)
			n.rules.UpdateState(selfQC)
			if selfQC.View > maxQC.View {
				maxQC = selfQC
			}
		}
		if _, err := n.forest.Commit(b.ID()); err != nil {
			return errReplayHalt
		}
		if n.opts.Execute != nil {
			n.opts.Execute(b.Payload)
		}
		n.statusMu.Lock()
		n.committedHashes = append(n.committedHashes, b.ID())
		n.statusMu.Unlock()
		replayed++
		return nil
	})
	if replayErr != nil {
		// A halted replay (a record that would not attach — not the
		// clean tail truncation Open already repaired) leaves records
		// above the committed point. Roll the file back so live
		// appends continue from the replayed head; a failed truncate
		// would let the next replay re-apply those records against
		// state that has since diverged, so it must not pass silently.
		if err := led.TruncateTo(n.forest.CommittedHeight()); err != nil {
			n.warn(fmt.Errorf("bootstrap: truncate after halted replay: %w", err))
		}
	}
	if replayed > 0 || maxQC != nil {
		n.pipeline.OnBlocksReplayed(replayed)
		if maxQC != nil {
			// Views advance at least as fast as heights: rejoin at
			// the view after the freshest replayed certificate.
			n.pm.AdvanceTo(maxQC.View + 1)
		}
	}
	n.publishStatus()
}

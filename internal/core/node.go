// Package core is the Bamboo consensus engine: the propose-vote
// machinery every chained-BFT protocol shares. It wires the block
// forest, mempool, quorum aggregation, pacemaker, leader election,
// cryptography, and networking around a protocol's safety.Rules, so a
// protocol implementation is reduced to its four rules (Figure 4 of
// the paper).
//
// Each replica runs a single event-loop goroutine; every message and
// timer event funnels into it, so the forest and rules never need
// locks. Cross-thread reads (benchmarker, HTTP API) go through the
// snapshot published on every commit.
package core

import (
	"fmt"
	"sync"
	"time"

	"github.com/bamboo-bft/bamboo/internal/attack"
	"github.com/bamboo-bft/bamboo/internal/config"
	"github.com/bamboo-bft/bamboo/internal/crypto"
	"github.com/bamboo-bft/bamboo/internal/election"
	"github.com/bamboo-bft/bamboo/internal/forest"
	"github.com/bamboo-bft/bamboo/internal/ledger"
	"github.com/bamboo-bft/bamboo/internal/mempool"
	"github.com/bamboo-bft/bamboo/internal/metrics"
	"github.com/bamboo-bft/bamboo/internal/network"
	"github.com/bamboo-bft/bamboo/internal/pacemaker"
	"github.com/bamboo-bft/bamboo/internal/quorum"
	"github.com/bamboo-bft/bamboo/internal/safety"
	"github.com/bamboo-bft/bamboo/internal/snapshot"
	"github.com/bamboo-bft/bamboo/internal/trace"
	"github.com/bamboo-bft/bamboo/internal/types"
	"github.com/bamboo-bft/bamboo/internal/wal"
)

// Options configures a replica beyond the run Config.
type Options struct {
	// Execute, if non-nil, is called with each committed block's
	// transactions, in commit order (the execution layer).
	Execute func([]types.Transaction)
	// CommitSeries, if non-nil, receives committed transaction
	// counts over time (the responsiveness experiment's series).
	CommitSeries *metrics.TimeSeries
	// OnViolation, if non-nil, is called if the forest detects a
	// commit conflicting with the committed chain. Tests use it to
	// assert safety; production deployments would page someone.
	OnViolation func(error)
	// Elector overrides leader election (defaults to round-robin,
	// or static when cfg.Master is set).
	Elector election.Elector
	// Ledger, if non-nil, receives every committed block — the
	// persistent storage the paper's garbage-collection note assumes.
	// Append errors are surfaced through OnViolation-style logging:
	// the chain in memory remains authoritative.
	Ledger *ledger.Ledger
	// State, if non-nil, is the replica's snapshottable state machine
	// (deterministic serialization + restore). It is what periodic
	// snapshot capture serializes and what a snapshot install
	// restores; without it the replica can neither take nor install
	// snapshots. Keep it the same state Execute applies to.
	State snapshot.State
	// Snapshots, if non-nil, persists the replica's latest state
	// snapshot and serves manifests/chunks to catch-up requesters.
	// Capture additionally requires Config.SnapshotInterval > 0.
	Snapshots *snapshot.Store
	// Bootstrap replays the replica's own snapshot + ledger into
	// forest and state machine on Start, before the event loop runs —
	// restart cost O(tail missed), not O(chain). A fresh ledger makes
	// it a no-op.
	Bootstrap bool
	// WAL, if non-nil, is the replica's durable safety log: the event
	// loop syncs {current view, last-voted view, preferred view,
	// highQC, last timeout view} to it BEFORE any vote or timeout
	// message leaves the node, and Start restores the persisted state
	// (seeding the pacemaker at the pre-crash view), so a SIGKILLed
	// replica can never vote twice in one view — the
	// amnesia-equivocation window. A failed append refuses the vote:
	// staying silent is safe, equivocating is not.
	WAL *wal.WAL
	// TraceSpans and TraceEvents bound the block-lifecycle tracer's
	// rings (spans and per-view events); zero selects the trace
	// package defaults. The tracer is always on — the rings are fixed
	// memory and stamps are lock-free — so these only tune how much
	// history GET /debug/trace can export.
	TraceSpans  int
	TraceEvents int
}

// Status is the replica snapshot published after every commit.
type Status struct {
	CurView         types.View
	CommittedHeight uint64
	CommittedView   types.View
	CommittedHash   types.Hash
	Pool            int
	// PoolQueued is how many of the pooled transactions currently sit
	// past the soft capacity in the overflow band (non-zero only under
	// the "queue" admission policy).
	PoolQueued int
	// PoolRejections counts client transactions the admission policy
	// turned away over the replica's lifetime — the overload signal.
	PoolRejections uint64
	// Syncing reports whether the replica is in deep catch-up —
	// streaming ranged batches from a peer's ledger, or negotiating
	// and fetching a state snapshot.
	Syncing bool
	// SyncApplied counts blocks fast-forwarded through state sync
	// over the replica's lifetime.
	SyncApplied uint64
	// SnapshotHeight and SnapshotDigest describe the replica's latest
	// state snapshot — captured locally on the snapshot interval, or
	// installed from peers during deep catch-up. Zero height means no
	// snapshot yet.
	SnapshotHeight uint64
	SnapshotDigest types.Hash
}

// Node is one replica.
type Node struct {
	id     types.NodeID
	cfg    config.Config
	rules  safety.Rules
	policy safety.Policy

	forest *forest.Forest
	pool   *mempool.Pool
	votes  *quorum.Votes
	pm     *pacemaker.Pacemaker
	elect  election.Elector
	net    network.Transport
	scheme crypto.Scheme

	// lightPool bypasses the mempool for the OHS client path.
	lightPool []types.Transaction

	// pendingQCs holds certificates for blocks not yet attached.
	pendingQCs map[types.Hash]*types.QC
	// digestWait tracks digest proposals parked awaiting their
	// payload on the data plane, keyed by block ID with the retry
	// attempt already taken (fetch fallback after the budget).
	digestWait map[types.Hash]int
	// syncBuf accumulates client transactions awaiting the next
	// payload-sync broadcast (digest mode's data plane); syncArmed
	// tracks whether a flush timer is pending.
	syncBuf   []types.Transaction
	syncArmed bool
	// echoSeen deduplicates echoed messages (Streamlet).
	echoSeen map[types.Hash]struct{}
	// owned maps transactions this replica accepted to the client
	// endpoint awaiting the commit reply.
	owned map[types.TxID]types.NodeID
	// catchup is the deep catch-up episode state machine: active when
	// the replica's gap outran the forest keep window and it is
	// streaming ranged batches — or negotiating a snapshot — from its
	// peers (see sync.go).
	catchup syncEpisode
	// proposedInView guards against double-proposing in one view.
	proposedInView types.View
	// lastTimeoutView is the highest view this replica has signed a
	// timeout for; the f+1 join rule signs each view at most once.
	lastTimeoutView types.View

	tracker  *metrics.ChainTracker
	pipeline *metrics.PipelineTracker
	trace    *trace.Tracer
	// verif, when non-nil (cfg.AsyncVerify), checks signatures off
	// the event loop (pipeline stage 2).
	verif *verifier
	// apply, when non-nil (cfg.AsyncCommit plus an Execute hook or
	// ledger), executes committed blocks off the event loop
	// (pipeline stage 3).
	apply *applier
	opts  Options
	// commitListeners run on the event loop for each committed
	// block; registered before Start (HTTP API waiters).
	commitListeners []func(types.View, types.Hash, []types.Transaction)
	// rejectListeners run on the event loop for each self-submitted
	// transaction the admission policy turns away; registered before
	// Start (the HTTP API's 429 path). Remote submitters get a
	// ReplyMsg with Rejected set instead.
	rejectListeners []func(types.TxID)
	// lightRejections counts lightweight-pool rejections (OHS client
	// path), which bypass the mempool and its counters.
	lightRejections metrics.Counter
	events          chan any
	stopOnce        sync.Once
	stopCh          chan struct{}
	doneCh          chan struct{}

	statusMu sync.Mutex
	status   Status
	// committedHashes[h-1] is the committed block hash at height h,
	// readable from any goroutine (consistency checks).
	committedHashes []types.Hash

	violations metrics.Counter
}

// proposeEvent asks the loop to propose for a view (possibly delayed
// by the non-responsive wait).
type proposeEvent struct {
	view types.View
	tc   *types.TC
}

// digestRetryEvent re-delivers a parked digest proposal after the
// data-plane wait (see parkDigest).
type digestRetryEvent struct {
	from types.NodeID
	msg  types.ProposalMsg
}

// flushPayloadEvent fires the payload-sync flush timer (digest mode).
type flushPayloadEvent struct{}

// NewNode assembles a replica. The rules factory receives the node's
// forest-backed environment; Byzantine nodes (per cfg) get their rules
// wrapped with the configured attack strategy.
func NewNode(id types.NodeID, cfg config.Config, factory safety.Factory,
	net network.Transport, scheme crypto.Scheme, opts Options) *Node {

	f := forest.New(cfg.KeepWindow())
	env := safety.Env{Forest: f, Self: id, N: cfg.N}
	rules := factory(env)
	if cfg.IsByzantine(id) {
		switch cfg.Strategy {
		case config.StrategyForking:
			rules = attack.NewForking(rules, f, id, attack.DepthFor(cfg.Protocol))
		case config.StrategySilence:
			s := attack.NewSilence(rules)
			if cfg.StrategyDelay > 0 {
				s.ActiveAfter = time.Now().Add(cfg.StrategyDelay)
			}
			rules = s
		case config.StrategyEquivocate:
			rules = attack.NewEquivocate(rules, id)
		}
	}
	elect := opts.Elector
	if elect == nil {
		if cfg.Master != 0 {
			elect = election.NewStatic(cfg.Master)
		} else {
			elect = election.NewRoundRobin(cfg.N)
		}
	}
	pool := mempool.New(cfg.MemSize)
	if depth := cfg.MemQueueDepth(); depth > 0 {
		pool.EnableOverflow(depth)
	}
	n := &Node{
		id:         id,
		cfg:        cfg,
		rules:      rules,
		policy:     rules.Policy(),
		forest:     f,
		pool:       pool,
		votes:      quorum.NewVotes(cfg.Quorum()),
		pm:         pacemaker.New(cfg.Timeout, cfg.Quorum()),
		elect:      elect,
		net:        net,
		scheme:     scheme,
		pendingQCs: make(map[types.Hash]*types.QC),
		digestWait: make(map[types.Hash]int),
		echoSeen:   make(map[types.Hash]struct{}),
		owned:      make(map[types.TxID]types.NodeID),
		tracker:    &metrics.ChainTracker{},
		pipeline:   &metrics.PipelineTracker{},
		trace:      trace.New(id, opts.TraceSpans, opts.TraceEvents),
		opts:       opts,
		events:     make(chan any, 64),
		stopCh:     make(chan struct{}),
		doneCh:     make(chan struct{}),
	}
	n.status = Status{CurView: 1}
	n.tracker.SetCohort(cfg.N)
	return n
}

// ID returns the replica identity.
func (n *Node) ID() types.NodeID { return n.id }

// Tracker exposes the chain micro-metrics (CGR, BI).
func (n *Node) Tracker() *metrics.ChainTracker { return n.tracker }

// Pipeline exposes the per-stage hot-path instrumentation: verify
// queue wait, apply lag, and the digest/batch fast-path counters.
func (n *Node) Pipeline() *metrics.PipelineTracker { return n.pipeline }

// Trace exposes the block-lifecycle tracer (GET /debug/trace reads
// its ring snapshot; all stamp methods are lock-free, so reading while
// the replica runs is safe).
func (n *Node) Trace() *trace.Tracer { return n.trace }

// Transport exposes the replica's network endpoint, so operational
// surfaces (the HTTP API's /status) can report transport-level stats
// when the endpoint keeps them (the TCP transport and the conditioned
// shim do; switch endpoints defer to switch-wide counters).
func (n *Node) Transport() network.Transport { return n.net }

// TimeoutsFired reports the pacemaker's lifetime count of view-timer
// expirations — the telemetry plane's view-synchronization health
// counter.
func (n *Node) TimeoutsFired() uint64 { return n.pm.TimeoutsFired() }

// Violations returns how many commit-safety violations the forest
// reported; correct runs keep this at zero.
func (n *Node) Violations() uint64 { return n.violations.Load() }

// LedgerHeight reports the highest height the replica's ledger holds
// on disk — zero without a ledger. Unlike Status().CommittedHeight it
// trails the in-memory chain only by the apply queue, and it is
// monotone within a process lifetime, which makes it the right
// pre-kill anchor for exact-height recovery assertions: everything at
// or below it must be re-committed by bootstrap replay after a crash.
func (n *Node) LedgerHeight() uint64 {
	if n.opts.Ledger == nil {
		return 0
	}
	return n.opts.Ledger.Height()
}

// Status returns the latest published snapshot.
func (n *Node) Status() Status {
	n.statusMu.Lock()
	defer n.statusMu.Unlock()
	s := n.status
	s.Pool, s.PoolQueued = n.pool.Occupancy()
	s.PoolRejections = n.pool.Stats().Rejected + n.lightRejections.Load()
	return s
}

// PoolStats returns the mempool's admission counters (admitted,
// rejected, queued past the soft capacity) — the server-side half of
// the harness's overload accounting.
func (n *Node) PoolStats() mempool.Stats {
	s := n.pool.Stats()
	s.Rejected += n.lightRejections.Load()
	return s
}

// HashAt returns the committed main-chain block hash at a height,
// safely from any goroutine. Heights below a snapshot install point
// hold no hash (their history never passed through this replica) and
// report false.
func (n *Node) HashAt(height uint64) (types.Hash, bool) {
	n.statusMu.Lock()
	defer n.statusMu.Unlock()
	if height == 0 || height > uint64(len(n.committedHashes)) {
		return types.ZeroHash, false
	}
	h := n.committedHashes[height-1]
	if h.IsZero() {
		return types.ZeroHash, false
	}
	return h, true
}

// Submit queues a client transaction directly (in-process fast path
// for benchmarks and examples). The reply is delivered to the client
// endpoint named by the transaction's TxID.Client.
func (n *Node) Submit(tx types.Transaction) {
	select {
	case n.events <- types.RequestMsg{Tx: tx}:
	case <-n.stopCh:
	}
}

// AddCommitListener registers fn to run for every committed block
// (view, block hash, payload). Register before Start; listeners run
// on the event loop, so they must not block.
func (n *Node) AddCommitListener(fn func(types.View, types.Hash, []types.Transaction)) {
	n.commitListeners = append(n.commitListeners, fn)
}

// AddRejectListener registers fn to run for every transaction this
// node itself submitted (Submit — the HTTP API's path) that the
// admission policy turned away. Register before Start; listeners run
// on the event loop, so they must not block. Transactions submitted by
// remote client endpoints are answered with a rejected ReplyMsg over
// the network instead.
func (n *Node) AddRejectListener(fn func(types.TxID)) {
	n.rejectListeners = append(n.rejectListeners, fn)
}

// Start launches the event loop plus, per configuration, the
// verification pool and the commit-apply stage. With Bootstrap set,
// the replica first replays its own snapshot + ledger into forest and
// state machine, so it rejoins at the height it went down at. The
// first leader proposes once its view timer is armed; all other
// replicas follow the QC chain.
func (n *Node) Start() {
	if n.opts.Bootstrap {
		n.bootstrap()
	}
	n.restoreSafety()
	if n.cfg.AsyncVerify {
		n.verif = newVerifier(n, n.cfg.VerifyWorkers)
	}
	if n.cfg.AsyncCommit && (n.opts.Execute != nil || n.opts.Ledger != nil) {
		n.apply = newApplier(n, n.cfg.ApplyQueue)
	}
	n.pm.Start()
	go n.run()
}

// Stop terminates the event loop, then drains the pipeline stages:
// the verification pool is joined, and every block committed before
// shutdown finishes executing before Stop returns.
func (n *Node) Stop() {
	n.stopOnce.Do(func() {
		close(n.stopCh)
		<-n.doneCh
		n.pm.Stop()
		if n.verif != nil {
			n.verif.stop()
		}
		if n.apply != nil {
			n.apply.stop()
		}
	})
}

// run is the replica's single-threaded event loop.
func (n *Node) run() {
	defer close(n.doneCh)
	n.tracker.OnViewEntered()
	n.trace.OnViewEntered(1, n.elect.Leader(1))
	// Kick off the first view: its leader proposes the first block.
	if n.elect.Leader(1) == n.id {
		n.propose(1, nil)
	}
	inbox := n.net.Inbox()
	for {
		select {
		case <-n.stopCh:
			return
		case env, ok := <-inbox:
			if !ok {
				return
			}
			n.dispatch(env.From, env.Msg)
		case ev := <-n.events:
			n.dispatch(n.id, ev)
		case view := <-n.pm.TimeoutChan():
			n.onLocalTimeout(view)
		}
	}
}

// dispatch routes one event on the loop goroutine. Messages from this
// replica itself and re-injected verifier output count as verified;
// everything else still needs its signatures checked.
func (n *Node) dispatch(from types.NodeID, msg any) {
	if env, ok := msg.(verifiedEnv); ok {
		n.route(env.from, env.msg, true)
		return
	}
	n.route(from, msg, from == n.id)
}

// route handles one event, offloading signature checks to the
// verification pool when stage 2 is enabled. If the pool's queue is
// full the message is verified inline — bounded memory beats backlog.
func (n *Node) route(from types.NodeID, msg any, verified bool) {
	if !verified && n.verif != nil {
		offload := false
		switch m := msg.(type) {
		case types.ProposalMsg:
			// Duplicates (echo traffic) die on the seen-check for a
			// map lookup; don't pay pool crypto for them.
			offload = m.Block == nil || !n.forest.Contains(m.Block.ID())
			if offload && m.Block != nil && m.Block.QC != nil {
				// The span's receive stamp is arrival, before any
				// verification queueing — the verify stage starts here.
				n.trace.OnReceived(m.Block.ID(), m.Block.View, m.Block.Proposer, len(m.Block.Payload))
			}
		case types.VoteMsg, types.TimeoutMsg, types.TCMsg:
			offload = true
		}
		if offload {
			if n.verif.submit(from, msg) {
				return
			}
			n.pipeline.OnInlineVerify()
		}
	}
	switch m := msg.(type) {
	case types.ProposalMsg:
		n.onProposal(from, m, verified)
	case types.VoteMsg:
		n.onVote(m.Vote, verified)
	case types.TimeoutMsg:
		n.onTimeoutMsg(m.Timeout, verified)
	case types.TCMsg:
		n.onTC(m.TC, !verified)
	case types.RequestMsg:
		n.onRequest(from, m.Tx)
	case types.FetchMsg:
		n.onFetch(from, m)
	case types.SyncRequestMsg:
		n.onSyncRequest(from, m)
	case types.SyncResponseMsg:
		// Self-authenticating: the handler verifies the embedded
		// certificates, so the pool's verified flag is irrelevant.
		n.onSyncResponse(from, m)
	case types.SnapshotRequestMsg:
		n.onSnapshotRequest(from, m)
	case types.SnapshotManifestMsg:
		// Self-authenticating like sync responses: the handler
		// verifies the carried certificate and cross-checks the
		// digest against f+1 peers before anything is trusted.
		n.onSnapshotManifest(from, m)
	case types.SnapshotChunkMsg:
		n.onSnapshotChunk(from, m)
	case syncRetryEvent:
		n.onSyncRetry(m)
	case types.QueryMsg:
		n.onQuery(from, m)
	case types.SlowMsg:
		// Handled by the network layer in simulation; replicas
		// receiving it over TCP ignore it (conditions are not
		// modelled there).
	case proposeEvent:
		n.propose(m.view, m.tc)
	case digestRetryEvent:
		n.onDigestRetry(m.from, m.msg)
	case types.PayloadBatchMsg:
		n.onPayloadBatch(m)
	case flushPayloadEvent:
		n.syncArmed = false
		n.flushPayloadSync()
	}
}

// publishStatus refreshes the cross-thread snapshot.
func (n *Node) publishStatus() {
	head := n.forest.CommittedHead()
	n.statusMu.Lock()
	n.status.CurView = n.pm.CurView()
	n.status.CommittedHeight = n.forest.CommittedHeight()
	n.status.CommittedView = head.View
	n.status.CommittedHash = head.ID()
	n.status.Syncing = n.catchup.state != syncIdle
	n.status.SyncApplied = n.pipeline.SyncApplied()
	n.statusMu.Unlock()
}

// noteSnapshot records the replica's freshest snapshot in the status
// surface. Called from the apply stage (capture) and the event loop
// (install); the height check keeps a late capture of an old height
// from shadowing a newer install.
func (n *Node) noteSnapshot(height uint64, digest types.Hash) {
	n.statusMu.Lock()
	if height >= n.status.SnapshotHeight {
		n.status.SnapshotHeight = height
		n.status.SnapshotDigest = digest
	}
	n.statusMu.Unlock()
}

// onExecuted stamps a block's execution completion and feeds its
// per-stage durations into the chain tracker's stage histograms.
// Called from the event loop (inline commit path) or the commit-apply
// goroutine (stage 3); both the tracer and the stage histograms are
// safe for that.
func (n *Node) onExecuted(id types.Hash) {
	sp, ok := n.trace.OnExecuted(id)
	if !ok {
		return
	}
	feed := func(s metrics.Stage, from, to int64) {
		if from != 0 && to >= from {
			n.tracker.OnStage(s, time.Duration(to-from))
		}
	}
	feed(metrics.StageVerify, sp.Received, sp.Verified)
	feed(metrics.StageVote, sp.Verified, sp.Voted)
	feed(metrics.StageQC, sp.Voted, sp.QCFormed)
	feed(metrics.StageCommit, sp.QCFormed, sp.Committed)
	feed(metrics.StageExecute, sp.Committed, sp.Executed)
}

// warn surfaces a safety violation.
func (n *Node) warn(err error) {
	n.violations.Add(1)
	if n.opts.OnViolation != nil {
		n.opts.OnViolation(fmt.Errorf("replica %s: %w", n.id, err))
	}
}

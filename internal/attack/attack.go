// Package attack implements the Byzantine strategies of Section IV-A
// as wrappers over a protocol's Proposing rule — the same way the
// paper implements them ("developers can easily implement these attack
// strategies in less than 50 LoC of Go code in Bamboo by modifying the
// Proposing Rule"). The attacker never violates the protocol from an
// outsider's view: its proposals satisfy the honest voting rule.
//
//   - Forking: when leading a view, propose on top of an older
//     certified block instead of the freshest one, overwriting as many
//     uncommitted blocks as the voting rule allows (two in HotStuff,
//     one in 2CHS; Streamlet's longest-chain voting makes it a no-op).
//   - Silence: when leading a view, withhold the proposal entirely,
//     breaking the commit rule and burning a view timeout.
//   - Equivocate: propose two conflicting blocks in the same view,
//     sent to disjoint halves of the replicas (an extension beyond the
//     paper's two strategies; quorum intersection defuses it).
package attack

import (
	"time"

	"github.com/bamboo-bft/bamboo/internal/forest"
	"github.com/bamboo-bft/bamboo/internal/safety"
	"github.com/bamboo-bft/bamboo/internal/types"
)

// Forking proposes on the certified ancestor `Depth` steps behind the
// highest QC. Depth 2 suits HotStuff (the lock trails the tip by two
// blocks from an honest voter's view), depth 1 suits the two-chain
// protocols. If the chain near genesis is too short to walk, it
// proposes honestly.
type Forking struct {
	safety.Rules
	Forest *forest.Forest
	Self   types.NodeID
	Depth  int
}

// NewForking wraps rules with the forking strategy.
func NewForking(rules safety.Rules, f *forest.Forest, self types.NodeID, depth int) *Forking {
	if depth < 1 {
		depth = 1
	}
	return &Forking{Rules: rules, Forest: f, Self: self, Depth: depth}
}

// Propose implements the attack: walk Depth certified parents back
// from the highest QC and extend that block instead, so the blocks in
// between fork off the chain and are eventually overwritten.
func (a *Forking) Propose(view types.View, payload []types.Transaction) *types.Block {
	qc := a.Rules.HighQC()
	for i := 0; i < a.Depth; i++ {
		b, ok := a.Forest.Block(qc.BlockID)
		if !ok || b.QC == nil || b.QC.IsGenesis() {
			// Chain too short to walk (or compacted): the attack
			// cannot gain anything, so propose honestly.
			return a.Rules.Propose(view, payload)
		}
		// b.QC certifies b's parent: one step down the chain.
		qc = b.QC
	}
	return safety.BuildBlock(a.Self, view, qc, payload)
}

// Silence withholds every proposal while leading. The attacker keeps
// voting, aggregating, and timing out — only the Proposing rule is
// subverted, which is what lets (for example) chained HotStuff at n=4
// keep committing in waves: the silent node still collects votes and
// its timeout messages leak the resulting high QC to honest leaders.
type Silence struct {
	safety.Rules
	// ActiveAfter delays the attack; before this instant the node
	// proposes honestly. The zero value means always silent.
	ActiveAfter time.Time
}

// NewSilence wraps rules with the silence strategy.
func NewSilence(rules safety.Rules) *Silence { return &Silence{Rules: rules} }

// Propose implements the attack: stay silent (once active).
func (a *Silence) Propose(view types.View, payload []types.Transaction) *types.Block {
	if !a.ActiveAfter.IsZero() && time.Now().Before(a.ActiveAfter) {
		return a.Rules.Propose(view, payload)
	}
	return nil
}

// Equivocate produces a pair of conflicting proposals per view. The
// engine sends Propose's block to one half of the replicas and
// ProposeAlt's to the other half.
type Equivocate struct {
	safety.Rules
	Self types.NodeID
}

// NewEquivocate wraps rules with the equivocation strategy.
func NewEquivocate(rules safety.Rules, self types.NodeID) *Equivocate {
	return &Equivocate{Rules: rules, Self: self}
}

// ProposeAlt builds the conflicting twin of the view's proposal: same
// parent, same view, but a poisoned payload ordering so the block hash
// differs.
func (a *Equivocate) ProposeAlt(view types.View, payload []types.Transaction) *types.Block {
	twin := make([]types.Transaction, len(payload))
	copy(twin, payload)
	for i, j := 0, len(twin)-1; i < j; i, j = i+1, j-1 {
		twin[i], twin[j] = twin[j], twin[i]
	}
	if len(twin) == 0 {
		// Force a distinct hash even for empty payloads.
		twin = []types.Transaction{{ID: types.TxID{Client: uint64(a.Self), Seq: uint64(view)}}}
	}
	return safety.BuildBlock(a.Self, view, a.Rules.HighQC(), twin)
}

// Equivocator is the optional capability the engine probes for.
type Equivocator interface {
	ProposeAlt(view types.View, payload []types.Transaction) *types.Block
}

// DepthFor returns the forking depth that maximizes overwritten blocks
// while keeping proposals acceptable to honest voters, per protocol.
func DepthFor(protocol string) int {
	switch protocol {
	case "hotstuff", "ohs":
		return 2
	default:
		return 1
	}
}

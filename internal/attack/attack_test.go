package attack

import (
	"testing"
	"time"

	"github.com/bamboo-bft/bamboo/internal/forest"
	"github.com/bamboo-bft/bamboo/internal/protocol/hotstuff"
	"github.com/bamboo-bft/bamboo/internal/protocol/twochain"
	"github.com/bamboo-bft/bamboo/internal/safety"
	"github.com/bamboo-bft/bamboo/internal/types"
)

// buildChain prepares a forest with n certified consecutive blocks and
// an inner protocol that has processed them.
func buildChain(t *testing.T, inner safety.Rules, f *forest.Forest, n int) []*types.Block {
	t.Helper()
	parentQC := types.GenesisQC()
	blocks := make([]*types.Block, 0, n)
	for v := types.View(1); v <= types.View(n); v++ {
		b := safety.BuildBlock(2, v, parentQC, nil)
		if _, err := f.Add(b); err != nil {
			t.Fatal(err)
		}
		qc := &types.QC{View: v, BlockID: b.ID()}
		f.Certify(qc)
		inner.UpdateState(qc)
		blocks = append(blocks, b)
		parentQC = qc
	}
	return blocks
}

func TestForkingWalksBack(t *testing.T) {
	f := forest.New(8)
	inner := hotstuff.New(safety.Env{Forest: f, Self: 1, N: 4})
	blocks := buildChain(t, inner, f, 5)
	atk := NewForking(inner, f, 1, 2)
	b := atk.Propose(6, nil)
	if b == nil {
		t.Fatal("forking attacker must propose")
	}
	// HighQC certifies view 5; depth 2 walks to view 3's certificate,
	// so the proposal's parent is the view-3 block — overwriting
	// views 4 and 5.
	if b.Parent != blocks[2].ID() {
		t.Fatalf("fork parent = %s, want the view-3 block", b.Parent)
	}
	if b.QC.View != 3 {
		t.Fatalf("fork QC view = %d, want 3", b.QC.View)
	}
}

func TestForkingDepthOne(t *testing.T) {
	f := forest.New(8)
	inner := twochain.New(safety.Env{Forest: f, Self: 1, N: 4})
	blocks := buildChain(t, inner, f, 5)
	atk := NewForking(inner, f, 1, 1)
	b := atk.Propose(6, nil)
	if b.Parent != blocks[3].ID() {
		t.Fatalf("fork parent = %s, want the view-4 block (overwrite exactly one)", b.Parent)
	}
}

func TestForkingFallsBackNearGenesis(t *testing.T) {
	f := forest.New(8)
	inner := hotstuff.New(safety.Env{Forest: f, Self: 1, N: 4})
	buildChain(t, inner, f, 1) // one block: nothing to walk back over
	atk := NewForking(inner, f, 1, 2)
	b := atk.Propose(2, nil)
	if b == nil {
		t.Fatal("fallback must still propose")
	}
	// The honest fork choice extends the highest QC (view 1).
	if b.QC.View != 1 {
		t.Fatalf("fallback QC view = %d, want honest 1", b.QC.View)
	}
}

func TestForkingDepthClamped(t *testing.T) {
	f := forest.New(8)
	inner := hotstuff.New(safety.Env{Forest: f, Self: 1, N: 4})
	buildChain(t, inner, f, 3)
	atk := NewForking(inner, f, 1, 0) // clamps to 1
	if atk.Depth != 1 {
		t.Fatalf("depth = %d, want clamp to 1", atk.Depth)
	}
}

func TestSilence(t *testing.T) {
	f := forest.New(8)
	inner := hotstuff.New(safety.Env{Forest: f, Self: 1, N: 4})
	buildChain(t, inner, f, 2)
	atk := NewSilence(inner)
	if atk.Propose(3, nil) != nil {
		t.Fatal("silent attacker proposed")
	}
	// Everything else passes through: the attacker still votes.
	qc2 := &types.QC{View: 2, BlockID: f.LongestNotarizedTip().ID()}
	_ = qc2
	if atk.HighQC().View != 2 {
		t.Fatal("silence must not hide protocol state")
	}
}

func TestSilenceDelayedActivation(t *testing.T) {
	f := forest.New(8)
	inner := hotstuff.New(safety.Env{Forest: f, Self: 1, N: 4})
	buildChain(t, inner, f, 2)
	atk := NewSilence(inner)
	atk.ActiveAfter = time.Now().Add(100 * time.Millisecond)
	if atk.Propose(3, nil) == nil {
		t.Fatal("attacker silent before activation time")
	}
	time.Sleep(120 * time.Millisecond)
	if atk.Propose(4, nil) != nil {
		t.Fatal("attacker proposing after activation time")
	}
}

func TestEquivocateProducesConflictingTwins(t *testing.T) {
	f := forest.New(8)
	inner := hotstuff.New(safety.Env{Forest: f, Self: 1, N: 4})
	buildChain(t, inner, f, 2)
	atk := NewEquivocate(inner, 1)
	payload := []types.Transaction{
		{ID: types.TxID{Client: 1, Seq: 1}},
		{ID: types.TxID{Client: 1, Seq: 2}},
	}
	a := atk.Propose(3, payload)
	b := atk.ProposeAlt(3, payload)
	if a == nil || b == nil {
		t.Fatal("equivocator must produce both twins")
	}
	if a.ID() == b.ID() {
		t.Fatal("twins must have different hashes")
	}
	if a.View != b.View || a.Parent != b.Parent {
		t.Fatal("twins must conflict at the same position")
	}
	// Empty payload still yields distinct twins.
	c := atk.ProposeAlt(4, nil)
	d := atk.Propose(4, nil)
	if c.ID() == d.ID() {
		t.Fatal("empty-payload twins must still differ")
	}
}

func TestDepthFor(t *testing.T) {
	cases := map[string]int{
		"hotstuff": 2, "ohs": 2, "2chainhs": 1, "streamlet": 1, "fasthotstuff": 1,
	}
	for proto, want := range cases {
		if got := DepthFor(proto); got != want {
			t.Errorf("DepthFor(%s) = %d, want %d", proto, got, want)
		}
	}
}

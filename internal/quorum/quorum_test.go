package quorum

import (
	"testing"
	"testing/quick"

	"github.com/bamboo-bft/bamboo/internal/types"
)

func vote(view types.View, block byte, voter types.NodeID) *types.Vote {
	return &types.Vote{
		View:    view,
		BlockID: types.Hash{block},
		Voter:   voter,
		Sig:     []byte{byte(voter)},
	}
}

func TestVotesFormQCAtThreshold(t *testing.T) {
	v := NewVotes(3)
	if qc, ok := v.Add(vote(1, 1, 1)); ok || qc != nil {
		t.Fatal("QC before threshold")
	}
	if _, ok := v.Add(vote(1, 1, 2)); ok {
		t.Fatal("QC before threshold")
	}
	qc, ok := v.Add(vote(1, 1, 3))
	if !ok || qc == nil {
		t.Fatal("no QC at threshold")
	}
	if qc.View != 1 || qc.BlockID != (types.Hash{1}) {
		t.Fatalf("QC fields wrong: %+v", qc)
	}
	if len(qc.Signers) != 3 || len(qc.Sigs) != 3 {
		t.Fatalf("QC arity wrong: %d/%d", len(qc.Signers), len(qc.Sigs))
	}
	seen := map[types.NodeID]bool{}
	for i, id := range qc.Signers {
		if seen[id] {
			t.Fatal("duplicate signer in QC")
		}
		seen[id] = true
		if qc.Sigs[i][0] != byte(id) {
			t.Fatal("signature not aligned with signer")
		}
	}
}

func TestVotesEmitOnce(t *testing.T) {
	v := NewVotes(3)
	v.Add(vote(1, 1, 1))
	v.Add(vote(1, 1, 2))
	if _, ok := v.Add(vote(1, 1, 3)); !ok {
		t.Fatal("no QC at threshold")
	}
	if _, ok := v.Add(vote(1, 1, 4)); ok {
		t.Fatal("QC emitted twice")
	}
}

func TestVotesDuplicateVoterIgnored(t *testing.T) {
	v := NewVotes(3)
	v.Add(vote(1, 1, 1))
	v.Add(vote(1, 1, 1))
	if _, ok := v.Add(vote(1, 1, 1)); ok {
		t.Fatal("duplicate voter filled quorum")
	}
	if v.Count(1, types.Hash{1}) != 1 {
		t.Fatalf("count = %d, want 1", v.Count(1, types.Hash{1}))
	}
}

func TestVotesSeparateSetsPerBlockAndView(t *testing.T) {
	v := NewVotes(2)
	v.Add(vote(1, 1, 1))
	v.Add(vote(1, 2, 2)) // different block
	v.Add(vote(2, 1, 3)) // different view
	if v.Count(1, types.Hash{1}) != 1 || v.Count(1, types.Hash{2}) != 1 || v.Count(2, types.Hash{1}) != 1 {
		t.Fatal("vote sets bleed across (view, block) pairs")
	}
	// Conflicting-block votes in one view never merge into a QC: a
	// forking attacker cannot combine votes across its two proposals.
	if _, ok := v.Add(vote(1, 2, 1)); !ok {
		t.Fatal("second set should reach its own quorum")
	}
}

func TestVotesPrune(t *testing.T) {
	v := NewVotes(3)
	for view := types.View(1); view <= 10; view++ {
		v.Add(vote(view, byte(view), 1))
	}
	if v.Size() != 10 {
		t.Fatalf("size = %d", v.Size())
	}
	v.Prune(8)
	if v.Size() != 3 {
		t.Fatalf("size after prune = %d, want 3 (views 8,9,10)", v.Size())
	}
	if v.Count(7, types.Hash{7}) != 0 {
		t.Fatal("pruned set still answers")
	}
}

func timeout(view types.View, voter types.NodeID, highQCView types.View) *types.Timeout {
	return &types.Timeout{
		View:   view,
		Voter:  voter,
		HighQC: &types.QC{View: highQCView, BlockID: types.Hash{byte(highQCView)}},
		Sig:    []byte{byte(voter)},
	}
}

func TestTimeoutsFormTC(t *testing.T) {
	agg := NewTimeouts(3)
	if _, ok := agg.Add(timeout(5, 1, 2)); ok {
		t.Fatal("TC before threshold")
	}
	if _, ok := agg.Add(timeout(5, 2, 4)); ok {
		t.Fatal("TC before threshold")
	}
	tc, ok := agg.Add(timeout(5, 3, 3))
	if !ok || tc == nil {
		t.Fatal("no TC at threshold")
	}
	if tc.View != 5 || len(tc.Signers) != 3 {
		t.Fatalf("TC fields wrong: %+v", tc)
	}
	// HighQC must be the freshest among aggregated timeouts (view 4).
	if tc.HighQC == nil || tc.HighQC.View != 4 {
		t.Fatalf("TC HighQC = %+v, want view 4", tc.HighQC)
	}
}

func TestTimeoutsEmitOnceAndDedup(t *testing.T) {
	agg := NewTimeouts(2)
	agg.Add(timeout(5, 1, 1))
	if _, ok := agg.Add(timeout(5, 1, 1)); ok {
		t.Fatal("duplicate voter formed TC")
	}
	if _, ok := agg.Add(timeout(5, 2, 1)); !ok {
		t.Fatal("no TC at threshold")
	}
	if _, ok := agg.Add(timeout(5, 3, 1)); ok {
		t.Fatal("TC emitted twice")
	}
}

func TestTimeoutsNilHighQC(t *testing.T) {
	agg := NewTimeouts(2)
	agg.Add(&types.Timeout{View: 1, Voter: 1})
	tc, ok := agg.Add(&types.Timeout{View: 1, Voter: 2})
	if !ok {
		t.Fatal("no TC")
	}
	if tc.HighQC != nil {
		t.Fatal("HighQC must stay nil when no timeout carried one")
	}
}

func TestTimeoutsPrune(t *testing.T) {
	agg := NewTimeouts(3)
	for view := types.View(1); view <= 5; view++ {
		agg.Add(timeout(view, 1, 0))
	}
	agg.Prune(4)
	if agg.Size() != 2 {
		t.Fatalf("size after prune = %d, want 2", agg.Size())
	}
}

// Property: a QC forms if and only if at least `quorum` distinct
// voters vote for the same (view, block), regardless of arrival order
// and duplicates.
func TestQuorumThresholdQuick(t *testing.T) {
	f := func(voters []uint8) bool {
		const q = 3
		v := NewVotes(q)
		distinct := make(map[types.NodeID]bool)
		formed := false
		for _, raw := range voters {
			id := types.NodeID(raw%6 + 1)
			distinct[id] = true
			if _, ok := v.Add(vote(1, 1, id)); ok {
				formed = true
				// QC must form exactly when the q-th distinct
				// voter arrives.
				if len(distinct) != q {
					return false
				}
			}
		}
		return formed == (len(distinct) >= q)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

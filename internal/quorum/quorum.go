// Package quorum aggregates votes into quorum certificates and
// timeouts into timeout certificates — the paper's Quorum component
// with its voted()/certified() interfaces.
//
// Aggregators are used only by a replica's single-threaded event loop
// and are therefore unsynchronized.
package quorum

import (
	"github.com/bamboo-bft/bamboo/internal/types"
)

// voteKey distinguishes vote sets: one set per (view, block) pair.
type voteKey struct {
	view  types.View
	block types.Hash
}

// Votes accumulates votes and emits each QC exactly once when the
// threshold is reached.
type Votes struct {
	quorum int
	sets   map[voteKey]*voteSet
}

type voteSet struct {
	sigs    map[types.NodeID][]byte
	emitted bool
}

// NewVotes creates an aggregator emitting QCs at the given threshold.
func NewVotes(quorum int) *Votes {
	return &Votes{quorum: quorum, sets: make(map[voteKey]*voteSet)}
}

// Add records a vote. When the vote completes a quorum for its
// (view, block) pair, Add returns the freshly formed QC and true —
// exactly once per pair; duplicate voters are ignored.
func (v *Votes) Add(vote *types.Vote) (*types.QC, bool) {
	key := voteKey{view: vote.View, block: vote.BlockID}
	set, ok := v.sets[key]
	if !ok {
		set = &voteSet{sigs: make(map[types.NodeID][]byte, v.quorum)}
		v.sets[key] = set
	}
	if _, dup := set.sigs[vote.Voter]; dup {
		return nil, false
	}
	set.sigs[vote.Voter] = vote.Sig
	if set.emitted || len(set.sigs) < v.quorum {
		return nil, false
	}
	set.emitted = true
	qc := &types.QC{
		View:    vote.View,
		BlockID: vote.BlockID,
		Signers: make([]types.NodeID, 0, len(set.sigs)),
		Sigs:    make([][]byte, 0, len(set.sigs)),
	}
	for id, sig := range set.sigs {
		qc.Signers = append(qc.Signers, id)
		qc.Sigs = append(qc.Sigs, sig)
	}
	return qc, true
}

// Count returns the number of votes recorded for a (view, block) pair.
func (v *Votes) Count(view types.View, block types.Hash) int {
	set, ok := v.sets[voteKey{view: view, block: block}]
	if !ok {
		return 0
	}
	return len(set.sigs)
}

// Prune discards vote sets from views strictly below the given view;
// they can no longer form useful certificates.
func (v *Votes) Prune(below types.View) {
	for key := range v.sets {
		if key.view < below {
			delete(v.sets, key)
		}
	}
}

// Size returns the number of live vote sets (leak detection).
func (v *Votes) Size() int { return len(v.sets) }

// Timeouts accumulates timeout messages per view and emits each TC
// exactly once. The TC carries the freshest HighQC among the
// aggregated timeouts, which is what lets a new leader propose safely
// right after a view change.
type Timeouts struct {
	quorum int
	sets   map[types.View]*timeoutSet
}

type timeoutSet struct {
	sigs    map[types.NodeID][]byte
	highQC  *types.QC
	emitted bool
}

// NewTimeouts creates an aggregator emitting TCs at the threshold.
func NewTimeouts(quorum int) *Timeouts {
	return &Timeouts{quorum: quorum, sets: make(map[types.View]*timeoutSet)}
}

// Add records a timeout. When it completes a quorum for its view, Add
// returns the TC and true, exactly once per view.
func (t *Timeouts) Add(to *types.Timeout) (*types.TC, bool) {
	set, ok := t.sets[to.View]
	if !ok {
		set = &timeoutSet{sigs: make(map[types.NodeID][]byte, t.quorum)}
		t.sets[to.View] = set
	}
	if _, dup := set.sigs[to.Voter]; dup {
		return nil, false
	}
	set.sigs[to.Voter] = to.Sig
	if to.HighQC != nil && (set.highQC == nil || to.HighQC.View > set.highQC.View) {
		set.highQC = to.HighQC
	}
	if set.emitted || len(set.sigs) < t.quorum {
		return nil, false
	}
	set.emitted = true
	tc := &types.TC{
		View:    to.View,
		Signers: make([]types.NodeID, 0, len(set.sigs)),
		Sigs:    make([][]byte, 0, len(set.sigs)),
		HighQC:  set.highQC,
	}
	for id, sig := range set.sigs {
		tc.Signers = append(tc.Signers, id)
		tc.Sigs = append(tc.Sigs, sig)
	}
	return tc, true
}

// Count returns the number of distinct timeouts recorded for a view.
func (t *Timeouts) Count(view types.View) int {
	set, ok := t.sets[view]
	if !ok {
		return 0
	}
	return len(set.sigs)
}

// Prune discards timeout sets from views strictly below the given view.
func (t *Timeouts) Prune(below types.View) {
	for view := range t.sets {
		if view < below {
			delete(t.sets, view)
		}
	}
}

// Size returns the number of live timeout sets (leak detection).
func (t *Timeouts) Size() int { return len(t.sets) }

// Package ledger persists finalized blocks: the paper's Section II
// notes that "finalized blocks can be removed from memory to persistent
// storage for garbage collection", and the forest's compaction assumes
// something downstream retains the history. A Ledger is that something:
// an append-only file of committed blocks in commit order, with a
// replay path for audits and crash recovery.
//
// The format is a sequence of length-prefixed, self-contained gob
// records (each record carries its own type header, so a reopened
// ledger can keep appending and a single replay can read across
// sessions). Appends run on the replica's commit path and are
// synchronous but cheap; a deployment wanting group commit can use
// OpenBuffered.
package ledger

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"

	"github.com/bamboo-bft/bamboo/internal/types"
)

// record is one persisted block.
type record struct {
	Height   uint64
	View     types.View
	Proposer types.NodeID
	Parent   types.Hash
	ID       types.Hash
	Payload  []types.Transaction
}

// Ledger is an append-only store of committed blocks.
type Ledger struct {
	mu     sync.Mutex
	f      *os.File
	w      io.Writer
	flush  func() error
	height uint64
	closed bool
}

// Open creates (or appends to) the ledger at path. If the file already
// contains records, the ledger resumes from the last height.
func Open(path string) (*Ledger, error) {
	return open(path, false)
}

// OpenBuffered is Open with a write buffer: appends become group
// commits flushed on Sync/Close (faster, weaker durability).
func OpenBuffered(path string) (*Ledger, error) {
	return open(path, true)
}

func open(path string, buffered bool) (*Ledger, error) {
	// Resume point: scan any existing records first.
	var height uint64
	err := Replay(path, func(b *types.Block, h uint64) error {
		height = h
		return nil
	})
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("ledger: %w", err)
	}
	l := &Ledger{f: f, height: height}
	if buffered {
		bw := bufio.NewWriterSize(f, 1<<16)
		l.w = bw
		l.flush = bw.Flush
	} else {
		l.w = f
		l.flush = func() error { return nil }
	}
	return l, nil
}

// Append persists a committed block at the next height. Blocks must
// arrive in commit order; a skipped or repeated height is rejected,
// because the on-disk chain must mirror the committed chain exactly.
func (l *Ledger) Append(b *types.Block, height uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errors.New("ledger: closed")
	}
	if height != l.height+1 {
		return fmt.Errorf("ledger: non-contiguous append: height %d after %d", height, l.height)
	}
	rec := record{
		Height:   height,
		View:     b.View,
		Proposer: b.Proposer,
		Parent:   b.Parent,
		ID:       b.ID(),
		Payload:  b.Payload,
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&rec); err != nil {
		return fmt.Errorf("ledger: append: %w", err)
	}
	var lenb [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(lenb[:], uint64(buf.Len()))
	if _, err := l.w.Write(lenb[:n]); err != nil {
		return fmt.Errorf("ledger: append: %w", err)
	}
	if _, err := l.w.Write(buf.Bytes()); err != nil {
		return fmt.Errorf("ledger: append: %w", err)
	}
	l.height = height
	return nil
}

// Height returns the last persisted height.
func (l *Ledger) Height() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.height
}

// Sync flushes buffered records to the file.
func (l *Ledger) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.flush(); err != nil {
		return fmt.Errorf("ledger: flush: %w", err)
	}
	return l.f.Sync()
}

// Close flushes and closes the file.
func (l *Ledger) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if err := l.flush(); err != nil {
		return fmt.Errorf("ledger: flush: %w", err)
	}
	return l.f.Close()
}

// Replay streams the persisted chain in commit order, reconstructing
// blocks and verifying that heights are contiguous and parent hashes
// chain correctly. fn receives each block and its height.
func Replay(path string, fn func(b *types.Block, height uint64) error) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer func() { _ = f.Close() }()
	br := bufio.NewReader(f)
	var prevID types.Hash
	var prevHeight uint64
	first := true
	for {
		size, err := binary.ReadUvarint(br)
		if err != nil {
			if err == io.EOF {
				return nil
			}
			return fmt.Errorf("ledger: corrupt frame after height %d: %w", prevHeight, err)
		}
		if size > 1<<30 {
			return fmt.Errorf("ledger: implausible record size %d after height %d", size, prevHeight)
		}
		frame := make([]byte, size)
		if _, err := io.ReadFull(br, frame); err != nil {
			return fmt.Errorf("ledger: truncated record after height %d: %w", prevHeight, err)
		}
		var rec record
		if err := gob.NewDecoder(bytes.NewReader(frame)).Decode(&rec); err != nil {
			return fmt.Errorf("ledger: corrupt record after height %d: %w", prevHeight, err)
		}
		if !first && rec.Height != prevHeight+1 {
			return fmt.Errorf("ledger: height gap: %d after %d", rec.Height, prevHeight)
		}
		if !first && rec.Parent != prevID {
			return fmt.Errorf("ledger: broken chain at height %d", rec.Height)
		}
		b := &types.Block{
			View:     rec.View,
			Proposer: rec.Proposer,
			Parent:   rec.Parent,
			Payload:  rec.Payload,
		}
		if err := fn(b, rec.Height); err != nil {
			return err
		}
		prevID, prevHeight, first = rec.ID, rec.Height, false
	}
}

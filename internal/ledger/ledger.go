// Package ledger persists finalized blocks: the paper's Section II
// notes that "finalized blocks can be removed from memory to persistent
// storage for garbage collection", and the forest's compaction assumes
// something downstream retains the history. A Ledger is that something:
// an append-only file of committed blocks in commit order, with a
// replay path for audits and crash recovery, and a ranged read path
// (ReadRange) that serves deep state-sync requests without replaying
// the whole file.
//
// The format is a sequence of length-prefixed, self-contained gob
// records (each record carries its own type header, so a reopened
// ledger can keep appending and a single replay can read across
// sessions). Records persist each block's quorum certificate alongside
// its contents, so a range served to a lagging replica is verifiable
// as a certified chain. Appends run on the replica's commit path and
// are synchronous but cheap; a deployment wanting group commit can use
// OpenBuffered.
//
// Crash recovery follows the usual write-ahead-log rule: a truncated
// final record is the footprint of a crash mid-append, so replay stops
// cleanly at the last intact record and Open truncates the damaged
// tail before appending. A record that is structurally complete but
// fails to decode, or a broken height/parent chain, is real corruption
// and is reported as an error.
package ledger

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"

	"github.com/bamboo-bft/bamboo/internal/types"
)

// Errors reported by the ranged read path.
var (
	ErrEmptyRange = errors.New("ledger: empty range")
	ErrPastHead   = errors.New("ledger: range starts past the persisted head")
)

// record is one persisted block.
type record struct {
	Height   uint64
	View     types.View
	Proposer types.NodeID
	Parent   types.Hash
	ID       types.Hash
	Payload  []types.Transaction
	// QC is the block's embedded certificate (certifying the parent);
	// persisting it makes a read range verifiable as a certified
	// chain. Records written before QC persistence decode with a nil
	// QC and cannot be served to sync requesters.
	QC *types.QC
	// Sig is the proposer's signature over the block ID.
	Sig []byte
}

// Ledger is an append-only store of committed blocks.
type Ledger struct {
	mu     sync.Mutex
	path   string
	f      *os.File
	w      io.Writer
	flush  func() error
	height uint64
	// offsets[h-1] is the file offset of the record for height h —
	// the height index behind ReadRange. Heights are contiguous from
	// 1, so a slice is the whole index.
	offsets []int64
	// size is the current end-of-file offset (all appends accounted).
	size   int64
	closed bool
}

// Open creates (or appends to) the ledger at path. If the file already
// contains records, the ledger resumes from the last height; a
// truncated tail left by a crash mid-append is cut off first.
func Open(path string) (*Ledger, error) {
	return open(path, false)
}

// OpenBuffered is Open with a write buffer: appends become group
// commits flushed on Sync/Close (faster, weaker durability).
func OpenBuffered(path string) (*Ledger, error) {
	return open(path, true)
}

func open(path string, buffered bool) (*Ledger, error) {
	sc, err := scan(path)
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, err
	}
	if sc.truncated {
		// Crash footprint: drop the partial record so the next append
		// does not interleave with garbage.
		if err := os.Truncate(path, sc.end); err != nil {
			return nil, fmt.Errorf("ledger: recover tail: %w", err)
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("ledger: %w", err)
	}
	l := &Ledger{path: path, f: f, height: sc.height, offsets: sc.offsets, size: sc.end}
	if buffered {
		bw := bufio.NewWriterSize(f, 1<<16)
		l.w = bw
		l.flush = bw.Flush
	} else {
		l.w = f
		l.flush = func() error { return nil }
	}
	return l, nil
}

// Append persists a committed block at the next height. Blocks must
// arrive in commit order; a skipped or repeated height is rejected,
// because the on-disk chain must mirror the committed chain exactly.
func (l *Ledger) Append(b *types.Block, height uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errors.New("ledger: closed")
	}
	if height != l.height+1 {
		return fmt.Errorf("ledger: non-contiguous append: height %d after %d", height, l.height)
	}
	rec := record{
		Height:   height,
		View:     b.View,
		Proposer: b.Proposer,
		Parent:   b.Parent,
		ID:       b.ID(),
		Payload:  b.Payload,
		QC:       b.QC,
		Sig:      b.Sig,
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&rec); err != nil {
		return fmt.Errorf("ledger: append: %w", err)
	}
	var lenb [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(lenb[:], uint64(buf.Len()))
	if _, err := l.w.Write(lenb[:n]); err != nil {
		return fmt.Errorf("ledger: append: %w", err)
	}
	if _, err := l.w.Write(buf.Bytes()); err != nil {
		return fmt.Errorf("ledger: append: %w", err)
	}
	l.offsets = append(l.offsets, l.size)
	l.size += int64(n) + int64(buf.Len())
	l.height = height
	return nil
}

// Height returns the last persisted height.
func (l *Ledger) Height() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.height
}

// Sync flushes buffered records to the file.
func (l *Ledger) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.flush(); err != nil {
		return fmt.Errorf("ledger: flush: %w", err)
	}
	return l.f.Sync()
}

// Close flushes and closes the file.
func (l *Ledger) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if err := l.flush(); err != nil {
		return fmt.Errorf("ledger: flush: %w", err)
	}
	return l.f.Close()
}

// ReadRange returns the persisted blocks at heights [from, to] in
// height order, seeking straight to the first record through the
// height index instead of replaying the file. A `to` beyond the
// persisted head is clamped to it; a `from` past the head returns
// ErrPastHead and an inverted range returns ErrEmptyRange. Returned
// blocks carry their certificate and proposer signature, so a sync
// response built from them is verifiable end to end.
func (l *Ledger) ReadRange(from, to uint64) ([]*types.Block, error) {
	l.mu.Lock()
	if from == 0 || from > to {
		l.mu.Unlock()
		return nil, ErrEmptyRange
	}
	if from > l.height {
		l.mu.Unlock()
		return nil, fmt.Errorf("%w: %d > %d", ErrPastHead, from, l.height)
	}
	if to > l.height {
		to = l.height
	}
	// Flush so a buffered appender's records are visible to the read
	// below; the read uses its own descriptor, leaving the append
	// position untouched.
	if err := l.flush(); err != nil {
		l.mu.Unlock()
		return nil, fmt.Errorf("ledger: flush: %w", err)
	}
	start := l.offsets[from-1]
	path := l.path
	l.mu.Unlock()

	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("ledger: %w", err)
	}
	defer func() { _ = f.Close() }()
	if _, err := f.Seek(start, io.SeekStart); err != nil {
		return nil, fmt.Errorf("ledger: seek: %w", err)
	}
	br := bufio.NewReader(f)
	out := make([]*types.Block, 0, to-from+1)
	for h := from; h <= to; h++ {
		rec, _, status, err := readRecord(br)
		if status != frameOK {
			if err == nil {
				err = errors.New("unexpected end of file")
			}
			return nil, fmt.Errorf("ledger: read height %d: %w", h, err)
		}
		if rec.Height != h {
			return nil, fmt.Errorf("ledger: index skew: record %d where %d expected", rec.Height, h)
		}
		b, err := rec.block()
		if err != nil {
			return nil, fmt.Errorf("ledger: height %d: %w", h, err)
		}
		out = append(out, b)
	}
	return out, nil
}

// block reconstructs the persisted block and checks that the
// reconstruction hashes back to the recorded identity — the cheap
// integrity check that keeps a bit-rotted record from being served.
func (rec *record) block() (*types.Block, error) {
	if rec.QC == nil {
		return nil, errors.New("record predates certificate persistence")
	}
	b := &types.Block{
		View:     rec.View,
		Proposer: rec.Proposer,
		Parent:   rec.Parent,
		QC:       rec.QC,
		Payload:  rec.Payload,
		Sig:      rec.Sig,
	}
	if b.ID() != rec.ID {
		return nil, errors.New("record identity mismatch")
	}
	return b, nil
}

// Replay streams the persisted chain in commit order, reconstructing
// blocks and verifying that heights are contiguous and parent hashes
// chain correctly. fn receives each block and its height. A truncated
// final record (crash mid-append) ends the replay cleanly at the last
// intact record; structural corruption is reported as an error.
func Replay(path string, fn func(b *types.Block, height uint64) error) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer func() { _ = f.Close() }()
	br := bufio.NewReader(f)
	var prevID types.Hash
	var prevHeight uint64
	first := true
	for {
		rec, _, status, err := readRecord(br)
		if status == frameEnd || status == frameTruncated {
			return nil
		}
		if err != nil {
			return fmt.Errorf("ledger: corrupt record after height %d: %w", prevHeight, err)
		}
		if !first && rec.Height != prevHeight+1 {
			return fmt.Errorf("ledger: height gap: %d after %d", rec.Height, prevHeight)
		}
		if !first && rec.Parent != prevID {
			return fmt.Errorf("ledger: broken chain at height %d", rec.Height)
		}
		b := &types.Block{
			View:     rec.View,
			Proposer: rec.Proposer,
			Parent:   rec.Parent,
			QC:       rec.QC,
			Payload:  rec.Payload,
			Sig:      rec.Sig,
		}
		if err := fn(b, rec.Height); err != nil {
			return err
		}
		prevID, prevHeight, first = rec.ID, rec.Height, false
	}
}

// frameStatus classifies the outcome of reading one record frame.
type frameStatus int

const (
	frameOK frameStatus = iota
	// frameEnd is a clean end of file on a frame boundary.
	frameEnd
	// frameTruncated is an incomplete final frame — the footprint of a
	// crash mid-append, distinct from corruption.
	frameTruncated
	// frameCorrupt is a structurally damaged record.
	frameCorrupt
)

// readRecord reads one length-prefixed record, reporting the frame's
// total on-disk length. It distinguishes a clean end of stream and a
// truncated tail from real corruption.
func readRecord(br *bufio.Reader) (rec record, n int64, status frameStatus, err error) {
	if _, err := br.Peek(1); err == io.EOF {
		return rec, 0, frameEnd, nil
	}
	size, vn, err := readUvarintCount(br)
	if err != nil {
		// A varint cut off by end-of-file is a torn final frame.
		if err == io.EOF || errors.Is(err, io.ErrUnexpectedEOF) {
			return rec, 0, frameTruncated, nil
		}
		return rec, 0, frameCorrupt, err
	}
	if size > 1<<30 {
		return rec, 0, frameCorrupt, fmt.Errorf("implausible record size %d", size)
	}
	frame := make([]byte, size)
	if _, err := io.ReadFull(br, frame); err != nil {
		if err == io.EOF || errors.Is(err, io.ErrUnexpectedEOF) {
			return rec, 0, frameTruncated, nil
		}
		return rec, 0, frameCorrupt, err
	}
	if err := gob.NewDecoder(bytes.NewReader(frame)).Decode(&rec); err != nil {
		return rec, 0, frameCorrupt, err
	}
	return rec, int64(vn) + int64(size), frameOK, nil
}

// readUvarintCount is binary.ReadUvarint plus the number of bytes
// consumed, so scan can maintain exact file offsets.
func readUvarintCount(br *bufio.Reader) (uint64, int, error) {
	var x uint64
	var s uint
	for i := 0; i < binary.MaxVarintLen64; i++ {
		b, err := br.ReadByte()
		if err != nil {
			if err == io.EOF && i > 0 {
				return 0, i, io.ErrUnexpectedEOF
			}
			return 0, i, err
		}
		if b < 0x80 {
			return x | uint64(b)<<s, i + 1, nil
		}
		x |= uint64(b&0x7f) << s
		s += 7
	}
	return 0, binary.MaxVarintLen64, errors.New("uvarint overflows 64 bits")
}

// scanResult summarizes a file walk: the height index, the end offset
// of the last intact record, the resume height, and whether a torn
// tail follows.
type scanResult struct {
	offsets   []int64
	end       int64
	height    uint64
	truncated bool
}

// scan walks the file building the height index and finding the safe
// append point, enforcing the same chain structure Replay does —
// contiguous heights, each record's parent naming its predecessor. A
// ledger with garbage or a broken link in the middle must not
// silently resume (or be served to catch-up peers).
func scan(path string) (scanResult, error) {
	var sc scanResult
	f, err := os.Open(path)
	if err != nil {
		return sc, err
	}
	defer func() { _ = f.Close() }()
	br := bufio.NewReader(f)
	var prevID types.Hash
	for {
		rec, n, status, err := readRecord(br)
		switch status {
		case frameEnd:
			return sc, nil
		case frameTruncated:
			sc.truncated = true
			return sc, nil
		case frameCorrupt:
			return sc, fmt.Errorf("ledger: corrupt record after height %d: %w", sc.height, err)
		}
		if rec.Height != sc.height+1 {
			return sc, fmt.Errorf("ledger: height gap: %d after %d", rec.Height, sc.height)
		}
		if sc.height > 0 && rec.Parent != prevID {
			return sc, fmt.Errorf("ledger: broken chain at height %d", rec.Height)
		}
		sc.offsets = append(sc.offsets, sc.end)
		sc.height = rec.Height
		sc.end += n
		prevID = rec.ID
	}
}

// Package ledger persists finalized blocks: the paper's Section II
// notes that "finalized blocks can be removed from memory to persistent
// storage for garbage collection", and the forest's compaction assumes
// something downstream retains the history. A Ledger is that something:
// an append-only file of committed blocks in commit order, with a
// replay path for audits and crash recovery, and a ranged read path
// (ReadRange) that serves deep state-sync requests without replaying
// the whole file.
//
// The format is a sequence of length-prefixed, self-contained gob
// records (each record carries its own type header, so a reopened
// ledger can keep appending and a single replay can read across
// sessions). Records persist each block's quorum certificate alongside
// its contents, so a range served to a lagging replica is verifiable
// as a certified chain. Appends run on the replica's commit path and
// are synchronous but cheap; a deployment wanting group commit can use
// OpenBuffered.
//
// Crash recovery follows the usual write-ahead-log rule: a truncated
// final record is the footprint of a crash mid-append, so replay stops
// cleanly at the last intact record and Open truncates the damaged
// tail before appending. A record that is structurally complete but
// fails to decode, or a broken height/parent chain, is real corruption
// and is reported as an error.
package ledger

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"

	"github.com/bamboo-bft/bamboo/internal/types"
)

// Errors reported by the ranged read path.
var (
	ErrEmptyRange = errors.New("ledger: empty range")
	ErrPastHead   = errors.New("ledger: range starts past the persisted head")
	// ErrCompacted reports a range starting at or below the
	// compacted floor: the prefix was dropped because a snapshot
	// covers it, and the caller must fall back to snapshot transfer.
	ErrCompacted = errors.New("ledger: range below the compacted floor")
)

// record is one persisted block, or — when Base is set — the
// compaction marker that heads a compacted file.
type record struct {
	Height   uint64
	View     types.View
	Proposer types.NodeID
	Parent   types.Hash
	ID       types.Hash
	Payload  []types.Transaction
	// QC is the block's embedded certificate (certifying the parent);
	// persisting it makes a read range verifiable as a certified
	// chain. Records written before QC persistence decode with a nil
	// QC and cannot be served to sync requesters.
	QC *types.QC
	// Sig is the proposer's signature over the block ID.
	Sig []byte
	// SelfQC is a certificate for THIS block (the one that justified
	// committing it). Restart replay needs it for the replayed head:
	// without a certificate in hand for the tip, a rebooted leader
	// could only propose on top of the grandparent — stale at every
	// peer — and the cluster would stall. Nil on records written
	// before SelfQC persistence.
	SelfQC *types.QC
	// Base marks a compaction marker: the record carries no block,
	// and Height is the compacted floor — every height at or below
	// it was dropped because a snapshot covers it. Only valid as the
	// first record of a file.
	Base bool
}

// Ledger is an append-only store of committed blocks whose prefix can
// be compacted away once a state snapshot covers it.
type Ledger struct {
	mu       sync.Mutex
	path     string
	f        *os.File
	w        io.Writer
	flush    func() error
	buffered bool
	// base is the compacted floor: heights at or below it are gone
	// from the file (served by the snapshot instead). Zero means the
	// file still reaches back to height 1.
	base   uint64
	height uint64
	// offsets[h-base-1] is the file offset of the record for height
	// h — the height index behind ReadRange. Retained heights are
	// contiguous from base+1, so a slice is the whole index.
	offsets []int64
	// size is the current end-of-file offset (all appends accounted).
	size int64
	// gen counts file swaps (compaction, reset) and tail truncations.
	// ReadRange snapshots it with the offsets and re-checks after
	// opening its descriptor: the file was append-only before
	// compaction existed, and a swap between offset lookup and open
	// would otherwise point the read into a rewritten file.
	gen    uint64
	closed bool
}

// Open creates (or appends to) the ledger at path. If the file already
// contains records, the ledger resumes from the last height; a
// truncated tail left by a crash mid-append is cut off first.
func Open(path string) (*Ledger, error) {
	return open(path, false)
}

// OpenBuffered is Open with a write buffer: appends become group
// commits flushed on Sync/Close (faster, weaker durability).
func OpenBuffered(path string) (*Ledger, error) {
	return open(path, true)
}

func open(path string, buffered bool) (*Ledger, error) {
	sc, err := scan(path)
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, err
	}
	if sc.truncated {
		// Crash footprint: drop the partial record so the next append
		// does not interleave with garbage.
		if err := os.Truncate(path, sc.end); err != nil {
			return nil, fmt.Errorf("ledger: recover tail: %w", err)
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("ledger: %w", err)
	}
	l := &Ledger{path: path, f: f, buffered: buffered,
		base: sc.base, height: sc.height, offsets: sc.offsets, size: sc.end}
	l.resetWriter()
	return l, nil
}

// resetWriter (re)builds the write path onto l.f, preserving the
// buffered-or-not choice made at Open.
func (l *Ledger) resetWriter() {
	if l.buffered {
		bw := bufio.NewWriterSize(l.f, 1<<16)
		l.w = bw
		l.flush = bw.Flush
	} else {
		l.w = l.f
		l.flush = func() error { return nil }
	}
}

// Append persists a committed block at the next height. Blocks must
// arrive in commit order; a skipped or repeated height is rejected,
// because the on-disk chain must mirror the committed chain exactly.
func (l *Ledger) Append(b *types.Block, height uint64) error {
	return l.AppendCertified(b, height, nil)
}

// AppendCertified is Append carrying a certificate for the appended
// block itself (available on every commit path: the next committed
// block's embedded certificate, or the forest's certification
// record). It is what lets restart replay hand the rebooted replica a
// certified chain tip to build on.
func (l *Ledger) AppendCertified(b *types.Block, height uint64, selfQC *types.QC) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errors.New("ledger: closed")
	}
	if height != l.height+1 {
		return fmt.Errorf("ledger: non-contiguous append: height %d after %d", height, l.height)
	}
	rec := record{
		Height:   height,
		View:     b.View,
		Proposer: b.Proposer,
		Parent:   b.Parent,
		ID:       b.ID(),
		Payload:  b.Payload,
		QC:       b.QC,
		Sig:      b.Sig,
		SelfQC:   selfQC,
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&rec); err != nil {
		return fmt.Errorf("ledger: append: %w", err)
	}
	var lenb [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(lenb[:], uint64(buf.Len()))
	if _, err := l.w.Write(lenb[:n]); err != nil {
		return fmt.Errorf("ledger: append: %w", err)
	}
	if _, err := l.w.Write(buf.Bytes()); err != nil {
		return fmt.Errorf("ledger: append: %w", err)
	}
	l.offsets = append(l.offsets, l.size)
	l.size += int64(n) + int64(buf.Len())
	l.height = height
	return nil
}

// Height returns the last persisted height.
func (l *Ledger) Height() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.height
}

// Base returns the compacted floor: the height at or below which
// records have been dropped because a snapshot covers them. Zero
// means the whole chain from height 1 is still on disk.
func (l *Ledger) Base() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.base
}

// markerFrame encodes a compaction marker for the given floor as one
// length-prefixed frame.
func markerFrame(base uint64) ([]byte, error) {
	var body bytes.Buffer
	if err := gob.NewEncoder(&body).Encode(&record{Height: base, Base: true}); err != nil {
		return nil, fmt.Errorf("ledger: marker: %w", err)
	}
	var lenb [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(lenb[:], uint64(body.Len()))
	return append(lenb[:n:n], body.Bytes()...), nil
}

// CompactTo drops every record at heights at or below `to`, leaving a
// compaction marker so a reopened ledger knows its floor. Call it
// once a snapshot covers the prefix — deep catch-up for the dropped
// heights is then served by snapshot transfer instead. Compacting at
// or below the current floor is a no-op; compacting past the head is
// rejected. The rewrite is atomic (write-then-rename), so a crash
// mid-compaction leaves the previous file intact.
func (l *Ledger) CompactTo(to uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errors.New("ledger: closed")
	}
	if to <= l.base {
		return nil
	}
	if to > l.height {
		return fmt.Errorf("ledger: compact to %d past head %d", to, l.height)
	}
	if err := l.flush(); err != nil {
		return fmt.Errorf("ledger: flush: %w", err)
	}
	marker, err := markerFrame(to)
	if err != nil {
		return err
	}
	// Offset of the first retained record (height to+1), or end of
	// file when everything is compacted away.
	keepStart := l.size
	if to < l.height {
		keepStart = l.offsets[to-l.base]
	}
	tmp := l.path + ".compact"
	out, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("ledger: compact: %w", err)
	}
	if _, err := out.Write(marker); err != nil {
		_ = out.Close()
		return fmt.Errorf("ledger: compact: %w", err)
	}
	src, err := os.Open(l.path)
	if err != nil {
		_ = out.Close()
		return fmt.Errorf("ledger: compact: %w", err)
	}
	_, err = io.Copy(out, io.NewSectionReader(src, keepStart, l.size-keepStart))
	_ = src.Close()
	if err != nil {
		_ = out.Close()
		return fmt.Errorf("ledger: compact: %w", err)
	}
	if err := out.Sync(); err != nil {
		_ = out.Close()
		return fmt.Errorf("ledger: compact: %w", err)
	}
	if err := out.Close(); err != nil {
		return fmt.Errorf("ledger: compact: %w", err)
	}
	return l.swapFile(tmp, to, keepStart, int64(len(marker)))
}

// ResetTo discards the entire file and re-bases the ledger at the
// given height: the next append must be height+1. It is the install
// step of snapshot-based catch-up — after jumping the state machine
// to a snapshot, the local chain below it is another deployment's
// history as far as this file is concerned.
func (l *Ledger) ResetTo(height uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errors.New("ledger: closed")
	}
	marker, err := markerFrame(height)
	if err != nil {
		return err
	}
	tmp := l.path + ".compact"
	// Sync before rename, like CompactTo: the caller just dropped (or
	// is about to drop) the history this marker re-bases over, so the
	// marker must not sit in the page cache when the old file is gone.
	mf, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("ledger: reset: %w", err)
	}
	if _, err := mf.Write(marker); err != nil {
		_ = mf.Close()
		return fmt.Errorf("ledger: reset: %w", err)
	}
	if err := mf.Sync(); err != nil {
		_ = mf.Close()
		return fmt.Errorf("ledger: reset: %w", err)
	}
	if err := mf.Close(); err != nil {
		return fmt.Errorf("ledger: reset: %w", err)
	}
	if err := l.swapFile(tmp, height, l.size, int64(len(marker))); err != nil {
		return err
	}
	// Unlike compaction, a reset may re-base BELOW the old head; the
	// file is empty either way.
	l.height = height
	l.offsets = nil
	return nil
}

// swapFile renames tmp over the live file and rewires the append
// handle and the height index: records formerly at file offset
// keepStart onward now live right after a marker of markerLen bytes,
// and heights at or below newBase are gone. Callers hold l.mu.
func (l *Ledger) swapFile(tmp string, newBase uint64, keepStart, markerLen int64) error {
	if err := os.Rename(tmp, l.path); err != nil {
		return fmt.Errorf("ledger: swap: %w", err)
	}
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("ledger: swap: %w", err)
	}
	f, err := os.OpenFile(l.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("ledger: swap: %w", err)
	}
	l.f = f
	l.resetWriter()
	var kept []int64
	if keepStart < l.size && newBase >= l.base {
		if drop := int(newBase - l.base); drop < len(l.offsets) {
			kept = make([]int64, 0, len(l.offsets)-drop)
			for _, off := range l.offsets[drop:] {
				kept = append(kept, markerLen+(off-keepStart))
			}
		}
	}
	l.offsets = kept
	l.size = markerLen + (l.size - keepStart)
	l.base = newBase
	l.gen++
	if l.height < newBase {
		l.height = newBase
	}
	return nil
}

// Sync flushes buffered records to the file.
func (l *Ledger) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.flush(); err != nil {
		return fmt.Errorf("ledger: flush: %w", err)
	}
	return l.f.Sync()
}

// Close flushes and closes the file.
func (l *Ledger) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if err := l.flush(); err != nil {
		return fmt.Errorf("ledger: flush: %w", err)
	}
	return l.f.Close()
}

// ReadRange returns the persisted blocks at heights [from, to] in
// height order, seeking straight to the first record through the
// height index instead of replaying the file. A `to` beyond the
// persisted head is clamped to it; a `from` past the head returns
// ErrPastHead, a `from` at or below the compacted floor returns
// ErrCompacted (the caller's cue to fall back to snapshot transfer),
// and an inverted range returns ErrEmptyRange. Returned blocks carry
// their certificate and proposer signature, so a sync response built
// from them is verifiable end to end. A compaction racing the read
// (the apply stage rewrites the file, the event loop serves from it)
// is detected through the swap generation and the read retried
// against the fresh index.
func (l *Ledger) ReadRange(from, to uint64) ([]*types.Block, error) {
	for attempt := 0; ; attempt++ {
		blocks, raced, err := l.readRange(from, to)
		if raced && attempt < 3 {
			continue
		}
		return blocks, err
	}
}

// readRange is one ReadRange attempt; raced reports that the file was
// swapped between the offset lookup and the open, invalidating the
// offset (the caller retries against the new index).
func (l *Ledger) readRange(from, to uint64) (_ []*types.Block, raced bool, _ error) {
	l.mu.Lock()
	if from == 0 || from > to {
		l.mu.Unlock()
		return nil, false, ErrEmptyRange
	}
	if from <= l.base {
		l.mu.Unlock()
		return nil, false, fmt.Errorf("%w: %d at floor %d", ErrCompacted, from, l.base)
	}
	if from > l.height {
		l.mu.Unlock()
		return nil, false, fmt.Errorf("%w: %d > %d", ErrPastHead, from, l.height)
	}
	if to > l.height {
		to = l.height
	}
	// Flush so a buffered appender's records are visible to the read
	// below; the read uses its own descriptor, leaving the append
	// position untouched.
	if err := l.flush(); err != nil {
		l.mu.Unlock()
		return nil, false, fmt.Errorf("ledger: flush: %w", err)
	}
	start := l.offsets[from-l.base-1]
	gen := l.gen
	path := l.path
	l.mu.Unlock()

	f, err := os.Open(path)
	if err != nil {
		return nil, false, fmt.Errorf("ledger: %w", err)
	}
	defer func() { _ = f.Close() }()
	// If the file was swapped before the open, the descriptor is the
	// NEW file and the offset belongs to the old one. Once this check
	// passes, later swaps are harmless: the rename leaves this open
	// descriptor on the pre-swap inode, whose layout the offset
	// matches.
	l.mu.Lock()
	raced = l.gen != gen
	l.mu.Unlock()
	if raced {
		return nil, true, fmt.Errorf("ledger: read raced a compaction")
	}
	if _, err := f.Seek(start, io.SeekStart); err != nil {
		return nil, false, fmt.Errorf("ledger: seek: %w", err)
	}
	br := bufio.NewReader(f)
	out := make([]*types.Block, 0, to-from+1)
	for h := from; h <= to; h++ {
		rec, _, status, err := readRecord(br)
		if status != frameOK {
			if err == nil {
				err = errors.New("unexpected end of file")
			}
			return nil, false, fmt.Errorf("ledger: read height %d: %w", h, err)
		}
		if rec.Height != h {
			return nil, false, fmt.Errorf("ledger: index skew: record %d where %d expected", rec.Height, h)
		}
		b, err := rec.block()
		if err != nil {
			return nil, false, fmt.Errorf("ledger: height %d: %w", h, err)
		}
		out = append(out, b)
	}
	return out, false, nil
}

// block reconstructs the persisted block and checks that the
// reconstruction hashes back to the recorded identity — the cheap
// integrity check that keeps a bit-rotted record from being served.
func (rec *record) block() (*types.Block, error) {
	if rec.QC == nil {
		return nil, errors.New("record predates certificate persistence")
	}
	b := &types.Block{
		View:     rec.View,
		Proposer: rec.Proposer,
		Parent:   rec.Parent,
		QC:       rec.QC,
		Payload:  rec.Payload,
		Sig:      rec.Sig,
	}
	if b.ID() != rec.ID {
		return nil, errors.New("record identity mismatch")
	}
	return b, nil
}

// Replay streams the persisted chain in commit order, reconstructing
// blocks and verifying that heights are contiguous and parent hashes
// chain correctly. fn receives each block and its height. A compacted
// file replays its retained suffix (the compaction marker is skipped;
// the first retained record's parent is the snapshot block, outside
// the file, so its parent link is not checked). A truncated final
// record (crash mid-append) ends the replay cleanly at the last
// intact record; structural corruption is reported as an error.
func Replay(path string, fn func(b *types.Block, height uint64) error) error {
	return replay(path, func(b *types.Block, height uint64, _ *types.QC) error {
		return fn(b, height)
	})
}

// replay is the walk behind Replay and ReplayCertified.
func replay(path string, fn func(b *types.Block, height uint64, selfQC *types.QC) error) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer func() { _ = f.Close() }()
	br := bufio.NewReader(f)
	var prevID types.Hash
	var prevHeight uint64
	first, sawMarker := true, false
	for {
		rec, _, status, err := readRecord(br)
		if status == frameEnd || status == frameTruncated {
			return nil
		}
		if err != nil {
			return fmt.Errorf("ledger: corrupt record after height %d: %w", prevHeight, err)
		}
		if rec.Base {
			// Exactly one marker, leading the file — the same
			// structure scan enforces at Open.
			if !first || sawMarker {
				return fmt.Errorf("ledger: compaction marker after height %d", prevHeight)
			}
			sawMarker = true
			prevHeight = rec.Height
			continue
		}
		if !first && rec.Height != prevHeight+1 {
			return fmt.Errorf("ledger: height gap: %d after %d", rec.Height, prevHeight)
		}
		if first && prevHeight != 0 && rec.Height != prevHeight+1 {
			return fmt.Errorf("ledger: height gap: %d after floor %d", rec.Height, prevHeight)
		}
		if !first && rec.Parent != prevID {
			return fmt.Errorf("ledger: broken chain at height %d", rec.Height)
		}
		b := &types.Block{
			View:     rec.View,
			Proposer: rec.Proposer,
			Parent:   rec.Parent,
			QC:       rec.QC,
			Payload:  rec.Payload,
			Sig:      rec.Sig,
		}
		if err := fn(b, rec.Height, rec.SelfQC); err != nil {
			return err
		}
		prevID, prevHeight, first = rec.ID, rec.Height, false
	}
}

// Replay streams this ledger's retained records in commit order,
// flushing buffered appends first so the walk sees every persisted
// height. It reads through its own descriptor — the append position
// is untouched.
func (l *Ledger) Replay(fn func(b *types.Block, height uint64) error) error {
	return l.ReplayCertified(func(b *types.Block, height uint64, _ *types.QC) error {
		return fn(b, height)
	})
}

// ReplayCertified is Replay handing back each record's own
// certificate alongside the block (nil for records written before
// SelfQC persistence). It is the restart-replay entry point: a
// rebooted replica rebuilds forest and state machine from it before
// joining, and the final record's certificate is what lets it extend
// the replayed tip.
func (l *Ledger) ReplayCertified(fn func(b *types.Block, height uint64, selfQC *types.QC) error) error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return errors.New("ledger: closed")
	}
	if err := l.flush(); err != nil {
		l.mu.Unlock()
		return fmt.Errorf("ledger: flush: %w", err)
	}
	path := l.path
	l.mu.Unlock()
	return replay(path, fn)
}

// TruncateTo drops every record above the given height — the restart
// bootstrap's rollback for replayed-but-held-back tail blocks, which
// stay uncommitted until the live chain re-certifies them (and must
// therefore be re-appendable). Truncating at or above the head is a
// no-op; truncating below the compacted floor is rejected.
func (l *Ledger) TruncateTo(height uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errors.New("ledger: closed")
	}
	if height >= l.height {
		return nil
	}
	if height < l.base {
		return fmt.Errorf("ledger: truncate to %d below floor %d", height, l.base)
	}
	if err := l.flush(); err != nil {
		return fmt.Errorf("ledger: flush: %w", err)
	}
	cut := l.offsets[height-l.base]
	if err := os.Truncate(l.path, cut); err != nil {
		return fmt.Errorf("ledger: truncate: %w", err)
	}
	l.offsets = l.offsets[:height-l.base]
	l.size = cut
	l.height = height
	l.gen++
	return nil
}

// frameStatus classifies the outcome of reading one record frame.
type frameStatus int

const (
	frameOK frameStatus = iota
	// frameEnd is a clean end of file on a frame boundary.
	frameEnd
	// frameTruncated is an incomplete final frame — the footprint of a
	// crash mid-append, distinct from corruption.
	frameTruncated
	// frameCorrupt is a structurally damaged record.
	frameCorrupt
)

// readRecord reads one length-prefixed record, reporting the frame's
// total on-disk length. It distinguishes a clean end of stream and a
// truncated tail from real corruption.
func readRecord(br *bufio.Reader) (rec record, n int64, status frameStatus, err error) {
	if _, err := br.Peek(1); err == io.EOF {
		return rec, 0, frameEnd, nil
	}
	size, vn, err := readUvarintCount(br)
	if err != nil {
		// A varint cut off by end-of-file is a torn final frame.
		if err == io.EOF || errors.Is(err, io.ErrUnexpectedEOF) {
			return rec, 0, frameTruncated, nil
		}
		return rec, 0, frameCorrupt, err
	}
	if size > 1<<30 {
		return rec, 0, frameCorrupt, fmt.Errorf("implausible record size %d", size)
	}
	frame := make([]byte, size)
	if _, err := io.ReadFull(br, frame); err != nil {
		if err == io.EOF || errors.Is(err, io.ErrUnexpectedEOF) {
			return rec, 0, frameTruncated, nil
		}
		return rec, 0, frameCorrupt, err
	}
	if err := gob.NewDecoder(bytes.NewReader(frame)).Decode(&rec); err != nil {
		return rec, 0, frameCorrupt, err
	}
	return rec, int64(vn) + int64(size), frameOK, nil
}

// readUvarintCount is binary.ReadUvarint plus the number of bytes
// consumed, so scan can maintain exact file offsets.
func readUvarintCount(br *bufio.Reader) (uint64, int, error) {
	var x uint64
	var s uint
	for i := 0; i < binary.MaxVarintLen64; i++ {
		b, err := br.ReadByte()
		if err != nil {
			if err == io.EOF && i > 0 {
				return 0, i, io.ErrUnexpectedEOF
			}
			return 0, i, err
		}
		if b < 0x80 {
			return x | uint64(b)<<s, i + 1, nil
		}
		x |= uint64(b&0x7f) << s
		s += 7
	}
	return 0, binary.MaxVarintLen64, errors.New("uvarint overflows 64 bits")
}

// scanResult summarizes a file walk: the height index, the end offset
// of the last intact record, the resume height, the compacted floor,
// and whether a torn tail follows.
type scanResult struct {
	offsets   []int64
	end       int64
	base      uint64
	height    uint64
	truncated bool
}

// scan walks the file building the height index and finding the safe
// append point, enforcing the same chain structure Replay does —
// contiguous heights, each record's parent naming its predecessor. A
// compacted file leads with its marker, which re-bases the expected
// heights; the first retained record's parent (the snapshot block)
// is outside the file and goes unchecked. A ledger with garbage or a
// broken link in the middle must not silently resume (or be served
// to catch-up peers).
func scan(path string) (scanResult, error) {
	var sc scanResult
	f, err := os.Open(path)
	if err != nil {
		return sc, err
	}
	defer func() { _ = f.Close() }()
	br := bufio.NewReader(f)
	var prevID types.Hash
	first := true
	for {
		rec, n, status, err := readRecord(br)
		switch status {
		case frameEnd:
			return sc, nil
		case frameTruncated:
			sc.truncated = true
			return sc, nil
		case frameCorrupt:
			return sc, fmt.Errorf("ledger: corrupt record after height %d: %w", sc.height, err)
		}
		if rec.Base {
			if !first {
				return sc, fmt.Errorf("ledger: compaction marker after height %d", sc.height)
			}
			sc.base = rec.Height
			sc.height = rec.Height
			sc.end += n
			first = false
			continue
		}
		if rec.Height != sc.height+1 {
			return sc, fmt.Errorf("ledger: height gap: %d after %d", rec.Height, sc.height)
		}
		if sc.height > sc.base && rec.Parent != prevID {
			return sc, fmt.Errorf("ledger: broken chain at height %d", rec.Height)
		}
		sc.offsets = append(sc.offsets, sc.end)
		sc.height = rec.Height
		sc.end += n
		prevID = rec.ID
		first = false
	}
}

package ledger

import (
	"errors"
	"path/filepath"
	"testing"

	"github.com/bamboo-bft/bamboo/internal/types"
)

// newCompactedLedger appends `total` blocks and compacts to `floor`.
func newCompactedLedger(t *testing.T, path string, total int, floor uint64) *Ledger {
	t.Helper()
	chain := buildChain(total)
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range chain {
		if err := l.Append(b, uint64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.CompactTo(floor); err != nil {
		t.Fatal(err)
	}
	return l
}

// TestCompactToSnapshotHeight: compaction drops exactly the prefix,
// keeps the suffix servable, and reports the floor through Base and
// the typed ErrCompacted.
func TestCompactToSnapshotHeight(t *testing.T) {
	path := filepath.Join(t.TempDir(), "chain.ledger")
	l := newCompactedLedger(t, path, 20, 12)
	defer func() { _ = l.Close() }()

	if l.Base() != 12 || l.Height() != 20 {
		t.Fatalf("base %d height %d, want 12/20", l.Base(), l.Height())
	}
	// The retained suffix reads back intact.
	got, err := l.ReadRange(13, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 8 {
		t.Fatalf("retained range has %d blocks, want 8", len(got))
	}
	// Below the floor: the typed error that triggers snapshot
	// fallback, for ranges starting anywhere in the dropped prefix.
	for _, from := range []uint64{1, 6, 12} {
		if _, err := l.ReadRange(from, 20); !errors.Is(err, ErrCompacted) {
			t.Fatalf("ReadRange(%d) = %v, want ErrCompacted", from, err)
		}
	}
	// Re-compacting at or below the floor is a no-op; past the head
	// is rejected.
	if err := l.CompactTo(5); err != nil {
		t.Fatalf("no-op compaction errored: %v", err)
	}
	if err := l.CompactTo(21); err == nil {
		t.Fatal("compaction past the head accepted")
	}
	// The height contract survives compaction: repeating the head is
	// rejected, the next height is accepted.
	if err := l.Append(got[len(got)-1], 20); err == nil {
		t.Fatal("re-append of existing height accepted")
	}
	next := buildChain(21)[20]
	if err := l.Append(next, 21); err != nil {
		t.Fatal(err)
	}
}

// TestReopenAfterCompaction: the compaction marker re-bases a
// reopened ledger — resume height, floor, ranged reads, and further
// appends all line up, and Replay walks only the retained suffix.
func TestReopenAfterCompaction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "chain.ledger")
	chain := buildChain(24)
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range chain[:20] {
		if err := l.Append(b, uint64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.CompactTo(16); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = r.Close() }()
	if r.Base() != 16 || r.Height() != 20 {
		t.Fatalf("reopened base %d height %d, want 16/20", r.Base(), r.Height())
	}
	// Appends resume exactly where the file ended.
	for i, b := range chain[20:] {
		if err := r.Append(b, uint64(21+i)); err != nil {
			t.Fatal(err)
		}
	}
	got, err := r.ReadRange(17, 24)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range got {
		if b.ID() != chain[16+i].ID() {
			t.Fatalf("block %d has wrong identity after reopen", 17+i)
		}
		if b.QC == nil {
			t.Fatalf("block %d lost its certificate", 17+i)
		}
	}
	if _, err := r.ReadRange(16, 24); !errors.Is(err, ErrCompacted) {
		t.Fatalf("floor not enforced after reopen: %v", err)
	}
}

// TestCompactToHead: compacting everything leaves an empty, re-based
// file that still accepts the next height — the shape a snapshot
// install leaves behind via ResetTo as well.
func TestCompactToHead(t *testing.T) {
	path := filepath.Join(t.TempDir(), "chain.ledger")
	l := newCompactedLedger(t, path, 10, 10)
	if l.Base() != 10 || l.Height() != 10 {
		t.Fatalf("base %d height %d, want 10/10", l.Base(), l.Height())
	}
	if _, err := l.ReadRange(10, 10); !errors.Is(err, ErrCompacted) {
		t.Fatalf("fully compacted read = %v, want ErrCompacted", err)
	}
	if _, err := l.ReadRange(11, 12); !errors.Is(err, ErrPastHead) {
		t.Fatalf("past-head read = %v, want ErrPastHead", err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = r.Close() }()
	if r.Base() != 10 || r.Height() != 10 {
		t.Fatalf("reopened empty base %d height %d, want 10/10", r.Base(), r.Height())
	}
}

// TestResetTo: a snapshot install discards the local file outright
// and re-bases at the install height; appends continue from there and
// a reopen agrees.
func TestResetTo(t *testing.T) {
	path := filepath.Join(t.TempDir(), "chain.ledger")
	chain := buildChain(6)
	l, err := OpenBuffered(path)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range chain {
		if err := l.Append(b, uint64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.ResetTo(40); err != nil {
		t.Fatal(err)
	}
	if l.Base() != 40 || l.Height() != 40 {
		t.Fatalf("after reset: base %d height %d, want 40/40", l.Base(), l.Height())
	}
	if err := l.Append(chain[0], 7); err == nil {
		t.Fatal("pre-reset height accepted after reset")
	}
	// The suffix above the install height appends normally (any
	// blocks do — the ledger checks heights, not hashes, across a
	// reset boundary).
	if err := l.Append(chain[0], 41); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = r.Close() }()
	if r.Base() != 40 || r.Height() != 41 {
		t.Fatalf("reopened base %d height %d, want 40/41", r.Base(), r.Height())
	}
	got, err := r.ReadRange(41, 41)
	if err != nil || len(got) != 1 || got[0].ID() != chain[0].ID() {
		t.Fatalf("post-reset record unreadable: %v", err)
	}
}

// TestCompactedReplayWalksSuffix: package-level Replay (and the
// instance method) skip the marker and hand back exactly the retained
// records with their recorded heights.
func TestCompactedReplayWalksSuffix(t *testing.T) {
	path := filepath.Join(t.TempDir(), "chain.ledger")
	l := newCompactedLedger(t, path, 15, 9)
	defer func() { _ = l.Close() }()
	var first, last, count uint64
	err := l.Replay(func(_ *types.Block, h uint64) error {
		if first == 0 {
			first = h
		}
		last = h
		count++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if first != 10 || last != 15 || count != 6 {
		t.Fatalf("replayed [%d..%d] (%d records), want [10..15] (6)", first, last, count)
	}
}

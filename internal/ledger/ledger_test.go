package ledger

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/bamboo-bft/bamboo/internal/safety"
	"github.com/bamboo-bft/bamboo/internal/types"
)

// buildChain creates n linked blocks starting from genesis.
func buildChain(n int) []*types.Block {
	parentQC := types.GenesisQC()
	out := make([]*types.Block, 0, n)
	for v := types.View(1); v <= types.View(n); v++ {
		b := safety.BuildBlock(1, v, parentQC, []types.Transaction{
			{ID: types.TxID{Client: 1, Seq: uint64(v)}, Command: []byte("cmd")},
		})
		out = append(out, b)
		parentQC = &types.QC{View: v, BlockID: b.ID()}
	}
	return out
}

func TestAppendAndReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "chain.ledger")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	blocks := buildChain(5)
	for i, b := range blocks {
		if err := l.Append(b, uint64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	if l.Height() != 5 {
		t.Fatalf("height = %d", l.Height())
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	var replayed []*types.Block
	err = Replay(path, func(b *types.Block, h uint64) error {
		replayed = append(replayed, b)
		if h != uint64(len(replayed)) {
			t.Fatalf("height %d out of order", h)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(replayed) != 5 {
		t.Fatalf("replayed %d blocks", len(replayed))
	}
	for i, b := range replayed {
		if b.View != blocks[i].View || len(b.Payload) != 1 {
			t.Fatalf("block %d mangled: %+v", i, b)
		}
	}
}

func TestAppendRejectsGaps(t *testing.T) {
	path := filepath.Join(t.TempDir(), "chain.ledger")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = l.Close() }()
	blocks := buildChain(3)
	if err := l.Append(blocks[0], 1); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(blocks[2], 3); err == nil {
		t.Fatal("height gap accepted")
	}
	if err := l.Append(blocks[0], 1); err == nil {
		t.Fatal("repeat height accepted")
	}
}

func TestResumeFromExisting(t *testing.T) {
	path := filepath.Join(t.TempDir(), "chain.ledger")
	blocks := buildChain(4)
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := l.Append(blocks[i], uint64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen: the ledger resumes at height 2 and accepts 3 next.
	l2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if l2.Height() != 2 {
		t.Fatalf("resumed height = %d, want 2", l2.Height())
	}
	if err := l2.Append(blocks[2], 3); err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	count := 0
	if err := Replay(path, func(*types.Block, uint64) error { count++; return nil }); err != nil {
		t.Fatal(err)
	}
	if count != 3 {
		t.Fatalf("replayed %d, want 3", count)
	}
}

func TestReplayDetectsBrokenChain(t *testing.T) {
	path := filepath.Join(t.TempDir(), "chain.ledger")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	blocks := buildChain(2)
	if err := l.Append(blocks[0], 1); err != nil {
		t.Fatal(err)
	}
	// Forge a block whose parent link does not match.
	rogue := safety.BuildBlock(2, 9, &types.QC{View: 8, BlockID: types.Hash{9}}, nil)
	if err := l.Append(rogue, 2); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := Replay(path, func(*types.Block, uint64) error { return nil }); err == nil {
		t.Fatal("broken parent chain not detected")
	}
}

func TestReplayDetectsCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "chain.ledger")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range buildChain(3) {
		if err := l.Append(b, uint64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Truncate mid-record.
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, info.Size()-7); err != nil {
		t.Fatal(err)
	}
	if err := Replay(path, func(*types.Block, uint64) error { return nil }); err == nil {
		t.Fatal("corruption not detected")
	}
}

func TestBufferedLedgerSync(t *testing.T) {
	path := filepath.Join(t.TempDir(), "chain.ledger")
	l, err := OpenBuffered(path)
	if err != nil {
		t.Fatal(err)
	}
	blocks := buildChain(1)
	if err := l.Append(blocks[0], 1); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	count := 0
	if err := Replay(path, func(*types.Block, uint64) error { count++; return nil }); err != nil {
		t.Fatal(err)
	}
	if count != 1 {
		t.Fatalf("synced record not visible: %d", count)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if err := l.Append(blocks[0], 2); err == nil {
		t.Fatal("append after close accepted")
	}
}

func TestReplayMissingFile(t *testing.T) {
	err := Replay(filepath.Join(t.TempDir(), "absent"), func(*types.Block, uint64) error { return nil })
	if err == nil {
		t.Fatal("missing file not reported")
	}
}

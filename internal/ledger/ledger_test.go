package ledger

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"github.com/bamboo-bft/bamboo/internal/safety"
	"github.com/bamboo-bft/bamboo/internal/types"
)

// buildChain creates n linked blocks starting from genesis.
func buildChain(n int) []*types.Block {
	parentQC := types.GenesisQC()
	out := make([]*types.Block, 0, n)
	for v := types.View(1); v <= types.View(n); v++ {
		b := safety.BuildBlock(1, v, parentQC, []types.Transaction{
			{ID: types.TxID{Client: 1, Seq: uint64(v)}, Command: []byte("cmd")},
		})
		out = append(out, b)
		parentQC = &types.QC{View: v, BlockID: b.ID()}
	}
	return out
}

func TestAppendAndReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "chain.ledger")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	blocks := buildChain(5)
	for i, b := range blocks {
		if err := l.Append(b, uint64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	if l.Height() != 5 {
		t.Fatalf("height = %d", l.Height())
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	var replayed []*types.Block
	err = Replay(path, func(b *types.Block, h uint64) error {
		replayed = append(replayed, b)
		if h != uint64(len(replayed)) {
			t.Fatalf("height %d out of order", h)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(replayed) != 5 {
		t.Fatalf("replayed %d blocks", len(replayed))
	}
	for i, b := range replayed {
		if b.View != blocks[i].View || len(b.Payload) != 1 {
			t.Fatalf("block %d mangled: %+v", i, b)
		}
	}
}

func TestAppendRejectsGaps(t *testing.T) {
	path := filepath.Join(t.TempDir(), "chain.ledger")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = l.Close() }()
	blocks := buildChain(3)
	if err := l.Append(blocks[0], 1); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(blocks[2], 3); err == nil {
		t.Fatal("height gap accepted")
	}
	if err := l.Append(blocks[0], 1); err == nil {
		t.Fatal("repeat height accepted")
	}
}

func TestResumeFromExisting(t *testing.T) {
	path := filepath.Join(t.TempDir(), "chain.ledger")
	blocks := buildChain(4)
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := l.Append(blocks[i], uint64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen: the ledger resumes at height 2 and accepts 3 next.
	l2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if l2.Height() != 2 {
		t.Fatalf("resumed height = %d, want 2", l2.Height())
	}
	if err := l2.Append(blocks[2], 3); err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	count := 0
	if err := Replay(path, func(*types.Block, uint64) error { count++; return nil }); err != nil {
		t.Fatal(err)
	}
	if count != 3 {
		t.Fatalf("replayed %d, want 3", count)
	}
}

func TestReplayDetectsBrokenChain(t *testing.T) {
	path := filepath.Join(t.TempDir(), "chain.ledger")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	blocks := buildChain(2)
	if err := l.Append(blocks[0], 1); err != nil {
		t.Fatal(err)
	}
	// Forge a block whose parent link does not match.
	rogue := safety.BuildBlock(2, 9, &types.QC{View: 8, BlockID: types.Hash{9}}, nil)
	if err := l.Append(rogue, 2); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := Replay(path, func(*types.Block, uint64) error { return nil }); err == nil {
		t.Fatal("broken parent chain not detected")
	}
	// Reopening must refuse too: a parent-broken ledger would
	// otherwise be served to catch-up peers, who burn a batch
	// verification each before rejecting it.
	if _, err := Open(path); err == nil {
		t.Fatal("broken parent chain not detected on reopen")
	}
}

// TestTruncatedTailRecovery: a final record cut off mid-write (the
// crash-mid-append footprint) must not poison the file. Replay stops
// cleanly at the last intact record, reopening truncates the damaged
// tail, and both appends and ranged reads continue from there.
func TestTruncatedTailRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "chain.ledger")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	blocks := buildChain(4)
	for i := 0; i < 3; i++ {
		if err := l.Append(blocks[i], uint64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the tail mid-record.
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, info.Size()-7); err != nil {
		t.Fatal(err)
	}
	// Replay stops cleanly at the last intact record: two blocks, no
	// error.
	var replayed int
	if err := Replay(path, func(*types.Block, uint64) error { replayed++; return nil }); err != nil {
		t.Fatalf("truncated tail reported as corruption: %v", err)
	}
	if replayed != 2 {
		t.Fatalf("replayed %d intact records, want 2", replayed)
	}
	// Reopen: the torn tail is cut, height resumes at 2, and the next
	// append lands at 3.
	l2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if l2.Height() != 2 {
		t.Fatalf("recovered height = %d, want 2", l2.Height())
	}
	if err := l2.Append(blocks[2], 3); err != nil {
		t.Fatal(err)
	}
	// The ranged read path also stops at intact records only.
	got, err := l2.ReadRange(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[2].ID() != blocks[2].ID() {
		t.Fatalf("post-recovery range wrong: %d blocks", len(got))
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestReplayDetectsCorruption: structural damage that is NOT a torn
// tail — a length prefix rewritten to an implausible size in the
// middle of the file — must still fail loudly, for Replay and Open
// both.
func TestReplayDetectsCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "chain.ledger")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range buildChain(3) {
		if err := l.Append(b, uint64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Stomp the first record's length prefix with a varint decoding
	// far past any plausible record size.
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f}, 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := Replay(path, func(*types.Block, uint64) error { return nil }); err == nil {
		t.Fatal("corruption not detected by replay")
	}
	if _, err := Open(path); err == nil {
		t.Fatal("corruption not detected on reopen")
	}
}

// TestReadRangeBoundaries covers the ranged read path's edges: empty
// and inverted ranges, ranges starting past the head, clamping of the
// far end, and a range spanning a close/reopen (the height index is
// rebuilt from the file).
func TestReadRangeBoundaries(t *testing.T) {
	path := filepath.Join(t.TempDir(), "chain.ledger")
	blocks := buildChain(10)
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := l.Append(blocks[i], uint64(i+1)); err != nil {
			t.Fatal(err)
		}
	}

	if _, err := l.ReadRange(0, 3); err == nil {
		t.Fatal("height zero accepted")
	}
	if _, err := l.ReadRange(4, 2); !errors.Is(err, ErrEmptyRange) {
		t.Fatalf("inverted range: %v", err)
	}
	if _, err := l.ReadRange(6, 9); !errors.Is(err, ErrPastHead) {
		t.Fatalf("range past head: %v", err)
	}
	// A far end beyond the head clamps to it.
	got, err := l.ReadRange(3, 99)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0].ID() != blocks[2].ID() || got[2].ID() != blocks[4].ID() {
		t.Fatalf("clamped range wrong: %d blocks", len(got))
	}
	for _, b := range got {
		if b.QC == nil {
			t.Fatal("range lost its certificate")
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen and extend; a range spanning both sessions reads through.
	l2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = l2.Close() }()
	for i := 5; i < 10; i++ {
		if err := l2.Append(blocks[i], uint64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	got, err = l2.ReadRange(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("cross-session range has %d blocks, want 5", len(got))
	}
	for i, b := range got {
		if b.ID() != blocks[3+i].ID() {
			t.Fatalf("cross-session range block %d mangled", i)
		}
	}
}

// TestReadRangeSeesBufferedAppends: a buffered ledger must flush
// before a ranged read, so a serving replica never hides its freshest
// committed blocks from a catch-up peer.
func TestReadRangeSeesBufferedAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "chain.ledger")
	l, err := OpenBuffered(path)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = l.Close() }()
	blocks := buildChain(3)
	for i, b := range blocks {
		if err := l.Append(b, uint64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	got, err := l.ReadRange(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("buffered appends invisible to range read: %d blocks", len(got))
	}
}

func TestBufferedLedgerSync(t *testing.T) {
	path := filepath.Join(t.TempDir(), "chain.ledger")
	l, err := OpenBuffered(path)
	if err != nil {
		t.Fatal(err)
	}
	blocks := buildChain(1)
	if err := l.Append(blocks[0], 1); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	count := 0
	if err := Replay(path, func(*types.Block, uint64) error { count++; return nil }); err != nil {
		t.Fatal(err)
	}
	if count != 1 {
		t.Fatalf("synced record not visible: %d", count)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if err := l.Append(blocks[0], 2); err == nil {
		t.Fatal("append after close accepted")
	}
}

func TestReplayMissingFile(t *testing.T) {
	err := Replay(filepath.Join(t.TempDir(), "absent"), func(*types.Block, uint64) error { return nil })
	if err == nil {
		t.Fatal("missing file not reported")
	}
}

// Package fasthotstuff implements Fast-HotStuff, one of the additional
// protocols the paper reports building on Bamboo (Section I). It
// commits with a two-chain of consecutive views like 2CHS but regains
// optimistic responsiveness: a proposal made after a view change must
// carry a timeout certificate whose aggregated high-QCs prove the
// leader extends the freshest certified block any quorum member knew,
// so honest replicas can vote without waiting a maximum network delay.
package fasthotstuff

import (
	"github.com/bamboo-bft/bamboo/internal/safety"
	"github.com/bamboo-bft/bamboo/internal/types"
)

// FastHotStuff holds hQC, the one-chain lock, and lvView.
type FastHotStuff struct {
	env       safety.Env
	highQC    *types.QC
	preferred types.View
	lastVoted types.View
}

// New constructs the protocol for one replica.
func New(env safety.Env) safety.Rules {
	return &FastHotStuff{env: env, highQC: types.GenesisQC()}
}

// Propose builds on the highest QC.
func (f *FastHotStuff) Propose(view types.View, payload []types.Transaction) *types.Block {
	return safety.BuildBlock(f.env.Self, view, f.highQC, payload)
}

// VoteRule: in the happy path the proposal must directly extend the
// previous view's certified block (no gaps). After a view change the
// proposal must be justified by a TC and extend a block at least as
// fresh as the TC's aggregated high-QC.
func (f *FastHotStuff) VoteRule(b *types.Block, tc *types.TC) bool {
	if b.View <= f.lastVoted || b.QC == nil {
		return false
	}
	if tc != nil {
		if tc.View+1 != b.View {
			return false
		}
		if tc.HighQC != nil && b.QC.View < tc.HighQC.View {
			return false
		}
	} else if b.QC.View+1 != b.View {
		return false
	}
	f.lastVoted = b.View
	return true
}

// UpdateState adopts a fresher hQC and locks on the certified block.
func (f *FastHotStuff) UpdateState(qc *types.QC) {
	if qc.View <= f.highQC.View {
		return
	}
	f.highQC = qc
	if qc.View > f.preferred {
		f.preferred = qc.View
	}
}

// CommitRule is the two-chain rule with consecutive views.
func (f *FastHotStuff) CommitRule(qc *types.QC) *types.Block {
	b, ok := f.env.Forest.Block(qc.BlockID)
	if !ok {
		return nil
	}
	parent, ok := f.env.Forest.Parent(b.ID())
	if !ok {
		return nil
	}
	if parent.View+1 == qc.View {
		return parent
	}
	return nil
}

// HighQC implements safety.Rules.
func (f *FastHotStuff) HighQC() *types.QC { return f.highQC }

// DurableState implements safety.Rules.
func (f *FastHotStuff) DurableState() safety.DurableState {
	return safety.DurableState{LastVoted: f.lastVoted, Preferred: f.preferred, HighQC: f.highQC}
}

// Restore implements safety.Rules (monotone merge; see hotstuff).
func (f *FastHotStuff) Restore(s safety.DurableState) {
	if s.LastVoted > f.lastVoted {
		f.lastVoted = s.LastVoted
	}
	if s.Preferred > f.preferred {
		f.preferred = s.Preferred
	}
	if s.HighQC != nil && s.HighQC.View > f.highQC.View {
		f.highQC = s.HighQC.Clone()
	}
}

// Policy: responsive thanks to the aggregated-QC justification.
func (f *FastHotStuff) Policy() safety.Policy {
	return safety.Policy{ResponsiveDefault: true}
}

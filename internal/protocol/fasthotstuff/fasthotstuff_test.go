package fasthotstuff

import (
	"testing"

	"github.com/bamboo-bft/bamboo/internal/forest"
	"github.com/bamboo-bft/bamboo/internal/safety"
	"github.com/bamboo-bft/bamboo/internal/types"
)

func fixture(t *testing.T, n int) (*FastHotStuff, *forest.Forest, []*types.Block) {
	t.Helper()
	f := forest.New(8)
	fhs, ok := New(safety.Env{Forest: f, Self: 1, N: 4}).(*FastHotStuff)
	if !ok {
		t.Fatal("New did not return *FastHotStuff")
	}
	parentQC := types.GenesisQC()
	blocks := make([]*types.Block, 0, n)
	for v := types.View(1); v <= types.View(n); v++ {
		b := safety.BuildBlock(2, v, parentQC, nil)
		if _, err := f.Add(b); err != nil {
			t.Fatal(err)
		}
		qc := &types.QC{View: v, BlockID: b.ID()}
		f.Certify(qc)
		fhs.UpdateState(qc)
		blocks = append(blocks, b)
		parentQC = qc
	}
	return fhs, f, blocks
}

func TestHappyPathRequiresDirectExtension(t *testing.T) {
	fhs, _, blocks := fixture(t, 2)
	// Direct extension of the previous view: accepted.
	qc2 := &types.QC{View: 2, BlockID: blocks[1].ID()}
	good := safety.BuildBlock(2, 3, qc2, nil)
	if !fhs.VoteRule(good, nil) {
		t.Fatal("direct extension rejected")
	}
	// A gap without TC justification: refused (this is what makes
	// Fast-HotStuff's two-chain commit safe under responsiveness).
	gap := safety.BuildBlock(2, 9, qc2, nil)
	if fhs.VoteRule(gap, nil) {
		t.Fatal("gap proposal accepted without a TC")
	}
}

func TestTCJustifiedGap(t *testing.T) {
	fhs, _, blocks := fixture(t, 2)
	qc2 := &types.QC{View: 2, BlockID: blocks[1].ID()}
	tc := &types.TC{View: 3, HighQC: qc2}
	// TC for view 3 justifies a view-4 proposal extending qc2 (the
	// freshest certificate any quorum member reported).
	b4 := safety.BuildBlock(2, 4, qc2, nil)
	if !fhs.VoteRule(b4, tc) {
		t.Fatal("TC-justified proposal rejected")
	}
	// Wrong view relative to the TC: refused.
	fhs2, _, blocks2 := fixture(t, 2)
	qc2b := &types.QC{View: 2, BlockID: blocks2[1].ID()}
	b5 := safety.BuildBlock(2, 5, qc2b, nil)
	if fhs2.VoteRule(b5, &types.TC{View: 3, HighQC: qc2b}) {
		t.Fatal("TC view mismatch accepted")
	}
	// Extending something older than the TC's high QC: refused.
	fhs3, _, blocks3 := fixture(t, 2)
	qc1 := &types.QC{View: 1, BlockID: blocks3[0].ID()}
	qc2c := &types.QC{View: 2, BlockID: blocks3[1].ID()}
	stale := safety.BuildBlock(2, 4, qc1, nil)
	if fhs3.VoteRule(stale, &types.TC{View: 3, HighQC: qc2c}) {
		t.Fatal("proposal below the TC's high QC accepted")
	}
}

func TestCommitTwoChain(t *testing.T) {
	fhs, _, blocks := fixture(t, 2)
	qc2 := &types.QC{View: 2, BlockID: blocks[1].ID()}
	got := fhs.CommitRule(qc2)
	if got == nil || got.ID() != blocks[0].ID() {
		t.Fatalf("two-chain commit = %v, want view-1 block", got)
	}
	// Gap: no commit.
	fhs2, f2, blocks2 := fixture(t, 2)
	qc2b := &types.QC{View: 2, BlockID: blocks2[1].ID()}
	b5 := safety.BuildBlock(2, 5, qc2b, nil)
	if _, err := f2.Add(b5); err != nil {
		t.Fatal(err)
	}
	qc5 := &types.QC{View: 5, BlockID: b5.ID()}
	f2.Certify(qc5)
	if got := fhs2.CommitRule(qc5); got != nil {
		t.Fatalf("gap committed %v", got)
	}
}

func TestVoteMonotonicAndState(t *testing.T) {
	fhs, _, blocks := fixture(t, 2)
	qc2 := &types.QC{View: 2, BlockID: blocks[1].ID()}
	if !fhs.VoteRule(safety.BuildBlock(2, 3, qc2, nil), nil) {
		t.Fatal("valid vote rejected")
	}
	if fhs.VoteRule(safety.BuildBlock(3, 3, qc2, nil), nil) {
		t.Fatal("double vote")
	}
	fhs.UpdateState(&types.QC{View: 1, BlockID: blocks[0].ID()})
	if fhs.HighQC().View != 2 {
		t.Fatal("stale QC regressed highQC")
	}
	if fhs.VoteRule(&types.Block{View: 9}, nil) {
		t.Fatal("vote without certificate")
	}
}

func TestPolicyResponsive(t *testing.T) {
	fhs, _, _ := fixture(t, 1)
	if !fhs.Policy().ResponsiveDefault {
		t.Fatal("Fast-HotStuff must be responsive")
	}
}

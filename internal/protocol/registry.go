// Package protocol maps protocol names from the run configuration to
// their safety.Rules factories — the registry developers extend when
// prototyping a new chained-BFT protocol on Bamboo.
package protocol

import (
	"fmt"
	"sort"
	"sync"

	"github.com/bamboo-bft/bamboo/internal/config"
	"github.com/bamboo-bft/bamboo/internal/protocol/fasthotstuff"
	"github.com/bamboo-bft/bamboo/internal/protocol/hotstuff"
	"github.com/bamboo-bft/bamboo/internal/protocol/ohs"
	"github.com/bamboo-bft/bamboo/internal/protocol/streamlet"
	"github.com/bamboo-bft/bamboo/internal/protocol/twochain"
	"github.com/bamboo-bft/bamboo/internal/safety"
)

var (
	registryMu sync.RWMutex
	registry   = map[string]safety.Factory{
		config.ProtocolHotStuff:     hotstuff.New,
		config.ProtocolTwoChainHS:   twochain.New,
		config.ProtocolStreamlet:    streamlet.New,
		config.ProtocolFastHotStuff: fasthotstuff.New,
		config.ProtocolOHS:          ohs.New,
	}
)

// Factory resolves a protocol name (a config.Protocol* constant or a
// name added with Register) to its constructor.
func Factory(name string) (safety.Factory, error) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	f, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("protocol: unknown protocol %q", name)
	}
	return f, nil
}

// Register adds a custom protocol so clusters can be configured with
// its name — the prototyping entry point Bamboo exists for. Built-in
// names cannot be overridden.
func Register(name string, factory safety.Factory) error {
	if name == "" || factory == nil {
		return fmt.Errorf("protocol: invalid registration for %q", name)
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		return fmt.Errorf("protocol: %q already registered", name)
	}
	registry[name] = factory
	return nil
}

// Names lists every registered protocol, sorted.
func Names() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Package twochain implements two-chain HotStuff (2CHS, Section II-C):
// identical to HotStuff except that the lock sits on the head of the
// highest one-chain (the newly certified block itself) and commitment
// needs only a two-chain of consecutive views. It trades one round of
// latency for the loss of optimistic responsiveness, the trade-off the
// paper's responsiveness experiment (Figure 15) exposes.
package twochain

import (
	"github.com/bamboo-bft/bamboo/internal/safety"
	"github.com/bamboo-bft/bamboo/internal/types"
)

// TwoChain holds hQC, the one-chain lock (preferred view), and lvView.
type TwoChain struct {
	env       safety.Env
	highQC    *types.QC
	preferred types.View
	lastVoted types.View
}

// New constructs the protocol for one replica.
func New(env safety.Env) safety.Rules {
	return &TwoChain{env: env, highQC: types.GenesisQC()}
}

// Propose implements the Proposing rule (same as HotStuff): build on
// the highest QC.
func (t *TwoChain) Propose(view types.View, payload []types.Transaction) *types.Block {
	return safety.BuildBlock(t.env.Self, view, t.highQC, payload)
}

// VoteRule is HotStuff's voting rule against the one-chain lock: the
// proposal's parent (certified by b.QC) must carry a view at least as
// high as the locked view.
func (t *TwoChain) VoteRule(b *types.Block, _ *types.TC) bool {
	if b.View <= t.lastVoted {
		return false
	}
	if b.QC == nil || b.QC.View < t.preferred {
		return false
	}
	t.lastVoted = b.View
	return true
}

// UpdateState adopts a fresher hQC and locks on the newly certified
// block itself — the head of the highest one-chain.
func (t *TwoChain) UpdateState(qc *types.QC) {
	if qc.View <= t.highQC.View {
		return
	}
	t.highQC = qc
	if qc.View > t.preferred {
		t.preferred = qc.View
	}
}

// CommitRule implements the two-chain commit rule: certifying a block
// at view v commits its parent when the parent sits at view v−1.
func (t *TwoChain) CommitRule(qc *types.QC) *types.Block {
	b, ok := t.env.Forest.Block(qc.BlockID)
	if !ok {
		return nil
	}
	parent, ok := t.env.Forest.Parent(b.ID())
	if !ok {
		return nil
	}
	if parent.View+1 == qc.View {
		return parent
	}
	return nil
}

// HighQC implements safety.Rules.
func (t *TwoChain) HighQC() *types.QC { return t.highQC }

// DurableState implements safety.Rules.
func (t *TwoChain) DurableState() safety.DurableState {
	return safety.DurableState{LastVoted: t.lastVoted, Preferred: t.preferred, HighQC: t.highQC}
}

// Restore implements safety.Rules (monotone merge; see hotstuff).
func (t *TwoChain) Restore(s safety.DurableState) {
	if s.LastVoted > t.lastVoted {
		t.lastVoted = s.LastVoted
	}
	if s.Preferred > t.preferred {
		t.preferred = s.Preferred
	}
	if s.HighQC != nil && s.HighQC.View > t.highQC.View {
		t.highQC = s.HighQC.Clone()
	}
}

// Policy implements safety.Rules: 2CHS is not responsive — after a
// view change the leader must wait the maximal network delay, because
// replicas are locked on a one-chain the leader may not have seen.
func (t *TwoChain) Policy() safety.Policy {
	return safety.Policy{ResponsiveDefault: false}
}

package twochain

import (
	"testing"

	"github.com/bamboo-bft/bamboo/internal/forest"
	"github.com/bamboo-bft/bamboo/internal/safety"
	"github.com/bamboo-bft/bamboo/internal/types"
)

func fixture(t *testing.T, n int) (*TwoChain, *forest.Forest, []*types.Block) {
	t.Helper()
	f := forest.New(8)
	tc, ok := New(safety.Env{Forest: f, Self: 1, N: 4}).(*TwoChain)
	if !ok {
		t.Fatal("New did not return *TwoChain")
	}
	parentQC := types.GenesisQC()
	blocks := make([]*types.Block, 0, n)
	for v := types.View(1); v <= types.View(n); v++ {
		b := safety.BuildBlock(2, v, parentQC, nil)
		if _, err := f.Add(b); err != nil {
			t.Fatal(err)
		}
		qc := &types.QC{View: v, BlockID: b.ID()}
		f.Certify(qc)
		tc.UpdateState(qc)
		blocks = append(blocks, b)
		parentQC = qc
	}
	return tc, f, blocks
}

func TestCommitRuleTwoChain(t *testing.T) {
	tc, _, blocks := fixture(t, 2)
	// Certifying view 2 commits its parent (view 1): one round
	// earlier than HotStuff — the protocol's whole selling point.
	qc2 := &types.QC{View: 2, BlockID: blocks[1].ID()}
	got := tc.CommitRule(qc2)
	if got == nil || got.ID() != blocks[0].ID() {
		t.Fatalf("two-chain commit = %v, want view-1 block", got)
	}
}

func TestCommitRuleRejectsGap(t *testing.T) {
	tc, f, blocks := fixture(t, 2)
	qc2 := &types.QC{View: 2, BlockID: blocks[1].ID()}
	b5 := safety.BuildBlock(2, 5, qc2, nil)
	if _, err := f.Add(b5); err != nil {
		t.Fatal(err)
	}
	qc5 := &types.QC{View: 5, BlockID: b5.ID()}
	f.Certify(qc5)
	tc.UpdateState(qc5)
	if got := tc.CommitRule(qc5); got != nil {
		t.Fatalf("gap chain committed %v", got)
	}
}

// TestLockIsOneChainHead pins the paper's distinction: 2CHS locks on
// the certified block itself (preferred = qc.View), not its parent as
// HotStuff does.
func TestLockIsOneChainHead(t *testing.T) {
	tc, _, blocks := fixture(t, 3)
	if tc.preferred != 3 {
		t.Fatalf("preferred = %d, want 3 (the one-chain head)", tc.preferred)
	}
	// A proposal extending view 2 violates the lock...
	b := safety.BuildBlock(2, 4, &types.QC{View: 2, BlockID: blocks[1].ID()}, nil)
	if tc.VoteRule(b, nil) {
		t.Fatal("vote below one-chain lock accepted")
	}
	// ...extending view 3 satisfies it.
	b2 := safety.BuildBlock(2, 4, &types.QC{View: 3, BlockID: blocks[2].ID()}, nil)
	if !tc.VoteRule(b2, nil) {
		t.Fatal("vote at lock rejected")
	}
}

func TestVoteMonotonic(t *testing.T) {
	tc, _, blocks := fixture(t, 1)
	qc1 := &types.QC{View: 1, BlockID: blocks[0].ID()}
	b2 := safety.BuildBlock(2, 2, qc1, nil)
	if !tc.VoteRule(b2, nil) {
		t.Fatal("valid vote rejected")
	}
	if tc.VoteRule(safety.BuildBlock(3, 2, qc1, nil), nil) {
		t.Fatal("double vote in one view")
	}
	if tc.VoteRule(&types.Block{View: 9}, nil) {
		t.Fatal("vote without certificate")
	}
}

func TestUpdateStateMonotonic(t *testing.T) {
	tc, _, blocks := fixture(t, 3)
	tc.UpdateState(&types.QC{View: 1, BlockID: blocks[0].ID()})
	if tc.HighQC().View != 3 || tc.preferred != 3 {
		t.Fatalf("stale QC regressed state: high=%d pref=%d", tc.HighQC().View, tc.preferred)
	}
}

func TestPolicyNotResponsive(t *testing.T) {
	tc, _, _ := fixture(t, 1)
	if tc.Policy().ResponsiveDefault {
		t.Fatal("2CHS must not be responsive by default")
	}
}

package ohs

import (
	"testing"

	"github.com/bamboo-bft/bamboo/internal/forest"
	"github.com/bamboo-bft/bamboo/internal/safety"
	"github.com/bamboo-bft/bamboo/internal/types"
)

func newOHS(t *testing.T) safety.Rules {
	t.Helper()
	return New(safety.Env{Forest: forest.New(8), Self: 1, N: 4})
}

// TestDelegatesToHotStuff: OHS is chained HotStuff plus a client-path
// policy; the consensus rules must behave identically.
func TestDelegatesToHotStuff(t *testing.T) {
	o := newOHS(t)
	b := o.Propose(1, nil)
	if b == nil || b.QC.View != 0 || b.Parent != types.Genesis().ID() {
		t.Fatalf("proposal = %+v", b)
	}
	if !o.VoteRule(b, nil) {
		t.Fatal("genesis extension rejected")
	}
	if o.VoteRule(b, nil) {
		t.Fatal("double vote accepted")
	}
	if o.HighQC().View != 0 {
		t.Fatal("initial highQC must be genesis")
	}
	o.UpdateState(&types.QC{View: 5, BlockID: types.Hash{5}})
	if o.HighQC().View != 5 {
		t.Fatal("UpdateState not delegated")
	}
	if o.CommitRule(types.GenesisQC()) != nil {
		t.Fatal("commit at genesis")
	}
}

// TestPolicyLightweightPool pins the baseline's differentiator.
func TestPolicyLightweightPool(t *testing.T) {
	p := newOHS(t).Policy()
	if !p.LightweightPool {
		t.Fatal("OHS must use the lightweight client path")
	}
	if !p.ResponsiveDefault {
		t.Fatal("OHS inherits HotStuff's responsiveness")
	}
	if p.BroadcastVote || p.EchoMessages {
		t.Fatalf("unexpected policy bits: %+v", p)
	}
}

// Package ohs is the baseline stand-in for the original C++ HotStuff
// implementation (libhotstuff) that Figure 9 of the paper compares
// against. The consensus rules are chained HotStuff, identical to
// internal/protocol/hotstuff; what differs is the client path: OHS
// accepts requests over raw TCP with no REST layer and uses a leaner
// batching pipeline, which the paper credits for its slight edge. Here
// that is modelled by the LightweightPool policy — the engine skips
// mempool duplicate tracking and its hashing overhead for this
// protocol. See DESIGN.md §2 for the substitution rationale.
package ohs

import (
	"github.com/bamboo-bft/bamboo/internal/protocol/hotstuff"
	"github.com/bamboo-bft/bamboo/internal/safety"
	"github.com/bamboo-bft/bamboo/internal/types"
)

// OHS wraps the chained-HotStuff rules with the lightweight client
// path policy.
type OHS struct {
	inner safety.Rules
}

// New constructs the baseline for one replica.
func New(env safety.Env) safety.Rules {
	return &OHS{inner: hotstuff.New(env)}
}

// Propose implements safety.Rules.
func (o *OHS) Propose(view types.View, payload []types.Transaction) *types.Block {
	return o.inner.Propose(view, payload)
}

// VoteRule implements safety.Rules.
func (o *OHS) VoteRule(b *types.Block, tc *types.TC) bool { return o.inner.VoteRule(b, tc) }

// UpdateState implements safety.Rules.
func (o *OHS) UpdateState(qc *types.QC) { o.inner.UpdateState(qc) }

// CommitRule implements safety.Rules.
func (o *OHS) CommitRule(qc *types.QC) *types.Block { return o.inner.CommitRule(qc) }

// HighQC implements safety.Rules.
func (o *OHS) HighQC() *types.QC { return o.inner.HighQC() }

// DurableState implements safety.Rules.
func (o *OHS) DurableState() safety.DurableState { return o.inner.DurableState() }

// Restore implements safety.Rules.
func (o *OHS) Restore(s safety.DurableState) { o.inner.Restore(s) }

// Policy implements safety.Rules.
func (o *OHS) Policy() safety.Policy {
	p := o.inner.Policy()
	p.LightweightPool = true
	return p
}

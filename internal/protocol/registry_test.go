package protocol

import (
	"testing"

	"github.com/bamboo-bft/bamboo/internal/config"
	"github.com/bamboo-bft/bamboo/internal/forest"
	"github.com/bamboo-bft/bamboo/internal/safety"
	"github.com/bamboo-bft/bamboo/internal/types"
)

func TestFactoryBuiltins(t *testing.T) {
	for _, name := range []string{
		config.ProtocolHotStuff, config.ProtocolTwoChainHS,
		config.ProtocolStreamlet, config.ProtocolFastHotStuff, config.ProtocolOHS,
	} {
		f, err := Factory(name)
		if err != nil {
			t.Fatalf("Factory(%s): %v", name, err)
		}
		rules := f(safety.Env{Forest: forest.New(8), Self: 1, N: 4})
		if rules == nil {
			t.Fatalf("%s: nil rules", name)
		}
		// Every built-in must answer the interface without panics.
		_ = rules.HighQC()
		_ = rules.Policy()
	}
}

func TestFactoryUnknown(t *testing.T) {
	if _, err := Factory("pbft"); err == nil {
		t.Fatal("unknown protocol accepted")
	}
}

type stubRules struct{ safety.Rules }

func stubFactory(safety.Env) safety.Rules { return stubRules{} }

func TestRegisterAndList(t *testing.T) {
	if err := Register("stub-proto", stubFactory); err != nil {
		t.Fatal(err)
	}
	if _, err := Factory("stub-proto"); err != nil {
		t.Fatal(err)
	}
	if err := Register("stub-proto", stubFactory); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	if err := Register("", stubFactory); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := Register("nil-factory", nil); err == nil {
		t.Fatal("nil factory accepted")
	}
	if err := Register(config.ProtocolHotStuff, stubFactory); err == nil {
		t.Fatal("built-in override accepted")
	}
	found := false
	names := Names()
	for i := 1; i < len(names); i++ {
		if names[i] < names[i-1] {
			t.Fatal("Names not sorted")
		}
	}
	for _, n := range names {
		if n == "stub-proto" {
			found = true
		}
	}
	if !found {
		t.Fatal("registered name missing from Names")
	}
}

// Guard against accidental interface breakage: the stub embeds the
// interface, so calling through it panics — prove the registry only
// stores and returns, never invokes.
func TestRegistryDoesNotInvokeFactories(t *testing.T) {
	f, err := Factory("stub-proto")
	if err != nil {
		t.Skip("stub not registered in this run order")
	}
	_ = f // resolving must not call the factory
	_ = types.View(0)
}

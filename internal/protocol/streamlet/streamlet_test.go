package streamlet

import (
	"testing"

	"github.com/bamboo-bft/bamboo/internal/forest"
	"github.com/bamboo-bft/bamboo/internal/safety"
	"github.com/bamboo-bft/bamboo/internal/types"
)

func fixture(t *testing.T, n int) (*Streamlet, *forest.Forest, []*types.Block) {
	t.Helper()
	f := forest.New(8)
	sl, ok := New(safety.Env{Forest: f, Self: 1, N: 4}).(*Streamlet)
	if !ok {
		t.Fatal("New did not return *Streamlet")
	}
	parentQC := types.GenesisQC()
	blocks := make([]*types.Block, 0, n)
	for v := types.View(1); v <= types.View(n); v++ {
		b := safety.BuildBlock(2, v, parentQC, nil)
		if _, err := f.Add(b); err != nil {
			t.Fatal(err)
		}
		qc := &types.QC{View: v, BlockID: b.ID()}
		f.Certify(qc)
		sl.UpdateState(qc)
		blocks = append(blocks, b)
		parentQC = qc
	}
	return sl, f, blocks
}

func TestProposeOnLongestNotarized(t *testing.T) {
	sl, _, blocks := fixture(t, 3)
	b := sl.Propose(4, nil)
	if b.Parent != blocks[2].ID() {
		t.Fatalf("proposal extends %s, want the notarized tip", b.Parent)
	}
	if sl.HighQC().BlockID != blocks[2].ID() {
		t.Fatal("HighQC must certify the notarized tip")
	}
}

func TestVoteOnlyOnLongestNotarized(t *testing.T) {
	sl, f, blocks := fixture(t, 3)
	// Extending the tip: accepted.
	tipQC := &types.QC{View: 3, BlockID: blocks[2].ID()}
	good := safety.BuildBlock(2, 4, tipQC, nil)
	if _, err := f.Add(good); err != nil {
		t.Fatal(err)
	}
	if !sl.VoteRule(good, nil) {
		t.Fatal("vote on longest notarized chain rejected")
	}
	// Extending a shorter notarized chain (a forking attacker's
	// proposal): refused — this is Streamlet's forking immunity.
	shortQC := &types.QC{View: 1, BlockID: blocks[0].ID()}
	fork := safety.BuildBlock(2, 5, shortQC, nil)
	if _, err := f.Add(fork); err != nil {
		t.Fatal(err)
	}
	if sl.VoteRule(fork, nil) {
		t.Fatal("voted for a fork off a shorter notarized chain")
	}
}

func TestVoteFirstProposalPerView(t *testing.T) {
	sl, f, blocks := fixture(t, 1)
	qc1 := &types.QC{View: 1, BlockID: blocks[0].ID()}
	a := safety.BuildBlock(2, 2, qc1, nil)
	if _, err := f.Add(a); err != nil {
		t.Fatal(err)
	}
	if !sl.VoteRule(a, nil) {
		t.Fatal("first proposal rejected")
	}
	// A second (equivocating) proposal for the same view: refused.
	b := safety.BuildBlock(2, 2, qc1, []types.Transaction{{ID: types.TxID{Client: 9, Seq: 9}}})
	if _, err := f.Add(b); err != nil {
		t.Fatal(err)
	}
	if sl.VoteRule(b, nil) {
		t.Fatal("voted twice in one view")
	}
}

func TestCommitThreeConsecutiveNotarized(t *testing.T) {
	sl, _, blocks := fixture(t, 3)
	// Views 1,2,3 all notarized: the middle block (view 2) commits —
	// "the first two blocks out of the three" commit and committing
	// the second carries the first as its prefix.
	qc3 := &types.QC{View: 3, BlockID: blocks[2].ID()}
	got := sl.CommitRule(qc3)
	if got == nil || got.ID() != blocks[1].ID() {
		t.Fatalf("commit = %v, want the view-2 block", got)
	}
}

func TestCommitNeedsConsecutiveViews(t *testing.T) {
	sl, f, blocks := fixture(t, 2)
	// Notarize view 5 on top of view 2: 1,2,5 not consecutive.
	qc2 := &types.QC{View: 2, BlockID: blocks[1].ID()}
	b5 := safety.BuildBlock(2, 5, qc2, nil)
	if _, err := f.Add(b5); err != nil {
		t.Fatal(err)
	}
	qc5 := &types.QC{View: 5, BlockID: b5.ID()}
	f.Certify(qc5)
	if got := sl.CommitRule(qc5); got != nil {
		t.Fatalf("non-consecutive notarizations committed %v", got)
	}
}

func TestCommitNeedsFullNotarization(t *testing.T) {
	sl, f, blocks := fixture(t, 2)
	// Add a view-3 block but do NOT certify it: no commit on its QC
	// from the protocol's perspective (the forest hasn't notarized it).
	qc2 := &types.QC{View: 2, BlockID: blocks[1].ID()}
	b3 := safety.BuildBlock(2, 3, qc2, nil)
	if _, err := f.Add(b3); err != nil {
		t.Fatal(err)
	}
	if got := sl.CommitRule(&types.QC{View: 3, BlockID: b3.ID()}); got != nil {
		t.Fatalf("committed with unnotarized tail: %v", got)
	}
}

func TestPolicyBroadcastAndEcho(t *testing.T) {
	sl, _, _ := fixture(t, 1)
	p := sl.Policy()
	if !p.BroadcastVote || !p.EchoMessages || p.ResponsiveDefault {
		t.Fatalf("policy = %+v", p)
	}
}

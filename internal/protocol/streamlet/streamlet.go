// Package streamlet implements Streamlet (Section II-D) on the Bamboo
// engine: propose on the longest notarized chain, vote (by broadcast)
// only for the first proposal of a view that extends a longest
// notarized chain, and commit the first two of any three blocks
// notarized in consecutive views. Every first-seen message is echoed,
// giving the O(n³) message complexity the paper measures.
//
// Per the paper's modification, the original synchronized 2∆ clock is
// replaced by the shared pacemaker, so all three protocols ride the
// same view-synchronization machinery.
package streamlet

import (
	"github.com/bamboo-bft/bamboo/internal/safety"
	"github.com/bamboo-bft/bamboo/internal/types"
)

// Streamlet's state is the notarized chain maintained in the block
// forest; the only local variable is the last voted view.
type Streamlet struct {
	env       safety.Env
	lastVoted types.View
}

// New constructs the protocol for one replica.
func New(env safety.Env) safety.Rules {
	return &Streamlet{env: env}
}

// Propose builds on the tip of the longest notarized chain.
func (s *Streamlet) Propose(view types.View, payload []types.Transaction) *types.Block {
	return safety.BuildBlock(s.env.Self, view, s.HighQC(), payload)
}

// VoteRule votes for the first proposal of a view, only if the block
// extends the longest notarized chain this replica has seen.
func (s *Streamlet) VoteRule(b *types.Block, _ *types.TC) bool {
	if b.View <= s.lastVoted {
		return false
	}
	if !s.env.Forest.ExtendsNotarized(b) {
		return false
	}
	s.lastVoted = b.View
	return true
}

// UpdateState is a no-op beyond the forest's own notarization
// bookkeeping: the engine certifies blocks in the forest before
// invoking the rules, and the forest maintains the longest notarized
// chain (the protocol's entire state).
func (s *Streamlet) UpdateState(*types.QC) {}

// CommitRule: when three blocks notarized in consecutive views form a
// chain, the first two (and all their ancestors) commit. Committing
// the middle block commits the first one as part of its prefix.
func (s *Streamlet) CommitRule(qc *types.QC) *types.Block {
	b, ok := s.env.Forest.Block(qc.BlockID)
	if !ok || !s.env.Forest.IsCertified(b.ID()) {
		return nil
	}
	parent, ok := s.env.Forest.Parent(b.ID())
	if !ok || !s.env.Forest.IsCertified(parent.ID()) {
		return nil
	}
	grand, ok := s.env.Forest.Parent(parent.ID())
	if !ok || !s.env.Forest.IsCertified(grand.ID()) {
		return nil
	}
	if grand.View+1 == parent.View && parent.View+1 == b.View {
		return parent
	}
	return nil
}

// HighQC returns the certificate of the longest notarized tip — what
// an honest Streamlet proposal extends.
func (s *Streamlet) HighQC() *types.QC {
	tip := s.env.Forest.LongestNotarizedTip()
	if qc, ok := s.env.Forest.QCOf(tip.ID()); ok {
		return qc
	}
	return types.GenesisQC()
}

// DurableState implements safety.Rules: lvView is Streamlet's only
// local state variable — the notarized chain lives in the forest and
// is rebuilt by ledger replay, so HighQC here is informational.
func (s *Streamlet) DurableState() safety.DurableState {
	return safety.DurableState{LastVoted: s.lastVoted, HighQC: s.HighQC()}
}

// Restore implements safety.Rules: only lvView is local; the forest
// (and hence HighQC) is rebuilt by replay, not by this merge.
func (s *Streamlet) Restore(ds safety.DurableState) {
	if ds.LastVoted > s.lastVoted {
		s.lastVoted = ds.LastVoted
	}
}

// Policy: votes are broadcast, messages echoed, and liveness depends
// on timeouts (no optimistic responsiveness).
func (s *Streamlet) Policy() safety.Policy {
	return safety.Policy{
		BroadcastVote:     true,
		EchoMessages:      true,
		ResponsiveDefault: false,
	}
}

package hotstuff

import (
	"testing"

	"github.com/bamboo-bft/bamboo/internal/forest"
	"github.com/bamboo-bft/bamboo/internal/safety"
	"github.com/bamboo-bft/bamboo/internal/types"
)

// fixture builds a protocol instance over a fresh forest with a chain
// of `n` certified blocks at consecutive views starting at 1.
func fixture(t *testing.T, n int) (*HotStuff, *forest.Forest, []*types.Block) {
	t.Helper()
	f := forest.New(8)
	hs, ok := New(safety.Env{Forest: f, Self: 1, N: 4}).(*HotStuff)
	if !ok {
		t.Fatal("New did not return *HotStuff")
	}
	parent := types.Genesis()
	parentQC := types.GenesisQC()
	blocks := make([]*types.Block, 0, n)
	for v := types.View(1); v <= types.View(n); v++ {
		b := safety.BuildBlock(2, v, parentQC, nil)
		if _, err := f.Add(b); err != nil {
			t.Fatal(err)
		}
		qc := &types.QC{View: v, BlockID: b.ID()}
		f.Certify(qc)
		hs.UpdateState(qc)
		blocks = append(blocks, b)
		parent, parentQC = b, qc
	}
	_ = parent
	return hs, f, blocks
}

func TestProposeExtendsHighQC(t *testing.T) {
	hs, _, blocks := fixture(t, 3)
	b := hs.Propose(4, []types.Transaction{{ID: types.TxID{Client: 1, Seq: 1}}})
	if b == nil {
		t.Fatal("honest proposer must propose")
	}
	if b.Parent != blocks[2].ID() {
		t.Fatalf("proposal extends %s, want the highest certified block", b.Parent)
	}
	if b.QC.View != 3 {
		t.Fatalf("proposal QC view = %d, want 3", b.QC.View)
	}
	if b.View != 4 || b.Proposer != 1 {
		t.Fatalf("proposal header wrong: %+v", b)
	}
}

func TestVoteRuleMonotonicLastVoted(t *testing.T) {
	hs, _, blocks := fixture(t, 3)
	qc3 := &types.QC{View: 3, BlockID: blocks[2].ID()}
	b4 := safety.BuildBlock(2, 4, qc3, nil)
	if !hs.VoteRule(b4, nil) {
		t.Fatal("valid proposal rejected")
	}
	// Same view again: lastVoted forbids a second vote.
	b4dup := safety.BuildBlock(3, 4, qc3, nil)
	if hs.VoteRule(b4dup, nil) {
		t.Fatal("double vote in one view")
	}
	// Lower view after voting higher: refused.
	b3 := safety.BuildBlock(2, 3, &types.QC{View: 2, BlockID: blocks[1].ID()}, nil)
	if hs.VoteRule(b3, nil) {
		t.Fatal("voted for an older view")
	}
}

func TestVoteRuleEnforcesLock(t *testing.T) {
	hs, _, blocks := fixture(t, 4)
	// After certifying view 4, the lock (two-chain head) is view 3's
	// parent... preferred = parent of certified block = view 3.
	// A proposal extending view 2 violates the lock.
	staleQC := &types.QC{View: 2, BlockID: blocks[1].ID()}
	b := safety.BuildBlock(2, 5, staleQC, nil)
	if hs.VoteRule(b, nil) {
		t.Fatal("vote rule accepted a proposal below the lock")
	}
	// Extending the locked view itself is fine (the ≥ disjunct).
	okQC := &types.QC{View: 3, BlockID: blocks[2].ID()}
	b2 := safety.BuildBlock(2, 5, okQC, nil)
	if !hs.VoteRule(b2, nil) {
		t.Fatal("vote rule rejected a proposal meeting the lock")
	}
	if hs.VoteRule(&types.Block{View: 9}, nil) {
		t.Fatal("accepted proposal without certificate")
	}
}

func TestUpdateStateMonotonic(t *testing.T) {
	hs, _, blocks := fixture(t, 3)
	if hs.HighQC().View != 3 {
		t.Fatalf("highQC view = %d", hs.HighQC().View)
	}
	// A stale certificate must not regress state.
	hs.UpdateState(&types.QC{View: 1, BlockID: blocks[0].ID()})
	if hs.HighQC().View != 3 {
		t.Fatal("stale QC regressed highQC")
	}
	if hs.preferred != 2 {
		t.Fatalf("preferred = %d, want 2 (parent of view-3 block)", hs.preferred)
	}
}

func TestCommitRuleConsecutiveThreeChain(t *testing.T) {
	hs, _, blocks := fixture(t, 3)
	// Views 1,2,3 consecutive: certifying 3 commits the grandparent 1.
	qc3 := &types.QC{View: 3, BlockID: blocks[2].ID()}
	got := hs.CommitRule(qc3)
	if got == nil || got.ID() != blocks[0].ID() {
		t.Fatalf("three-chain commit = %v, want block at view 1", got)
	}
}

func TestCommitRuleRejectsGaps(t *testing.T) {
	hs, f, blocks := fixture(t, 2)
	// Build view 5 on view 2: chain 1←2←5 has a gap.
	qc2 := &types.QC{View: 2, BlockID: blocks[1].ID()}
	b5 := safety.BuildBlock(2, 5, qc2, nil)
	if _, err := f.Add(b5); err != nil {
		t.Fatal(err)
	}
	qc5 := &types.QC{View: 5, BlockID: b5.ID()}
	f.Certify(qc5)
	hs.UpdateState(qc5)
	if got := hs.CommitRule(qc5); got != nil {
		t.Fatalf("gap chain committed %v", got)
	}
	// Continue 6 and 7 on top: 5,6,7 consecutive commits 5.
	qc := qc5
	var blocks567 []*types.Block
	for v := types.View(6); v <= 7; v++ {
		b := safety.BuildBlock(2, v, qc, nil)
		if _, err := f.Add(b); err != nil {
			t.Fatal(err)
		}
		qc = &types.QC{View: v, BlockID: b.ID()}
		f.Certify(qc)
		hs.UpdateState(qc)
		blocks567 = append(blocks567, b)
	}
	got := hs.CommitRule(qc)
	if got == nil || got.ID() != b5.ID() {
		t.Fatalf("consecutive run after gap must commit its head, got %v", got)
	}
	_ = blocks567
}

func TestCommitRuleMissingBlocks(t *testing.T) {
	hs, _, _ := fixture(t, 1)
	if hs.CommitRule(&types.QC{View: 9, BlockID: types.Hash{9}}) != nil {
		t.Fatal("commit for unknown block")
	}
	// Genesis has no grandparent: nothing to commit.
	if hs.CommitRule(types.GenesisQC()) != nil {
		t.Fatal("commit at genesis")
	}
}

func TestPolicyResponsive(t *testing.T) {
	hs, _, _ := fixture(t, 1)
	p := hs.Policy()
	if !p.ResponsiveDefault || p.BroadcastVote || p.EchoMessages || p.LightweightPool {
		t.Fatalf("policy = %+v", p)
	}
}

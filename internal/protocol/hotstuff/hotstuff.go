// Package hotstuff implements chained HotStuff (Section II-B): the
// three-chain commit rule with consecutive views, a lock on the head
// of the highest two-chain, and optimistic responsiveness. It is the
// linear-message-complexity representative of the paper's comparison.
package hotstuff

import (
	"github.com/bamboo-bft/bamboo/internal/safety"
	"github.com/bamboo-bft/bamboo/internal/types"
)

// HotStuff holds the protocol state variables of Section II-B:
// the highest QC (hQC), the lock expressed as a preferred view
// (the view of the head of the highest two-chain), and the last
// voted view (lvView).
type HotStuff struct {
	env       safety.Env
	highQC    *types.QC
	preferred types.View
	lastVoted types.View
}

// New constructs the protocol for one replica.
func New(env safety.Env) safety.Rules {
	return &HotStuff{env: env, highQC: types.GenesisQC()}
}

// Propose implements the Proposing rule: build on the highest QC.
func (h *HotStuff) Propose(view types.View, payload []types.Transaction) *types.Block {
	return safety.BuildBlock(h.env.Self, view, h.highQC, payload)
}

// VoteRule implements the Voting rule: vote for b iff its view is
// beyond the last voted view and it extends the locked block — or its
// parent carries a view at least as high as the lock (the liveness
// disjunct). Because b.QC certifies b's parent, the parent's view is
// b.QC.View; the engine has already verified the certificate.
func (h *HotStuff) VoteRule(b *types.Block, _ *types.TC) bool {
	if b.View <= h.lastVoted {
		return false
	}
	if b.QC == nil || b.QC.View < h.preferred {
		return false
	}
	h.lastVoted = b.View
	return true
}

// UpdateState implements the State Updating rule: adopt a fresher
// hQC, and raise the lock to the head of the highest two-chain — the
// parent of the newly certified block.
func (h *HotStuff) UpdateState(qc *types.QC) {
	if qc.View <= h.highQC.View {
		return
	}
	h.highQC = qc
	// The certified block's parent is the head of a two-chain;
	// its view is recorded in the certified block's own QC.
	if b, ok := h.env.Forest.Block(qc.BlockID); ok && b.QC != nil {
		if b.QC.View > h.preferred {
			h.preferred = b.QC.View
		}
	}
}

// CommitRule implements the three-chain commit rule with consecutive
// views: certifying a block at view v commits its grandparent when the
// three blocks sit at views v−2, v−1, v.
func (h *HotStuff) CommitRule(qc *types.QC) *types.Block {
	b, ok := h.env.Forest.Block(qc.BlockID)
	if !ok {
		return nil
	}
	parent, ok := h.env.Forest.Parent(b.ID())
	if !ok {
		return nil
	}
	grand, ok := h.env.Forest.Parent(parent.ID())
	if !ok {
		return nil
	}
	if grand.View+1 == parent.View && parent.View+1 == qc.View {
		return grand
	}
	return nil
}

// Policy implements safety.Rules.
func (h *HotStuff) Policy() safety.Policy {
	return safety.Policy{ResponsiveDefault: true}
}

// HighQC exposes the current highest QC (used by the engine when
// broadcasting timeouts and by the Byzantine strategy wrappers).
func (h *HotStuff) HighQC() *types.QC { return h.highQC }

// DurableState implements safety.Rules: lvView, the lock, and hQC are
// exactly the state a crash must not erase.
func (h *HotStuff) DurableState() safety.DurableState {
	return safety.DurableState{LastVoted: h.lastVoted, Preferred: h.preferred, HighQC: h.highQC}
}

// Restore implements safety.Rules with a monotone merge: views only
// move up and the certificate is adopted only if fresher, so restoring
// after ledger replay can never regress what the replay rebuilt.
func (h *HotStuff) Restore(s safety.DurableState) {
	if s.LastVoted > h.lastVoted {
		h.lastVoted = s.LastVoted
	}
	if s.Preferred > h.preferred {
		h.preferred = s.Preferred
	}
	if s.HighQC != nil && s.HighQC.View > h.highQC.View {
		h.highQC = s.HighQC.Clone()
	}
}

package workload

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"github.com/bamboo-bft/bamboo/internal/kvstore"
	"github.com/bamboo-bft/bamboo/internal/types"
)

// stream draws n commands from a fresh generator of the spec.
func stream(t *testing.T, s Spec, payload int, seed int64, n int) [][]byte {
	t.Helper()
	g, err := s.New(payload, seed)
	if err != nil {
		t.Fatal(err)
	}
	out := make([][]byte, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

// TestDeterminism is the harness's reproducibility guarantee: equal
// seeds yield byte-identical command streams for every workload kind,
// including the kv mix's zipfian key draws; different seeds diverge.
func TestDeterminism(t *testing.T) {
	specs := []Spec{
		{Kind: KindNoop},
		{Kind: KindKV},
		{Kind: KindKV, Keys: 64, WriteRatio: 0.9, ZipfS: 1.5, ValueSize: 16},
		{Kind: KindKV, Keys: 64, WriteRatio: 0.5, HotKeys: 8, HotFraction: 0.6},
		{Kind: KindKVBank},
		{Kind: KindKVBank, Accounts: 8, InitialBalance: 10, MaxTransfer: 3},
	}
	for _, s := range specs {
		name := s.Kind
		a := stream(t, s, 32, 42, 500)
		b := stream(t, s, 32, 42, 500)
		for i := range a {
			if !bytes.Equal(a[i], b[i]) {
				t.Fatalf("%s: command %d differs between equal-seed streams", name, i)
			}
		}
		if s.Kind == KindNoop {
			continue // seed-independent by design
		}
		c := stream(t, s, 32, 43, 500)
		same := 0
		for i := range a {
			if bytes.Equal(a[i], c[i]) {
				same++
			}
		}
		if same == len(a) {
			t.Fatalf("%s: different seeds produced identical streams", name)
		}
	}
}

// TestKVMixShape checks the kv generator emits decodable reads and
// writes near the declared ratio, with keys inside the key space.
func TestKVMixShape(t *testing.T) {
	const n = 2000
	cmds := stream(t, Spec{Kind: KindKV, Keys: 128, WriteRatio: 0.25}, 0, 7, n)
	var writes, reads int
	for _, cmd := range cmds {
		key, _, op, ok := kvstore.Decode(cmd)
		if !ok {
			t.Fatalf("undecodable kv command %x", cmd)
		}
		switch op {
		case kvstore.OpSet:
			writes++
		case kvstore.OpGet:
			reads++
		default:
			t.Fatalf("unexpected op %d", op)
		}
		if len(key) == 0 {
			t.Fatal("empty key")
		}
	}
	ratio := float64(writes) / float64(n)
	if ratio < 0.18 || ratio > 0.33 {
		t.Fatalf("write ratio %.2f far from declared 0.25 (%d writes, %d reads)", ratio, writes, reads)
	}

	// WriteRatio 0 declares a read-only mix: every command an OpGet.
	for i, cmd := range stream(t, Spec{Kind: KindKV, WriteRatio: 0}, 0, 7, 200) {
		if _, _, op, ok := kvstore.Decode(cmd); !ok || op != kvstore.OpGet {
			t.Fatalf("read-only mix emitted op %d at %d", op, i)
		}
	}
}

// TestKVZipfSkew checks key popularity is actually skewed: the most
// popular key must dominate a uniform draw's share.
func TestKVZipfSkew(t *testing.T) {
	const n = 4000
	cmds := stream(t, Spec{Kind: KindKV, Keys: 1024, WriteRatio: 1, ZipfS: 1.3}, 0, 3, n)
	counts := map[string]int{}
	for _, cmd := range cmds {
		key, _, _, ok := kvstore.Decode(cmd)
		if !ok {
			t.Fatal("undecodable command")
		}
		counts[key]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	// Uniform draws would put ~n/1024 ≈ 4 on each key; zipf must
	// concentrate far more on the hottest key.
	if max < n/50 {
		t.Fatalf("hottest key drew only %d of %d — not zipfian", max, n)
	}
}

// TestKVHotKeyDial: the contention dial confines the declared
// fraction of traffic to the hot set. At HotFraction 1 every command
// targets a hot key, and — unlike the zipfian fallback, which piles
// onto key 0 — the hot draws are uniform across the set, so the dial
// shapes contention rather than just renaming the zipf head.
func TestKVHotKeyDial(t *testing.T) {
	const n = 4000
	cmds := stream(t, Spec{Kind: KindKV, Keys: 1024, WriteRatio: 0.5,
		HotKeys: 4, HotFraction: 1}, 0, 11, n)
	counts := map[string]int{}
	for _, cmd := range cmds {
		key, _, _, ok := kvstore.Decode(cmd)
		if !ok {
			t.Fatal("undecodable command")
		}
		counts[key]++
	}
	if len(counts) != 4 {
		t.Fatalf("HotFraction 1 touched %d keys, want exactly the 4 hot ones", len(counts))
	}
	for key, c := range counts {
		// Uniform would be 25%; leave wide slack against rng noise
		// while still ruling out the zipfian head-heavy shape.
		if c < n/10 || c > n/2 {
			t.Fatalf("hot key %s drew %d of %d — not uniform across the hot set", key, c, n)
		}
	}

	// A partial fraction mixes: hot keys dominate but the cold tail
	// still appears.
	cmds = stream(t, Spec{Kind: KindKV, Keys: 1024, WriteRatio: 0.5,
		HotKeys: 4, HotFraction: 0.5, ZipfS: 1.01}, 0, 11, n)
	cold := 0
	for _, cmd := range cmds {
		key, _, _, ok := kvstore.Decode(cmd)
		if !ok {
			t.Fatal("undecodable command")
		}
		if key >= "key00000004" {
			cold++
		}
	}
	if cold == 0 {
		t.Fatal("HotFraction 0.5 left no cold traffic")
	}
	if cold > n*3/4 {
		t.Fatalf("cold traffic %d of %d — hot fraction not applied", cold, n)
	}
}

// TestKVBankConservation applies kvbank streams to a store — in
// generation order, shuffled, and as a thinned subset (modelling lost
// and reordered commits under faults) — and audits conservation of
// money, the workload's core invariant.
func TestKVBankConservation(t *testing.T) {
	const accounts, initial = 16, uint64(100)
	spec := Spec{Kind: KindKVBank, Accounts: accounts, InitialBalance: initial, MaxTransfer: 30}
	audit := func(name string, cmds [][]byte) {
		store := kvstore.New()
		txs := make([]types.Transaction, len(cmds))
		for i, cmd := range cmds {
			txs[i] = types.Transaction{ID: types.TxID{Client: 1, Seq: uint64(i + 1)}, Command: cmd}
		}
		store.Apply(txs)
		var total uint64
		for i := 0; i < accounts; i++ {
			total += store.BalanceOr(Account(i), initial)
		}
		if want := uint64(accounts) * initial; total != want {
			t.Fatalf("%s: total balance %d, want %d — money not conserved", name, total, want)
		}
	}
	cmds := stream(t, spec, 0, 11, 1000)
	audit("in order", cmds)

	shuffled := make([][]byte, len(cmds))
	copy(shuffled, cmds)
	rng := rand.New(rand.NewSource(5))
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	audit("shuffled", shuffled)

	var thinned [][]byte
	for i, cmd := range cmds {
		if i%3 != 0 { // every third transfer "lost"
			thinned = append(thinned, cmd)
		}
	}
	audit("thinned", thinned)
}

// TestSpecValidate rejects malformed specs.
// TestHotKeySpecValidate: the contention dial's malformed shapes fail
// loudly instead of running a quietly wrong experiment.
func TestHotKeySpecValidate(t *testing.T) {
	bad := []Spec{
		{Kind: KindKV, HotFraction: 1.5, HotKeys: 4},
		{Kind: KindKV, HotFraction: -0.1, HotKeys: 4},
		{Kind: KindKV, HotFraction: 0.5}, // fraction without a hot set
		{Kind: KindKV, HotKeys: -1},
		{Kind: KindKV, Keys: 8, HotKeys: 9}, // hot set wider than the space
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Fatalf("bad hot-key spec %d accepted: %+v", i, s)
		}
	}
	good := Spec{Kind: KindKV, Keys: 64, HotKeys: 64, HotFraction: 1}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid hot-key spec rejected: %v", err)
	}
}

func TestSpecValidate(t *testing.T) {
	bad := []Spec{
		{Kind: "stream"},
		{Kind: KindKV, WriteRatio: 1.5},
		{Kind: KindKV, WriteRatio: -0.1},
		{Kind: KindKV, ZipfS: 0.9},
		{Kind: KindKV, Keys: -1},
		{Kind: KindKVBank, Accounts: -2},
		{Kind: KindKVBank, Accounts: 1},
		{Kind: KindKVBank, MaxTransfer: math.MaxUint64},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("spec %d accepted: %+v", i, s)
		}
	}
	if err := (Spec{}).Validate(); err != nil {
		t.Errorf("zero spec rejected: %v", err)
	}
	if _, err := (Spec{Kind: KindKV}).New(0, 1); err != nil {
		t.Errorf("default kv spec rejected: %v", err)
	}
}

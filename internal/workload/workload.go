// Package workload defines the pluggable transaction generators of
// the experiment harness. A workload is declared as data (Spec) and
// instantiated per client with a seed; equal seeds yield identical
// command streams — including every zipfian key draw — so experiment
// runs are reproducible end to end.
//
// Three built-ins cover the paper's evaluation space: the padded
// no-op of the throughput benchmarks, a key-value read/write mix with
// zipfian key popularity, and the kvbank transfer workload whose
// balance moves execute inside the replicated state machine.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"github.com/bamboo-bft/bamboo/internal/kvstore"
)

// Workload kinds accepted by Spec.Kind.
const (
	KindNoop   = "noop"
	KindKV     = "kv"
	KindKVBank = "kvbank"
)

// Generator produces the command bytes of successive benchmark
// transactions. Implementations are safe for concurrent use (closed-
// loop workers share one generator).
type Generator interface {
	// Name identifies the workload kind.
	Name() string
	// Next returns the next command in the deterministic stream.
	Next() []byte
}

// Spec declares a workload as data. The zero value is the padded
// no-op workload; kind-specific size fields apply defaults when zero.
// WriteRatio is the exception: its zero value declares a read-only kv
// mix, so declare the ratio explicitly for a mixed workload.
type Spec struct {
	// Kind selects the generator: "noop" (default), "kv", "kvbank".
	Kind string `json:"kind,omitempty"`

	// Keys is the kv key-space size (default 1024).
	Keys int `json:"keys,omitempty"`
	// WriteRatio is the kv fraction of writes in [0,1]; 0 declares a
	// read-only mix (every command an ordered OpGet).
	WriteRatio float64 `json:"writeRatio,omitempty"`
	// ZipfS is the zipfian skew parameter s > 1 of kv key popularity;
	// 0 applies the default 1.1.
	ZipfS float64 `json:"zipfS,omitempty"`
	// ValueSize is the kv written value size in bytes (default 64).
	ValueSize int `json:"valueSize,omitempty"`
	// HotKeys and HotFraction dial contention into the kv mix: each
	// command targets one of the first HotKeys keys (uniformly) with
	// probability HotFraction, and falls back to the zipfian draw
	// over the whole key space otherwise. HotFraction 0 disables the
	// dial; 1 confines the workload to the hot set entirely. The hot
	// draws come from the same seeded stream as everything else, so
	// equal seeds still yield byte-identical command sequences.
	HotKeys     int     `json:"hotKeys,omitempty"`
	HotFraction float64 `json:"hotFraction,omitempty"`

	// Accounts is the kvbank account count (default 64).
	Accounts int `json:"accounts,omitempty"`
	// InitialBalance seeds every kvbank account (default 1000).
	InitialBalance uint64 `json:"initialBalance,omitempty"`
	// MaxTransfer bounds a single kvbank transfer (default 50).
	MaxTransfer uint64 `json:"maxTransfer,omitempty"`
}

// Validate reports the first problem with the spec.
func (s Spec) Validate() error {
	switch s.Kind {
	case "", KindNoop, KindKV, KindKVBank:
	default:
		return fmt.Errorf("workload: unknown kind %q", s.Kind)
	}
	if s.WriteRatio < 0 || s.WriteRatio > 1 {
		return fmt.Errorf("workload: write ratio %v outside [0,1]", s.WriteRatio)
	}
	if s.ZipfS != 0 && s.ZipfS <= 1 {
		return fmt.Errorf("workload: zipf s must exceed 1, have %v", s.ZipfS)
	}
	if s.Keys < 0 || s.ValueSize < 0 || s.Accounts < 0 || s.HotKeys < 0 {
		return fmt.Errorf("workload: negative size parameter")
	}
	if s.HotFraction < 0 || s.HotFraction > 1 {
		return fmt.Errorf("workload: hot fraction %v outside [0,1]", s.HotFraction)
	}
	if s.HotFraction > 0 && s.HotKeys == 0 {
		return fmt.Errorf("workload: hot fraction %v with no hot keys", s.HotFraction)
	}
	if s.Keys > 0 && s.HotKeys > s.Keys {
		return fmt.Errorf("workload: %d hot keys exceed the %d-key space", s.HotKeys, s.Keys)
	}
	if s.Kind == KindKVBank && s.Accounts == 1 {
		return fmt.Errorf("workload: kvbank needs at least 2 accounts")
	}
	if s.MaxTransfer > math.MaxInt64 {
		return fmt.Errorf("workload: max transfer %d overflows", s.MaxTransfer)
	}
	return nil
}

// New instantiates the declared generator. payload is the Table I
// "psize" pad applied to every command; seed drives all randomness.
func (s Spec) New(payload int, seed int64) (Generator, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	switch s.Kind {
	case "", KindNoop:
		return NewNoop(payload), nil
	case KindKV:
		return NewKV(s, payload, seed), nil
	case KindKVBank:
		return NewKVBank(s, payload, seed), nil
	}
	return nil, fmt.Errorf("workload: unknown kind %q", s.Kind)
}

// Stores reports whether the workload needs a kvstore execution layer
// attached to every replica to do its work.
func (s Spec) Stores() bool { return s.Kind == KindKV || s.Kind == KindKVBank }

// noop emits identical padded no-op commands.
type noop struct {
	template []byte
}

// NewNoop returns the padded no-op generator (the default benchmark
// transaction).
func NewNoop(payload int) Generator {
	return &noop{template: kvstore.EncodeNoop(payload)}
}

func (n *noop) Name() string { return KindNoop }

func (n *noop) Next() []byte {
	// Commands are immutable once submitted; one shared buffer serves
	// every transaction without per-call allocation.
	return n.template
}

// kv emits a read/write mix over a zipfian-popular key space, with an
// optional hot set that concentrates a configured fraction of the
// commands onto the first hotKeys keys — the contention dial.
type kv struct {
	mu      sync.Mutex
	rng     *rand.Rand
	zipf    *rand.Zipf
	keys    int
	writes  float64
	valSize int
	payload int
	hotKeys int
	hotFrac float64
}

// NewKV builds the key-value mix generator from the spec.
func NewKV(s Spec, payload int, seed int64) Generator {
	keys := s.Keys
	if keys == 0 {
		keys = 1024
	}
	zs := s.ZipfS
	if zs == 0 {
		zs = 1.1
	}
	valSize := s.ValueSize
	if valSize == 0 {
		valSize = 64
	}
	hotKeys := s.HotKeys
	if hotKeys > keys {
		hotKeys = keys
	}
	rng := rand.New(rand.NewSource(seed))
	return &kv{
		rng:     rng,
		zipf:    rand.NewZipf(rng, zs, 1, uint64(keys-1)),
		keys:    keys,
		writes:  s.WriteRatio,
		valSize: valSize,
		payload: payload,
		hotKeys: hotKeys,
		hotFrac: s.HotFraction,
	}
}

func (k *kv) Name() string { return KindKV }

func (k *kv) Next() []byte {
	k.mu.Lock()
	defer k.mu.Unlock()
	var idx uint64
	if k.hotFrac > 0 && k.rng.Float64() < k.hotFrac {
		idx = uint64(k.rng.Intn(k.hotKeys))
	} else {
		idx = k.zipf.Uint64()
	}
	key := fmt.Sprintf("key%08d", idx)
	if k.rng.Float64() >= k.writes {
		return kvstore.EncodeGet(key, k.payload)
	}
	val := make([]byte, k.valSize)
	k.rng.Read(val)
	return kvstore.EncodeSet(key, val, k.payload)
}

// kvbank emits the paper's payments workload: every command is a
// transfer between two distinct accounts, executed atomically by the
// kvstore state machine. There is no seeding phase to lose or
// reorder — transfers carry the initial balance and accounts
// materialize lazily (untouched accounts count at InitialBalance), so
// with insufficient funds applying as no-ops the total balance is
// conserved under any subset and ordering of committed transfers.
type kvbank struct {
	mu       sync.Mutex
	rng      *rand.Rand
	accounts int
	initial  uint64
	maxXfer  uint64
	payload  int
}

// NewKVBank builds the transfer generator from the spec.
func NewKVBank(s Spec, payload int, seed int64) Generator {
	accounts := s.Accounts
	if accounts == 0 {
		accounts = 64
	}
	initial := s.InitialBalance
	if initial == 0 {
		initial = 1000
	}
	maxXfer := s.MaxTransfer
	if maxXfer == 0 {
		maxXfer = 50
	}
	return &kvbank{
		rng:      rand.New(rand.NewSource(seed)),
		accounts: accounts,
		initial:  initial,
		maxXfer:  maxXfer,
		payload:  payload,
	}
}

func (b *kvbank) Name() string { return KindKVBank }

// Account returns the store key of account i.
func Account(i int) string { return fmt.Sprintf("acct%04d", i) }

func (b *kvbank) Next() []byte {
	b.mu.Lock()
	defer b.mu.Unlock()
	from := b.rng.Intn(b.accounts)
	to := b.rng.Intn(b.accounts - 1)
	if to >= from {
		to++
	}
	amount := uint64(b.rng.Int63n(int64(b.maxXfer))) + 1
	return kvstore.EncodeTransfer(Account(from), Account(to), amount, b.initial, b.payload)
}

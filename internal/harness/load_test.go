package harness

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/bamboo-bft/bamboo/internal/config"
	"github.com/bamboo-bft/bamboo/internal/workload"
)

// TestClientPopulations runs a closed-loop point driven by a mixed
// client fleet (noop readers alongside kv writers) and checks the
// per-client accounting: fleet size, fairness bracket, and the full
// percentile ladder.
func TestClientPopulations(t *testing.T) {
	res, err := Run(Experiment{
		Config: testConfig(config.ProtocolHotStuff),
		Measure: MeasurePlan{
			Warmup: 200 * time.Millisecond,
			Window: 500 * time.Millisecond,
			Clients: []ClientSpec{
				{Count: 3},
				{Count: 1, Workload: &workload.Spec{
					Kind: workload.KindKV, Keys: 64, WriteRatio: 0.5}},
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	p := res.Points[0]
	if p.Clients != 4 {
		t.Fatalf("clients = %d, want 4", p.Clients)
	}
	if p.Offered != 4 {
		t.Fatalf("offered = %v, want 4 (one in-flight request per client)", p.Offered)
	}
	if p.Throughput <= 0 {
		t.Fatal("no throughput from the client fleet")
	}
	if p.ClientMinTps <= 0 || p.ClientMaxTps < p.ClientMinTps {
		t.Fatalf("fairness bracket broken: min %v max %v", p.ClientMinTps, p.ClientMaxTps)
	}
	if p.ClientDispersion < 1 {
		t.Fatalf("dispersion = %v, want >= 1", p.ClientDispersion)
	}
	if p.P50 > p.P95 || p.P95 > p.P99 || p.P99 > p.P999 {
		t.Fatalf("percentiles not monotone: %v %v %v %v", p.P50, p.P95, p.P99, p.P999)
	}
}

// TestOpenLoopAdmissionControl overloads a deliberately tiny mempool
// behind a bandwidth-throttled transport, so drain capacity sits far
// below the offered rate: admission control must engage server-side
// (pool rejections) and the typed rejection must reach the clients'
// counters.
func TestOpenLoopAdmissionControl(t *testing.T) {
	cfg := testConfig(config.ProtocolHotStuff)
	cfg.MemSize = 50
	cfg.Bandwidth = 200e3 // ~a few hundred committed tx/s of drain
	res, err := Run(Experiment{
		Config: cfg,
		Measure: MeasurePlan{
			Warmup: 200 * time.Millisecond,
			Window: 600 * time.Millisecond,
			Rate:   5000,
			Clients: []ClientSpec{
				{Count: 2},
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	p := res.Points[0]
	if p.PoolRejections == 0 {
		t.Fatalf("pool never rejected despite 5k tx/s into a throttled 50-slot pool: %+v", p)
	}
	if p.Rejected == 0 {
		t.Fatalf("clients saw no rejections despite %d pool rejections", p.PoolRejections)
	}
	if res.Violations != 0 || !res.Consistent {
		t.Fatalf("overload broke safety: violations=%d consistent=%v", res.Violations, res.Consistent)
	}
}

// TestQueuePolicyAbsorbsBurst: the same overload under PolicyQueue
// with a deep overflow band sees queued admissions instead of (or far
// in excess of) rejections — the declared trade of queueing delay for
// client-visible errors.
func TestQueuePolicyAbsorbsBurst(t *testing.T) {
	cfg := testConfig(config.ProtocolHotStuff)
	cfg.MemSize = 50
	cfg.Bandwidth = 200e3
	cfg.MemPolicy = "queue"
	cfg.MemQueue = 100000
	res, err := Run(Experiment{
		Config: cfg,
		Measure: MeasurePlan{
			Warmup: 200 * time.Millisecond,
			Window: 600 * time.Millisecond,
			Rate:   5000,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := res.Points[0]; p.PoolRejections != 0 {
		t.Fatalf("deep overflow band still rejected %d transactions", p.PoolRejections)
	}
}

// TestClientsValidation covers the Clients section's input checks.
func TestClientsValidation(t *testing.T) {
	base := func() Experiment {
		return Experiment{Config: testConfig(config.ProtocolHotStuff)}
	}
	cases := []struct {
		name string
		mut  func(*Experiment)
	}{
		{"clients with concurrency", func(e *Experiment) {
			e.Measure.Clients = []ClientSpec{{Count: 2}}
			e.Measure.Concurrency = 8
		}},
		{"clients with levels", func(e *Experiment) {
			e.Measure.Clients = []ClientSpec{{Count: 2}}
			e.Measure.Levels = []int{2, 4}
		}},
		{"negative count", func(e *Experiment) {
			e.Measure.Clients = []ClientSpec{{Count: -1}}
		}},
		{"bad population workload", func(e *Experiment) {
			e.Measure.Clients = []ClientSpec{{Count: 1, Workload: &workload.Spec{Kind: "mystery"}}}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			exp := base()
			tc.mut(&exp)
			if err := exp.Validate(); err == nil {
				t.Fatal("expected validation error")
			}
		})
	}
}

// TestPopulationStreamDeterminism pins the per-client seeding rule the
// harness uses (Config.Seed plus the client's fleet index): the same
// declaration replays byte-identical workload streams, and distinct
// clients of one population draw distinct streams.
func TestPopulationStreamDeterminism(t *testing.T) {
	spec := workload.Spec{Kind: workload.KindKV, Keys: 256, WriteRatio: 0.3, ZipfS: 1.1}
	const seed, clients, draws = 42, 3, 64
	streams := func() [][]byte {
		out := make([][]byte, clients)
		for idx := 0; idx < clients; idx++ {
			gen, err := spec.New(0, int64(seed+idx))
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			for i := 0; i < draws; i++ {
				buf.Write(gen.Next())
			}
			out[idx] = buf.Bytes()
		}
		return out
	}
	first, second := streams(), streams()
	for i := range first {
		if !bytes.Equal(first[i], second[i]) {
			t.Fatalf("client %d stream not reproducible across runs", i)
		}
	}
	if bytes.Equal(first[0], first[1]) {
		t.Fatal("distinct clients drew identical workload streams")
	}
}

// TestScenarioErrorsNameField: a malformed scenario file must be
// rejected with a message that names the offending field or position,
// not a bare decoder error.
func TestScenarioErrorsNameField(t *testing.T) {
	dir := t.TempDir()
	write := func(name, body string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	cases := []struct {
		name string
		body string
		want string
	}{
		{"wrong type names field", `{"measure": {"rate": "fast"}}`, `"measure.rate"`},
		{"syntax error carries line", "{\n  \"name\": \"x\",\n  oops\n}", ":3:"},
		{"unknown field named", `{"measure": {"spice": 11}}`, `"spice"`},
		{"unknown section named", `{"telemetry": true}`, `"telemetry"`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := LoadExperiment(write(strings.ReplaceAll(tc.name, " ", "-")+".json", tc.body))
			if err == nil {
				t.Fatal("expected load error")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not name %q", err, tc.want)
			}
		})
	}
}

package harness

import (
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"github.com/bamboo-bft/bamboo/internal/config"
	"github.com/bamboo-bft/bamboo/internal/types"
)

// backendExperiment is the acceptance scenario of the non-switch
// harness backends: one declared experiment whose schedule exercises
// partition, heal, crash, and restart — it must run to a consistent,
// recovered Result on every registered backend.
func backendExperiment(backend string) Experiment {
	cfg := config.Default()
	cfg.Protocol = config.ProtocolHotStuff
	cfg.ApplyProtocolDefaults()
	cfg.CryptoScheme = "hmac"
	cfg.BlockSize = 50
	cfg.MemSize = 1 << 14
	cfg.Timeout = 100 * time.Millisecond
	return Experiment{
		Name:    "backend-parity",
		Backend: backend,
		Config:  cfg,
		Faults: FaultSchedule{
			// A minority partition (3 of 4 keep quorum), then a crash
			// of a different replica after the heal.
			PartitionAt(250*time.Millisecond, map[types.NodeID]int{1: 1}),
			HealAt(650 * time.Millisecond),
			CrashAt(900*time.Millisecond, 2),
			RestartAt(1250*time.Millisecond, 2),
		},
		Measure: MeasurePlan{
			Warmup:       150 * time.Millisecond,
			Window:       1800 * time.Millisecond,
			Concurrency:  6,
			PerOpTimeout: 400 * time.Millisecond,
		},
	}
}

// TestSameScenarioAllBackends is the acceptance bar of the deployment
// backends: identical fault semantics and measurement across the
// in-process switch, loopback TCP, and the multi-process fleet, proven
// by the same declared Experiment (partition/heal plus crash/restart)
// finishing Consistent and Recovered on each.
func TestSameScenarioAllBackends(t *testing.T) {
	for _, backend := range Backends() {
		backend := backend
		t.Run(backend, func(t *testing.T) {
			if backend == BackendFleet {
				buildServerBinary(t)
			}
			res, err := Run(backendExperiment(backend))
			if err != nil {
				t.Fatalf("run: %v (result error %q)", err, res.Error)
			}
			if res.Backend != backend {
				t.Fatalf("result backend %q, want %q", res.Backend, backend)
			}
			if !res.Consistent || res.Violations != 0 {
				t.Fatalf("consistency lost: consistent=%v violations=%d", res.Consistent, res.Violations)
			}
			if !res.Recovered {
				t.Fatalf("replicas did not reconverge: heights %v", res.Heights)
			}
			if len(res.Points) != 1 || res.Points[0].Throughput <= 0 {
				t.Fatalf("no committed throughput measured: %+v", res.Points)
			}
			switch backend {
			case BackendTCP:
				if res.Network.Dials == 0 {
					t.Fatalf("TCP run reports no dials: %+v", res.Network)
				}
				if res.Network.Redials == 0 {
					t.Fatalf("crash teardown must force redials: %+v", res.Network)
				}
			case BackendFleet:
				if len(res.Pids) != res.Config.N {
					t.Fatalf("fleet result pids = %v, want %d entries", res.Pids, res.Config.N)
				}
				seen := map[int]bool{}
				for i, pid := range res.Pids {
					if pid <= 0 || pid == os.Getpid() || seen[pid] {
						t.Fatalf("replica %d pid %d is not a distinct child process (%v)",
							i+1, pid, res.Pids)
					}
					seen[pid] = true
				}
				// The restart leg re-exec'd replica 2 against its
				// surviving ledger; its bootstrap replay must show up
				// in the merged counters.
				if res.Pipeline.ReplayedBlocks == 0 {
					t.Fatalf("fleet restart replayed no ledger blocks: %+v", res.Pipeline)
				}
				// Exact-height recovery, anchored just before the
				// SIGKILL: the victim finished at or above its
				// pre-kill committed height (the safety WAL retired
				// the replay holdback), and the bootstrap replay
				// covered at least the pre-kill ledger.
				if len(res.PreKillHeights) != res.Config.N || res.PreKillHeights[1] == 0 {
					t.Fatalf("no pre-kill anchor recorded for the victim: %v", res.PreKillHeights)
				}
				if res.Heights[1] < res.PreKillHeights[1] {
					t.Fatalf("victim finished at height %d, below its pre-kill committed height %d",
						res.Heights[1], res.PreKillHeights[1])
				}
				if res.Pipeline.ReplayedBlocks < res.PreKillLedgerHeights[1] {
					t.Fatalf("replay covered %d blocks, pre-kill ledger held %d",
						res.Pipeline.ReplayedBlocks, res.PreKillLedgerHeights[1])
				}
			}
		})
	}
}

// buildServerBinary compiles bamboo-server into the test's temp dir
// and points fleet.ServerBin at it, keeping the harness tests from
// leaving the fallback build's process-lifetime directory behind.
func buildServerBinary(t *testing.T) {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "bamboo-server")
	cmd := exec.Command("go", "build", "-o", bin, "../../cmd/bamboo-server")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building bamboo-server: %v\n%s", err, out)
	}
	t.Setenv("BAMBOO_SERVER", bin)
}

// TestLoadExperimentDefaultsAndValidation: a scenario file states only
// what it changes (config defaults fill the rest), takes its name from
// the file when unnamed, and malformed files fail loudly.
func TestLoadExperimentDefaultsAndValidation(t *testing.T) {
	dir := t.TempDir()
	write := func(name, body string) string {
		t.Helper()
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}

	exp, err := LoadExperiment(write("nightly.json", `{
		"config": {"n": 5, "protocol": "hotstuff"},
		"faults": [{"at": 1000000, "kind": "crash", "nodes": [2]}],
		"measure": {"window": 1000000000}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if exp.Name != "nightly" {
		t.Fatalf("unnamed scenario should take the file name, got %q", exp.Name)
	}
	if exp.Config.N != 5 || exp.Config.Timeout != config.Default().Timeout {
		t.Fatalf("defaults not applied over the file: %+v", exp.Config)
	}

	cases := map[string]string{
		"unknown-field": `{"config": {"n": 4, "protocol": "hotstuff"}, "windwo": 5}`,
		"bad-backend":   `{"backend": "udp", "config": {"n": 4, "protocol": "hotstuff"}}`,
		"bad-config":    `{"config": {"n": 2, "protocol": "hotstuff"}}`,
		"bad-fault":     `{"config": {"n": 4, "protocol": "hotstuff"}, "faults": [{"at": 1, "kind": "crash"}]}`,
		"trailing":      `{"config": {"n": 4, "protocol": "hotstuff"}} {"again": true}`,
		"not-json":      `scenario?`,
	}
	for name, body := range cases {
		if _, err := LoadExperiment(write(name+".json", body)); err == nil {
			t.Errorf("%s: malformed scenario accepted", name)
		}
	}
	if _, err := LoadExperiment(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
}

// TestCommittedScenarioStaysValid guards the repository's example
// scenario — the input of the tcp-smoke CI gate: if a refactor breaks
// its schema, this fails before CI burns a full run on it.
func TestCommittedScenarioStaysValid(t *testing.T) {
	exp, err := LoadExperiment(filepath.Join("..", "..", "examples", "scenarios", "partition-heal.json"))
	if err != nil {
		t.Fatal(err)
	}
	if exp.Name != "partition-heal" {
		t.Fatalf("unexpected scenario name %q", exp.Name)
	}
	// The CI gate's value hangs on the schedule actually exercising
	// partition/heal and crash/restart; keep the file honest.
	kinds := map[string]bool{}
	for _, ev := range exp.Faults {
		kinds[ev.Kind] = true
	}
	for _, want := range []string{FaultPartition, FaultHeal, FaultCrash, FaultRestart} {
		if !kinds[want] {
			t.Fatalf("committed scenario lost its %s event", want)
		}
	}
}

// TestCommittedFleetScenarioStaysValid guards the fleet-smoke CI
// gate's input the same way: the scenario must keep declaring the
// fleet backend and the SIGKILL/re-exec leg that makes the gate's
// replayedBlocks assertion meaningful.
func TestCommittedFleetScenarioStaysValid(t *testing.T) {
	exp, err := LoadExperiment(filepath.Join("..", "..", "examples", "scenarios", "fleet-kill-restart.json"))
	if err != nil {
		t.Fatal(err)
	}
	if exp.Name != "fleet-kill-restart" {
		t.Fatalf("unexpected scenario name %q", exp.Name)
	}
	if exp.Backend != BackendFleet {
		t.Fatalf("scenario backend %q, want %q", exp.Backend, BackendFleet)
	}
	kinds := map[string]bool{}
	for _, ev := range exp.Faults {
		kinds[ev.Kind] = true
	}
	for _, want := range []string{FaultCrash, FaultRestart} {
		if !kinds[want] {
			t.Fatalf("committed scenario lost its %s event", want)
		}
	}
	if exp.DisableLedger {
		t.Fatal("scenario must keep ledgers on: the restart leg exists to prove cross-process replay")
	}
}

// TestOpenLoopAllBackends is the open-loop counterpart of the parity
// bar: the same declared multi-client open-loop MeasurePlan must run
// on every backend — including the fleet, which historically rejected
// rate-driven plans — and come back with the client fleet accounted
// for and the percentile ladder populated.
func TestOpenLoopAllBackends(t *testing.T) {
	for _, backend := range Backends() {
		backend := backend
		t.Run(backend, func(t *testing.T) {
			if backend == BackendFleet {
				buildServerBinary(t)
			}
			cfg := config.Default()
			cfg.Protocol = config.ProtocolHotStuff
			cfg.ApplyProtocolDefaults()
			cfg.CryptoScheme = "hmac"
			cfg.BlockSize = 50
			cfg.MemSize = 1 << 14
			cfg.Timeout = 100 * time.Millisecond
			res, err := Run(Experiment{
				Name:    "openloop-parity",
				Backend: backend,
				Config:  cfg,
				Measure: MeasurePlan{
					Warmup:       300 * time.Millisecond,
					Window:       time.Second,
					Rate:         400,
					Clients:      []ClientSpec{{Count: 3}, {Count: 1}},
					PerOpTimeout: 2 * time.Second,
				},
			})
			if err != nil {
				t.Fatalf("run: %v (result error %q)", err, res.Error)
			}
			if !res.Consistent || res.Violations != 0 || !res.Recovered {
				t.Fatalf("open-loop run unhealthy: consistent=%v violations=%d recovered=%v",
					res.Consistent, res.Violations, res.Recovered)
			}
			p := res.Points[0]
			if p.Throughput <= 0 {
				t.Fatalf("no committed throughput: %+v", p)
			}
			if p.Clients != 4 {
				t.Fatalf("clients = %d, want 4", p.Clients)
			}
			if p.Offered != 400 {
				t.Fatalf("offered = %v, want the declared 400 tx/s", p.Offered)
			}
			if p.P50 <= 0 || p.P50 > p.P99 || p.P99 > p.P999 {
				t.Fatalf("percentile ladder broken: p50=%v p99=%v p999=%v", p.P50, p.P99, p.P999)
			}
		})
	}
}
